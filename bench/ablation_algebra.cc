// Ablations for the §4.1 physical-algebra design choices:
//  * positional join vs hash join on dense autoincrement keys,
//  * streaming (hash-counter) vs sorting DENSE_RANK,
//  * sort elision / refine-sort vs full sorts,
//  * the §4.2 existential min/max theta-join vs pairwise nested loops.

#include <benchmark/benchmark.h>

#include <random>

#include "algebra/ops.h"

namespace {

using namespace mxq;
using namespace mxq::alg;

TablePtr RandomProbe(int64_t n, int64_t key_range, uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<int64_t> v(n);
  for (auto& x : v) x = 1 + rng() % key_range;
  std::sort(v.begin(), v.end());
  auto t = MakeTable({{"iter", Column::MakeI64(std::move(v))}});
  t->props().ord = {"iter"};
  return t;
}

void PositionalJoin(benchmark::State& state) {
  DocumentManager mgr;
  ExecFlags fl;
  fl.positional = true;
  int64_t n = state.range(0);
  auto loop = MakeLoop(n);
  auto probe = RandomProbe(n, n, 42);
  for (auto _ : state) {
    auto j = EquiJoinI64(fl, probe, "iter", loop, "iter", {{"iter", "m"}});
    benchmark::DoNotOptimize(j->rows());
  }
  state.counters["positional"] = static_cast<double>(fl.stats.positional_joins);
}

void HashJoin(benchmark::State& state) {
  DocumentManager mgr;
  ExecFlags fl;
  fl.positional = false;  // force the generic algorithm
  int64_t n = state.range(0);
  auto loop = MakeLoop(n);
  auto probe = RandomProbe(n, n, 42);
  for (auto _ : state) {
    auto j = EquiJoinI64(fl, probe, "iter", loop, "iter", {{"iter", "m"}});
    benchmark::DoNotOptimize(j->rows());
  }
  state.counters["hash"] = static_cast<double>(fl.stats.hash_joins);
}

TablePtr GroupedTable(int64_t n, int64_t groups, uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<int64_t> g(n), pos(n);
  for (int64_t i = 0; i < n; ++i) {
    g[i] = 1 + rng() % groups;
    pos[i] = i;  // physical order == within-group order: grpord holds
  }
  auto t = MakeTable({{"g", Column::MakeI64(std::move(g))},
                      {"pos", Column::MakeI64(std::move(pos))}});
  t->props().grpord.push_back({{"pos"}, "g"});
  return t;
}

void StreamingRowNum(benchmark::State& state) {
  DocumentManager mgr;
  ExecFlags fl;
  fl.order_opt = true;  // grpord consulted -> hash-counter numbering
  auto t = GroupedTable(state.range(0), 64, 7);
  for (auto _ : state) {
    auto r = RowNum(mgr, fl, t, "n", {"pos"}, "g");
    benchmark::DoNotOptimize(r->rows());
  }
  state.counters["streaming"] = static_cast<double>(fl.stats.rownum_streaming);
}

void SortingRowNum(benchmark::State& state) {
  DocumentManager mgr;
  ExecFlags fl;
  fl.order_opt = false;  // property ignored -> full re-numbering sort
  auto t = GroupedTable(state.range(0), 64, 7);
  for (auto _ : state) {
    auto r = RowNum(mgr, fl, t, "n", {"pos"}, "g");
    benchmark::DoNotOptimize(r->rows());
  }
  state.counters["sorting"] = static_cast<double>(fl.stats.rownum_sorting);
}

void SortElided(benchmark::State& state) {
  DocumentManager mgr;
  ExecFlags fl;
  auto t = GroupedTable(state.range(0), 64, 9);
  auto sorted = Sort(mgr, fl, t, {"g", "pos"});
  for (auto _ : state) {
    auto again = Sort(mgr, fl, sorted, {"g", "pos"});  // ord known: no-op
    benchmark::DoNotOptimize(again.get());
  }
  state.counters["elided"] = static_cast<double>(fl.stats.sorts_elided);
}

void SortForced(benchmark::State& state) {
  DocumentManager mgr;
  ExecFlags fl;
  fl.order_opt = false;
  auto t = GroupedTable(state.range(0), 64, 9);
  ExecFlags fl_on;
  auto sorted = Sort(mgr, fl_on, t, {"g", "pos"});
  for (auto _ : state) {
    auto again = Sort(mgr, fl, sorted, {"g", "pos"});  // always re-sorts
    benchmark::DoNotOptimize(again.get());
  }
  state.counters["performed"] = static_cast<double>(fl.stats.sorts_performed);
}

}  // namespace

BENCHMARK(PositionalJoin)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(HashJoin)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(StreamingRowNum)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(SortingRowNum)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(SortElided)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(SortForced)->Arg(1 << 16)->Arg(1 << 20);

BENCHMARK_MAIN();
