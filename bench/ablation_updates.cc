// §5.2 update-scheme ablation: page-wise structural inserts vs the naive
// O(N) alternative (rebuilding the flat pre|size|level table).
//
// The paper's claim: with logical pages + remappable pre numbers, an insert
// costs a constant number of page writes regardless of document size,
// whereas a flat encoding must shift half the document on average.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "updates/update_engine.h"
#include "xml/serializer.h"

namespace {

using namespace mxq;

const double kScales[] = {0.002, 0.02, 0.2};

/// Paged insert into a fresh copy of the XMark document.
void PagedInsert(benchmark::State& state) {
  double scale = kScales[state.range(0)] * bench::ScaleEnv();
  auto& inst = bench::XMarkInstance::Get(scale);
  // Work on a private copy so repeated runs do not accumulate.
  DocumentManager mgr;
  std::string xml;
  SerializeNode(*inst.doc(), 0, &xml);
  auto shred = ShredDocument(&mgr, "auction.xml", xml);
  if (!shred.ok()) {
    state.SkipWithError("shred failed");
    return;
  }
  updates::UpdateEngine eng(*shred, /*page_bits=*/10, /*fill_pct=*/85);
  StrId person = mgr.strings().Find("person");
  // One stable target: repeated insert-last into a node keeps its own pre
  // unchanged (growth happens inside/after its subtree), so no per-op index
  // rebuild pollutes the constant-cost measurement.
  int64_t target = (*shred)->ElementsNamed(person)[0];
  eng.ResetStats();
  for (auto _ : state) {
    auto r = eng.InsertXml(target, updates::InsertPos::kLast,
                           "<watches><watch open_auction=\"open_auction0\"/>"
                           "</watches>");
    if (!r.ok()) state.SkipWithError("insert failed");
  }
  state.counters["pages_touched_per_op"] = benchmark::Counter(
      static_cast<double>(eng.stats().pages_touched),
      benchmark::Counter::kAvgIterations);
  state.counters["doc_nodes"] =
      static_cast<double>((*shred)->NodeCount());
}

/// Flat insert: rebuild the whole pre|size|level table (what a plain
/// range-encoded store must do — O(N) per insert).
void FlatRebuildInsert(benchmark::State& state) {
  double scale = kScales[state.range(0)] * bench::ScaleEnv();
  auto& inst = bench::XMarkInstance::Get(scale);
  std::string xml;
  SerializeNode(*inst.doc(), 0, &xml);
  // Insert at a fixed point near the document middle and re-shred: the
  // honest cost model for a shift-based flat encoding.
  size_t mid = xml.find("<open_auctions>");
  std::string frag =
      "<watches><watch open_auction=\"open_auction0\"/></watches>";
  for (auto _ : state) {
    std::string updated;
    updated.reserve(xml.size() + frag.size());
    updated.append(xml, 0, mid);
    updated += frag;  // (well-formedness preserved: sibling of regions etc.)
    updated.append(xml, mid, std::string::npos);
    DocumentManager mgr;
    auto r = ShredDocument(&mgr, "a.xml", updated);
    if (!r.ok()) state.SkipWithError("shred failed");
    benchmark::DoNotOptimize((*r)->NodeCount());
  }
  state.counters["doc_bytes"] = static_cast<double>(xml.size());
}

}  // namespace

BENCHMARK(PagedInsert)->DenseRange(0, 2)->Unit(benchmark::kMicrosecond);
BENCHMARK(FlatRebuildInsert)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
