// Shared benchmark fixture: XMark documents shredded once per scale, engine
// + compiled query caching (the paper's "physical query plan caching").
//
// Scales are multiplied by the env var MXQ_SCALE (default 1.0) so the same
// binaries can reproduce the paper's larger document series when given time:
// paper sizes 1.1 MB / 11 MB / 110 MB / 1.1 GB == scale 0.01 / 0.1 / 1 / 10.

#ifndef MXQ_BENCH_BENCH_UTIL_H_
#define MXQ_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "baseline/interpreter.h"
#include "xmark/generator.h"
#include "xmark/queries.h"
#include "xml/shredder.h"
#include "xquery/engine.h"

namespace mxq {
namespace bench {

inline double ScaleEnv() {
  const char* s = std::getenv("MXQ_SCALE");
  return s ? std::atof(s) : 1.0;
}

/// Flips every cache-conscious kernel toggle at once (docs/execution.md);
/// `on = false` is the pre-PR "legacy kernels" ablation baseline of the
/// BENCH_pr<N>.json artifacts. Shared here so the per-bench baselines
/// cannot drift when a new toggle is added.
inline void SetKernelFlags(alg::ExecFlags* fl, bool on) {
  fl->radix_join = on;
  fl->sel_vectors = on;
  fl->dense_sort = on;
  fl->dict_items = on;
}

// ---------------------------------------------------------------------------
// JSON emitter (bench artifacts; no external deps)
// ---------------------------------------------------------------------------

/// Builds a JSON document as a string: nested objects/arrays, numeric and
/// string fields. Used by the bench mains to write kernel-comparison
/// summaries that bench/run_all.sh merges into BENCH_<pr>.json.
class JsonWriter {
 public:
  JsonWriter& BeginObject(const char* key = nullptr) { return Open('{', key); }
  JsonWriter& EndObject() { return Close('}'); }
  JsonWriter& BeginArray(const char* key = nullptr) { return Open('[', key); }
  JsonWriter& EndArray() { return Close(']'); }

  JsonWriter& Field(const char* key, double v) {
    Key(key);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    out_ += buf;
    return *this;
  }
  JsonWriter& Field(const char* key, int64_t v) {
    Key(key);
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& Field(const char* key, const std::string& v) {
    Key(key);
    out_ += '"';
    for (char c : v) {
      if (c == '"' || c == '\\') out_ += '\\';
      out_ += c;
    }
    out_ += '"';
    return *this;
  }

  const std::string& str() const { return out_; }

  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    std::fwrite(out_.data(), 1, out_.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    return true;
  }

 private:
  JsonWriter& Open(char c, const char* key) {
    Key(key);
    out_ += c;
    first_ = true;
    return *this;
  }
  JsonWriter& Close(char c) {
    out_ += c;
    first_ = false;
    return *this;
  }
  void Key(const char* key) {
    if (!first_) out_ += ',';
    first_ = false;
    if (key) {
      out_ += '"';
      out_ += key;
      out_ += "\":";
    }
  }

  std::string out_;
  bool first_ = true;
};

/// Best-of-`reps` wall time of `fn` in milliseconds (kernel comparisons:
/// min over repetitions is the standard noise filter).
inline double BestOfMs(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    best = std::min(best, ms);
  }
  return best;
}

/// One shredded XMark instance (document + engine + compiled query cache).
class XMarkInstance {
 public:
  explicit XMarkInstance(double scale) : engine_(&mgr_) {
    xmark::XMarkOptions opts;
    opts.scale = scale;
    xml_size_ = 0;
    std::string xml = xmark::GenerateXMark(opts);
    xml_size_ = xml.size();
    auto r = ShredDocument(&mgr_, "auction.xml", xml);
    if (!r.ok()) std::abort();
    doc_ = *r;
  }

  /// Cached per (query, join_recognition) compilation.
  const xq::CompiledQuery& Compiled(int qn, bool join_recognition = true) {
    auto key = std::make_pair(qn, join_recognition);
    auto it = plans_.find(key);
    if (it == plans_.end()) {
      xq::CompileOptions co;
      co.join_recognition = join_recognition;
      auto c = engine_.Compile(xmark::XMarkQuery(qn), co);
      if (!c.ok()) std::abort();
      it = plans_.emplace(key, std::move(*c)).first;
    }
    return it->second;
  }

  /// Executes query qn; aborts on error; returns result size. `scan`
  /// receives this execution's staircase scan statistics when non-null
  /// (stats are per-QueryResult, not engine state).
  size_t Run(int qn, xq::EvalOptions* opts, bool join_recognition = true,
             ScanStats* scan = nullptr) {
    auto r = engine_.Execute(Compiled(qn, join_recognition), opts);
    if (!r.ok()) std::abort();
    if (scan) *scan = r->scan_stats();
    return r->items.size();
  }

  DocumentManager& mgr() { return mgr_; }
  xq::XQueryEngine& engine() { return engine_; }
  DocumentContainer* doc() { return doc_; }
  size_t xml_size() const { return xml_size_; }

  /// Process-wide instance per scale (documents are expensive to shred).
  static XMarkInstance& Get(double scale) {
    static std::map<double, std::unique_ptr<XMarkInstance>> cache;
    auto it = cache.find(scale);
    if (it == cache.end())
      it = cache.emplace(scale, std::make_unique<XMarkInstance>(scale)).first;
    return *it->second;
  }

 private:
  DocumentManager mgr_;
  xq::XQueryEngine engine_;
  DocumentContainer* doc_ = nullptr;
  size_t xml_size_ = 0;
  std::map<std::pair<int, bool>, xq::CompiledQuery> plans_;
};

}  // namespace bench
}  // namespace mxq

#endif  // MXQ_BENCH_BENCH_UTIL_H_
