// Shared benchmark fixture: XMark documents shredded once per scale, engine
// + compiled query caching (the paper's "physical query plan caching").
//
// Scales are multiplied by the env var MXQ_SCALE (default 1.0) so the same
// binaries can reproduce the paper's larger document series when given time:
// paper sizes 1.1 MB / 11 MB / 110 MB / 1.1 GB == scale 0.01 / 0.1 / 1 / 10.

#ifndef MXQ_BENCH_BENCH_UTIL_H_
#define MXQ_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "baseline/interpreter.h"
#include "xmark/generator.h"
#include "xmark/queries.h"
#include "xml/shredder.h"
#include "xquery/engine.h"

namespace mxq {
namespace bench {

inline double ScaleEnv() {
  const char* s = std::getenv("MXQ_SCALE");
  return s ? std::atof(s) : 1.0;
}

/// One shredded XMark instance (document + engine + compiled query cache).
class XMarkInstance {
 public:
  explicit XMarkInstance(double scale) : engine_(&mgr_) {
    xmark::XMarkOptions opts;
    opts.scale = scale;
    xml_size_ = 0;
    std::string xml = xmark::GenerateXMark(opts);
    xml_size_ = xml.size();
    auto r = ShredDocument(&mgr_, "auction.xml", xml);
    if (!r.ok()) std::abort();
    doc_ = *r;
  }

  /// Cached per (query, join_recognition) compilation.
  const xq::CompiledQuery& Compiled(int qn, bool join_recognition = true) {
    auto key = std::make_pair(qn, join_recognition);
    auto it = plans_.find(key);
    if (it == plans_.end()) {
      xq::CompileOptions co;
      co.join_recognition = join_recognition;
      auto c = engine_.Compile(xmark::XMarkQuery(qn), co);
      if (!c.ok()) std::abort();
      it = plans_.emplace(key, std::move(*c)).first;
    }
    return it->second;
  }

  /// Executes query qn; aborts on error; returns result size.
  size_t Run(int qn, xq::EvalOptions* opts, bool join_recognition = true) {
    auto r = engine_.Execute(Compiled(qn, join_recognition), opts);
    if (!r.ok()) std::abort();
    return r->items.size();
  }

  DocumentManager& mgr() { return mgr_; }
  xq::XQueryEngine& engine() { return engine_; }
  DocumentContainer* doc() { return doc_; }
  size_t xml_size() const { return xml_size_; }

  /// Process-wide instance per scale (documents are expensive to shred).
  static XMarkInstance& Get(double scale) {
    static std::map<double, std::unique_ptr<XMarkInstance>> cache;
    auto it = cache.find(scale);
    if (it == cache.end())
      it = cache.emplace(scale, std::make_unique<XMarkInstance>(scale)).first;
    return *it->second;
  }

 private:
  DocumentManager mgr_;
  xq::XQueryEngine engine_;
  DocumentContainer* doc_ = nullptr;
  size_t xml_size_ = 0;
  std::map<std::pair<int, bool>, xq::CompiledQuery> plans_;
};

}  // namespace bench
}  // namespace mxq

#endif  // MXQ_BENCH_BENCH_UTIL_H_
