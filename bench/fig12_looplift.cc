// Figure 12: benefits of loop-lifted staircase join.
//
// Reproduces the paper's five configurations over XMark Q1-Q20:
//   iterative child / iterative descendant
//   iterative child / loop-lifted descendant
//   loop-lifted child / iterative descendant
//   loop-lifted child / loop-lifted descendant
//   loop-lifted child / loop-lifted descendant + nametest pushdown
//
// The paper reports 10-30x speedups from loop-lifting on the 110 MB
// document (less, 3-6.5x, for Q11-Q14 where step cost is small), and that
// nametest pushdown is crucial for Q6/Q7. Expect the same *shape* here.
// Default document ~ the paper's 11 MB point at MXQ_SCALE=1.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

constexpr double kScale = 0.1;

void RunConfig(benchmark::State& state, mxq::xq::StepMode child,
               mxq::xq::StepMode desc, bool pushdown) {
  auto& inst = mxq::bench::XMarkInstance::Get(kScale * mxq::bench::ScaleEnv());
  int qn = static_cast<int>(state.range(0));
  mxq::xq::EvalOptions eo;
  eo.child_mode = child;
  eo.desc_mode = desc;
  eo.nametest_pushdown = pushdown;
  size_t n = 0;
  mxq::ScanStats scan;
  for (auto _ : state) n = inst.Run(qn, &eo, /*join_recognition=*/true, &scan);
  state.counters["result_items"] = static_cast<double>(n);
  state.counters["slots_touched"] = static_cast<double>(scan.slots_touched);
  state.SetLabel(mxq::xmark::XMarkQueryLabel(qn));
}

using mxq::xq::StepMode;

void IterChild_IterDesc(benchmark::State& s) {
  RunConfig(s, StepMode::kIterative, StepMode::kIterative, false);
}
void IterChild_LLDesc(benchmark::State& s) {
  RunConfig(s, StepMode::kIterative, StepMode::kLoopLifted, false);
}
void LLChild_IterDesc(benchmark::State& s) {
  RunConfig(s, StepMode::kLoopLifted, StepMode::kIterative, false);
}
void LLChild_LLDesc(benchmark::State& s) {
  RunConfig(s, StepMode::kLoopLifted, StepMode::kLoopLifted, false);
}
void LLChild_LLDesc_NameTest(benchmark::State& s) {
  RunConfig(s, StepMode::kLoopLifted, StepMode::kLoopLifted, true);
}

}  // namespace

BENCHMARK(IterChild_IterDesc)->DenseRange(1, 20)->Unit(benchmark::kMillisecond);
BENCHMARK(IterChild_LLDesc)->DenseRange(1, 20)->Unit(benchmark::kMillisecond);
BENCHMARK(LLChild_IterDesc)->DenseRange(1, 20)->Unit(benchmark::kMillisecond);
BENCHMARK(LLChild_LLDesc)->DenseRange(1, 20)->Unit(benchmark::kMillisecond);
BENCHMARK(LLChild_LLDesc_NameTest)
    ->DenseRange(1, 20)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
