// Figure 13: XQuery join optimization — join recognition vs cross product.
//
// Q8-Q12 compiled twice: with the indep-driven join recognition (existential
// theta-joins, §4.1/§4.2) and without (the loop-lifted "Cartesian product"
// plans). The paper ran this on the 11 MB document and reports one to two
// orders of magnitude difference, with the cross-product plans becoming
// infeasible beyond 110 MB. The cross-product configuration here uses a
// smaller default document for exactly that reason.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

constexpr double kScale = 0.02;

void WithJoinRecognition(benchmark::State& state) {
  auto& inst = mxq::bench::XMarkInstance::Get(kScale * mxq::bench::ScaleEnv());
  int qn = static_cast<int>(state.range(0));
  mxq::xq::EvalOptions eo;
  size_t n = 0;
  for (auto _ : state) n = inst.Run(qn, &eo, /*join_recognition=*/true);
  state.counters["result_items"] = static_cast<double>(n);
  state.counters["exist_joins"] =
      static_cast<double>(eo.alg.stats.exist_index_join +
                          eo.alg.stats.exist_nested_loop);
}

void CrossProduct(benchmark::State& state) {
  auto& inst = mxq::bench::XMarkInstance::Get(kScale * mxq::bench::ScaleEnv());
  int qn = static_cast<int>(state.range(0));
  mxq::xq::EvalOptions eo;
  size_t n = 0;
  for (auto _ : state) n = inst.Run(qn, &eo, /*join_recognition=*/false);
  state.counters["result_items"] = static_cast<double>(n);
  state.counters["tuples_materialized"] =
      static_cast<double>(eo.alg.stats.tuples_materialized);
}

}  // namespace

BENCHMARK(WithJoinRecognition)
    ->DenseRange(8, 12)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(CrossProduct)->DenseRange(8, 12)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
