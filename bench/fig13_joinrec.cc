// Figure 13: XQuery join optimization — join recognition vs cross product.
//
// Q8-Q12 compiled twice: with the indep-driven join recognition (existential
// theta-joins, §4.1/§4.2) and without (the loop-lifted "Cartesian product"
// plans). The paper ran this on the 11 MB document and reports one to two
// orders of magnitude difference, with the cross-product plans becoming
// infeasible beyond 110 MB. The cross-product configuration here uses a
// smaller default document for exactly that reason.
//
// This binary additionally carries the *join kernel* ablation: the
// radix-partitioned flat-table join (algebra/radix.h) vs. the legacy
// pointer-chasing `unordered_map<key, vector<row>>` join, both as
// macro-level query runs (all cache-conscious kernels on/off) and as an
// isolated kernel microbenchmark. With MXQ_BENCH_JSON set, a kernel
// comparison summary is written there (consumed by bench/run_all.sh).

#include <benchmark/benchmark.h>

#include <random>

#include "algebra/ops.h"
#include "bench_util.h"

namespace {

constexpr double kScale = 0.02;

using mxq::bench::SetKernelFlags;

void RunJoinQueries(benchmark::State& state, bool join_recognition,
                    bool kernels) {
  auto& inst = mxq::bench::XMarkInstance::Get(kScale * mxq::bench::ScaleEnv());
  int qn = static_cast<int>(state.range(0));
  mxq::xq::EvalOptions eo;
  SetKernelFlags(&eo.alg, kernels);
  size_t n = 0;
  for (auto _ : state) n = inst.Run(qn, &eo, join_recognition);
  state.counters["result_items"] = static_cast<double>(n);
  state.counters["exist_joins"] =
      static_cast<double>(eo.alg.stats.exist_index_join +
                          eo.alg.stats.exist_nested_loop);
  state.counters["radix_joins"] =
      static_cast<double>(eo.alg.stats.radix_joins);
  state.counters["radix_partitions"] =
      static_cast<double>(eo.alg.stats.radix_partitions);
  state.counters["tuples_materialized"] =
      static_cast<double>(eo.alg.stats.tuples_materialized);
}

void WithJoinRecognition(benchmark::State& state) {
  RunJoinQueries(state, /*join_recognition=*/true, /*kernels=*/true);
}

// Pre-PR execution kernels (ablation baseline for BENCH_pr1.json).
void WithJoinRecognitionLegacyKernels(benchmark::State& state) {
  RunJoinQueries(state, /*join_recognition=*/true, /*kernels=*/false);
}

void CrossProduct(benchmark::State& state) {
  RunJoinQueries(state, /*join_recognition=*/false, /*kernels=*/true);
}

// ---------------------------------------------------------------------------
// join kernel microbenchmark: radix vs legacy build+probe
// ---------------------------------------------------------------------------

struct JoinInputs {
  mxq::TablePtr left, right;
};

JoinInputs MakeJoinInputs(int64_t n) {
  std::mt19937 rng(42);
  std::vector<int64_t> lk(n), rk(n), rv(n);
  for (int64_t i = 0; i < n; ++i) {
    lk[i] = 1 + static_cast<int64_t>(rng() % n);
    rk[i] = 1 + static_cast<int64_t>(rng() % n);
    rv[i] = i;
  }
  using mxq::Column;
  auto left =
      mxq::alg::MakeTable({{"k", Column::MakeI64(std::move(lk))}});
  auto right =
      mxq::alg::MakeTable({{"k", Column::MakeI64(std::move(rk))},
                           {"v", Column::MakeI64(std::move(rv))}});
  return {left, right};
}

void JoinKernel(benchmark::State& state, bool radix, int threads = 1) {
  auto in = MakeJoinInputs(state.range(0));
  mxq::alg::ExecFlags fl;
  fl.positional = false;  // isolate the generic join kernel
  fl.threads = threads;
  SetKernelFlags(&fl, radix);
  for (auto _ : state) {
    auto j = mxq::alg::EquiJoinI64(fl, in.left, "k", in.right, "k",
                                   {{"v", "v"}});
    benchmark::DoNotOptimize(j->rows());
  }
  // Stats accumulate across the adaptive iteration count; report
  // per-iteration values so runs stay comparable.
  const double iters = static_cast<double>(state.iterations());
  state.counters["radix_joins"] =
      static_cast<double>(fl.stats.radix_joins) / iters;
  state.counters["radix_partitions"] =
      static_cast<double>(fl.stats.radix_partitions) / iters;
  state.counters["par_tasks"] =
      static_cast<double>(fl.stats.par_tasks) / iters;
}

void JoinKernelRadix(benchmark::State& s) { JoinKernel(s, true); }
void JoinKernelLegacy(benchmark::State& s) { JoinKernel(s, false); }
// Partition-parallel radix join at the thread count in range(1).
void JoinKernelRadixThreads(benchmark::State& s) {
  JoinKernel(s, true, static_cast<int>(s.range(1)));
}

// ---------------------------------------------------------------------------
// item-key join kernel: dictionary-coded vs 16-byte item probe
// ---------------------------------------------------------------------------

struct ItemJoinInputs {
  std::unique_ptr<mxq::DocumentManager> mgr;
  // Each variant joins its natural physical representation: the legacy
  // probe gets 16-byte item columns, the dict probe gets the 8-byte code
  // columns that atomization produces natively in real plans.
  mxq::TablePtr left, right;            // kItem key columns
  mxq::TablePtr left_dict, right_dict;  // kDict key columns
};

/// Item keys mixing the value classes XMark joins see: interned strings
/// (person ids), ints and doubles sharing a value domain.
ItemJoinInputs MakeItemJoinInputs(int64_t n) {
  ItemJoinInputs in;
  in.mgr = std::make_unique<mxq::DocumentManager>();
  std::mt19937 rng(7);
  const int64_t domain = std::max<int64_t>(n / 4, 1);
  auto make = [&](int64_t rows) {
    std::vector<mxq::Item> v(rows);
    for (auto& it : v) {
      int64_t k = static_cast<int64_t>(rng() % domain);
      switch (rng() % 3) {
        case 0:
          it = mxq::Item::String(
              in.mgr->strings().Intern("person" + std::to_string(k)));
          break;
        case 1: it = mxq::Item::Int(k); break;
        default: it = mxq::Item::Double(static_cast<double>(k)); break;
      }
    }
    return mxq::Column::MakeItem(std::move(v));
  };
  std::vector<int64_t> sid(n);
  for (int64_t i = 0; i < n; ++i) sid[i] = i;
  in.left = mxq::alg::MakeTable({{"v", make(n)}});
  in.right = mxq::alg::MakeTable(
      {{"v", make(n)}, {"sid", mxq::Column::MakeI64(std::move(sid))}});
  mxq::alg::ExecFlags dict_fl;
  in.left_dict = mxq::alg::Project(
      mxq::alg::AppendAtomize(*in.mgr, dict_fl, in.left, "vd", "v"),
      {{"vd", "v"}});
  in.right_dict = mxq::alg::Project(
      mxq::alg::AppendAtomize(*in.mgr, dict_fl, in.right, "vd", "v"),
      {{"vd", "v"}, {"sid", "sid"}});
  return in;
}

void ItemJoinKernel(benchmark::State& state, bool dict, int threads = 1) {
  auto in = MakeItemJoinInputs(state.range(0));
  mxq::alg::ExecFlags fl;
  fl.threads = threads;
  fl.dict_items = dict;
  const mxq::TablePtr& left = dict ? in.left_dict : in.left;
  const mxq::TablePtr& right = dict ? in.right_dict : in.right;
  for (auto _ : state) {
    auto j = mxq::alg::EquiJoinItem(*in.mgr, fl, left, "v", right, "v",
                                    {{"sid", "sid"}});
    benchmark::DoNotOptimize(j->rows());
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["dict_joins"] =
      static_cast<double>(fl.stats.dict_joins) / iters;
  state.counters["join_key_bytes"] =
      static_cast<double>(fl.stats.join_key_bytes) / iters;
  state.counters["par_tasks"] = static_cast<double>(fl.stats.par_tasks) / iters;
}

void ItemJoinKernelDict(benchmark::State& s) { ItemJoinKernel(s, true); }
void ItemJoinKernelLegacy(benchmark::State& s) { ItemJoinKernel(s, false); }
// The formerly-serial item probe across the thread pool (dict-coded).
void ItemJoinKernelDictThreads(benchmark::State& s) {
  ItemJoinKernel(s, true, static_cast<int>(s.range(1)));
}

/// Direct best-of timing of the two kernel paths, written as JSON for
/// bench/run_all.sh (MXQ_BENCH_JSON names the output file). Each size also
/// carries the partition-parallel thread sweep (1/2/4 threads) of the
/// radix kernel — speedup_vs_t1 is the Figure-15-style scalability series
/// (bounded by the machine: `num_cpus` in the merged artifact's context).
void WriteKernelSummary(const char* path) {
  mxq::bench::JsonWriter w;
  w.BeginObject();
  w.Field("bench", std::string("fig13_joinrec"));
  w.BeginArray("kernels");
  for (int64_t n : {int64_t{1} << 16, int64_t{1} << 20}) {
    auto in = MakeJoinInputs(n);
    auto run = [&](bool radix, int threads) {
      mxq::alg::ExecFlags fl;
      fl.positional = false;
      fl.threads = threads;
      SetKernelFlags(&fl, radix);
      auto j = mxq::alg::EquiJoinI64(fl, in.left, "k", in.right, "k",
                                     {{"v", "v"}});
      benchmark::DoNotOptimize(j->rows());
    };
    const int reps = n > (1 << 18) ? 5 : 20;
    double radix_ms = mxq::bench::BestOfMs(reps, [&] { run(true, 1); });
    double legacy_ms = mxq::bench::BestOfMs(reps, [&] { run(false, 1); });
    w.BeginObject();
    w.Field("kernel", std::string("equijoin_i64"));
    w.Field("n", n);
    w.Field("radix_ms", radix_ms);
    w.Field("legacy_ms", legacy_ms);
    w.Field("speedup", legacy_ms / radix_ms);
    w.BeginArray("parallel");
    double t1_ms = 0;  // the sweep's own threads=1 point is the baseline
    for (int threads : {1, 2, 4}) {
      double ms = mxq::bench::BestOfMs(reps, [&] { run(true, threads); });
      if (threads == 1) t1_ms = ms;
      w.BeginObject();
      w.Field("threads", static_cast<int64_t>(threads));
      w.Field("radix_ms", ms);
      w.Field("speedup_vs_t1", t1_ms > 0 ? t1_ms / ms : 1.0);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  // Item-key join: dict-on/off ablation + thread sweep of the now-parallel
  // probe. `key_bytes_ratio` is the ExecStats-reported key-column traffic
  // of the dict-coded join relative to the 16-byte item path (the PR's
  // acceptance bar is <= 0.5).
  for (int64_t n : {int64_t{1} << 16, int64_t{1} << 19}) {
    auto in = MakeItemJoinInputs(n);
    auto run = [&](bool dict, int threads, mxq::alg::ExecStats* stats) {
      mxq::alg::ExecFlags fl;
      fl.threads = threads;
      fl.dict_items = dict;
      auto j = mxq::alg::EquiJoinItem(*in.mgr, fl,
                                      dict ? in.left_dict : in.left, "v",
                                      dict ? in.right_dict : in.right, "v",
                                      {{"sid", "sid"}});
      benchmark::DoNotOptimize(j->rows());
      if (stats) *stats = fl.stats;
    };
    const int reps = n > (1 << 17) ? 5 : 20;
    mxq::alg::ExecStats dict_stats, legacy_stats;
    double dict_ms =
        mxq::bench::BestOfMs(reps, [&] { run(true, 1, &dict_stats); });
    double legacy_ms =
        mxq::bench::BestOfMs(reps, [&] { run(false, 1, &legacy_stats); });
    w.BeginObject();
    w.Field("kernel", std::string("equijoin_item"));
    w.Field("n", n);
    w.Field("dict_ms", dict_ms);
    w.Field("legacy_ms", legacy_ms);
    w.Field("speedup", legacy_ms / dict_ms);
    w.Field("dict_key_bytes", dict_stats.join_key_bytes);
    w.Field("legacy_key_bytes", legacy_stats.join_key_bytes);
    w.Field("key_bytes_ratio",
            static_cast<double>(dict_stats.join_key_bytes) /
                static_cast<double>(legacy_stats.join_key_bytes));
    w.BeginArray("parallel");
    const double t1_ms = dict_ms;  // threads=1 was just measured above
    for (int threads : {1, 2, 4}) {
      double ms = threads == 1
                      ? t1_ms
                      : mxq::bench::BestOfMs(
                            reps, [&] { run(true, threads, nullptr); });
      w.BeginObject();
      w.Field("threads", static_cast<int64_t>(threads));
      w.Field("dict_ms", ms);
      w.Field("speedup_vs_t1", t1_ms > 0 ? t1_ms / ms : 1.0);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.WriteFile(path);
}

}  // namespace

BENCHMARK(WithJoinRecognition)
    ->DenseRange(8, 12)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(WithJoinRecognitionLegacyKernels)
    ->DenseRange(8, 12)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(CrossProduct)->DenseRange(8, 12)->Unit(benchmark::kMillisecond);
BENCHMARK(JoinKernelRadix)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(JoinKernelLegacy)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(JoinKernelRadixThreads)
    ->ArgsProduct({{1 << 20}, {1, 2, 4}});
BENCHMARK(ItemJoinKernelDict)->Arg(1 << 16)->Arg(1 << 19);
BENCHMARK(ItemJoinKernelLegacy)->Arg(1 << 16)->Arg(1 << 19);
BENCHMARK(ItemJoinKernelDictThreads)
    ->ArgsProduct({{1 << 19}, {1, 2, 4}});

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  if (const char* path = std::getenv("MXQ_BENCH_JSON"))
    WriteKernelSummary(path);
  benchmark::Shutdown();
  return 0;
}
