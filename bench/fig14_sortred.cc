// Figure 14: benefits of sort reduction (order-aware peephole optimization).
//
// Q1-Q20 executed with the ord/grpord machinery enabled ("order preserving":
// sorts elided, refine-sorts, streaming DENSE_RANK) vs disabled ("non-order
// preserving": every order requirement enforced by a full sort, grouped
// numbering by sorting). The paper reports a ~2x overall speedup on 110 MB.
//
// This binary additionally carries the *sort kernel* ablation: the
// dense-key counting scatter (common/counting_sort.h) vs. the legacy
// comparator std::stable_sort, as macro query runs (kernels on/off) and as
// an isolated kernel microbenchmark. With MXQ_BENCH_JSON set, a kernel
// comparison summary is written there (consumed by bench/run_all.sh).

#include <benchmark/benchmark.h>

#include <random>

#include "algebra/ops.h"
#include "bench_util.h"

namespace {

constexpr double kScale = 0.1;

using mxq::bench::SetKernelFlags;

void Run(benchmark::State& state, bool order_opt, bool kernels) {
  auto& inst = mxq::bench::XMarkInstance::Get(kScale * mxq::bench::ScaleEnv());
  int qn = static_cast<int>(state.range(0));
  mxq::xq::EvalOptions eo;
  eo.alg.order_opt = order_opt;
  SetKernelFlags(&eo.alg, kernels);
  size_t n = 0;
  for (auto _ : state) n = inst.Run(qn, &eo);
  state.counters["result_items"] = static_cast<double>(n);
  state.counters["sorts_performed"] =
      static_cast<double>(eo.alg.stats.sorts_performed);
  state.counters["sorts_elided"] =
      static_cast<double>(eo.alg.stats.sorts_elided);
  state.counters["refine_sorts"] =
      static_cast<double>(eo.alg.stats.refine_sorts);
  state.counters["counting_sorts"] =
      static_cast<double>(eo.alg.stats.counting_sorts);
  state.counters["sel_selects"] =
      static_cast<double>(eo.alg.stats.sel_selects);
  state.counters["rownum_streaming"] =
      static_cast<double>(eo.alg.stats.rownum_streaming);
  state.counters["rownum_sorting"] =
      static_cast<double>(eo.alg.stats.rownum_sorting);
}

void OrderPreserving(benchmark::State& s) { Run(s, true, true); }
void NonOrderPreserving(benchmark::State& s) { Run(s, false, true); }
// Pre-PR execution kernels (ablation baseline for BENCH_pr1.json).
void OrderPreservingLegacyKernels(benchmark::State& s) { Run(s, true, false); }

// ---------------------------------------------------------------------------
// sort kernel microbenchmark: counting scatter vs stable_sort
// ---------------------------------------------------------------------------

mxq::TablePtr MakeSortInput(int64_t n) {
  std::mt19937 rng(7);
  // Loop-lifted shape: dense-ish iter keys with duplicates + a pos column.
  std::vector<int64_t> iter(n), pos(n);
  for (int64_t i = 0; i < n; ++i) {
    iter[i] = 1 + static_cast<int64_t>(rng() % (n / 4 + 1));
    pos[i] = static_cast<int64_t>(rng() % 1000);
  }
  using mxq::Column;
  return mxq::alg::MakeTable({{"iter", Column::MakeI64(std::move(iter))},
                              {"pos", Column::MakeI64(std::move(pos))}});
}

void SortKernel(benchmark::State& state, bool counting) {
  mxq::DocumentManager mgr;
  auto t = MakeSortInput(state.range(0));
  mxq::alg::ExecFlags fl;
  fl.order_opt = false;  // isolate the physical sort
  SetKernelFlags(&fl, counting);
  for (auto _ : state) {
    auto s = mxq::alg::Sort(mgr, fl, t, {"iter", "pos"});
    benchmark::DoNotOptimize(s->rows());
  }
  state.counters["counting_sorts"] =
      static_cast<double>(fl.stats.counting_sorts);
}

void SortKernelCounting(benchmark::State& s) { SortKernel(s, true); }
void SortKernelLegacy(benchmark::State& s) { SortKernel(s, false); }

/// Direct best-of timing of the two kernel paths, written as JSON for
/// bench/run_all.sh (MXQ_BENCH_JSON names the output file).
void WriteKernelSummary(const char* path) {
  mxq::DocumentManager mgr;
  mxq::bench::JsonWriter w;
  w.BeginObject();
  w.Field("bench", std::string("fig14_sortred"));
  w.BeginArray("kernels");
  for (int64_t n : {int64_t{1} << 16, int64_t{1} << 20}) {
    auto t = MakeSortInput(n);
    auto run = [&](bool counting) {
      mxq::alg::ExecFlags fl;
      fl.order_opt = false;
      SetKernelFlags(&fl, counting);
      auto s = mxq::alg::Sort(mgr, fl, t, {"iter", "pos"});
      benchmark::DoNotOptimize(s->rows());
    };
    const int reps = n > (1 << 18) ? 5 : 20;
    double counting_ms = mxq::bench::BestOfMs(reps, [&] { run(true); });
    double legacy_ms = mxq::bench::BestOfMs(reps, [&] { run(false); });
    w.BeginObject();
    w.Field("kernel", std::string("sort_dense_iter"));
    w.Field("n", n);
    w.Field("counting_ms", counting_ms);
    w.Field("legacy_ms", legacy_ms);
    w.Field("speedup", legacy_ms / counting_ms);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.WriteFile(path);
}

}  // namespace

BENCHMARK(OrderPreserving)->DenseRange(1, 20)->Unit(benchmark::kMillisecond);
BENCHMARK(NonOrderPreserving)
    ->DenseRange(1, 20)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(OrderPreservingLegacyKernels)
    ->DenseRange(1, 20)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(SortKernelCounting)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(SortKernelLegacy)->Arg(1 << 16)->Arg(1 << 20);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  if (const char* path = std::getenv("MXQ_BENCH_JSON"))
    WriteKernelSummary(path);
  benchmark::Shutdown();
  return 0;
}
