// Figure 14: benefits of sort reduction (order-aware peephole optimization).
//
// Q1-Q20 executed with the ord/grpord machinery enabled ("order preserving":
// sorts elided, refine-sorts, streaming DENSE_RANK) vs disabled ("non-order
// preserving": every order requirement enforced by a full sort, grouped
// numbering by sorting). The paper reports a ~2x overall speedup on 110 MB.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

constexpr double kScale = 0.1;

void Run(benchmark::State& state, bool order_opt) {
  auto& inst = mxq::bench::XMarkInstance::Get(kScale * mxq::bench::ScaleEnv());
  int qn = static_cast<int>(state.range(0));
  mxq::xq::EvalOptions eo;
  eo.alg.order_opt = order_opt;
  size_t n = 0;
  for (auto _ : state) n = inst.Run(qn, &eo);
  state.counters["result_items"] = static_cast<double>(n);
  state.counters["sorts_performed"] =
      static_cast<double>(eo.alg.stats.sorts_performed);
  state.counters["sorts_elided"] =
      static_cast<double>(eo.alg.stats.sorts_elided);
  state.counters["refine_sorts"] =
      static_cast<double>(eo.alg.stats.refine_sorts);
  state.counters["rownum_streaming"] =
      static_cast<double>(eo.alg.stats.rownum_streaming);
  state.counters["rownum_sorting"] =
      static_cast<double>(eo.alg.stats.rownum_sorting);
}

void OrderPreserving(benchmark::State& s) { Run(s, true); }
void NonOrderPreserving(benchmark::State& s) { Run(s, false); }

}  // namespace

BENCHMARK(OrderPreserving)->DenseRange(1, 20)->Unit(benchmark::kMillisecond);
BENCHMARK(NonOrderPreserving)
    ->DenseRange(1, 20)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
