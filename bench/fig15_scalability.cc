// Figure 15: scalability with respect to document size.
//
// Q1-Q20 over a geometric document-size series (x10 per step, like the
// paper's 110 MB / 1.1 GB / 11 GB). The paper's findings to reproduce:
// near-linear scaling overall; Q11/Q12 quadratic (theta-join result size);
// Q6/Q7/Q15/Q16 sub-linear thanks to pushed-down nametests on indexes.
// Normalization to the smallest size is reported as the `normalized`
// counter (the y-axis of Figure 15).

#include <benchmark/benchmark.h>

#include <chrono>
#include <map>

#include "bench_util.h"

namespace {

const double kScales[] = {0.002, 0.02, 0.2};

std::map<std::pair<int, int>, double>& BaseTimes() {
  static std::map<std::pair<int, int>, double> t;
  return t;
}

void Scalability(benchmark::State& state) {
  int qn = static_cast<int>(state.range(0));
  int si = static_cast<int>(state.range(1));
  double scale = kScales[si] * mxq::bench::ScaleEnv();
  auto& inst = mxq::bench::XMarkInstance::Get(scale);
  mxq::xq::EvalOptions eo;
  eo.nametest_pushdown = true;  // the paper's sub-linear queries need this
  size_t n = 0;
  for (auto _ : state) n = inst.Run(qn, &eo);
  double ms = 0;
  // benchmark reports mean internally; recompute a representative time for
  // the normalized series from one extra run.
  auto t0 = std::chrono::steady_clock::now();
  inst.Run(qn, &eo);
  ms = std::chrono::duration<double, std::milli>(
           std::chrono::steady_clock::now() - t0)
           .count();
  if (si == 0) BaseTimes()[{qn, 0}] = ms;
  double base = BaseTimes().count({qn, 0}) ? BaseTimes()[{qn, 0}] : ms;
  state.counters["result_items"] = static_cast<double>(n);
  state.counters["doc_bytes"] = static_cast<double>(inst.xml_size());
  state.counters["normalized"] = base > 0 ? ms / base : 0;
}

}  // namespace

BENCHMARK(Scalability)
    ->ArgsProduct({benchmark::CreateDenseRange(1, 20, 1), {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
