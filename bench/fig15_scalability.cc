// Figure 15 (reinterpreted for the partition-parallel core): scalability
// with respect to *thread count*.
//
// The paper's Figure 15 scaled the document; with the execution core now
// partition-parallel (common/thread_pool.h, docs/execution.md "Parallel
// execution"), the axis that matters for the memory-wall story is cores:
// bound the working set per core, then scale across cores. This binary
// sweeps the three parallel kernels (radix join build+probe, counting
// sort, morsel filter) and a pair of join-heavy XMark queries over
// ExecFlags::threads = 1/2/4/N (N = the machine's hardware concurrency),
// and — with MXQ_BENCH_JSON set — writes a per-kernel speedup series via
// the bench_util.h JSON emitter for bench/run_all.sh to merge into
// BENCH_pr<N>.json. All parallel paths are bit-identical to threads=1, so
// every sweep point does the same logical work.
//
// Caveat recorded in the artifact: speedups are bounded by `num_cpus` in
// the merged context; on a single-core container the sweep documents the
// (near-1x) overhead of the parallel machinery rather than a speedup.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <random>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"

namespace {

constexpr double kScale = 0.02;

using mxq::Column;
using mxq::bench::SetKernelFlags;

std::vector<int> SweepThreads() {
  std::vector<int> t = {1, 2, 4};
  int n = mxq::HardwareThreads();
  if (std::find(t.begin(), t.end(), n) == t.end()) t.push_back(n);
  return t;
}

// ---------------------------------------------------------------------------
// kernel fixtures (shared by the benchmarks and the JSON sweep)
// ---------------------------------------------------------------------------

struct KernelInputs {
  mxq::TablePtr join_left, join_right;  // random ~50% match keys
  mxq::TablePtr sort_table;             // dense (iter, pos) + payload
  mxq::TablePtr filter_table;           // bool column, ~50% selectivity
};

KernelInputs MakeKernelInputs(int64_t n) {
  std::mt19937 rng(7);
  std::vector<int64_t> lk(n), rk(n), rv(n), sk(n), sp(n), pay(n);
  std::vector<mxq::Item> flags(n);
  for (int64_t i = 0; i < n; ++i) {
    lk[i] = 1 + static_cast<int64_t>(rng() % n);
    rk[i] = 1 + static_cast<int64_t>(rng() % n);
    rv[i] = i;
    sk[i] = 1 + static_cast<int64_t>(rng() % (n / 4 + 1));
    sp[i] = 1 + static_cast<int64_t>(rng() % 512);
    pay[i] = static_cast<int64_t>(rng());
    flags[i] = mxq::Item::Bool(rng() % 2 == 0);
  }
  KernelInputs in;
  in.join_left = mxq::alg::MakeTable({{"k", Column::MakeI64(std::move(lk))}});
  in.join_right =
      mxq::alg::MakeTable({{"k", Column::MakeI64(std::move(rk))},
                           {"v", Column::MakeI64(std::move(rv))}});
  in.sort_table =
      mxq::alg::MakeTable({{"iter", Column::MakeI64(std::move(sk))},
                           {"pos", Column::MakeI64(std::move(sp))},
                           {"payload", Column::MakeI64(pay)}});
  in.filter_table =
      mxq::alg::MakeTable({{"b", Column::MakeItem(std::move(flags))},
                           {"payload", Column::MakeI64(std::move(pay))}});
  return in;
}

mxq::alg::ExecFlags FlagsAt(int threads) {
  mxq::alg::ExecFlags fl;
  fl.positional = false;
  fl.threads = threads;
  return fl;
}

void RunJoin(const KernelInputs& in, int threads) {
  auto fl = FlagsAt(threads);
  auto j = mxq::alg::EquiJoinI64(fl, in.join_left, "k", in.join_right, "k",
                                 {{"v", "v"}});
  benchmark::DoNotOptimize(j->rows());
}

void RunSort(const mxq::DocumentManager& mgr, const KernelInputs& in,
             int threads) {
  auto fl = FlagsAt(threads);
  auto s = mxq::alg::Sort(mgr, fl, in.sort_table, {"iter", "pos"});
  benchmark::DoNotOptimize(s->rows());
}

void RunFilter(const mxq::DocumentManager& mgr, const KernelInputs& in,
               int threads) {
  auto fl = FlagsAt(threads);
  // Fresh shallow copy per run: SelectTrue's output is lazy and the input
  // is untouched, but the copy keeps each run's work identical.
  auto fresh = in.filter_table->ShallowCopy();
  auto f = mxq::alg::SelectTrue(mgr, fl, fresh, "b");
  benchmark::DoNotOptimize(f->rows());
}

// ---------------------------------------------------------------------------
// google-benchmark sweeps: range(0) = thread count
// ---------------------------------------------------------------------------

const KernelInputs& Inputs() {
  static KernelInputs in = MakeKernelInputs(int64_t{1} << 20);
  return in;
}

void JoinThreads(benchmark::State& state) {
  const auto& in = Inputs();
  for (auto _ : state) RunJoin(in, static_cast<int>(state.range(0)));
}

void SortThreads(benchmark::State& state) {
  mxq::DocumentManager mgr;
  const auto& in = Inputs();
  for (auto _ : state) RunSort(mgr, in, static_cast<int>(state.range(0)));
}

void FilterThreads(benchmark::State& state) {
  mxq::DocumentManager mgr;
  const auto& in = Inputs();
  for (auto _ : state) RunFilter(mgr, in, static_cast<int>(state.range(0)));
}

/// Join-recognition XMark queries (Q8/Q9, the join-heavy ones) at a given
/// evaluator thread count.
void QueryThreads(benchmark::State& state) {
  auto& inst = mxq::bench::XMarkInstance::Get(kScale * mxq::bench::ScaleEnv());
  int qn = static_cast<int>(state.range(0));
  mxq::xq::EvalOptions eo;
  SetKernelFlags(&eo.alg, true);
  eo.alg.threads = static_cast<int>(state.range(1));
  size_t n = 0;
  for (auto _ : state) n = inst.Run(qn, &eo);
  // Stats accumulate across the adaptive iteration count; report
  // per-iteration values so thread counts stay comparable.
  const double iters = static_cast<double>(state.iterations());
  state.counters["result_items"] = static_cast<double>(n);
  state.counters["par_tasks"] =
      static_cast<double>(eo.alg.stats.par_tasks) / iters;
  state.counters["join_ms"] = eo.alg.stats.join_ms / iters;
  state.counters["sort_ms"] = eo.alg.stats.sort_ms / iters;
}

// ---------------------------------------------------------------------------
// JSON thread-sweep summary for bench/run_all.sh
// ---------------------------------------------------------------------------

void WriteThreadSweep(const char* path) {
  mxq::DocumentManager mgr;
  const int64_t n = int64_t{1} << 20;
  auto in = MakeKernelInputs(n);
  mxq::bench::JsonWriter w;
  w.BeginObject();
  w.Field("bench", std::string("fig15_scalability"));
  w.Field("hardware_threads", static_cast<int64_t>(mxq::HardwareThreads()));
  w.Field("n", n);
  w.BeginArray("kernels");
  struct Kernel {
    const char* name;
    std::function<void(int)> run;
  };
  const Kernel kernels[] = {
      {"equijoin_i64", [&](int t) { RunJoin(in, t); }},
      {"counting_sort", [&](int t) { RunSort(mgr, in, t); }},
      {"filter_scan", [&](int t) { RunFilter(mgr, in, t); }},
  };
  for (const auto& k : kernels) {
    w.BeginObject();
    w.Field("kernel", std::string(k.name));
    w.BeginArray("threads");
    double t1_ms = 0;
    for (int t : SweepThreads()) {
      double ms = mxq::bench::BestOfMs(5, [&] { k.run(t); });
      if (t == 1) t1_ms = ms;
      w.BeginObject();
      w.Field("threads", static_cast<int64_t>(t));
      w.Field("ms", ms);
      w.Field("speedup_vs_t1", t1_ms > 0 ? t1_ms / ms : 1.0);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.WriteFile(path);
}

}  // namespace

BENCHMARK(JoinThreads)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(SortThreads)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(FilterThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(QueryThreads)
    ->ArgsProduct({{8, 9}, {1, 2, 4}})
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  if (const char* path = std::getenv("MXQ_BENCH_JSON"))
    WriteThreadSweep(path);
  benchmark::Shutdown();
  return 0;
}
