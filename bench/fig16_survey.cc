// Figure 16 / Table 2: survey of published XMark results, normalized to
// MonetDB/XQuery.
//
// The paper collects published per-query times from the literature, divides
// them by SPECint-CPU2000 ratios, and plots everything relative to MXQ.
// Those systems cannot be re-run; this harness (a) replays the paper's own
// published numbers (its Table 1, 11 MB column, plus the Table 2 SPEC
// factors) as data, and (b) measures *this* implementation and the naive
// baseline on the equivalent document, printing the same normalized series
// so the relative picture — joins separating the field, MXQ ahead on
// path-heavy queries — can be compared against the paper's plot.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_util.h"

namespace {

// Paper Table 1, 11 MB column (seconds); -1 == DNF / not reported.
struct PublishedRow {
  const char* system;
  double spec_factor;  // Table 2 normalization (already applied in Table 1)
  double q[20];
};

const PublishedRow kPublished[] = {
    {"MXQ-paper", 1.00,
     {0.01, 0.02, 0.14, 0.03, 0.01, 0.00, 0.00, 0.04, 0.05, 2.54,
      0.11, 0.09, 0.03, 0.12, 0.03, 0.03, 0.03, 0.02, 0.06, 0.11}},
    {"Galax-0.5", 1.00,
     {0.06, 0.03, 0.14, 0.22, 0.05, 1.30, 2.68, 0.16, 113.23, 1.74,
      2.62, 1.44, 0.03, 1.92, 0.02, 0.03, 0.06, 0.07, 1.17, 0.28}},
    {"X-Hive-6.0", 1.00,
     {0.37, 0.45, 0.65, 0.10, 0.13, 1.07, 1.57, 0.85, 32.25, 5.28,
      98.91, 23.39, 0.10, 0.72, 0.03, 0.03, 0.09, 0.08, 0.67, 0.11}},
    {"BDB-XML-2.2", 1.00,
     {0.05, 0.13, 0.34, 0.39, 0.10, 1.14, 1.31, 51.21, 47.03, 5.15,
      121.75, 118.70, 0.08, 1.07, 0.13, 0.14, 0.20, 0.19, 0.57, 0.34}},
    {"eXist-2006", 1.00,
     {0.10, 5.67, 6.61, 15.40, 185.47, 0.01, 0.01, 429.89, 333.47,
      1559.17, 374.46, 1584.91, 0.03, 0.44, 0.05, 22.21, 0.18, 0.12,
      0.51, 0.98}},
};

constexpr double kScale = 0.1;  // the 11 MB point at MXQ_SCALE=1

void PrintSurvey() {
  auto& inst = mxq::bench::XMarkInstance::Get(kScale * mxq::bench::ScaleEnv());
  mxq::xq::EvalOptions eo;
  eo.nametest_pushdown = true;

  // Measure this implementation (best of 3, like the paper's best-of-5).
  double ours[20];
  for (int qn = 1; qn <= 20; ++qn) {
    double best = 1e18;
    for (int rep = 0; rep < 3; ++rep) {
      auto t0 = std::chrono::steady_clock::now();
      inst.Run(qn, &eo);
      best = std::min(best, std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count());
    }
    ours[qn - 1] = best;
  }

  std::printf(
      "\nFigure 16 replay: published 11 MB XMark results (seconds, "
      "SPEC-normalized by the paper) with this reproduction appended.\n"
      "Times are *not* comparable across hardware generations; compare the "
      "normalized-to-MXQ ratios (who wins, and by what factor).\n\n");
  std::printf("%-14s", "system");
  for (int q = 1; q <= 20; ++q) std::printf("%9s", ("Q" + std::to_string(q)).c_str());
  std::printf("\n");
  for (const auto& row : kPublished) {
    std::printf("%-14s", row.system);
    for (int q = 0; q < 20; ++q) std::printf("%9.2f", row.q[q]);
    std::printf("\n");
  }
  std::printf("%-14s", "MXQ-repro");
  for (int q = 0; q < 20; ++q) std::printf("%9.3f", ours[q]);
  std::printf("\n\nnormalized to the respective MXQ (paper row / paper MXQ; "
              "repro row == 1.0 by construction):\n");
  for (const auto& row : kPublished) {
    std::printf("%-14s", row.system);
    for (int q = 0; q < 20; ++q) {
      double mxq = kPublished[0].q[q];
      if (mxq <= 0) mxq = 0.005;  // the paper reports 0.00 for Q6/Q7
      std::printf("%9.1f", row.q[q] / mxq);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

void SurveyMeasurement(benchmark::State& state) {
  auto& inst = mxq::bench::XMarkInstance::Get(kScale * mxq::bench::ScaleEnv());
  int qn = static_cast<int>(state.range(0));
  mxq::xq::EvalOptions eo;
  eo.nametest_pushdown = true;
  for (auto _ : state) inst.Run(qn, &eo);
}

}  // namespace

BENCHMARK(SurveyMeasurement)->DenseRange(1, 20)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  PrintSurvey();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
