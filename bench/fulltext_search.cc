// Fulltext search benchmark (docs/fulltext.md): ft:contains / ft:score via
// the inverted index (ExecFlags::fulltext, the default) against the naive
// subtree-scan fallback (MXQ_FT=0) on a synthetic word corpus. Both paths
// return byte-identical results (tests/fulltext_test.cc); this bench
// records what the posting-list probes buy. With MXQ_BENCH_JSON set, a
// kernel summary with the index-vs-scan speedups is written for
// bench/run_all.sh to merge into the BENCH_pr<N>.json artifact.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "bench_util.h"
#include "fulltext/index.h"
#include "xml/shredder.h"
#include "xquery/engine.h"

namespace {

using mxq::bench::JsonWriter;

// Deterministic corpus: `docs` documents of 6 paragraphs x 40 words drawn
// from a small vocabulary by an LCG, plus a rare needle ("cobalt") in 1 of
// 64 documents. Default scale 0.1 (bench/run_all.sh) => 2000 documents,
// ~960k tokens.
std::string MakeCorpus(int docs) {
  static const char* kVocab[] = {
      "alpha", "beta",  "gamma", "delta", "epsilon", "zeta",  "eta",
      "theta", "iota",  "kappa", "lambda", "mu",     "nu",    "xi",
      "omicron", "pi",  "rho",   "sigma", "tau",     "upsilon"};
  constexpr int kV = sizeof(kVocab) / sizeof(kVocab[0]);
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<int>((state >> 33) % kV);
  };
  std::string xml = "<corpus>";
  for (int d = 0; d < docs; ++d) {
    xml += "<doc>";
    for (int p = 0; p < 6; ++p) {
      xml += "<p>";
      for (int w = 0; w < 40; ++w) {
        if (w) xml += ' ';
        xml += kVocab[next()];
      }
      if (p == 1 && d % 64 == 3) xml += " cobalt";
      xml += "</p>";
    }
    xml += "</doc>";
  }
  xml += "</corpus>";
  return xml;
}

int DocsForScale() {
  const int docs = static_cast<int>(20000 * mxq::bench::ScaleEnv());
  return docs < 64 ? 64 : docs;
}

/// One shredded corpus + engine, cached per document count; the fulltext
/// index is built eagerly so the index-path timings never include the
/// one-off build.
class CorpusInstance {
 public:
  explicit CorpusInstance(int docs) : engine_(&mgr_) {
    mxq::ShredOptions opts;
    opts.build_fulltext = true;
    auto r = mxq::ShredDocument(&mgr_, "ft.xml", MakeCorpus(docs), opts);
    if (!r.ok()) std::abort();
  }

  const mxq::xq::CompiledQuery& Compiled(const std::string& q) {
    auto it = plans_.find(q);
    if (it == plans_.end()) {
      auto c = engine_.Compile(q);
      if (!c.ok()) std::abort();
      it = plans_.emplace(q, std::move(*c)).first;
    }
    return it->second;
  }

  size_t Run(const std::string& q, bool index_path) {
    mxq::xq::EvalOptions eo;
    eo.alg.fulltext = index_path;
    auto r = engine_.Execute(Compiled(q), &eo);
    if (!r.ok()) std::abort();
    return r->items.size();
  }

  static CorpusInstance& Get(int docs) {
    static std::map<int, std::unique_ptr<CorpusInstance>> cache;
    auto it = cache.find(docs);
    if (it == cache.end())
      it = cache.emplace(docs, std::make_unique<CorpusInstance>(docs)).first;
    return *it->second;
  }

 private:
  mxq::DocumentManager mgr_;
  mxq::xq::XQueryEngine engine_;
  std::map<std::string, mxq::xq::CompiledQuery> plans_;
};

const char* kQueries[] = {
    // rare term: high selectivity, the index's best case
    R"(count(for $d in doc("ft.xml")//doc
             where ft:contains($d, "cobalt") return $d))",
    // common term: every document matches, existence probes still cheap
    R"(count(for $d in doc("ft.xml")//doc
             where ft:contains($d, "alpha") return $d))",
    // phrase: k-way position merge on the index, window scan on fallback
    R"(count(for $d in doc("ft.xml")//doc
             where ft:contains($d, "alpha beta") return $d))",
    // conjunction of independent groups
    R"(count(for $d in doc("ft.xml")//doc
             where ft:contains($d, "cobalt", "sigma") return $d))",
    // BM25: tf extraction + scoring on every matching text node
    R"(count(for $d in doc("ft.xml")//doc
             where ft:score($d, "cobalt") > 0 return $d))",
};
const char* kQueryNames[] = {"contains_rare", "contains_common", "phrase",
                             "conjunction", "score_rare"};

void FtQuery(benchmark::State& s, bool index_path) {
  auto& inst = CorpusInstance::Get(DocsForScale());
  const std::string q = kQueries[s.range(0)];
  for (auto _ : s)
    benchmark::DoNotOptimize(inst.Run(q, index_path));
  s.SetLabel(kQueryNames[s.range(0)]);
}

void FulltextIndex(benchmark::State& s) { FtQuery(s, true); }
void FulltextScan(benchmark::State& s) { FtQuery(s, false); }

/// Direct best-of comparison of the two paths per query, with the speedup
/// the acceptance check reads from the merged artifact.
void WriteKernelSummary(const char* path) {
  auto& inst = CorpusInstance::Get(DocsForScale());
  JsonWriter w;
  w.BeginObject();
  w.Field("bench", std::string("fulltext_search"));
  w.Field("docs", static_cast<int64_t>(DocsForScale()));
  w.BeginArray("queries");
  for (int qi = 0; qi < 5; ++qi) {
    const std::string q = kQueries[qi];
    const int reps = 5;
    double index_ms = mxq::bench::BestOfMs(reps, [&] { inst.Run(q, true); });
    double scan_ms = mxq::bench::BestOfMs(reps, [&] { inst.Run(q, false); });
    w.BeginObject();
    w.Field("query", std::string(kQueryNames[qi]));
    w.Field("index_ms", index_ms);
    w.Field("scan_ms", scan_ms);
    w.Field("speedup", scan_ms / index_ms);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.WriteFile(path);
}

}  // namespace

BENCHMARK(FulltextIndex)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);
BENCHMARK(FulltextScan)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  if (const char* path = std::getenv("MXQ_BENCH_JSON"))
    WriteKernelSummary(path);
  benchmark::Shutdown();
  return 0;
}
