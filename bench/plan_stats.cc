// §4.1 plan statistics: "the generated query plans contain 86 relational
// algebra operators on average, of which 9 are joins" over XMark.
//
// Prints the per-query operator/join/step/sort counts of this compiler and
// the averages, with and without join recognition.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"

namespace {

void PrintStats() {
  mxq::DocumentManager mgr;
  mxq::xq::XQueryEngine eng(&mgr);
  std::printf("\nXMark compiled-plan statistics (paper §4.1: avg 86 ops, 9 "
              "joins)\n\n");
  std::printf("%5s %8s %8s %8s %8s   %s\n", "query", "ops", "joins", "steps",
              "sorts", "class");
  int tops = 0, tjoins = 0;
  for (int qn = 1; qn <= 20; ++qn) {
    auto c = eng.Compile(mxq::xmark::XMarkQuery(qn));
    if (!c.ok()) {
      std::printf("Q%-4d compile error: %s\n", qn,
                  c.status().ToString().c_str());
      continue;
    }
    std::printf("Q%-4d %8d %8d %8d %8d   %s\n", qn, c->stats.num_ops,
                c->stats.num_joins, c->stats.num_steps, c->stats.num_sorts,
                mxq::xmark::XMarkQueryLabel(qn));
    tops += c->stats.num_ops;
    tjoins += c->stats.num_joins;
  }
  std::printf("%5s %8.1f %8.1f\n\n", "avg", tops / 20.0, tjoins / 20.0);
}

void CompileTime(benchmark::State& state) {
  mxq::DocumentManager mgr;
  mxq::xq::XQueryEngine eng(&mgr);
  int qn = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto c = eng.Compile(mxq::xmark::XMarkQuery(qn));
    benchmark::DoNotOptimize(c.ok());
  }
}

}  // namespace

BENCHMARK(CompileTime)->DenseRange(1, 20)->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  PrintStats();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
