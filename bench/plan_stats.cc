// §4.1 plan statistics: "the generated query plans contain 86 relational
// algebra operators on average, of which 9 are joins" over XMark.
//
// Prints the per-query operator/join/step/sort counts of this compiler and
// the averages, with and without join recognition.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"

namespace {

void PrintStats() {
  mxq::DocumentManager mgr;
  mxq::xq::XQueryEngine eng(&mgr);
  std::printf("\nXMark compiled-plan statistics (paper §4.1: avg 86 ops, 9 "
              "joins)\n\n");
  std::printf("%5s %8s %8s %8s %8s   %s\n", "query", "ops", "joins", "steps",
              "sorts", "class");
  int tops = 0, tjoins = 0;
  for (int qn = 1; qn <= 20; ++qn) {
    auto c = eng.Compile(mxq::xmark::XMarkQuery(qn));
    if (!c.ok()) {
      std::printf("Q%-4d compile error: %s\n", qn,
                  c.status().ToString().c_str());
      continue;
    }
    std::printf("Q%-4d %8d %8d %8d %8d   %s\n", qn, c->stats.num_ops,
                c->stats.num_joins, c->stats.num_steps, c->stats.num_sorts,
                mxq::xmark::XMarkQueryLabel(qn));
    tops += c->stats.num_ops;
    tjoins += c->stats.num_joins;
  }
  std::printf("%5s %8.1f %8.1f\n\n", "avg", tops / 20.0, tjoins / 20.0);
}

/// Execution-time kernel statistics: which physical algorithms the
/// cache-conscious execution core actually picks per XMark query (radix
/// joins, dense-key counting sorts, selection-vector filters).
void PrintExecStats() {
  auto& inst =
      mxq::bench::XMarkInstance::Get(0.01 * mxq::bench::ScaleEnv());
  std::printf("XMark execution kernel statistics (%.2f MB document, "
              "MXQ_THREADS=%d)\n\n",
              static_cast<double>(inst.xml_size()) / (1024.0 * 1024.0),
              mxq::DefaultExecThreads());
  std::printf("%5s %6s %6s %6s %6s %6s %6s %6s %6s %6s %6s %7s %8s %8s %8s\n",
              "query", "radix", "rparts", "csort", "selvec", "dict", "hash",
              "pos", "sortp", "elide", "par", "key_KB", "join_ms", "sort_ms",
              "filt_ms");
  mxq::alg::ExecStats total;
  auto print_row = [](const char* label, int qn,
                      const mxq::alg::ExecStats& s) {
    char name[8];
    if (qn > 0)
      std::snprintf(name, sizeof name, "Q%d", qn);
    else
      std::snprintf(name, sizeof name, "%s", label);
    std::printf("%-5s %6lld %6lld %6lld %6lld %6lld %6lld %6lld %6lld %6lld "
                "%6lld %7.1f %8.2f %8.2f %8.2f\n",
                name, static_cast<long long>(s.radix_joins),
                static_cast<long long>(s.radix_partitions),
                static_cast<long long>(s.counting_sorts),
                static_cast<long long>(s.sel_selects),
                static_cast<long long>(s.dict_joins),
                static_cast<long long>(s.hash_joins),
                static_cast<long long>(s.positional_joins),
                static_cast<long long>(s.sorts_performed),
                static_cast<long long>(s.sorts_elided),
                static_cast<long long>(s.par_tasks),
                static_cast<double>(s.join_key_bytes) / 1024.0, s.join_ms,
                s.sort_ms, s.filter_ms);
  };
  for (int qn = 1; qn <= 20; ++qn) {
    mxq::xq::EvalOptions eo;
    inst.Run(qn, &eo);
    const mxq::alg::ExecStats& s = eo.alg.stats;
    print_row("", qn, s);
    total.Add(s);
  }
  print_row("total", 0, total);
  std::printf("\n");
}

void CompileTime(benchmark::State& state) {
  mxq::DocumentManager mgr;
  mxq::xq::XQueryEngine eng(&mgr);
  int qn = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto c = eng.Compile(mxq::xmark::XMarkQuery(qn));
    benchmark::DoNotOptimize(c.ok());
  }
}

}  // namespace

BENCHMARK(CompileTime)->DenseRange(1, 20)->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  PrintStats();
  PrintExecStats();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
