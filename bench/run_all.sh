#!/usr/bin/env bash
# Runs the perf-trajectory benchmark set (fig13_joinrec, fig14_sortred,
# fig15_scalability, table1_xmark, serving_throughput, fulltext_search,
# shred_serialize) and merges everything
# — google-benchmark results plus the kernel-comparison / thread-sweep /
# session-sweep summaries the bench mains emit via MXQ_BENCH_JSON — into one
# JSON artifact (default BENCH_pr10.json) that is checked in as the perf
# evidence for the PR.
#
# fulltext_search compares ft:contains / ft:score answered by the inverted
# index (the default) against the naive subtree-scan fallback (MXQ_FT=0);
# its kernel summary carries the index-vs-scan speedup per query.
#
# shred_serialize prices the atomic-ingestion work (docs/robustness.md
# "Ingestion"): its kernel summary carries the directly measured
# governed-vs-plain shred overhead (acceptance bar: <= 3%) and the cost of
# a failed shred including watermark rollback.
#
# fig15_scalability is the partition-parallel thread sweep: each kernel
# (radix join, counting sort, morsel filter) and the join-heavy XMark
# queries at ExecFlags::threads = 1/2/4/N. serving_throughput is the
# Session-API sweep: queries/sec for 1/2/4 concurrent sessions sharing one
# engine, plan cache warm vs cold, plus the streaming-cursor sweep
# (docs/execution.md §6): first-row latency and charged peak memory of a
# full-document scan, streaming vs materializing. Speedups and session
# scaling are bounded by the `num_cpus` recorded in the artifact's context.
#
# Usage: bench/run_all.sh [out.json]
#   MXQ_SCALE     document scale multiplier (default 0.1)
#   MXQ_THREADS   default evaluator thread count (sweeps override per run)
#   MXQ_DICT      dictionary-coded item columns (default on; fig13's
#                 equijoin_item summary carries the on/off ablation)
#   BUILD_DIR     cmake build directory (default build)
#   BENCH_FILTER  optional --benchmark_filter regex passed to every binary
#
# The parallel kernels are validated under ThreadSanitizer via the
# MXQ_SANITIZE cmake option and the run_matrix ctest target, which also
# sweeps MXQ_DICT=0/1 (not part of this script's hot loop):
#   cmake -B build-tsan -S . -DMXQ_SANITIZE=thread
#   cmake --build build-tsan -j
#   ctest --test-dir build-tsan -R '^run_matrix$' --output-on-failure
set -euo pipefail

cd "$(dirname "$0")/.."
OUT=${1:-BENCH_pr10.json}
BUILD=${BUILD_DIR:-build}
export MXQ_SCALE=${MXQ_SCALE:-0.1}
FILTER=${BENCH_FILTER:+--benchmark_filter=${BENCH_FILTER}}

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# Repetitions with random interleaving: the kernels-on and kernels-off
# variants must not be compared cold-vs-warm.
REPS=${BENCH_REPS:-3}
for b in fig13_joinrec fig14_sortred fig15_scalability table1_xmark \
         serving_throughput fulltext_search shred_serialize; do
  [ -x "$BUILD/$b" ] || { echo "missing $BUILD/$b — build first" >&2; exit 1; }
  echo "== $b (MXQ_SCALE=$MXQ_SCALE, reps=$REPS)" >&2
  MXQ_BENCH_JSON="$TMP/$b.kernels.json" \
    "$BUILD/$b" $FILTER \
    --benchmark_repetitions="$REPS" \
    --benchmark_enable_random_interleaving=true \
    --benchmark_report_aggregates_only=false \
    --benchmark_out="$TMP/$b.json" --benchmark_out_format=json >&2
done

python3 - "$TMP" "$OUT" <<'EOF'
import json, os, sys
tmp, out = sys.argv[1], sys.argv[2]
merged = {"scale": float(os.environ.get("MXQ_SCALE", "1.0")), "benches": {}}

def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        return None

for b in ("fig13_joinrec", "fig14_sortred", "fig15_scalability",
          "table1_xmark", "serving_throughput", "fulltext_search",
          "shred_serialize"):
    gb = load(os.path.join(tmp, f"{b}.json"))
    entry = {}
    if gb:
        entry["context"] = {k: gb.get("context", {}).get(k)
                            for k in ("date", "host_name", "num_cpus",
                                      "mhz_per_cpu", "library_build_type")}
        # Collapse repetitions to best-of per benchmark name (min is the
        # standard noise filter for same-work repetitions).
        best = {}
        for r in gb.get("benchmarks", []):
            if r.get("run_type") == "aggregate":
                continue
            name = r.get("name", "").split("/repeats:")[0]
            keep = {k: r.get(k) for k in ("real_time", "cpu_time",
                                          "time_unit", "iterations",
                                          "counters") if k in r}
            keep["name"] = name
            if name not in best or keep["real_time"] < best[name]["real_time"]:
                best[name] = keep
        entry["benchmarks"] = sorted(best.values(), key=lambda r: r["name"])
    kr = load(os.path.join(tmp, f"{b}.kernels.json"))
    if kr:
        entry["kernel_summary"] = kr
    merged["benches"][b] = entry

# Macro speedups: new kernels vs the *LegacyKernels variants, same query.
def times(bench, prefix):
    t = {}
    for r in merged["benches"].get(bench, {}).get("benchmarks", []):
        name = r.get("name", "")
        if name.startswith(prefix + "/"):
            t[name[len(prefix) + 1:]] = r.get("real_time")
    return t

speedups = {}
for bench, new, old in (
        ("fig13_joinrec", "WithJoinRecognition",
         "WithJoinRecognitionLegacyKernels"),
        ("fig14_sortred", "OrderPreserving", "OrderPreservingLegacyKernels")):
    nt, ot = times(bench, new), times(bench, old)
    per = {q: ot[q] / nt[q] for q in nt if q in ot and nt[q] and ot[q]}
    if per:
        speedups[bench] = {
            "per_query": {q: round(v, 3) for q, v in sorted(per.items())},
            "geomean": round(
                pow(2, sum(__import__("math").log2(v)
                           for v in per.values()) / len(per)), 3)}
merged["kernel_speedup_vs_legacy"] = speedups

# Fulltext: index-vs-scan speedup per query from the bench's own summary.
ft = merged["benches"].get("fulltext_search", {}).get("kernel_summary")
if ft:
    per = {q["query"]: round(q["speedup"], 3)
           for q in ft.get("queries", []) if q.get("speedup")}
    if per:
        merged["fulltext_index_speedup_vs_scan"] = {
            "per_query": per,
            "geomean": round(
                pow(2, sum(__import__("math").log2(v)
                           for v in per.values()) / len(per)), 3)}

# Governed-ingestion overhead: the shred bench's own best-of summary.
sh = merged["benches"].get("shred_serialize", {}).get("kernel_summary")
if sh:
    per = {str(e["doc_bytes"]): round(e["overhead"], 4)
           for e in sh.get("shreds", []) if e.get("overhead")}
    if per:
        merged["governed_shred_overhead"] = {
            "per_doc_bytes": per,
            "max": max(per.values()),
            "rollback_ms": {str(e["doc_bytes"]): round(e["rollback_ms"], 3)
                            for e in sh.get("shreds", [])
                            if e.get("rollback_ms") is not None}}

with open(out, "w") as f:
    json.dump(merged, f, indent=1, sort_keys=True)
    f.write("\n")
print(f"wrote {out}", file=sys.stderr)
EOF
