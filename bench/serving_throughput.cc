// Serving throughput through the Session API: queries/sec for one vs many
// concurrent sessions sharing an engine, and the cost of a cold plan cache
// (compile every request) vs a warm one (compile once, serve many).
//
// The request loop models a serving frontend: every request is
// Prepare (cache lookup) -> Bind -> Execute on a prepared query with an
// external variable, and every QueryResult owns its node space, so the
// benchmark exercises exactly the concurrency contract of docs/api.md.
// Session scaling is bounded by `num_cpus` in the artifact context.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"

namespace {

constexpr double kScale = 0.1;

// Parameterized XMark Q5 (exact match + aggregation): the kind of point
// query a serving workload repeats with different parameter values.
const char* kServeQuery =
    R"(declare variable $minprice as xs:integer external;
       count(for $i in doc("auction.xml")/site/closed_auctions/closed_auction
             where $i/price/text() >= $minprice return $i/price))";

mxq::bench::XMarkInstance& Instance() {
  return mxq::bench::XMarkInstance::Get(kScale * mxq::bench::ScaleEnv());
}

/// One serving request: prepare through the shared plan cache, bind this
/// session's parameter, execute. Returns the result size.
size_t ServeOne(mxq::xq::Session& session, int64_t minprice) {
  auto plan = session.Prepare(kServeQuery);
  if (!plan.ok()) std::abort();
  session.Bind("minprice", minprice);
  auto r = session.Execute(*plan);
  if (!r.ok()) std::abort();
  return r->items.size();
}

/// Warm path, 1..N benchmark threads, one session per thread. Queries/sec
/// is the items_per_second counter.
void ServingWarm(benchmark::State& state) {
  auto& inst = Instance();
  mxq::xq::Session session = inst.engine().CreateSession();
  const int64_t minprice = 40 + state.thread_index();
  size_t n = 0;
  for (auto _ : state) n = ServeOne(session, minprice);
  state.counters["result_items"] = static_cast<double>(n);
  state.SetItemsProcessed(state.iterations());
}

/// Cold path: plan cache disabled, so every request re-parses and
/// re-compiles. The warm/cold ratio is what the plan cache buys.
void ServingCold(benchmark::State& state) {
  auto& inst = Instance();
  // Separate engine over the same documents; capacity 0 disables caching.
  static mxq::xq::XQueryEngine cold_engine(&inst.mgr(),
                                           /*plan_cache_capacity=*/0);
  mxq::xq::Session session(&cold_engine);
  const int64_t minprice = 40 + state.thread_index();
  size_t n = 0;
  for (auto _ : state) n = ServeOne(session, minprice);
  state.counters["result_items"] = static_cast<double>(n);
  state.SetItemsProcessed(state.iterations());
}

/// Execute-only (plan prepared once outside the loop): the per-request
/// floor of the execution engine itself.
void ServingExecuteOnly(benchmark::State& state) {
  auto& inst = Instance();
  mxq::xq::Session session = inst.engine().CreateSession();
  auto plan = session.Prepare(kServeQuery);
  if (!plan.ok()) std::abort();
  session.Bind("minprice", int64_t{40 + state.thread_index()});
  size_t n = 0;
  for (auto _ : state) {
    auto r = session.Execute(*plan);
    if (!r.ok()) std::abort();
    n = r->items.size();
  }
  state.counters["result_items"] = static_cast<double>(n);
  state.SetItemsProcessed(state.iterations());
}

// ---------------------------------------------------------------------------
// JSON session-sweep summary for bench/run_all.sh
// ---------------------------------------------------------------------------

/// Wall-clock queries/sec of `sessions` threads issuing `reqs` requests
/// each against one shared engine.
double MeasureQps(int sessions, int reqs, bool warm) {
  auto& inst = Instance();
  mxq::xq::XQueryEngine cold(&inst.mgr(), 0);
  mxq::xq::XQueryEngine& eng = warm ? inst.engine() : cold;
  double ms = mxq::bench::BestOfMs(3, [&] {
    std::vector<std::thread> threads;
    threads.reserve(sessions);
    for (int t = 0; t < sessions; ++t) {
      threads.emplace_back([&eng, t, reqs] {
        mxq::xq::Session s = eng.CreateSession();
        for (int i = 0; i < reqs; ++i) ServeOne(s, 40 + t);
      });
    }
    for (auto& th : threads) th.join();
  });
  return ms > 0 ? 1000.0 * sessions * reqs / ms : 0.0;
}

void WriteSessionSweep(const char* path) {
  const int reqs = 32;
  mxq::bench::JsonWriter w;
  w.BeginObject();
  w.Field("bench", std::string("serving_throughput"));
  w.Field("hardware_threads", static_cast<int64_t>(mxq::HardwareThreads()));
  w.Field("requests_per_session", static_cast<int64_t>(reqs));
  w.BeginArray("sessions");
  double qps1 = 0;
  for (int s : {1, 2, 4}) {
    double warm = MeasureQps(s, reqs, /*warm=*/true);
    double cold = MeasureQps(s, reqs, /*warm=*/false);
    if (s == 1) qps1 = warm;
    w.BeginObject();
    w.Field("sessions", static_cast<int64_t>(s));
    w.Field("qps_warm", warm);
    w.Field("qps_cold", cold);
    w.Field("warm_over_cold", cold > 0 ? warm / cold : 0.0);
    w.Field("scaling_vs_1", qps1 > 0 ? warm / qps1 : 1.0);
    w.EndObject();
  }
  w.EndArray();
  auto cs = Instance().engine().plan_cache_stats();
  w.BeginObject("plan_cache");
  w.Field("hits", cs.hits);
  w.Field("misses", cs.misses);
  w.Field("evictions", cs.evictions);
  w.EndObject();
  w.EndObject();
  w.WriteFile(path);
}

}  // namespace

BENCHMARK(ServingWarm)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();
BENCHMARK(ServingCold)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();
BENCHMARK(ServingExecuteOnly)
    ->Threads(1)
    ->Threads(4)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  if (const char* path = std::getenv("MXQ_BENCH_JSON"))
    WriteSessionSweep(path);
  benchmark::Shutdown();
  return 0;
}
