// Serving throughput through the Session API: queries/sec for one vs many
// concurrent sessions sharing an engine, and the cost of a cold plan cache
// (compile every request) vs a warm one (compile once, serve many).
//
// The request loop models a serving frontend: every request is
// Prepare (cache lookup) -> Bind -> Execute on a prepared query with an
// external variable, and every QueryResult owns its node space, so the
// benchmark exercises exactly the concurrency contract of docs/api.md.
// Session scaling is bounded by `num_cpus` in the artifact context.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"

namespace {

constexpr double kScale = 0.1;

// Parameterized XMark Q5 (exact match + aggregation): the kind of point
// query a serving workload repeats with different parameter values.
const char* kServeQuery =
    R"(declare variable $minprice as xs:integer external;
       count(for $i in doc("auction.xml")/site/closed_auctions/closed_auction
             where $i/price/text() >= $minprice return $i/price))";

mxq::bench::XMarkInstance& Instance() {
  return mxq::bench::XMarkInstance::Get(kScale * mxq::bench::ScaleEnv());
}

/// One serving request: prepare through the shared plan cache, bind this
/// session's parameter, execute. Returns the result size.
size_t ServeOne(mxq::xq::Session& session, int64_t minprice) {
  auto plan = session.Prepare(kServeQuery);
  if (!plan.ok()) std::abort();
  session.Bind("minprice", minprice);
  auto r = session.Execute(*plan);
  if (!r.ok()) std::abort();
  return r->items.size();
}

/// Warm path, 1..N benchmark threads, one session per thread. Queries/sec
/// is the items_per_second counter.
void ServingWarm(benchmark::State& state) {
  auto& inst = Instance();
  mxq::xq::Session session = inst.engine().CreateSession();
  const int64_t minprice = 40 + state.thread_index();
  size_t n = 0;
  for (auto _ : state) n = ServeOne(session, minprice);
  state.counters["result_items"] = static_cast<double>(n);
  state.SetItemsProcessed(state.iterations());
}

/// Cold path: plan cache disabled, so every request re-parses and
/// re-compiles. The warm/cold ratio is what the plan cache buys.
void ServingCold(benchmark::State& state) {
  auto& inst = Instance();
  // Separate engine over the same documents; capacity 0 disables caching.
  static mxq::xq::XQueryEngine cold_engine(&inst.mgr(),
                                           /*plan_cache_capacity=*/0);
  mxq::xq::Session session(&cold_engine);
  const int64_t minprice = 40 + state.thread_index();
  size_t n = 0;
  for (auto _ : state) n = ServeOne(session, minprice);
  state.counters["result_items"] = static_cast<double>(n);
  state.SetItemsProcessed(state.iterations());
}

/// Execute-only with the full governance machinery engaged (admission
/// bookkeeping, deadline + budget ExecContext, checkpoint polling): the
/// delta vs ServingExecuteOnly is the governed overhead, budgeted at <=3%
/// (docs/robustness.md).
void ServingGovernedExecuteOnly(benchmark::State& state) {
  auto& inst = Instance();
  static mxq::xq::XQueryEngine governed_engine(&inst.mgr());
  if (state.thread_index() == 0) {
    mxq::xq::GovernanceOptions gov;
    gov.max_in_flight = static_cast<int>(mxq::HardwareThreads());
    gov.default_deadline_ms = 60'000;
    gov.default_memory_budget_bytes = int64_t{1} << 31;
    governed_engine.set_governance(gov);
  }
  mxq::xq::Session session = governed_engine.CreateSession();
  auto plan = session.Prepare(kServeQuery);
  if (!plan.ok()) std::abort();
  session.Bind("minprice", int64_t{40 + state.thread_index()});
  size_t n = 0;
  for (auto _ : state) {
    auto r = session.Execute(*plan);
    if (!r.ok()) std::abort();
    n = r->items.size();
  }
  state.counters["result_items"] = static_cast<double>(n);
  state.SetItemsProcessed(state.iterations());
}

/// Execute-only (plan prepared once outside the loop): the per-request
/// floor of the execution engine itself.
void ServingExecuteOnly(benchmark::State& state) {
  auto& inst = Instance();
  mxq::xq::Session session = inst.engine().CreateSession();
  auto plan = session.Prepare(kServeQuery);
  if (!plan.ok()) std::abort();
  session.Bind("minprice", int64_t{40 + state.thread_index()});
  size_t n = 0;
  for (auto _ : state) {
    auto r = session.Execute(*plan);
    if (!r.ok()) std::abort();
    n = r->items.size();
  }
  state.counters["result_items"] = static_cast<double>(n);
  state.SetItemsProcessed(state.iterations());
}

// ---------------------------------------------------------------------------
// JSON session-sweep summary for bench/run_all.sh
// ---------------------------------------------------------------------------

/// Wall-clock queries/sec of `sessions` threads issuing `reqs` requests
/// each against one shared engine.
double MeasureQps(int sessions, int reqs, bool warm) {
  auto& inst = Instance();
  mxq::xq::XQueryEngine cold(&inst.mgr(), 0);
  mxq::xq::XQueryEngine& eng = warm ? inst.engine() : cold;
  double ms = mxq::bench::BestOfMs(3, [&] {
    std::vector<std::thread> threads;
    threads.reserve(sessions);
    for (int t = 0; t < sessions; ++t) {
      threads.emplace_back([&eng, t, reqs] {
        mxq::xq::Session s = eng.CreateSession();
        for (int i = 0; i < reqs; ++i) ServeOne(s, 40 + t);
      });
    }
    for (auto& th : threads) th.join();
  });
  return ms > 0 ? 1000.0 * sessions * reqs / ms : 0.0;
}

/// Governed vs ungoverned execute-only time over one engine pair: the
/// serving-path overhead of governance when no limit ever trips.
double MeasureGovernanceOverheadPct(int reqs) {
  auto& inst = Instance();
  mxq::xq::XQueryEngine plain(&inst.mgr());
  mxq::xq::XQueryEngine governed(&inst.mgr());
  mxq::xq::GovernanceOptions gov;
  gov.max_in_flight = static_cast<int>(mxq::HardwareThreads());
  gov.default_deadline_ms = 60'000;
  gov.default_memory_budget_bytes = int64_t{1} << 31;
  governed.set_governance(gov);
  mxq::xq::Session ps = plain.CreateSession();
  mxq::xq::Session gs = governed.CreateSession();
  auto prep = [&](mxq::xq::Session& s) {
    auto plan = s.Prepare(kServeQuery);
    if (!plan.ok()) std::abort();
    s.Bind("minprice", int64_t{40});
    return *plan;
  };
  auto pplan = prep(ps), gplan = prep(gs);
  auto time_once = [&](mxq::xq::Session& s, const mxq::xq::PreparedQuery& p) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < reqs; ++i)
      if (!s.Execute(*p).ok()) std::abort();
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  // Alternate governed/plain rounds and keep each side's best: back-to-back
  // A-then-B timing lets clock drift and cache warmth masquerade as
  // overhead several times larger than the true delta.
  double base_ms = 1e300, gov_ms = 1e300;
  time_once(ps, pplan);  // warm both plans + documents once, untimed
  time_once(gs, gplan);
  for (int round = 0; round < 25; ++round) {
    base_ms = std::min(base_ms, time_once(ps, pplan));
    gov_ms = std::min(gov_ms, time_once(gs, gplan));
  }
  return base_ms > 0 ? 100.0 * (gov_ms - base_ms) / base_ms : 0.0;
}

/// Overload sweep: offered load at ~2x the admission capacity. Reports how
/// the engine degrades — completed throughput held by the in-flight bound,
/// the rest shed quickly with kResourceExhausted (docs/robustness.md).
void WriteOverloadSweep(mxq::bench::JsonWriter& w, int reqs) {
  auto& inst = Instance();
  constexpr int kThreads = 4;       // offered concurrency
  constexpr int kInFlight = 1;      // admission capacity
  constexpr int kQueue = 1;         // 2x: capacity + queue = offered / 2
  mxq::xq::XQueryEngine eng(&inst.mgr());
  mxq::xq::GovernanceOptions gov;
  gov.max_in_flight = kInFlight;
  gov.max_queue = kQueue;
  eng.set_governance(gov);
  // One timed run (not best-of): the shed counters must correspond to
  // exactly the requests in the measured window.
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&eng, t, reqs] {
        mxq::xq::Session s = eng.CreateSession();
        auto plan = s.Prepare(kServeQuery);
        if (!plan.ok()) std::abort();
        s.Bind("minprice", int64_t{40 + t});
        for (int i = 0; i < reqs; ++i) (void)s.Execute(*plan);
      });
    }
    for (auto& th : threads) th.join();
  }
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  const auto st = eng.governance_stats();
  w.BeginObject("overload");
  w.Field("offered_threads", static_cast<int64_t>(kThreads));
  w.Field("max_in_flight", static_cast<int64_t>(kInFlight));
  w.Field("max_queue", static_cast<int64_t>(kQueue));
  w.Field("requests", st.requests);
  w.Field("completed_ok", st.completed_ok);
  w.Field("shed_queue_full", st.shed_queue_full);
  w.Field("shed_rate",
          st.requests > 0
              ? static_cast<double>(st.shed_queue_full) / st.requests
              : 0.0);
  w.Field("qps_completed", ms > 0 ? 1000.0 * st.completed_ok / ms : 0.0);
  w.Field("peak_in_flight", st.peak_in_flight);
  w.Field("peak_queued", st.peak_queued);
  w.EndObject();
}

/// Streaming vs materializing cursor over a full-document scan
/// (docs/execution.md §6): first-row latency (open + first batch) and the
/// charged peak. The streamed scan must yield its first batch well before
/// the materializing path finishes building the relation, with a charged
/// peak bounded by the vector size instead of the result size.
void WriteStreamingSweep(mxq::bench::JsonWriter& w) {
  auto& inst = Instance();
  // A bare path: the streamable scan shape.
  const char* kScanQuery = R"(doc("auction.xml")//item/name/text())";
  mxq::xq::Session session = inst.engine().CreateSession();
  auto plan = session.Prepare(kScanQuery);
  if (!plan.ok()) std::abort();

  struct ModeStats {
    double first_ms = 1e300;
    double drain_ms = 1e300;
    int64_t peak_bytes = 0;
    int64_t rows = 0;
    bool streamed = false;
  };
  auto measure = [&](bool stream) {
    ModeStats m;
    session.options().stream_results = stream;
    for (int round = 0; round < 5; ++round) {
      const auto t0 = std::chrono::steady_clock::now();
      auto cur = session.OpenCursor(*plan);
      if (!cur.ok()) std::abort();
      std::vector<mxq::Item> batch;
      int64_t rows = static_cast<int64_t>(cur->Next(&batch, 64));
      const double first = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
      while (size_t got = cur->Next(&batch, 1024))
        rows += static_cast<int64_t>(got);
      if (!cur->status().ok()) std::abort();
      const double drain = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
      m.first_ms = std::min(m.first_ms, first);
      m.drain_ms = std::min(m.drain_ms, drain);
      m.peak_bytes = cur->exec_stats().peak_mem_bytes;
      m.rows = rows;
      m.streamed = cur->streaming();
    }
    return m;
  };
  const ModeStats st = measure(/*stream=*/true);
  const ModeStats mat = measure(/*stream=*/false);
  if (!st.streamed || mat.streamed || st.rows != mat.rows) std::abort();

  w.BeginObject("streaming_cursor");
  w.Field("query", std::string(kScanQuery));
  w.Field("rows", st.rows);
  w.Field("first_batch_ms_streaming", st.first_ms);
  w.Field("first_batch_ms_materializing", mat.first_ms);
  w.Field("first_batch_speedup",
          st.first_ms > 0 ? mat.first_ms / st.first_ms : 0.0);
  w.Field("drain_ms_streaming", st.drain_ms);
  w.Field("drain_ms_materializing", mat.drain_ms);
  w.Field("peak_mem_bytes_streaming", st.peak_bytes);
  w.Field("peak_mem_bytes_materializing", mat.peak_bytes);
  w.Field("peak_mem_ratio",
          mat.peak_bytes > 0
              ? static_cast<double>(st.peak_bytes) / mat.peak_bytes
              : 0.0);
  w.EndObject();
}

void WriteSessionSweep(const char* path) {
  const int reqs = 32;
  mxq::bench::JsonWriter w;
  w.BeginObject();
  w.Field("bench", std::string("serving_throughput"));
  w.Field("hardware_threads", static_cast<int64_t>(mxq::HardwareThreads()));
  w.Field("requests_per_session", static_cast<int64_t>(reqs));
  w.BeginArray("sessions");
  double qps1 = 0;
  for (int s : {1, 2, 4}) {
    double warm = MeasureQps(s, reqs, /*warm=*/true);
    double cold = MeasureQps(s, reqs, /*warm=*/false);
    if (s == 1) qps1 = warm;
    w.BeginObject();
    w.Field("sessions", static_cast<int64_t>(s));
    w.Field("qps_warm", warm);
    w.Field("qps_cold", cold);
    w.Field("warm_over_cold", cold > 0 ? warm / cold : 0.0);
    w.Field("scaling_vs_1", qps1 > 0 ? warm / qps1 : 1.0);
    w.EndObject();
  }
  w.EndArray();
  auto cs = Instance().engine().plan_cache_stats();
  w.BeginObject("plan_cache");
  w.Field("hits", cs.hits);
  w.Field("misses", cs.misses);
  w.Field("evictions", cs.evictions);
  w.EndObject();
  w.BeginObject("governance");
  w.Field("overhead_pct", MeasureGovernanceOverheadPct(reqs));
  WriteOverloadSweep(w, reqs);
  w.EndObject();
  WriteStreamingSweep(w);
  w.EndObject();
  w.WriteFile(path);
}

}  // namespace

BENCHMARK(ServingWarm)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();
BENCHMARK(ServingCold)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();
BENCHMARK(ServingExecuteOnly)
    ->Threads(1)
    ->Threads(4)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();
BENCHMARK(ServingGovernedExecuteOnly)
    ->Threads(1)
    ->Threads(4)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  if (const char* path = std::getenv("MXQ_BENCH_JSON"))
    WriteSessionSweep(path);
  benchmark::Shutdown();
  return 0;
}
