// §6 "Shredding and Serialization": both must run in interactive time and
// scale linearly (the paper: 11 MB shreds in 0.84 s, 1.1 GB in 89.7 s;
// serialization 1.88 s / 190 s — a constant bytes/second rate).
//
// The sequential-access argument: shredding appends to the pre|size|level
// table in document order; serialization reads it back in the same order.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "xml/serializer.h"

namespace {

const double kScales[] = {0.002, 0.02, 0.2};

void Shred(benchmark::State& state) {
  double scale = kScales[state.range(0)] * mxq::bench::ScaleEnv();
  mxq::xmark::XMarkOptions opts;
  opts.scale = scale;
  std::string xml = mxq::xmark::GenerateXMark(opts);
  size_t nodes = 0;
  for (auto _ : state) {
    mxq::DocumentManager mgr;
    auto r = mxq::ShredDocument(&mgr, "auction.xml", xml);
    if (!r.ok()) state.SkipWithError("shred failed");
    nodes = static_cast<size_t>((*r)->NodeCount());
    benchmark::DoNotOptimize(nodes);
  }
  state.counters["doc_bytes"] = static_cast<double>(xml.size());
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["MB_per_s"] = benchmark::Counter(
      static_cast<double>(xml.size()) / 1e6,
      benchmark::Counter::kIsIterationInvariantRate);
}

void Serialize(benchmark::State& state) {
  double scale = kScales[state.range(0)] * mxq::bench::ScaleEnv();
  auto& inst = mxq::bench::XMarkInstance::Get(scale);
  std::string out;
  for (auto _ : state) {
    out.clear();
    mxq::SerializeNode(*inst.doc(), 0, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["doc_bytes"] = static_cast<double>(out.size());
  state.counters["MB_per_s"] = benchmark::Counter(
      static_cast<double>(out.size()) / 1e6,
      benchmark::Counter::kIsIterationInvariantRate);
}

// The paper's serialization experiment is "a query that constructs a copy
// of the entire input document": element construction + full subtree copy.
void CopyDocumentQuery(benchmark::State& state) {
  double scale = kScales[state.range(0)] * mxq::bench::ScaleEnv();
  auto& inst = mxq::bench::XMarkInstance::Get(scale);
  auto q = inst.engine().Compile("<copy>{doc(\"auction.xml\")/site}</copy>");
  if (!q.ok()) {
    state.SkipWithError("compile failed");
    return;
  }
  mxq::xq::EvalOptions eo;
  for (auto _ : state) {
    auto r = inst.engine().Execute(*q, &eo);
    if (!r.ok()) state.SkipWithError("exec failed");
    benchmark::DoNotOptimize(r->items.data());
  }
}

}  // namespace

BENCHMARK(Shred)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);
BENCHMARK(Serialize)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);
BENCHMARK(CopyDocumentQuery)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
