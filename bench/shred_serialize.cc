// §6 "Shredding and Serialization": both must run in interactive time and
// scale linearly (the paper: 11 MB shreds in 0.84 s, 1.1 GB in 89.7 s;
// serialization 1.88 s / 190 s — a constant bytes/second rate).
//
// The sequential-access argument: shredding appends to the pre|size|level
// table in document order; serialization reads it back in the same order.
//
// The governed variants measure what the atomic-ingestion work costs on
// the hot path (docs/robustness.md "Ingestion"): ShredGoverned threads an
// ExecContext (cancel/deadline polls + MemAccount charging) through the
// same shred — the acceptance bar is <= 3% over the plain run — and
// ShredRollback prices a failed shred (a max_nodes breach near the end of
// the input) including the watermark truncation that rolls the container
// back. With MXQ_BENCH_JSON set, a kernel summary with the directly
// measured governed/plain ratio is written for bench/run_all.sh.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "common/exec_context.h"
#include "xml/serializer.h"

namespace {

const double kScales[] = {0.002, 0.02, 0.2};

void Shred(benchmark::State& state) {
  double scale = kScales[state.range(0)] * mxq::bench::ScaleEnv();
  mxq::xmark::XMarkOptions opts;
  opts.scale = scale;
  std::string xml = mxq::xmark::GenerateXMark(opts);
  size_t nodes = 0;
  for (auto _ : state) {
    mxq::DocumentManager mgr;
    auto r = mxq::ShredDocument(&mgr, "auction.xml", xml);
    if (!r.ok()) state.SkipWithError("shred failed");
    nodes = static_cast<size_t>((*r)->NodeCount());
    benchmark::DoNotOptimize(nodes);
  }
  state.counters["doc_bytes"] = static_cast<double>(xml.size());
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["MB_per_s"] = benchmark::Counter(
      static_cast<double>(xml.size()) / 1e6,
      benchmark::Counter::kIsIterationInvariantRate);
}

// The same shred with the full governance surface engaged: an ExecContext
// with a (generous) deadline and memory budget, so every checkpoint and
// the MemAccount charging run for real.
void ShredGoverned(benchmark::State& state) {
  double scale = kScales[state.range(0)] * mxq::bench::ScaleEnv();
  mxq::xmark::XMarkOptions opts;
  opts.scale = scale;
  std::string xml = mxq::xmark::GenerateXMark(opts);
  size_t nodes = 0;
  for (auto _ : state) {
    mxq::DocumentManager mgr;
    mxq::ExecContext ctx;
    ctx.set_deadline(mxq::ExecContext::Clock::now() +
                     std::chrono::minutes(10));
    ctx.set_memory_budget(int64_t{8} << 30);
    mxq::ShredOptions so;
    so.ctx = &ctx;
    auto r = mxq::ShredDocument(&mgr, "auction.xml", xml, so);
    if (!r.ok()) state.SkipWithError("governed shred failed");
    nodes = static_cast<size_t>((*r)->NodeCount());
    benchmark::DoNotOptimize(nodes);
  }
  state.counters["doc_bytes"] = static_cast<double>(xml.size());
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["MB_per_s"] = benchmark::Counter(
      static_cast<double>(xml.size()) / 1e6,
      benchmark::Counter::kIsIterationInvariantRate);
}

// A failed shred priced end to end: parse ~the whole input, trip the
// max_nodes limit near the end, roll the container back to its watermark.
// The interesting number is the delta over a successful append of the same
// input — the rollback itself is O(appended rows) vector resizing.
void ShredRollback(benchmark::State& state) {
  double scale = kScales[state.range(0)] * mxq::bench::ScaleEnv();
  mxq::xmark::XMarkOptions opts;
  opts.scale = scale;
  std::string xml = mxq::xmark::GenerateXMark(opts);
  // Probe once for the row count so the limit trips in the last stretch.
  mxq::DocumentManager probe_mgr;
  auto probe = mxq::ShredDocument(&probe_mgr, "probe.xml", xml);
  if (!probe.ok()) {
    state.SkipWithError("probe shred failed");
    return;
  }
  mxq::ShredOptions so;
  so.max_nodes = (*probe)->PhysicalSlots() - 1;
  for (auto _ : state) {
    mxq::DocumentManager mgr;
    auto r = mxq::ShredDocument(&mgr, "auction.xml", xml, so);
    if (r.ok()) state.SkipWithError("limit did not trip");
    benchmark::DoNotOptimize(r.status().code());
  }
  state.counters["doc_bytes"] = static_cast<double>(xml.size());
  state.counters["MB_per_s"] = benchmark::Counter(
      static_cast<double>(xml.size()) / 1e6,
      benchmark::Counter::kIsIterationInvariantRate);
}

void Serialize(benchmark::State& state) {
  double scale = kScales[state.range(0)] * mxq::bench::ScaleEnv();
  auto& inst = mxq::bench::XMarkInstance::Get(scale);
  std::string out;
  for (auto _ : state) {
    out.clear();
    mxq::SerializeNode(*inst.doc(), 0, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["doc_bytes"] = static_cast<double>(out.size());
  state.counters["MB_per_s"] = benchmark::Counter(
      static_cast<double>(out.size()) / 1e6,
      benchmark::Counter::kIsIterationInvariantRate);
}

// The paper's serialization experiment is "a query that constructs a copy
// of the entire input document": element construction + full subtree copy.
void CopyDocumentQuery(benchmark::State& state) {
  double scale = kScales[state.range(0)] * mxq::bench::ScaleEnv();
  auto& inst = mxq::bench::XMarkInstance::Get(scale);
  auto q = inst.engine().Compile("<copy>{doc(\"auction.xml\")/site}</copy>");
  if (!q.ok()) {
    state.SkipWithError("compile failed");
    return;
  }
  mxq::xq::EvalOptions eo;
  for (auto _ : state) {
    auto r = inst.engine().Execute(*q, &eo);
    if (!r.ok()) state.SkipWithError("exec failed");
    benchmark::DoNotOptimize(r->items.data());
  }
}

/// Direct best-of timing of governed vs plain shreds (and the rollback
/// cost), written as JSON for bench/run_all.sh. The `overhead` field is
/// the acceptance number: governed_ms / plain_ms at the largest scale.
void WriteKernelSummary(const char* path) {
  mxq::bench::JsonWriter w;
  w.BeginObject();
  w.Field("bench", std::string("shred_serialize"));
  w.BeginArray("shreds");
  for (double s : {0.02, 0.2}) {
    const double scale = s * mxq::bench::ScaleEnv();
    mxq::xmark::XMarkOptions opts;
    opts.scale = scale;
    std::string xml = mxq::xmark::GenerateXMark(opts);
    const int reps = s > 0.05 ? 5 : 15;
    double plain_ms = mxq::bench::BestOfMs(reps, [&] {
      mxq::DocumentManager mgr;
      auto r = mxq::ShredDocument(&mgr, "auction.xml", xml);
      benchmark::DoNotOptimize(r.ok());
    });
    double governed_ms = mxq::bench::BestOfMs(reps, [&] {
      mxq::DocumentManager mgr;
      mxq::ExecContext ctx;
      ctx.set_deadline(mxq::ExecContext::Clock::now() +
                     std::chrono::minutes(10));
      ctx.set_memory_budget(int64_t{8} << 30);
      mxq::ShredOptions so;
      so.ctx = &ctx;
      auto r = mxq::ShredDocument(&mgr, "auction.xml", xml, so);
      benchmark::DoNotOptimize(r.ok());
    });
    mxq::DocumentManager probe_mgr;
    auto probe = mxq::ShredDocument(&probe_mgr, "probe.xml", xml);
    mxq::ShredOptions limit;
    limit.max_nodes = probe.ok() ? (*probe)->PhysicalSlots() - 1 : 1;
    double rollback_ms = mxq::bench::BestOfMs(reps, [&] {
      mxq::DocumentManager mgr;
      auto r = mxq::ShredDocument(&mgr, "auction.xml", xml, limit);
      benchmark::DoNotOptimize(r.ok());
    });
    w.BeginObject();
    w.Field("scale", scale);
    w.Field("doc_bytes", static_cast<int64_t>(xml.size()));
    w.Field("plain_ms", plain_ms);
    w.Field("governed_ms", governed_ms);
    w.Field("overhead", governed_ms / plain_ms);
    w.Field("rollback_ms", rollback_ms);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.WriteFile(path);
}

}  // namespace

BENCHMARK(Shred)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);
BENCHMARK(ShredGoverned)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);
BENCHMARK(ShredRollback)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);
BENCHMARK(Serialize)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);
BENCHMARK(CopyDocumentQuery)->DenseRange(0, 2)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  if (const char* path = std::getenv("MXQ_BENCH_JSON"))
    WriteKernelSummary(path);
  benchmark::Shutdown();
  return 0;
}
