// Staircase-join micro-benchmarks (Figures 1-3 techniques + the §2/§3
// touch bound).
//
// Measures, on a real XMark document:
//  * pruning: context nodes eliminated per axis,
//  * skipping: slots touched vs |result| + |context| (the paper's bound),
//  * loop-lifting: one shared scan vs one scan per iteration (the §3 core),
//  * nametest pushdown: candidate-list evaluation vs scan-and-test (§3.2).

#include <benchmark/benchmark.h>

#include <random>

#include "bench_util.h"
#include "staircase/loop_lifted.h"
#include "staircase/staircase.h"

namespace {

using namespace mxq;

constexpr double kScale = 0.1;

std::vector<int64_t> SampleContext(const DocumentContainer& doc, int count,
                                   uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<int64_t> all;
  for (int64_t p = 0; p < doc.LogicalSlots(); ++p)
    if (!doc.IsUnused(p) && doc.KindAt(p) == NodeKind::kElem)
      all.push_back(p);
  std::shuffle(all.begin(), all.end(), rng);
  all.resize(std::min<size_t>(count, all.size()));
  std::sort(all.begin(), all.end());
  return all;
}

void PlainAxis(benchmark::State& state, Axis axis) {
  auto& inst = bench::XMarkInstance::Get(kScale * bench::ScaleEnv());
  auto ctx = SampleContext(*inst.doc(), static_cast<int>(state.range(0)), 7);
  ScanStats stats;
  size_t results = 0;
  for (auto _ : state) {
    stats.Reset();
    auto r = StaircaseJoin(*inst.doc(), axis, ctx, NodeTest::AnyNode(),
                           &stats);
    results = r.size();
    benchmark::DoNotOptimize(r.data());
  }
  state.counters["context"] = static_cast<double>(ctx.size());
  state.counters["results"] = static_cast<double>(results);
  state.counters["slots_touched"] = static_cast<double>(stats.slots_touched);
  state.counters["pruned"] = static_cast<double>(stats.contexts_pruned);
  state.counters["touch_per_result"] =
      results ? static_cast<double>(stats.slots_touched) / results : 0;
}

void Descendant(benchmark::State& s) { PlainAxis(s, Axis::kDescendant); }
void Child(benchmark::State& s) { PlainAxis(s, Axis::kChild); }
void Ancestor(benchmark::State& s) { PlainAxis(s, Axis::kAncestor); }
void Following(benchmark::State& s) { PlainAxis(s, Axis::kFollowing); }

// Loop-lifted vs iterative: the same context node set used by k iterations.
void LoopLiftedVsIterative(benchmark::State& state, bool loop_lifted) {
  auto& inst = bench::XMarkInstance::Get(kScale * bench::ScaleEnv());
  int iters = static_cast<int>(state.range(0));
  auto base = SampleContext(*inst.doc(), 64, 11);
  std::vector<int64_t> ctx_pre, ctx_iter;
  for (int64_t p : base)
    for (int k = 0; k < iters; ++k) {
      ctx_pre.push_back(p);
      ctx_iter.push_back(k);
    }
  ScanStats stats;
  for (auto _ : state) {
    stats.Reset();
    auto r = loop_lifted
                 ? LoopLiftedStaircase(*inst.doc(), Axis::kChild, ctx_iter,
                                       ctx_pre, NodeTest::AnyNode(), &stats)
                 : IterativeStaircase(*inst.doc(), Axis::kChild, ctx_iter,
                                      ctx_pre, NodeTest::AnyNode(), &stats);
    benchmark::DoNotOptimize(r.node.data());
  }
  state.counters["slots_touched"] = static_cast<double>(stats.slots_touched);
}

void LoopLifted(benchmark::State& s) { LoopLiftedVsIterative(s, true); }
void Iterative(benchmark::State& s) { LoopLiftedVsIterative(s, false); }

// §3.2 predicate pushdown: descendant step with a selective nametest.
void NameTestScan(benchmark::State& state) {
  auto& inst = bench::XMarkInstance::Get(kScale * bench::ScaleEnv());
  StrId qn = inst.mgr().strings().Find("keyword");
  std::vector<int64_t> ctx_pre = {0}, ctx_iter = {1};
  ScanStats stats;
  for (auto _ : state) {
    stats.Reset();
    auto r = LoopLiftedStaircase(*inst.doc(), Axis::kDescendant, ctx_iter,
                                 ctx_pre, NodeTest::Named(qn), &stats);
    benchmark::DoNotOptimize(r.node.data());
  }
  state.counters["slots_touched"] = static_cast<double>(stats.slots_touched);
}

void NameTestPushdown(benchmark::State& state) {
  auto& inst = bench::XMarkInstance::Get(kScale * bench::ScaleEnv());
  StrId qn = inst.mgr().strings().Find("keyword");
  const auto& cand = inst.doc()->ElementsNamed(qn);
  std::vector<int64_t> ctx_pre = {0}, ctx_iter = {1};
  ScanStats stats;
  for (auto _ : state) {
    stats.Reset();
    auto r = LoopLiftedStaircaseCandidates(*inst.doc(), Axis::kDescendant,
                                           ctx_iter, ctx_pre, cand, &stats);
    benchmark::DoNotOptimize(r.node.data());
  }
  state.counters["slots_touched"] = static_cast<double>(stats.slots_touched);
  state.counters["candidates"] = static_cast<double>(cand.size());
}

}  // namespace

BENCHMARK(Descendant)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(Child)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(Ancestor)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(Following)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(LoopLifted)->Arg(1)->Arg(8)->Arg(64)->Unit(benchmark::kMicrosecond);
BENCHMARK(Iterative)->Arg(1)->Arg(8)->Arg(64)->Unit(benchmark::kMicrosecond);
BENCHMARK(NameTestScan)->Unit(benchmark::kMicrosecond);
BENCHMARK(NameTestPushdown)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
