// Table 1: XMark query evaluation — MonetDB/XQuery (MXQ) vs the comparison
// baseline.
//
// The paper's Table 1 compares MXQ against Galax, X-Hive, BerkeleyDB XML
// and eXist across document sizes, with DNF entries where systems exceeded
// an hour. Those engines are closed or unavailable; the naive tree-walking
// interpreter stands in for them (same architectural class: per-binding
// evaluation, nested-loop joins — see DESIGN.md). The shape to reproduce:
// comparable times on simple queries, orders of magnitude separation (up to
// DNF) on the join queries Q8-Q12.
//
// Baseline runs are capped: if one query exceeds MXQ_BASELINE_TIMEOUT_MS
// (default 15000), it is reported with the `dnf` counter set.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.h"

namespace {

constexpr double kScale = 0.01;  // the paper's 1.1 MB column at MXQ_SCALE=1

int64_t TimeoutMs() {
  const char* s = std::getenv("MXQ_BASELINE_TIMEOUT_MS");
  return s ? std::atoll(s) : 15000;
}

void MXQ(benchmark::State& state) {
  auto& inst = mxq::bench::XMarkInstance::Get(kScale * mxq::bench::ScaleEnv());
  int qn = static_cast<int>(state.range(0));
  mxq::xq::EvalOptions eo;
  eo.nametest_pushdown = true;
  size_t n = 0;
  for (auto _ : state) n = inst.Run(qn, &eo);
  state.counters["result_items"] = static_cast<double>(n);
  state.SetLabel(mxq::xmark::XMarkQueryLabel(qn));
}

void NaiveBaseline(benchmark::State& state) {
  double scale = kScale * mxq::bench::ScaleEnv();
  int qn = static_cast<int>(state.range(0));

  // DNF pre-flight (the paper's one-hour cap): probe on a 10x smaller
  // document and extrapolate quadratically — the naive join queries grow
  // at least quadratically, so probe_ms * 100 is a *lower* bound at full
  // size. Running the full query first would hang the harness for exactly
  // the reason the paper prints DNF.
  {
    auto& small = mxq::bench::XMarkInstance::Get(scale / 10);
    mxq::baseline::NaiveInterpreter probe_interp(&small.mgr());
    auto t0 = std::chrono::steady_clock::now();
    auto probe = probe_interp.Eval(mxq::xmark::XMarkQuery(qn));
    double probe_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (!probe.ok()) {
      state.SkipWithError("baseline failed");
      return;
    }
    if (probe_ms * 100 > static_cast<double>(TimeoutMs())) {
      state.counters["dnf"] = 1;
      state.counters["probe_ms_at_tenth_size"] = probe_ms;
      for (auto _ : state) {
      }
      return;
    }
  }

  auto& inst = mxq::bench::XMarkInstance::Get(scale);
  mxq::baseline::NaiveInterpreter interp(&inst.mgr());
  size_t n = 0;
  for (auto _ : state) {
    auto r = interp.Eval(mxq::xmark::XMarkQuery(qn));
    n = r.ok() ? r->size() : 0;
  }
  state.counters["result_items"] = static_cast<double>(n);
  state.counters["dnf"] = 0;
}

}  // namespace

BENCHMARK(MXQ)->DenseRange(1, 20)->Unit(benchmark::kMillisecond);
BENCHMARK(NaiveBaseline)->DenseRange(1, 20)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
