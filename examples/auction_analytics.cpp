// Auction analytics: the paper's motivating workload — analytic XQuery over
// an auction site document (XMark), exercising value joins, theta joins and
// grouping, with the optimizer effects made visible.
//
//   $ ./auction_analytics [scale]     (default scale 0.01 ~ 1.1 MB)

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "xmark/generator.h"
#include "xml/shredder.h"
#include "xquery/engine.h"

using Clock = std::chrono::steady_clock;

static double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

int main(int argc, char** argv) {
  using namespace mxq;
  double scale = argc > 1 ? std::atof(argv[1]) : 0.01;

  xmark::XMarkOptions gopts;
  gopts.scale = scale;
  auto t0 = Clock::now();
  std::string xml = xmark::GenerateXMark(gopts);
  std::printf("generated auction document: %.1f KB (%.1f ms)\n",
              xml.size() / 1024.0, MsSince(t0));

  DocumentManager mgr;
  t0 = Clock::now();
  auto doc = ShredDocument(&mgr, "auction.xml", xml);
  if (!doc.ok()) return 1;
  std::printf("shredded: %lld nodes (%.1f ms)\n",
              static_cast<long long>((*doc)->NodeCount()), MsSince(t0));

  xq::XQueryEngine engine(&mgr);
  xq::Session session = engine.CreateSession();

  struct Report {
    const char* what;
    const char* query;
  };
  const Report reports[] = {
      {"auctions per buyer (value join, Q8 shape)",
       R"(for $p in doc("auction.xml")/site/people/person
          let $a := for $t in doc("auction.xml")/site/closed_auctions/closed_auction
                    where $t/buyer/@person = $p/@id return $t
          where count($a) > 0
          return <buyer name="{$p/name/text()}" auctions="{count($a)}"/>)"},
      {"affordable open auctions per person (theta join, Q11 shape)",
       R"(count(for $p in doc("auction.xml")/site/people/person
          let $l := for $i in doc("auction.xml")/site/open_auctions/open_auction/initial
                    where $p/profile/@income > 5000 * exactly-one($i/text())
                    return $i
          return count($l)))"},
      {"top items by bid activity (ordering + aggregation)",
       R"(for $a in doc("auction.xml")/site/open_auctions/open_auction
          where count($a/bidder) >= 3
          order by count($a/bidder) descending
          return <hot auction="{$a/@id}" bidders="{count($a/bidder)}"/>)"},
      {"income bands (Q20 shape)",
       R"(<bands>
           <high>{count(doc("auction.xml")/site/people/person/profile[@income >= 100000])}</high>
           <mid>{count(doc("auction.xml")/site/people/person
                       /profile[@income < 100000 and @income >= 30000])}</mid>
           <low>{count(doc("auction.xml")/site/people/person/profile[@income < 30000])}</low>
          </bands>)"},
  };

  for (const Report& r : reports) {
    // Prepare once (plan cache) with join recognition on and off to show
    // the §4 effect; execution statistics come back on each QueryResult.
    for (bool jr : {true, false}) {
      xq::CompileOptions co;
      co.join_recognition = jr;
      auto q = session.Prepare(r.query, co);
      if (!q.ok()) {
        std::fprintf(stderr, "compile: %s\n", q.status().ToString().c_str());
        return 1;
      }
      t0 = Clock::now();
      auto res = session.Execute(*q);
      double ms = MsSince(t0);
      if (!res.ok()) {
        std::fprintf(stderr, "exec: %s\n", res.status().ToString().c_str());
        return 1;
      }
      if (jr) {
        std::string s = res->Serialize();
        if (s.size() > 160) s = s.substr(0, 160) + "...";
        std::printf("\n%s\n  -> %s\n", r.what, s.c_str());
        std::printf("  with join recognition   : %8.2f ms "
                    "(%lld radix joins, %lld tuples)\n",
                    ms,
                    static_cast<long long>(res->exec_stats().radix_joins),
                    static_cast<long long>(
                        res->exec_stats().tuples_materialized));
      } else {
        std::printf("  without (cross product) : %8.2f ms\n", ms);
      }
    }
  }
  return 0;
}
