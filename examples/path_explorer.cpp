// Path explorer: the staircase-join layer as a standalone library — direct
// XPath axis evaluation over the pre|size|level encoding, with the scan
// statistics that substantiate the paper's pruning / partitioning /
// skipping claims.
//
//   $ ./path_explorer

#include <cstdio>

#include "staircase/loop_lifted.h"
#include "staircase/staircase.h"
#include "xml/shredder.h"

int main() {
  using namespace mxq;
  DocumentManager mgr;

  // The paper's Figure 4 document.
  auto doc = ShredDocument(&mgr, "fig4.xml",
                           "<a><b><c><d/><e/></c></b>"
                           "<f><g/><h><i/><j/></h></f></a>");
  if (!doc.ok()) return 1;
  const DocumentContainer& d = **doc;

  std::printf("pre|size|level encoding of Figure 4:\n");
  std::printf("%4s %5s %6s %s\n", "pre", "size", "level", "tag");
  for (int64_t p = 0; p < d.LogicalSlots(); ++p) {
    const char* tag = d.KindAt(p) == NodeKind::kElem
                          ? mgr.strings().Get(static_cast<StrId>(d.RefAt(p)))
                                .c_str()
                          : "(doc)";
    std::printf("%4lld %5lld %6d %s   post=%lld\n", static_cast<long long>(p),
                static_cast<long long>(d.SizeAt(p)), d.LevelAt(p), tag,
                static_cast<long long>(d.PostAt(p)));
  }

  // Plain staircase join, with the paper's example contexts.
  struct Demo {
    const char* label;
    Axis axis;
    std::vector<int64_t> ctx;
  };
  const Demo demos[] = {
      {"(c,e,f,i)/ancestor   (Fig 1: pruning)",
       Axis::kAncestor, {3, 5, 6, 9}},
      {"(c,g,i)/following    (Fig 2: partitioning)",
       Axis::kFollowing, {3, 7, 9}},
      {"(c,h)/descendant     (Fig 3: skipping)",
       Axis::kDescendant, {3, 8}},
      {"(a,h)/child          (stack-based child)",
       Axis::kChild, {1, 8}},
  };
  for (const Demo& demo : demos) {
    ScanStats stats;
    auto res =
        StaircaseJoin(d, demo.axis, demo.ctx, NodeTest::AnyElem(), &stats);
    std::printf("\n%s\n  result pres: ", demo.label);
    for (int64_t v : res) std::printf("%lld ", static_cast<long long>(v));
    std::printf(
        "\n  slots touched=%lld (|result|=%zu + |context|=%zu bound), "
        "contexts pruned=%lld\n",
        static_cast<long long>(stats.slots_touched), res.size(),
        demo.ctx.size(), static_cast<long long>(stats.contexts_pruned));
  }

  // Loop-lifted: the paper's §3.1 example — iteration 1 context (c1),
  // iteration 2 context (c1, c2).
  std::printf("\nloop-lifted child (paper Figure 7): two iterations share "
              "one scan\n");
  std::vector<int64_t> ctx_pre = {1, 1, 6};  // a in iters 1,2; f in iter 2
  std::vector<int64_t> ctx_iter = {1, 2, 2};
  ScanStats ll;
  auto res = LoopLiftedStaircase(d, Axis::kChild, ctx_iter, ctx_pre,
                                 NodeTest::AnyElem(), &ll);
  std::printf("  (iter, pre): ");
  for (size_t k = 0; k < res.node.size(); ++k)
    std::printf("(%lld,%lld) ", static_cast<long long>(res.iter[k]),
                static_cast<long long>(res.node[k]));
  ScanStats it;
  IterativeStaircase(d, Axis::kChild, ctx_iter, ctx_pre, NodeTest::AnyElem(),
                     &it);
  std::printf("\n  touched: loop-lifted=%lld vs per-iteration=%lld\n",
              static_cast<long long>(ll.slots_touched),
              static_cast<long long>(it.slots_touched));
  return 0;
}
