// Quickstart: load an XML document, run XQuery through the serving API,
// read the results.
//
//   $ ./quickstart
//
// Walks through the whole public API surface: DocumentManager (storage),
// ShredDocument (XML -> pre|size|level), XQueryEngine + Session (prepared
// queries, parameter binding, per-execution results), the plan cache, and
// the streaming cursor.

#include <cstdio>

#include "xml/serializer.h"
#include "xml/shredder.h"
#include "xquery/engine.h"

int main() {
  using namespace mxq;

  // 1. A document manager owns all loaded documents and the string pool.
  DocumentManager mgr;

  // 2. Shred an XML document into the relational encoding.
  const char* xml = R"(
    <library>
      <book year="2006"><title>MonetDB/XQuery</title><pages>12</pages></book>
      <book year="2004"><title>Staircase Join</title><pages>10</pages></book>
      <book year="2003"><title>Holistic Twig Joins</title><pages>12</pages></book>
    </library>)";
  auto doc = ShredDocument(&mgr, "library.xml", xml);
  if (!doc.ok()) {
    std::fprintf(stderr, "shred error: %s\n", doc.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded library.xml: %lld nodes\n",
              static_cast<long long>((*doc)->NodeCount()));

  // 3. One thread-safe engine per process; one cheap session per caller.
  xq::XQueryEngine engine(&mgr);
  xq::Session session = engine.CreateSession();
  const char* queries[] = {
      // Path navigation with a predicate.
      R"(doc("library.xml")/library/book[@year >= 2004]/title/text())",
      // FLWOR with ordering and element construction.
      R"(for $b in doc("library.xml")//book
         order by zero-or-one($b/title/text())
         return <entry year="{$b/@year}">{$b/title/text()}</entry>)",
      // Aggregation.
      R"(sum(doc("library.xml")//pages))",
      // Existential comparison semantics: any pair satisfying "=".
      R"(doc("library.xml")//book[pages = 12]/title/text())",
  };
  for (const char* q : queries) {
    auto result = session.Run(q);
    if (!result.ok()) {
      std::fprintf(stderr, "query error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("\nquery : %s\nresult: %s\n", q, result->c_str());
  }

  // 4. Prepared query with an external variable: compile once (cached),
  //    bind and execute many times. Each QueryResult owns its node space,
  //    so earlier results stay valid across later executions.
  auto compiled = session.Prepare(
      R"(declare variable $minyear as xs:integer external;
         for $b in doc("library.xml")//book
         where $b/@year >= $minyear
         return $b/title/text())");
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 compiled.status().ToString().c_str());
    return 1;
  }
  std::printf("\nplan: %d operators, %d joins, %d staircase steps, "
              "%zu external variable(s)\n",
              (*compiled)->stats.num_ops, (*compiled)->stats.num_joins,
              (*compiled)->stats.num_steps, (*compiled)->params.size());
  for (int64_t year : {2003, 2004, 2006}) {
    session.Bind("minyear", year);
    auto r = session.Execute(*compiled);
    if (!r.ok()) {
      std::fprintf(stderr, "execute error: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    std::printf("titles since %lld -> %s  (%lld tuples materialized)\n",
                static_cast<long long>(year), r->Serialize().c_str(),
                static_cast<long long>(r->exec_stats().tuples_materialized));
  }
  auto cache = engine.plan_cache_stats();
  std::printf("plan cache: %lld hits, %lld misses, %lld cached\n",
              static_cast<long long>(cache.hits),
              static_cast<long long>(cache.misses),
              static_cast<long long>(cache.size));

  // 5. Streaming cursor: consume a large result in batches instead of one
  //    materialized vector + string. Scan-shaped paths like this one stream
  //    through the vector pipeline — the first batch exists before the full
  //    result does, so total_rows() is only final once done() (docs/api.md).
  auto titles = session.Prepare(R"(doc("library.xml")//book/title/text())");
  if (!titles.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 titles.status().ToString().c_str());
    return 1;
  }
  auto cursor = session.OpenCursor(*titles);
  if (!cursor.ok()) {
    std::fprintf(stderr, "cursor error: %s\n",
                 cursor.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s cursor, batches of 2:\n",
              cursor->streaming() ? "streaming" : "materialized");
  std::vector<Item> batch;
  while (cursor->Next(&batch, 2)) {
    std::printf("  batch: %s\n", SerializeSequence(mgr, batch).c_str());
  }
  if (!cursor->status().ok()) {
    std::fprintf(stderr, "cursor failed: %s\n",
                 cursor->status().ToString().c_str());
    return 1;
  }
  std::printf("drained %zu titles\n", cursor->total_rows());
  return 0;
}
