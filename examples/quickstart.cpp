// Quickstart: load an XML document, run XQuery, read the results.
//
//   $ ./quickstart
//
// Walks through the whole public API surface: DocumentManager (storage),
// ShredDocument (XML -> pre|size|level), XQueryEngine (compile + execute),
// and serialization.

#include <cstdio>

#include "xml/shredder.h"
#include "xquery/engine.h"

int main() {
  using namespace mxq;

  // 1. A document manager owns all loaded documents and the string pool.
  DocumentManager mgr;

  // 2. Shred an XML document into the relational encoding.
  const char* xml = R"(
    <library>
      <book year="2006"><title>MonetDB/XQuery</title><pages>12</pages></book>
      <book year="2004"><title>Staircase Join</title><pages>10</pages></book>
      <book year="2003"><title>Holistic Twig Joins</title><pages>12</pages></book>
    </library>)";
  auto doc = ShredDocument(&mgr, "library.xml", xml);
  if (!doc.ok()) {
    std::fprintf(stderr, "shred error: %s\n", doc.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded library.xml: %lld nodes\n",
              static_cast<long long>((*doc)->NodeCount()));

  // 3. Compile and run XQuery.
  xq::XQueryEngine engine(&mgr);
  const char* queries[] = {
      // Path navigation with a predicate.
      R"(doc("library.xml")/library/book[@year >= 2004]/title/text())",
      // FLWOR with ordering and element construction.
      R"(for $b in doc("library.xml")//book
         order by zero-or-one($b/title/text())
         return <entry year="{$b/@year}">{$b/title/text()}</entry>)",
      // Aggregation.
      R"(sum(doc("library.xml")//pages))",
      // Existential comparison semantics: any pair satisfying "=".
      R"(doc("library.xml")//book[pages = 12]/title/text())",
  };
  for (const char* q : queries) {
    auto result = engine.Run(q);
    if (!result.ok()) {
      std::fprintf(stderr, "query error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("\nquery : %s\nresult: %s\n", q, result->c_str());
  }

  // 4. Compile once, execute many times (plan caching), inspect statistics.
  auto compiled = engine.Compile(R"(count(doc("library.xml")//book))");
  std::printf("\nplan: %d operators, %d joins, %d staircase steps\n",
              compiled->stats.num_ops, compiled->stats.num_joins,
              compiled->stats.num_steps);
  xq::EvalOptions opts;
  for (int i = 0; i < 3; ++i) {
    auto r = engine.Execute(*compiled, &opts);
    std::printf("execution %d -> %s\n", i + 1, r->Serialize(mgr).c_str());
  }
  return 0;
}
