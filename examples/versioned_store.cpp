// Versioned configuration store: the §5.2 update scheme in an application.
//
// Keeps an XML configuration document under continuous structural updates
// (the page-wise remappable pre-number scheme) while queries keep running
// against it — demonstrating that staircase-join query evaluation and
// in-place updates coexist on one container.
//
//   $ ./versioned_store

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "updates/update_engine.h"
#include "xml/serializer.h"
#include "xml/shredder.h"
#include "xquery/engine.h"

int main() {
  using namespace mxq;
  DocumentManager mgr;
  auto doc = ShredDocument(&mgr, "config.xml",
                           "<config>"
                           "<service name=\"gateway\"><port>8080</port>"
                           "<replicas>2</replicas></service>"
                           "<service name=\"search\"><port>9200</port>"
                           "<replicas>3</replicas></service>"
                           "</config>");
  if (!doc.ok()) return 1;

  // The update engine converts the container to the paged representation:
  // logical pages with free space, pre<->rid swizzling via the page map.
  updates::UpdateEngine upd(*doc, /*page_bits=*/6, /*fill_pct=*/70);
  xq::XQueryEngine engine(&mgr);
  xq::Session session = engine.CreateSession();

  // Session::Run prepares through the plan cache, so the repeated queries
  // below compile once and re-execute against the updated document.
  auto query = [&](const char* q) {
    auto r = session.Run(q);
    if (!r.ok()) {
      std::fprintf(stderr, "query error: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(r).value();
  };

  auto show = [&](const char* label) {
    std::string xml;
    SerializeNode(**doc, 0, &xml);
    std::printf("%s\n  %s\n", label, xml.c_str());
    std::string n = query("count(doc(\"config.xml\")//service)");
    std::string ports = query(
        "for $s in doc(\"config.xml\")//service "
        "order by zero-or-one($s/@name) "
        "return <p n=\"{$s/@name}\">{$s/port/text()}</p>");
    std::printf("  services=%s  ports=%s\n", n.c_str(), ports.c_str());
  };

  show("initial configuration:");

  // Updates are fallible (malformed fragment, bad target): bail out loudly
  // instead of dropping the Status.
  auto check = [](const Status& st) {
    if (!st.ok()) {
      std::fprintf(stderr, "update error: %s\n", st.ToString().c_str());
      std::exit(1);
    }
  };

  // Structural insert: a new service (fits the page free space: O(1) pages).
  StrId config_qn = mgr.strings().Find("config");
  int64_t root = (*doc)->ElementsNamed(config_qn)[0];
  check(upd.InsertXml(root, updates::InsertPos::kLast,
                      "<service name=\"cache\"><port>6379</port>"
                      "<replicas>1</replicas></service>")
            .status());
  std::printf("\nafter inserting the cache service "
              "(pages touched: %lld, appended: %lld):\n",
              static_cast<long long>(upd.stats().pages_touched),
              static_cast<long long>(upd.stats().pages_appended));
  show("");

  // Value update: bump the gateway port.
  std::string port_text = query(
      "doc(\"config.xml\")//service[@name = \"gateway\"]/port/text()");
  StrId port_qn = mgr.strings().Find("port");
  for (int64_t p : (*doc)->ElementsNamed(port_qn)) {
    // Replace the text child of the gateway's port.
    if ((*doc)->StringValueOf(p) == "8080") {
      check(upd.ReplaceText(p + 1, "8443"));
      break;
    }
  }
  std::printf("\nafter the port change (was %s):\n", port_text.c_str());
  show("");

  // Structural delete: drop the search service; slots become unused tuples,
  // no pre renumbering happens.
  std::string search = query(
      "count(doc(\"config.xml\")//service[@name = \"search\"])");
  StrId service_qn = mgr.strings().Find("service");
  for (int64_t s : (*doc)->ElementsNamed(service_qn)) {
    StrId name_qn = mgr.strings().Find("name");
    int64_t row = (*doc)->AttrOf(s, name_qn);
    if (row >= 0 && mgr.strings().Get((*doc)->AttrValue(row)) == "search") {
      check(upd.DeleteSubtree(s));
      break;
    }
  }
  std::printf("\nafter deleting the search service (existed: %s):\n",
              search.c_str());
  show("");

  // The size-delta log of this "transaction" (the §5.2 lock-early trick).
  std::printf("\nsize-delta log entries this session: %zu\n",
              upd.pending_deltas().deltas.size());
  upd.Commit();
  return 0;
}
