#include "algebra/item_ops.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/item_dict.h"
#include "xml/serializer.h"

namespace mxq {

namespace {

// Numeric casts route through the shared strict parser so the dictionary's
// cached numeric images (common/item_dict.h) and the live comparison path
// can never disagree.
double ParseDouble(const std::string& s) { return ParseDoubleStrict(s); }

int ClassRank(ItemKind k) {
  switch (k) {
    case ItemKind::kEmpty: return 0;
    case ItemKind::kInt:
    case ItemKind::kDouble: return 1;
    case ItemKind::kString:
    case ItemKind::kUntyped: return 2;
    case ItemKind::kBool: return 3;
    case ItemKind::kNode:
    case ItemKind::kAttr: return 4;
  }
  return 5;
}

}  // namespace

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

CmpOp FlipCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return CmpOp::kGt;
    case CmpOp::kLe: return CmpOp::kGe;
    case CmpOp::kGt: return CmpOp::kLt;
    case CmpOp::kGe: return CmpOp::kLe;
    default: return op;
  }
}

CmpOp NegateCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return CmpOp::kNe;
    case CmpOp::kNe: return CmpOp::kEq;
    case CmpOp::kLt: return CmpOp::kGe;
    case CmpOp::kLe: return CmpOp::kGt;
    case CmpOp::kGt: return CmpOp::kLe;
    case CmpOp::kGe: return CmpOp::kLt;
  }
  return op;
}

Item Atomize(DocumentManager& mgr, const Item& item) {
  if (item.is_any_node()) return mgr.AtomizeNode(item);
  return item;
}

double ToDouble(const DocumentManager& mgr, const Item& item) {
  switch (item.kind) {
    case ItemKind::kInt: return static_cast<double>(item.i);
    case ItemKind::kDouble: return item.d;
    case ItemKind::kBool: return item.b ? 1.0 : 0.0;
    case ItemKind::kString:
    case ItemKind::kUntyped:
      return ParseDouble(mgr.strings().Get(item.str_id()));
    case ItemKind::kNode:
    case ItemKind::kAttr:
      return ParseDouble(mgr.StringValueOf(item));
    case ItemKind::kEmpty: return std::nan("");
  }
  return std::nan("");
}

bool LooksNumeric(const DocumentManager& mgr, const Item& item) {
  if (item.is_numeric()) return true;
  if (item.is_stringlike() || item.is_any_node())
    return !std::isnan(ToDouble(mgr, item));
  return false;
}

bool CompareItems(DocumentManager& mgr, const Item& a_in, CmpOp op,
                  const Item& b_in) {
  Item a = Atomize(mgr, a_in);
  Item b = Atomize(mgr, b_in);
  if (a.kind == ItemKind::kEmpty || b.kind == ItemKind::kEmpty) return false;

  // Numeric coercion: any numeric operand forces a numeric comparison.
  if (a.is_numeric() || b.is_numeric()) {
    double x = ToDouble(mgr, a);
    double y = ToDouble(mgr, b);
    if (std::isnan(x) || std::isnan(y)) return op == CmpOp::kNe;
    switch (op) {
      case CmpOp::kEq: return x == y;
      case CmpOp::kNe: return x != y;
      case CmpOp::kLt: return x < y;
      case CmpOp::kLe: return x <= y;
      case CmpOp::kGt: return x > y;
      case CmpOp::kGe: return x >= y;
    }
  }
  if (a.kind == ItemKind::kBool || b.kind == ItemKind::kBool) {
    bool x = ItemEbv(mgr, a);
    bool y = ItemEbv(mgr, b);
    switch (op) {
      case CmpOp::kEq: return x == y;
      case CmpOp::kNe: return x != y;
      case CmpOp::kLt: return x < y;
      case CmpOp::kLe: return x <= y;
      case CmpOp::kGt: return x > y;
      case CmpOp::kGe: return x >= y;
    }
  }
  // String comparison. Interned ids shortcut equality.
  if ((op == CmpOp::kEq || op == CmpOp::kNe) && a.i == b.i)
    return op == CmpOp::kEq;
  int c = mgr.strings().Get(a.str_id()).compare(mgr.strings().Get(b.str_id()));
  switch (op) {
    case CmpOp::kEq: return c == 0;
    case CmpOp::kNe: return c != 0;
    case CmpOp::kLt: return c < 0;
    case CmpOp::kLe: return c <= 0;
    case CmpOp::kGt: return c > 0;
    case CmpOp::kGe: return c >= 0;
  }
  return false;
}

int OrderCompare(const DocumentManager& mgr, const Item& a, const Item& b) {
  int ra = ClassRank(a.kind), rb = ClassRank(b.kind);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0: return 0;
    case 1: {
      double x = a.as_double(), y = b.as_double();
      if (x < y) return -1;
      if (x > y) return 1;
      return 0;
    }
    case 2: {
      if (a.i == b.i) return 0;
      int c =
          mgr.strings().Get(a.str_id()).compare(mgr.strings().Get(b.str_id()));
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case 3:
      return static_cast<int>(a.b) - static_cast<int>(b.b);
    default: {
      // Nodes: document order (container-major packed payload). Attributes
      // order after their siblings with the same payload arithmetic.
      if (a.i != b.i) return a.i < b.i ? -1 : 1;
      return static_cast<int>(a.kind) - static_cast<int>(b.kind);
    }
  }
}

Item Arith(DocumentManager& mgr, const Item& a_in, ArithOp op,
           const Item& b_in) {
  Item a = Atomize(mgr, a_in);
  Item b = Atomize(mgr, b_in);
  if (a.kind == ItemKind::kEmpty || b.kind == ItemKind::kEmpty) return Item();

  bool int_math = a.kind == ItemKind::kInt && b.kind == ItemKind::kInt;
  if (int_math) {
    int64_t x = a.i, y = b.i;
    switch (op) {
      case ArithOp::kAdd: return Item::Int(x + y);
      case ArithOp::kSub: return Item::Int(x - y);
      case ArithOp::kMul: return Item::Int(x * y);
      case ArithOp::kIDiv: return y == 0 ? Item() : Item::Int(x / y);
      case ArithOp::kMod: return y == 0 ? Item() : Item::Int(x % y);
      case ArithOp::kDiv:
        if (y != 0 && x % y == 0) return Item::Int(x / y);
        return y == 0 ? Item()
                      : Item::Double(static_cast<double>(x) /
                                     static_cast<double>(y));
    }
  }
  double x = ToDouble(mgr, a);
  double y = ToDouble(mgr, b);
  if (std::isnan(x) || std::isnan(y)) return Item();
  switch (op) {
    case ArithOp::kAdd: return Item::Double(x + y);
    case ArithOp::kSub: return Item::Double(x - y);
    case ArithOp::kMul: return Item::Double(x * y);
    case ArithOp::kDiv: return Item::Double(x / y);
    case ArithOp::kIDiv:
      return y == 0 ? Item() : Item::Int(static_cast<int64_t>(x / y));
    case ArithOp::kMod: return Item::Double(std::fmod(x, y));
  }
  return Item();
}

bool ItemEbv(const DocumentManager& mgr, const Item& item) {
  switch (item.kind) {
    case ItemKind::kEmpty: return false;
    case ItemKind::kBool: return item.b;
    case ItemKind::kInt: return item.i != 0;
    case ItemKind::kDouble: return item.d != 0.0 && !std::isnan(item.d);
    case ItemKind::kString:
    case ItemKind::kUntyped:
      return !mgr.strings().Get(item.str_id()).empty();
    case ItemKind::kNode:
    case ItemKind::kAttr:
      return true;
  }
  return false;
}

uint64_t HashItem(const DocumentManager& mgr, const Item& item) {
  // Built from the same helpers as ItemDict's per-code hashes: the
  // dictionary-coded join buckets by HashCode and the legacy join by
  // HashItem, and both must see identical buckets for identical values or
  // the two paths would find different match sets.
  switch (item.kind) {
    case ItemKind::kNode:
    case ItemKind::kAttr:
      return MixValueHash(static_cast<uint64_t>(item.i) ^
                          0x9e3779b97f4a7c15ULL);
    case ItemKind::kBool:
      return MixValueHash(item.b ? 3 : 5);
    default:
      break;
  }
  // Values that may compare equal across kinds (int 20, double 20.0,
  // untyped "20") hash through their numeric image when they have one.
  double d = ToDouble(mgr, item);
  if (!std::isnan(d)) return HashNumericImage(d);
  if (item.is_stringlike())
    return HashStringChars(mgr.strings().Get(item.str_id()));
  return MixValueHash(static_cast<uint64_t>(item.i));
}

Item CastString(DocumentManager& mgr, const Item& item) {
  if (item.is_any_node())
    return Item::String(mgr.strings().Intern(mgr.StringValueOf(item)));
  if (item.kind == ItemKind::kString) return item;
  if (item.kind == ItemKind::kUntyped) return Item::String(item.str_id());
  if (item.kind == ItemKind::kEmpty)
    return Item::String(mgr.strings().Intern(""));
  return Item::String(mgr.strings().Intern(AtomicToString(mgr, item)));
}

Item CastNumber(const DocumentManager& mgr, const Item& item) {
  return Item::Double(ToDouble(mgr, item));
}

}  // namespace mxq
