// Scalar semantics of the polymorphic `item` domain: atomization, XQuery
// general/value comparisons, arithmetic, effective boolean value, casts and
// the canonical hash used by value-based joins.
//
// Dialect notes (documented deviations from strict XQuery 1.0):
//  * untypedAtomic operands that fail numeric casts compare as NaN (always
//    false) instead of raising err:FORG0001;
//  * value and general comparison operators share one coercion table:
//    any numeric operand forces numeric comparison, otherwise bool/bool or
//    string comparison;
//  * effective boolean value of a multi-item atomic sequence is "true"
//    instead of err:FORG0006.
// XMark data never hits these corners; tests pin the chosen behaviour.

#ifndef MXQ_ALGEBRA_ITEM_OPS_H_
#define MXQ_ALGEBRA_ITEM_OPS_H_

#include <cstdint>

#include "common/item.h"
#include "storage/document.h"

namespace mxq {

enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv, kIDiv, kMod };

const char* CmpOpName(CmpOp op);
CmpOp FlipCmp(CmpOp op);    // argument swap: a op b == b flip(op) a
CmpOp NegateCmp(CmpOp op);  // logical negation

/// Atomizes an item: nodes/attributes become untypedAtomic (via the string
/// value), atomic items pass through.
Item Atomize(DocumentManager& mgr, const Item& item);

/// Numeric value of an item (atomizing nodes); NaN when not numeric.
double ToDouble(const DocumentManager& mgr, const Item& item);

/// True when the item is numeric or an untyped/string value that looks
/// numeric.
bool LooksNumeric(const DocumentManager& mgr, const Item& item);

/// XQuery comparison with the coercion rules above. Operands should be
/// atomized; nodes are atomized defensively.
bool CompareItems(DocumentManager& mgr, const Item& a, CmpOp op,
                  const Item& b);

/// Total order used by sort operators / order by: empty < numeric < string
/// < bool < node. Strings collate by codepoint.
int OrderCompare(const DocumentManager& mgr, const Item& a, const Item& b);

/// Arithmetic with numeric promotion; kEmpty on non-numeric operands
/// (empty-sequence propagation).
Item Arith(DocumentManager& mgr, const Item& a, ArithOp op, const Item& b);

/// Effective boolean value of a single item.
bool ItemEbv(const DocumentManager& mgr, const Item& item);

/// Canonical hash compatible with CompareItems equality: items that can
/// compare equal hash identically.
uint64_t HashItem(const DocumentManager& mgr, const Item& item);

/// Casts to string (the fn:string of an atomic/node item).
Item CastString(DocumentManager& mgr, const Item& item);
/// Casts to double (fn:number); NaN item when not castable.
Item CastNumber(const DocumentManager& mgr, const Item& item);

}  // namespace mxq

#endif  // MXQ_ALGEBRA_ITEM_OPS_H_
