#include "algebra/ops.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <span>
#include <unordered_map>
#include <unordered_set>

#include "algebra/radix.h"
#include "common/counting_sort.h"
#include "common/fault.h"
#include "common/thread_pool.h"

namespace mxq {
namespace alg {

namespace {

bool BoolEnv(const char* name, bool dflt) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return dflt;
  if (s[0] == '0' || s[0] == 'f' || s[0] == 'F' || s[0] == 'n' ||
      s[0] == 'N')
    return false;
  // "off"/"OFF" must disable too ("on" stays enabled via the default).
  if ((s[0] == 'o' || s[0] == 'O') && (s[1] == 'f' || s[1] == 'F'))
    return false;
  return true;
}

/// RAII accumulator for the per-kernel wall-time stats.
class WallTimer {
 public:
  explicit WallTimer(double* acc)
      : acc_(acc), t0_(std::chrono::steady_clock::now()) {}
  ~WallTimer() {
    *acc_ += std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - t0_)
                 .count();
  }

 private:
  double* acc_;
  std::chrono::steady_clock::time_point t0_;
};

// Cancellation checkpoint cadence inside row loops (docs/robustness.md):
// fine enough to bound cancellation latency at morsel granularity, coarse
// enough that the relaxed atomic loads amortize to noise. A kernel that
// observes a stop bails out with truncated results — safe because the
// evaluator surfaces the typed Status right after the operator returns, so
// truncated intermediates are never observable. Parallel regions still run
// every chunk to completion (each chunk checks and bails on its own), so
// the thread pool is never poisoned.
constexpr size_t kStopMask = 4095;

inline bool StopAt(const ExecFlags& fl, size_t i) {
  return (i & kStopMask) == 0 && fl.stop_requested();
}

}  // namespace

int ExecFlags::exec_threads() const {
  return threads > 0 ? threads : DefaultExecThreads();
}

ExecFlags ExecFlags::FromEnv() {
  ExecFlags fl;
  fl.order_opt = BoolEnv("MXQ_ORDER_OPT", fl.order_opt);
  fl.positional = BoolEnv("MXQ_POSITIONAL", fl.positional);
  fl.radix_join = BoolEnv("MXQ_RADIX_JOIN", fl.radix_join);
  fl.sel_vectors = BoolEnv("MXQ_SEL_VECTORS", fl.sel_vectors);
  fl.dense_sort = BoolEnv("MXQ_DENSE_SORT", fl.dense_sort);
  fl.dict_items = BoolEnv("MXQ_DICT", fl.dict_items);
  fl.fulltext = BoolEnv("MXQ_FT", fl.fulltext);
  if (const char* s = std::getenv("MXQ_THREADS")) {
    int v = std::atoi(s);
    if (v >= 1) fl.threads = std::min(v, 64);
  }
  if (const char* s = std::getenv("MXQ_VECTOR")) {
    int v = std::atoi(s);
    if (v >= 1) fl.vector_size = std::min(v, 1 << 20);
  }
  return fl;
}

namespace {

// ---- generic helpers -------------------------------------------------------

/// Gathers column `ci` of `t` at the given *logical* rows into a flat
/// column, fusing the table's selection vector (if any) into the gather —
/// a lazily filtered column is materialized exactly once, here, at the
/// pipeline breaker. `chunks` > 1 slices the gather into morsels writing
/// disjoint output ranges (position-wise identical to the serial gather).
ColumnPtr GatherLogical(const Table& t, size_t ci,
                        const std::vector<size_t>& rows, int chunks = 1) {
  const Column& col = *t.raw_col(ci);
  const SelVectorPtr& sel = t.col_sel(ci);
  if (!col.is_item()) {
    // i64 payloads and dict codes gather identically: 8 bytes per row (a
    // dict column is never decoded here — half the bytes of an item move).
    std::vector<int64_t> out(rows.size());
    const auto& in = col.is_dict() ? col.codes() : col.i64();
    ParallelChunks(chunks, rows.size(), [&](int, size_t b, size_t e) {
      if (sel) {
        const auto& s = sel->idx;
        for (size_t k = b; k < e; ++k) out[k] = in[s[rows[k]]];
      } else {
        for (size_t k = b; k < e; ++k) out[k] = in[rows[k]];
      }
    });
    return col.is_dict() ? Column::MakeDict(std::move(out), col.dict())
                         : Column::MakeI64(std::move(out));
  }
  std::vector<Item> out(rows.size());
  const auto& in = col.items();
  ParallelChunks(chunks, rows.size(), [&](int, size_t b, size_t e) {
    if (sel) {
      const auto& s = sel->idx;
      for (size_t k = b; k < e; ++k) out[k] = in[s[rows[k]]];
    } else {
      for (size_t k = b; k < e; ++k) out[k] = in[rows[k]];
    }
  });
  return Column::MakeItem(std::move(out));
}

TablePtr ApplyPerm(const TablePtr& t, const std::vector<size_t>& perm,
                   int chunks = 1) {
  auto out = Table::Make();
  for (size_t c = 0; c < t->num_cols(); ++c)
    out->AddColumn(t->name(c), GatherLogical(*t, c, perm, chunks));
  out->set_rows(perm.size());
  return out;
}

/// Row subset: a lazy selection-vector narrow when the kernel is enabled,
/// an eager gather of every column otherwise (the pre-kernel path).
TablePtr SubsetRows(const ExecFlags& fl, const TablePtr& t,
                    std::vector<uint32_t> rows) {
  if (fl.sel_vectors) {
    ++fl.stats.sel_selects;
    return t->Select(std::make_shared<SelVector>(std::move(rows)));
  }
  std::vector<size_t> wide(rows.begin(), rows.end());
  return ApplyPerm(t, wide);
}

/// Row comparison over a column list (I64 numeric, items by OrderCompare).
class RowLess {
 public:
  RowLess(const DocumentManager& mgr, const Table& t,
          const std::vector<std::string>& cols, const std::vector<bool>& desc)
      : mgr_(mgr) {
    for (size_t k = 0; k < cols.size(); ++k) {
      cols_.push_back(t.col(cols[k]).get());
      desc_.push_back(k < desc.size() && desc[k]);
    }
  }

  int Compare(size_t a, size_t b) const {
    for (size_t k = 0; k < cols_.size(); ++k) {
      int c;
      if (cols_[k]->is_i64()) {
        int64_t x = cols_[k]->i64()[a], y = cols_[k]->i64()[b];
        c = x < y ? -1 : (x > y ? 1 : 0);
      } else {
        c = OrderCompare(mgr_, cols_[k]->items()[a], cols_[k]->items()[b]);
      }
      if (c != 0) return desc_[k] ? -c : c;
    }
    return 0;
  }

  bool operator()(size_t a, size_t b) const { return Compare(a, b) < 0; }

 private:
  const DocumentManager& mgr_;
  std::vector<const Column*> cols_;
  std::vector<bool> desc_;
};

void CountMaterialized(const ExecFlags& fl, const TablePtr& t) {
  fl.stats.tuples_materialized += static_cast<int64_t>(t->rows());
}

}  // namespace

// ---------------------------------------------------------------------------
// constructors
// ---------------------------------------------------------------------------

TablePtr MakeLoop(int64_t n, const std::string& col) {
  std::vector<int64_t> v(n);
  for (int64_t i = 0; i < n; ++i) v[i] = i + 1;
  auto t = Table::Make();
  t->AddColumn(col, Column::MakeI64(std::move(v)));
  t->props().dense.insert(col);
  t->props().key.insert(col);
  t->props().ord = {col};
  return t;
}

TablePtr MakeTable(std::vector<std::pair<std::string, ColumnPtr>> cols) {
  auto t = Table::Make();
  for (auto& [name, col] : cols) t->AddColumn(name, std::move(col));
  return t;
}

// ---------------------------------------------------------------------------
// projection & column arithmetic
// ---------------------------------------------------------------------------

TablePtr Project(const TablePtr& t,
                 const std::vector<std::pair<std::string, std::string>>& cols) {
  auto out = Table::Make();
  TableProps props = t->props();
  std::set<std::string> kept;
  for (const auto& [src, dst] : cols) kept.insert(src);
  props.RestrictTo(kept);
  for (const auto& [src, dst] : cols) {
    int ci = t->ColumnIndex(src);
    assert(ci >= 0);
    out->AddColumn(dst, t->raw_col(ci), t->col_sel(ci));
    if (src != dst) props.RenameCol(src, dst);
  }
  out->set_rows(t->rows());
  out->props() = std::move(props);
  return out;
}

TablePtr WithColumn(const TablePtr& t, const std::string& name,
                    ColumnPtr col) {
  assert(t->num_cols() == 0 || col->size() == t->rows());
  auto out = t->ShallowCopy();
  out->AddColumn(name, std::move(col));
  if (out->num_cols() == 1) out->set_rows(out->col(0)->size());
  return out;
}

TablePtr AppendConst(const TablePtr& t, const std::string& name, Item value) {
  auto out = WithColumn(t, name,
                        Column::MakeItem(std::vector<Item>(t->rows(), value)));
  out->props().constants[name] = value;
  return out;
}

TablePtr AppendArith(DocumentManager& mgr, const TablePtr& t,
                     const std::string& out, const std::string& a, ArithOp op,
                     const std::string& b) {
  return AppendMap2(t, out, a, b, [&mgr, op](const Item& x, const Item& y) {
    return Arith(mgr, x, op, y);
  });
}

TablePtr AppendCompare(DocumentManager& mgr, const TablePtr& t,
                       const std::string& out, const std::string& a, CmpOp op,
                       const std::string& b) {
  return AppendMap2(t, out, a, b, [&mgr, op](const Item& x, const Item& y) {
    return Item::Bool(CompareItems(mgr, x, op, y));
  });
}

TablePtr AppendAtomize(DocumentManager& mgr, const ExecFlags& fl,
                       const TablePtr& t, const std::string& out,
                       const std::string& in) {
  if (!fl.dict_items)
    return AppendMap(t, out, in,
                     [&mgr](const Item& x) { return Atomize(mgr, x); });
  // Dictionary-coded atomization: the column is born as 8-byte codes.
  // Atomization is idempotent on atoms, so an already-coded input column is
  // shared outright (O(1)) instead of re-encoded. The encode loop fans out
  // over morsels (Atomize/Encode are internally synchronized; writes are
  // disjoint) — entry codes are assigned in arrival order, so the *code
  // values* may differ across thread counts, but every downstream consumer
  // (EqualCodes/HashCode/Decode) is value-based, keeping results
  // bit-identical regardless (the differential harness pins this).
  const ColumnPtr& src = t->col(in);
  if (src->is_dict()) return WithColumn(t, out, src);
  MXQ_FAULT_POINT("atomize");
  ItemDict& dict = mgr.item_dict();
  std::vector<int64_t> codes(t->rows());
  const int chunks = PlanChunks(fl.exec_threads(), t->rows());
  std::atomic<bool> overflow{false};
  ParallelChunks(chunks, t->rows(), [&](int, size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      if (StopAt(fl, i)) return;
      const int64_t c =
          dict.Encode(mgr.strings(), Atomize(mgr, src->GetItem(i)));
      if (c == ItemDict::kInvalidCode) {
        // Entry space exhausted mid-encode: a partially coded column must
        // never be published (kInvalidCode cannot be decoded), so the
        // whole append falls back to the uncoded item path below.
        overflow.store(true, std::memory_order_relaxed);
        return;
      }
      codes[i] = c;
    }
  });
  if (overflow.load(std::memory_order_relaxed))
    return AppendMap(t, out, in,
                     [&mgr](const Item& x) { return Atomize(mgr, x); });
  if (chunks > 1) fl.stats.par_tasks += chunks;
  return WithColumn(t, out, Column::MakeDict(std::move(codes), &dict));
}

TablePtr AppendMap(const TablePtr& t, const std::string& out,
                   const std::string& in,
                   const std::function<Item(const Item&)>& fn) {
  const ColumnPtr& src = t->col(in);
  std::vector<Item> v(t->rows());
  for (size_t i = 0; i < t->rows(); ++i) v[i] = fn(src->GetItem(i));
  return WithColumn(t, out, Column::MakeItem(std::move(v)));
}

TablePtr AppendMap2(const TablePtr& t, const std::string& out,
                    const std::string& a, const std::string& b,
                    const std::function<Item(const Item&, const Item&)>& fn) {
  const ColumnPtr& ca = t->col(a);
  const ColumnPtr& cb = t->col(b);
  std::vector<Item> v(t->rows());
  for (size_t i = 0; i < t->rows(); ++i)
    v[i] = fn(ca->GetItem(i), cb->GetItem(i));
  return WithColumn(t, out, Column::MakeItem(std::move(v)));
}

// ---------------------------------------------------------------------------
// selection
// ---------------------------------------------------------------------------

namespace {

/// Row subsets keep ord/grpord/key/const; dense breaks.
TableProps SubsetProps(const TableProps& in) {
  TableProps p = in;
  p.dense.clear();
  return p;
}

}  // namespace

namespace {

/// Morsel-parallel predicate scan: each chunk of logical rows collects its
/// surviving row indexes into a private fragment; fragments concatenate in
/// chunk order, reproducing the serial scan's output exactly. `pred` must
/// be pure and thread-safe (the selection predicates only read columns and
/// the string pool). `expect` caps the up-front reserve — point lookups
/// (SelectEqI64) pass a small hint so a selective scan over a huge input
/// does not allocate input-sized buffers it will never fill.
template <class Pred>
std::vector<uint32_t> ScanRows(const ExecFlags& fl, size_t n,
                               const Pred& pred, size_t expect) {
  // Selection vectors carry 32-bit physical rows; a wider table must fail
  // loudly here, not wrap.
  assert(n <= UINT32_MAX);
  const int chunks = PlanChunks(fl.exec_threads(), n);
  if (chunks <= 1) {
    std::vector<uint32_t> rows;
    rows.reserve(std::min(n, expect));
    for (size_t i = 0; i < n; ++i) {
      if (StopAt(fl, i)) break;
      if (pred(i)) rows.push_back(static_cast<uint32_t>(i));
    }
    return rows;
  }
  std::vector<std::vector<uint32_t>> frag(chunks);
  ParallelChunks(chunks, n, [&](int c, size_t b, size_t e) {
    frag[c].reserve(std::min(e - b, expect));
    for (size_t i = b; i < e; ++i) {
      if (StopAt(fl, i)) return;
      if (pred(i)) frag[c].push_back(static_cast<uint32_t>(i));
    }
  });
  fl.stats.par_tasks += chunks;
  size_t total = 0;
  for (const auto& f : frag) total += f.size();
  std::vector<uint32_t> rows;
  rows.reserve(total);
  for (const auto& f : frag) rows.insert(rows.end(), f.begin(), f.end());
  return rows;
}

}  // namespace

TablePtr SelectTrue(const DocumentManager& mgr, const ExecFlags& fl,
                    const TablePtr& t, const std::string& col, bool negate) {
  MXQ_FAULT_POINT("filter");
  WallTimer timer(&fl.stats.filter_ms);
  const int ci = t->ColumnIndex(col);
  assert(ci >= 0);
  std::vector<uint32_t> rows = ScanRows(
      fl, t->rows(),
      [&](size_t i) { return ItemEbv(mgr, t->ItemAt(ci, i)) != negate; },
      /*expect=*/t->rows());
  auto out = SubsetRows(fl, t, std::move(rows));
  out->props() = SubsetProps(t->props());
  CountMaterialized(fl, out);
  return out;
}

TablePtr SelectEqI64(const ExecFlags& fl, const TablePtr& t,
                     const std::string& col, int64_t v) {
  WallTimer timer(&fl.stats.filter_ms);
  const int ci = t->ColumnIndex(col);
  assert(ci >= 0);
  std::vector<uint32_t> rows;
  if (fl.positional && t->props().is_dense(col)) {
    // Positional selection (paper §4.1): dense 1..n, the row is v-1.
    ++fl.stats.positional_selects;
    if (v >= 1 && v <= static_cast<int64_t>(t->rows()))
      rows.push_back(static_cast<uint32_t>(v - 1));
  } else {
    rows = ScanRows(
        fl, t->rows(), [&](size_t i) { return t->I64At(ci, i) == v; },
        /*expect=*/64);
  }
  auto out = SubsetRows(fl, t, std::move(rows));
  out->props() = SubsetProps(t->props());
  out->props().constants[col] = Item::Int(v);
  CountMaterialized(fl, out);
  return out;
}

TablePtr SelectRows(const TablePtr& t, const std::vector<uint8_t>& keep,
                    const ExecFlags* fl) {
  std::vector<uint32_t> rows;
  rows.reserve(keep.size());
  for (size_t i = 0; i < keep.size(); ++i)
    if (keep[i]) rows.push_back(static_cast<uint32_t>(i));
  TablePtr out;
  if (fl) {
    out = SubsetRows(*fl, t, std::move(rows));
  } else {
    std::vector<size_t> wide(rows.begin(), rows.end());
    out = ApplyPerm(t, wide);
  }
  out->props() = SubsetProps(t->props());
  return out;
}

// ---------------------------------------------------------------------------
// union / distinct / sort / rownum
// ---------------------------------------------------------------------------

namespace {

/// Appends column `ci` of `t` (all logical rows, through any selection
/// vector) to `out`, converting i64 payloads to Int items when needed.
void AppendItemsOf(const Table& t, size_t ci, std::vector<Item>* out) {
  const Column& c = *t.raw_col(ci);
  const SelVectorPtr& sel = t.col_sel(ci);
  for (size_t i = 0; i < t.rows(); ++i)
    out->push_back(c.GetItem(sel ? sel->idx[i] : i));
}

void AppendI64Of(const Table& t, size_t ci, std::vector<int64_t>* out) {
  const Column& c = *t.raw_col(ci);
  const SelVectorPtr& sel = t.col_sel(ci);
  for (size_t i = 0; i < t.rows(); ++i)
    out->push_back(c.GetI64(sel ? sel->idx[i] : i));
}

}  // namespace

TablePtr DisjointUnion(const TablePtr& a, const TablePtr& b,
                       const std::vector<std::string>& disjoint_keys) {
  auto out = Table::Make();
  const size_t total = a->rows() + b->rows();
  for (size_t c = 0; c < a->num_cols(); ++c) {
    const std::string& name = a->name(c);
    const int bc = b->ColumnIndex(name);
    assert(bc >= 0);
    const Column& ca = *a->raw_col(c);
    const Column& cb = *b->raw_col(static_cast<size_t>(bc));
    if (ca.is_i64() && cb.is_i64()) {
      std::vector<int64_t> v;
      v.reserve(total);
      AppendI64Of(*a, c, &v);
      AppendI64Of(*b, static_cast<size_t>(bc), &v);
      out->AddColumn(name, Column::MakeI64(std::move(v)));
    } else if (ca.is_dict() && cb.is_dict() && ca.dict() == cb.dict()) {
      // Dict ∪ dict over the same dictionary: concatenate the 8-byte codes
      // (GetI64 on a dict column yields the code, through any selection
      // vector) — no decode, half the bytes of the item path.
      std::vector<int64_t> v;
      v.reserve(total);
      AppendI64Of(*a, c, &v);
      AppendI64Of(*b, static_cast<size_t>(bc), &v);
      out->AddColumn(name, Column::MakeDict(std::move(v), ca.dict()));
    } else {
      std::vector<Item> v;
      v.reserve(total);
      AppendItemsOf(*a, c, &v);
      AppendItemsOf(*b, static_cast<size_t>(bc), &v);
      out->AddColumn(name, Column::MakeItem(std::move(v)));
    }
  }
  out->set_rows(a->rows() + b->rows());
  // Properties: consts that agree survive; caller-asserted disjoint keys
  // survive; order survives only if the concatenation happens to respect it
  // (checked cheaply at the boundary row).
  TableProps props;
  for (const auto& [name, v] : a->props().constants) {
    auto it = b->props().constants.find(name);
    if (it != b->props().constants.end() && it->second == v)
      props.constants[name] = v;
  }
  for (const std::string& k : disjoint_keys)
    if (a->props().is_key(k) && b->props().is_key(k)) props.key.insert(k);
  if (a->rows() == 0) props = b->props();
  if (b->rows() == 0) props = a->props();
  out->props() = std::move(props);
  return out;
}

TablePtr Distinct(const DocumentManager& mgr, const ExecFlags& fl,
                  const TablePtr& t, const std::vector<std::string>& cols) {
  std::vector<uint32_t> rows;
  rows.reserve(t->rows());
  if (fl.order_opt && t->props().OrderedBy(cols)) {
    // Order-aware linear dedup (the merge-based δ of §4.2).
    ++fl.stats.merge_dedups;
    RowLess less(mgr, *t, cols, {});
    for (size_t i = 0; i < t->rows(); ++i)
      if (i == 0 || less.Compare(i - 1, i) != 0)
        rows.push_back(static_cast<uint32_t>(i));
  } else {
    ++fl.stats.hash_dedups;
    std::unordered_map<uint64_t, std::vector<size_t>> seen;
    seen.reserve(t->rows());
    RowLess less(mgr, *t, cols, {});
    std::vector<const Column*> cs;
    for (const auto& c : cols) cs.push_back(t->col(c).get());
    for (size_t i = 0; i < t->rows(); ++i) {
      uint64_t h = 14695981039346656037ULL;
      for (const Column* c : cs) {
        uint64_t x = c->is_i64() ? static_cast<uint64_t>(c->i64()[i])
                                 : HashItem(mgr, c->items()[i]);
        h = (h ^ x) * 1099511628211ULL;
      }
      auto& bucket = seen[h];
      bool dup = false;
      for (size_t j : bucket)
        if (less.Compare(j, i) == 0) {
          dup = true;
          break;
        }
      if (!dup) {
        bucket.push_back(i);
        rows.push_back(static_cast<uint32_t>(i));
      }
    }
  }
  auto out = SubsetRows(fl, t, std::move(rows));
  out->props() = SubsetProps(t->props());
  if (cols.size() == 1) out->props().key.insert(cols[0]);
  CountMaterialized(fl, out);
  return out;
}

TablePtr Sort(const DocumentManager& mgr, const ExecFlags& fl,
              const TablePtr& t, const std::vector<std::string>& cols,
              const std::vector<bool>& desc) {
  bool all_asc =
      std::none_of(desc.begin(), desc.end(), [](bool d) { return d; });
  if (fl.order_opt && all_asc && t->props().OrderedBy(cols)) {
    ++fl.stats.sorts_elided;
    return t;
  }
  MXQ_FAULT_POINT("sort");
  WallTimer timer(&fl.stats.sort_ms);
  // Refine sort: with a known ordered prefix, sort only within runs of
  // equal prefix values (the incremental, pipelinable refine-sort of §4.2).
  size_t known = 0;
  if (fl.order_opt && all_asc) {
    while (known < cols.size() && known < t->props().ord.size() &&
           t->props().ord[known] == cols[known])
      ++known;
  }
  std::vector<size_t> perm(t->rows());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  RowLess full(mgr, *t, cols, desc);
  if (known > 0 && known < cols.size()) {
    ++fl.stats.refine_sorts;
    std::vector<std::string> prefix(cols.begin(), cols.begin() + known);
    RowLess pre(mgr, *t, prefix, {});
    size_t run = 0;
    for (size_t i = 1; i <= perm.size(); ++i) {
      if (i == perm.size() || pre.Compare(perm[run], perm[i]) != 0) {
        std::stable_sort(perm.begin() + run, perm.begin() + i, full);
        run = i;
      }
    }
  } else {
    ++fl.stats.sorts_performed;
    // Dense-key counting sort: loop-lifting orders by iter/pos/rid columns
    // constantly, and those are dense integers — when every sort column is
    // integer and dense enough, stable counting scatters run as an LSD
    // radix (minor-to-major passes) and replace the comparison sort
    // (paper §4.2's refine-sort becomes a bucket scatter). Mixed
    // integer/item column lists stay on the comparison sort: the cheap
    // leading-integer compare already resolves most of those comparisons,
    // and per-run item refinement measured slower than sorting outright.
    bool counted = false;
    if (fl.dense_sort && all_asc && !cols.empty() &&
        t->col(cols[0])->is_i64() && t->rows() >= 2) {
      bool all_i64 = true;
      for (const auto& c : cols) all_i64 &= t->col(c)->is_i64();
      if (all_i64) {
        // Pre-check every pass's profitability before scattering anything,
        // so a wide-range major column can't waste the minor passes.
        struct Pass {
          const std::vector<int64_t>* keys;
          int64_t mn, range;
        };
        std::vector<Pass> passes;
        passes.reserve(cols.size());
        counted = true;
        for (const auto& c : cols) {
          const std::vector<int64_t>& keys = t->col(c)->i64();
          Pass p{&keys, 0, 0};
          if (!ScanRangeProfitable(keys, &p.mn, &p.range)) {
            counted = false;
            break;
          }
          passes.push_back(p);
        }
        if (counted) {
          const int threads = fl.exec_threads();
          const int chunks = PlanChunks(threads, perm.size());
          for (size_t k = passes.size(); k-- > 0;) {
            // Pass-granularity cancellation: a truncated pass sequence is
            // a valid (merely mis-sorted) permutation, and the evaluator
            // discards it right after via the typed Status.
            if (fl.stop_requested()) break;
            CountingPassPerm(*passes[k].keys, passes[k].mn, passes[k].range,
                             &perm, threads);
          }
          if (chunks > 1) fl.stats.par_tasks += chunks;
        }
      }
      if (counted) ++fl.stats.counting_sorts;
    }
    if (!counted) std::stable_sort(perm.begin(), perm.end(), full);
  }
  const int gather_chunks = PlanChunks(fl.exec_threads(), perm.size());
  auto out = ApplyPerm(t, perm, gather_chunks);
  TableProps props;
  props.key = t->props().key;
  props.constants = t->props().constants;
  if (all_asc) props.ord = cols;
  out->props() = std::move(props);
  CountMaterialized(fl, out);
  return out;
}

TablePtr RowNum(const DocumentManager& mgr, const ExecFlags& fl,
                const TablePtr& t, const std::string& new_col,
                const std::vector<std::string>& order_cols,
                const std::string& group_col) {
  const size_t n = t->rows();
  std::vector<int64_t> num(n);

  if (group_col.empty()) {
    bool ordered = order_cols.empty() ||
                   (fl.order_opt && t->props().OrderedBy(order_cols));
    if (ordered) {
      ++fl.stats.rownum_streaming;
      for (size_t i = 0; i < n; ++i) num[i] = static_cast<int64_t>(i) + 1;
      auto out = WithColumn(t, new_col, Column::MakeI64(std::move(num)));
      out->props().dense.insert(new_col);
      out->props().key.insert(new_col);
      if (t->props().OrderedBy(order_cols))
        out->props().ord.push_back(new_col);
      return out;
    }
    // Sorting variant: number in sort order, emit in sort order (the
    // full-sort DENSE_RANK the paper's streaming variant replaces).
    ++fl.stats.rownum_sorting;
    auto sorted = Sort(mgr, fl, t, order_cols);
    for (size_t i = 0; i < n; ++i) num[i] = static_cast<int64_t>(i) + 1;
    auto out = WithColumn(sorted, new_col, Column::MakeI64(std::move(num)));
    out->props().dense.insert(new_col);
    out->props().key.insert(new_col);
    out->props().ord.push_back(new_col);
    return out;
  }

  // Grouped numbering.
  if (fl.order_opt && t->props().GrpOrderedBy(order_cols, group_col)) {
    // Streaming hash-based numbering (§4.1): one counter per live group;
    // groups need not be clustered.
    ++fl.stats.rownum_streaming;
    const ColumnPtr& g = t->col(group_col);
    std::unordered_map<int64_t, int64_t> counter;
    for (size_t i = 0; i < n; ++i) num[i] = ++counter[g->GetI64(i)];
    auto out = WithColumn(t, new_col, Column::MakeI64(std::move(num)));
    out->props().grpord.push_back({{new_col}, group_col});
    return out;
  }
  // Default re-numbering: full sort on [g, order_cols].
  ++fl.stats.rownum_sorting;
  std::vector<std::string> sort_cols;
  sort_cols.push_back(group_col);
  sort_cols.insert(sort_cols.end(), order_cols.begin(), order_cols.end());
  auto sorted = Sort(mgr, fl, t, sort_cols);
  const ColumnPtr& g = sorted->col(group_col);
  int64_t run = 0;
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && g->GetI64(i) == g->GetI64(i - 1))
      ++run;
    else
      run = 1;
    num[i] = run;
  }
  auto out = WithColumn(sorted, new_col, Column::MakeI64(std::move(num)));
  out->props().grpord.push_back({{new_col}, group_col});
  return out;
}

// ---------------------------------------------------------------------------
// joins
// ---------------------------------------------------------------------------

namespace {

TablePtr BuildJoinOutput(const TablePtr& left,
                         const std::vector<size_t>& lrows,
                         const TablePtr& right,
                         const std::vector<size_t>& rrows,
                         const KeepCols& right_keep, int chunks = 1) {
  auto out = Table::Make();
  for (size_t c = 0; c < left->num_cols(); ++c)
    out->AddColumn(left->name(c), GatherLogical(*left, c, lrows, chunks));
  for (const auto& [src, dst] : right_keep) {
    int rc = right->ColumnIndex(src);
    assert(rc >= 0);
    out->AddColumn(
        dst, GatherLogical(*right, static_cast<size_t>(rc), rrows, chunks));
  }
  out->set_rows(lrows.size());
  return out;
}

/// Parallel hash-table probe emitting (probe_row, build_row) matches: each
/// probe chunk fills private fragments, stitched in chunk order — the
/// match sequence is identical to the serial probe's (probe order outer,
/// ascending build rows inner). Returns the chunk count used.
int ParallelProbe(const ExecFlags& fl, const RadixHashTable& ht,
                  std::span<const int64_t> lkeys, std::vector<size_t>* lrows,
                  std::vector<size_t>* rrows) {
  MXQ_FAULT_POINT("join.probe");
  const int chunks = PlanChunks(fl.exec_threads(), lkeys.size());
  if (chunks <= 1) {
    lrows->reserve(lkeys.size());
    rrows->reserve(lkeys.size());
    for (size_t i = 0; i < lkeys.size(); ++i) {
      if (StopAt(fl, i)) break;
      ht.ForEach(lkeys[i], [&](uint32_t j) {
        lrows->push_back(i);
        rrows->push_back(j);
      });
    }
    return chunks;
  }
  std::vector<std::vector<size_t>> lfrag(chunks), rfrag(chunks);
  ParallelChunks(chunks, lkeys.size(), [&](int c, size_t b, size_t e) {
    auto& lf = lfrag[c];
    auto& rf = rfrag[c];
    lf.reserve(e - b);
    rf.reserve(e - b);
    for (size_t i = b; i < e; ++i) {
      if (StopAt(fl, i)) return;
      ht.ForEach(lkeys[i], [&](uint32_t j) {
        lf.push_back(i);
        rf.push_back(j);
      });
    }
  });
  fl.stats.par_tasks += chunks;
  size_t total = 0;
  for (const auto& f : lfrag) total += f.size();
  lrows->reserve(total);
  rrows->reserve(total);
  for (int c = 0; c < chunks; ++c) {
    lrows->insert(lrows->end(), lfrag[c].begin(), lfrag[c].end());
    rrows->insert(rrows->end(), rfrag[c].begin(), rfrag[c].end());
  }
  return chunks;
}

}  // namespace

void CountRadixBuild(const ExecFlags& fl, const RadixHashTable& ht) {
  fl.stats.radix_partitions += static_cast<int64_t>(ht.partitions());
  if (ht.build_chunks() > 1) {
    fl.stats.par_tasks += ht.build_chunks();
    fl.stats.par_partitions += static_cast<int64_t>(ht.partitions());
  }
}

namespace {

/// Join-column keys as a contiguous i64 span; copies only when the column
/// is a (rare) item column holding integer payloads. The table's selection
/// vector is flattened into the copy when present.
std::span<const int64_t> JoinKeys(const Table& t, size_t ci,
                                  std::vector<int64_t>* storage) {
  const Column& c = *t.raw_col(ci);
  if (!t.col_sel(ci) && c.is_i64())
    return {c.i64().data(), c.i64().size()};
  storage->reserve(t.rows());
  for (size_t i = 0; i < t.rows(); ++i) storage->push_back(t.I64At(ci, i));
  return {storage->data(), storage->size()};
}

/// Order/const props a probe-order-preserving join grants the output.
void ProbeJoinProps(const TablePtr& left, const TablePtr& right,
                    const std::string& rcol, const KeepCols& right_keep,
                    bool right_unique, Table* out) {
  TableProps p;
  p.ord = left->props().ord;   // probe order preserved (dup runs allowed)
  p.constants = left->props().constants;
  p.grpord = left->props().grpord;
  if (right_unique) {
    p.key = left->props().key;  // each left row matched at most once
    // dense additionally requires that no probe row was dropped.
    if (out->rows() == left->rows()) p.dense = left->props().dense;
  }
  for (const auto& [src, dst] : right_keep) {
    auto it = right->props().constants.find(src);
    if (it != right->props().constants.end()) p.constants[dst] = it->second;
  }
  out->props() = std::move(p);
}

}  // namespace

TablePtr EquiJoinI64(const ExecFlags& fl, const TablePtr& left,
                     const std::string& lcol, const TablePtr& right,
                     const std::string& rcol, const KeepCols& right_keep) {
  WallTimer timer(&fl.stats.join_ms);
  std::vector<size_t> lrows, rrows;
  const int lci = left->ColumnIndex(lcol), rci = right->ColumnIndex(rcol);
  assert(lci >= 0 && rci >= 0);
  bool right_unique =
      right->props().is_key(rcol) || right->props().is_dense(rcol);

  std::vector<int64_t> lstore, rstore;
  std::span<const int64_t> lkeys =
      JoinKeys(*left, static_cast<size_t>(lci), &lstore);

  if (fl.positional && right->props().is_dense(rcol)) {
    // Positional join (§4.1 / §8): key lookup by address computation.
    ++fl.stats.positional_joins;
    const int64_t nr = static_cast<int64_t>(right->rows());
    lrows.reserve(lkeys.size());
    rrows.reserve(lkeys.size());
    for (size_t i = 0; i < lkeys.size(); ++i) {
      int64_t v = lkeys[i];
      if (v >= 1 && v <= nr) {
        lrows.push_back(i);
        rrows.push_back(static_cast<size_t>(v - 1));
      }
    }
  } else if (fl.radix_join) {
    // Radix-partitioned flat-table join (docs/execution.md): the build side
    // is clustered into cache-sized partitions in parallel (per-chunk
    // histograms + prefix-summed scatter), probes fan out over chunks of
    // the probe stream, and the match fragments stitch in probe order.
    ++fl.stats.radix_joins;
    RadixHashTable ht(JoinKeys(*right, static_cast<size_t>(rci), &rstore),
                      fl.exec_threads(), fl.gov);
    CountRadixBuild(fl, ht);
    ParallelProbe(fl, ht, lkeys, &lrows, &rrows);
  } else {
    ++fl.stats.hash_joins;
    std::span<const int64_t> rkeys =
        JoinKeys(*right, static_cast<size_t>(rci), &rstore);
    std::unordered_map<int64_t, std::vector<size_t>> ht;
    ht.reserve(rkeys.size());
    for (size_t j = 0; j < rkeys.size(); ++j) ht[rkeys[j]].push_back(j);
    lrows.reserve(lkeys.size());
    rrows.reserve(lkeys.size());
    for (size_t i = 0; i < lkeys.size(); ++i) {
      auto it = ht.find(lkeys[i]);
      if (it == ht.end()) continue;
      for (size_t j : it->second) {
        lrows.push_back(i);
        rrows.push_back(j);
      }
    }
  }
  auto out = BuildJoinOutput(left, lrows, right, rrows, right_keep,
                             PlanChunks(fl.exec_threads(), lrows.size()));
  ProbeJoinProps(left, right, rcol, right_keep, right_unique, out.get());
  CountMaterialized(fl, out);
  return out;
}

std::span<const int64_t> DictJoinCodes(DocumentManager& mgr, const Table& t,
                                       size_t ci,
                                       std::vector<int64_t>* storage,
                                       bool* ok) {
  *ok = true;
  const Column& c = *t.raw_col(ci);
  if (c.is_dict() && !t.col_sel(ci))
    return {c.codes().data(), c.codes().size()};
  if (c.is_dict()) {
    // Lazily selected dict column: flatten the 8-byte codes.
    const auto& sel = t.col_sel(ci)->idx;
    const auto& codes = c.codes();
    storage->reserve(t.rows());
    for (size_t i = 0; i < t.rows(); ++i) storage->push_back(codes[sel[i]]);
    return {storage->data(), storage->size()};
  }
  // Un-coded input (literals, params, node columns): atomize + encode once
  // up front — this is the only part of a dict-coded join that may intern
  // (node atomization); the probe loop never does.
  ItemDict& dict = mgr.item_dict();
  storage->reserve(t.rows());
  for (size_t i = 0; i < t.rows(); ++i) {
    const int64_t code =
        dict.Encode(mgr.strings(), Atomize(mgr, t.ItemAt(ci, i)));
    if (code == ItemDict::kInvalidCode) {
      // Dictionary exhausted: the caller must run its legacy item path.
      *ok = false;
      storage->clear();
      return {};
    }
    storage->push_back(code);
  }
  return {storage->data(), storage->size()};
}

namespace {

/// Shared front half of every dictionary-coded value join: both key
/// columns as 8-byte code spans (reused in place when atomization already
/// produced a dict column), the build side bucketed by the per-code
/// canonical hash (chunk-parallel), radix-partitioned into the flat
/// table. HashCode/EqualCodes mirror HashItem/CompareItems bit-for-bit,
/// so the dict paths find exactly the legacy match sets. Counts the
/// dict-join stats.
struct DictJoinBuild {
  std::vector<int64_t> lstore, rstore;       // backing for encoded spans
  std::span<const int64_t> lcodes, rcodes;   // key codes (may alias columns)
  RadixHashTable table;                      // over the rcodes hashes
  bool ok = true;  // false: dictionary exhausted — use the legacy probe
};

DictJoinBuild MakeDictJoinBuild(DocumentManager& mgr, const ExecFlags& fl,
                                const Table& left, size_t lci,
                                const Table& right, size_t rci) {
  MXQ_FAULT_POINT("join.build");
  const ItemDict& dict = mgr.item_dict();
  DictJoinBuild b;
  bool lok = true, rok = true;
  b.lcodes = DictJoinCodes(mgr, left, lci, &b.lstore, &lok);
  b.rcodes = DictJoinCodes(mgr, right, rci, &b.rstore, &rok);
  if (!lok || !rok) {
    b.ok = false;
    return b;  // no stats counted: the legacy path runs and counts itself
  }
  ++fl.stats.radix_joins;
  ++fl.stats.dict_joins;
  fl.stats.join_key_bytes +=
      static_cast<int64_t>(8 * (left.rows() + right.rows()));
  const int threads = fl.exec_threads();
  std::vector<uint64_t> rhash(b.rcodes.size());
  const int hchunks = PlanChunks(threads, rhash.size());
  ParallelChunks(hchunks, rhash.size(), [&](int, size_t lo, size_t hi) {
    for (size_t j = lo; j < hi; ++j) rhash[j] = dict.HashCode(b.rcodes[j]);
  });
  if (hchunks > 1) fl.stats.par_tasks += hchunks;
  b.table = RadixHashTable{std::span<const uint64_t>(rhash), threads, fl.gov};
  CountRadixBuild(fl, b.table);
  return b;
}

/// Chunk-parallel verified probe over a dict-coded build: calls
/// `emit(frag, l, r)` for every match, filling one `Frag` per chunk;
/// fragments come back in chunk order, so concatenating them reproduces
/// the serial probe exactly (probe order outer, ascending build rows
/// inner). The per-match work — HashCode bucket + EqualCodes verify — is
/// pure array reads: no interning, no shared locks, which is what lets
/// the item-valued probe fan out across the thread pool at all.
template <class Frag, class Emit>
std::vector<Frag> DictProbeChunks(const ExecFlags& fl, const ItemDict& dict,
                                  const DictJoinBuild& b, const Emit& emit) {
  MXQ_FAULT_POINT("join.probe");
  const size_t nl = b.lcodes.size();
  const int chunks = PlanChunks(fl.exec_threads(), nl);
  std::vector<Frag> frags(chunks < 1 ? 1 : chunks);
  ParallelChunks(chunks, nl, [&](int c, size_t lo, size_t hi) {
    Frag& f = frags[c];
    for (size_t i = lo; i < hi; ++i) {
      if (StopAt(fl, i)) return;
      b.table.ForEach(dict.HashCode(b.lcodes[i]), [&](uint32_t j) {
        if (dict.EqualCodes(b.lcodes[i], b.rcodes[j])) emit(f, i, j);
      });
    }
  });
  if (chunks > 1) fl.stats.par_tasks += chunks;
  return frags;
}

}  // namespace

bool DictJoinEmitPairs(DocumentManager& mgr, const ExecFlags& fl,
                       const Table& lhs, size_t lci, const Column& lkey,
                       const Table& rhs, size_t rci, const Column& rkey,
                       std::vector<std::pair<int64_t, int64_t>>* pairs) {
  const ItemDict& dict = mgr.item_dict();
  DictJoinBuild b = MakeDictJoinBuild(mgr, fl, lhs, lci, rhs, rci);
  if (!b.ok) return false;
  using Frag = std::vector<std::pair<int64_t, int64_t>>;
  auto frags = DictProbeChunks<Frag>(
      fl, dict, b, [&](Frag& f, size_t l, uint32_t r) {
        f.emplace_back(lkey.GetI64(l), rkey.GetI64(r));
      });
  for (const Frag& f : frags) pairs->insert(pairs->end(), f.begin(), f.end());
  return true;
}

TablePtr EquiJoinItem(DocumentManager& mgr, const ExecFlags& fl,
                      const TablePtr& left, const std::string& lcol,
                      const TablePtr& right, const std::string& rcol,
                      const KeepCols& right_keep) {
  WallTimer timer(&fl.stats.join_ms);
  const size_t nl = left->rows(), nr = right->rows();
  std::vector<size_t> lrows, rrows;
  if (fl.dict_items) {
    // Dictionary-coded value join: codes in, parallel verified probe out.
    const int lci = left->ColumnIndex(lcol), rci = right->ColumnIndex(rcol);
    assert(lci >= 0 && rci >= 0);
    const ItemDict& dict = mgr.item_dict();
    DictJoinBuild b =
        MakeDictJoinBuild(mgr, fl, *left, static_cast<size_t>(lci), *right,
                          static_cast<size_t>(rci));
    if (b.ok) {
      struct Frag {
        std::vector<size_t> l, r;
      };
      auto frags = DictProbeChunks<Frag>(
          fl, dict, b, [](Frag& f, size_t l, uint32_t r) {
            f.l.push_back(l);
            f.r.push_back(r);
          });
      size_t total = 0;
      for (const Frag& f : frags) total += f.l.size();
      lrows.reserve(total);
      rrows.reserve(total);
      for (const Frag& f : frags) {
        lrows.insert(lrows.end(), f.l.begin(), f.l.end());
        rrows.insert(rrows.end(), f.r.begin(), f.r.end());
      }
      auto out = BuildJoinOutput(left, lrows, right, rrows, right_keep,
                                 PlanChunks(fl.exec_threads(), lrows.size()));
      ProbeJoinProps(left, right, rcol, right_keep, false, out.get());
      CountMaterialized(fl, out);
      return out;
    }
    // Dictionary exhausted: fall through to the legacy item join.
  }
  const ColumnPtr& lc = left->col(lcol);
  const ColumnPtr& rc = right->col(rcol);
  fl.stats.join_key_bytes +=
      static_cast<int64_t>(sizeof(Item) * (nl + nr));
  lrows.reserve(left->rows());
  rrows.reserve(left->rows());
  if (fl.radix_join) {
    // Value join over the canonical item hashes: the radix table dedups
    // nothing, so probe hits verify with the real comparison. Hashing the
    // build side is read-only (HashItem takes a const manager) and fans
    // out over morsels; the probe stays serial because CompareItems may
    // intern strings in the (mutable) pool.
    ++fl.stats.radix_joins;
    std::vector<uint64_t> rhash(right->rows());
    const int hchunks = PlanChunks(fl.exec_threads(), right->rows());
    ParallelChunks(hchunks, right->rows(), [&](int, size_t b, size_t e) {
      const DocumentManager& cmgr = mgr;
      for (size_t j = b; j < e; ++j) rhash[j] = HashItem(cmgr, rc->GetItem(j));
    });
    if (hchunks > 1) fl.stats.par_tasks += hchunks;
    RadixHashTable ht{std::span<const uint64_t>(rhash), fl.exec_threads(),
                      fl.gov};
    CountRadixBuild(fl, ht);
    for (size_t i = 0; i < left->rows(); ++i) {
      if (StopAt(fl, i)) break;
      Item li = lc->GetItem(i);
      ht.ForEach(HashItem(mgr, li), [&](uint32_t j) {
        if (CompareItems(mgr, li, CmpOp::kEq, rc->GetItem(j))) {
          lrows.push_back(i);
          rrows.push_back(j);
        }
      });
    }
  } else {
    ++fl.stats.hash_joins;
    std::unordered_map<uint64_t, std::vector<size_t>> ht;
    ht.reserve(right->rows());
    for (size_t j = 0; j < right->rows(); ++j)
      ht[HashItem(mgr, rc->GetItem(j))].push_back(j);
    for (size_t i = 0; i < left->rows(); ++i) {
      if (StopAt(fl, i)) break;
      Item li = lc->GetItem(i);
      auto it = ht.find(HashItem(mgr, li));
      if (it == ht.end()) continue;
      for (size_t j : it->second)
        if (CompareItems(mgr, li, CmpOp::kEq, rc->GetItem(j))) {
          lrows.push_back(i);
          rrows.push_back(j);
        }
    }
  }
  auto out = BuildJoinOutput(left, lrows, right, rrows, right_keep,
                             PlanChunks(fl.exec_threads(), lrows.size()));
  ProbeJoinProps(left, right, rcol, right_keep, false, out.get());
  CountMaterialized(fl, out);
  return out;
}

TablePtr SemiJoinI64(const ExecFlags& fl, const TablePtr& left,
                     const std::string& lcol, const TablePtr& right,
                     const std::string& rcol, bool anti) {
  WallTimer timer(&fl.stats.join_ms);
  const int lci = left->ColumnIndex(lcol), rci = right->ColumnIndex(rcol);
  assert(lci >= 0 && rci >= 0);
  std::vector<int64_t> lstore, rstore;
  std::span<const int64_t> lkeys =
      JoinKeys(*left, static_cast<size_t>(lci), &lstore);
  std::vector<uint32_t> rows;
  if (fl.positional && right->props().is_dense(rcol)) {
    ++fl.stats.positional_joins;
    rows.reserve(lkeys.size());
    const int64_t nr = static_cast<int64_t>(right->rows());
    for (size_t i = 0; i < lkeys.size(); ++i) {
      int64_t v = lkeys[i];
      bool hit = v >= 1 && v <= nr;
      if (hit != anti) rows.push_back(static_cast<uint32_t>(i));
    }
  } else if (fl.radix_join) {
    ++fl.stats.radix_joins;
    RadixHashTable ht(JoinKeys(*right, static_cast<size_t>(rci), &rstore),
                      fl.exec_threads(), fl.gov);
    CountRadixBuild(fl, ht);
    // The semi/anti probe is a pure membership predicate — the morsel
    // scan machinery of the filters applies as-is.
    rows = ScanRows(
        fl, lkeys.size(),
        [&](size_t i) { return ht.Contains(lkeys[i]) != anti; },
        /*expect=*/lkeys.size());
  } else {
    ++fl.stats.hash_joins;
    std::span<const int64_t> rkeys =
        JoinKeys(*right, static_cast<size_t>(rci), &rstore);
    std::unordered_set<int64_t> keys(rkeys.begin(), rkeys.end());
    rows.reserve(lkeys.size());
    for (size_t i = 0; i < lkeys.size(); ++i) {
      bool hit = keys.count(lkeys[i]) > 0;
      if (hit != anti) rows.push_back(static_cast<uint32_t>(i));
    }
  }
  auto out = SubsetRows(fl, left, std::move(rows));
  out->props() = SubsetProps(left->props());
  CountMaterialized(fl, out);
  return out;
}

TablePtr SemiJoinItem(DocumentManager& mgr, const ExecFlags& fl,
                      const TablePtr& left, const std::string& lcol,
                      const TablePtr& right, const std::string& rcol,
                      bool anti) {
  WallTimer timer(&fl.stats.join_ms);
  const size_t nl = left->rows(), nr = right->rows();
  std::vector<uint32_t> rows;
  bool done = false;
  if (fl.dict_items) {
    // Dict-coded membership probe: a pure per-row predicate over code
    // hashes + EqualCodes, so the morsel scan machinery of the filters
    // applies as-is (the legacy probe below must stay serial because
    // CompareItems may intern node string values).
    const int lci = left->ColumnIndex(lcol), rci = right->ColumnIndex(rcol);
    assert(lci >= 0 && rci >= 0);
    const ItemDict& dict = mgr.item_dict();
    DictJoinBuild b =
        MakeDictJoinBuild(mgr, fl, *left, static_cast<size_t>(lci), *right,
                          static_cast<size_t>(rci));
    if (b.ok) {
      rows = ScanRows(
          fl, nl,
          [&](size_t i) {
            bool hit = false;
            b.table.ForEach(dict.HashCode(b.lcodes[i]), [&](uint32_t j) {
              hit = hit || dict.EqualCodes(b.lcodes[i], b.rcodes[j]);
            });
            return hit != anti;
          },
          /*expect=*/nl);
      done = true;
    }
    // !b.ok: dictionary exhausted — run the legacy item probe below.
  }
  if (!done) {
    fl.stats.join_key_bytes +=
        static_cast<int64_t>(sizeof(Item) * (nl + nr));
    const ColumnPtr& lc = left->col(lcol);
    const ColumnPtr& rc = right->col(rcol);
    rows.reserve(nl);
    if (fl.radix_join) {
      ++fl.stats.radix_joins;
      std::vector<uint64_t> rhash(nr);
      const int hchunks = PlanChunks(fl.exec_threads(), nr);
      ParallelChunks(hchunks, nr, [&](int, size_t b, size_t e) {
        const DocumentManager& cmgr = mgr;  // HashItem is read-only
        for (size_t j = b; j < e; ++j)
          rhash[j] = HashItem(cmgr, rc->GetItem(j));
      });
      if (hchunks > 1) fl.stats.par_tasks += hchunks;
      RadixHashTable ht{std::span<const uint64_t>(rhash),
                        fl.exec_threads(), fl.gov};
      CountRadixBuild(fl, ht);
      for (size_t i = 0; i < nl; ++i) {
        if (StopAt(fl, i)) break;
        Item li = lc->GetItem(i);
        bool hit = false;
        ht.ForEach(HashItem(mgr, li), [&](uint32_t j) {
          hit = hit || CompareItems(mgr, li, CmpOp::kEq, rc->GetItem(j));
        });
        if (hit != anti) rows.push_back(static_cast<uint32_t>(i));
      }
    } else {
      ++fl.stats.hash_joins;
      std::unordered_map<uint64_t, std::vector<size_t>> ht;
      ht.reserve(nr);
      for (size_t j = 0; j < nr; ++j)
        ht[HashItem(mgr, rc->GetItem(j))].push_back(j);
      for (size_t i = 0; i < nl; ++i) {
        if (StopAt(fl, i)) break;
        Item li = lc->GetItem(i);
        bool hit = false;
        if (auto it = ht.find(HashItem(mgr, li)); it != ht.end())
          for (size_t j : it->second)
            if (CompareItems(mgr, li, CmpOp::kEq, rc->GetItem(j))) {
              hit = true;
              break;
            }
        if (hit != anti) rows.push_back(static_cast<uint32_t>(i));
      }
    }
  }
  auto out = SubsetRows(fl, left, std::move(rows));
  out->props() = SubsetProps(left->props());
  CountMaterialized(fl, out);
  return out;
}

TablePtr Cross(const TablePtr& a, const TablePtr& b,
               const KeepCols& right_keep) {
  const size_t na = a->rows(), nb = b->rows();
  std::vector<size_t> lrows, rrows;
  lrows.reserve(na * nb);
  rrows.reserve(na * nb);
  for (size_t i = 0; i < na; ++i)
    for (size_t j = 0; j < nb; ++j) {
      lrows.push_back(i);
      rrows.push_back(j);
    }
  auto out = BuildJoinOutput(a, lrows, b, rrows, right_keep);
  // loop × constant (nb == 1): the left side survives intact.
  TableProps p;
  p.ord = a->props().ord;
  p.constants = a->props().constants;
  if (nb == 1) {
    p.dense = a->props().dense;
    p.key = a->props().key;
    p.grpord = a->props().grpord;
    for (const auto& [src, dst] : right_keep) {
      // A single right row is a constant column in the product.
      const ColumnPtr& c = b->col(src);
      p.constants[dst] = c->GetItem(0);
    }
  }
  out->props() = std::move(p);
  return out;
}

// ---------------------------------------------------------------------------
// aggregation
// ---------------------------------------------------------------------------

TablePtr GroupAggr(DocumentManager& mgr, const ExecFlags& fl,
                   const TablePtr& t, const std::string& group_col,
                   const std::string& val_col, AggKind kind) {
  struct Acc {
    int64_t count = 0;
    double sum = 0;
    bool all_int = true;
    int64_t isum = 0;
    Item best;  // min/max
  };
  const ColumnPtr& g = t->col(group_col);
  const Column* v = val_col.empty() ? nullptr : t->col(val_col).get();

  MXQ_FAULT_POINT("aggr");
  // Two phases so the accumulation — the expensive part: Atomize +
  // coercions per row — can fan out across the pool bit-identically.
  //
  // Phase 1 (serial, cheap): assign every row a dense group id in
  // first-appearance order. Grouping is free when the input is ordered by
  // the group column (§4.2); otherwise a hash assigns ids.
  bool ordered = fl.order_opt && t->props().OrderedBy({group_col});
  const size_t n = t->rows();
  std::vector<uint32_t> gid(n);
  std::vector<int64_t> keys;  // group id -> key, first-appearance order
  std::unordered_map<int64_t, uint32_t> idx;
  size_t upto = n;  // rows assigned before a cancellation stop
  for (size_t i = 0; i < n; ++i) {
    if (StopAt(fl, i)) {
      upto = i;
      break;
    }
    int64_t key = g->GetI64(i);
    if (ordered) {
      if (keys.empty() || keys.back() != key) keys.push_back(key);
      gid[i] = static_cast<uint32_t>(keys.size() - 1);
    } else {
      auto [it, inserted] =
          idx.try_emplace(key, static_cast<uint32_t>(keys.size()));
      if (inserted) keys.push_back(key);
      gid[i] = it->second;
    }
  }
  const size_t ngroups = keys.size();
  std::vector<Acc> accs(ngroups);
  auto accumulate = [&](Acc* acc, size_t i) {
    ++acc->count;
    if (v) {
      Item item = Atomize(mgr, v->GetItem(i));
      if (kind == AggKind::kSum || kind == AggKind::kAvg) {
        if (item.kind == ItemKind::kInt) {
          acc->isum += item.i;
          acc->sum += static_cast<double>(item.i);
        } else {
          acc->all_int = false;
          acc->sum += ToDouble(mgr, item);
        }
      } else if (kind == AggKind::kMin || kind == AggKind::kMax) {
        // Numeric-or-string min/max via the comparison semantics.
        if (acc->best.kind == ItemKind::kEmpty) {
          acc->best = item;
        } else {
          CmpOp op = kind == AggKind::kMin ? CmpOp::kLt : CmpOp::kGt;
          if (CompareItems(mgr, item, op, acc->best)) acc->best = item;
        }
      }
    }
  };

  // Phase 2: accumulate. Parallelism partitions *groups*, not rows — each
  // group's rows are folded by exactly one chunk, in original row order, so
  // floating-point sums and first-seen min/max ties associate exactly as in
  // the serial loop: bit-identical at any thread count.
  const int chunks = v != nullptr ? PlanChunks(fl.exec_threads(), upto) : 1;
  if (chunks > 1 && ngroups > 0) {
    // Counting scatter of row indexes by group id, preserving row order.
    std::vector<uint32_t> offsets(ngroups + 1, 0);
    for (size_t i = 0; i < upto; ++i) ++offsets[gid[i] + 1];
    for (size_t gi = 0; gi < ngroups; ++gi) offsets[gi + 1] += offsets[gi];
    std::vector<uint32_t> rows(upto);
    std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (size_t i = 0; i < upto; ++i)
      rows[cursor[gid[i]]++] = static_cast<uint32_t>(i);
    ParallelChunks(chunks, ngroups, [&](int, size_t gb, size_t ge) {
      for (size_t gi = gb; gi < ge; ++gi) {
        Acc* acc = &accs[gi];
        for (uint32_t k = offsets[gi]; k < offsets[gi + 1]; ++k) {
          if (StopAt(fl, k)) return;  // chunk bails; evaluator surfaces
          accumulate(acc, rows[k]);
        }
      }
    });
    fl.stats.par_tasks += chunks;
  } else {
    for (size_t i = 0; i < upto; ++i) {
      if (StopAt(fl, i)) break;
      accumulate(&accs[gid[i]], i);
    }
  }

  // Emission order: input order when grouped on ordered runs, ascending key
  // otherwise (unique keys, so the sort is deterministic).
  std::vector<uint32_t> order(ngroups);
  for (size_t gi = 0; gi < ngroups; ++gi) order[gi] = uint32_t(gi);
  if (!ordered)
    std::sort(order.begin(), order.end(),
              [&](uint32_t a, uint32_t b) { return keys[a] < keys[b]; });

  std::vector<int64_t> groups;
  std::vector<Item> out_val;
  groups.reserve(ngroups);
  out_val.reserve(ngroups);
  for (uint32_t gi : order) {
    const Acc& acc = accs[gi];
    groups.push_back(keys[gi]);
    switch (kind) {
      case AggKind::kCount: out_val.push_back(Item::Int(acc.count)); break;
      case AggKind::kSum:
        out_val.push_back(acc.all_int ? Item::Int(acc.isum)
                                      : Item::Double(acc.sum));
        break;
      case AggKind::kAvg:
        out_val.push_back(Item::Double(acc.sum / acc.count));
        break;
      case AggKind::kMin:
      case AggKind::kMax: out_val.push_back(acc.best); break;
    }
  }
  auto out = Table::Make();
  out->AddColumn(group_col, Column::MakeI64(std::move(groups)));
  out->AddColumn("agg", Column::MakeItem(std::move(out_val)));
  out->props().ord = {group_col};
  out->props().key.insert(group_col);
  CountMaterialized(fl, out);
  return out;
}

TablePtr FillGroups(const ExecFlags& fl, const TablePtr& aggr,
                    const std::string& group_col, const std::string& agg_col,
                    const TablePtr& loop, const std::string& loop_col,
                    Item dflt) {
  const ColumnPtr& lc = loop->col(loop_col);
  const ColumnPtr& gc = aggr->col(group_col);
  const ColumnPtr& vc = aggr->col(agg_col);
  std::unordered_map<int64_t, size_t> idx;
  idx.reserve(aggr->rows());
  for (size_t j = 0; j < aggr->rows(); ++j) idx[gc->GetI64(j)] = j;
  std::vector<int64_t> groups(loop->rows());
  std::vector<Item> vals(loop->rows());
  for (size_t i = 0; i < loop->rows(); ++i) {
    int64_t key = lc->GetI64(i);
    groups[i] = key;
    auto it = idx.find(key);
    vals[i] = it == idx.end() ? dflt : vc->GetItem(it->second);
  }
  auto out = Table::Make();
  out->AddColumn(group_col, Column::MakeI64(std::move(groups)));
  out->AddColumn(agg_col, Column::MakeItem(std::move(vals)));
  out->props().ord = loop->props().OrderedBy({loop_col})
                         ? std::vector<std::string>{group_col}
                         : std::vector<std::string>{};
  if (loop->props().is_key(loop_col)) out->props().key.insert(group_col);
  if (loop->props().is_dense(loop_col)) out->props().dense.insert(group_col);
  CountMaterialized(fl, out);
  return out;
}

}  // namespace alg
}  // namespace mxq
