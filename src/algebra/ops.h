// Physical relational algebra over Tables (paper §2.1, §4.1).
//
// Every operator materializes its full result (MonetDB's operator-at-a-time
// execution model) and derives the output's column properties from its
// inputs. The properties drive the physical algorithm choices the paper
// describes:
//
//   * Sort is an *enforcer*: it no-ops when `ord` already guarantees the
//     requested order (sort elision, Fig 14), refine-sorts when a prefix is
//     known, and falls back to a full sort otherwise.
//   * RowNum (the ρ / DENSE_RANK() OVER (PARTITION BY g ORDER BY ...)
//     operator) numbers rows per group: streaming with a per-group hash
//     counter when grpord holds, else sorting.
//   * EquiJoin uses positional lookup when the inner join column is dense
//     (SQL autoincrement keys, §4.1), else a radix-partitioned hash join
//     (algebra/radix.h) that preserves the probe side's order.
//   * Distinct uses an order-aware linear dedup when possible.
//
// Three cache-conscious execution kernels sit under the operators (see
// docs/execution.md; each algebra-layer kernel has an ExecFlags toggle for
// ablation — the staircase layer's pair sort in loop_lifted.cc is
// unconditional, so "legacy" ablation baselines are conservative):
//   * selection vectors — filters narrow tables lazily (storage/table.h);
//     columns are gathered once, at the next pipeline breaker;
//   * radix joins — build sides are radix-clustered into cache-sized
//     partitions with flat open-addressing tables, no per-key allocations;
//   * counting sorts — dense integer sort keys (iter, pre, rids) are
//     ordered by a counting scatter instead of a comparison sort.
//
// All operators are pure: inputs are never mutated; outputs share unchanged
// columns by pointer.

#ifndef MXQ_ALGEBRA_OPS_H_
#define MXQ_ALGEBRA_OPS_H_

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "algebra/item_ops.h"
#include "storage/table.h"

namespace mxq {
namespace alg {

class RadixHashTable;

/// \brief Counters reported by the benchmark harnesses and asserted by
/// tests; incremented by the operators as they pick physical algorithms.
struct ExecStats {
  int64_t sorts_performed = 0;
  int64_t sorts_elided = 0;
  int64_t refine_sorts = 0;
  int64_t hash_joins = 0;
  int64_t positional_joins = 0;
  int64_t merge_dedups = 0;
  int64_t hash_dedups = 0;
  int64_t rownum_streaming = 0;
  int64_t rownum_sorting = 0;
  int64_t positional_selects = 0;
  int64_t tuples_materialized = 0;
  // choose-plan decisions of the existential theta-join (§4.2)
  int64_t exist_nested_loop = 0;
  int64_t exist_index_join = 0;
  // cache-conscious kernels (docs/execution.md)
  int64_t radix_joins = 0;       // joins run on the radix-partitioned table
  int64_t radix_partitions = 0;  // total partitions across those builds
  int64_t counting_sorts = 0;    // sorts answered by a counting scatter
  int64_t sel_selects = 0;       // selections answered by a selection vector
  // Item joins probed over 8-byte dict codes. A dict-coded join always
  // runs on the radix-partitioned flat table, so dict_joins is a *subset*
  // of radix_joins (both counters increment); radix_join=false ablates the
  // i64 joins only — ablating item joins to the legacy probe needs
  // dict_items=false too (bench SetKernelFlags flips all toggles at once).
  int64_t dict_joins = 0;
  // Key-column bytes the item-valued join kernels touched (build + probe
  // side widths x rows): 8 B/row dict-coded vs 16 B/row legacy items — the
  // fig13 ablation reports the halving directly off this counter.
  int64_t join_key_bytes = 0;
  // partition-parallel execution (docs/execution.md "Parallel execution")
  int64_t par_tasks = 0;       // chunk tasks dispatched by parallel regions
  int64_t par_partitions = 0;  // radix partitions built/probed in parallel
  // fulltext predicates (docs/fulltext.md): rows answered by posting-list
  // probes vs. by the naive subtree-scan fallback (MXQ_FT=0, or index
  // unavailable after dictionary exhaustion)
  int64_t ft_index_probes = 0;
  int64_t ft_scan_probes = 0;
  // Vectors emitted by the pull-based pipeline layer (algebra/pipeline.h):
  // each charged batch of <= ExecFlags::vector_size rows handed downstream
  // counts once. Distinct from tuples_materialized — streamed rows flow
  // through bounded vectors and are never materialized into a full-size
  // intermediate, so the two counters stay independently meaningful
  // (docs/execution.md §6).
  int64_t vectors_flowed = 0;
  // Peak column bytes live at once during the execution, as accounted by
  // the governance MemAccount (docs/robustness.md). Max-merged in Add():
  // accumulating across executions reports the worst single execution.
  int64_t peak_mem_bytes = 0;
  // per-kernel wall clock, for plan_stats and the ablation benches
  double join_ms = 0;    // equi/semi join operators (build + probe + gather)
  double sort_ms = 0;    // Sort / sorting RowNum
  double filter_ms = 0;  // SelectTrue / SelectEqI64 predicate scans

  void Reset() { *this = ExecStats{}; }

  /// Accumulates another stats block (per-execution stats are collected
  /// locally and merged back into the caller's EvalOptions, so benches that
  /// accumulate across executions keep their historical semantics).
  /// Every field must be summed here — the static_assert below trips when a
  /// counter is added to the struct without extending this list.
  void Add(const ExecStats& o) {
    static_assert(sizeof(ExecStats) == 28 * sizeof(int64_t),
                  "new ExecStats field: add it to Add()");
    sorts_performed += o.sorts_performed;
    sorts_elided += o.sorts_elided;
    refine_sorts += o.refine_sorts;
    hash_joins += o.hash_joins;
    positional_joins += o.positional_joins;
    merge_dedups += o.merge_dedups;
    hash_dedups += o.hash_dedups;
    rownum_streaming += o.rownum_streaming;
    rownum_sorting += o.rownum_sorting;
    positional_selects += o.positional_selects;
    tuples_materialized += o.tuples_materialized;
    exist_nested_loop += o.exist_nested_loop;
    exist_index_join += o.exist_index_join;
    radix_joins += o.radix_joins;
    radix_partitions += o.radix_partitions;
    counting_sorts += o.counting_sorts;
    sel_selects += o.sel_selects;
    dict_joins += o.dict_joins;
    join_key_bytes += o.join_key_bytes;
    par_tasks += o.par_tasks;
    par_partitions += o.par_partitions;
    ft_index_probes += o.ft_index_probes;
    ft_scan_probes += o.ft_scan_probes;
    vectors_flowed += o.vectors_flowed;
    if (o.peak_mem_bytes > peak_mem_bytes) peak_mem_bytes = o.peak_mem_bytes;
    join_ms += o.join_ms;
    sort_ms += o.sort_ms;
    filter_ms += o.filter_ms;
  }
};

/// \brief Optimizer toggles (the experiments flip these) + live counters.
struct ExecFlags {
  bool order_opt = true;   // Fig 14: consult ord/grpord to elide sorts
  bool positional = true;  // use dense columns for positional algorithms
  // Cache-conscious kernel toggles; `false` falls back to the pre-kernel
  // execution paths (pointer-chasing hash joins, eager filter
  // materialization, comparison sorts) for ablation benchmarks.
  bool radix_join = true;   // radix-partitioned flat-table equi/semi joins
  bool sel_vectors = true;  // lazy selection-vector filters
  bool dense_sort = true;   // counting sort on dense leading sort keys
  // Dictionary-compacted item columns (docs/execution.md §5): atomization
  // produces 8-byte ItemDict codes instead of 16-byte items, value
  // equi/semi joins hash + compare codes directly (no interning in the
  // probe loop, so item-valued probes fan out across the thread pool), and
  // gathers/unions move codes, decoding only at pipeline breakers.
  bool dict_items = true;
  // Fulltext predicates (ft:contains / ft:score, docs/fulltext.md) answer
  // from the per-container inverted index; `false` ablates to the naive
  // subtree-scan fallback (tokenize every text node under each candidate),
  // which the differential suite holds byte-identical to the index path.
  bool fulltext = true;
  // Partition-parallel execution width of the operator kernels. 0 =
  // process default (env MXQ_THREADS, else hardware concurrency); 1 =
  // serial operator execution. Layers that no flags reach — the staircase
  // pair sorts and Table::col() materialization — always follow the
  // process default, so a *fully* serial process needs MXQ_THREADS=1.
  // Every parallel path is bit-identical to its serial run by construction
  // (deterministic chunking + in-order stitching), so this is a pure
  // performance knob.
  int threads = 0;
  // Rows per vector in the pull-based pipeline layer (algebra/pipeline.h,
  // env MXQ_VECTOR). Bounds the intermediate footprint of streamed
  // executions: each in-flight batch holds at most this many rows, so the
  // governance MemAccount charges per vector instead of per relation
  // (docs/execution.md §6). Purely a batching knob — streamed results are
  // byte-identical at any size.
  int vector_size = 1024;
  // Governance context of the owning execution (docs/robustness.md); null
  // outside governed executions (tests/benches constructing flags
  // directly). Non-owning: set by ExecuteCommon for the span of one
  // Execute call. Kernels poll stop_requested() at morsel granularity and
  // bail out with truncated results; the evaluator surfaces the typed
  // Status, so truncated intermediates are never observable.
  ExecContext* gov = nullptr;
  mutable ExecStats stats;

  /// Morsel-granularity cancellation checkpoint (cheap: relaxed atomic
  /// loads; the deadline clock is only read when a deadline is armed).
  bool stop_requested() const { return gov != nullptr && gov->StopRequested(); }

  /// Effective execution width (resolves threads == 0).
  int exec_threads() const;

  /// Centralized environment parsing: MXQ_THREADS and MXQ_VECTOR plus the
  /// kernel toggles (MXQ_ORDER_OPT, MXQ_POSITIONAL, MXQ_RADIX_JOIN,
  /// MXQ_SEL_VECTORS, MXQ_DENSE_SORT, MXQ_DICT, MXQ_FT; "0"/"false"/"no"
  /// disable). Benches, tests, and the evaluator all construct flags through
  /// this one helper so no component reads a toggle the others ignore.
  static ExecFlags FromEnv();
};

/// Stats accounting for one radix-table build: partitions always; the
/// parallel counters when the build actually fanned out. Shared by the
/// algebra operators and xquery/eval.cc's bespoke radix users.
void CountRadixBuild(const ExecFlags& fl, const RadixHashTable& ht);

// ---- constructors ---------------------------------------------------------

/// loop relation: single dense I64 column `iter` = 1..n.
TablePtr MakeLoop(int64_t n, const std::string& col = "iter");

/// Generic builder.
TablePtr MakeTable(std::vector<std::pair<std::string, ColumnPtr>> cols);

// ---- projection & column arithmetic --------------------------------------

/// π with rename: keeps `cols` (src -> dst), in the given order.
TablePtr Project(const TablePtr& t,
                 const std::vector<std::pair<std::string, std::string>>& cols);

/// Appends a column (shallow copy of the rest).
TablePtr WithColumn(const TablePtr& t, const std::string& name,
                    ColumnPtr col);

/// Appends a constant column (records the const property).
TablePtr AppendConst(const TablePtr& t, const std::string& name, Item value);

/// out[i] = a[i] (arith-op) b[i].
TablePtr AppendArith(DocumentManager& mgr, const TablePtr& t,
                     const std::string& out, const std::string& a, ArithOp op,
                     const std::string& b);

/// out[i] = bool(a[i] cmp b[i]) with XQuery coercion.
TablePtr AppendCompare(DocumentManager& mgr, const TablePtr& t,
                       const std::string& out, const std::string& a, CmpOp op,
                       const std::string& b);

/// out[i] = atomized in[i]. With `fl.dict_items`, the output column is
/// dictionary-coded (8-byte ItemDict codes, kind-faithful on decode) — the
/// one place the algebra *produces* codes; everything downstream either
/// moves them (gathers, unions, the value joins) or decodes at a pipeline
/// breaker.
TablePtr AppendAtomize(DocumentManager& mgr, const ExecFlags& fl,
                       const TablePtr& t, const std::string& out,
                       const std::string& in);

/// Generic row map over one item column.
TablePtr AppendMap(const TablePtr& t, const std::string& out,
                   const std::string& in,
                   const std::function<Item(const Item&)>& fn);

/// Generic row map over two item columns.
TablePtr AppendMap2(const TablePtr& t, const std::string& out,
                    const std::string& a, const std::string& b,
                    const std::function<Item(const Item&, const Item&)>& fn);

// ---- selection ------------------------------------------------------------

/// σ: keeps rows whose bool column is true (negate: false).
TablePtr SelectTrue(const DocumentManager& mgr, const ExecFlags& fl,
                    const TablePtr& t, const std::string& col,
                    bool negate = false);

/// σ (col = v) on an I64 column; positional when the column is dense.
TablePtr SelectEqI64(const ExecFlags& fl, const TablePtr& t,
                     const std::string& col, int64_t v);

/// Keeps rows by predicate on row index (internal utility). With flags, the
/// selection-vector kernel applies (lazy narrow + sel_selects counter);
/// without, the subset is gathered eagerly (pre-kernel semantics).
TablePtr SelectRows(const TablePtr& t, const std::vector<uint8_t>& keep,
                    const ExecFlags* fl = nullptr);

// ---- set / sequence operators ---------------------------------------------

/// Disjoint union (same schema by name). `disjoint_keys` are columns the
/// caller guarantees to remain duplicate-free across both inputs (e.g. iter
/// columns of complementary conditional branches).
TablePtr DisjointUnion(const TablePtr& a, const TablePtr& b,
                       const std::vector<std::string>& disjoint_keys = {});

/// δ on the given columns, keeping first occurrences.
TablePtr Distinct(const DocumentManager& mgr, const ExecFlags& fl,
                  const TablePtr& t, const std::vector<std::string>& cols);

/// Sort enforcer (ascending, optional per-column descending flags).
TablePtr Sort(const DocumentManager& mgr, const ExecFlags& fl,
              const TablePtr& t, const std::vector<std::string>& cols,
              const std::vector<bool>& desc = {});

/// ρ: appends `new_col` numbering rows 1..k per `group_col` (empty = one
/// global group) in the order given by `order_cols`. Output rows may be
/// re-ordered (sorting variant).
TablePtr RowNum(const DocumentManager& mgr, const ExecFlags& fl,
                const TablePtr& t, const std::string& new_col,
                const std::vector<std::string>& order_cols,
                const std::string& group_col);

// ---- joins -----------------------------------------------------------------

/// Columns of `right` carried into a join result, with renaming.
using KeepCols = std::vector<std::pair<std::string, std::string>>;

/// Equi-join on I64 columns. Output: all of `left`'s columns (probe order
/// preserved) + `right_keep`. Positional lookup when right.rcol is dense.
TablePtr EquiJoinI64(const ExecFlags& fl, const TablePtr& left,
                     const std::string& lcol, const TablePtr& right,
                     const std::string& rcol, const KeepCols& right_keep);

/// Equi-join on item columns (value joins; XQuery coercion-compatible
/// hashing).
TablePtr EquiJoinItem(DocumentManager& mgr, const ExecFlags& fl,
                      const TablePtr& left, const std::string& lcol,
                      const TablePtr& right, const std::string& rcol,
                      const KeepCols& right_keep);

/// Semi/anti join on I64 columns: keep left rows with (no) match in right.
TablePtr SemiJoinI64(const ExecFlags& fl, const TablePtr& left,
                     const std::string& lcol, const TablePtr& right,
                     const std::string& rcol, bool anti = false);

/// Semi/anti join on item columns (value membership; same coercing
/// equality as EquiJoinItem). Dict-coded + morsel-parallel with
/// `fl.dict_items`, serial legacy probe otherwise. Not yet emitted by the
/// compiler (its semijoin-shaped plans are iter-based kSemiJoin and the
/// existential theta-join) — public algebra surface for callers embedding
/// the operator layer, equivalence-tested against the legacy paths.
TablePtr SemiJoinItem(DocumentManager& mgr, const ExecFlags& fl,
                      const TablePtr& left, const std::string& lcol,
                      const TablePtr& right, const std::string& rcol,
                      bool anti = false);

/// Dictionary codes of an item join column: reused in place when
/// atomization already produced a dict column (flattening any selection
/// vector), else atomize+encode row-wise into `*storage`. Shared by the
/// ops.cc join kernels and xquery/eval.cc's existential theta-join.
/// When the dictionary's entry space is exhausted mid-encode, `*ok` is set
/// false and the returned span is empty — callers fall back to the legacy
/// uncoded join paths (the query still answers, without compaction).
std::span<const int64_t> DictJoinCodes(DocumentManager& mgr, const Table& t,
                                       size_t ci,
                                       std::vector<int64_t>* storage,
                                       bool* ok);

/// Dictionary-coded equi-join probe emitting (lkey[l], rkey[r]) pairs for
/// every match — the existential theta-join's (iter, sid) projection.
/// Columns `lci`/`rci` are the item key columns of `lhs`/`rhs`; `lkey`/
/// `rkey` must be flat columns of those tables. The probe is
/// chunk-parallel; emitted pair order is chunk-stitched (the existential
/// join sorts + dedups afterwards, so order before that sort is free).
/// Returns false without emitting anything when either side's codes are
/// unavailable (dictionary exhausted) — the caller must run its legacy
/// item-probe path instead.
bool DictJoinEmitPairs(DocumentManager& mgr, const ExecFlags& fl,
                       const Table& lhs, size_t lci, const Column& lkey,
                       const Table& rhs, size_t rci, const Column& rkey,
                       std::vector<std::pair<int64_t, int64_t>>* pairs);

/// Cartesian product, left-major. Right columns may be renamed.
TablePtr Cross(const TablePtr& a, const TablePtr& b,
               const KeepCols& right_keep);

// ---- aggregation ------------------------------------------------------------

enum class AggKind : uint8_t { kCount, kSum, kMin, kMax, kAvg };

/// Grouped aggregate over `val_col` (item) per `group_col` (I64). Output
/// (group, "agg"), sorted by group. Groups absent from the input are absent
/// from the output (use FillGroups). For kCount, `val_col` may be empty.
TablePtr GroupAggr(DocumentManager& mgr, const ExecFlags& fl,
                   const TablePtr& t, const std::string& group_col,
                   const std::string& val_col, AggKind kind);

/// Left-outer completion: one row per `loop` row; missing groups get
/// `dflt` (empty item = drop semantics are the caller's concern).
TablePtr FillGroups(const ExecFlags& fl, const TablePtr& aggr,
                    const std::string& group_col, const std::string& agg_col,
                    const TablePtr& loop, const std::string& loop_col,
                    Item dflt);

}  // namespace alg
}  // namespace mxq

#endif  // MXQ_ALGEBRA_OPS_H_
