#include "algebra/pipeline.h"

#include <algorithm>

#include "common/exec_context.h"

namespace mxq {
namespace alg {

namespace {

/// Typed stop status for a stage that observed a cancellation: the armed
/// ExecContext knows whether it was a cancel, deadline, or budget trip.
Status StopStatus(const ExecFlags& fl) {
  if (fl.gov != nullptr) {
    Status st = fl.gov->Check();
    if (!st.ok()) return st;
  }
  return Status::Cancelled("pipeline stage stopped");
}

}  // namespace

Result<TablePtr> SliceSource::Next() {
  if (!t_ || row_ >= t_->rows()) return TablePtr{};
  if (fl_->stop_requested()) return StopStatus(*fl_);
  const size_t take =
      std::min<size_t>(static_cast<size_t>(fl_->vector_size),
                       t_->rows() - row_);
  auto keep = std::make_shared<SelVector>();
  keep->idx.resize(take);
  for (size_t k = 0; k < take; ++k)
    keep->idx[k] = static_cast<uint32_t>(row_ + k);
  auto out = t_->Select(std::move(keep));
  // A contiguous ascending window preserves order, group-order, keys and
  // constants of the parent; dense columns lose their property (the window
  // no longer starts at the dense origin).
  out->props() = t_->props();
  out->props().dense.clear();
  row_ += take;
  ++fl_->stats.vectors_flowed;
  return out;
}

Result<TablePtr> ItemBufferSource::Next() {
  if (row_ >= items_.size()) return TablePtr{};
  if (fl_->stop_requested()) return StopStatus(*fl_);
  const size_t take =
      std::min<size_t>(static_cast<size_t>(fl_->vector_size),
                       items_.size() - row_);
  // A fresh Column per vector: MakeItem charges the installed ExecContext's
  // MemAccount and the destructor releases it when the consumer drops the
  // batch — at most one in-flight vector is accounted at a time.
  std::vector<Item> window(items_.begin() + row_,
                           items_.begin() + row_ + take);
  auto out = Table::Make();
  out->AddColumn(col_, Column::MakeItem(std::move(window)));
  row_ += take;
  ++fl_->stats.vectors_flowed;
  return out;
}

Result<TablePtr> TransformStage::Next() {
  for (;;) {
    if (fl_->stop_requested()) return StopStatus(*fl_);
    MXQ_ASSIGN_OR_RETURN(TablePtr in, upstream_->Next());
    if (!in) return TablePtr{};
    MXQ_ASSIGN_OR_RETURN(TablePtr out, fn_(in));
    if (!out || out->rows() == 0) continue;  // fully filtered: pull again
    ++fl_->stats.vectors_flowed;
    return out;
  }
}

}  // namespace alg
}  // namespace mxq
