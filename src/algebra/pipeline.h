// Pull-based vector pipelines over the algebra kernels (docs/execution.md
// §6, the X100 "breaking the memory wall" direction of the paper lineage).
//
// The operators in ops.h materialize their full result — simple, and the
// right call for pipeline *breakers* (sort, radix build, group boundary)
// whose output order depends on their whole input. But a result that only
// needs to be *consumed* (a streaming ResultCursor) should never hold the
// full relation: execution is sliced into fixed-size vectors (default 1024
// rows, `ExecFlags::vector_size` / env MXQ_VECTOR) pulled one at a time
// through a chain of VectorSource stages, so the charged intermediate
// footprint is bounded by the vector size, not the input size.
//
// Contracts every stage obeys:
//   * Next() returns at most `vector_size` rows per call, an empty TablePtr
//     at end of stream, and a non-OK Status on error — including the typed
//     governance statuses: every pull is a cancellation checkpoint
//     (ExecFlags::stop_requested), so an abandoned or cancelled consumer
//     stops the producer within one vector.
//   * Vectors whose columns are freshly built charge the installed
//     ExecContext's MemAccount through the ordinary Column constructors —
//     the vector IS the governance memory unit. Zero-copy window vectors
//     (SliceSource) share their parent's already-charged columns.
//   * Each emitted vector increments `ExecStats::vectors_flowed`; stages
//     never touch `tuples_materialized`, which keeps counting full-size
//     materializations only (the two are reported distinctly).
//
// Stage composition is non-owning by pointer; a Pipeline owns the stages
// and hands out the tail to pull from.

#ifndef MXQ_ALGEBRA_PIPELINE_H_
#define MXQ_ALGEBRA_PIPELINE_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "algebra/ops.h"
#include "common/status.h"
#include "storage/table.h"

namespace mxq {
namespace alg {

/// \brief One stage of a pull-based vector pipeline.
class VectorSource {
 public:
  virtual ~VectorSource() = default;

  /// Pulls the next vector: a table of 1..vector_size rows, an empty
  /// TablePtr at end of stream (and on every call thereafter), or a non-OK
  /// Status on error / cancellation. A stage that returned non-OK stays
  /// failed.
  virtual Result<TablePtr> Next() = 0;
};

/// \brief Pipeline-breaker adapter: slices an already-materialized table
/// into zero-copy window vectors (Table::Select on consecutive row ranges).
/// This is how breaker outputs re-enter the streaming world: the breaker
/// ran exactly as it always has, bit-identically, and its result flows on
/// in bounded batches.
class SliceSource final : public VectorSource {
 public:
  /// `fl` must outlive the source (it is the owning execution's flags).
  SliceSource(TablePtr t, const ExecFlags* fl)
      : t_(std::move(t)), fl_(fl) {}

  Result<TablePtr> Next() override;

 private:
  TablePtr t_;
  const ExecFlags* fl_;
  size_t row_ = 0;
};

/// \brief Streams charged vectors out of an uncharged scratch buffer of
/// items. Kernels that compute into plain std::vector scratch (staircase
/// outputs, probe result lists) hand the buffer over once; each pull copies
/// the next window into a fresh Column, which charges the installed
/// MemAccount — so the *accounted* footprint per pull is one vector, the
/// same unit the budget admits by.
class ItemBufferSource final : public VectorSource {
 public:
  ItemBufferSource(std::vector<Item> items, std::string col_name,
                   const ExecFlags* fl)
      : items_(std::move(items)), col_(std::move(col_name)), fl_(fl) {}

  Result<TablePtr> Next() override;

 private:
  std::vector<Item> items_;
  std::string col_;
  const ExecFlags* fl_;
  size_t row_ = 0;
};

/// \brief Chains a non-breaking per-vector operator (filter, projection,
/// gather, atomize — anything whose output rows depend only on the current
/// vector) onto an upstream stage. The function may return fewer rows than
/// it was given (filters); all-filtered vectors are skipped, not emitted.
class TransformStage final : public VectorSource {
 public:
  using Fn = std::function<Result<TablePtr>(const TablePtr&)>;

  /// `upstream` is non-owning (a Pipeline owns both stages).
  TransformStage(VectorSource* upstream, Fn fn, const ExecFlags* fl)
      : upstream_(upstream), fn_(std::move(fn)), fl_(fl) {}

  Result<TablePtr> Next() override;

 private:
  VectorSource* upstream_;
  Fn fn_;
  const ExecFlags* fl_;
};

/// \brief Owns a chain of stages, source first; pull from `tail()`.
class Pipeline {
 public:
  /// Appends a stage (constructed to read from the previous tail) and
  /// returns it for downstream wiring.
  VectorSource* Push(std::unique_ptr<VectorSource> stage) {
    stages_.push_back(std::move(stage));
    return stages_.back().get();
  }

  VectorSource* tail() const {
    return stages_.empty() ? nullptr : stages_.back().get();
  }
  bool empty() const { return stages_.empty(); }

 private:
  std::vector<std::unique_ptr<VectorSource>> stages_;
};

}  // namespace alg
}  // namespace mxq

#endif  // MXQ_ALGEBRA_PIPELINE_H_
