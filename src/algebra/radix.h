// Radix-partitioned hash table for equi-joins (the cache-conscious join
// kernel of the MonetDB lineage; cf. "Breaking the Memory Wall in MonetDB").
//
// The build side is radix-clustered on the low bits of the key into
// partitions sized to fit the cache; each partition then gets a flat
// linear-probe table over one shared arena. Duplicate keys chain through a
// `next` array. Compared to `std::unordered_map<key, std::vector<row>>` this
// removes every per-key heap allocation and every pointer chase into
// node-allocated buckets: build is two sequential passes plus a scatter into
// cache-resident partitions, and a probe touches one contiguous slot run
// plus a contiguous chain.
//
// Partitioning uses the low *value* bits (true radix, not hash bits): the
// engine's join keys are iter/pre/rid surrogates, which are dense-ish and
// usually probed in sorted order, so consecutive probes land in the same
// partition and its table stays hot in L1. Slot placement within a
// partition uses a mixed hash so value-structured keys don't collide.

#ifndef MXQ_ALGEBRA_RADIX_H_
#define MXQ_ALGEBRA_RADIX_H_

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "common/exec_context.h"
#include "common/thread_pool.h"

namespace mxq {
namespace alg {

/// splitmix64 finalizer: cheap, full-avalanche 64-bit mixer.
inline uint64_t MixHash64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

class RadixHashTable {
 public:
  static constexpr uint32_t kNone = 0xffffffffu;
  /// Partition size target: ~2k entries * (key + row + next + slots) ≈ 48 KB,
  /// comfortably L2-resident with the probe stream.
  static constexpr size_t kPartitionTarget = size_t{1} << 11;
  static constexpr int kMaxBits = 12;

  RadixHashTable() = default;
  /// `cancel` (optional) is polled between build phases: a cancelled build
  /// finishes as a valid *empty* table, so subsequent probes are cheap
  /// no-ops — the caller's evaluator discards the truncated join result
  /// via the governance Status check (docs/robustness.md).
  explicit RadixHashTable(std::span<const uint64_t> keys, int threads = 1,
                          const ExecContext* cancel = nullptr) {
    Build(keys, threads, cancel);
  }
  explicit RadixHashTable(std::span<const int64_t> keys, int threads = 1,
                          const ExecContext* cancel = nullptr) {
    // Signed/unsigned variants of the same width may alias.
    Build({reinterpret_cast<const uint64_t*>(keys.data()), keys.size()},
          threads, cancel);
  }

  size_t partitions() const { return keys_.empty() ? 0 : part_cap_.size(); }
  size_t entries() const { return keys_.size(); }
  /// Chunks the build actually fanned out to (1 == serial build).
  int build_chunks() const { return build_chunks_; }

  /// Calls f(build_row) for every entry with this key, in ascending
  /// build-row order (matching the probe-order-preserving hash join).
  template <class F>
  void ForEach(uint64_t key, F&& f) const {
    uint32_t e = Find(key);
    for (; e != kNone; e = next_[e]) f(rows_[e]);
  }
  void ForEach(int64_t key, auto&& f) const {
    ForEach(static_cast<uint64_t>(key), f);
  }

  bool Contains(uint64_t key) const { return Find(key) != kNone; }
  bool Contains(int64_t key) const {
    return Contains(static_cast<uint64_t>(key));
  }

 private:
  uint32_t Find(uint64_t key) const {
    if (keys_.empty()) return kNone;
    const size_t p = key & part_mask_;
    const uint32_t cap = part_cap_[p];
    if (cap == 0) return kNone;
    const uint32_t* table = table_.data() + tab_off_[p];
    uint32_t slot = static_cast<uint32_t>(MixHash64(key)) & (cap - 1);
    while (true) {
      uint32_t e = table[slot];
      if (e == kNone) return kNone;
      if (keys_[e] == key) return e;
      slot = (slot + 1) & (cap - 1);
    }
  }

  void Build(std::span<const uint64_t> keys, int threads,
             const ExecContext* cancel = nullptr) {
    const size_t n = keys.size();
    if (n == 0) return;
    if (cancel != nullptr && cancel->StopRequested()) return;
    // Entries, rows, and the kNone sentinel are 32-bit; larger builds must
    // fail loudly, not truncate.
    assert(n < kNone);
    int bits = 0;
    while ((n >> bits) > kPartitionTarget && bits < kMaxBits) ++bits;
    const size_t np = size_t{1} << bits;
    part_mask_ = np - 1;
    const int chunks = PlanChunks(threads, n);
    build_chunks_ = chunks;

    // Radix-cluster pass 1: histogram by low key bits, one histogram per
    // input chunk so chunks never share counters.
    std::vector<uint32_t> count(static_cast<size_t>(chunks) * np, 0);
    ParallelChunks(chunks, n, [&](int c, size_t b, size_t e) {
      uint32_t* h = count.data() + static_cast<size_t>(c) * np;
      for (size_t i = b; i < e; ++i) ++h[keys[i] & part_mask_];
    });
    // Partition totals + per-(chunk, partition) scatter end cursors. The
    // serial scatter fills each partition from its top downward as the
    // input row ascends; giving chunk c the cursor range below the chunks
    // before it reproduces that exact layout (chunk rows are ascending
    // across chunks), so the parallel build is bit-identical to the serial
    // one — same entry order, same duplicate chains, same probe results.
    std::vector<uint32_t> part_count(np, 0), part_off(np + 1, 0);
    for (size_t p = 0; p < np; ++p) {
      for (int c = 0; c < chunks; ++c)
        part_count[p] += count[static_cast<size_t>(c) * np + p];
      part_off[p + 1] = part_off[p] + part_count[p];
    }
    std::vector<uint32_t> chunk_end(static_cast<size_t>(chunks) * np);
    for (size_t p = 0; p < np; ++p) {
      uint32_t cur = part_off[p + 1];  // partition end (exclusive)
      for (int c = 0; c < chunks; ++c) {
        chunk_end[static_cast<size_t>(c) * np + p] = cur;
        cur -= count[static_cast<size_t>(c) * np + p];
      }
    }

    // Cancellation checkpoint between build phases: bail as a valid empty
    // table (the phases themselves are bounded parallel sweeps, so the
    // added latency is one phase, not the whole build).
    if (cancel != nullptr && cancel->StopRequested()) return;

    // Pass 2: scatter (key, row) clustered by partition. Iterating the
    // input forward while the cursor decrements from the chunk's end
    // leaves each partition in *descending* row order; head-insertion below
    // then yields ascending duplicate chains.
    keys_.resize(n);
    rows_.resize(n);
    ParallelChunks(chunks, n, [&](int c, size_t b, size_t e) {
      uint32_t* end = chunk_end.data() + static_cast<size_t>(c) * np;
      for (size_t i = b; i < e; ++i) {
        uint32_t pos = --end[keys[i] & part_mask_];
        keys_[pos] = keys[i];
        rows_[pos] = static_cast<uint32_t>(i);
      }
    });

    if (cancel != nullptr && cancel->StopRequested()) {
      // Scattered but untabled state would be inconsistent; reset to empty.
      keys_.clear();
      rows_.clear();
      return;
    }

    // Per-partition flat tables over one arena, 2x-oversized power of two.
    part_cap_.resize(np);
    tab_off_.resize(np);
    uint64_t total = 0;
    for (size_t p = 0; p < np; ++p) {
      uint32_t cap = 0;
      if (part_count[p] > 0) {
        cap = 4;
        while (cap < 2 * part_count[p]) cap <<= 1;
      }
      part_cap_[p] = cap;
      tab_off_[p] = static_cast<uint32_t>(total);
      total += cap;
    }
    table_.assign(total, kNone);
    next_.assign(n, kNone);

    // Insert each partition's entries (descending row order per above).
    // Partitions are fully independent (disjoint slot arenas, disjoint
    // entry ranges), so the insert sweep fans out across partitions.
    ParallelChunks(chunks, np, [&](int, size_t pb, size_t pe) {
      for (size_t p = pb; p < pe; ++p) {
        const uint32_t cap = part_cap_[p];
        uint32_t* table = table_.data() + tab_off_[p];
        const uint32_t part_begin = part_off[p];
        for (uint32_t e = part_begin; e < part_begin + part_count[p]; ++e) {
          uint32_t slot =
              static_cast<uint32_t>(MixHash64(keys_[e])) & (cap - 1);
          while (true) {
            uint32_t head = table[slot];
            if (head == kNone) {
              table[slot] = e;
              break;
            }
            if (keys_[head] == keys_[e]) {
              next_[e] = head;  // chain duplicates at the head
              table[slot] = e;
              break;
            }
            slot = (slot + 1) & (cap - 1);
          }
        }
      }
    });
  }

  size_t part_mask_ = 0;
  int build_chunks_ = 1;
  std::vector<uint64_t> keys_;      // clustered by partition
  std::vector<uint32_t> rows_;      // original build rows, parallel to keys_
  std::vector<uint32_t> next_;      // duplicate chains (entry -> entry)
  std::vector<uint32_t> table_;     // slot arena: entry index or kNone
  std::vector<uint32_t> part_cap_;  // slots per partition (power of two)
  std::vector<uint32_t> tab_off_;   // partition offset into table_
};

}  // namespace alg
}  // namespace mxq

#endif  // MXQ_ALGEBRA_RADIX_H_
