// Radix-partitioned hash table for equi-joins (the cache-conscious join
// kernel of the MonetDB lineage; cf. "Breaking the Memory Wall in MonetDB").
//
// The build side is radix-clustered on the low bits of the key into
// partitions sized to fit the cache; each partition then gets a flat
// linear-probe table over one shared arena. Duplicate keys chain through a
// `next` array. Compared to `std::unordered_map<key, std::vector<row>>` this
// removes every per-key heap allocation and every pointer chase into
// node-allocated buckets: build is two sequential passes plus a scatter into
// cache-resident partitions, and a probe touches one contiguous slot run
// plus a contiguous chain.
//
// Partitioning uses the low *value* bits (true radix, not hash bits): the
// engine's join keys are iter/pre/rid surrogates, which are dense-ish and
// usually probed in sorted order, so consecutive probes land in the same
// partition and its table stays hot in L1. Slot placement within a
// partition uses a mixed hash so value-structured keys don't collide.

#ifndef MXQ_ALGEBRA_RADIX_H_
#define MXQ_ALGEBRA_RADIX_H_

#include <cstdint>
#include <span>
#include <vector>

namespace mxq {
namespace alg {

/// splitmix64 finalizer: cheap, full-avalanche 64-bit mixer.
inline uint64_t MixHash64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

class RadixHashTable {
 public:
  static constexpr uint32_t kNone = 0xffffffffu;
  /// Partition size target: ~2k entries * (key + row + next + slots) ≈ 48 KB,
  /// comfortably L2-resident with the probe stream.
  static constexpr size_t kPartitionTarget = size_t{1} << 11;
  static constexpr int kMaxBits = 12;

  RadixHashTable() = default;
  explicit RadixHashTable(std::span<const uint64_t> keys) { Build(keys); }
  explicit RadixHashTable(std::span<const int64_t> keys) {
    // Signed/unsigned variants of the same width may alias.
    Build({reinterpret_cast<const uint64_t*>(keys.data()), keys.size()});
  }

  size_t partitions() const { return keys_.empty() ? 0 : part_cap_.size(); }
  size_t entries() const { return keys_.size(); }

  /// Calls f(build_row) for every entry with this key, in ascending
  /// build-row order (matching the probe-order-preserving hash join).
  template <class F>
  void ForEach(uint64_t key, F&& f) const {
    uint32_t e = Find(key);
    for (; e != kNone; e = next_[e]) f(rows_[e]);
  }
  void ForEach(int64_t key, auto&& f) const {
    ForEach(static_cast<uint64_t>(key), f);
  }

  bool Contains(uint64_t key) const { return Find(key) != kNone; }
  bool Contains(int64_t key) const {
    return Contains(static_cast<uint64_t>(key));
  }

 private:
  uint32_t Find(uint64_t key) const {
    if (keys_.empty()) return kNone;
    const size_t p = key & part_mask_;
    const uint32_t cap = part_cap_[p];
    if (cap == 0) return kNone;
    const uint32_t* table = table_.data() + tab_off_[p];
    uint32_t slot = static_cast<uint32_t>(MixHash64(key)) & (cap - 1);
    while (true) {
      uint32_t e = table[slot];
      if (e == kNone) return kNone;
      if (keys_[e] == key) return e;
      slot = (slot + 1) & (cap - 1);
    }
  }

  void Build(std::span<const uint64_t> keys) {
    const size_t n = keys.size();
    if (n == 0) return;
    int bits = 0;
    while ((n >> bits) > kPartitionTarget && bits < kMaxBits) ++bits;
    const size_t np = size_t{1} << bits;
    part_mask_ = np - 1;

    // Radix-cluster pass 1: histogram by low key bits.
    std::vector<uint32_t> count(np, 0);
    for (uint64_t k : keys) ++count[k & part_mask_];
    std::vector<uint32_t> end(np);  // running scatter cursor, from the top
    uint32_t sum = 0;
    for (size_t p = 0; p < np; ++p) {
      sum += count[p];
      end[p] = sum;
    }

    // Pass 2: scatter (key, row) clustered by partition. Iterating the
    // input forward while the cursor decrements from the partition end
    // leaves each partition in *descending* row order; head-insertion below
    // then yields ascending duplicate chains.
    keys_.resize(n);
    rows_.resize(n);
    for (size_t i = 0; i < n; ++i) {
      uint32_t pos = --end[keys[i] & part_mask_];
      keys_[pos] = keys[i];
      rows_[pos] = static_cast<uint32_t>(i);
    }

    // Per-partition flat tables over one arena, 2x-oversized power of two.
    part_cap_.resize(np);
    tab_off_.resize(np);
    uint64_t total = 0;
    for (size_t p = 0; p < np; ++p) {
      uint32_t cap = 0;
      if (count[p] > 0) {
        cap = 4;
        while (cap < 2 * count[p]) cap <<= 1;
      }
      part_cap_[p] = cap;
      tab_off_[p] = static_cast<uint32_t>(total);
      total += cap;
    }
    table_.assign(total, kNone);
    next_.assign(n, kNone);

    // Insert each partition's entries (descending row order per above).
    uint32_t part_begin = 0;
    for (size_t p = 0; p < np; ++p) {
      const uint32_t cap = part_cap_[p];
      uint32_t* table = table_.data() + tab_off_[p];
      for (uint32_t e = part_begin; e < part_begin + count[p]; ++e) {
        uint32_t slot = static_cast<uint32_t>(MixHash64(keys_[e])) & (cap - 1);
        while (true) {
          uint32_t head = table[slot];
          if (head == kNone) {
            table[slot] = e;
            break;
          }
          if (keys_[head] == keys_[e]) {
            next_[e] = head;  // chain duplicates at the head
            table[slot] = e;
            break;
          }
          slot = (slot + 1) & (cap - 1);
        }
      }
      part_begin += count[p];
    }
  }

  size_t part_mask_ = 0;
  std::vector<uint64_t> keys_;      // clustered by partition
  std::vector<uint32_t> rows_;      // original build rows, parallel to keys_
  std::vector<uint32_t> next_;      // duplicate chains (entry -> entry)
  std::vector<uint32_t> table_;     // slot arena: entry index or kNone
  std::vector<uint32_t> part_cap_;  // slots per partition (power of two)
  std::vector<uint32_t> tab_off_;   // partition offset into table_
};

}  // namespace alg
}  // namespace mxq

#endif  // MXQ_ALGEBRA_RADIX_H_
