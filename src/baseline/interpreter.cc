#include "baseline/interpreter.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>

#include "algebra/item_ops.h"
#include "staircase/naive_axes.h"
#include "xml/serializer.h"
#include "xquery/parser.h"

namespace mxq {
namespace baseline {

namespace {

using xq::Clause;
using xq::Expr;
using xq::ExprKind;
using xq::FunctionDecl;
using xq::Step;

using Seq = std::vector<Item>;

class Evaluator {
 public:
  Evaluator(DocumentManager* mgr, DocumentContainer* transient)
      : mgr_(*mgr), tr_(transient) {}

  Result<Seq> Run(const xq::Query& q) {
    for (const FunctionDecl& f : q.functions) funcs_[f.name] = &f;
    Env env;
    return E(*q.body, env);
  }

 private:
  struct Env {
    std::map<std::string, Seq> vars;
  };

  Status Err(const std::string& m) {
    return Status::TypeError("naive interpreter: " + m);
  }

  bool Ebv(const Seq& s) {
    if (s.empty()) return false;
    if (s[0].is_any_node()) return true;
    return ItemEbv(mgr_, s[0]);
  }

  Seq AtomizeSeq(const Seq& s) {
    Seq out;
    out.reserve(s.size());
    for (const Item& it : s) out.push_back(Atomize(mgr_, it));
    return out;
  }

  bool ExistentialCmp(const Seq& a, CmpOp op, const Seq& b) {
    // The naive nested-loop comparison first-generation engines used.
    for (const Item& x : a)
      for (const Item& y : b)
        if (CompareItems(mgr_, Atomize(mgr_, x), op, Atomize(mgr_, y)))
          return true;
    return false;
  }

  // ---- paths ---------------------------------------------------------------

  Result<Seq> EvalSteps(Seq input, const std::vector<Step>& steps, Env& env) {
    Seq cur = std::move(input);
    for (const Step& s : steps) {
      if (!(s.axis == Axis::kSelf && s.sel == NodeTest::Sel::kAnyNode &&
            s.name.empty())) {
        NodeTest test;
        test.sel = s.sel;
        test.qn = s.name.empty() ? kInvalidStrId
                                 : mgr_.strings().Find(s.name);
        if (!s.name.empty() && test.qn == kInvalidStrId) {
          cur.clear();
        } else {
          // Per container: collect contexts, evaluate the axis naively.
          std::map<int32_t, std::vector<int64_t>> per_container;
          for (const Item& it : cur)
            if (it.kind == ItemKind::kNode)
              per_container[it.node().container].push_back(it.node().pre);
          Seq next;
          for (auto& [cid, pres] : per_container) {
            std::sort(pres.begin(), pres.end());
            pres.erase(std::unique(pres.begin(), pres.end()), pres.end());
            const DocumentContainer& doc = *mgr_.container(cid);
            for (int64_t v : EvalAxisNaive(doc, s.axis, pres, test))
              next.push_back(s.axis == Axis::kAttribute ? Item::Attr(cid, v)
                                                        : Item::Node(cid, v));
          }
          cur = std::move(next);
        }
      }
      for (const xq::ExprPtr& pred : s.preds) {
        MXQ_ASSIGN_OR_RETURN(cur, Filter(std::move(cur), *pred, env));
      }
    }
    return cur;
  }

  Result<Seq> Filter(Seq input, const Expr& pred, Env& env) {
    Seq out;
    int64_t last = static_cast<int64_t>(input.size());
    for (int64_t p = 0; p < last; ++p) {
      Env env2 = env;
      env2.vars["."] = {input[p]};
      env2.vars["#pos"] = {Item::Int(p + 1)};
      env2.vars["#last"] = {Item::Int(last)};
      MXQ_ASSIGN_OR_RETURN(Seq v, E(pred, env2));
      bool keep;
      if (!v.empty() && v[0].is_numeric())
        keep = v[0].as_double() == static_cast<double>(p + 1);
      else
        keep = Ebv(v);
      if (keep) out.push_back(input[p]);
    }
    return out;
  }

  // ---- FLWOR ----------------------------------------------------------------

  Result<Seq> EvalFLWOR(const Expr& e, Env& env) {
    std::vector<Env> tuples = {env};
    for (const Clause& c : e.clauses) {
      std::vector<Env> next;
      for (Env& t : tuples) {
        MXQ_ASSIGN_OR_RETURN(Seq seq, E(*c.expr, t));
        if (c.type == Clause::Type::kLet) {
          Env t2 = t;
          t2.vars[c.var] = std::move(seq);
          next.push_back(std::move(t2));
        } else {
          int64_t pos = 0;
          for (const Item& it : seq) {
            Env t2 = t;
            t2.vars[c.var] = {it};
            if (!c.pos_var.empty()) t2.vars[c.pos_var] = {Item::Int(++pos)};
            next.push_back(std::move(t2));
            if (c.pos_var.empty()) ++pos;
          }
        }
      }
      tuples = std::move(next);
    }
    if (e.where) {
      std::vector<Env> kept;
      for (Env& t : tuples) {
        MXQ_ASSIGN_OR_RETURN(Seq w, E(*e.where, t));
        if (Ebv(w)) kept.push_back(std::move(t));
      }
      tuples = std::move(kept);
    }
    if (!e.order.empty()) {
      std::vector<std::pair<std::vector<Item>, size_t>> keyed(tuples.size());
      for (size_t i = 0; i < tuples.size(); ++i) {
        keyed[i].second = i;
        for (const xq::OrderSpec& os : e.order) {
          MXQ_ASSIGN_OR_RETURN(Seq k, E(*os.key, tuples[i]));
          keyed[i].first.push_back(k.empty() ? Item() : Atomize(mgr_, k[0]));
        }
      }
      std::stable_sort(keyed.begin(), keyed.end(),
                       [&](const auto& a, const auto& b) {
                         for (size_t k = 0; k < e.order.size(); ++k) {
                           int c = OrderCompare(mgr_, a.first[k], b.first[k]);
                           if (c) return e.order[k].descending ? c > 0 : c < 0;
                         }
                         return false;
                       });
      std::vector<Env> sorted;
      sorted.reserve(tuples.size());
      for (auto& [k, idx] : keyed) sorted.push_back(std::move(tuples[idx]));
      tuples = std::move(sorted);
    }
    Seq out;
    for (Env& t : tuples) {
      MXQ_ASSIGN_OR_RETURN(Seq r, E(*e.ret, t));
      out.insert(out.end(), r.begin(), r.end());
    }
    return out;
  }

  Result<Seq> EvalQuantified(const Expr& e, Env& env) {
    bool every = e.every;
    std::function<Result<bool>(size_t, Env&)> rec =
        [&](size_t level, Env& t) -> Result<bool> {
      if (level == e.clauses.size()) {
        MXQ_ASSIGN_OR_RETURN(Seq c, E(*e.ret, t));
        return Ebv(c);
      }
      MXQ_ASSIGN_OR_RETURN(Seq seq, E(*e.clauses[level].expr, t));
      for (const Item& it : seq) {
        Env t2 = t;
        t2.vars[e.clauses[level].var] = {it};
        MXQ_ASSIGN_OR_RETURN(bool b, rec(level + 1, t2));
        if (b != every) return !every;  // short-circuit
      }
      return every;
    };
    MXQ_ASSIGN_OR_RETURN(bool b, rec(0, env));
    return Seq{Item::Bool(b)};
  }

  // ---- constructors -----------------------------------------------------------

  Result<std::string> AVTString(
      const std::vector<xq::CtorContent>& pieces, Env& env) {
    std::string out;
    for (const xq::CtorContent& p : pieces) {
      if (!p.expr) {
        out += p.text;
        continue;
      }
      MXQ_ASSIGN_OR_RETURN(Seq v, E(*p.expr, env));
      for (size_t i = 0; i < v.size(); ++i) {
        if (i) out += " ";
        Item s = CastString(mgr_, v[i]);
        out += mgr_.strings().Get(s.str_id());
      }
    }
    return out;
  }

  Result<Seq> EvalCtor(const Expr& e, Env& env) {
    // Evaluate all content first: nested constructors append fragments to
    // the same transient container, which must happen before this node's
    // slot range opens.
    std::vector<std::pair<std::string, std::string>> attr_vals;
    for (const auto& [name, pieces] : e.attrs) {
      MXQ_ASSIGN_OR_RETURN(std::string v, AVTString(pieces, env));
      attr_vals.emplace_back(name, v);
    }
    std::vector<Seq> content(e.content.size());
    for (size_t i = 0; i < e.content.size(); ++i) {
      const xq::CtorContent& c = e.content[i];
      if (c.expr) {
        MXQ_ASSIGN_OR_RETURN(content[i], E(*c.expr, env));
      } else {
        content[i] = {Item::String(mgr_.strings().Intern(c.text))};
      }
    }

    StrId tag = mgr_.strings().Intern(e.str);
    int32_t frag = tr_->next_frag();
    int64_t root = tr_->AppendSlot(NodeKind::kElem, tag, 0, frag);
    for (const auto& [name, v] : attr_vals)
      tr_->AppendAttr(root, mgr_.strings().Intern(name),
                      mgr_.strings().Intern(v));
    std::string text_run;
    bool have_text = false;
    auto flush = [&] {
      if (!have_text) return;
      tr_->AppendSlot(NodeKind::kText, mgr_.strings().Intern(text_run), 1,
                      frag);
      text_run.clear();
      have_text = false;
    };
    for (const Seq& items : content) {
      for (const Item& v : items) {
        if (v.kind == ItemKind::kAttr) {
          AttrRef a = v.attr();
          const DocumentContainer& src = *mgr_.container(a.container);
          tr_->AppendAttr(root, src.AttrQn(a.row), src.AttrValue(a.row));
        } else if (v.kind == ItemKind::kNode) {
          flush();
          NodeRef nr = v.node();
          const DocumentContainer& src = *mgr_.container(nr.container);
          if (src.KindAt(nr.pre) == NodeKind::kDoc) {
            int64_t end = nr.pre + src.SizeAt(nr.pre);
            for (int64_t p = nr.pre + 1; p <= end;) {
              if (src.IsUnused(p)) {
                p += src.SizeAt(p) + 1;
                continue;
              }
              tr_->CopySubtree(src, p, 1, frag);
              p += src.SizeAt(p) + 1;
            }
          } else {
            tr_->CopySubtree(src, nr.pre, 1, frag);
          }
        } else if (v.kind != ItemKind::kEmpty) {
          if (have_text) text_run += " ";
          text_run += AtomicToString(mgr_, v);
          have_text = true;
        }
      }
    }
    flush();
    tr_->SetSize(root, tr_->PhysicalSlots() - root - 1);
    tr_->InvalidateIndexes();
    return Seq{Item::Node(tr_->id(), root)};
  }

  // ---- calls -----------------------------------------------------------------

  Result<Seq> EvalCall(const Expr& e, Env& env) {
    const std::string& f = e.str;
    std::vector<Seq> args(e.children.size());
    for (size_t i = 0; i < e.children.size(); ++i) {
      MXQ_ASSIGN_OR_RETURN(args[i], E(*e.children[i], env));
    }
    auto one = [&](size_t i) -> Item {
      return args[i].empty() ? Item() : args[i][0];
    };
    auto str_of = [&](const Item& it) -> std::string {
      Item s = CastString(mgr_, it);
      return mgr_.strings().Get(s.str_id());
    };

    if (f == "count") return Seq{Item::Int(static_cast<int64_t>(args[0].size()))};
    if (f == "sum" || f == "avg" || f == "min" || f == "max") {
      Seq a = AtomizeSeq(args[0]);
      if (a.empty())
        return f == "sum" ? Seq{Item::Int(0)} : Seq{};
      if (f == "sum" || f == "avg") {
        double s = 0;
        bool all_int = true;
        int64_t si = 0;
        for (const Item& it : a) {
          if (it.kind == ItemKind::kInt) si += it.i;
          else all_int = false;
          s += ToDouble(mgr_, it);
        }
        if (f == "avg") return Seq{Item::Double(s / a.size())};
        return Seq{all_int ? Item::Int(si) : Item::Double(s)};
      }
      Item best = a[0];
      for (const Item& it : a)
        if (CompareItems(mgr_, it, f == "min" ? CmpOp::kLt : CmpOp::kGt, best))
          best = it;
      return Seq{best};
    }
    if (f == "not") return Seq{Item::Bool(!Ebv(args[0]))};
    if (f == "boolean") return Seq{Item::Bool(Ebv(args[0]))};
    if (f == "empty") return Seq{Item::Bool(args[0].empty())};
    if (f == "exists") return Seq{Item::Bool(!args[0].empty())};
    if (f == "true") return Seq{Item::Bool(true)};
    if (f == "false") return Seq{Item::Bool(false)};
    if (f == "contains")
      return Seq{Item::Bool(str_of(one(0)).find(str_of(one(1))) !=
                            std::string::npos)};
    if (f == "starts-with")
      return Seq{Item::Bool(str_of(one(0)).rfind(str_of(one(1)), 0) == 0)};
    if (f == "string") {
      std::string out;
      for (size_t i = 0; i < args[0].size(); ++i) {
        if (i) out += " ";
        out += str_of(args[0][i]);
      }
      return Seq{Item::String(mgr_.strings().Intern(out))};
    }
    if (f == "string-join") {
      std::string sep = str_of(one(1));
      std::string out;
      for (size_t i = 0; i < args[0].size(); ++i) {
        if (i) out += sep;
        out += str_of(args[0][i]);
      }
      return Seq{Item::String(mgr_.strings().Intern(out))};
    }
    if (f == "concat") {
      std::string out;
      for (const Seq& a : args)
        for (const Item& it : a) out += str_of(it);
      return Seq{Item::String(mgr_.strings().Intern(out))};
    }
    if (f == "data") return AtomizeSeq(args[0]);
    if (f == "number")
      return Seq{Item::Double(ToDouble(mgr_, one(0)))};
    if (f == "round")
      return Seq{Item::Double(std::round(ToDouble(mgr_, one(0))))};
    if (f == "floor")
      return Seq{Item::Double(std::floor(ToDouble(mgr_, one(0))))};
    if (f == "ceiling")
      return Seq{Item::Double(std::ceil(ToDouble(mgr_, one(0))))};
    if (f == "abs")
      return Seq{Item::Double(std::fabs(ToDouble(mgr_, one(0))))};
    if (f == "string-length")
      return Seq{Item::Int(static_cast<int64_t>(str_of(one(0)).size()))};
    if (f == "substring") {
      std::string s = str_of(one(0));
      double st = ToDouble(mgr_, one(1));
      size_t from = st <= 1 ? 0 : static_cast<size_t>(st) - 1;
      return Seq{Item::String(
          mgr_.strings().Intern(from >= s.size() ? "" : s.substr(from)))};
    }
    if (f == "name" || f == "local-name") {
      Item it = one(0);
      StrId qn = kInvalidStrId;
      if (it.kind == ItemKind::kNode) {
        NodeRef nr = it.node();
        const DocumentContainer& c = *mgr_.container(nr.container);
        if (c.KindAt(nr.pre) == NodeKind::kElem)
          qn = static_cast<StrId>(c.RefAt(nr.pre));
      } else if (it.kind == ItemKind::kAttr) {
        qn = mgr_.container(it.attr().container)->AttrQn(it.attr().row);
      }
      std::string name = qn == kInvalidStrId ? "" : mgr_.strings().Get(qn);
      if (f == "local-name") {
        size_t colon = name.rfind(':');
        if (colon != std::string::npos) name = name.substr(colon + 1);
      }
      return Seq{Item::String(mgr_.strings().Intern(name))};
    }
    if (f == "zero-or-one" || f == "exactly-one" || f == "one-or-more")
      return args[0];
    if (f == "distinct-values") {
      Seq out;
      for (const Item& raw : AtomizeSeq(args[0])) {
        Item canon = raw;
        if (raw.is_stringlike()) {
          double d = ToDouble(mgr_, raw);
          if (!std::isnan(d)) canon = Item::Double(d);
          else canon = Item::String(raw.str_id());
        } else if (raw.is_numeric()) {
          canon = Item::Double(raw.as_double());
        }
        bool dup = false;
        for (const Item& seen : out)
          if (OrderCompare(mgr_, seen, canon) == 0) {
            dup = true;
            break;
          }
        if (!dup) out.push_back(canon);
      }
      return out;
    }
    if (f == "position") return Seq{env.vars["#pos"]};
    if (f == "last") return Seq{env.vars["#last"]};

    auto it = funcs_.find(f);
    if (it == funcs_.end()) return Status(Err("unknown function " + f));
    if (++depth_ > 64) {
      --depth_;
      return Status(Err("recursion too deep"));
    }
    Env fenv;
    for (size_t i = 0; i < it->second->params.size(); ++i)
      fenv.vars[it->second->params[i]] = args[i];
    auto r = E(*it->second->body, fenv);
    --depth_;
    return r;
  }

  // ---- dispatcher -----------------------------------------------------------

  Result<Seq> E(const Expr& e, Env& env) {
    switch (e.kind) {
      case ExprKind::kIntLit: return Seq{Item::Int(e.ival)};
      case ExprKind::kDoubleLit: return Seq{Item::Double(e.dval)};
      case ExprKind::kStringLit:
        return Seq{Item::String(mgr_.strings().Intern(e.str))};
      case ExprKind::kEmptySeq: return Seq{};
      case ExprKind::kSequence: {
        Seq out;
        for (const xq::ExprPtr& c : e.children) {
          MXQ_ASSIGN_OR_RETURN(Seq v, E(*c, env));
          out.insert(out.end(), v.begin(), v.end());
        }
        return out;
      }
      case ExprKind::kVarRef: {
        auto it = env.vars.find(e.str);
        if (it == env.vars.end())
          return Status(Err("unbound variable $" + e.str));
        return it->second;
      }
      case ExprKind::kDoc: {
        MXQ_ASSIGN_OR_RETURN(DocumentContainer * d,
                             mgr_.GetDocument(e.str));
        return Seq{Item::Node(d->id(), 0)};
      }
      case ExprKind::kRoot:
        return Status(Err("'/' without context document"));
      case ExprKind::kPath: {
        Seq input;
        if (e.children[0]) {
          MXQ_ASSIGN_OR_RETURN(input, E(*e.children[0], env));
        } else {
          auto it = env.vars.find(".");
          if (it == env.vars.end())
            return Status(Err("path without context item"));
          input = it->second;
        }
        return EvalSteps(std::move(input), e.steps, env);
      }
      case ExprKind::kFLWOR: return EvalFLWOR(e, env);
      case ExprKind::kQuantified: return EvalQuantified(e, env);
      case ExprKind::kIf: {
        MXQ_ASSIGN_OR_RETURN(Seq c, E(*e.children[0], env));
        return E(Ebv(c) ? *e.children[1] : *e.children[2], env);
      }
      case ExprKind::kAnd: {
        MXQ_ASSIGN_OR_RETURN(Seq a, E(*e.children[0], env));
        if (!Ebv(a)) return Seq{Item::Bool(false)};
        MXQ_ASSIGN_OR_RETURN(Seq b, E(*e.children[1], env));
        return Seq{Item::Bool(Ebv(b))};
      }
      case ExprKind::kOr: {
        MXQ_ASSIGN_OR_RETURN(Seq a, E(*e.children[0], env));
        if (Ebv(a)) return Seq{Item::Bool(true)};
        MXQ_ASSIGN_OR_RETURN(Seq b, E(*e.children[1], env));
        return Seq{Item::Bool(Ebv(b))};
      }
      case ExprKind::kGeneralCmp:
      case ExprKind::kValueCmp: {
        MXQ_ASSIGN_OR_RETURN(Seq a, E(*e.children[0], env));
        MXQ_ASSIGN_OR_RETURN(Seq b, E(*e.children[1], env));
        return Seq{Item::Bool(ExistentialCmp(a, e.cmp, b))};
      }
      case ExprKind::kNodeBefore:
      case ExprKind::kNodeAfter:
      case ExprKind::kNodeIs: {
        MXQ_ASSIGN_OR_RETURN(Seq a, E(*e.children[0], env));
        MXQ_ASSIGN_OR_RETURN(Seq b, E(*e.children[1], env));
        if (a.empty() || b.empty()) return Seq{};
        const Item& x = a[0];
        const Item& y = b[0];
        if (!x.is_any_node() || !y.is_any_node())
          return Seq{Item::Bool(false)};
        bool r = e.kind == ExprKind::kNodeBefore   ? x.i < y.i
                 : e.kind == ExprKind::kNodeAfter ? x.i > y.i
                                                  : (x.i == y.i &&
                                                     x.kind == y.kind);
        return Seq{Item::Bool(r)};
      }
      case ExprKind::kArith: {
        MXQ_ASSIGN_OR_RETURN(Seq a, E(*e.children[0], env));
        MXQ_ASSIGN_OR_RETURN(Seq b, E(*e.children[1], env));
        if (a.empty() || b.empty()) return Seq{};
        Item r = Arith(mgr_, a[0], e.arith, b[0]);
        if (r.kind == ItemKind::kEmpty) return Seq{};
        return Seq{r};
      }
      case ExprKind::kUnaryMinus: {
        MXQ_ASSIGN_OR_RETURN(Seq a, E(*e.children[0], env));
        if (a.empty()) return Seq{};
        Item v = Atomize(mgr_, a[0]);
        if (v.kind == ItemKind::kInt) return Seq{Item::Int(-v.i)};
        double d = ToDouble(mgr_, v);
        if (std::isnan(d)) return Seq{};
        return Seq{Item::Double(-d)};
      }
      case ExprKind::kCall: return EvalCall(e, env);
      case ExprKind::kElemCtor: return EvalCtor(e, env);
      default:
        return Status(Err("unsupported expression"));
    }
  }

  DocumentManager& mgr_;
  DocumentContainer* tr_;
  std::map<std::string, const FunctionDecl*> funcs_;
  int depth_ = 0;
};

}  // namespace

Result<std::vector<Item>> NaiveInterpreter::Eval(const std::string& query) {
  MXQ_ASSIGN_OR_RETURN(xq::Query q, xq::ParseQuery(query));
  if (!transient_) transient_ = mgr_->CreateContainer("");
  transient_->Clear();
  Evaluator ev(mgr_, transient_);
  return ev.Run(q);
}

Result<std::string> NaiveInterpreter::Run(const std::string& query) {
  MXQ_ASSIGN_OR_RETURN(std::vector<Item> items, Eval(query));
  return SerializeSequence(*mgr_, items);
}

}  // namespace baseline
}  // namespace mxq
