// Naive tree-walking XQuery interpreter — the comparison baseline.
//
// Implements the same dialect as the relational engine, the way first-
// generation XQuery processors did: axes evaluated per context node with the
// quadratic naive axis oracle, joins as nested loops over binding tuples,
// one evaluation of every subexpression per binding. This reproduces the
// performance silhouette of the paper's comparison systems (Galax, eXist):
// fine on small documents, DNF-style blowup on the XMark join queries — and
// doubles as a differential-testing oracle for the relational engine.

#ifndef MXQ_BASELINE_INTERPRETER_H_
#define MXQ_BASELINE_INTERPRETER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/document.h"

namespace mxq {
namespace baseline {

class NaiveInterpreter {
 public:
  explicit NaiveInterpreter(DocumentManager* mgr) : mgr_(mgr) {}

  /// Parses and evaluates `query`; returns the result item sequence.
  Result<std::vector<Item>> Eval(const std::string& query);

  /// Convenience: evaluate and serialize.
  Result<std::string> Run(const std::string& query);

 private:
  DocumentManager* mgr_;
  DocumentContainer* transient_ = nullptr;
};

}  // namespace baseline
}  // namespace mxq

#endif  // MXQ_BASELINE_INTERPRETER_H_
