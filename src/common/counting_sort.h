// Counting (bucket) sorts for dense integer domains.
//
// Loop-lifting sorts by `iter` (dense 1..n) and by `pre` (preorder ranks
// bounded by the document size) constantly; a comparator-driven
// std::stable_sort pays O(n log n) branchy comparisons where a counting
// pass does O(n + range) sequential memory traffic. These helpers run the
// counting pass when the key range is close enough to n to be profitable
// and report whether they did, so callers can fall back to a comparison
// sort.

#ifndef MXQ_COMMON_COUNTING_SORT_H_
#define MXQ_COMMON_COUNTING_SORT_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/thread_pool.h"

namespace mxq {

/// Profitability bound: counting is used only when the input is big enough
/// for the comparison sort to hurt (kMinRows) and the histogram is no
/// larger than the payload itself (range <= n + 64) — a histogram that
/// outgrows the data thrashes the cache with random increments, which is
/// exactly what this kernel exists to avoid. Dense iter/pos/rid domains
/// satisfy range <= n by construction.
inline constexpr size_t kCountingMinRows = 128;

/// Scans keys for min/range, bailing out the moment the running range
/// exceeds the profitability bound — wide-domain columns (doc pre ranks,
/// string ids) reject within a handful of elements instead of paying a
/// full O(n) scan before the comparison-sort fallback.
inline bool ScanRangeProfitable(const std::vector<int64_t>& keys, int64_t* mn,
                                int64_t* range) {
  const size_t n = keys.size();
  if (n < kCountingMinRows) return false;
  const uint64_t bound = static_cast<uint64_t>(n) + 64;
  int64_t lo = keys[0], hi = keys[0];
  for (size_t i = 1; i < n; ++i) {
    int64_t v = keys[i];
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    // Unsigned subtraction: keys spanning more than INT64_MAX must reject,
    // not overflow (signed hi - lo would be UB there).
    if (static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) >= bound)
      return false;
  }
  *mn = lo;
  *range = hi - lo + 1;
  return true;
}

/// Chunk count for a parallel counting pass: PlanChunks bounded so the
/// per-chunk histograms total at most ~2x the payload (chunks * buckets <=
/// 2n). The profitability rule admits ranges up to n + 64; without this
/// bound a wide-range pass at high thread counts would multiply both the
/// histogram memory and the serial prefix-sum cost by the chunk count —
/// the parallel pass must never cost more than the serial one it splits.
inline int CountingChunks(int threads, size_t n, size_t buckets) {
  int chunks = PlanChunks(threads, n);
  while (chunks > 1 && static_cast<size_t>(chunks) * buckets > 2 * n)
    --chunks;
  return chunks;
}

/// One stable counting pass: reorders `perm` so keys[perm[i]] is
/// non-decreasing, preserving the current perm order among equal keys.
/// `mn`/`range` must bound the keys. Keys already non-decreasing in perm
/// order make the pass a detected no-op (a stable pass over sorted keys is
/// the identity) — engine intermediates are very often nearly ordered, and
/// an adaptive early-out beats re-scattering them.
///
/// With threads > 1 the pass runs partition-parallel: each chunk of the
/// permutation histograms independently, a column-major prefix sum turns
/// the per-chunk histograms into stable scatter offsets (all of chunk 0's
/// occurrences of a key precede chunk 1's, exactly like the serial pass),
/// and the scatter writes disjoint positions. The result is bit-identical
/// to the serial pass at any thread count.
inline void CountingPassPerm(const std::vector<int64_t>& keys, int64_t mn,
                             int64_t range, std::vector<size_t>* perm,
                             int threads = 1) {
  const size_t n = perm->size();
  bool sorted = true;
  for (size_t i = 1; i < n; ++i)
    if (keys[(*perm)[i - 1]] > keys[(*perm)[i]]) {
      sorted = false;
      break;
    }
  if (sorted) return;
  const size_t buckets = static_cast<size_t>(range) + 1;
  const int chunks = CountingChunks(threads, n, buckets);
  std::vector<uint32_t> count(static_cast<size_t>(chunks) * buckets, 0);
  ParallelChunks(chunks, n, [&](int c, size_t b, size_t e) {
    uint32_t* h = count.data() + static_cast<size_t>(c) * buckets;
    for (size_t i = b; i < e; ++i) ++h[keys[(*perm)[i]] - mn];
  });
  uint32_t sum = 0;
  for (size_t v = 0; v < buckets; ++v)
    for (int c = 0; c < chunks; ++c) {
      uint32_t& slot = count[static_cast<size_t>(c) * buckets + v];
      uint32_t x = slot;
      slot = sum;
      sum += x;
    }
  std::vector<size_t> out(n);
  ParallelChunks(chunks, n, [&](int c, size_t b, size_t e) {
    uint32_t* h = count.data() + static_cast<size_t>(c) * buckets;
    for (size_t i = b; i < e; ++i)
      out[h[keys[(*perm)[i]] - mn]++] = (*perm)[i];
  });
  *perm = std::move(out);
}

/// Lexicographic stable sort of (first, second) pairs: two counting passes
/// (LSD radix over the two components) when both ranges are dense enough,
/// falling back to std::sort. Always leaves *v sorted; returns true when the
/// counting path ran. `threads` parallelizes each pass (per-chunk histogram
/// + stable partitioned scatter, same construction as CountingPassPerm);
/// output is bit-identical at any thread count.
inline bool SortPairsDense(std::vector<std::pair<int64_t, int64_t>>* v,
                           int threads = 1) {
  const size_t n = v->size();
  if (n < 64) {  // tiny inputs: the comparison sort is already cache-resident
    std::sort(v->begin(), v->end());
    return false;
  }
  const uint64_t bound = static_cast<uint64_t>(n) + 64;
  int64_t mn1 = (*v)[0].first, mx1 = mn1;
  int64_t mn2 = (*v)[0].second, mx2 = mn2;
  bool profitable = n >= kCountingMinRows;
  for (size_t i = 1; profitable && i < n; ++i) {
    const auto& [a, b] = (*v)[i];
    mn1 = std::min(mn1, a);
    mx1 = std::max(mx1, a);
    mn2 = std::min(mn2, b);
    mx2 = std::max(mx2, b);
    // Early-out: either component's range outgrowing the input rejects the
    // counting path without finishing the scan. Unsigned subtraction: spans
    // beyond INT64_MAX must reject, not overflow.
    profitable =
        static_cast<uint64_t>(mx1) - static_cast<uint64_t>(mn1) < bound &&
        static_cast<uint64_t>(mx2) - static_cast<uint64_t>(mn2) < bound;
  }
  if (!profitable) {
    std::sort(v->begin(), v->end());
    return false;
  }
  const int64_t r1 = mx1 - mn1 + 1, r2 = mx2 - mn2 + 1;
  std::vector<std::pair<int64_t, int64_t>> tmp(n);
  std::vector<uint32_t> count;

  auto pass = [&](const std::vector<std::pair<int64_t, int64_t>>& in,
                  std::vector<std::pair<int64_t, int64_t>>& out, int64_t mn,
                  int64_t range, bool by_second) {
    const size_t buckets = static_cast<size_t>(range) + 1;
    const int chunks = CountingChunks(threads, n, buckets);
    count.assign(static_cast<size_t>(chunks) * buckets, 0);
    ParallelChunks(chunks, n, [&](int c, size_t b, size_t e) {
      uint32_t* h = count.data() + static_cast<size_t>(c) * buckets;
      for (size_t i = b; i < e; ++i)
        ++h[(by_second ? in[i].second : in[i].first) - mn];
    });
    uint32_t sum = 0;
    for (size_t v2 = 0; v2 < buckets; ++v2)
      for (int c = 0; c < chunks; ++c) {
        uint32_t& slot = count[static_cast<size_t>(c) * buckets + v2];
        uint32_t x = slot;
        slot = sum;
        sum += x;
      }
    ParallelChunks(chunks, n, [&](int c, size_t b, size_t e) {
      uint32_t* h = count.data() + static_cast<size_t>(c) * buckets;
      for (size_t i = b; i < e; ++i)
        out[h[(by_second ? in[i].second : in[i].first) - mn]++] = in[i];
    });
  };

  pass(*v, tmp, mn2, r2, /*by_second=*/true);   // minor key first (stable LSD)
  pass(tmp, *v, mn1, r1, /*by_second=*/false);  // then major key
  return true;
}

}  // namespace mxq

#endif  // MXQ_COMMON_COUNTING_SORT_H_
