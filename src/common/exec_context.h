// Per-execution resource governance: cooperative cancellation, deadlines,
// and memory accounting (docs/robustness.md).
//
// An ExecContext is owned by one Execute/ExecuteCursor call and threaded
// through the evaluator and kernels as a non-owning pointer on
// alg::ExecFlags. Kernels poll StopRequested() at morsel granularity
// (every few thousand rows) and bail out with truncated results; the
// evaluator then surfaces the typed Status from Check(). All state is
// atomic, so worker threads inside a parallel kernel may poll the same
// context without synchronization.
//
// Cancellation fans in from three sources:
//   - ExecContext::Cancel()            one execution (QueryResult/cursor)
//   - CancelGroup::CancelAll()         every execution watching the group
//     (one group per Session, one per engine). Group cancellation is
//     epoch-based: the context snapshots each group's epoch at start and
//     treats any later bump as a cancel, so a group cancel never leaks
//     into executions started afterwards.
//   - deadline expiry (steady_clock)

#ifndef MXQ_COMMON_EXEC_CONTEXT_H_
#define MXQ_COMMON_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/status.h"

namespace mxq {

/// \brief Bytes-live / bytes-peak accounting for one execution.
///
/// Charging is soft: Charge() never fails inline (kernels keep their
/// unconditional allocation pattern); exceeding the budget sets a sticky
/// flag that the next cancellation checkpoint converts into
/// kResourceExhausted. Overshoot is bounded by one allocation plus one
/// checkpoint interval.
class MemAccount {
 public:
  void set_budget(int64_t bytes) { budget_ = bytes; }
  int64_t budget() const { return budget_; }

  void Charge(int64_t bytes) {
    const int64_t live = live_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    int64_t peak = peak_.load(std::memory_order_relaxed);
    while (live > peak &&
           !peak_.compare_exchange_weak(peak, live, std::memory_order_relaxed)) {
    }
    if (budget_ > 0 && live > budget_) over_.store(true, std::memory_order_relaxed);
  }
  void Release(int64_t bytes) { live_.fetch_sub(bytes, std::memory_order_relaxed); }

  /// Fault hook: behave as if an allocation failed / the budget tripped.
  void ForceOver() { over_.store(true, std::memory_order_relaxed); }

  bool over_budget() const { return over_.load(std::memory_order_relaxed); }
  int64_t live_bytes() const { return live_.load(std::memory_order_relaxed); }
  int64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> live_{0};
  std::atomic<int64_t> peak_{0};
  std::atomic<bool> over_{false};
  int64_t budget_ = 0;  // 0 = unlimited; set before execution starts
};

/// \brief Broadcast cancellation: Session::CancelAll / XQueryEngine::CancelAll.
class CancelGroup {
 public:
  void CancelAll() { epoch_.fetch_add(1, std::memory_order_release); }
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

 private:
  std::atomic<uint64_t> epoch_{0};
};

class ExecContext {
 public:
  using Clock = std::chrono::steady_clock;

  ExecContext() : mem_(std::make_shared<MemAccount>()) {}

  // -- configuration (single-threaded, before execution starts) --
  void set_deadline(Clock::time_point tp) { deadline_ = tp; has_deadline_ = true; }
  void set_memory_budget(int64_t bytes) { mem_->set_budget(bytes); }
  /// Watch a group: a CancelAll() on it after this call cancels us.
  void Watch(const CancelGroup* g) {
    if (g == nullptr || n_groups_ >= kMaxGroups) return;
    groups_[n_groups_] = g;
    epochs_[n_groups_] = g->epoch();
    ++n_groups_;
  }

  // -- control plane (any thread) --
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  // -- data plane (polled by kernels at morsel granularity) --
  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }
  const std::shared_ptr<MemAccount>& mem() const { return mem_; }

  bool StopRequested() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (mem_->over_budget()) return true;
    for (int i = 0; i < n_groups_; ++i)
      if (groups_[i]->epoch() != epochs_[i]) return true;
    // Kernel-loop polls are the hottest call site: check the clock rarely
    // here (cancel/budget above stay every-poll responsive); the per-
    // operator Check() reads it 8x more often.
    return DeadlinePassed(63);
  }

  /// Typed status for the stop reason; OK while nothing has fired.
  /// Precedence: explicit cancel > budget > deadline, so a query cancelled
  /// moments before its deadline reports kCancelled deterministically.
  Status Check() const {
    if (cancelled_.load(std::memory_order_relaxed)) {
      return Status::Cancelled("execution cancelled");
    }
    for (int i = 0; i < n_groups_; ++i) {
      if (groups_[i]->epoch() != epochs_[i]) {
        return Status::Cancelled("execution cancelled (group)");
      }
    }
    if (mem_->over_budget()) {
      return Status::ResourceExhausted(
          "memory budget exceeded (budget " + std::to_string(mem_->budget()) +
          " bytes, peak " + std::to_string(mem_->peak_bytes()) + " bytes)");
    }
    if (DeadlinePassed(7)) {
      return Status::DeadlineExceeded("deadline exceeded during execution");
    }
    return Status::OK();
  }

 private:
  static constexpr int kMaxGroups = 2;  // session group + engine group

  /// Deadline test with throttled clock reads: a steady_clock read is a
  /// ~25ns vDSO call, and checkpoints fire per operator *and* per morsel —
  /// reading the clock on every poll is what pushes governed overhead past
  /// its budget on short queries. Expiry is sticky, and one in every
  /// `mask`+1 polls reads the clock, so detection lags by at most `mask`
  /// checkpoints at that call site.
  bool DeadlinePassed(uint32_t mask) const {
    if (!has_deadline_) return false;
    if (deadline_hit_.load(std::memory_order_relaxed)) return true;
    if ((polls_.fetch_add(1, std::memory_order_relaxed) & mask) != 0)
      return false;
    if (Clock::now() >= deadline_) {
      deadline_hit_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  std::atomic<bool> cancelled_{false};
  std::shared_ptr<MemAccount> mem_;
  const CancelGroup* groups_[kMaxGroups] = {nullptr, nullptr};
  uint64_t epochs_[kMaxGroups] = {0, 0};
  int n_groups_ = 0;
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  mutable std::atomic<bool> deadline_hit_{false};
  mutable std::atomic<uint32_t> polls_{0};
};

/// Thread-local current context, installed by the evaluator for the span of
/// one execution. Allocation seams (storage/column.h) and the fault harness
/// (common/fault.h) reach it without plumbing a parameter through every
/// constructor. ThreadPool workers install the submitting thread's context
/// for the span of each job (common/thread_pool.h), so columns built inside
/// parallel regions charge the owning execution's MemAccount too.
inline ExecContext*& CurrentExecContextSlot() {
  thread_local ExecContext* ctx = nullptr;
  return ctx;
}
inline ExecContext* CurrentExecContext() { return CurrentExecContextSlot(); }

class ScopedExecContext {
 public:
  explicit ScopedExecContext(ExecContext* ctx)
      : prev_(CurrentExecContextSlot()) {
    CurrentExecContextSlot() = ctx;
  }
  ~ScopedExecContext() { CurrentExecContextSlot() = prev_; }
  ScopedExecContext(const ScopedExecContext&) = delete;
  ScopedExecContext& operator=(const ScopedExecContext&) = delete;

 private:
  ExecContext* prev_;
};

}  // namespace mxq

#endif  // MXQ_COMMON_EXEC_CONTEXT_H_
