#include "common/fault.h"

#include <chrono>
#include <thread>

#include "common/exec_context.h"
#include "common/thread_annotations.h"

namespace mxq {
namespace fault {

namespace {

struct State {
  Mutex mu;
  std::string point MXQ_GUARDED_BY(mu);
  Kind kind MXQ_GUARDED_BY(mu) = Kind::kNone;
  Options opts MXQ_GUARDED_BY(mu);
  int64_t hits MXQ_GUARDED_BY(mu) = 0;   // times the armed point was reached
  int64_t injections MXQ_GUARDED_BY(mu) = 0;  // times it actually fired
};

State& GetState() {
  static State* s = new State();  // leaked: fault state outlives all tests
  return *s;
}

}  // namespace

void Arm(const std::string& point, Kind kind, Options opts) {
  State& s = GetState();
  MutexLock lk(&s.mu);
  s.point = point;
  s.kind = kind;
  s.opts = opts;
  s.hits = 0;
  s.injections = 0;
  ArmedFlag().store(kind != Kind::kNone, std::memory_order_release);
}

void Disarm() {
  State& s = GetState();
  MutexLock lk(&s.mu);
  s.kind = Kind::kNone;
  s.point.clear();
  ArmedFlag().store(false, std::memory_order_release);
}

int64_t InjectionCount() {
  State& s = GetState();
  MutexLock lk(&s.mu);
  return s.injections;
}

void HitSlow(const char* point) {
  State& s = GetState();
  Kind kind = Kind::kNone;
  int delay_us = 0;
  {
    MutexLock lk(&s.mu);
    if (s.kind == Kind::kNone || s.point != point) return;
    ++s.hits;
    const bool fire = s.opts.every ? s.hits >= s.opts.nth : s.hits == s.opts.nth;
    if (!fire) return;
    ++s.injections;
    kind = s.kind;
    delay_us = s.opts.delay_us;
  }
  switch (kind) {
    case Kind::kCancel:
      if (ExecContext* ctx = CurrentExecContext()) ctx->Cancel();
      break;
    case Kind::kMemExhaust:
      if (ExecContext* ctx = CurrentExecContext()) ctx->mem()->ForceOver();
      break;
    case Kind::kDelay:
      // Sleep outside the lock so concurrent executions hitting other
      // points are not serialized behind the injected latency.
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
      break;
    case Kind::kNone:
      break;
  }
}

}  // namespace fault
}  // namespace mxq
