// Fault-injection harness (docs/robustness.md): named fault points at
// kernel boundaries let tests inject allocation failures, forced
// cancellations, and delays without touching production control flow.
//
// A fault point is one line at a kernel boundary:
//
//   MXQ_FAULT_POINT("join.build");
//
// When nothing is armed this is a single relaxed atomic load — cheap
// enough to keep compiled into release builds (the governance overhead
// budget is ≤3%, and points sit at operator/chunk granularity, not per
// row). Tests arm one fault at a time:
//
//   fault::Arm("join.build", fault::Kind::kCancel);          // 1st hit
//   fault::Arm("eval.op", fault::Kind::kDelay, {.every = true,
//                                               .delay_us = 2000});
//   ... run query, expect typed Status ...
//   fault::Disarm();
//
// Injection acts on the thread-local CurrentExecContext(): kCancel flips
// its cancel flag, kMemExhaust trips its memory account (as if an
// allocation had blown the budget). ThreadPool workers inherit the
// submitting execution's context for the span of a job, so points inside
// parallel regions inject into the owning execution too. Points reached
// outside any execution still count hits but inject nothing except delays.

#ifndef MXQ_COMMON_FAULT_H_
#define MXQ_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace mxq {
namespace fault {

enum class Kind : uint8_t {
  kNone = 0,
  kCancel,      // ExecContext::Cancel() on the current execution
  kMemExhaust,  // MemAccount::ForceOver() — simulated allocation failure
  kDelay,       // sleep delay_us (latency / race-window widening)
};

struct Options {
  int nth = 1;          // trigger on the nth hit of the point (1-based)
  bool every = false;   // trigger on every hit from nth onwards
  int delay_us = 1000;  // kDelay only
};

inline std::atomic<bool>& ArmedFlag() {
  static std::atomic<bool> armed{false};
  return armed;
}

/// True iff some fault is armed; the fast path read by every point.
inline bool Enabled() { return ArmedFlag().load(std::memory_order_relaxed); }

/// Arm a fault at `point`. Replaces any previously armed fault (the
/// harness intentionally supports one fault at a time: each injected
/// failure should be attributable). Resets the hit counter.
void Arm(const std::string& point, Kind kind, Options opts = {});
void Disarm();

/// Total number of times the armed point fired an injection (not just was
/// reached). Tests use this to tell "fault hit" from "point not on this
/// query's path".
int64_t InjectionCount();

/// Slow path: called only when armed.
void HitSlow(const char* point);

}  // namespace fault
}  // namespace mxq

#define MXQ_FAULT_POINT(name)                          \
  do {                                                 \
    if (::mxq::fault::Enabled()) ::mxq::fault::HitSlow(name); \
  } while (0)

#endif  // MXQ_COMMON_FAULT_H_
