#include "common/item.h"

namespace mxq {

const char* ItemKindName(ItemKind kind) {
  switch (kind) {
    case ItemKind::kEmpty: return "empty";
    case ItemKind::kInt: return "int";
    case ItemKind::kDouble: return "double";
    case ItemKind::kBool: return "bool";
    case ItemKind::kString: return "string";
    case ItemKind::kUntyped: return "untyped";
    case ItemKind::kNode: return "node";
    case ItemKind::kAttr: return "attr";
  }
  return "unknown";
}

}  // namespace mxq
