// The polymorphic XQuery `item` value.
//
// The relational encoding of XQuery sequences uses a polymorphic `item`
// column (paper §2.1). Every item fits a fixed-width 16-byte struct: a kind
// tag plus a 64-bit payload. Strings are StringPool ids; nodes are packed
// (container, pre) node surrogates; attribute nodes are packed
// (container, attribute-row) surrogates.

#ifndef MXQ_COMMON_ITEM_H_
#define MXQ_COMMON_ITEM_H_

#include <cstdint>
#include <string>

namespace mxq {

enum class ItemKind : uint8_t {
  kEmpty = 0,  // used only as a padding/placeholder value, never in results
  kInt,        // xs:integer
  kDouble,     // xs:double / xs:decimal
  kBool,       // xs:boolean
  kString,     // xs:string       (payload = StrId)
  kUntyped,    // xs:untypedAtomic (payload = StrId) — node atomization result
  kNode,       // element/text/comment/PI/document node surrogate
  kAttr,       // attribute node surrogate
};

/// \brief Node surrogate: identifies a tree node by container and preorder
/// rank. Document order across fragments is (container, pre) order — the
/// paper's [frag, pre] sort (§5.1, footnote 4).
struct NodeRef {
  int32_t container;  // DocumentContainer id
  int64_t pre;        // preorder rank within the container

  friend bool operator==(const NodeRef&, const NodeRef&) = default;
  friend auto operator<=>(const NodeRef&, const NodeRef&) = default;
};

/// \brief Attribute surrogate: row into a container's attribute table.
struct AttrRef {
  int32_t container;
  int64_t row;

  friend bool operator==(const AttrRef&, const AttrRef&) = default;
  friend auto operator<=>(const AttrRef&, const AttrRef&) = default;
};

/// \brief A single XQuery item: tagged 64-bit payload.
struct Item {
  ItemKind kind = ItemKind::kEmpty;
  union {
    int64_t i;   // kInt, kString/kUntyped (StrId), packed node/attr payload
    double d;    // kDouble
    bool b;      // kBool
  };

  Item() : i(0) {}

  static Item Int(int64_t v) {
    Item it;
    it.kind = ItemKind::kInt;
    it.i = v;
    return it;
  }
  static Item Double(double v) {
    Item it;
    it.kind = ItemKind::kDouble;
    it.d = v;
    return it;
  }
  static Item Bool(bool v) {
    Item it;
    it.kind = ItemKind::kBool;
    it.b = v;
    return it;
  }
  static Item String(int32_t str_id) {
    Item it;
    it.kind = ItemKind::kString;
    it.i = str_id;
    return it;
  }
  static Item Untyped(int32_t str_id) {
    Item it;
    it.kind = ItemKind::kUntyped;
    it.i = str_id;
    return it;
  }
  static Item Node(NodeRef n) {
    Item it;
    it.kind = ItemKind::kNode;
    it.i = Pack(n.container, n.pre);
    return it;
  }
  static Item Node(int32_t container, int64_t pre) {
    return Node(NodeRef{container, pre});
  }
  static Item Attr(AttrRef a) {
    Item it;
    it.kind = ItemKind::kAttr;
    it.i = Pack(a.container, a.row);
    return it;
  }
  static Item Attr(int32_t container, int64_t row) {
    return Attr(AttrRef{container, row});
  }

  bool is_node() const { return kind == ItemKind::kNode; }
  bool is_attr() const { return kind == ItemKind::kAttr; }
  bool is_any_node() const { return is_node() || is_attr(); }
  bool is_numeric() const {
    return kind == ItemKind::kInt || kind == ItemKind::kDouble;
  }
  bool is_stringlike() const {
    return kind == ItemKind::kString || kind == ItemKind::kUntyped;
  }

  NodeRef node() const { return NodeRef{UnpackContainer(i), UnpackPre(i)}; }
  AttrRef attr() const { return AttrRef{UnpackContainer(i), UnpackPre(i)}; }
  int32_t str_id() const { return static_cast<int32_t>(i); }
  double as_double() const { return kind == ItemKind::kDouble ? d : static_cast<double>(i); }

  /// Total order on packed node payloads == document order within and across
  /// containers (container major, pre minor).
  int64_t node_order_key() const { return i; }

  friend bool operator==(const Item& a, const Item& b) {
    if (a.kind != b.kind) return false;
    return a.i == b.i;  // covers all payload variants bit-wise
  }

  // ---- packing ------------------------------------------------------------
  // 16 bits container | 48 bits pre/row. Packed value preserves
  // (container, pre) lexicographic order for non-negative fields.
  static constexpr int kPreBits = 48;
  static constexpr int64_t kPreMask = (int64_t{1} << kPreBits) - 1;

  static int64_t Pack(int32_t container, int64_t pre) {
    return (static_cast<int64_t>(container) << kPreBits) | (pre & kPreMask);
  }
  static int32_t UnpackContainer(int64_t packed) {
    return static_cast<int32_t>(packed >> kPreBits);
  }
  static int64_t UnpackPre(int64_t packed) { return packed & kPreMask; }
};

static_assert(sizeof(Item) == 16, "Item must stay fixed-width");

const char* ItemKindName(ItemKind kind);

}  // namespace mxq

#endif  // MXQ_COMMON_ITEM_H_
