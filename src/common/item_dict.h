// Dictionary compaction of atomized item values to 8-byte codes.
//
// The polymorphic `Item` is 16 bytes (kind tag + 64-bit payload), so item
// columns move twice the bytes of i64 columns through every join, union and
// gather — and worse, the value-join probe loop has to call CompareItems per
// candidate, which atomizes defensively (interning into the StringPool) and
// re-parses numeric-looking strings, forcing item-valued probes to run
// serially. An ItemDict fixes both: every *atomized* value is encoded once
// into a tagged 64-bit code, and the per-code metadata needed by hash joins
// (numeric image, CompareItems-compatible hash, effective boolean value) is
// precomputed at encode time. Code-level hash and equality are pure array
// reads — no locks, no interning, no string parsing — so dict-coded probes
// fan out across the thread pool exactly like the i64 join path.
//
// Code space layout (top byte = tag):
//
//   tag 0 (kEmptyCode)  the empty item; code 0 exactly
//   tag 1 bool          payload 0/1
//   tag 2 inline int    payload = value + 2^55 (covers |v| < 2^55); the
//                       biased payload makes code order == value order
//                       within the integer sub-range (order-preserving)
//   tag 3 dict entry    payload = dense index into the entry table
//                       (doubles, strings/untyped, out-of-range ints);
//                       entry codes are *arrival*-ordered, NOT
//                       collation-ordered — sorts must decode
//
// Distinct codes may still compare equal under XQuery's coercing equality
// (int 20, double 20.0 and untyped "20" keep distinct codes so Decode stays
// faithful), which is why joins pair HashCode (bucket) with EqualCodes
// (verify) exactly like the legacy HashItem/CompareItems pair:
//
//   EqualCodes(a, b) == CompareItems(Decode(a), =, Decode(b))
//   HashCode(c)      == HashItem(Decode(c))
//
// Both identities are pinned by tests; the second matters because a join's
// match set is "same bucket AND verified equal" — a different hash would
// change which pairs ever get verified, breaking bit-identity with the
// dict-off paths.
//
// Thread safety: like the StringPool, the dictionary is append-only and
// internally synchronized — Encode takes a shared lock on the hit path and
// an exclusive lock to insert. Decode/HashCode/EqualCodes never lock: entry
// storage is chunked (stable addresses) and a code handed out by Encode
// happens-after its entry was fully written, so readers that obtained the
// code through any synchronized channel (a column built by this execution,
// a thread-pool hand-off) read settled memory.

#ifndef MXQ_COMMON_ITEM_DICT_H_
#define MXQ_COMMON_ITEM_DICT_H_

#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/item.h"
#include "common/string_pool.h"
#include "common/thread_annotations.h"

namespace mxq {

// ---------------------------------------------------------------------------
// Canonical value hashing, shared with algebra/item_ops.cc's HashItem. The
// dictionary's per-code hashes must match HashItem bit-for-bit (see above),
// so both implementations are built from these helpers.
// ---------------------------------------------------------------------------

/// Murmur3-style 64-bit finalizer used by HashItem.
inline uint64_t MixValueHash(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Hash of a (non-NaN) numeric image; -0.0 normalizes to +0.0 so values
/// that compare equal hash equal.
inline uint64_t HashNumericImage(double d) {
  if (d == 0.0) d = 0.0;
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return MixValueHash(bits);
}

/// FNV-1a over the characters, finalized — the non-numeric string hash.
inline uint64_t HashStringChars(std::string_view s) {
  uint64_t h = 1469598103934665603ULL;
  for (char ch : s) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ULL;
  }
  return MixValueHash(h);
}

/// Parses a whole (whitespace-trimmed) string as double; NaN on any junk.
/// The one numeric-cast rule of the engine (ToDouble, LooksNumeric, and the
/// dictionary's cached numeric images all route through here).
inline double ParseDoubleStrict(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\n\r");
  if (b == std::string::npos) return std::nan("");
  size_t e = s.find_last_not_of(" \t\n\r");
  char* end = nullptr;
  double v = std::strtod(s.c_str() + b, &end);
  if (end != s.c_str() + e + 1) return std::nan("");
  return v;
}

/// \brief Append-only dictionary of atomized item values <-> 8-byte codes.
class ItemDict {
 public:
  using Code = int64_t;

  static constexpr Code kEmptyCode = 0;
  /// Returned by Encode when the entry table is exhausted (tag 0xFF is
  /// never produced by a successful encode). Callers must not store it in
  /// a column: they fall back to the uncoded item representation instead
  /// (see AppendAtomize / DictJoinCodes in algebra/ops.cc).
  static constexpr Code kInvalidCode = -1;

  ItemDict() : chunks_(kMaxChunks) {}
  ItemDict(const ItemDict&) = delete;
  ItemDict& operator=(const ItemDict&) = delete;
  ~ItemDict() {
    const uint32_t n = count_.load(std::memory_order_relaxed);
    for (uint32_t c = 0; c <= (n ? (n - 1) >> kChunkBits : 0); ++c)
      delete[] chunks_[c].load(std::memory_order_relaxed);
  }

  /// True when `atom` has a code (everything but node/attr surrogates —
  /// callers atomize first, which is also what makes Encode's equality
  /// semantics line up with CompareItems' defensive atomization).
  static bool Encodable(const Item& atom) { return !atom.is_any_node(); }

  /// Encodes an atomized item. Thread-safe; O(1) lock-free for the inline
  /// classes (empty/bool/small int), shared-lock lookup + rare exclusive
  /// insert for dictionary entries.
  Code Encode(const StringPool& pool, const Item& atom) {
    assert(Encodable(atom));
    switch (atom.kind) {
      case ItemKind::kEmpty:
        return kEmptyCode;
      case ItemKind::kBool:
        return MakeCode(kTagBool, atom.b ? 1 : 0);
      case ItemKind::kInt:
        if (atom.i >= -kIntBias && atom.i < kIntBias)
          return MakeCode(kTagInt, static_cast<uint64_t>(atom.i + kIntBias));
        return Intern(pool, atom);
      default:
        return Intern(pool, atom);
    }
  }

  /// Decodes a code back to the exact item that produced it (original kind
  /// and payload preserved — serialization of a decoded column is
  /// bit-identical to the uncoded column's).
  Item Decode(Code c) const {
    assert(c != kInvalidCode);
    switch (Tag(c)) {
      case kTagEmpty: return Item();
      case kTagBool: return Item::Bool(Payload(c) != 0);
      case kTagInt:
        return Item::Int(static_cast<int64_t>(Payload(c)) - kIntBias);
      default: return EntryOf(c).value;
    }
  }

  /// == HashItem(Decode(c)); lock-free.
  uint64_t HashCode(Code c) const {
    switch (Tag(c)) {
      case kTagEmpty: return MixValueHash(0);
      case kTagBool: return MixValueHash(Payload(c) ? 3 : 5);
      case kTagInt:
        return HashNumericImage(
            static_cast<double>(static_cast<int64_t>(Payload(c)) - kIntBias));
      default: return EntryOf(c).hash;
    }
  }

  /// == CompareItems(Decode(a), =, Decode(b)) for atomized values;
  /// lock-free, never touches the StringPool.
  bool EqualCodes(Code a, Code b) const {
    // The empty sequence compares false against everything, itself included.
    if (a == kEmptyCode || b == kEmptyCode) return false;
    // Numeric coercion: any numeric-*kind* operand forces numeric
    // comparison over the cached numeric images (bools become 0/1,
    // strings their parsed value or NaN — NaN never compares equal).
    if (IsNumericKind(a) || IsNumericKind(b)) {
      const double x = NumImage(a), y = NumImage(b);
      return !std::isnan(x) && !std::isnan(y) && x == y;
    }
    // Bool coercion over effective boolean values.
    if (Tag(a) == kTagBool || Tag(b) == kTagBool) return Ebv(a) == Ebv(b);
    // Both string-class entries: interning makes id equality string
    // equality (kString and kUntyped with the same id are equal, which is
    // why the comparison is on str ids, not on the codes themselves).
    return EntryOf(a).value.str_id() == EntryOf(b).value.str_id();
  }

  /// Dictionary entries allocated so far (inline codes never allocate).
  size_t entries() const { return count_.load(std::memory_order_acquire); }

  /// True once any Encode has failed for lack of entry space. Sticky: the
  /// dictionary is append-only, so once full it stays full. Kernels use
  /// this as a cheap pre-check to skip doomed encode passes.
  bool exhausted() const { return exhausted_.load(std::memory_order_relaxed); }

  /// Shrinks the entry capacity so tests can overflow the dictionary
  /// without interning 67M values. Call before any entry-class encodes.
  void set_max_entries_for_test(size_t n) {
    max_entries_ = n < kMaxEntries ? static_cast<uint32_t>(n) : kMaxEntries;
  }

 private:
  // Tags in the top byte of the code.
  static constexpr uint64_t kTagShift = 56;
  static constexpr uint64_t kTagEmpty = 0;
  static constexpr uint64_t kTagBool = 1;
  static constexpr uint64_t kTagInt = 2;
  static constexpr uint64_t kTagEntry = 3;
  static constexpr uint64_t kPayloadMask = (uint64_t{1} << kTagShift) - 1;
  static constexpr int64_t kIntBias = int64_t{1} << 55;

  // Chunked entry storage: stable addresses, lock-free reads.
  static constexpr int kChunkBits = 12;  // 4096 entries per chunk
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;
  static constexpr size_t kMaxChunks = size_t{1} << 14;  // 67M entries
  static constexpr uint32_t kMaxEntries =
      static_cast<uint32_t>(kMaxChunks * kChunkSize);

  struct Entry {
    Item value;     // canonical atomic item (kind preserved)
    double num;     // numeric image (NaN when the value has none)
    uint64_t hash;  // == HashItem(value)
    bool ebv;       // effective boolean value
  };

  /// Interned-entry identity: the exact (kind, payload) pair — kString and
  /// kUntyped with the same id stay distinct codes (Decode faithfulness),
  /// EqualCodes reconciles them.
  struct EntryKey {
    uint8_t kind;
    int64_t payload;
    bool operator==(const EntryKey&) const = default;
  };
  struct EntryKeyHash {
    size_t operator()(const EntryKey& k) const noexcept {
      return static_cast<size_t>(MixValueHash(
          static_cast<uint64_t>(k.payload) ^ (uint64_t{k.kind} << 56)));
    }
  };

  static Code MakeCode(uint64_t tag, uint64_t payload) {
    return static_cast<Code>((tag << kTagShift) | payload);
  }
  static uint64_t Tag(Code c) { return static_cast<uint64_t>(c) >> kTagShift; }
  static uint64_t Payload(Code c) {
    return static_cast<uint64_t>(c) & kPayloadMask;
  }

  const Entry& EntryOf(Code c) const {
    const uint32_t idx = static_cast<uint32_t>(Payload(c));
    return chunks_[idx >> kChunkBits].load(std::memory_order_acquire)
        [idx & (kChunkSize - 1)];
  }

  bool IsNumericKind(Code c) const {
    switch (Tag(c)) {
      case kTagInt: return true;
      case kTagEntry: return EntryOf(c).value.is_numeric();
      default: return false;
    }
  }

  double NumImage(Code c) const {
    switch (Tag(c)) {
      case kTagBool: return Payload(c) ? 1.0 : 0.0;
      case kTagInt:
        return static_cast<double>(static_cast<int64_t>(Payload(c)) -
                                   kIntBias);
      case kTagEntry: return EntryOf(c).num;
      default: return std::nan("");
    }
  }

  bool Ebv(Code c) const {
    switch (Tag(c)) {
      case kTagBool: return Payload(c) != 0;
      case kTagInt: return Payload(c) != static_cast<uint64_t>(kIntBias);
      case kTagEntry: return EntryOf(c).ebv;
      default: return false;
    }
  }

  Code Intern(const StringPool& pool, const Item& atom) {
    const EntryKey key{static_cast<uint8_t>(atom.kind), atom.i};
    {
      ReaderLock lk(&mu_);
      auto it = index_.find(key);
      if (it != index_.end()) return MakeCode(kTagEntry, it->second);
    }
    // Compute the metadata outside the exclusive section (string reads may
    // parse doubles); insert under the lock with a re-check.
    Entry e;
    e.value = atom;
    switch (atom.kind) {
      case ItemKind::kInt:
        e.num = static_cast<double>(atom.i);
        e.hash = HashNumericImage(e.num);
        e.ebv = atom.i != 0;
        break;
      case ItemKind::kDouble:
        e.num = atom.d;
        e.hash = std::isnan(atom.d)
                     ? MixValueHash(static_cast<uint64_t>(atom.i))
                     : HashNumericImage(atom.d);
        e.ebv = atom.d != 0.0 && !std::isnan(atom.d);
        break;
      default: {  // kString / kUntyped
        const std::string& s = pool.Get(atom.str_id());
        e.num = ParseDoubleStrict(s);
        e.hash = std::isnan(e.num) ? HashStringChars(s)
                                   : HashNumericImage(e.num);
        e.ebv = !s.empty();
        break;
      }
    }
    WriterLock lk(&mu_);
    auto it = index_.find(key);  // raced with another encoder?
    if (it != index_.end()) return MakeCode(kTagEntry, it->second);
    const uint32_t idx = count_.load(std::memory_order_relaxed);
    if (idx >= max_entries_) {
      // Entry space exhausted (67M distinct atomized values, or a tiny
      // test cap). Indexing past the fixed chunk table would corrupt
      // memory, so refuse the encode: callers see kInvalidCode and fall
      // back to the uncoded item paths — the query still answers
      // correctly, just without dictionary compaction.
      exhausted_.store(true, std::memory_order_relaxed);
      return kInvalidCode;
    }
    Entry* chunk = chunks_[idx >> kChunkBits].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new Entry[kChunkSize];
      chunks_[idx >> kChunkBits].store(chunk, std::memory_order_release);
    }
    chunk[idx & (kChunkSize - 1)] = e;
    count_.store(idx + 1, std::memory_order_release);
    index_.emplace(key, idx);
    return MakeCode(kTagEntry, idx);
  }

  mutable SharedMutex mu_;  // guards index_ and appends
  std::unordered_map<EntryKey, uint32_t, EntryKeyHash> index_
      MXQ_GUARDED_BY(mu_);
  // publication: chunk pointers release-stored once, acquire-loaded by
  // EntryOf; entry contents are covered by the count_ publication.
  std::vector<std::atomic<Entry*>> chunks_;
  // publication: release-stored after the entry is fully written — a code
  // handed out by Encode happens-after its entry, so Decode/HashCode/
  // EqualCodes on published codes read settled memory without locking.
  std::atomic<uint32_t> count_{0};
  // publication: sticky flag, relaxed — monotonic and advisory (kernels use
  // it only to skip doomed encode passes).
  std::atomic<bool> exhausted_{false};
  uint32_t max_entries_ = kMaxEntries;  // lowered only by tests, before use
};

}  // namespace mxq

#endif  // MXQ_COMMON_ITEM_DICT_H_
