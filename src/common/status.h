// Status / Result error handling for mxq (no exceptions on hot paths).
//
// Follows the Arrow/RocksDB idiom: fallible operations return Status (or
// Result<T> when they produce a value). Statuses carry an error code and a
// human-readable message.

#ifndef MXQ_COMMON_STATUS_H_
#define MXQ_COMMON_STATUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace mxq {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kParseError,       // XML or XQuery syntax error
  kTypeError,        // static or dynamic XQuery type error
  kNotFound,         // unknown document, function, variable
  kUnsupported,      // feature outside the implemented dialect
  kOutOfRange,       // cardinality violations (zero-or-one etc.)
  kInternal,
  // Resource governance (docs/robustness.md): admission shedding, budget
  // violations, cooperative cancellation.
  kCancelled,          // execution cancelled by the caller
  kDeadlineExceeded,   // request deadline expired (queued or executing)
  kResourceExhausted,  // admission queue full / memory budget exceeded
};

/// \brief Outcome of a fallible operation.
///
/// The OK status is represented without allocation; error statuses carry a
/// heap-allocated code+message record.
///
/// [[nodiscard]]: a dropped Status is a silent correctness bug in an engine
/// whose recovery contracts are typed-error based (docs/robustness.md) —
/// every producer call site must consume, propagate, or explicitly discard
/// with `(void)` plus a comment saying why ignoring is intended. Enforced
/// as an error by the MXQ_WERROR_THREAD_SAFETY build
/// (docs/static_analysis.md).
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code())) + ": " + message();
  }

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kParseError: return "ParseError";
      case StatusCode::kTypeError: return "TypeError";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kUnsupported: return "Unsupported";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kCancelled: return "Cancelled";
      case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
      case StatusCode::kResourceExhausted: return "ResourceExhausted";
    }
    return "Unknown";
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  Status(StatusCode code, std::string msg)
      : rep_(std::make_shared<Rep>(Rep{code, std::move(msg)})) {}

  std::shared_ptr<Rep> rep_;  // null == OK
};

/// \brief A value or an error Status (Arrow's Result / absl::StatusOr).
/// [[nodiscard]] like Status: discarding one silently drops its error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : status_(), value_(std::move(value)), has_value_(true) {}
  Result(Status status) : status_(std::move(status)), has_value_(false) {}

  bool ok() const { return has_value_; }
  const Status& status() const { return status_; }

  T& value() & { return value_; }
  const T& value() const& { return value_; }
  T&& value() && { return std::move(value_); }

  T& operator*() { return value_; }
  const T& operator*() const { return value_; }
  T* operator->() { return &value_; }
  const T* operator->() const { return &value_; }

  /// Returns the contained value, or `fallback` on error.
  T ValueOr(T fallback) const {
    return has_value_ ? value_ : std::move(fallback);
  }

 private:
  Status status_;
  T value_{};
  bool has_value_;
};

// Propagate errors to the caller (statement context).
#define MXQ_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::mxq::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                     \
  } while (0)

#define MXQ_CONCAT_IMPL(a, b) a##b
#define MXQ_CONCAT(a, b) MXQ_CONCAT_IMPL(a, b)

// Assign from a Result<T>, propagating errors.
#define MXQ_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  auto MXQ_CONCAT(_res_, __LINE__) = (rexpr);                  \
  if (!MXQ_CONCAT(_res_, __LINE__).ok())                       \
    return MXQ_CONCAT(_res_, __LINE__).status();               \
  lhs = std::move(MXQ_CONCAT(_res_, __LINE__)).value()

}  // namespace mxq

#endif  // MXQ_COMMON_STATUS_H_
