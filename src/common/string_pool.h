// Interned string storage.
//
// All variable-length strings in the engine (tag names, attribute values,
// text content, XQuery string items) are interned into a StringPool and
// referred to by dense int32 ids. This keeps every column fixed-width — the
// core MonetDB storage discipline — and makes equality comparisons O(1).
//
// The pool is shared by every session of an engine and by the parallel
// execution kernels, and its two access patterns are asymmetric: Get/View
// by id is a per-row cost in comparators, serialization, and the fulltext
// tokenizer, while Intern is a per-distinct-string cost. Storage therefore
// follows the same append-only chunked publish scheme as ItemDict's entry
// table: strings live in fixed-size chunks of std::string slots whose
// addresses never move, chunk pointers are installed with release stores,
// and a release-published count makes every id < size() readable with plain
// acquire loads — Get/View/size take no lock at all. Only Intern/Find touch
// the hash index, under a shared_mutex (shared for the hit fast path,
// exclusive to insert). Returned references stay valid forever.

#ifndef MXQ_COMMON_STRING_POOL_H_
#define MXQ_COMMON_STRING_POOL_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"

namespace mxq {

using StrId = int32_t;
inline constexpr StrId kInvalidStrId = -1;

/// Transparent (heterogeneous-lookup) hasher: `const char*`, `std::string`
/// and `std::string_view` probes all hash without constructing a temporary
/// key object — the shredder interns every tag/attribute/text run, so the
/// lookup path must never allocate.
struct StringPoolHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// \brief Append-only interning pool mapping strings <-> dense int ids.
///
/// Ids are assigned densely from 0 in insertion order, so they can be used
/// directly as positional indexes into per-string side tables.
class StringPool {
 public:
  StringPool() : chunks_(kMaxChunks) {}
  ~StringPool() {
    const size_t n = count_.load(std::memory_order_acquire);
    for (size_t c = 0; c * kChunkSize < n; ++c)
      delete[] chunks_[c].load(std::memory_order_relaxed);
  }
  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;

  /// Interns `s`, returning its id (existing id if already present).
  StrId Intern(std::string_view s) {
    intern_calls_.fetch_add(1, std::memory_order_relaxed);
    {
      // Fast path: already interned (the common case on query hot paths).
      ReaderLock lk(&mu_);
      auto it = index_.find(s);
      if (it != index_.end()) return it->second;
    }
    WriterLock lk(&mu_);
    auto it = index_.find(s);  // re-check: raced with another interner
    if (it != index_.end()) return it->second;
    const size_t idx = count_.load(std::memory_order_relaxed);
    assert(idx < kMaxChunks * kChunkSize && "string pool exhausted");
    std::string* chunk = chunks_[idx >> kChunkBits].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new std::string[kChunkSize];
      chunks_[idx >> kChunkBits].store(chunk, std::memory_order_release);
    }
    chunk[idx & (kChunkSize - 1)] = std::string(s);
    // Publish after the slot is fully written: a reader that observes
    // size() > idx (acquire) sees the string contents.
    count_.store(idx + 1, std::memory_order_release);
    // string_view key points into the chunk-stored string, which never moves.
    StrId id = static_cast<StrId>(idx);
    index_.emplace(std::string_view(chunk[idx & (kChunkSize - 1)]), id);
    return id;
  }

  /// Returns the id of `s` or kInvalidStrId if not interned.
  StrId Find(std::string_view s) const {
    ReaderLock lk(&mu_);
    auto it = index_.find(s);
    return it == index_.end() ? kInvalidStrId : it->second;
  }

  /// Returns the string for a valid id, lock-free. The reference is stable:
  /// ids are append-only and chunk slots never relocate. Safe from any
  /// thread for any id obtained through a synchronized channel (a column, a
  /// published dict code, an index lookup) — the same discipline as
  /// ItemDict::EntryOf.
  const std::string& Get(StrId id) const {
    return chunks_[static_cast<size_t>(id) >> kChunkBits].load(
        std::memory_order_acquire)[static_cast<size_t>(id) & (kChunkSize - 1)];
  }

  std::string_view View(StrId id) const { return Get(id); }

  size_t size() const { return count_.load(std::memory_order_acquire); }

  /// Monotonic count of Intern() calls (hits included). Regression hook for
  /// the dictionary-coded join tests: a dict-coded probe loop must perform
  /// zero interning, so tests snapshot this counter around the probe and
  /// assert it did not move (see tests/exec_kernels_test.cc).
  int64_t intern_calls() const {
    return intern_calls_.load(std::memory_order_relaxed);
  }

 private:
  // 4096 strings per chunk, up to 1<<14 chunks = 67M strings; the chunk
  // pointer table is 128 KiB per pool, allocated once up front.
  static constexpr int kChunkBits = 12;
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;
  static constexpr size_t kMaxChunks = size_t{1} << 14;

  // publication: monotonic counter, relaxed — a statistics hook, ordered
  // against nothing.
  std::atomic<int64_t> intern_calls_{0};
  mutable SharedMutex mu_;  // guards index_ and insertion order only
  // publication: chunk pointers are installed once with a release store and
  // never change; Get() reads them with acquire. Slot contents are covered
  // by the count_ publication below, not by mu_.
  std::vector<std::atomic<std::string*>> chunks_;
  // publication: release-stored after the new slot is fully written; any
  // reader that acquires count_ > idx sees slot idx settled. This is the
  // pool's only reader-side synchronization — Get/View/size never lock.
  std::atomic<size_t> count_{0};
  std::unordered_map<std::string_view, StrId, StringPoolHash, std::equal_to<>>
      index_ MXQ_GUARDED_BY(mu_);
};

}  // namespace mxq

#endif  // MXQ_COMMON_STRING_POOL_H_
