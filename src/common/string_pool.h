// Interned string storage.
//
// All variable-length strings in the engine (tag names, attribute values,
// text content, XQuery string items) are interned into a StringPool and
// referred to by dense int32 ids. This keeps every column fixed-width — the
// core MonetDB storage discipline — and makes equality comparisons O(1).
//
// The pool is shared by every session of an engine and by the parallel
// execution kernels, so it is internally synchronized: lookups take a shared
// lock, interning takes an exclusive one. Returned references stay valid
// forever — storage is a deque and ids are append-only.

#ifndef MXQ_COMMON_STRING_POOL_H_
#define MXQ_COMMON_STRING_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace mxq {

using StrId = int32_t;
inline constexpr StrId kInvalidStrId = -1;

/// Transparent (heterogeneous-lookup) hasher: `const char*`, `std::string`
/// and `std::string_view` probes all hash without constructing a temporary
/// key object — the shredder interns every tag/attribute/text run, so the
/// lookup path must never allocate.
struct StringPoolHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// \brief Append-only interning pool mapping strings <-> dense int ids.
///
/// Ids are assigned densely from 0 in insertion order, so they can be used
/// directly as positional indexes into per-string side tables.
class StringPool {
 public:
  StringPool() = default;
  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;

  /// Interns `s`, returning its id (existing id if already present).
  StrId Intern(std::string_view s) {
    intern_calls_.fetch_add(1, std::memory_order_relaxed);
    {
      // Fast path: already interned (the common case on query hot paths).
      std::shared_lock<std::shared_mutex> lk(mu_);
      auto it = index_.find(s);
      if (it != index_.end()) return it->second;
    }
    std::unique_lock<std::shared_mutex> lk(mu_);
    auto it = index_.find(s);  // re-check: raced with another interner
    if (it != index_.end()) return it->second;
    StrId id = static_cast<StrId>(strings_.size());
    strings_.emplace_back(s);
    // string_view key points into the deque-stored string, which never moves.
    index_.emplace(std::string_view(strings_.back()), id);
    return id;
  }

  /// Returns the id of `s` or kInvalidStrId if not interned.
  StrId Find(std::string_view s) const {
    std::shared_lock<std::shared_mutex> lk(mu_);
    auto it = index_.find(s);
    return it == index_.end() ? kInvalidStrId : it->second;
  }

  /// Returns the string for a valid id. The reference is stable: ids are
  /// append-only and the deque never relocates stored strings.
  const std::string& Get(StrId id) const {
    std::shared_lock<std::shared_mutex> lk(mu_);
    return strings_[id];
  }

  std::string_view View(StrId id) const {
    std::shared_lock<std::shared_mutex> lk(mu_);
    return strings_[id];
  }

  size_t size() const {
    std::shared_lock<std::shared_mutex> lk(mu_);
    return strings_.size();
  }

  /// Monotonic count of Intern() calls (hits included). Regression hook for
  /// the dictionary-coded join tests: a dict-coded probe loop must perform
  /// zero interning, so tests snapshot this counter around the probe and
  /// assert it did not move (see tests/exec_kernels_test.cc).
  int64_t intern_calls() const {
    return intern_calls_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> intern_calls_{0};
  mutable std::shared_mutex mu_;
  std::deque<std::string> strings_;  // deque: stable addresses for the index
  std::unordered_map<std::string_view, StrId, StringPoolHash, std::equal_to<>>
      index_;
};

}  // namespace mxq

#endif  // MXQ_COMMON_STRING_POOL_H_
