// Compile-time concurrency contracts (docs/static_analysis.md).
//
// Wraps Clang's thread-safety analysis attributes in portable MXQ_* macros
// and provides annotated Mutex / SharedMutex capabilities plus RAII locks,
// so every mutex-protected structure in the engine can *declare* its lock
// protocol and have the compiler enforce it:
//
//   mxq::Mutex mu_;
//   int64_t hits_ MXQ_GUARDED_BY(mu_);   // access without mu_ = build error
//
//   void Bump() {
//     MutexLock lk(&mu_);
//     ++hits_;                           // OK: lock is held
//   }
//
// Under Clang with -Wthread-safety (the MXQ_WERROR_THREAD_SAFETY CMake
// option turns it into -Werror=thread-safety), a guarded field touched
// outside its lock, a MXQ_REQUIRES function called without the capability,
// or an MXQ_EXCLUDES violation is a compile error. Under every other
// compiler the macros expand to nothing and the wrappers are zero-cost
// forwarding shims over the std primitives.
//
// The engine distinguishes two field disciplines; the annotation states
// which one each field follows (docs/static_analysis.md "Contract"):
//
//   * MXQ_GUARDED_BY(mu)  -- classic lock-protected state. All reads and
//     writes hold mu. This is what the analysis enforces.
//   * `// publication:` fields -- lock-free published state (the chunked
//     release/acquire pattern of StringPool / ItemDict / the fulltext
//     posting table / DocumentManager's container registry). These are
//     std::atomic with explicit memory_order arguments; they are
//     deliberately NOT guarded (readers never lock), and
//     tools/lint/check_memory_order.py keeps their orderings explicit.
//
// Every MXQ_NO_THREAD_SAFETY_ANALYSIS escape hatch must carry a comment
// explaining why the analysis cannot express the protocol (policy in
// docs/static_analysis.md).
//
// Attribute spellings follow Clang's documented capability attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), same scheme as
// abseil's thread_annotations.h.

#ifndef MXQ_COMMON_THREAD_ANNOTATIONS_H_
#define MXQ_COMMON_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define MXQ_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define MXQ_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

// Type declares a capability (lockable).
#define MXQ_CAPABILITY(x) MXQ_THREAD_ANNOTATION_(capability(x))
// RAII type that acquires in its constructor and releases in its destructor.
#define MXQ_SCOPED_CAPABILITY MXQ_THREAD_ANNOTATION_(scoped_lockable)

// Field is protected by the given capability.
#define MXQ_GUARDED_BY(x) MXQ_THREAD_ANNOTATION_(guarded_by(x))
// Pointer field whose *pointee* is protected by the given capability.
#define MXQ_PT_GUARDED_BY(x) MXQ_THREAD_ANNOTATION_(pt_guarded_by(x))

// Function acquires/releases the capability (exclusive / shared).
#define MXQ_ACQUIRE(...) MXQ_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define MXQ_ACQUIRE_SHARED(...) \
  MXQ_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define MXQ_RELEASE(...) MXQ_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define MXQ_RELEASE_SHARED(...) \
  MXQ_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
// Releases whichever mode was acquired (scoped locks that may hold either).
#define MXQ_RELEASE_GENERIC(...) \
  MXQ_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))
// Function tries to acquire; first argument is the success return value.
#define MXQ_TRY_ACQUIRE(...) \
  MXQ_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// Caller must hold the capability (exclusive / shared) across the call.
#define MXQ_REQUIRES(...) \
  MXQ_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define MXQ_REQUIRES_SHARED(...) \
  MXQ_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// Caller must NOT hold the capability (deadlock prevention).
#define MXQ_EXCLUDES(...) MXQ_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Function returns a reference to the given capability.
#define MXQ_RETURN_CAPABILITY(x) MXQ_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch: function body is not analyzed. Every use must carry a
// justification comment (docs/static_analysis.md "Escape hatches").
#define MXQ_NO_THREAD_SAFETY_ANALYSIS \
  MXQ_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace mxq {

/// \brief std::mutex annotated as a Clang capability.
///
/// A zero-cost shim: all methods forward to the wrapped std::mutex. Meets
/// BasicLockable, so std::condition_variable_any can wait on it directly
/// (CondVar below) — the wait's internal unlock/relock is invisible to the
/// analysis, which is sound because the capability state is identical
/// before and after the call.
class MXQ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MXQ_ACQUIRE() { mu_.lock(); }
  void unlock() MXQ_RELEASE() { mu_.unlock(); }
  bool try_lock() MXQ_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// \brief std::shared_mutex annotated as a Clang capability
/// (exclusive writer / shared readers).
class MXQ_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() MXQ_ACQUIRE() { mu_.lock(); }
  void unlock() MXQ_RELEASE() { mu_.unlock(); }
  bool try_lock() MXQ_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void lock_shared() MXQ_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() MXQ_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() MXQ_TRY_ACQUIRE(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// \brief RAII exclusive lock over a Mutex (std::lock_guard with the
/// acquire/release contract visible to the analysis).
class MXQ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) MXQ_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() MXQ_RELEASE() { mu_->unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// \brief RAII exclusive lock over a SharedMutex (writer side).
class MXQ_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex* mu) MXQ_ACQUIRE(mu) : mu_(mu) {
    mu_->lock();
  }
  ~WriterLock() MXQ_RELEASE() { mu_->unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// \brief RAII shared lock over a SharedMutex (reader side).
class MXQ_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) MXQ_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->lock_shared();
  }
  ~ReaderLock() MXQ_RELEASE_GENERIC() { mu_->unlock_shared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// Condition variable usable with the annotated Mutex: wait(Mutex&) via the
/// BasicLockable interface. Waiters hold the Mutex (MutexLock or explicit
/// lock()) and loop on their predicate around wait()/wait_until — guarded
/// predicate state is then visibly read under the lock, which is what lets
/// the analysis check cv-protected state machines (XQueryEngine admission,
/// ThreadPool job handoff).
using CondVar = std::condition_variable_any;

}  // namespace mxq

#endif  // MXQ_COMMON_THREAD_ANNOTATIONS_H_
