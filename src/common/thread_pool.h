// Partition-parallel execution: a work-stealing-free, static-partition
// thread pool shared by the execution kernels.
//
// The kernels this pool serves (radix-cluster scatters, hash-table probes,
// selection-vector morsels, counting-sort passes) are all embarrassingly
// parallel over *statically known* index ranges, and all of them promise
// bit-identical output to their serial execution. Static partitioning is
// what makes that promise cheap to keep: every parallel region splits its
// input into a deterministic number of contiguous chunks (a function of the
// requested thread count and the input size only — never of scheduling),
// each chunk produces its fragment independently, and fragments are
// stitched back together in chunk order. No work stealing means no
// scheduling-dependent interleaving anywhere.
//
// The pool keeps persistent workers (spawned lazily, woken by condition
// variable) so a query plan with thousands of operator invocations does not
// pay thread creation per operator. The calling thread always participates
// as executor 0; nested parallel regions run inline on their caller.

#ifndef MXQ_COMMON_THREAD_POOL_H_
#define MXQ_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/exec_context.h"
#include "common/thread_annotations.h"

namespace mxq {

inline int HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

/// Process-wide default execution width: MXQ_THREADS (clamped to [1, 64])
/// when set, hardware concurrency otherwise. Read once; ExecFlags::FromEnv
/// re-reads the variable so tests can vary it per ExecFlags instance.
inline int DefaultExecThreads() {
  static const int n = [] {
    if (const char* s = std::getenv("MXQ_THREADS")) {
      int v = std::atoi(s);
      if (v >= 1) return std::min(v, 64);
    }
    return HardwareThreads();
  }();
  return n;
}

/// Minimum rows a chunk must carry for a parallel region to be worth its
/// synchronization: two cache-sized morsels (the wake/join handshake costs
/// on the order of microseconds; a few thousand rows of sequential work
/// amortize it).
inline constexpr size_t kParGrainRows = 8192;

/// Number of chunks a parallel region over `n` items should use at the
/// given thread budget. Deterministic in (threads, n) — chunk counts must
/// never depend on pool state, since per-chunk fragments are stitched in
/// chunk order and tests assert bit-identical output across thread counts.
inline int PlanChunks(int threads, size_t n) {
  if (threads <= 1 || n < 2 * kParGrainRows) return 1;
  return static_cast<int>(
      std::min<size_t>(static_cast<size_t>(threads), n / kParGrainRows));
}

/// \brief Persistent-worker pool with static task assignment.
///
/// `Run(tasks, fn)` executes fn(0) .. fn(tasks-1) across up to `tasks`
/// executors: the calling thread (executor 0) plus sleeping workers. Tasks
/// are assigned as contiguous blocks per executor — no queue, no stealing.
/// Tasks must not throw. Run() may be invoked from any thread: one job owns
/// the workers at a time, concurrent callers degrade to serial inline
/// execution (bit-identical output), and invocations from inside a running
/// task execute inline.
class ThreadPool {
 public:
  static ThreadPool& Global() {
    // Leaked deliberately: workers park in cv-wait at exit; skipping the
    // destructor avoids joining through static teardown order.
    static ThreadPool* pool = new ThreadPool();
    return *pool;
  }

  /// Max workers ever spawned (callers clamp thread counts well below).
  static constexpr int kMaxWorkers = 63;

  void Run(int tasks, const std::function<void(int)>& fn)
      MXQ_EXCLUDES(run_mu_, mu_) {
    if (tasks <= 1) {
      for (int t = 0; t < tasks; ++t) fn(t);
      return;
    }
    if (in_task_) {  // nested region: the executor just runs it inline
      for (int t = 0; t < tasks; ++t) fn(t);
      return;
    }
    // Bounded scheduling for concurrent sessions: one parallel job owns the
    // worker set at a time. A session whose region arrives while another
    // session's job is in flight runs its chunks serially inline instead of
    // queueing (or spawning more threads) — total thread count stays bounded
    // by the pool, and since chunk plans are deterministic in (threads, n),
    // the serial fallback is bit-identical to the parallel run.
    if (!run_mu_.try_lock()) {
      for (int t = 0; t < tasks; ++t) fn(t);
      return;
    }
    // run_mu_ is held from here to the unlock below; the only early exits
    // above precede the try_lock. (Tasks must not throw — pool contract.)
    EnsureWorkers(tasks - 1);
    int executors;
    {
      MutexLock lk(&mu_);
      executors = std::min(tasks, 1 + static_cast<int>(workers_.size()));
      job_fn_ = &fn;
      // Workers run the job under the submitting execution's governance
      // context, so chunk allocations on worker threads charge the same
      // MemAccount (and hit the same fault points) as the caller's — a
      // parallel kernel cannot evade memory_budget_bytes by fanning out.
      job_ctx_ = CurrentExecContext();
      job_tasks_ = tasks;
      job_executors_ = executors;
      pending_ = executors - 1;
      ++generation_;
    }
    cv_.notify_all();
    RunBlock(0, executors, tasks, fn);  // caller is executor 0
    {
      MutexLock lk(&mu_);
      while (pending_ != 0) done_cv_.wait(mu_);
      job_fn_ = nullptr;
    }
    run_mu_.unlock();
  }

  int workers() const MXQ_EXCLUDES(mu_) {
    MutexLock lk(&mu_);
    return static_cast<int>(workers_.size());
  }

 private:
  ThreadPool() = default;

  static void RunBlock(int e, int executors, int tasks,
                       const std::function<void(int)>& fn) {
    const int64_t b = static_cast<int64_t>(tasks) * e / executors;
    const int64_t end = static_cast<int64_t>(tasks) * (e + 1) / executors;
    in_task_ = true;
    for (int64_t t = b; t < end; ++t) fn(static_cast<int>(t));
    in_task_ = false;
  }

  void EnsureWorkers(int want) MXQ_EXCLUDES(mu_) {
    // Bound the persistent worker set by the hardware (floor of 8 so the
    // determinism tests and TSan runs get real concurrency even on tiny
    // CI machines) — a job wider than the worker set just assigns larger
    // blocks per executor, which static partitioning handles natively.
    want = std::min({want, kMaxWorkers, std::max(8, HardwareThreads() - 1)});
    MutexLock lk(&mu_);
    while (static_cast<int>(workers_.size()) < want) {
      int widx = static_cast<int>(workers_.size());
      workers_.emplace_back([this, widx] { WorkerLoop(widx); });
    }
  }

  // MXQ_NO_THREAD_SAFETY_ANALYSIS: the worker loop holds mu_ across
  // iterations of an infinite loop, dropping it only inside cv waits and
  // around job execution — acquire and release are intentionally unbalanced
  // within the function body, which the per-function analysis cannot
  // express. The protocol is exercised under TSan by every run_matrix
  // sanitizer leg (tests/run_matrix.sh).
  void WorkerLoop(int widx) MXQ_NO_THREAD_SAFETY_ANALYSIS {
    uint64_t seen = 0;
    mu_.lock();
    while (true) {
      while (generation_ == seen) cv_.wait(mu_);
      seen = generation_;
      const std::function<void(int)>* fn = job_fn_;
      ExecContext* ctx = job_ctx_;
      const int e = widx + 1;
      const int executors = job_executors_;
      const int tasks = job_tasks_;
      // Not participating (job already complete, or narrower than the
      // worker set): just re-arm on the next generation.
      if (fn == nullptr || e >= executors) continue;
      mu_.unlock();
      {
        ScopedExecContext scoped(ctx);
        RunBlock(e, executors, tasks, *fn);
      }
      mu_.lock();
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }

  Mutex run_mu_;      // serializes whole jobs
  mutable Mutex mu_;  // guards all job/worker state below
  CondVar cv_;       // workers wait here for a generation
  CondVar done_cv_;  // the caller waits here for pending_==0
  std::vector<std::jthread> workers_ MXQ_GUARDED_BY(mu_);
  const std::function<void(int)>* job_fn_ MXQ_GUARDED_BY(mu_) = nullptr;
  // caller's governance context, if any
  ExecContext* job_ctx_ MXQ_GUARDED_BY(mu_) = nullptr;
  int job_tasks_ MXQ_GUARDED_BY(mu_) = 0;
  int job_executors_ MXQ_GUARDED_BY(mu_) = 0;
  int pending_ MXQ_GUARDED_BY(mu_) = 0;
  uint64_t generation_ MXQ_GUARDED_BY(mu_) = 0;

  static thread_local bool in_task_;
};

inline thread_local bool ThreadPool::in_task_ = false;

/// Splits [0, n) into `chunks` near-equal contiguous ranges and runs
/// fn(chunk, begin, end) for each, concurrently when chunks > 1. Chunk
/// boundaries depend only on (chunks, n): stitching per-chunk fragments in
/// chunk order reproduces the serial (single-chunk) result exactly.
template <class F>
void ParallelChunks(int chunks, size_t n, F&& fn) {
  if (chunks <= 1) {
    fn(0, size_t{0}, n);
    return;
  }
  ThreadPool::Global().Run(chunks, [&](int c) {
    const size_t b = n * static_cast<size_t>(c) / chunks;
    const size_t e = n * (static_cast<size_t>(c) + 1) / chunks;
    fn(c, b, e);
  });
}

}  // namespace mxq

#endif  // MXQ_COMMON_THREAD_POOL_H_
