// Fulltext index construction (see index.h for the layout contract).

#include "fulltext/index.h"

#include <algorithm>
#include <cassert>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/exec_context.h"
#include "common/fault.h"
#include "common/item.h"
#include "common/item_dict.h"
#include "common/string_pool.h"
#include "fulltext/tokenizer.h"
#include "storage/document.h"

namespace mxq {
namespace ft {

namespace {

/// Abandon-the-build poll (docs/robustness.md): a governed stop mid-build
/// returns null from Build, the cache slot stays empty, and the next call
/// rebuilds from scratch. Stop reasons are sticky, so the execution that
/// abandoned the build surfaces the typed Status at its next checkpoint.
bool BuildStopRequested() {
  ExecContext* ctx = CurrentExecContext();
  return ctx != nullptr && ctx->StopRequested();
}

}  // namespace

void FullTextIndex::Append(const Posting& p) {
  const uint64_t idx = count_.load(std::memory_order_relaxed);
  assert((idx >> kChunkBits) < kMaxChunks && "posting table exhausted");
  Posting* chunk = chunks_[idx >> kChunkBits].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Posting[kChunkSize];
    chunks_[idx >> kChunkBits].store(chunk, std::memory_order_release);
  }
  chunk[idx & (kChunkSize - 1)] = p;
  // Publish after the slot is written: readers below the count see the
  // posting (ItemDict's entry-table discipline).
  count_.store(idx + 1, std::memory_order_release);
}

FullTextIndex::~FullTextIndex() {
  const uint64_t n = count_.load(std::memory_order_acquire);
  for (size_t ci = 0; ci * kChunkSize < n; ++ci)
    delete[] chunks_[ci].load(std::memory_order_relaxed);
}

int64_t FullTextIndex::TextLen(int64_t pre) const {
  auto it = std::lower_bound(text_pre_.begin(), text_pre_.end(), pre);
  if (it == text_pre_.end() || *it != pre) return 0;
  return text_len_[static_cast<size_t>(it - text_pre_.begin())];
}

std::shared_ptr<const FullTextIndex> FullTextIndex::Build(
    const DocumentContainer& c) {
  MXQ_FAULT_POINT("ft.build");
  std::shared_ptr<FullTextIndex> idx(new FullTextIndex());
  DocumentManager& mgr = *c.manager();
  StringPool& pool = mgr.strings();
  ItemDict& dict = mgr.item_dict();

  // One pre-order scan. Postings accumulate per term in scan order, which
  // is exactly (pre, pos) sorted order — the flush below never re-sorts.
  std::unordered_map<int64_t, std::vector<Posting>> acc;
  std::string folded;
  const int64_t slots = c.LogicalSlots();
  int64_t scanned = 0;
  for (int64_t pre = c.SkipUnused(0); pre < slots;
       pre = c.SkipUnused(pre + 1)) {
    if ((++scanned & 4095) == 0 && BuildStopRequested()) return nullptr;
    if (c.KindAt(pre) != NodeKind::kText) continue;
    const std::string& text = pool.Get(static_cast<StrId>(c.RefAt(pre)));
    int64_t ntok = 0;
    Tokenize(text, [&](std::string_view raw, int32_t pos) {
      ++ntok;
      if (!idx->ok_) return;
      FoldInto(raw, &folded);
      ItemDict::Code code =
          dict.Encode(pool, Item::String(pool.Intern(folded)));
      if (code == ItemDict::kInvalidCode) {
        // Shared dictionary exhausted: the index cannot name this term, so
        // it cannot answer queries faithfully. Mark unusable; probes scan.
        idx->ok_ = false;
        return;
      }
      acc[code].emplace_back(Posting{pre, pos});
    });
    idx->text_pre_.push_back(pre);
    idx->text_len_.push_back(ntok);
    idx->total_tokens_ += ntok;
  }
  if (!idx->ok_) return idx;
  if (BuildStopRequested()) return nullptr;

  // Flush each term's postings into a contiguous span of the chunked table.
  idx->terms_.reserve(acc.size());
  for (auto& [code, posts] : acc) {
    TermSpan s;
    s.begin = idx->count_.load(std::memory_order_relaxed);
    int64_t last_pre = -1;
    for (const Posting& p : posts) {
      if (p.pre != last_pre) {
        ++s.df;
        last_pre = p.pre;
      }
      idx->Append(p);
    }
    s.end = idx->count_.load(std::memory_order_relaxed);
    idx->terms_.emplace(code, s);
  }
  return idx;
}

}  // namespace ft

// Defined here rather than in storage/ so the storage layer does not link
// against the fulltext subsystem — it only holds the (forward-declared)
// cache slot and drops it on invalidation.
std::shared_ptr<const ft::FullTextIndex> DocumentContainer::fulltext_index()
    const {
  MutexLock lk(&index_mu_);
  if (!ft_index_) {
    // Build returns null when the governing execution was stopped (or an
    // injected fault fired) mid-build: leave the cache slot empty — absent,
    // rebuild on next call — and let the caller surface the typed Status.
    ft_index_ = ft::FullTextIndex::Build(*this);
  }
  return ft_index_;
}

std::shared_ptr<const ft::FullTextIndex>
DocumentContainer::fulltext_index_if_built() const {
  MutexLock lk(&index_mu_);
  return ft_index_;
}

}  // namespace mxq
