// Inverted fulltext index over one DocumentContainer's text nodes
// (docs/fulltext.md; the ROADMAP's EMBANKS direction).
//
// The term dictionary IS the engine's ItemDict: a term is the dictionary
// code of its folded token string (Item::String of the interned token), so
// fulltext probes, value joins, and dictionary-coded columns all speak the
// same 8-byte code space, and a query-side term lookup is StringPool::Find
// + ItemDict::Find — no second dictionary to build or synchronize.
//
// Posting lists are sorted arrays of (pre, tokpos) per term — pre is the
// *text node's* pre rank, tokpos its 0-based token ordinal — stored as
// contiguous spans of one append-only chunked table that follows ItemDict's
// publish pattern: fixed-size chunks behind release-stored pointers and a
// release-published count, so every read below the published count is a
// plain acquire load. An index instance is immutable after Build() and
// published to probes as shared_ptr<const>; the chunked layout keeps reads
// lock-free and addresses stable without requiring one giant allocation.
//
// Per-text-node token counts and corpus totals (N, total tokens) ride along
// for BM25 scoring; both live in pre-sorted parallel arrays so probes
// binary-search them without touching the container.

#ifndef MXQ_FULLTEXT_INDEX_H_
#define MXQ_FULLTEXT_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace mxq {

class DocumentContainer;

namespace ft {

struct Posting {
  int64_t pre;  // pre rank of the text node
  int32_t pos;  // 0-based token ordinal within that text node
};

class FullTextIndex {
 public:
  /// Contiguous span [begin, end) of the posting table, plus the term's
  /// document frequency (number of distinct text nodes it occurs in).
  struct TermSpan {
    uint64_t begin = 0;
    uint64_t end = 0;
    int64_t df = 0;
  };

  /// Builds the index for `c` by one pre-order scan of its text nodes.
  /// Never fails hard: if the shared ItemDict's entry space is exhausted
  /// mid-build, the returned index has ok() == false and probes fall back
  /// to the scan path for this container.
  static std::shared_ptr<const FullTextIndex> Build(const DocumentContainer& c);

  FullTextIndex(const FullTextIndex&) = delete;
  FullTextIndex& operator=(const FullTextIndex&) = delete;
  ~FullTextIndex();

  bool ok() const { return ok_; }

  // ---- corpus statistics (document unit = text node) ----------------------
  int64_t text_nodes() const { return static_cast<int64_t>(text_pre_.size()); }
  int64_t total_tokens() const { return total_tokens_; }
  double avg_len() const {
    return text_pre_.empty()
               ? 0.0
               : static_cast<double>(total_tokens_) /
                     static_cast<double>(text_pre_.size());
  }

  /// Token count of the text node at `pre` (0 if `pre` is not indexed).
  int64_t TextLen(int64_t pre) const;

  // ---- term access ---------------------------------------------------------

  /// Span of the term with dictionary code `code`, or null if absent.
  /// Lock-free: the term map is immutable after Build().
  const TermSpan* Lookup(int64_t code) const {
    auto it = terms_.find(code);
    return it == terms_.end() ? nullptr : &it->second;
  }

  size_t distinct_terms() const { return terms_.size(); }

  /// Posting at table index `i` (must be < published count). Acquire loads
  /// only — safe from any probe thread.
  Posting PostingAt(uint64_t i) const {
    return chunks_[i >> kChunkBits].load(std::memory_order_acquire)
        [i & (kChunkSize - 1)];
  }

  /// First index in [s.begin, s.end) whose posting has pre >= `pre_lo`
  /// (postings are sorted by (pre, pos)). Returns s.end if none — the
  /// galloping/binary probe both paths of TextProbe are built on.
  uint64_t LowerBoundPre(const TermSpan& s, int64_t pre_lo) const {
    uint64_t lo = s.begin, hi = s.end;
    while (lo < hi) {
      uint64_t mid = lo + (hi - lo) / 2;
      if (PostingAt(mid).pre < pre_lo)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo;
  }

 private:
  FullTextIndex() = default;

  /// Appends one posting (build thread only; publishes with release).
  void Append(const Posting& p);

  // 8192 postings per chunk; 1<<16 chunks = 536M postings per container.
  static constexpr int kChunkBits = 13;
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;
  static constexpr size_t kMaxChunks = size_t{1} << 16;

  // publication: build-thread-only appends; chunk pointers are installed
  // once with release stores and count_ is release-published after each
  // slot write, so PostingAt's acquire loads see settled postings for any
  // index below the count a probe obtained. After Build() returns the whole
  // object is frozen behind shared_ptr<const> — no lock, no GUARDED_BY.
  std::vector<std::atomic<Posting*>> chunks_{kMaxChunks};
  std::atomic<uint64_t> count_{0};

  std::unordered_map<int64_t, TermSpan> terms_;  // code -> span; frozen
  std::vector<int64_t> text_pre_;  // indexed text nodes, pre-sorted
  std::vector<int64_t> text_len_;  // parallel: token count per text node
  int64_t total_tokens_ = 0;
  bool ok_ = true;
};

}  // namespace ft
}  // namespace mxq

#endif  // MXQ_FULLTEXT_INDEX_H_
