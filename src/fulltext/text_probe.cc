// TextProbe implementation (contract in text_probe.h; docs/fulltext.md).
//
// Byte-identity discipline: the index path and the scan fallback must
// produce bit-identical doubles, so both evaluate BM25 through the single
// Bm25Term helper below and accumulate per-node contributions in the same
// order — (text pre ascending, query group ascending). The scan path gets
// that order for free (it walks the subtree in document order); the index
// path collects (pre, group, tf) triples per group and sorts them into the
// same order before summing.

#include "fulltext/text_probe.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "common/fault.h"
#include "common/item_dict.h"
#include "common/thread_pool.h"
#include "fulltext/index.h"
#include "fulltext/tokenizer.h"
#include "storage/document.h"

namespace mxq {
namespace alg {
namespace {

using ft::FullTextIndex;

// Same cancellation cadence as the evaluator's serial loops.
constexpr size_t kStopMask = 4095;
inline bool StopAt(const ExecFlags& fl, size_t i) {
  return (i & kStopMask) == 0 && fl.stop_requested();
}

/// One query group = one string-literal argument, tokenized+folded.
/// Multi-token groups are phrases (consecutive positions in one text node).
struct Group {
  std::vector<std::string> tokens;
};

std::vector<Group> ParseGroups(const std::vector<std::string>& args) {
  std::vector<Group> gs;
  gs.reserve(args.size());
  std::string folded;
  for (const std::string& a : args) {
    Group g;
    ft::Tokenize(a, [&](std::string_view raw, int32_t) {
      ft::FoldInto(raw, &folded);
      g.tokens.push_back(folded);
    });
    gs.push_back(std::move(g));
  }
  return gs;
}

/// BM25 contribution of one (group, text node) pair. k1/b are the classic
/// defaults; document unit = text node (docs/fulltext.md "Scoring").
inline double Bm25Term(double tf, double df, double n_docs, double len,
                       double avg_len) {
  constexpr double kK1 = 1.2;
  constexpr double kB = 0.75;
  const double idf = std::log((n_docs - df + 0.5) / (df + 0.5) + 1.0);
  const double norm = 1.0 - kB + (avg_len > 0.0 ? kB * (len / avg_len) : 0.0);
  return idf * (tf * (kK1 + 1.0)) / (tf + kK1 * norm);
}

// ---------------------------------------------------------------------------
// scan fallback primitives
// ---------------------------------------------------------------------------

/// Folded tokens of the text node at `pre` (reuses the caller's buffers).
void TokensOf(const StringPool& pool, const DocumentContainer& c, int64_t pre,
              std::string* folded, std::vector<std::string>* toks) {
  toks->clear();
  const std::string& text = pool.Get(static_cast<StrId>(c.RefAt(pre)));
  ft::Tokenize(text, [&](std::string_view raw, int32_t) {
    ft::FoldInto(raw, folded);
    toks->push_back(*folded);
  });
}

/// Occurrences of `g` in one text node's token list (phrase = consecutive).
int64_t GroupTf(const std::vector<std::string>& toks, const Group& g) {
  const size_t k = g.tokens.size();
  if (toks.size() < k) return 0;
  int64_t tf = 0;
  if (k == 1) {
    for (const std::string& t : toks)
      if (t == g.tokens[0]) ++tf;
    return tf;
  }
  for (size_t i = 0; i + k <= toks.size(); ++i) {
    bool all = true;
    for (size_t j = 0; j < k; ++j)
      if (toks[i + j] != g.tokens[j]) {
        all = false;
        break;
      }
    if (all) ++tf;
  }
  return tf;
}

// ---------------------------------------------------------------------------
// index-path primitives (binary-search probes over posting spans)
// ---------------------------------------------------------------------------

/// Does the term have a posting exactly at (pre, pos)? Walks the node's
/// postings from the span's lower bound (sorted by pos within a pre).
bool HasPostingAt(const FullTextIndex& idx, const FullTextIndex::TermSpan& s,
                  int64_t pre, int32_t pos) {
  for (uint64_t i = idx.LowerBoundPre(s, pre); i < s.end; ++i) {
    const ft::Posting p = idx.PostingAt(i);
    if (p.pre != pre || p.pos > pos) return false;
    if (p.pos == pos) return true;
  }
  return false;
}

/// Followers check for a phrase anchored at (pre, pos) of its first token.
bool PhraseAt(const FullTextIndex& idx,
              const std::vector<const FullTextIndex::TermSpan*>& sp,
              int64_t pre, int32_t pos) {
  for (size_t j = 1; j < sp.size(); ++j)
    if (!HasPostingAt(idx, *sp[j], pre, pos + static_cast<int32_t>(j)))
      return false;
  return true;
}

/// Any occurrence of the group in pre range [lo, hi]?
bool GroupInRange(const FullTextIndex& idx,
                  const std::vector<const FullTextIndex::TermSpan*>& sp,
                  int64_t lo, int64_t hi) {
  if (sp.size() == 1) {
    const uint64_t i = idx.LowerBoundPre(*sp[0], lo);
    return i < sp[0]->end && idx.PostingAt(i).pre <= hi;
  }
  for (uint64_t i = idx.LowerBoundPre(*sp[0], lo); i < sp[0]->end; ++i) {
    const ft::Posting p = idx.PostingAt(i);
    if (p.pre > hi) return false;
    if (PhraseAt(idx, sp, p.pre, p.pos)) return true;
  }
  return false;
}

/// Appends (pre, tf) for every text node in [lo, hi] where the group
/// occurs, pre ascending.
void GroupTfsInRange(const FullTextIndex& idx,
                     const std::vector<const FullTextIndex::TermSpan*>& sp,
                     int64_t lo, int64_t hi,
                     std::vector<std::pair<int64_t, int64_t>>* out) {
  int64_t cur = -1, tf = 0;
  auto flush = [&] {
    if (tf > 0) out->emplace_back(cur, tf);
  };
  const bool phrase = sp.size() > 1;
  for (uint64_t i = idx.LowerBoundPre(*sp[0], lo); i < sp[0]->end; ++i) {
    const ft::Posting p = idx.PostingAt(i);
    if (p.pre > hi) break;
    if (p.pre != cur) {
      flush();
      cur = p.pre;
      tf = 0;
    }
    if (!phrase || PhraseAt(idx, sp, p.pre, p.pos)) ++tf;
  }
  flush();
}

/// Document frequency of a phrase group: distinct text nodes with >= 1 full
/// occurrence, computed once per (query, container) by walking the first
/// token's whole span. Must equal what the scan fallback counts.
int64_t PhraseDf(const FullTextIndex& idx,
                 const std::vector<const FullTextIndex::TermSpan*>& sp) {
  int64_t df = 0, cur = -1;
  bool matched = false;
  for (uint64_t i = sp[0]->begin; i < sp[0]->end; ++i) {
    const ft::Posting p = idx.PostingAt(i);
    if (p.pre != cur) {
      cur = p.pre;
      matched = false;
    }
    if (!matched && PhraseAt(idx, sp, p.pre, p.pos)) {
      matched = true;
      ++df;
    }
  }
  return df;
}

// ---------------------------------------------------------------------------
// per-container probe state
// ---------------------------------------------------------------------------

struct ContainerState {
  const DocumentContainer* doc = nullptr;
  // Index path when set; null = scan fallback (MXQ_FT=0, or the index is
  // unusable after dictionary exhaustion).
  std::shared_ptr<const FullTextIndex> idx;
  // Index path: per group, per token, its posting span (null pointer entry
  // = token absent from this container = group matches nothing here).
  std::vector<std::vector<const FullTextIndex::TermSpan*>> spans;
  std::vector<bool> group_possible;  // all tokens present (index path)
  // Corpus statistics (populated only for scored probes).
  double n_docs = 0.0;
  double avg_len = 0.0;
  std::vector<double> df;  // per group
  int64_t rows = 0;        // input rows landing in this container
};

/// Builds the probe state for one container: resolves term spans on the
/// index path, or computes corpus stats by a full scan on the fallback.
ContainerState MakeState(DocumentManager& mgr, const ExecFlags& fl,
                         const DocumentContainer* doc,
                         const std::vector<Group>& groups, bool scored) {
  ContainerState st;
  st.doc = doc;
  if (fl.fulltext) {
    // Null when the build was abandoned at a governance stop / injected
    // fault: fall back to the scan path; the stop reason is sticky and the
    // evaluator's next checkpoint surfaces the typed Status.
    std::shared_ptr<const FullTextIndex> idx = doc->fulltext_index();
    if (idx != nullptr && idx->ok()) st.idx = std::move(idx);
  }
  const StringPool& pool = mgr.strings();
  if (st.idx) {
    ItemDict& dict = mgr.item_dict();
    st.spans.resize(groups.size());
    st.group_possible.assign(groups.size(), true);
    for (size_t g = 0; g < groups.size(); ++g) {
      for (const std::string& tok : groups[g].tokens) {
        const FullTextIndex::TermSpan* span = nullptr;
        const StrId sid = pool.Find(tok);
        if (sid != kInvalidStrId) {
          const ItemDict::Code code = dict.Encode(pool, Item::String(sid));
          if (code != ItemDict::kInvalidCode) span = st.idx->Lookup(code);
        }
        st.spans[g].push_back(span);
        if (span == nullptr) st.group_possible[g] = false;
      }
    }
    if (scored) {
      st.n_docs = static_cast<double>(st.idx->text_nodes());
      st.avg_len = st.idx->avg_len();
      st.df.assign(groups.size(), 0.0);
      for (size_t g = 0; g < groups.size(); ++g) {
        if (!st.group_possible[g]) continue;
        st.df[g] = groups[g].tokens.size() == 1
                       ? static_cast<double>(st.spans[g][0]->df)
                       : static_cast<double>(PhraseDf(*st.idx, st.spans[g]));
      }
    }
    return st;
  }
  if (scored) {
    // Fallback corpus scan: same document unit, token rules, and df
    // definition as the index builder, so both paths feed Bm25Term the
    // same doubles.
    st.df.assign(groups.size(), 0.0);
    int64_t n_text = 0, total = 0;
    std::string folded;
    std::vector<std::string> toks;
    const int64_t slots = doc->LogicalSlots();
    for (int64_t pre = doc->SkipUnused(0); pre < slots;
         pre = doc->SkipUnused(pre + 1)) {
      if (doc->KindAt(pre) != NodeKind::kText) continue;
      if (StopAt(fl, static_cast<size_t>(n_text))) break;
      TokensOf(pool, *doc, pre, &folded, &toks);
      ++n_text;
      total += static_cast<int64_t>(toks.size());
      for (size_t g = 0; g < groups.size(); ++g)
        if (GroupTf(toks, groups[g]) > 0) st.df[g] += 1.0;
    }
    st.n_docs = static_cast<double>(n_text);
    st.avg_len =
        n_text == 0 ? 0.0 : static_cast<double>(total) / st.n_docs;
  }
  return st;
}

}  // namespace

Result<TablePtr> TextProbe(DocumentManager& mgr, const ExecFlags& fl,
                           const TablePtr& rel, const TablePtr& loop,
                           const std::vector<std::string>& args, bool scored) {
  // Postings-probe fault boundary (docs/robustness.md): injections here
  // surface exactly like any kernel-boundary fault, before any fan-out.
  MXQ_FAULT_POINT("ft.probe");

  const std::vector<Group> groups = ParseGroups(args);
  bool degenerate = groups.empty();
  for (const Group& g : groups)
    if (g.tokens.empty()) degenerate = true;

  const int rel_iter = rel->ColumnIndex("iter");
  const int rel_item = rel->ColumnIndex("item");
  const size_t nrows = rel->rows();

  // Per-row verdicts, written into disjoint slots by the morsel loop.
  std::vector<uint8_t> match;
  std::vector<double> score;
  if (scored)
    score.assign(nrows, 0.0);
  else
    match.assign(nrows, 0);

  if (!degenerate && nrows > 0) {
    // Serial pre-pass: discover the containers on this probe's input and
    // build their probe state (get-or-build the index / resolve spans /
    // corpus stats) once, so the parallel loop below only reads.
    std::unordered_map<int32_t, ContainerState> states;
    for (size_t r = 0; r < nrows; ++r) {
      if (StopAt(fl, r)) break;
      const Item it = rel->ItemAt(rel_item, r);
      if (!it.is_node()) continue;
      const int32_t cid = it.node().container;
      auto found = states.find(cid);
      if (found == states.end())
        found = states
                    .emplace(cid, MakeState(mgr, fl, mgr.container(cid),
                                            groups, scored))
                    .first;
      ++found->second.rows;
    }
    for (const auto& [cid, st] : states) {
      if (st.idx)
        fl.stats.ft_index_probes += st.rows;
      else
        fl.stats.ft_scan_probes += st.rows;
    }

    // Morsel-parallel row loop: each row resolves independently (disjoint
    // output slots, read-only shared state), stitched by position.
    const int chunks = PlanChunks(fl.exec_threads(), nrows);
    ParallelChunks(chunks, nrows, [&](int, size_t b, size_t e) {
      std::string folded;
      std::vector<std::string> toks;
      std::vector<std::pair<int64_t, int64_t>> tfs;
      std::vector<std::tuple<int64_t, size_t, int64_t>> triples;
      for (size_t r = b; r < e; ++r) {
        if (StopAt(fl, r - b)) break;
        const Item it = rel->ItemAt(rel_item, r);
        if (!it.is_node()) continue;
        const NodeRef nr = it.node();
        // A stop request can truncate the pre-pass; rows whose container
        // never got a state stay unmatched (the post-operator governance
        // checkpoint converts the stop into a typed Status anyway).
        auto found = states.find(nr.container);
        if (found == states.end()) continue;
        const ContainerState& st = found->second;
        const DocumentContainer& doc = *st.doc;
        const int64_t lo = nr.pre;
        const int64_t hi = nr.pre + doc.SizeAt(nr.pre);
        if (st.idx) {
          const FullTextIndex& idx = *st.idx;
          if (!scored) {
            bool all = true;
            for (size_t g = 0; g < groups.size() && all; ++g)
              all = st.group_possible[g] &&
                    GroupInRange(idx, st.spans[g], lo, hi);
            match[r] = all ? 1 : 0;
          } else {
            triples.clear();
            for (size_t g = 0; g < groups.size(); ++g) {
              if (!st.group_possible[g]) continue;
              tfs.clear();
              GroupTfsInRange(idx, st.spans[g], lo, hi, &tfs);
              for (const auto& [pre, tf] : tfs)
                triples.emplace_back(pre, g, tf);
            }
            // (pre, group) ascending = the scan path's accumulation order.
            std::sort(triples.begin(), triples.end());
            double s = 0.0;
            for (const auto& [pre, g, tf] : triples)
              s += Bm25Term(static_cast<double>(tf), st.df[g], st.n_docs,
                            static_cast<double>(idx.TextLen(pre)),
                            st.avg_len);
            score[r] = s;
          }
        } else {
          // Naive fallback: tokenize every text node under the subtree.
          const StringPool& pool = mgr.strings();
          std::vector<uint8_t> seen(groups.size(), 0);
          size_t remaining = groups.size();
          double s = 0.0;
          for (int64_t pre = doc.SkipUnused(lo); pre <= hi;
               pre = doc.SkipUnused(pre + 1)) {
            if (doc.KindAt(pre) != NodeKind::kText) continue;
            TokensOf(pool, doc, pre, &folded, &toks);
            for (size_t g = 0; g < groups.size(); ++g) {
              const int64_t tf = GroupTf(toks, groups[g]);
              if (tf <= 0) continue;
              if (scored) {
                s += Bm25Term(static_cast<double>(tf), st.df[g], st.n_docs,
                              static_cast<double>(toks.size()), st.avg_len);
              } else if (!seen[g]) {
                seen[g] = 1;
                --remaining;
              }
            }
            if (!scored && remaining == 0) break;
          }
          if (scored)
            score[r] = s;
          else
            match[r] = remaining == 0 ? 1 : 0;
        }
      }
    });
    if (chunks > 1) fl.stats.par_tasks += chunks;
  }

  // Serial per-iteration aggregation in rel row order: any-match for
  // ft:contains, summed score for ft:score — identical on both paths.
  std::vector<uint8_t> agg_b;
  std::vector<double> agg_d;
  if (scored)
    agg_d.assign(loop->rows(), 0.0);
  else
    agg_b.assign(loop->rows(), 0);
  std::unordered_map<int64_t, size_t> loop_row;
  loop_row.reserve(loop->rows());
  for (size_t r = 0; r < loop->rows(); ++r)
    loop_row.emplace(loop->I64At(0, r), r);
  for (size_t r = 0; r < nrows && !degenerate; ++r) {
    auto it = loop_row.find(rel->I64At(rel_iter, r));
    if (it == loop_row.end()) continue;
    if (scored)
      agg_d[it->second] += score[r];
    else
      agg_b[it->second] |= match[r];
  }

  std::vector<Item> out_val(loop->rows());
  for (size_t r = 0; r < loop->rows(); ++r)
    out_val[r] = scored ? Item::Double(agg_d[r])
                        : Item::Bool(agg_b[r] != 0);

  auto t = Table::Make();
  t->AddColumn("iter", loop->raw_col(0), loop->col_sel(0));
  t->AddColumn("item", Column::MakeItem(std::move(out_val)));
  if (loop->props().is_key(loop->name(0))) t->props().key.insert("iter");
  if (loop->props().is_dense(loop->name(0))) t->props().dense.insert("iter");
  if (loop->props().OrderedBy({loop->name(0)})) t->props().ord = {"iter"};
  return t;
}

}  // namespace alg
}  // namespace mxq
