// alg::TextProbe — the fulltext predicate operator (docs/fulltext.md).
//
// Evaluates ft:contains / ft:score over a loop-lifted node sequence: for
// each loop iteration, does any node in the group's sequence contain every
// query group (a group = one string-literal argument; multi-token groups
// are phrases), and what is the summed BM25 score of its matching nodes.
//
// Two physically different, bit-identical paths:
//   * index path (ExecFlags::fulltext): per-container inverted index;
//     existence and tf come from binary-search probes of posting spans
//     (k-way position merge for phrases), morsel-parallel over input rows;
//   * scan fallback: tokenize every text node under each candidate subtree
//     with the same tokenizer and count matches directly.
// The differential suite (tests/fulltext_test.cc) holds the two paths
// byte-identical across the kernel-toggle matrix and thread widths.

#ifndef MXQ_FULLTEXT_TEXT_PROBE_H_
#define MXQ_FULLTEXT_TEXT_PROBE_H_

#include <string>
#include <vector>

#include "algebra/ops.h"
#include "common/status.h"

namespace mxq {
namespace alg {

/// `rel`: (iter, pos, item) node sequence; `loop`: the loop relation (col 0
/// = iter). `args`: the query's string-literal arguments, one group each.
/// Returns (iter, item) with one row per loop iteration: xs:boolean
/// (`scored` = false, ft:contains) or xs:double (`scored` = true,
/// ft:score; 0.0 for iterations with no match). Non-node and attribute
/// items never match and score 0.
Result<TablePtr> TextProbe(DocumentManager& mgr, const ExecFlags& fl,
                           const TablePtr& rel, const TablePtr& loop,
                           const std::vector<std::string>& args, bool scored);

}  // namespace alg
}  // namespace mxq

#endif  // MXQ_FULLTEXT_TEXT_PROBE_H_
