// Fulltext tokenizer (docs/fulltext.md "Tokenization").
//
// One tokenization, two consumers: the index builder (fulltext/index.cc)
// and the naive scan fallback (fulltext/text_probe.cc) must segment and
// fold text identically, or the differential suite's byte-identity claim is
// vacuous. The rules are deliberately simple and locale-free:
//
//   * a token is a maximal run of [0-9A-Za-z] or bytes >= 0x80 (UTF-8
//     sequences pass through whole, so non-ASCII words are one token);
//   * every other byte is a separator;
//   * ASCII letters are folded to lower case; non-ASCII bytes are kept
//     verbatim (no Unicode case folding — documented dialect restriction).
//
// Token positions are 0-based ordinals within one text node; phrase
// matching means consecutive positions in the *same* text node.

#ifndef MXQ_FULLTEXT_TOKENIZER_H_
#define MXQ_FULLTEXT_TOKENIZER_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace mxq {
namespace ft {

inline bool IsTokenByte(unsigned char c) {
  return (c >= '0' && c <= '9') || (c >= 'A' && c <= 'Z') ||
         (c >= 'a' && c <= 'z') || c >= 0x80;
}

inline char FoldByte(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c + ('a' - 'A')) : c;
}

/// Appends the case-folded image of `raw` to `*out` (cleared first).
inline void FoldInto(std::string_view raw, std::string* out) {
  out->clear();
  out->reserve(raw.size());
  for (char c : raw) out->push_back(FoldByte(c));
}

/// Calls fn(raw_token, position) for each token of `text`, left to right.
/// `raw_token` is the unfolded substring (views into `text`); positions are
/// 0-based token ordinals.
template <class F>
inline void Tokenize(std::string_view text, F&& fn) {
  const size_t n = text.size();
  size_t i = 0;
  int32_t pos = 0;
  while (i < n) {
    while (i < n && !IsTokenByte(static_cast<unsigned char>(text[i]))) ++i;
    const size_t b = i;
    while (i < n && IsTokenByte(static_cast<unsigned char>(text[i]))) ++i;
    if (i > b) fn(text.substr(b, i - b), pos++);
  }
}

/// Number of tokens in `text` (the per-text-node document length BM25 uses).
inline int64_t CountTokens(std::string_view text) {
  int64_t n = 0;
  Tokenize(text, [&](std::string_view, int32_t) { ++n; });
  return n;
}

}  // namespace ft
}  // namespace mxq

#endif  // MXQ_FULLTEXT_TOKENIZER_H_
