// XPath axes and node tests over the pre|size|level encoding.

#ifndef MXQ_STAIRCASE_AXIS_H_
#define MXQ_STAIRCASE_AXIS_H_

#include <cstdint>
#include <string>

#include "storage/document.h"

namespace mxq {

enum class Axis : uint8_t {
  kChild = 0,
  kDescendant,
  kDescendantOrSelf,
  kSelf,
  kAttribute,
  kParent,
  kAncestor,
  kAncestorOrSelf,
  kFollowing,
  kPreceding,
  kFollowingSibling,
  kPrecedingSibling,
};

const char* AxisName(Axis axis);

inline bool IsReverseAxis(Axis axis) {
  return axis == Axis::kParent || axis == Axis::kAncestor ||
         axis == Axis::kAncestorOrSelf || axis == Axis::kPreceding ||
         axis == Axis::kPrecedingSibling;
}

/// \brief Node test of an XPath step: kind test plus optional name test.
struct NodeTest {
  enum class Sel : uint8_t {
    kAnyNode = 0,  // node()
    kAnyElem,      // * (principal node kind: element)
    kNamedElem,    // name test on elements
    kText,         // text()
    kComment,      // comment()
    kPI,           // processing-instruction()
    kNamedAttr,    // @name (attribute axis only)
    kAnyAttr,      // @*
  };

  Sel sel = Sel::kAnyNode;
  StrId qn = kInvalidStrId;

  static NodeTest AnyNode() { return {Sel::kAnyNode, kInvalidStrId}; }
  static NodeTest AnyElem() { return {Sel::kAnyElem, kInvalidStrId}; }
  static NodeTest Named(StrId qn) { return {Sel::kNamedElem, qn}; }
  static NodeTest Text() { return {Sel::kText, kInvalidStrId}; }

  /// Does the (non-attribute) node at `pre` match?
  bool Matches(const DocumentContainer& c, int64_t pre) const {
    switch (sel) {
      case Sel::kAnyNode:
        return c.KindAt(pre) != NodeKind::kUnused;
      case Sel::kAnyElem:
        return c.KindAt(pre) == NodeKind::kElem;
      case Sel::kNamedElem:
        return c.KindAt(pre) == NodeKind::kElem && c.RefAt(pre) == qn;
      case Sel::kText:
        return c.KindAt(pre) == NodeKind::kText;
      case Sel::kComment:
        return c.KindAt(pre) == NodeKind::kComment;
      case Sel::kPI:
        return c.KindAt(pre) == NodeKind::kPI;
      case Sel::kNamedAttr:
      case Sel::kAnyAttr:
        return false;  // attribute tests never match tree nodes
    }
    return false;
  }

  bool MatchesAttr(const DocumentContainer& c, int64_t row) const {
    if (sel == Sel::kAnyAttr || sel == Sel::kAnyNode) return true;
    return sel == Sel::kNamedAttr && c.AttrQn(row) == qn;
  }

  /// True when the test selects elements with one specific tag — the case
  /// the nametest-pushdown variant (paper §3.2) accelerates via the element
  /// name index.
  bool is_named_elem() const { return sel == Sel::kNamedElem; }
};

/// \brief Instrumentation counters: the paper's claim is that staircase join
/// touches at most |result| + |context| document slots (§2, §3).
struct ScanStats {
  int64_t slots_touched = 0;    // document slots inspected
  int64_t contexts_pruned = 0;  // context nodes removed by pruning
  int64_t results = 0;          // result tuples emitted

  void Reset() { *this = ScanStats{}; }
};

}  // namespace mxq

#endif  // MXQ_STAIRCASE_AXIS_H_
