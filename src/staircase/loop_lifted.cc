#include "staircase/loop_lifted.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <set>
#include <unordered_map>

#include "common/counting_sort.h"
#include "staircase/staircase.h"

namespace mxq {

namespace {

constexpr int64_t kInf = std::numeric_limits<int64_t>::max();

inline void Touch(ScanStats* stats, int64_t n = 1) {
  if (stats) stats->slots_touched += n;
}
inline void Pruned(ScanStats* stats, int64_t n = 1) {
  if (stats) stats->contexts_pruned += n;
}

/// Amortized cancellation checkpoint for the scan loops
/// (docs/robustness.md): one relaxed-atomic poll every 4 Ki ticks. A true
/// result means "stop scanning now" — the helper's truncated output is
/// converted into a typed Status by the evaluator's governance checkpoint.
class CancelTick {
 public:
  explicit CancelTick(const ExecContext* ctx) : ctx_(ctx) {}
  bool Stop() {
    if (stopped_) return true;  // sticky: nested loops all unwind
    if (ctx_ == nullptr) return false;
    if ((++n_ & 4095) != 0) return false;
    stopped_ = ctx_->StopRequested();
    return stopped_;
  }

 private:
  const ExecContext* ctx_;
  uint64_t n_ = 0;
  bool stopped_ = false;
};

using Pairs = std::vector<std::pair<int64_t, int64_t>>;  // (node, iter)

void SortUniqueInto(Pairs* acc, LLStepResult* out) {
  // Both components are dense integer domains (pre ranks bounded by the
  // document, iters bounded by the loop): the counting scatter of
  // common/counting_sort.h replaces the comparison sort on all but
  // degenerate inputs. The staircase layer has no ExecFlags, so the pass
  // fans out at the process default width (env MXQ_THREADS) — the parallel
  // counting pass is bit-identical to the serial one, so this stays a pure
  // performance decision.
  SortPairsDense(acc, DefaultExecThreads());
  acc->erase(std::unique(acc->begin(), acc->end()), acc->end());
  out->iter.reserve(acc->size());
  out->node.reserve(acc->size());
  for (auto& [node, iter] : *acc) {
    out->iter.push_back(iter);
    out->node.push_back(node);
  }
}

// ---------------------------------------------------------------------------
// child — the paper's Figure 6, verbatim structure
// ---------------------------------------------------------------------------

void LLChild(const DocumentContainer& doc, std::span<const int64_t> iters,
             std::span<const int64_t> pres, const NodeTest& test,
             ScanStats* stats, const ExecContext* cancel, LLStepResult* out) {
  CancelTick tick(cancel);
  struct Active {
    int64_t eos;      // end of the context's subtree range
    int64_t nxt_chld; // next candidate child slot
    size_t fst_iter;  // first ctx row of this context node
    size_t lst_iter;  // last ctx row of this context node
  };
  std::vector<Active> active;
  size_t nxt_ctx = 0;
  const size_t n = pres.size();

  // push_ctx (Fig 6): groups all iterations of the context node at nxt_ctx.
  auto push_ctx = [&]() {
    int64_t cur = pres[nxt_ctx];
    Active a{cur + doc.SizeAt(cur), cur + 1, nxt_ctx, nxt_ctx};
    while (nxt_ctx < n && pres[nxt_ctx] == cur) ++nxt_ctx;
    a.lst_iter = nxt_ctx - 1;
    active.push_back(a);
  };

  // inner_loop_child (Fig 6): produce children of the top context up to
  // `eos_arg`, skipping grandchild subtrees (v += size(v)+1).
  auto inner_loop_child = [&](int64_t eos_arg) {
    Active& top = active.back();
    int64_t v = top.nxt_chld;
    while (v <= eos_arg) {
      if (tick.Stop()) break;
      Touch(stats);
      if (doc.IsUnused(v)) {
        v += doc.SizeAt(v) + 1;
        continue;
      }
      if (test.Matches(doc, v)) {
        for (size_t k = top.fst_iter; k <= top.lst_iter; ++k) {
          out->iter.push_back(iters[k]);
          out->node.push_back(v);
        }
      }
      v += doc.SizeAt(v) + 1;
    }
    top.nxt_chld = v;
  };

  while (nxt_ctx < n) {
    if (tick.Stop()) return;
    if (active.empty()) {
      push_ctx();                                    // 1©
    } else if (active.back().eos >= pres[nxt_ctx]) {
      inner_loop_child(pres[nxt_ctx]);               // 2©
      push_ctx();                                    // 3©
    } else {
      inner_loop_child(active.back().eos);           // 4©
      active.pop_back();                             // 5©
    }
  }
  while (!active.empty()) {
    if (tick.Stop()) return;
    inner_loop_child(active.back().eos);             // 6©
    active.pop_back();                               // 7©
  }
}

// ---------------------------------------------------------------------------
// descendant / descendant-or-self
// ---------------------------------------------------------------------------

// Stack of active contexts; at most one active context per iter (per-iter
// pruning). All stack entries are nested, so every slot inside the top
// entry's range is a descendant of every active context; emission per slot
// is simply "all active iters".
void LLDescendant(const DocumentContainer& doc, std::span<const int64_t> iters,
                  std::span<const int64_t> pres, const NodeTest& test,
                  bool or_self, ScanStats* stats, const ExecContext* cancel,
                  LLStepResult* out) {
  CancelTick tick(cancel);
  struct Entry {
    int64_t eos;
    std::vector<int64_t> added;  // iters this entry activated
  };
  std::vector<Entry> stack;
  std::set<int64_t> active;
  size_t i = 0;
  const size_t n = pres.size();
  int64_t p = 0;

  auto emit_for = [&](int64_t node, const auto& iter_range) {
    for (int64_t it : iter_range) {
      out->iter.push_back(it);
      out->node.push_back(node);
    }
  };

  while (true) {
    if (tick.Stop()) break;
    if (stack.empty()) {
      if (i >= n) break;
      p = pres[i];  // skipping: jump straight to the next context node
    }
    // Deactivate finished contexts.
    while (!stack.empty() && stack.back().eos < p) {
      for (int64_t it : stack.back().added) active.erase(it);
      stack.pop_back();
    }
    if (stack.empty() && (i >= n || pres[i] != p)) continue;

    if (i < n && pres[i] == p) {
      // Context group starts at p. Gather its new iters (per-iter pruning).
      Touch(stats);
      std::vector<int64_t> added;
      while (i < n && pres[i] == p) {
        if (active.count(iters[i]))
          Pruned(stats);
        else
          added.push_back(iters[i]);
        ++i;
      }
      bool match = test.Matches(doc, p);
      if (match) {
        if (or_self) {
          // p is a self-result for its own (new) iters and a descendant
          // result for already-active iters: merge for iter order.
          std::vector<int64_t> merged;
          std::merge(active.begin(), active.end(), added.begin(), added.end(),
                     std::back_inserter(merged));
          emit_for(p, merged);
        } else {
          emit_for(p, active);
        }
      }
      if (!added.empty()) {
        for (int64_t it : added) active.insert(it);
        stack.push_back({p + doc.SizeAt(p), std::move(added)});
      }
      ++p;
      continue;
    }

    Touch(stats);
    if (doc.IsUnused(p)) {
      p += doc.SizeAt(p) + 1;
      continue;
    }
    if (test.Matches(doc, p)) emit_for(p, active);
    ++p;
  }
}

// ---------------------------------------------------------------------------
// path-stack walker shared by ancestor / parent / siblings
// ---------------------------------------------------------------------------

class PathWalker {
 public:
  PathWalker(const DocumentContainer& doc, ScanStats* stats)
      : doc_(doc), stats_(stats) {}

  void AdvanceTo(int64_t c) {
    while (!stack_.empty() && stack_.back().end < c) stack_.pop_back();
    while (p_ < c) {
      Touch(stats_);
      int64_t sz = doc_.SizeAt(p_);
      if (!doc_.IsUnused(p_) && p_ + sz >= c) {
        stack_.push_back({p_, p_ + sz});
        ++p_;
      } else {
        p_ += sz + 1;
      }
    }
  }

  struct Entry {
    int64_t pre;
    int64_t end;
  };
  const std::vector<Entry>& stack() const { return stack_; }

 private:
  const DocumentContainer& doc_;
  ScanStats* stats_;
  std::vector<Entry> stack_;
  int64_t p_ = 0;
};

// Per-iter partitioning: for iter i, ancestors at or before the previous
// context of that same iter were already emitted for it.
void LLAncestor(const DocumentContainer& doc, std::span<const int64_t> iters,
                std::span<const int64_t> pres, const NodeTest& test,
                bool or_self, ScanStats* stats, LLStepResult* out) {
  PathWalker walk(doc, stats);
  std::unordered_map<int64_t, int64_t> last;  // iter -> previous context pre
  Pairs acc;
  acc.reserve(pres.size());
  size_t i = 0;
  const size_t n = pres.size();
  while (i < n) {
    int64_t c = pres[i];
    size_t fst = i;
    while (i < n && pres[i] == c) ++i;
    walk.AdvanceTo(c);
    for (const auto& a : walk.stack()) {
      if (!test.Matches(doc, a.pre)) continue;
      for (size_t k = fst; k < i; ++k) {
        auto f = last.find(iters[k]);
        // ">=": the previous context of this iter may itself be an ancestor
        // of c and has not been emitted for the iter yet.
        if (f == last.end() || a.pre >= f->second)
          acc.emplace_back(a.pre, iters[k]);
      }
    }
    if (or_self && test.Matches(doc, c))
      for (size_t k = fst; k < i; ++k) acc.emplace_back(c, iters[k]);
    for (size_t k = fst; k < i; ++k) last[iters[k]] = c;
  }
  SortUniqueInto(&acc, out);
}

void LLParent(const DocumentContainer& doc, std::span<const int64_t> iters,
              std::span<const int64_t> pres, const NodeTest& test,
              ScanStats* stats, LLStepResult* out) {
  PathWalker walk(doc, stats);
  Pairs acc;
  acc.reserve(pres.size());
  size_t i = 0;
  const size_t n = pres.size();
  while (i < n) {
    int64_t c = pres[i];
    size_t fst = i;
    while (i < n && pres[i] == c) ++i;
    walk.AdvanceTo(c);
    if (walk.stack().empty()) continue;
    int64_t par = walk.stack().back().pre;
    if (!test.Matches(doc, par)) continue;
    for (size_t k = fst; k < i; ++k) acc.emplace_back(par, iters[k]);
  }
  SortUniqueInto(&acc, out);
}

void LLSiblings(const DocumentContainer& doc, std::span<const int64_t> iters,
                std::span<const int64_t> pres, const NodeTest& test,
                bool following, ScanStats* stats, LLStepResult* out) {
  PathWalker walk(doc, stats);
  Pairs acc;
  acc.reserve(pres.size());
  size_t i = 0;
  const size_t n = pres.size();
  while (i < n) {
    int64_t c = pres[i];
    size_t fst = i;
    while (i < n && pres[i] == c) ++i;
    walk.AdvanceTo(c);
    if (walk.stack().empty()) continue;  // fragment root: no siblings
    int64_t par = walk.stack().back().pre;
    int64_t par_end = walk.stack().back().end;
    int64_t from = following ? c + doc.SizeAt(c) + 1 : par + 1;
    int64_t to = following ? par_end : c - 1;
    for (int64_t s = from; s <= to;) {
      Touch(stats);
      if (!doc.IsUnused(s) && test.Matches(doc, s))
        for (size_t k = fst; k < i; ++k) acc.emplace_back(s, iters[k]);
      s += doc.SizeAt(s) + 1;
    }
  }
  SortUniqueInto(&acc, out);
}

// ---------------------------------------------------------------------------
// following / preceding
// ---------------------------------------------------------------------------

void LLFollowing(const DocumentContainer& doc, std::span<const int64_t> iters,
                 std::span<const int64_t> pres, const NodeTest& test,
                 ScanStats* stats, const ExecContext* cancel,
                 LLStepResult* out) {
  CancelTick tick(cancel);
  auto frags = FragmentRanges(doc);
  size_t i = 0;
  const size_t n = pres.size();
  for (auto [root, end] : frags) {
    // Per-iter pruning: within a fragment an iter's following regions are
    // nested; only the minimal subtree end matters.
    std::unordered_map<int64_t, int64_t> min_end;
    while (i < n && pres[i] <= end) {
      int64_t e = pres[i] + doc.SizeAt(pres[i]);
      auto [f, inserted] = min_end.try_emplace(iters[i], e);
      if (!inserted) {
        Pruned(stats);
        f->second = std::min(f->second, e);
      }
      ++i;
    }
    if (min_end.empty()) continue;
    // Partition along pre (Fig 2): iters activate as p passes their region
    // start.
    std::vector<std::pair<int64_t, int64_t>> ev(min_end.begin(),
                                                min_end.end());
    for (auto& [it, e] : ev) std::swap(it, e);  // -> (end, iter)
    std::sort(ev.begin(), ev.end());
    std::set<int64_t> act;
    size_t e_idx = 0;
    for (int64_t p = ev[0].first + 1; p <= end;) {
      if (tick.Stop()) return;
      while (e_idx < ev.size() && ev[e_idx].first < p)
        act.insert(ev[e_idx++].second);
      Touch(stats);
      if (doc.IsUnused(p)) {
        p += doc.SizeAt(p) + 1;
        continue;
      }
      if (test.Matches(doc, p))
        for (int64_t it : act) {
          out->iter.push_back(it);
          out->node.push_back(p);
        }
      ++p;
    }
  }
}

void LLPreceding(const DocumentContainer& doc, std::span<const int64_t> iters,
                 std::span<const int64_t> pres, const NodeTest& test,
                 ScanStats* stats, const ExecContext* cancel,
                 LLStepResult* out) {
  CancelTick tick(cancel);
  auto frags = FragmentRanges(doc);
  size_t i = 0;
  const size_t n = pres.size();
  std::vector<int64_t> emit_iters;
  for (auto [root, end] : frags) {
    // Per-iter pruning: keep the maximal context of each iter.
    std::unordered_map<int64_t, int64_t> max_start;
    while (i < n && pres[i] <= end) {
      auto [f, inserted] = max_start.try_emplace(iters[i], pres[i]);
      if (!inserted) {
        Pruned(stats);
        f->second = std::max(f->second, pres[i]);
      }
      ++i;
    }
    if (max_start.empty()) continue;
    // (start, iter) sorted by start; iters deactivate as p reaches their
    // context, and are excluded per slot while the slot's subtree still
    // contains their context (ancestor exclusion).
    std::vector<std::pair<int64_t, int64_t>> sv(max_start.begin(),
                                                max_start.end());
    for (auto& [it, s] : sv) std::swap(it, s);  // -> (start, iter)
    std::sort(sv.begin(), sv.end());
    int64_t max_s = sv.back().first;
    size_t head = 0;
    for (int64_t p = root; p < max_s; ++p) {
      if (tick.Stop()) return;
      while (head < sv.size() && sv[head].first <= p) ++head;
      Touch(stats);
      if (doc.IsUnused(p)) {
        p += doc.SizeAt(p);  // +1 from the loop increment
        continue;
      }
      if (!test.Matches(doc, p)) continue;
      // Exclude iters whose context lies inside p's subtree.
      int64_t p_end = p + doc.SizeAt(p);
      auto cut = std::upper_bound(
          sv.begin() + head, sv.end(), p_end,
          [](int64_t key, const auto& e) { return key < e.first; });
      emit_iters.clear();
      for (auto it = cut; it != sv.end(); ++it)
        emit_iters.push_back(it->second);
      std::sort(emit_iters.begin(), emit_iters.end());
      for (int64_t it : emit_iters) {
        out->iter.push_back(it);
        out->node.push_back(p);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// self / attribute
// ---------------------------------------------------------------------------

void LLSelf(const DocumentContainer& doc, std::span<const int64_t> iters,
            std::span<const int64_t> pres, const NodeTest& test,
            ScanStats* stats, LLStepResult* out) {
  for (size_t k = 0; k < pres.size(); ++k) {
    Touch(stats);
    if (test.Matches(doc, pres[k])) {
      out->iter.push_back(iters[k]);
      out->node.push_back(pres[k]);
    }
  }
}

void LLAttribute(const DocumentContainer& doc, std::span<const int64_t> iters,
                 std::span<const int64_t> pres, const NodeTest& test,
                 ScanStats* stats, LLStepResult* out) {
  std::vector<int64_t> rows;
  size_t i = 0;
  const size_t n = pres.size();
  while (i < n) {
    int64_t c = pres[i];
    size_t fst = i;
    while (i < n && pres[i] == c) ++i;
    Touch(stats);
    doc.AttrsOf(c, &rows);
    for (int64_t row : rows) {
      if (!test.MatchesAttr(doc, row)) continue;
      for (size_t k = fst; k < i; ++k) {
        out->iter.push_back(iters[k]);
        out->node.push_back(row);
      }
    }
  }
}

}  // namespace

LLStepResult LoopLiftedStaircase(const DocumentContainer& doc, Axis axis,
                                 std::span<const int64_t> ctx_iter,
                                 std::span<const int64_t> ctx_pre,
                                 const NodeTest& test, ScanStats* stats,
                                 const ExecContext* cancel) {
  LLStepResult out;
  if (ctx_pre.empty()) return out;
  assert(ctx_iter.size() == ctx_pre.size());
  switch (axis) {
    case Axis::kChild:
      LLChild(doc, ctx_iter, ctx_pre, test, stats, cancel, &out);
      break;
    case Axis::kDescendant:
      LLDescendant(doc, ctx_iter, ctx_pre, test, false, stats, cancel, &out);
      break;
    case Axis::kDescendantOrSelf:
      LLDescendant(doc, ctx_iter, ctx_pre, test, true, stats, cancel, &out);
      break;
    case Axis::kAncestor:
      LLAncestor(doc, ctx_iter, ctx_pre, test, false, stats, &out);
      break;
    case Axis::kAncestorOrSelf:
      LLAncestor(doc, ctx_iter, ctx_pre, test, true, stats, &out);
      break;
    case Axis::kParent:
      LLParent(doc, ctx_iter, ctx_pre, test, stats, &out);
      break;
    case Axis::kFollowing:
      LLFollowing(doc, ctx_iter, ctx_pre, test, stats, cancel, &out);
      break;
    case Axis::kPreceding:
      LLPreceding(doc, ctx_iter, ctx_pre, test, stats, cancel, &out);
      break;
    case Axis::kFollowingSibling:
      LLSiblings(doc, ctx_iter, ctx_pre, test, true, stats, &out);
      break;
    case Axis::kPrecedingSibling:
      LLSiblings(doc, ctx_iter, ctx_pre, test, false, stats, &out);
      break;
    case Axis::kSelf:
      LLSelf(doc, ctx_iter, ctx_pre, test, stats, &out);
      break;
    case Axis::kAttribute:
      LLAttribute(doc, ctx_iter, ctx_pre, test, stats, &out);
      break;
  }
  if (stats) stats->results += static_cast<int64_t>(out.node.size());
  return out;
}

LLStepResult IterativeStaircase(const DocumentContainer& doc, Axis axis,
                                std::span<const int64_t> ctx_iter,
                                std::span<const int64_t> ctx_pre,
                                const NodeTest& test, ScanStats* stats,
                                const ExecContext* cancel) {
  // Regroup the (pre, iter)-sorted input by iteration: per iter the pres are
  // already in document order.
  std::unordered_map<int64_t, std::vector<int64_t>> per_iter;
  per_iter.reserve(ctx_pre.size());
  std::vector<int64_t> iter_order;
  iter_order.reserve(ctx_pre.size());
  for (size_t k = 0; k < ctx_pre.size(); ++k) {
    auto [f, inserted] = per_iter.try_emplace(ctx_iter[k]);
    if (inserted) iter_order.push_back(ctx_iter[k]);
    f->second.push_back(ctx_pre[k]);
  }
  std::sort(iter_order.begin(), iter_order.end());

  Pairs acc;
  for (int64_t it : iter_order) {
    // Each invocation is a full document pass, so the per-iteration poll
    // here is the natural checkpoint granularity for this mode.
    if (cancel != nullptr && cancel->StopRequested()) break;
    // One full staircase-join invocation per iteration — the repetitive
    // scans Figure 12 quantifies.
    std::vector<int64_t> res =
        StaircaseJoin(doc, axis, per_iter[it], test, stats);
    for (int64_t v : res) acc.emplace_back(v, it);
  }
  LLStepResult out;
  SortPairsDense(&acc, DefaultExecThreads());
  out.iter.reserve(acc.size());
  out.node.reserve(acc.size());
  for (auto& [node, it] : acc) {
    out.iter.push_back(it);
    out.node.push_back(node);
  }
  if (stats) stats->results += static_cast<int64_t>(out.node.size());
  return out;
}

// ---------------------------------------------------------------------------
// Predicate pushdown (paper §3.2)
// ---------------------------------------------------------------------------

LLStepResult LoopLiftedStaircaseCandidates(const DocumentContainer& doc,
                                           Axis axis,
                                           std::span<const int64_t> ctx_iter,
                                           std::span<const int64_t> ctx_pre,
                                           std::span<const int64_t> candidates,
                                           ScanStats* stats,
                                           const ExecContext* cancel) {
  LLStepResult out;
  if (ctx_pre.empty() || candidates.empty()) return out;
  CancelTick tick(cancel);
  const size_t n = ctx_pre.size();

  if (axis == Axis::kChild) {
    // For each context, binary-search its candidate range and filter by
    // level: v in (c, c+size(c)] is a child iff level(v) == level(c)+1.
    Pairs acc;
    size_t i = 0;
    while (i < n) {
      if (tick.Stop()) break;
      int64_t c = ctx_pre[i];
      size_t fst = i;
      while (i < n && ctx_pre[i] == c) ++i;
      Touch(stats);
      int64_t eos = c + doc.SizeAt(c);
      auto lo = std::upper_bound(candidates.begin(), candidates.end(), c);
      int32_t child_level = doc.LevelAt(c) + 1;
      for (; lo != candidates.end() && *lo <= eos; ++lo) {
        Touch(stats);
        if (doc.LevelAt(*lo) != child_level) continue;
        for (size_t k = fst; k < i; ++k) acc.emplace_back(*lo, ctx_iter[k]);
      }
    }
    SortUniqueInto(&acc, &out);
    if (stats) stats->results += static_cast<int64_t>(out.node.size());
    return out;
  }

  assert(axis == Axis::kDescendant || axis == Axis::kDescendantOrSelf);
  const bool or_self = axis == Axis::kDescendantOrSelf;

  struct Entry {
    int64_t eos;
    std::vector<int64_t> added;
  };
  std::vector<Entry> stack;
  std::set<int64_t> active;
  size_t i = 0;  // context cursor
  size_t j = 0;  // candidate cursor

  // Activates every context group with pre <= v.
  auto push_groups_upto = [&](int64_t v) {
    while (i < n && ctx_pre[i] <= v) {
      int64_t c = ctx_pre[i];
      while (!stack.empty() && stack.back().eos < c) {
        for (int64_t it : stack.back().added) active.erase(it);
        stack.pop_back();
      }
      Touch(stats);
      std::vector<int64_t> added;
      while (i < n && ctx_pre[i] == c) {
        if (active.count(ctx_iter[i]))
          Pruned(stats);
        else
          added.push_back(ctx_iter[i]);
        ++i;
      }
      if (!added.empty()) {
        for (int64_t it : added) active.insert(it);
        stack.push_back({c + doc.SizeAt(c), std::move(added)});
      }
    }
  };

  while (j < candidates.size()) {
    if (tick.Stop()) break;
    int64_t v = candidates[j];
    // or-self counts a context that is itself a candidate; plain descendant
    // activates contexts at v only after emitting v.
    push_groups_upto(or_self ? v : v - 1);
    while (!stack.empty() && stack.back().eos < v) {
      for (int64_t it : stack.back().added) active.erase(it);
      stack.pop_back();
    }
    if (stack.empty()) {
      if (i >= n) break;  // no active region can cover later candidates
      // Skipping: jump the candidate cursor to the next context region.
      int64_t next_ctx = ctx_pre[i];
      j = std::lower_bound(candidates.begin() + j, candidates.end(),
                           or_self ? next_ctx : next_ctx + 1) -
          candidates.begin();
      continue;
    }
    Touch(stats);
    for (int64_t it : active) {
      out.iter.push_back(it);
      out.node.push_back(v);
    }
    push_groups_upto(v);  // contexts exactly at v (plain descendant case)
    ++j;
  }
  if (stats) stats->results += static_cast<int64_t>(out.node.size());
  return out;
}

}  // namespace mxq
