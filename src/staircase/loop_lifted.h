// Loop-lifted staircase join (paper §3, Figure 6).
//
// Evaluates one XPath location step for the context node sequences of *all*
// iterations of an enclosing for-loop nest in a single sequential pass over
// the document encoding, instead of one pass per iteration.
//
// Input: the relational encoding of n context sequences as (iter, pre)
// pairs, sorted on (pre, iter) — context nodes in document order, with the
// iterations of each context clustered (§3: the algorithm ignores pos).
// Duplicate (iter, pre) pairs must have been removed.
//
// The three staircase techniques are lifted as described in §3:
//   Pruning      applies per iteration: a context is pruned only when it is
//                covered by another context *of the same iter*;
//   Partitioning the algorithm keeps a stack of active contexts with at
//                most one active context per iter;
//   Skipping     unchanged; at most |result| + |context| slots are touched.
//
// Output: (iter, pre) result pairs (or (iter, attribute-row) pairs for the
// attribute axis) in document order; nodes belonging to multiple iterations
// appear in iteration order (clustered per node).

#ifndef MXQ_STAIRCASE_LOOP_LIFTED_H_
#define MXQ_STAIRCASE_LOOP_LIFTED_H_

#include <span>
#include <vector>

#include "common/exec_context.h"
#include "staircase/axis.h"

namespace mxq {

/// \brief Result of a loop-lifted step: parallel iter / node columns.
struct LLStepResult {
  std::vector<int64_t> iter;
  std::vector<int64_t> node;  // pres, or attr rows for Axis::kAttribute
};

/// \brief Loop-lifted staircase join over all axes.
///
/// `cancel` (optional) is polled every few thousand touched slots
/// (docs/robustness.md): a stop request ends the scan early with a
/// truncated result, which the caller's governance checkpoint then
/// converts into a typed Status.
LLStepResult LoopLiftedStaircase(const DocumentContainer& doc, Axis axis,
                                 std::span<const int64_t> ctx_iter,
                                 std::span<const int64_t> ctx_pre,
                                 const NodeTest& test,
                                 ScanStats* stats = nullptr,
                                 const ExecContext* cancel = nullptr);

/// \brief Predicate-pushdown variant (paper §3.2): results are restricted to
/// a candidate node list (document order), typically from the element-name
/// index. Supports the child and descendant(-or-self) axes; skips context
/// work that cannot reach any candidate.
LLStepResult LoopLiftedStaircaseCandidates(const DocumentContainer& doc,
                                           Axis axis,
                                           std::span<const int64_t> ctx_iter,
                                           std::span<const int64_t> ctx_pre,
                                           std::span<const int64_t> candidates,
                                           ScanStats* stats = nullptr,
                                           const ExecContext* cancel = nullptr);

/// \brief The "iterative" reference strategy of Figure 12: plain staircase
/// join invoked once per iteration (one pass over the document per iter).
LLStepResult IterativeStaircase(const DocumentContainer& doc, Axis axis,
                                std::span<const int64_t> ctx_iter,
                                std::span<const int64_t> ctx_pre,
                                const NodeTest& test,
                                ScanStats* stats = nullptr,
                                const ExecContext* cancel = nullptr);

}  // namespace mxq

#endif  // MXQ_STAIRCASE_LOOP_LIFTED_H_
