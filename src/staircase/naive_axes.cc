#include "staircase/naive_axes.h"

#include <algorithm>

namespace mxq {

bool OnAxisNaive(const DocumentContainer& doc, Axis axis, int64_t c,
                 int64_t v) {
  if (doc.IsUnused(v) || doc.IsUnused(c)) return false;
  // All axes stay within the context node's fragment.
  if (doc.FragAt(v) != doc.FragAt(c)) return false;
  switch (axis) {
    case Axis::kSelf:
      return v == c;
    case Axis::kChild:
      return doc.ParentOf(v) == c;
    case Axis::kDescendant:
      return doc.IsAncestor(c, v);
    case Axis::kDescendantOrSelf:
      return v == c || doc.IsAncestor(c, v);
    case Axis::kParent:
      return doc.ParentOf(c) == v;
    case Axis::kAncestor:
      return doc.IsAncestor(v, c);
    case Axis::kAncestorOrSelf:
      return v == c || doc.IsAncestor(v, c);
    case Axis::kFollowing:
      return v > c + doc.SizeAt(c);
    case Axis::kPreceding:
      return v < c && !doc.IsAncestor(v, c);
    case Axis::kFollowingSibling:
      return v > c && doc.ParentOf(v) == doc.ParentOf(c) &&
             doc.ParentOf(c) >= 0;
    case Axis::kPrecedingSibling:
      return v < c && doc.ParentOf(v) == doc.ParentOf(c) &&
             doc.ParentOf(c) >= 0;
    case Axis::kAttribute:
      return false;  // handled separately
  }
  return false;
}

std::vector<int64_t> EvalAxisNaive(const DocumentContainer& doc, Axis axis,
                                   std::span<const int64_t> ctx,
                                   const NodeTest& test) {
  std::vector<int64_t> out;
  if (axis == Axis::kAttribute) {
    std::vector<int64_t> rows;
    for (int64_t c : ctx) {
      doc.AttrsOf(c, &rows);
      for (int64_t row : rows)
        if (test.MatchesAttr(doc, row)) out.push_back(row);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }
  int64_t n = doc.LogicalSlots();
  for (int64_t v = 0; v < n; ++v) {
    if (doc.IsUnused(v) || !test.Matches(doc, v)) continue;
    for (int64_t c : ctx) {
      if (OnAxisNaive(doc, axis, c, v)) {
        out.push_back(v);
        break;
      }
    }
  }
  return out;  // scan order == document order; `break` dedupes
}

}  // namespace mxq
