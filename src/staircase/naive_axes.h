// Naive (quadratic) XPath axis evaluation — the differential-testing oracle.
//
// Evaluates an axis step by checking the axis predicate between every
// document node and every context node, exactly following the XPath
// definitions. Deliberately simple and slow; used to validate both staircase
// join implementations and as the "no tree-aware join" lower baseline in the
// staircase micro-benchmarks.

#ifndef MXQ_STAIRCASE_NAIVE_AXES_H_
#define MXQ_STAIRCASE_NAIVE_AXES_H_

#include <span>
#include <vector>

#include "common/item.h"
#include "staircase/axis.h"

namespace mxq {

/// True iff `v` is on `axis` of context node `c` (both pres of `doc`).
bool OnAxisNaive(const DocumentContainer& doc, Axis axis, int64_t c,
                 int64_t v);

/// Result pres (document order, duplicate-free) of the step
/// `ctx/axis::test`, computed naively. Attribute axis results are attr rows.
std::vector<int64_t> EvalAxisNaive(const DocumentContainer& doc, Axis axis,
                                   std::span<const int64_t> ctx,
                                   const NodeTest& test);

}  // namespace mxq

#endif  // MXQ_STAIRCASE_NAIVE_AXES_H_
