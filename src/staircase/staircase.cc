#include "staircase/staircase.h"

#include <algorithm>
#include <cassert>

namespace mxq {

namespace {

inline void Touch(ScanStats* stats, int64_t n = 1) {
  if (stats) stats->slots_touched += n;
}
inline void Pruned(ScanStats* stats, int64_t n = 1) {
  if (stats) stats->contexts_pruned += n;
}

// ---------------------------------------------------------------------------
// descendant / descendant-or-self
// ---------------------------------------------------------------------------

// Pruning: with ctx sorted, a context inside the previous kept context's
// subtree region is covered (Fig 1). After pruning, descendant regions are
// pairwise disjoint, so a plain region scan partitions trivially and we skip
// straight from one region to the next (Fig 3).
void Descendant(const DocumentContainer& doc, std::span<const int64_t> ctx,
                const NodeTest& test, bool or_self, ScanStats* stats,
                std::vector<int64_t>* out) {
  int64_t kept_end = -1;
  for (int64_t c : ctx) {
    if (c <= kept_end) {  // covered: prune
      Pruned(stats);
      continue;
    }
    kept_end = c + doc.SizeAt(c);
    Touch(stats);
    if (or_self && test.Matches(doc, c)) out->push_back(c);
    for (int64_t p = c + 1; p <= kept_end;) {
      Touch(stats);
      if (doc.IsUnused(p)) {
        p += doc.SizeAt(p) + 1;
        continue;
      }
      if (test.Matches(doc, p)) out->push_back(p);
      ++p;
    }
  }
}

// ---------------------------------------------------------------------------
// child
// ---------------------------------------------------------------------------

// Stack-based partitioning (the plain-set specialization of the paper's
// Figure 6): contexts may be nested, so children of an outer context that
// follow an inner context's subtree must be produced after the inner
// context's children.
void Child(const DocumentContainer& doc, std::span<const int64_t> ctx,
           const NodeTest& test, ScanStats* stats,
           std::vector<int64_t>* out) {
  struct Active {
    int64_t eos;      // last slot of the context's subtree
    int64_t nxt;      // next candidate child slot
  };
  std::vector<Active> stack;

  // Emits children of the top context up to slot `limit`, skipping over
  // grandchild subtrees via size arithmetic.
  auto inner_loop = [&](int64_t limit) {
    Active& top = stack.back();
    int64_t v = top.nxt;
    while (v <= limit) {
      Touch(stats);
      if (doc.IsUnused(v)) {
        v += doc.SizeAt(v) + 1;
        continue;
      }
      if (test.Matches(doc, v)) out->push_back(v);
      v += doc.SizeAt(v) + 1;
    }
    top.nxt = v;
  };

  size_t i = 0;
  while (i < ctx.size()) {
    int64_t c = ctx[i];
    if (stack.empty()) {
      stack.push_back({c + doc.SizeAt(c), c + 1});
      ++i;
    } else if (stack.back().eos >= c) {
      // Next context is a descendant of the current one: produce the
      // current context's children up to (including) the next context.
      inner_loop(c);
      stack.push_back({c + doc.SizeAt(c), c + 1});
      ++i;
    } else {
      inner_loop(stack.back().eos);
      stack.pop_back();
    }
  }
  while (!stack.empty()) {
    inner_loop(stack.back().eos);
    stack.pop_back();
  }
}

// ---------------------------------------------------------------------------
// ancestor / ancestor-or-self
// ---------------------------------------------------------------------------

// Forward scan with skipping. Partitioning: for context c_i, only ancestors
// with pre > c_{i-1} are new — any ancestor at or before the previous
// context is shared with it and was already emitted (Fig 1's pruning in
// partition form). The result comes out in document order directly.
void Ancestor(const DocumentContainer& doc, std::span<const int64_t> ctx,
              const NodeTest& test, bool or_self, ScanStats* stats,
              std::vector<int64_t>* out) {
  int64_t prev = 0;
  for (int64_t c : ctx) {
    // The walk restarts at the previous context itself: that context may be
    // an ancestor of c and was not emitted before (all other slots < prev
    // that cover c also cover prev and were emitted in an earlier segment).
    int64_t p = prev;
    while (p < c) {
      Touch(stats);
      if (!doc.IsUnused(p) && p + doc.SizeAt(p) >= c) {
        if (test.Matches(doc, p)) out->push_back(p);  // ancestor of c
        ++p;
      } else {
        p += doc.SizeAt(p) + 1;  // subtree ends before c: skip it
      }
    }
    if (or_self) {
      Touch(stats);
      if (test.Matches(doc, c)) out->push_back(c);
    }
    prev = c;
  }
  if (or_self) {
    // Self hits may duplicate ancestors emitted later (a context that is an
    // ancestor of a later context). Restore strict order + dedup.
    std::sort(out->begin(), out->end());
    out->erase(std::unique(out->begin(), out->end()), out->end());
  }
}

// ---------------------------------------------------------------------------
// following / preceding
// ---------------------------------------------------------------------------

void Following(const DocumentContainer& doc, std::span<const int64_t> ctx,
               const NodeTest& test, ScanStats* stats,
               std::vector<int64_t>* out) {
  auto frags = FragmentRanges(doc);
  size_t i = 0;
  for (auto [root, end] : frags) {
    // Pruning: within one fragment the context with the smallest subtree
    // end covers all others — keep only it (Fig 2's regions are nested).
    int64_t min_end = -1;
    bool any = false;
    while (i < ctx.size() && ctx[i] <= end) {
      int64_t e = ctx[i] + doc.SizeAt(ctx[i]);
      if (!any || e < min_end) min_end = e;
      if (any) Pruned(stats);
      any = true;
      ++i;
    }
    if (!any) continue;
    for (int64_t p = min_end + 1; p <= end;) {
      Touch(stats);
      if (doc.IsUnused(p)) {
        p += doc.SizeAt(p) + 1;
        continue;
      }
      if (test.Matches(doc, p)) out->push_back(p);
      ++p;
    }
  }
}

void Preceding(const DocumentContainer& doc, std::span<const int64_t> ctx,
               const NodeTest& test, ScanStats* stats,
               std::vector<int64_t>* out) {
  auto frags = FragmentRanges(doc);
  size_t i = 0;
  for (auto [root, end] : frags) {
    // Pruning: the last context in the fragment covers all earlier ones
    // (their preceding sets are subsets).
    int64_t c_max = -1;
    while (i < ctx.size() && ctx[i] <= end) {
      if (c_max >= 0) Pruned(stats);
      c_max = ctx[i];
      ++i;
    }
    if (c_max < 0) continue;
    for (int64_t p = root; p < c_max;) {
      Touch(stats);
      if (doc.IsUnused(p)) {
        p += doc.SizeAt(p) + 1;
        continue;
      }
      if (p + doc.SizeAt(p) >= c_max) {
        ++p;  // ancestor of c_max: excluded, but descend into its subtree
        continue;
      }
      if (test.Matches(doc, p)) out->push_back(p);
      ++p;
    }
  }
}

// ---------------------------------------------------------------------------
// parent / siblings — share a lazily advanced path stack
// ---------------------------------------------------------------------------

// Maintains the ancestor path of an increasing sequence of target pres,
// touching only slots between consecutive targets (with subtree skipping).
class PathWalker {
 public:
  PathWalker(const DocumentContainer& doc, ScanStats* stats)
      : doc_(doc), stats_(stats) {}

  /// Advances to `c`; afterwards stack() holds all proper ancestors of `c`
  /// in document order.
  void AdvanceTo(int64_t c) {
    while (!stack_.empty() && stack_.back().end < c) stack_.pop_back();
    while (p_ < c) {
      Touch(stats_);
      int64_t sz = doc_.SizeAt(p_);
      if (!doc_.IsUnused(p_) && p_ + sz >= c) {
        stack_.push_back({p_, p_ + sz});
        ++p_;
      } else {
        p_ += sz + 1;
      }
    }
  }

  struct Entry {
    int64_t pre;
    int64_t end;
  };
  const std::vector<Entry>& stack() const { return stack_; }

 private:
  const DocumentContainer& doc_;
  ScanStats* stats_;
  std::vector<Entry> stack_;
  int64_t p_ = 0;
};

void Parent(const DocumentContainer& doc, std::span<const int64_t> ctx,
            const NodeTest& test, ScanStats* stats,
            std::vector<int64_t>* out) {
  PathWalker walk(doc, stats);
  for (int64_t c : ctx) {
    walk.AdvanceTo(c);
    if (!walk.stack().empty()) {
      int64_t par = walk.stack().back().pre;
      if (test.Matches(doc, par)) out->push_back(par);
    }
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

void Siblings(const DocumentContainer& doc, std::span<const int64_t> ctx,
              const NodeTest& test, bool following, ScanStats* stats,
              std::vector<int64_t>* out) {
  PathWalker walk(doc, stats);
  int64_t prev_parent = -2;
  for (int64_t c : ctx) {
    walk.AdvanceTo(c);
    if (walk.stack().empty()) continue;  // fragment roots have no siblings
    int64_t par = walk.stack().back().pre;
    int64_t par_end = walk.stack().back().end;
    if (following) {
      // Pruning: a later same-parent context's following-siblings are a
      // subset of the first one's.
      if (par == prev_parent) {
        Pruned(stats);
        continue;
      }
      prev_parent = par;
      for (int64_t s = c + doc.SizeAt(c) + 1; s <= par_end;) {
        Touch(stats);
        if (!doc.IsUnused(s) && test.Matches(doc, s)) out->push_back(s);
        s += doc.SizeAt(s) + 1;
      }
    } else {
      // preceding-sibling: siblings in [par+1, c). (The *last* same-parent
      // context covers the earlier ones, but contexts arrive in document
      // order, so we emit per context and dedup below.)
      for (int64_t s = par + 1; s < c;) {
        Touch(stats);
        if (!doc.IsUnused(s) && test.Matches(doc, s)) out->push_back(s);
        s += doc.SizeAt(s) + 1;
      }
    }
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

}  // namespace

std::vector<std::pair<int64_t, int64_t>> FragmentRanges(
    const DocumentContainer& doc) {
  std::vector<std::pair<int64_t, int64_t>> out;
  int64_t n = doc.LogicalSlots();
  for (int64_t p = 0; p < n;) {
    if (doc.IsUnused(p)) {
      p += doc.SizeAt(p) + 1;
      continue;
    }
    out.emplace_back(p, p + doc.SizeAt(p));
    p += doc.SizeAt(p) + 1;
  }
  return out;
}

std::vector<int64_t> StaircaseJoin(const DocumentContainer& doc, Axis axis,
                                   std::span<const int64_t> ctx,
                                   const NodeTest& test, ScanStats* stats) {
  std::vector<int64_t> out;
  if (ctx.empty()) return out;
  assert(std::is_sorted(ctx.begin(), ctx.end()));
  switch (axis) {
    case Axis::kDescendant:
      Descendant(doc, ctx, test, /*or_self=*/false, stats, &out);
      break;
    case Axis::kDescendantOrSelf:
      Descendant(doc, ctx, test, /*or_self=*/true, stats, &out);
      break;
    case Axis::kChild:
      Child(doc, ctx, test, stats, &out);
      break;
    case Axis::kAncestor:
      Ancestor(doc, ctx, test, /*or_self=*/false, stats, &out);
      break;
    case Axis::kAncestorOrSelf:
      Ancestor(doc, ctx, test, /*or_self=*/true, stats, &out);
      break;
    case Axis::kFollowing:
      Following(doc, ctx, test, stats, &out);
      break;
    case Axis::kPreceding:
      Preceding(doc, ctx, test, stats, &out);
      break;
    case Axis::kParent:
      Parent(doc, ctx, test, stats, &out);
      break;
    case Axis::kFollowingSibling:
      Siblings(doc, ctx, test, /*following=*/true, stats, &out);
      break;
    case Axis::kPrecedingSibling:
      Siblings(doc, ctx, test, /*following=*/false, stats, &out);
      break;
    case Axis::kSelf:
      for (int64_t c : ctx) {
        Touch(stats);
        if (test.Matches(doc, c)) out.push_back(c);
      }
      break;
    case Axis::kAttribute: {
      std::vector<int64_t> rows;
      for (int64_t c : ctx) {
        Touch(stats);
        doc.AttrsOf(c, &rows);
        for (int64_t row : rows)
          if (test.MatchesAttr(doc, row)) out.push_back(row);
      }
      break;
    }
  }
  if (stats) stats->results += static_cast<int64_t>(out.size());
  return out;
}

const char* AxisName(Axis axis) {
  switch (axis) {
    case Axis::kChild: return "child";
    case Axis::kDescendant: return "descendant";
    case Axis::kDescendantOrSelf: return "descendant-or-self";
    case Axis::kSelf: return "self";
    case Axis::kAttribute: return "attribute";
    case Axis::kParent: return "parent";
    case Axis::kAncestor: return "ancestor";
    case Axis::kAncestorOrSelf: return "ancestor-or-self";
    case Axis::kFollowing: return "following";
    case Axis::kPreceding: return "preceding";
    case Axis::kFollowingSibling: return "following-sibling";
    case Axis::kPrecedingSibling: return "preceding-sibling";
  }
  return "?";
}

}  // namespace mxq
