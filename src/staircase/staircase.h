// Plain staircase join (Grust et al. [18,19]; paper §2).
//
// Evaluates one XPath location step for a *set* of context nodes in a single
// sequential pass over the pre|size|level table, using the three tree-aware
// techniques the paper illustrates in Figures 1-3:
//
//   Pruning      drop context nodes whose result region is covered by
//                another context node's region (Fig 1),
//   Partitioning cut overlapping regions along the pre axis so every result
//                node is generated exactly once (Fig 2),
//   Skipping     jump over document regions that cannot contain results,
//                using the subtree-size arithmetic of the encoding (Fig 3).
//
// Results are emitted in document order, duplicate-free, with the node test
// applied during the scan ("early nametest"). The ScanStats counters
// substantiate the paper's bound: slots touched <= |result| + |context|
// (for node() tests on the four major axes).

#ifndef MXQ_STAIRCASE_STAIRCASE_H_
#define MXQ_STAIRCASE_STAIRCASE_H_

#include <span>
#include <vector>

#include "staircase/axis.h"

namespace mxq {

/// \brief Evaluates `ctx/axis::test` with plain staircase join.
///
/// `ctx` must be sorted ascending and duplicate-free (document order). The
/// result contains pres (or attribute rows for Axis::kAttribute), in
/// document order, duplicate-free.
std::vector<int64_t> StaircaseJoin(const DocumentContainer& doc, Axis axis,
                                   std::span<const int64_t> ctx,
                                   const NodeTest& test,
                                   ScanStats* stats = nullptr);

/// \brief Top-level fragment ranges [root, root+size] of a container, in
/// document order. Used to bound following/preceding scans per fragment.
std::vector<std::pair<int64_t, int64_t>> FragmentRanges(
    const DocumentContainer& doc);

}  // namespace mxq

#endif  // MXQ_STAIRCASE_STAIRCASE_H_
