// Fixed-width columns, the unit of storage and exchange in the engine.
//
// Mirrors MonetDB's BAT discipline: every column is a contiguous fixed-width
// array, either 64-bit integers (iter, pos, pre, rids, ...) or polymorphic
// Items (the `item` columns of the XQuery sequence encoding). Columns are
// immutable once published inside a Table and shared by shared_ptr, so
// projections and renames are O(1).

#ifndef MXQ_STORAGE_COLUMN_H_
#define MXQ_STORAGE_COLUMN_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/item.h"
#include "common/thread_pool.h"

namespace mxq {

enum class ColType : uint8_t { kI64, kItem };

/// \brief A single fixed-width column.
class Column {
 public:
  explicit Column(ColType type) : type_(type) {}

  static std::shared_ptr<Column> MakeI64(std::vector<int64_t> v = {}) {
    auto c = std::make_shared<Column>(ColType::kI64);
    c->i64_ = std::move(v);
    return c;
  }
  static std::shared_ptr<Column> MakeItem(std::vector<Item> v = {}) {
    auto c = std::make_shared<Column>(ColType::kItem);
    c->items_ = std::move(v);
    return c;
  }

  ColType type() const { return type_; }
  bool is_i64() const { return type_ == ColType::kI64; }
  bool is_item() const { return type_ == ColType::kItem; }

  size_t size() const { return is_i64() ? i64_.size() : items_.size(); }

  // Typed access. Callers must respect type().
  std::vector<int64_t>& i64() {
    assert(is_i64());
    return i64_;
  }
  const std::vector<int64_t>& i64() const {
    assert(is_i64());
    return i64_;
  }
  std::vector<Item>& items() {
    assert(is_item());
    return items_;
  }
  const std::vector<Item>& items() const {
    assert(is_item());
    return items_;
  }

  /// Scalar read that works for both types: for kI64 returns an Int item.
  Item GetItem(size_t row) const {
    return is_i64() ? Item::Int(i64_[row]) : items_[row];
  }
  /// Scalar read as int64; for kItem columns requires an integer-payload item.
  int64_t GetI64(size_t row) const {
    return is_i64() ? i64_[row] : items_[row].i;
  }

  void Reserve(size_t n) {
    if (is_i64())
      i64_.reserve(n);
    else
      items_.reserve(n);
  }

  /// Deep copy (for the rare mutating consumers).
  std::shared_ptr<Column> Clone() const {
    auto c = std::make_shared<Column>(type_);
    c->i64_ = i64_;
    c->items_ = items_;
    return c;
  }

 private:
  ColType type_;
  std::vector<int64_t> i64_;
  std::vector<Item> items_;
};

using ColumnPtr = std::shared_ptr<Column>;

/// \brief Selection vector: a logical-to-physical row mapping produced by
/// filters (σ, semijoins, dedup).
///
/// Selections are the one operator class that does not need to touch column
/// payloads at all: the result of a filter is fully described by the list of
/// surviving physical row indexes. A SelVector captures that list once and is
/// shared immutably; Tables carry it per column and defer the actual gather
/// until a consumer needs contiguous data (a pipeline breaker: join build,
/// sort, union, or an external reader). Chained filters compose their
/// SelVectors instead of re-copying every column — the cache-conscious
/// "late materialization" discipline of the MonetDB lineage.
struct SelVector {
  std::vector<uint32_t> idx;  // physical row per logical row, in logical order

  SelVector() = default;
  explicit SelVector(std::vector<uint32_t> v) : idx(std::move(v)) {}
  size_t size() const { return idx.size(); }
};

using SelVectorPtr = std::shared_ptr<const SelVector>;

/// Gathers `col` at the given physical rows into a new flat column.
/// `threads` slices the gather into cache-sized morsels writing disjoint
/// output ranges — position-wise identical to the serial gather.
inline ColumnPtr GatherColumnAt(const Column& col,
                                const std::vector<uint32_t>& rows,
                                int threads = 1) {
  const int chunks = PlanChunks(threads, rows.size());
  if (col.is_i64()) {
    std::vector<int64_t> out(rows.size());
    const auto& in = col.i64();
    ParallelChunks(chunks, rows.size(), [&](int, size_t b, size_t e) {
      for (size_t k = b; k < e; ++k) out[k] = in[rows[k]];
    });
    return Column::MakeI64(std::move(out));
  }
  std::vector<Item> out(rows.size());
  const auto& in = col.items();
  ParallelChunks(chunks, rows.size(), [&](int, size_t b, size_t e) {
    for (size_t k = b; k < e; ++k) out[k] = in[rows[k]];
  });
  return Column::MakeItem(std::move(out));
}

}  // namespace mxq

#endif  // MXQ_STORAGE_COLUMN_H_
