// Fixed-width columns, the unit of storage and exchange in the engine.
//
// Mirrors MonetDB's BAT discipline: every column is a contiguous fixed-width
// array: 64-bit integers (iter, pos, pre, rids, ...), polymorphic 16-byte
// Items (the `item` columns of the XQuery sequence encoding), or — the
// dictionary-compacted representation of atomized item columns — 8-byte
// ItemDict codes. A dict column behaves exactly like an item column to
// every consumer (GetItem / items() decode through the dictionary), but
// gathers and unions move half the bytes and the value-join kernels hash
// and compare the codes directly (see docs/execution.md §5). Columns are
// immutable once published inside a Table and shared by shared_ptr, so
// projections and renames are O(1).

#ifndef MXQ_STORAGE_COLUMN_H_
#define MXQ_STORAGE_COLUMN_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/exec_context.h"
#include "common/item.h"
#include "common/item_dict.h"
#include "common/thread_pool.h"

namespace mxq {

enum class ColType : uint8_t { kI64, kItem, kDict };

/// \brief A single fixed-width column.
class Column {
 public:
  explicit Column(ColType type) : type_(type) {}

  // Copies never carry the memory-account lease of the source (each column
  // accounts for its own payload); the destructor returns the charge.
  Column(const Column& o)
      : type_(o.type_), i64_(o.i64_), items_(o.items_), dict_(o.dict_) {}
  Column& operator=(const Column&) = delete;
  ~Column() {
    if (acct_) acct_->Release(charged_);
  }

  static std::shared_ptr<Column> MakeI64(std::vector<int64_t> v = {}) {
    auto c = std::make_shared<Column>(ColType::kI64);
    c->i64_ = std::move(v);
    c->ChargeAlloc();
    return c;
  }
  static std::shared_ptr<Column> MakeItem(std::vector<Item> v = {}) {
    auto c = std::make_shared<Column>(ColType::kItem);
    c->items_ = std::move(v);
    c->ChargeAlloc();
    return c;
  }
  /// Dictionary-coded item column: 8-byte ItemDict codes. `dict` must
  /// outlive the column (it is the DocumentManager's dictionary, which
  /// lives as long as any item referencing its strings does).
  static std::shared_ptr<Column> MakeDict(std::vector<int64_t> codes,
                                          const ItemDict* dict) {
    auto c = std::make_shared<Column>(ColType::kDict);
    c->i64_ = std::move(codes);
    c->dict_ = dict;
    c->ChargeAlloc();
    return c;
  }

  ColType type() const { return type_; }
  bool is_i64() const { return type_ == ColType::kI64; }
  bool is_item() const { return type_ == ColType::kItem; }
  bool is_dict() const { return type_ == ColType::kDict; }

  size_t size() const { return is_item() ? items_.size() : i64_.size(); }

  // Typed access. Callers must respect type().
  std::vector<int64_t>& i64() {
    assert(is_i64());
    return i64_;
  }
  const std::vector<int64_t>& i64() const {
    assert(is_i64());
    return i64_;
  }
  std::vector<Item>& items() {
    assert(is_item());
    return items_;
  }
  /// For dict columns this decodes the whole column on first access
  /// (memoized): the pipeline-breaker path for consumers that need flat
  /// items (sort comparators, property verification, mixed unions). Same
  /// single-execution sharing discipline as Table::col()'s gather memo.
  const std::vector<Item>& items() const {
    assert(!is_i64());
    if (is_dict() && items_.size() != i64_.size()) {
      items_.resize(i64_.size());
      for (size_t i = 0; i < i64_.size(); ++i)
        items_[i] = dict_->Decode(i64_[i]);
    }
    return items_;
  }
  /// Dict-code payload of a dict column (8 bytes/row; what gathers, unions
  /// and the value-join kernels move instead of 16-byte items).
  const std::vector<int64_t>& codes() const {
    assert(is_dict());
    return i64_;
  }
  const ItemDict* dict() const { return dict_; }

  /// Scalar read that works for all types: kI64 yields an Int item, kDict
  /// decodes through the dictionary (a lock-free array read).
  Item GetItem(size_t row) const {
    if (is_i64()) return Item::Int(i64_[row]);
    if (is_dict()) return dict_->Decode(i64_[row]);
    return items_[row];
  }
  /// Scalar read as int64; for kItem columns requires an integer-payload
  /// item; for kDict columns yields the raw code (code moves, not values).
  int64_t GetI64(size_t row) const {
    return is_item() ? items_[row].i : i64_[row];
  }

  void Reserve(size_t n) {
    if (is_item())
      items_.reserve(n);
    else
      i64_.reserve(n);
  }

  /// Deep copy (for the rare mutating consumers).
  std::shared_ptr<Column> Clone() const {
    auto c = std::make_shared<Column>(type_);
    c->i64_ = i64_;
    c->items_ = items_;
    c->dict_ = dict_;
    c->ChargeAlloc();
    return c;
  }

 private:
  /// Memory-governance seam (docs/robustness.md): columns published during
  /// an execution charge their payload bytes to that execution's
  /// MemAccount and release them on destruction. Charging is soft — it
  /// never fails here; an over-budget account trips the next cancellation
  /// checkpoint. Columns built outside an execution (document shredding,
  /// tests) see no thread-local context and stay unaccounted. The dict
  /// columns' lazily memoized decode (const items()) is deliberately not
  /// charged: it is bounded by the column size already accounted.
  void ChargeAlloc() {
    ExecContext* ctx = CurrentExecContext();
    if (ctx == nullptr) return;
    const int64_t bytes =
        static_cast<int64_t>(i64_.size() * sizeof(int64_t) +
                             items_.size() * sizeof(Item));
    if (bytes == 0) return;
    acct_ = ctx->mem();
    charged_ = bytes;
    acct_->Charge(bytes);
  }

  ColType type_;
  std::vector<int64_t> i64_;  // kI64 payloads, or kDict codes
  // kItem payloads; for kDict, the memoized decode (see const items()).
  mutable std::vector<Item> items_;
  const ItemDict* dict_ = nullptr;  // kDict only
  std::shared_ptr<MemAccount> acct_;  // null when unaccounted
  int64_t charged_ = 0;
};

using ColumnPtr = std::shared_ptr<Column>;

/// \brief Selection vector: a logical-to-physical row mapping produced by
/// filters (σ, semijoins, dedup).
///
/// Selections are the one operator class that does not need to touch column
/// payloads at all: the result of a filter is fully described by the list of
/// surviving physical row indexes. A SelVector captures that list once and is
/// shared immutably; Tables carry it per column and defer the actual gather
/// until a consumer needs contiguous data (a pipeline breaker: join build,
/// sort, union, or an external reader). Chained filters compose their
/// SelVectors instead of re-copying every column — the cache-conscious
/// "late materialization" discipline of the MonetDB lineage.
struct SelVector {
  std::vector<uint32_t> idx;  // physical row per logical row, in logical order

  SelVector() = default;
  explicit SelVector(std::vector<uint32_t> v) : idx(std::move(v)) {}
  size_t size() const { return idx.size(); }
};

using SelVectorPtr = std::shared_ptr<const SelVector>;

/// Gathers `col` at the given physical rows into a new flat column.
/// `threads` slices the gather into cache-sized morsels writing disjoint
/// output ranges — position-wise identical to the serial gather. Dict
/// columns gather their 8-byte codes (no decode: the result is again a
/// dict column over the same dictionary).
inline ColumnPtr GatherColumnAt(const Column& col,
                                const std::vector<uint32_t>& rows,
                                int threads = 1) {
  const int chunks = PlanChunks(threads, rows.size());
  if (!col.is_item()) {
    std::vector<int64_t> out(rows.size());
    const auto& in = col.is_dict() ? col.codes() : col.i64();
    ParallelChunks(chunks, rows.size(), [&](int, size_t b, size_t e) {
      for (size_t k = b; k < e; ++k) out[k] = in[rows[k]];
    });
    return col.is_dict() ? Column::MakeDict(std::move(out), col.dict())
                         : Column::MakeI64(std::move(out));
  }
  std::vector<Item> out(rows.size());
  const auto& in = col.items();
  ParallelChunks(chunks, rows.size(), [&](int, size_t b, size_t e) {
    for (size_t k = b; k < e; ++k) out[k] = in[rows[k]];
  });
  return Column::MakeItem(std::move(out));
}

}  // namespace mxq

#endif  // MXQ_STORAGE_COLUMN_H_
