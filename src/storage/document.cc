#include "storage/document.h"

#include <algorithm>

#include "common/exec_context.h"
#include "common/fault.h"

namespace mxq {

// ---------------------------------------------------------------------------
// DocumentContainer: mutation
// ---------------------------------------------------------------------------

int64_t DocumentContainer::AppendSlot(NodeKind kind, int64_t ref,
                                      int32_t level, int32_t frag,
                                      int64_t size) {
  size_.push_back(size);
  level_.push_back(level);
  kind_.push_back(kind);
  ref_.push_back(ref);
  frag_.push_back(frag);
  if (kind != NodeKind::kUnused) ++node_count_;
  return static_cast<int64_t>(size_.size()) - 1;
}

void DocumentContainer::SetKind(int64_t rid, NodeKind kind) {
  if (kind_[rid] == NodeKind::kUnused && kind != NodeKind::kUnused)
    ++node_count_;
  if (kind_[rid] != NodeKind::kUnused && kind == NodeKind::kUnused)
    --node_count_;
  kind_[rid] = kind;
}

int64_t DocumentContainer::AppendAttr(int64_t owner_rid, StrId qn,
                                      StrId value) {
  if (!attr_owner_.empty() && owner_rid < attr_owner_.back()) {
    attr_appended_in_order_ = false;
    attr_owner_sorted_ = false;
  }
  attr_owner_.push_back(owner_rid);
  attr_qn_.push_back(qn);
  attr_val_.push_back(value);
  return static_cast<int64_t>(attr_owner_.size()) - 1;
}

void DocumentContainer::MoveSlotRaw(int64_t from_rid, int64_t to_rid) {
  // The destination's old content is overwritten: account for the real-node
  // count transition (the source keeps its row until the caller marks it).
  bool to_real = kind_[to_rid] != NodeKind::kUnused;
  bool from_real = kind_[from_rid] != NodeKind::kUnused;
  if (!to_real && from_real) ++node_count_;
  if (to_real && !from_real) --node_count_;
  size_[to_rid] = size_[from_rid];
  level_[to_rid] = level_[from_rid];
  kind_[to_rid] = kind_[from_rid];
  ref_[to_rid] = ref_[from_rid];
  frag_[to_rid] = frag_[from_rid];
}

void DocumentContainer::MarkUnused(int64_t rid, int64_t run_remaining) {
  SetKind(rid, NodeKind::kUnused);
  size_[rid] = run_remaining;
  level_[rid] = -1;
  ref_[rid] = -1;
}

void DocumentContainer::TruncateTo(const Watermark& m) {
  assert(m.slots <= PhysicalSlots() && m.attrs <= AttrCount() &&
         m.pis <= PICount() && "watermark is from a different container state");
  const bool grown = PhysicalSlots() != m.slots || AttrCount() != m.attrs ||
                     PICount() != m.pis || next_frag_ != m.next_frag;
  if (!grown) return;
  size_.resize(m.slots);
  level_.resize(m.slots);
  kind_.resize(m.slots);
  ref_.resize(m.slots);
  frag_.resize(m.slots);
  node_count_ = m.node_count;
  next_frag_ = m.next_frag;
  attr_owner_.resize(m.attrs);
  attr_qn_.resize(m.attrs);
  attr_val_.resize(m.attrs);
  attr_appended_in_order_ = m.attr_appended_in_order;
  pi_target_.resize(m.pis);
  pi_value_.resize(m.pis);
  // Conservative: any index built against the grown state is stale. (The
  // shredder only builds indexes after a *successful* parse, so in practice
  // nothing is dropped here.)
  InvalidateIndexes();
}

// ---------------------------------------------------------------------------
// DocumentContainer: structural audit
// ---------------------------------------------------------------------------

Status DocumentContainer::CheckInvariants() const {
  auto fail = [this](const std::string& what, int64_t pre) {
    return Status::Internal("container '" + name_ + "' (id " +
                            std::to_string(id_) + ") invariant violated at pre " +
                            std::to_string(pre) + ": " + what);
  };
  const int64_t n = LogicalSlots();
  const int64_t pool_n = static_cast<int64_t>(mgr_->strings().size());
  struct Open {
    int64_t end;
    int32_t level;
    int32_t frag;
  };
  std::vector<Open> stack;
  int64_t real = 0;
  bool have_root = false;
  int32_t last_root_frag = 0;
  for (int64_t p = 0; p < n; ++p) {
    const int64_t sz = SizeAt(p);
    const int32_t lv = LevelAt(p);
    const NodeKind k = KindAt(p);
    if (k == NodeKind::kUnused) {
      if (lv != -1) return fail("unused slot with level != -1", p);
      if (sz < 0 || p + sz >= n) return fail("unused run overruns container", p);
      // Inductive run check: the claimed run must start with another unused
      // slot covering the remainder (SkipUnused's O(1) skip correctness).
      if (sz > 0 && (KindAt(p + 1) != NodeKind::kUnused || SizeAt(p + 1) < sz - 1))
        return fail("unused run covers a real node", p);
      continue;
    }
    while (!stack.empty() && p > stack.back().end) stack.pop_back();
    ++real;
    if (sz < 0) return fail("negative size", p);
    if (p + sz >= n) return fail("subtree overruns container", p);
    const int32_t fg = FragAt(p);
    if (stack.empty()) {
      if (lv != 0) return fail("root node at level != 0", p);
      if (have_root && fg < last_root_frag)
        return fail("fragment ordinals not monotone across roots", p);
      have_root = true;
      last_root_frag = fg;
    } else {
      if (p + sz > stack.back().end)
        return fail("subtree not nested inside its parent", p);
      if (lv != stack.back().level + 1)
        return fail("level is not parent level + 1", p);
      if (fg != stack.back().frag)
        return fail("fragment ordinal differs from parent", p);
    }
    const int64_t ref = RefAt(p);
    switch (k) {
      case NodeKind::kDoc:
        if (lv != 0) return fail("document node below level 0", p);
        break;
      case NodeKind::kElem:
        if (ref < 0 || ref >= pool_n)
          return fail("element tag ref outside string pool", p);
        break;
      case NodeKind::kText:
      case NodeKind::kComment:
        if (ref < 0 || ref >= pool_n)
          return fail("content ref outside string pool", p);
        if (sz != 0) return fail("leaf node with non-zero size", p);
        break;
      case NodeKind::kPI:
        if (ref < 0 || ref >= PICount())
          return fail("PI ref outside the PI table", p);
        if (sz != 0) return fail("leaf node with non-zero size", p);
        break;
      case NodeKind::kUnused:
        break;  // handled above
    }
    if (sz > 0) stack.push_back(Open{p + sz, lv, fg});
  }
  if (real != node_count_)
    return fail("node_count " + std::to_string(node_count_) +
                    " != counted real nodes " + std::to_string(real),
                -1);
  const int64_t slots = PhysicalSlots();
  for (int64_t row = 0; row < AttrCount(); ++row) {
    const int64_t owner = attr_owner_[row];
    if (owner < 0 || owner >= slots)
      return fail("attr row " + std::to_string(row) + " owner rid out of range",
                  -1);
    if (kind_[owner] != NodeKind::kElem)
      return fail("attr row " + std::to_string(row) + " owner is not an element",
                  -1);
    if (attr_qn_[row] < 0 || attr_qn_[row] >= pool_n ||
        attr_val_[row] < 0 || attr_val_[row] >= pool_n)
      return fail("attr row " + std::to_string(row) + " refs outside string pool",
                  -1);
  }
  for (int64_t row = 0; row < PICount(); ++row) {
    if (pi_target_[row] < 0 || pi_target_[row] >= pool_n ||
        pi_value_[row] < 0 || pi_value_[row] >= pool_n)
      return fail("PI row " + std::to_string(row) + " refs outside string pool",
                  -1);
  }
  return Status::OK();
}

void DocumentContainer::ShiftAttrOwners(int64_t lo, int64_t hi,
                                        int64_t delta) {
  for (auto& owner : attr_owner_)
    if (owner >= lo && owner < hi) owner += delta;
  attr_owner_sorted_ = false;
  attr_appended_in_order_ = false;
  attr_perm_.clear();
}

void DocumentContainer::RebuildPaged(int page_bits, int fill_pct) {
  assert(!paged() && "RebuildPaged expects a flat container");
  const int64_t page = int64_t{1} << page_bits;
  const int64_t fill = std::max<int64_t>(1, page * fill_pct / 100);
  const int64_t n = PhysicalSlots();

  // New position of the i-th real node: page-chunked with free tails.
  auto new_pos = [&](int64_t i) { return (i / fill) * page + (i % fill); };

  std::vector<int64_t> old_to_new(n + 1);
  int64_t real = 0;
  for (int64_t p = 0; p < n; ++p) {
    old_to_new[p] = new_pos(real);
    if (kind_[p] != NodeKind::kUnused) ++real;
  }
  // One-past-the-end maps to the next fresh slot (size recomputation of
  // nodes whose subtree ends at the last slot).
  old_to_new[n] = new_pos(real);

  int64_t pages = (real + fill - 1) / fill;
  if (pages == 0) pages = 1;
  int64_t total = pages * page;

  std::vector<int64_t> nsize(total), nref(total, -1);
  std::vector<int32_t> nlevel(total, -1), nfrag(total, -1);
  std::vector<NodeKind> nkind(total, NodeKind::kUnused);
  // Free-run bookkeeping: default every slot to "unused, run to page end".
  for (int64_t s = 0; s < total; ++s)
    nsize[s] = page - 1 - (s & (page - 1));

  for (int64_t p = 0; p < n; ++p) {
    if (kind_[p] == NodeKind::kUnused) continue;
    int64_t q = old_to_new[p];
    // New size: distance to the new position of the subtree's last slot;
    // free slots trailing the subtree stay outside the range.
    nsize[q] = size_[p] > 0 ? old_to_new[p + size_[p]] - q : 0;
    nlevel[q] = level_[p];
    nkind[q] = kind_[p];
    nref[q] = ref_[p];
    nfrag[q] = frag_[p];
  }
  // Attribute owners: old rid -> new rid.
  for (auto& owner : attr_owner_) owner = old_to_new[owner];

  size_ = std::move(nsize);
  level_ = std::move(nlevel);
  kind_ = std::move(nkind);
  ref_ = std::move(nref);
  frag_ = std::move(nfrag);
  node_count_ = real;
  page_map_ = std::make_unique<PageMap>(page_bits);
  page_map_->InitIdentity(pages);
  attr_owner_sorted_ = true;
  attr_appended_in_order_ = true;
  attr_perm_.clear();
  InvalidateIndexes();
}

// ---------------------------------------------------------------------------
// DocumentContainer: attributes
// ---------------------------------------------------------------------------

void DocumentContainer::EnsureAttrPerm() const {
  // Serializes the lazy build; once built, attr_perm_ is immutable until
  // InvalidateIndexes, so callers may read it lock-free after returning
  // (the acquire here orders the build before their reads).
  MutexLock lk(&index_mu_);
  if (attr_owner_sorted_ && attr_perm_.empty()) {
    // Rows already sorted by owner; identity permutation, built lazily.
    attr_perm_.resize(attr_owner_.size());
    for (size_t i = 0; i < attr_perm_.size(); ++i)
      attr_perm_[i] = static_cast<int64_t>(i);
    return;
  }
  if (attr_perm_.size() == attr_owner_.size()) return;
  attr_perm_.resize(attr_owner_.size());
  for (size_t i = 0; i < attr_perm_.size(); ++i)
    attr_perm_[i] = static_cast<int64_t>(i);
  std::stable_sort(attr_perm_.begin(), attr_perm_.end(),
                   [this](int64_t a, int64_t b) {
                     return attr_owner_[a] < attr_owner_[b];
                   });
  attr_owner_sorted_ = true;
}

void DocumentContainer::AttrsOf(int64_t pre,
                                std::vector<int64_t>* rows) const {
  rows->clear();
  if (attr_owner_.empty() || KindAt(pre) != NodeKind::kElem) return;
  EnsureAttrPerm();
  int64_t rid = Rid(pre);
  auto lo = std::lower_bound(attr_perm_.begin(), attr_perm_.end(), rid,
                             [this](int64_t row, int64_t key) {
                               return attr_owner_[row] < key;
                             });
  for (; lo != attr_perm_.end() && attr_owner_[*lo] == rid; ++lo)
    rows->push_back(*lo);
}

int64_t DocumentContainer::AttrOf(int64_t pre, StrId qn) const {
  if (attr_owner_.empty() || KindAt(pre) != NodeKind::kElem) return -1;
  EnsureAttrPerm();
  int64_t rid = Rid(pre);
  auto lo = std::lower_bound(attr_perm_.begin(), attr_perm_.end(), rid,
                             [this](int64_t row, int64_t key) {
                               return attr_owner_[row] < key;
                             });
  for (; lo != attr_perm_.end() && attr_owner_[*lo] == rid; ++lo)
    if (attr_qn_[*lo] == qn) return *lo;
  return -1;
}

// ---------------------------------------------------------------------------
// DocumentContainer: navigation
// ---------------------------------------------------------------------------

int64_t DocumentContainer::ParentOf(int64_t pre) const {
  // The nearest preceding slot whose subtree range covers `pre` is the
  // parent: every closer preceding node's subtree ends before `pre`.
  for (int64_t p = pre - 1; p >= 0; --p) {
    if (p + SizeAt(p) >= pre) {
      if (IsUnused(p)) continue;  // unused runs never cover real nodes
      return p;
    }
  }
  return -1;
}

std::string DocumentContainer::StringValueOf(int64_t pre) const {
  const StringPool& pool = mgr_->strings();
  switch (KindAt(pre)) {
    case NodeKind::kText:
    case NodeKind::kComment:
      return pool.Get(static_cast<StrId>(RefAt(pre)));
    case NodeKind::kPI:
      return pool.Get(PIValue(RefAt(pre)));
    case NodeKind::kUnused:
      return "";
    case NodeKind::kDoc:
    case NodeKind::kElem:
      break;
  }
  std::string out;
  int64_t end = pre + SizeAt(pre);
  for (int64_t p = pre + 1; p <= end;) {
    if (IsUnused(p)) {
      p += SizeAt(p) + 1;
      continue;
    }
    if (KindAt(p) == NodeKind::kText)
      out += pool.Get(static_cast<StrId>(RefAt(p)));
    ++p;
  }
  return out;
}

// ---------------------------------------------------------------------------
// DocumentContainer: name indexes
// ---------------------------------------------------------------------------

namespace {

/// True when the calling execution has been asked to stop (cancel, budget,
/// deadline): an index build observing this abandons its partial work and
/// leaves the "absent, rebuild on next call" state — never a half-index.
/// The stop reasons are all sticky, so the caller's next governance
/// checkpoint converts the same condition into the typed Status.
bool BuildStopRequested() {
  ExecContext* ctx = CurrentExecContext();
  return ctx != nullptr && ctx->StopRequested();
}

}  // namespace

const std::vector<int64_t>& DocumentContainer::ElementsNamed(StrId qn) const {
  static const std::vector<int64_t> kEmpty;
  MutexLock lk(&index_mu_);
  if (!elem_index_built_) {
    // Build into a local map and commit only on success: a governed stop
    // mid-build must not poison the cached state for later executions.
    MXQ_FAULT_POINT("index.build");
    std::unordered_map<StrId, std::vector<int64_t>> built;
    int64_t n = LogicalSlots();
    for (int64_t p = 0; p < n;) {
      if ((p & 4095) == 0 && BuildStopRequested()) return kEmpty;
      if (IsUnused(p)) {
        p += SizeAt(p) + 1;
        continue;
      }
      if (KindAt(p) == NodeKind::kElem)
        built[static_cast<StrId>(RefAt(p))].push_back(p);
      ++p;
    }
    if (BuildStopRequested()) return kEmpty;
    elem_index_ = std::move(built);
    elem_index_built_ = true;
  }
  auto it = elem_index_.find(qn);
  return it == elem_index_.end() ? kEmpty : it->second;
}

const std::vector<int64_t>& DocumentContainer::AttrsNamed(StrId qn) const {
  static const std::vector<int64_t> kEmpty;
  MutexLock lk(&index_mu_);
  if (!attr_index_built_) {
    MXQ_FAULT_POINT("index.build");
    // Rows keyed by qname, ordered by owner document (pre) order.
    std::vector<int64_t> rows(attr_owner_.size());
    for (size_t i = 0; i < rows.size(); ++i) rows[i] = static_cast<int64_t>(i);
    std::stable_sort(rows.begin(), rows.end(), [this](int64_t a, int64_t b) {
      return Pre(attr_owner_[a]) < Pre(attr_owner_[b]);
    });
    if (BuildStopRequested()) return kEmpty;
    std::unordered_map<StrId, std::vector<int64_t>> built;
    for (int64_t r : rows) built[attr_qn_[r]].push_back(r);
    attr_name_index_ = std::move(built);
    attr_index_built_ = true;
  }
  auto it = attr_name_index_.find(qn);
  return it == attr_name_index_.end() ? kEmpty : it->second;
}

// ---------------------------------------------------------------------------
// DocumentContainer: subtree copy (paper §5.1 "pasting of encodings")
// ---------------------------------------------------------------------------

int64_t DocumentContainer::CopySubtree(const DocumentContainer& src,
                                       int64_t src_pre, int32_t base_level,
                                       int32_t frag) {
  // Collect emitted (real) source slots in pre order, compacting unused runs.
  std::vector<int64_t> srcs;
  int64_t end = src_pre + src.SizeAt(src_pre);
  for (int64_t s = src_pre; s <= end;) {
    if (src.IsUnused(s)) {
      s += src.SizeAt(s) + 1;
      continue;
    }
    srcs.push_back(s);
    ++s;
  }

  int64_t dst_root = PhysicalSlots();
  int32_t root_level = src.LevelAt(src_pre);
  for (size_t i = 0; i < srcs.size(); ++i) {
    int64_t s = srcs[i];
    // New size = number of emitted nodes inside (s, s + size(s)].
    auto ub = std::upper_bound(srcs.begin(), srcs.end(), s + src.SizeAt(s));
    int64_t new_size = (ub - srcs.begin()) - static_cast<int64_t>(i) - 1;
    NodeKind kind = src.KindAt(s);
    int64_t ref = src.RefAt(s);
    if (kind == NodeKind::kPI) ref = AddPI(src.PITarget(ref), src.PIValue(ref));
    int64_t rid = AppendSlot(kind, ref,
                             src.LevelAt(s) - root_level + base_level, frag,
                             new_size);
    if (kind == NodeKind::kElem) {
      std::vector<int64_t> rows;
      src.AttrsOf(s, &rows);
      for (int64_t row : rows)
        AppendAttr(rid, src.AttrQn(row), src.AttrValue(row));
    }
  }
  InvalidateIndexes();
  return dst_root;
}

void DocumentContainer::ConvertToPaged(int page_bits) {
  if (paged()) return;
  page_map_ = std::make_unique<PageMap>(page_bits);
  int64_t slots = PhysicalSlots();
  int64_t page = int64_t{1} << page_bits;
  int64_t pages = (slots + page - 1) / page;
  if (pages == 0) pages = 1;
  int64_t padded = pages * page;
  // Tail padding: each unused slot records the number of directly following
  // consecutive unused slots (paper §5.2), enabling O(1) skips.
  for (int64_t i = slots; i < padded; ++i)
    AppendSlot(NodeKind::kUnused, /*ref=*/-1, /*level=*/-1, /*frag=*/-1,
               /*size=*/padded - i - 1);
  page_map_->InitIdentity(pages);
  InvalidateIndexes();
}

// ---------------------------------------------------------------------------
// DocumentManager
// ---------------------------------------------------------------------------

DocumentManager::~DocumentManager() {
  const int32_t n = ctr_count_.load(std::memory_order_acquire);
  for (int32_t id = 0; id < n; ++id) delete container(id);
  for (size_t ci = 0; ci * kCtrChunkSize < static_cast<size_t>(n); ++ci)
    delete[] ctr_chunks_[ci].load(std::memory_order_relaxed);
}

DocumentContainer* DocumentManager::CreateContainer(const std::string& name) {
  WriterLock lk(&mu_);
  const int32_t id = ctr_count_.load(std::memory_order_relaxed);
  assert(static_cast<size_t>(id) < kCtrMaxChunks * kCtrChunkSize &&
         "container registry exhausted");
  DocumentContainer** chunk =
      ctr_chunks_[static_cast<size_t>(id) >> kCtrChunkBits].load(
          std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new DocumentContainer*[kCtrChunkSize]();
    ctr_chunks_[static_cast<size_t>(id) >> kCtrChunkBits].store(
        chunk, std::memory_order_release);
  }
  auto* c = new DocumentContainer(id, name, this);
  chunk[id & (kCtrChunkSize - 1)] = c;
  // Publish after the slot is written: any id handed out below is readable
  // lock-free (StringPool's chunked release-publish discipline).
  ctr_count_.store(id + 1, std::memory_order_release);
  if (!name.empty()) by_name_[name] = id;
  return c;
}

void DocumentManager::PublishDocument(DocumentContainer* c,
                                      const std::string& name) {
  if (c == nullptr || name.empty()) return;
  WriterLock lk(&mu_);
  c->name_ = name;
  by_name_[name] = c->id();
}

Result<DocumentContainer*> DocumentManager::GetDocument(
    const std::string& name) {
  ReaderLock lk(&mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end())
    return Status::NotFound("document not loaded: " + name);
  return container(it->second);
}

DocumentContainer* DocumentManager::AcquireTransient() {
  {
    WriterLock lk(&mu_);
    if (!free_transients_.empty()) {
      DocumentContainer* c = free_transients_.back();
      free_transients_.pop_back();
      return c;  // already cleared on release
    }
  }
  return CreateContainer("");
}

void DocumentManager::ReleaseTransient(DocumentContainer* c) {
  if (c == nullptr) return;
  c->Clear();
  // Clear() keeps vector capacities (cheap reuse for the steady state), but
  // a pooled container must not pin the working set of one huge result
  // forever — drop outsized buffers before recycling.
  c->ShrinkIfOversized(/*max_retained_slots=*/1 << 16);
  WriterLock lk(&mu_);
  free_transients_.push_back(c);
}

std::string DocumentManager::StringValueOf(const Item& node_item) const {
  if (node_item.kind == ItemKind::kAttr) {
    AttrRef a = node_item.attr();
    return pool_.Get(container(a.container)->AttrValue(a.row));
  }
  NodeRef n = node_item.node();
  return container(n.container)->StringValueOf(n.pre);
}

Item DocumentManager::AtomizeNode(const Item& node_item) {
  if (node_item.kind == ItemKind::kAttr) {
    AttrRef a = node_item.attr();
    return Item::Untyped(container(a.container)->AttrValue(a.row));
  }
  return Item::Untyped(pool_.Intern(StringValueOf(node_item)));
}

}  // namespace mxq
