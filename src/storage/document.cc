#include "storage/document.h"

#include <algorithm>

namespace mxq {

// ---------------------------------------------------------------------------
// DocumentContainer: mutation
// ---------------------------------------------------------------------------

int64_t DocumentContainer::AppendSlot(NodeKind kind, int64_t ref,
                                      int32_t level, int32_t frag,
                                      int64_t size) {
  size_.push_back(size);
  level_.push_back(level);
  kind_.push_back(kind);
  ref_.push_back(ref);
  frag_.push_back(frag);
  if (kind != NodeKind::kUnused) ++node_count_;
  return static_cast<int64_t>(size_.size()) - 1;
}

void DocumentContainer::SetKind(int64_t rid, NodeKind kind) {
  if (kind_[rid] == NodeKind::kUnused && kind != NodeKind::kUnused)
    ++node_count_;
  if (kind_[rid] != NodeKind::kUnused && kind == NodeKind::kUnused)
    --node_count_;
  kind_[rid] = kind;
}

int64_t DocumentContainer::AppendAttr(int64_t owner_rid, StrId qn,
                                      StrId value) {
  if (!attr_owner_.empty() && owner_rid < attr_owner_.back()) {
    attr_appended_in_order_ = false;
    attr_owner_sorted_ = false;
  }
  attr_owner_.push_back(owner_rid);
  attr_qn_.push_back(qn);
  attr_val_.push_back(value);
  return static_cast<int64_t>(attr_owner_.size()) - 1;
}

void DocumentContainer::MoveSlotRaw(int64_t from_rid, int64_t to_rid) {
  // The destination's old content is overwritten: account for the real-node
  // count transition (the source keeps its row until the caller marks it).
  bool to_real = kind_[to_rid] != NodeKind::kUnused;
  bool from_real = kind_[from_rid] != NodeKind::kUnused;
  if (!to_real && from_real) ++node_count_;
  if (to_real && !from_real) --node_count_;
  size_[to_rid] = size_[from_rid];
  level_[to_rid] = level_[from_rid];
  kind_[to_rid] = kind_[from_rid];
  ref_[to_rid] = ref_[from_rid];
  frag_[to_rid] = frag_[from_rid];
}

void DocumentContainer::MarkUnused(int64_t rid, int64_t run_remaining) {
  SetKind(rid, NodeKind::kUnused);
  size_[rid] = run_remaining;
  level_[rid] = -1;
  ref_[rid] = -1;
}

void DocumentContainer::ShiftAttrOwners(int64_t lo, int64_t hi,
                                        int64_t delta) {
  for (auto& owner : attr_owner_)
    if (owner >= lo && owner < hi) owner += delta;
  attr_owner_sorted_ = false;
  attr_appended_in_order_ = false;
  attr_perm_.clear();
}

void DocumentContainer::RebuildPaged(int page_bits, int fill_pct) {
  assert(!paged() && "RebuildPaged expects a flat container");
  const int64_t page = int64_t{1} << page_bits;
  const int64_t fill = std::max<int64_t>(1, page * fill_pct / 100);
  const int64_t n = PhysicalSlots();

  // New position of the i-th real node: page-chunked with free tails.
  auto new_pos = [&](int64_t i) { return (i / fill) * page + (i % fill); };

  std::vector<int64_t> old_to_new(n + 1);
  int64_t real = 0;
  for (int64_t p = 0; p < n; ++p) {
    old_to_new[p] = new_pos(real);
    if (kind_[p] != NodeKind::kUnused) ++real;
  }
  // One-past-the-end maps to the next fresh slot (size recomputation of
  // nodes whose subtree ends at the last slot).
  old_to_new[n] = new_pos(real);

  int64_t pages = (real + fill - 1) / fill;
  if (pages == 0) pages = 1;
  int64_t total = pages * page;

  std::vector<int64_t> nsize(total), nref(total, -1);
  std::vector<int32_t> nlevel(total, -1), nfrag(total, -1);
  std::vector<NodeKind> nkind(total, NodeKind::kUnused);
  // Free-run bookkeeping: default every slot to "unused, run to page end".
  for (int64_t s = 0; s < total; ++s)
    nsize[s] = page - 1 - (s & (page - 1));

  for (int64_t p = 0; p < n; ++p) {
    if (kind_[p] == NodeKind::kUnused) continue;
    int64_t q = old_to_new[p];
    // New size: distance to the new position of the subtree's last slot;
    // free slots trailing the subtree stay outside the range.
    nsize[q] = size_[p] > 0 ? old_to_new[p + size_[p]] - q : 0;
    nlevel[q] = level_[p];
    nkind[q] = kind_[p];
    nref[q] = ref_[p];
    nfrag[q] = frag_[p];
  }
  // Attribute owners: old rid -> new rid.
  for (auto& owner : attr_owner_) owner = old_to_new[owner];

  size_ = std::move(nsize);
  level_ = std::move(nlevel);
  kind_ = std::move(nkind);
  ref_ = std::move(nref);
  frag_ = std::move(nfrag);
  node_count_ = real;
  page_map_ = std::make_unique<PageMap>(page_bits);
  page_map_->InitIdentity(pages);
  attr_owner_sorted_ = true;
  attr_appended_in_order_ = true;
  attr_perm_.clear();
  InvalidateIndexes();
}

// ---------------------------------------------------------------------------
// DocumentContainer: attributes
// ---------------------------------------------------------------------------

void DocumentContainer::EnsureAttrPerm() const {
  // Serializes the lazy build; once built, attr_perm_ is immutable until
  // InvalidateIndexes, so callers may read it lock-free after returning
  // (the acquire here orders the build before their reads).
  std::lock_guard<std::mutex> lk(index_mu_);
  if (attr_owner_sorted_ && attr_perm_.empty()) {
    // Rows already sorted by owner; identity permutation, built lazily.
    attr_perm_.resize(attr_owner_.size());
    for (size_t i = 0; i < attr_perm_.size(); ++i)
      attr_perm_[i] = static_cast<int64_t>(i);
    return;
  }
  if (attr_perm_.size() == attr_owner_.size()) return;
  attr_perm_.resize(attr_owner_.size());
  for (size_t i = 0; i < attr_perm_.size(); ++i)
    attr_perm_[i] = static_cast<int64_t>(i);
  std::stable_sort(attr_perm_.begin(), attr_perm_.end(),
                   [this](int64_t a, int64_t b) {
                     return attr_owner_[a] < attr_owner_[b];
                   });
  attr_owner_sorted_ = true;
}

void DocumentContainer::AttrsOf(int64_t pre,
                                std::vector<int64_t>* rows) const {
  rows->clear();
  if (attr_owner_.empty() || KindAt(pre) != NodeKind::kElem) return;
  EnsureAttrPerm();
  int64_t rid = Rid(pre);
  auto lo = std::lower_bound(attr_perm_.begin(), attr_perm_.end(), rid,
                             [this](int64_t row, int64_t key) {
                               return attr_owner_[row] < key;
                             });
  for (; lo != attr_perm_.end() && attr_owner_[*lo] == rid; ++lo)
    rows->push_back(*lo);
}

int64_t DocumentContainer::AttrOf(int64_t pre, StrId qn) const {
  if (attr_owner_.empty() || KindAt(pre) != NodeKind::kElem) return -1;
  EnsureAttrPerm();
  int64_t rid = Rid(pre);
  auto lo = std::lower_bound(attr_perm_.begin(), attr_perm_.end(), rid,
                             [this](int64_t row, int64_t key) {
                               return attr_owner_[row] < key;
                             });
  for (; lo != attr_perm_.end() && attr_owner_[*lo] == rid; ++lo)
    if (attr_qn_[*lo] == qn) return *lo;
  return -1;
}

// ---------------------------------------------------------------------------
// DocumentContainer: navigation
// ---------------------------------------------------------------------------

int64_t DocumentContainer::ParentOf(int64_t pre) const {
  // The nearest preceding slot whose subtree range covers `pre` is the
  // parent: every closer preceding node's subtree ends before `pre`.
  for (int64_t p = pre - 1; p >= 0; --p) {
    if (p + SizeAt(p) >= pre) {
      if (IsUnused(p)) continue;  // unused runs never cover real nodes
      return p;
    }
  }
  return -1;
}

std::string DocumentContainer::StringValueOf(int64_t pre) const {
  const StringPool& pool = mgr_->strings();
  switch (KindAt(pre)) {
    case NodeKind::kText:
    case NodeKind::kComment:
      return pool.Get(static_cast<StrId>(RefAt(pre)));
    case NodeKind::kPI:
      return pool.Get(PIValue(RefAt(pre)));
    case NodeKind::kUnused:
      return "";
    case NodeKind::kDoc:
    case NodeKind::kElem:
      break;
  }
  std::string out;
  int64_t end = pre + SizeAt(pre);
  for (int64_t p = pre + 1; p <= end;) {
    if (IsUnused(p)) {
      p += SizeAt(p) + 1;
      continue;
    }
    if (KindAt(p) == NodeKind::kText)
      out += pool.Get(static_cast<StrId>(RefAt(p)));
    ++p;
  }
  return out;
}

// ---------------------------------------------------------------------------
// DocumentContainer: name indexes
// ---------------------------------------------------------------------------

const std::vector<int64_t>& DocumentContainer::ElementsNamed(StrId qn) const {
  std::lock_guard<std::mutex> lk(index_mu_);
  if (!elem_index_built_) {
    int64_t n = LogicalSlots();
    for (int64_t p = 0; p < n;) {
      if (IsUnused(p)) {
        p += SizeAt(p) + 1;
        continue;
      }
      if (KindAt(p) == NodeKind::kElem)
        elem_index_[static_cast<StrId>(RefAt(p))].push_back(p);
      ++p;
    }
    elem_index_built_ = true;
  }
  static const std::vector<int64_t> kEmpty;
  auto it = elem_index_.find(qn);
  return it == elem_index_.end() ? kEmpty : it->second;
}

const std::vector<int64_t>& DocumentContainer::AttrsNamed(StrId qn) const {
  std::lock_guard<std::mutex> lk(index_mu_);
  if (!attr_index_built_) {
    // Rows keyed by qname, ordered by owner document (pre) order.
    std::vector<int64_t> rows(attr_owner_.size());
    for (size_t i = 0; i < rows.size(); ++i) rows[i] = static_cast<int64_t>(i);
    std::stable_sort(rows.begin(), rows.end(), [this](int64_t a, int64_t b) {
      return Pre(attr_owner_[a]) < Pre(attr_owner_[b]);
    });
    for (int64_t r : rows) attr_name_index_[attr_qn_[r]].push_back(r);
    attr_index_built_ = true;
  }
  static const std::vector<int64_t> kEmpty;
  auto it = attr_name_index_.find(qn);
  return it == attr_name_index_.end() ? kEmpty : it->second;
}

// ---------------------------------------------------------------------------
// DocumentContainer: subtree copy (paper §5.1 "pasting of encodings")
// ---------------------------------------------------------------------------

int64_t DocumentContainer::CopySubtree(const DocumentContainer& src,
                                       int64_t src_pre, int32_t base_level,
                                       int32_t frag) {
  // Collect emitted (real) source slots in pre order, compacting unused runs.
  std::vector<int64_t> srcs;
  int64_t end = src_pre + src.SizeAt(src_pre);
  for (int64_t s = src_pre; s <= end;) {
    if (src.IsUnused(s)) {
      s += src.SizeAt(s) + 1;
      continue;
    }
    srcs.push_back(s);
    ++s;
  }

  int64_t dst_root = PhysicalSlots();
  int32_t root_level = src.LevelAt(src_pre);
  for (size_t i = 0; i < srcs.size(); ++i) {
    int64_t s = srcs[i];
    // New size = number of emitted nodes inside (s, s + size(s)].
    auto ub = std::upper_bound(srcs.begin(), srcs.end(), s + src.SizeAt(s));
    int64_t new_size = (ub - srcs.begin()) - static_cast<int64_t>(i) - 1;
    NodeKind kind = src.KindAt(s);
    int64_t ref = src.RefAt(s);
    if (kind == NodeKind::kPI) ref = AddPI(src.PITarget(ref), src.PIValue(ref));
    int64_t rid = AppendSlot(kind, ref,
                             src.LevelAt(s) - root_level + base_level, frag,
                             new_size);
    if (kind == NodeKind::kElem) {
      std::vector<int64_t> rows;
      src.AttrsOf(s, &rows);
      for (int64_t row : rows)
        AppendAttr(rid, src.AttrQn(row), src.AttrValue(row));
    }
  }
  InvalidateIndexes();
  return dst_root;
}

void DocumentContainer::ConvertToPaged(int page_bits) {
  if (paged()) return;
  page_map_ = std::make_unique<PageMap>(page_bits);
  int64_t slots = PhysicalSlots();
  int64_t page = int64_t{1} << page_bits;
  int64_t pages = (slots + page - 1) / page;
  if (pages == 0) pages = 1;
  int64_t padded = pages * page;
  // Tail padding: each unused slot records the number of directly following
  // consecutive unused slots (paper §5.2), enabling O(1) skips.
  for (int64_t i = slots; i < padded; ++i)
    AppendSlot(NodeKind::kUnused, /*ref=*/-1, /*level=*/-1, /*frag=*/-1,
               /*size=*/padded - i - 1);
  page_map_->InitIdentity(pages);
  InvalidateIndexes();
}

// ---------------------------------------------------------------------------
// DocumentManager
// ---------------------------------------------------------------------------

DocumentContainer* DocumentManager::CreateContainer(const std::string& name) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  int32_t id = static_cast<int32_t>(containers_.size());
  containers_.push_back(std::make_unique<DocumentContainer>(id, name, this));
  if (!name.empty()) by_name_[name] = id;
  return containers_.back().get();
}

Result<DocumentContainer*> DocumentManager::GetDocument(
    const std::string& name) {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end())
    return Status::NotFound("document not loaded: " + name);
  return containers_[it->second].get();
}

DocumentContainer* DocumentManager::AcquireTransient() {
  {
    std::unique_lock<std::shared_mutex> lk(mu_);
    if (!free_transients_.empty()) {
      DocumentContainer* c = free_transients_.back();
      free_transients_.pop_back();
      return c;  // already cleared on release
    }
  }
  return CreateContainer("");
}

void DocumentManager::ReleaseTransient(DocumentContainer* c) {
  if (c == nullptr) return;
  c->Clear();
  // Clear() keeps vector capacities (cheap reuse for the steady state), but
  // a pooled container must not pin the working set of one huge result
  // forever — drop outsized buffers before recycling.
  c->ShrinkIfOversized(/*max_retained_slots=*/1 << 16);
  std::unique_lock<std::shared_mutex> lk(mu_);
  free_transients_.push_back(c);
}

std::string DocumentManager::StringValueOf(const Item& node_item) const {
  if (node_item.kind == ItemKind::kAttr) {
    AttrRef a = node_item.attr();
    return pool_.Get(container(a.container)->AttrValue(a.row));
  }
  NodeRef n = node_item.node();
  return container(n.container)->StringValueOf(n.pre);
}

Item DocumentManager::AtomizeNode(const Item& node_item) {
  if (node_item.kind == ItemKind::kAttr) {
    AttrRef a = node_item.attr();
    return Item::Untyped(container(a.container)->AttrValue(a.row));
  }
  return Item::Untyped(pool_.Intern(StringValueOf(node_item)));
}

}  // namespace mxq
