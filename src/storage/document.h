// pre|size|level XML document storage (paper §2, §5.1, §5.2).
//
// A DocumentContainer stores one XML document (or the transient fragments
// created during a query) as parallel fixed-width columns:
//
//   pre    implicit: the view position of the tuple
//   size   number of *slots* in the subtree below the node
//   level  depth from the container root (-1 marks unused slots)
//   kind   document / element / text / comment / PI / unused
//   ref    kind-dependent property reference: element -> tag StrId,
//          text/comment -> content StrId, PI -> row in the PI table
//   frag   fragment ordinal (paper's frag column; separates disjoint trees
//          inside the transient container)
//
// Attributes live in a separate attribute table (owner rid, qname, value),
// the paper's per-kind property containers. All variable-width data (tag
// names, text, attribute values) is interned in the DocumentManager's global
// StringPool, which is what makes the paper's "shallow subtree copy" cheap:
// copying a subtree copies fixed-width rows only.
//
// Read-only containers are flat: rid == pre, no unused slots. After
// structural updates a container becomes *paged* (paper §5.2): the physical
// rid|size|level table is append-only and a PageMap presents the logical
// pre-ordered view; pre <-> rid conversion is the paper's swizzling. Unused
// slots carry in `size` the number of directly following unused slots so
// scans can skip them in O(1).

#ifndef MXQ_STORAGE_DOCUMENT_H_
#define MXQ_STORAGE_DOCUMENT_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/item.h"
#include "common/item_dict.h"
#include "common/status.h"
#include "common/string_pool.h"
#include "common/thread_annotations.h"

namespace mxq {

namespace ft {
class FullTextIndex;
}  // namespace ft

enum class NodeKind : uint8_t {
  kDoc = 0,
  kElem,
  kText,
  kComment,
  kPI,
  kUnused,  // free slot in a paged container (level == -1)
};

/// \brief Logical-page indirection for updatable documents (paper §5.2).
///
/// Pages have a power-of-two slot count. Logical (pre-view) page j maps to
/// physical (rid) page logical_to_physical_[j]; swizzling converts between
/// pre and rid by substituting the page number and keeping the offset bits.
class PageMap {
 public:
  explicit PageMap(int page_bits) : page_bits_(page_bits) {}

  int page_bits() const { return page_bits_; }
  int64_t page_slots() const { return int64_t{1} << page_bits_; }
  int64_t num_pages() const {
    return static_cast<int64_t>(logical_to_physical_.size());
  }

  /// Sets up an identity mapping over `pages` existing physical pages.
  void InitIdentity(int64_t pages) {
    logical_to_physical_.resize(pages);
    for (int64_t j = 0; j < pages; ++j) logical_to_physical_[j] = j;
    next_physical_ = pages;
    RebuildReverse();
  }

  /// Appends a new physical page at logical position `logical_at`
  /// (or at the end when logical_at == num_pages()). Returns the physical
  /// page number.
  int64_t InsertPage(int64_t logical_at) {
    int64_t phys = next_physical_++;
    logical_to_physical_.insert(logical_to_physical_.begin() + logical_at,
                                phys);
    RebuildReverse();
    return phys;
  }

  int64_t PreToRid(int64_t pre) const {
    int64_t page = pre >> page_bits_;
    int64_t off = pre & (page_slots() - 1);
    return (logical_to_physical_[page] << page_bits_) | off;
  }
  int64_t RidToPre(int64_t rid) const {
    int64_t page = rid >> page_bits_;
    int64_t off = rid & (page_slots() - 1);
    return (physical_to_logical_[page] << page_bits_) | off;
  }

  const std::vector<int64_t>& logical_to_physical() const {
    return logical_to_physical_;
  }

 private:
  void RebuildReverse() {
    physical_to_logical_.assign(logical_to_physical_.size(), 0);
    for (size_t j = 0; j < logical_to_physical_.size(); ++j)
      physical_to_logical_[logical_to_physical_[j]] = static_cast<int64_t>(j);
  }

  int page_bits_;
  int64_t next_physical_ = 0;
  std::vector<int64_t> logical_to_physical_;
  std::vector<int64_t> physical_to_logical_;
};

class DocumentManager;

/// \brief One document (or the transient node space) in pre|size|level form.
class DocumentContainer {
 public:
  /// \brief Cheap rollback point over the append-only growth of a container
  /// (docs/robustness.md "Ingestion"). Captures the physical lengths of the
  /// node/attribute/PI tables plus the derived counters; TruncateTo()
  /// restores them byte-identically. Only valid against growth that is pure
  /// appends since Mark() — the shredder's discipline (it never mutates
  /// pre-mark rows) — not against structural updates.
  struct Watermark {
    int64_t slots = 0;
    int64_t attrs = 0;
    int64_t pis = 0;
    int64_t node_count = 0;
    int32_t next_frag = 0;
    bool attr_appended_in_order = true;
  };
  DocumentContainer(int32_t id, std::string name, DocumentManager* mgr)
      : id_(id), name_(std::move(name)), mgr_(mgr) {}

  int32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  bool paged() const { return page_map_ != nullptr; }
  PageMap* page_map() { return page_map_.get(); }
  const PageMap* page_map() const { return page_map_.get(); }

  // ---- logical (pre) view ------------------------------------------------

  /// Number of slots in the pre view (includes unused slots when paged).
  int64_t LogicalSlots() const {
    return paged() ? page_map_->num_pages() * page_map_->page_slots()
                   : static_cast<int64_t>(size_.size());
  }

  int64_t Rid(int64_t pre) const {
    return paged() ? page_map_->PreToRid(pre) : pre;
  }
  int64_t Pre(int64_t rid) const {
    return paged() ? page_map_->RidToPre(rid) : rid;
  }

  int64_t SizeAt(int64_t pre) const { return size_[Rid(pre)]; }
  int32_t LevelAt(int64_t pre) const { return level_[Rid(pre)]; }
  NodeKind KindAt(int64_t pre) const { return kind_[Rid(pre)]; }
  int64_t RefAt(int64_t pre) const { return ref_[Rid(pre)]; }
  int32_t FragAt(int64_t pre) const { return frag_[Rid(pre)]; }
  bool IsUnused(int64_t pre) const { return KindAt(pre) == NodeKind::kUnused; }

  /// Recovered postorder rank: post = pre + size - level (paper §2).
  int64_t PostAt(int64_t pre) const {
    return pre + SizeAt(pre) - LevelAt(pre);
  }

  /// Number of *real* nodes (excludes unused slots).
  int64_t NodeCount() const { return node_count_; }

  /// First real slot at or after `pre` (skips unused runs in O(1) each).
  int64_t SkipUnused(int64_t pre) const {
    int64_t n = LogicalSlots();
    while (pre < n && IsUnused(pre)) pre += SizeAt(pre) + 1;
    return pre;
  }

  // ---- physical (rid) access & mutation ----------------------------------

  int64_t PhysicalSlots() const { return static_cast<int64_t>(size_.size()); }
  int64_t SizeAtRid(int64_t rid) const { return size_[rid]; }
  int32_t LevelAtRid(int64_t rid) const { return level_[rid]; }
  NodeKind KindAtRid(int64_t rid) const { return kind_[rid]; }

  /// Appends one physical slot; returns its rid. Sizes can be fixed up later
  /// with SetSize (shredder closes elements after children are appended).
  int64_t AppendSlot(NodeKind kind, int64_t ref, int32_t level, int32_t frag,
                     int64_t size = 0);

  void SetSize(int64_t rid, int64_t size) { size_[rid] = size; }
  void SetLevel(int64_t rid, int32_t level) { level_[rid] = level; }
  void SetKind(int64_t rid, NodeKind kind);
  void SetRef(int64_t rid, int64_t ref) { ref_[rid] = ref; }
  void SetFrag(int64_t rid, int32_t frag) { frag_[rid] = frag; }

  /// Appends an attribute for element `owner_rid`. Returns the attr row.
  int64_t AppendAttr(int64_t owner_rid, StrId qn, StrId value);

  /// Copies one physical slot's row onto another (source row is left
  /// untouched; caller overwrites or marks it unused).
  void MoveSlotRaw(int64_t from_rid, int64_t to_rid);

  /// Marks a physical slot unused; `run_remaining` = number of directly
  /// following consecutive unused slots (paper §5.2 free-slot encoding).
  void MarkUnused(int64_t rid, int64_t run_remaining);

  /// Shifts attribute owner rids in [lo, hi) by `delta` (slot shifting).
  void ShiftAttrOwners(int64_t lo, int64_t hi, int64_t delta);

  /// Re-shreds this flat container into a paged layout, leaving
  /// (100 - fill_pct)% of every logical page unused for future inserts —
  /// what the paper's shredder does up front (§5.2).
  void RebuildPaged(int page_bits, int fill_pct);

  void SetAttrValue(int64_t row, StrId value) { attr_val_[row] = value; }

  // ---- attributes ----------------------------------------------------------

  int64_t AttrCount() const { return static_cast<int64_t>(attr_owner_.size()); }
  int64_t AttrOwnerRid(int64_t row) const { return attr_owner_[row]; }
  StrId AttrQn(int64_t row) const { return attr_qn_[row]; }
  StrId AttrValue(int64_t row) const { return attr_val_[row]; }

  /// All attribute rows of the element at `pre`, in document (shred) order.
  void AttrsOf(int64_t pre, std::vector<int64_t>* rows) const;

  /// Attribute row of `pre` with qname `qn`, or -1.
  int64_t AttrOf(int64_t pre, StrId qn) const;

  // ---- PI property table ---------------------------------------------------

  int64_t AddPI(StrId target, StrId value) {
    pi_target_.push_back(target);
    pi_value_.push_back(value);
    return static_cast<int64_t>(pi_target_.size()) - 1;
  }
  StrId PITarget(int64_t row) const { return pi_target_[row]; }
  StrId PIValue(int64_t row) const { return pi_value_[row]; }
  int64_t PICount() const { return static_cast<int64_t>(pi_target_.size()); }

  // ---- watermark rollback (atomic ingestion, docs/robustness.md) -----------

  /// Snapshot of the current append frontier; see Watermark.
  Watermark Mark() const {
    Watermark m;
    m.slots = PhysicalSlots();
    m.attrs = AttrCount();
    m.pis = PICount();
    m.node_count = node_count_;
    m.next_frag = next_frag_;
    m.attr_appended_in_order = attr_appended_in_order_;
    return m;
  }

  /// Rolls every table back to `m`, discarding all rows appended since.
  /// After the call the container is byte-identical to its state at Mark()
  /// (interned strings stay in the shared pool — interning is idempotent
  /// and ids are never reused, so leftovers are invisible). No-op when
  /// nothing was appended.
  void TruncateTo(const Watermark& m);

  /// \brief Full structural audit of the pre|size|level encoding.
  ///
  /// Verifies, over the logical (pre) view: subtree sizes nest properly and
  /// never overrun the container, levels increase by exactly one from parent
  /// to child (roots at level 0), every subtree carries its root's fragment
  /// ordinal and root fragments are monotone, unused runs are well formed,
  /// node_count matches, and every attribute/PI/string reference is in
  /// range. Returns kInternal with a diagnostic on the first violation.
  /// O(n); test/recovery tooling, not a hot path.
  Status CheckInvariants() const;

  // ---- navigation helpers --------------------------------------------------

  /// Parent pre of `pre`, or -1 for fragment roots.
  int64_t ParentOf(int64_t pre) const;

  /// True iff `anc` is an ancestor of `desc` (proper).
  bool IsAncestor(int64_t anc, int64_t desc) const {
    return anc < desc && desc <= anc + SizeAt(anc);
  }

  /// XPath string value of the node at `pre` (concatenated descendant text,
  /// or own content for text/comment/PI).
  std::string StringValueOf(int64_t pre) const;

  // ---- element/attribute name indexes (paper: "index on element names") ---

  /// Pres of all elements with tag `qn`, in document order.
  const std::vector<int64_t>& ElementsNamed(StrId qn) const
      MXQ_EXCLUDES(index_mu_);
  /// Attribute rows with qname `qn`, sorted by owner document order.
  const std::vector<int64_t>& AttrsNamed(StrId qn) const
      MXQ_EXCLUDES(index_mu_);

  /// Inverted fulltext index over this container's text nodes
  /// (fulltext/index.h). Get-or-build under index_mu_ like the name
  /// indexes; the returned instance is immutable, so probes read it
  /// lock-free while InvalidateIndexes()/Clear() swap in a rebuild for
  /// later executions. Defined in fulltext/index.cc.
  std::shared_ptr<const ft::FullTextIndex> fulltext_index() const
      MXQ_EXCLUDES(index_mu_);
  /// The index if already built, else null (no build; introspection/tests).
  std::shared_ptr<const ft::FullTextIndex> fulltext_index_if_built() const
      MXQ_EXCLUDES(index_mu_);

  void InvalidateIndexes() MXQ_EXCLUDES(index_mu_) {
    MutexLock lk(&index_mu_);
    elem_index_.clear();
    attr_name_index_.clear();
    elem_index_built_ = false;
    attr_index_built_ = false;
    attr_owner_sorted_ = attr_appended_in_order_;
    attr_perm_.clear();
    ft_index_.reset();
  }

  // ---- subtree copy (element construction, updates) ------------------------

  /// Copies the subtree rooted at `src_pre` of `src` to the end of this
  /// container as a new fragment (or below an open builder level).
  /// Unused slots are compacted away; sizes/levels are rebased. Returns the
  /// new root's pre (== rid: only valid on flat containers).
  int64_t CopySubtree(const DocumentContainer& src, int64_t src_pre,
                      int32_t base_level, int32_t frag);

  DocumentManager* manager() const { return mgr_; }

  /// Converts this flat container into a paged one (paper §5.2). Existing
  /// slots are padded to whole pages with unused slots. No-op if paged.
  void ConvertToPaged(int page_bits);

  int32_t next_frag() { return next_frag_++; }

  /// Drops all nodes/attributes/PIs (transient container reuse between
  /// query executions; outstanding node items become invalid).
  void Clear() {
    size_.clear();
    level_.clear();
    kind_.clear();
    ref_.clear();
    frag_.clear();
    node_count_ = 0;
    next_frag_ = 0;
    attr_owner_.clear();
    attr_qn_.clear();
    attr_val_.clear();
    attr_appended_in_order_ = true;
    pi_target_.clear();
    pi_value_.clear();
    page_map_.reset();
    InvalidateIndexes();
  }

  /// Frees heap buffers whose retained capacity exceeds
  /// `max_retained_slots` entries (Clear() keeps capacity; a recycled
  /// transient container must not pin one huge execution's working set).
  void ShrinkIfOversized(size_t max_retained_slots) {
    auto shrink = [max_retained_slots](auto& v) {
      if (v.capacity() > max_retained_slots) {
        v.clear();
        v.shrink_to_fit();
      }
    };
    shrink(size_);
    shrink(level_);
    shrink(kind_);
    shrink(ref_);
    shrink(frag_);
    shrink(attr_owner_);
    shrink(attr_qn_);
    shrink(attr_val_);
    shrink(attr_perm_);
    shrink(pi_target_);
    shrink(pi_value_);
  }

 private:
  friend class DocumentManager;  // PublishDocument names a finished load

  void EnsureAttrPerm() const MXQ_EXCLUDES(index_mu_);

  int32_t id_;
  std::string name_;
  DocumentManager* mgr_;

  // Physical node table (indexed by rid; flat containers: rid == pre).
  std::vector<int64_t> size_;
  std::vector<int32_t> level_;
  std::vector<NodeKind> kind_;
  std::vector<int64_t> ref_;
  std::vector<int32_t> frag_;
  int64_t node_count_ = 0;
  int32_t next_frag_ = 0;

  // Attribute table.
  std::vector<int64_t> attr_owner_;  // rid of owning element
  std::vector<StrId> attr_qn_;
  std::vector<StrId> attr_val_;
  bool attr_appended_in_order_ = true;  // owners nondecreasing?
  // publication: attr_owner_sorted_ / attr_perm_ follow the container's
  // two-phase discipline, so they are deliberately not GUARDED_BY —
  // mutation paths (AppendAttr, ShiftAttrOwners, RebuildPaged, TruncateTo)
  // write them under the single-writer/external-exclusion contract
  // (docs/api.md "Thread safety"), while concurrent read-only executions
  // build attr_perm_ lazily under index_mu_ (EnsureAttrPerm) and then read
  // it lock-free: it is immutable until InvalidateIndexes, and every reader
  // passed through the EnsureAttrPerm critical section, which orders the
  // build before its reads.
  mutable bool attr_owner_sorted_ = true;
  mutable std::vector<int64_t> attr_perm_;  // rows sorted by owner rid

  // PI property table.
  std::vector<StrId> pi_target_;
  std::vector<StrId> pi_value_;

  // Lazy name indexes (document order). Built on first use under index_mu_
  // so concurrent read-only queries can share one container; the returned
  // vectors are stable until InvalidateIndexes (updates require external
  // exclusion, see docs/api.md "Thread safety").
  mutable Mutex index_mu_;
  mutable std::unordered_map<StrId, std::vector<int64_t>> elem_index_
      MXQ_GUARDED_BY(index_mu_);
  mutable std::unordered_map<StrId, std::vector<int64_t>> attr_name_index_
      MXQ_GUARDED_BY(index_mu_);
  mutable bool elem_index_built_ MXQ_GUARDED_BY(index_mu_) = false;
  mutable bool attr_index_built_ MXQ_GUARDED_BY(index_mu_) = false;
  mutable std::shared_ptr<const ft::FullTextIndex> ft_index_
      MXQ_GUARDED_BY(index_mu_);

  std::unique_ptr<PageMap> page_map_;
};

/// \brief Process-global registry of document containers plus the shared
/// string pool ("loaded documents" table, paper Fig 9).
///
/// The registry is internally synchronized: containers can be created,
/// looked up, and recycled from any thread, which is what lets N sessions
/// execute queries concurrently against one manager. Container *contents*
/// follow a single-writer discipline — loaded documents are read-only during
/// query execution, transient containers are written only by the execution
/// that acquired them.
class DocumentManager {
 public:
  DocumentManager() : ctr_chunks_(kCtrMaxChunks) {}
  ~DocumentManager();
  DocumentManager(const DocumentManager&) = delete;
  DocumentManager& operator=(const DocumentManager&) = delete;

  StringPool& strings() { return pool_; }
  const StringPool& strings() const { return pool_; }

  /// Item dictionary shared by every container and session of this manager
  /// (codes must be comparable across containers — value joins mix items
  /// from loaded documents and transient fragments, so the dictionary is
  /// registry-wide, not per DocumentContainer). Append-only + internally
  /// synchronized like the string pool; Decode/HashCode/EqualCodes on
  /// published codes are lock-free (docs/api.md "Thread safety").
  ItemDict& item_dict() { return dict_; }
  const ItemDict& item_dict() const { return dict_; }

  /// Creates a fresh container. `name` may be empty for transient containers.
  DocumentContainer* CreateContainer(const std::string& name)
      MXQ_EXCLUDES(mu_);

  /// Binds `name` to an already-registered container, making it visible to
  /// GetDocument / doc(). ShredDocument publishes only after a fully
  /// successful parse, so a failed load is never observable by name
  /// (docs/robustness.md "Ingestion"). Rebinding an existing name points it
  /// at the new container (the previous one stays registered by id).
  void PublishDocument(DocumentContainer* c, const std::string& name)
      MXQ_EXCLUDES(mu_);

  /// Looks up a loaded document by name.
  Result<DocumentContainer*> GetDocument(const std::string& name)
      MXQ_EXCLUDES(mu_);

  /// Resolves a container id, lock-free: the registry is append-only
  /// chunked storage with a release-published count, the same discipline as
  /// StringPool::Get — any id obtained through a synchronized channel (a
  /// node item, a column, GetDocument) resolves without touching mu_. This
  /// sits on every per-row node dereference (StringValueOf, serialization,
  /// staircase batch setup), which is why it must not take a shared lock.
  DocumentContainer* container(int32_t id) {
    return ctr_chunks_[static_cast<size_t>(id) >> kCtrChunkBits].load(
        std::memory_order_acquire)[id & (kCtrChunkSize - 1)];
  }
  const DocumentContainer* container(int32_t id) const {
    return ctr_chunks_[static_cast<size_t>(id) >> kCtrChunkBits].load(
        std::memory_order_acquire)[id & (kCtrChunkSize - 1)];
  }
  int32_t num_containers() const {
    return ctr_count_.load(std::memory_order_acquire);
  }

  // ---- transient container lifecycle ---------------------------------------
  //
  // Every query execution owns one transient container for constructed
  // nodes. Containers are registered for the manager's lifetime (node items
  // reference them by id), so instead of deleting they are recycled: a
  // released container is Clear()ed and handed to the next acquirer. The
  // steady-state transient count equals the peak number of concurrent
  // executions, not the number of executions ever run.

  /// Returns an empty transient container exclusively owned by the caller
  /// until released (typically via ~QueryResult / ~ResultCursor).
  DocumentContainer* AcquireTransient() MXQ_EXCLUDES(mu_);

  /// Returns a container obtained from AcquireTransient to the free pool.
  /// Outstanding node items referencing it become invalid.
  void ReleaseTransient(DocumentContainer* c) MXQ_EXCLUDES(mu_);

  /// Containers currently in the transient free pool (introspection/tests).
  int32_t free_transients() const MXQ_EXCLUDES(mu_) {
    ReaderLock lk(&mu_);
    return static_cast<int32_t>(free_transients_.size());
  }

  /// Document-order-stable string value of any node item (element, text,
  /// attr, ...).
  std::string StringValueOf(const Item& node_item) const;

  /// Atomizes a node item to an untypedAtomic Item (interns string value).
  Item AtomizeNode(const Item& node_item);

 private:
  // Container registry storage: append-only chunks of stable pointers, ids
  // assigned densely. 1024 containers per chunk x 4096 chunks = 4M
  // containers; the chunk-pointer table is 32 KiB, allocated once. Writers
  // (CreateContainer) serialize on mu_ and publish via ctr_count_; readers
  // (container()) are lock-free.
  static constexpr int kCtrChunkBits = 10;
  static constexpr size_t kCtrChunkSize = size_t{1} << kCtrChunkBits;
  static constexpr size_t kCtrMaxChunks = size_t{1} << 12;

  StringPool pool_;
  ItemDict dict_;
  mutable SharedMutex mu_;  // guards by_name_ / free pool / creation
  // publication: chunk pointers release-stored once by CreateContainer
  // (under mu_), acquire-loaded by the lock-free container() fast path;
  // slot contents are covered by the ctr_count_ publication below.
  std::vector<std::atomic<DocumentContainer**>> ctr_chunks_;
  // publication: release-stored after the registry slot is written, so any
  // id obtained through a synchronized channel resolves without mu_.
  std::atomic<int32_t> ctr_count_{0};
  std::unordered_map<std::string, int32_t> by_name_ MXQ_GUARDED_BY(mu_);
  std::vector<DocumentContainer*> free_transients_ MXQ_GUARDED_BY(mu_);
};

}  // namespace mxq

#endif  // MXQ_STORAGE_DOCUMENT_H_
