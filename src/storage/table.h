// Tables: named column bundles plus the peephole-optimizer column properties.
//
// The paper (§4.1) drives its peephole optimization off a small set of
// column properties maintained on intermediate results:
//   dense(c)        c is the sequence 1,2,3,... (or 0,1,2,... — see kDense0)
//   key(c)          c is duplicate-free
//   const(c,v)      c holds constant value v
//   ord([c_i])      tuples are lexicographically ordered on [c_i]
//   grpord([c_i],g) within every group of equal g, tuples are ord([c_i])
//                   (groups need NOT be clustered)
// `indep` is a compile-time property of subplans and lives in the compiler.
//
// We attach the properties to materialized tables and let every operator
// derive output properties from input properties — operationally equivalent
// to static inference over the plan DAG, since each plan node materializes
// exactly one table.

#ifndef MXQ_STORAGE_TABLE_H_
#define MXQ_STORAGE_TABLE_H_

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "storage/column.h"

namespace mxq {

/// \brief Column properties of one table (paper §4.1).
struct TableProps {
  struct GrpOrd {
    std::vector<std::string> cols;
    std::string group;
  };

  std::set<std::string> dense;   // dense ascending ints starting at 1 (or 0)
  std::set<std::string> key;     // duplicate-free
  std::map<std::string, Item> constants;
  std::vector<std::string> ord;  // lexicographic major->minor order
  std::vector<GrpOrd> grpord;

  bool is_dense(const std::string& c) const { return dense.count(c) > 0; }
  bool is_key(const std::string& c) const { return key.count(c) > 0; }
  bool is_const(const std::string& c) const { return constants.count(c) > 0; }

  /// True if the table is known ordered on the given prefix columns.
  bool OrderedBy(const std::vector<std::string>& cols) const {
    if (cols.size() > ord.size()) return false;
    return std::equal(cols.begin(), cols.end(), ord.begin());
  }

  /// True if grpord(cols, g) is known to hold.
  bool GrpOrderedBy(const std::vector<std::string>& cols,
                    const std::string& g) const {
    // ord([g, cols...]) implies grpord(cols, g); so does ord(cols) itself.
    std::vector<std::string> with_g;
    with_g.push_back(g);
    with_g.insert(with_g.end(), cols.begin(), cols.end());
    if (OrderedBy(with_g) || OrderedBy(cols)) return true;
    for (const auto& go : grpord) {
      if (go.group != g) continue;
      if (cols.size() <= go.cols.size() &&
          std::equal(cols.begin(), cols.end(), go.cols.begin()))
        return true;
    }
    return false;
  }

  /// Drops every property that mentions a column not in `kept`.
  void RestrictTo(const std::set<std::string>& kept) {
    std::erase_if(dense, [&](const std::string& c) { return !kept.count(c); });
    std::erase_if(key, [&](const std::string& c) { return !kept.count(c); });
    std::erase_if(constants,
                  [&](const auto& kv) { return !kept.count(kv.first); });
    // ord prefix survives up to the first dropped column.
    size_t n = 0;
    while (n < ord.size() && kept.count(ord[n])) ++n;
    ord.resize(n);
    std::erase_if(grpord, [&](const GrpOrd& go) {
      if (!kept.count(go.group)) return true;
      for (const auto& c : go.cols)
        if (!kept.count(c)) return true;
      return false;
    });
  }

  /// Renames column `from` to `to` in all properties.
  void RenameCol(const std::string& from, const std::string& to) {
    auto fix = [&](std::string& c) {
      if (c == from) c = to;
    };
    if (dense.erase(from)) dense.insert(to);
    if (key.erase(from)) key.insert(to);
    auto it = constants.find(from);
    if (it != constants.end()) {
      Item v = it->second;
      constants.erase(it);
      constants[to] = v;
    }
    for (auto& c : ord) fix(c);
    for (auto& go : grpord) {
      fix(go.group);
      for (auto& c : go.cols) fix(c);
    }
  }

  void Clear() {
    dense.clear();
    key.clear();
    constants.clear();
    ord.clear();
    grpord.clear();
  }
};

/// \brief An in-memory table: parallel named columns + properties.
///
/// Columns are shared (shared_ptr); a Table must not mutate a column it did
/// not create itself.
///
/// A table may be *lazily selected*: per column, an optional SelVector maps
/// logical rows to physical rows of the stored column. Filters produce such
/// tables in O(selectivity) without touching column payloads; `col()`
/// materializes a flat column on first access (memoized), so external
/// consumers never observe the indirection. Operators that want to avoid the
/// materialization read through `I64At`/`ItemAt` or gather via
/// `raw_col`/`col_sel` directly (see algebra/ops.cc's pipeline breakers).
class Table {
 public:
  Table() = default;

  static std::shared_ptr<Table> Make() { return std::make_shared<Table>(); }

  size_t rows() const { return rows_; }
  size_t num_cols() const { return cols_.size(); }

  void set_rows(size_t n) { rows_ = n; }

  /// Appends a column; the first column fixes the row count.
  void AddColumn(const std::string& name, ColumnPtr col) {
    if (cols_.empty()) rows_ = col->size();
    names_.push_back(name);
    cols_.push_back(std::move(col));
    sels_.push_back(nullptr);
  }

  /// Appends a column viewed through a selection vector (its logical row
  /// count is sel->size()). Used by π to propagate laziness.
  void AddColumn(const std::string& name, ColumnPtr col, SelVectorPtr sel) {
    if (cols_.empty()) rows_ = sel ? sel->size() : col->size();
    names_.push_back(name);
    cols_.push_back(std::move(col));
    sels_.push_back(std::move(sel));
  }

  int ColumnIndex(const std::string& name) const {
    for (size_t i = 0; i < names_.size(); ++i)
      if (names_[i] == name) return static_cast<int>(i);
    return -1;
  }
  bool HasColumn(const std::string& name) const {
    return ColumnIndex(name) >= 0;
  }

  /// Flat column access; materializes (once) through the selection vector.
  /// The gather runs morsel-parallel at the process default width (env
  /// MXQ_THREADS) — parallel gathers are position-wise identical to serial
  /// ones, so memoized content never depends on the thread count.
  const ColumnPtr& col(size_t i) const {
    if (sels_[i]) {
      cols_[i] = GatherColumnAt(*cols_[i], sels_[i]->idx, DefaultExecThreads());
      sels_[i] = nullptr;
    }
    return cols_[i];
  }
  const ColumnPtr& col(const std::string& name) const {
    int i = ColumnIndex(name);
    assert(i >= 0);
    return col(static_cast<size_t>(i));
  }
  const std::string& name(size_t i) const { return names_[i]; }
  const std::vector<std::string>& names() const { return names_; }

  // Lazy-selection aware access (no materialization).
  const ColumnPtr& raw_col(size_t i) const { return cols_[i]; }
  const SelVectorPtr& col_sel(size_t i) const { return sels_[i]; }
  bool lazy() const {
    for (const auto& s : sels_)
      if (s) return true;
    return false;
  }
  int64_t I64At(size_t i, size_t row) const {
    return cols_[i]->GetI64(sels_[i] ? sels_[i]->idx[row] : row);
  }
  Item ItemAt(size_t i, size_t row) const {
    return cols_[i]->GetItem(sels_[i] ? sels_[i]->idx[row] : row);
  }

  /// Narrows to a subset of *logical* rows without copying any column data:
  /// shares columns and composes selection vectors. `keep` holds logical row
  /// indexes of this table, in output order. Properties are NOT derived —
  /// the caller assigns them (operators know the semantics of the subset).
  std::shared_ptr<Table> Select(SelVectorPtr keep) const {
    auto t = Make();
    t->names_ = names_;
    t->cols_ = cols_;
    t->rows_ = keep->size();
    t->sels_.reserve(cols_.size());
    // Compose per column, memoizing per distinct input SelVector (columns of
    // one table typically share at most a couple).
    std::vector<std::pair<const SelVector*, SelVectorPtr>> composed;
    for (const auto& s : sels_) {
      if (!s) {
        t->sels_.push_back(keep);
        continue;
      }
      SelVectorPtr c;
      for (const auto& [raw, v] : composed)
        if (raw == s.get()) {
          c = v;
          break;
        }
      if (!c) {
        auto v = std::make_shared<SelVector>();
        v->idx.resize(keep->size());
        for (size_t k = 0; k < keep->size(); ++k)
          v->idx[k] = s->idx[keep->idx[k]];
        c = std::move(v);
        composed.emplace_back(s.get(), c);
      }
      t->sels_.push_back(std::move(c));
    }
    return t;
  }

  TableProps& props() { return props_; }
  const TableProps& props() const { return props_; }

  /// Shallow copy sharing all columns (cheap; lazy state carried over).
  std::shared_ptr<Table> ShallowCopy() const {
    auto t = Make();
    t->names_ = names_;
    t->cols_ = cols_;
    t->sels_ = sels_;
    t->rows_ = rows_;
    t->props_ = props_;
    return t;
  }

 private:
  std::vector<std::string> names_;
  // `mutable`: col() memoizes the gather of a lazily selected column; the
  // logical content is unchanged, so sharing tables across plan-DAG
  // consumers stays sound (the engine is single-threaded per query).
  mutable std::vector<ColumnPtr> cols_;
  mutable std::vector<SelVectorPtr> sels_;  // parallel to cols_; null = flat
  size_t rows_ = 0;
  TableProps props_;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace mxq

#endif  // MXQ_STORAGE_TABLE_H_
