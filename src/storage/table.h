// Tables: named column bundles plus the peephole-optimizer column properties.
//
// The paper (§4.1) drives its peephole optimization off a small set of
// column properties maintained on intermediate results:
//   dense(c)        c is the sequence 1,2,3,... (or 0,1,2,... — see kDense0)
//   key(c)          c is duplicate-free
//   const(c,v)      c holds constant value v
//   ord([c_i])      tuples are lexicographically ordered on [c_i]
//   grpord([c_i],g) within every group of equal g, tuples are ord([c_i])
//                   (groups need NOT be clustered)
// `indep` is a compile-time property of subplans and lives in the compiler.
//
// We attach the properties to materialized tables and let every operator
// derive output properties from input properties — operationally equivalent
// to static inference over the plan DAG, since each plan node materializes
// exactly one table.

#ifndef MXQ_STORAGE_TABLE_H_
#define MXQ_STORAGE_TABLE_H_

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "storage/column.h"

namespace mxq {

/// \brief Column properties of one table (paper §4.1).
struct TableProps {
  struct GrpOrd {
    std::vector<std::string> cols;
    std::string group;
  };

  std::set<std::string> dense;   // dense ascending ints starting at 1 (or 0)
  std::set<std::string> key;     // duplicate-free
  std::map<std::string, Item> constants;
  std::vector<std::string> ord;  // lexicographic major->minor order
  std::vector<GrpOrd> grpord;

  bool is_dense(const std::string& c) const { return dense.count(c) > 0; }
  bool is_key(const std::string& c) const { return key.count(c) > 0; }
  bool is_const(const std::string& c) const { return constants.count(c) > 0; }

  /// True if the table is known ordered on the given prefix columns.
  bool OrderedBy(const std::vector<std::string>& cols) const {
    if (cols.size() > ord.size()) return false;
    return std::equal(cols.begin(), cols.end(), ord.begin());
  }

  /// True if grpord(cols, g) is known to hold.
  bool GrpOrderedBy(const std::vector<std::string>& cols,
                    const std::string& g) const {
    // ord([g, cols...]) implies grpord(cols, g); so does ord(cols) itself.
    std::vector<std::string> with_g;
    with_g.push_back(g);
    with_g.insert(with_g.end(), cols.begin(), cols.end());
    if (OrderedBy(with_g) || OrderedBy(cols)) return true;
    for (const auto& go : grpord) {
      if (go.group != g) continue;
      if (cols.size() <= go.cols.size() &&
          std::equal(cols.begin(), cols.end(), go.cols.begin()))
        return true;
    }
    return false;
  }

  /// Drops every property that mentions a column not in `kept`.
  void RestrictTo(const std::set<std::string>& kept) {
    std::erase_if(dense, [&](const std::string& c) { return !kept.count(c); });
    std::erase_if(key, [&](const std::string& c) { return !kept.count(c); });
    std::erase_if(constants,
                  [&](const auto& kv) { return !kept.count(kv.first); });
    // ord prefix survives up to the first dropped column.
    size_t n = 0;
    while (n < ord.size() && kept.count(ord[n])) ++n;
    ord.resize(n);
    std::erase_if(grpord, [&](const GrpOrd& go) {
      if (!kept.count(go.group)) return true;
      for (const auto& c : go.cols)
        if (!kept.count(c)) return true;
      return false;
    });
  }

  /// Renames column `from` to `to` in all properties.
  void RenameCol(const std::string& from, const std::string& to) {
    auto fix = [&](std::string& c) {
      if (c == from) c = to;
    };
    if (dense.erase(from)) dense.insert(to);
    if (key.erase(from)) key.insert(to);
    auto it = constants.find(from);
    if (it != constants.end()) {
      Item v = it->second;
      constants.erase(it);
      constants[to] = v;
    }
    for (auto& c : ord) fix(c);
    for (auto& go : grpord) {
      fix(go.group);
      for (auto& c : go.cols) fix(c);
    }
  }

  void Clear() {
    dense.clear();
    key.clear();
    constants.clear();
    ord.clear();
    grpord.clear();
  }
};

/// \brief An in-memory table: parallel named columns + properties.
///
/// Columns are shared (shared_ptr); a Table must not mutate a column it did
/// not create itself.
class Table {
 public:
  Table() = default;

  static std::shared_ptr<Table> Make() { return std::make_shared<Table>(); }

  size_t rows() const { return rows_; }
  size_t num_cols() const { return cols_.size(); }

  void set_rows(size_t n) { rows_ = n; }

  /// Appends a column; the first column fixes the row count.
  void AddColumn(const std::string& name, ColumnPtr col) {
    if (cols_.empty()) rows_ = col->size();
    names_.push_back(name);
    cols_.push_back(std::move(col));
  }

  int ColumnIndex(const std::string& name) const {
    for (size_t i = 0; i < names_.size(); ++i)
      if (names_[i] == name) return static_cast<int>(i);
    return -1;
  }
  bool HasColumn(const std::string& name) const {
    return ColumnIndex(name) >= 0;
  }

  const ColumnPtr& col(size_t i) const { return cols_[i]; }
  const ColumnPtr& col(const std::string& name) const {
    int i = ColumnIndex(name);
    assert(i >= 0);
    return cols_[i];
  }
  const std::string& name(size_t i) const { return names_[i]; }
  const std::vector<std::string>& names() const { return names_; }

  TableProps& props() { return props_; }
  const TableProps& props() const { return props_; }

  /// Shallow copy sharing all columns (cheap).
  std::shared_ptr<Table> ShallowCopy() const {
    auto t = Make();
    t->names_ = names_;
    t->cols_ = cols_;
    t->rows_ = rows_;
    t->props_ = props_;
    return t;
  }

 private:
  std::vector<std::string> names_;
  std::vector<ColumnPtr> cols_;
  size_t rows_ = 0;
  TableProps props_;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace mxq

#endif  // MXQ_STORAGE_TABLE_H_
