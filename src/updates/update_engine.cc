#include "updates/update_engine.h"

#include <algorithm>
#include <cassert>

#include "xml/shredder.h"

namespace mxq {
namespace updates {

UpdateEngine::UpdateEngine(DocumentContainer* doc, int page_bits,
                           int fill_pct)
    : doc_(doc), page_bits_(page_bits), fill_pct_(fill_pct) {
  if (!doc_->paged()) RepackPaged(doc_, page_bits, fill_pct);
  page_bits_ = doc_->page_map()->page_bits();
}

void UpdateEngine::RepackPaged(DocumentContainer* doc, int page_bits,
                               int fill_pct) {
  doc->RebuildPaged(page_bits, fill_pct);
}

// ---------------------------------------------------------------------------
// value updates — plain relational column updates (§5.2)
// ---------------------------------------------------------------------------

Status UpdateEngine::ReplaceText(int64_t pre, std::string_view text) {
  NodeKind k = doc_->KindAt(pre);
  if (k != NodeKind::kText && k != NodeKind::kComment)
    return Status::InvalidArgument("ReplaceText: not a text/comment node");
  doc_->SetRef(doc_->Rid(pre), doc_->manager()->strings().Intern(text));
  return Status::OK();
}

Status UpdateEngine::ReplaceAttrValue(int64_t attr_row,
                                      std::string_view value) {
  if (attr_row < 0 || attr_row >= doc_->AttrCount())
    return Status::InvalidArgument("ReplaceAttrValue: bad attribute row");
  doc_->SetAttrValue(attr_row, doc_->manager()->strings().Intern(value));
  return Status::OK();
}

Status UpdateEngine::RenameElement(int64_t pre, std::string_view tag) {
  if (doc_->KindAt(pre) != NodeKind::kElem)
    return Status::InvalidArgument("RenameElement: not an element");
  doc_->SetRef(doc_->Rid(pre), doc_->manager()->strings().Intern(tag));
  doc_->InvalidateIndexes();
  return Status::OK();
}

Status UpdateEngine::SetAttribute(int64_t pre, std::string_view name,
                                  std::string_view value) {
  if (doc_->KindAt(pre) != NodeKind::kElem)
    return Status::InvalidArgument("SetAttribute: not an element");
  StringPool& pool = doc_->manager()->strings();
  StrId qn = pool.Intern(name);
  int64_t row = doc_->AttrOf(pre, qn);
  if (row >= 0) {
    doc_->SetAttrValue(row, pool.Intern(value));
  } else {
    doc_->AppendAttr(doc_->Rid(pre), qn, pool.Intern(value));
    doc_->InvalidateIndexes();
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// structural updates
// ---------------------------------------------------------------------------

int64_t UpdateEngine::FirstFreeInPage(int64_t page) const {
  int64_t end = PageStart(page + 1);
  int64_t s = end;
  while (s > PageStart(page) && doc_->IsUnused(s - 1)) --s;
  return s;
}

Result<int64_t> UpdateEngine::MakeGap(int64_t at, int64_t parent_pre,
                                      int64_t n_slots) {
  if (at >= doc_->LogicalSlots()) {
    // Insertion past the last page (insert-after the final node): append
    // fresh pages at the end of the logical order. Every ancestor's range
    // ends exactly at at-1 and stretches over the new content.
    const int64_t page_slots = PageSlots();
    const int64_t new_pages = (n_slots + page_slots - 1) / page_slots;
    const int64_t added = new_pages * page_slots;
    stats_.pages_appended += new_pages;
    stats_.pages_touched += new_pages;
    for (int64_t s = 0; s < added; ++s)
      doc_->AppendSlot(NodeKind::kUnused, -1, -1, -1,
                       added - 1 - s);
    for (int64_t j = 0; j < new_pages; ++j)
      doc_->page_map()->InsertPage(doc_->page_map()->num_pages());
    for (int64_t a = parent_pre; a >= 0; a = doc_->ParentOf(a)) {
      int64_t delta = (at + n_slots - 1) - (a + doc_->SizeAt(a));
      if (delta > 0) {
        pending_.Add(doc_->Rid(a), delta);
        doc_->SetSize(doc_->Rid(a), doc_->SizeAt(a) + delta);
        ++stats_.size_deltas;
      }
    }
    doc_->InvalidateIndexes();
    return at;
  }

  const int64_t page = PageOf(at);
  const int64_t page_end = PageStart(page + 1);
  const int64_t free_start = FirstFreeInPage(page);
  const int64_t free = page_end - std::max(free_start, at);

  // Ancestor chain of the insertion point (parent and up), by pre.
  std::vector<int64_t> chain;
  for (int64_t a = parent_pre; a >= 0; a = doc_->ParentOf(a))
    chain.push_back(a);
  // Nodes covering the page-end boundary from inside the shifted block.
  std::vector<int64_t> boundary;
  {
    int64_t q = doc_->SkipUnused(page_end);
    if (q < doc_->LogicalSlots()) {
      for (int64_t a = q; a >= 0; a = doc_->ParentOf(a))
        if (a >= at && a < free_start) boundary.push_back(a);
    }
  }

  if (n_slots <= free) {
    // Case A (paper Fig 11, "first try to handle the insert inside a page"):
    // shift the page tail right within the page; only this page is written.
    ++stats_.pages_touched;
    int64_t block_len = std::max<int64_t>(0, free_start - at);
    for (int64_t k = free_start - 1; k >= at; --k) {
      doc_->MoveSlotRaw(doc_->Rid(k), doc_->Rid(k + n_slots));
      ++stats_.slots_shifted;
    }
    // Attribute owners of shifted elements move with them. Within a page,
    // logical and physical offsets coincide, so rid range == pre range.
    if (block_len > 0)
      doc_->ShiftAttrOwners(doc_->Rid(at), doc_->Rid(at) + block_len,
                            n_slots);
    // Rewrite the shrunken free run.
    for (int64_t k = free_start + n_slots; k < page_end; ++k)
      doc_->MarkUnused(doc_->Rid(k), page_end - 1 - k);
    // Size maintenance (as deltas, §5.2): ancestors whose subtree ends
    // inside this page grow by n; ancestors spanning past the page are
    // unaffected (the page's slot count did not change).
    for (int64_t a : chain) {
      int64_t end = a + doc_->SizeAt(a);
      if (end < page_end) {
        pending_.Add(doc_->Rid(a), n_slots);
        doc_->SetSize(doc_->Rid(a), doc_->SizeAt(a) + n_slots);
        ++stats_.size_deltas;
      }
    }
    // Nodes inside the shifted block that span past the page end moved +n
    // while their later descendants did not: size shrinks by n.
    for (int64_t b : boundary) {
      // b itself shifted to b + n.
      int64_t rid = doc_->Rid(b + n_slots);
      pending_.Add(rid, -n_slots);
      doc_->SetSize(rid, doc_->SizeAtRid(rid) - n_slots);
      ++stats_.size_deltas;
    }
    doc_->InvalidateIndexes();
    return at;
  }

  // Case B: the insert does not fit — append physical pages and splice them
  // into the logical page order right after this page. The vacated tail of
  // this page becomes free space; following pages renumber implicitly.
  const int64_t tail_len = std::max<int64_t>(0, free_start - at);
  const int64_t page_slots = PageSlots();
  const int64_t need = n_slots + tail_len;
  const int64_t new_pages = (need + page_slots - 1) / page_slots;
  const int64_t added = new_pages * page_slots;
  stats_.pages_appended += new_pages;
  stats_.pages_touched += 1 + new_pages;

  // Old logical position -> new logical position.
  auto map_pos = [&](int64_t pos) {
    if (pos < at) return pos;
    if (pos < free_start) return pos - at + page_end + n_slots;  // moved tail
    return pos + added;  // beyond this page
  };

  // Physically append the new pages (unused-initialized).
  int64_t phys_base = doc_->PhysicalSlots();
  for (int64_t s = 0; s < added; ++s)
    doc_->AppendSlot(NodeKind::kUnused, -1, -1, -1,
                     page_slots - 1 - (s & (page_slots - 1)));
  // Copy the tail out (physical rids: within-page offsets are stable).
  for (int64_t k = 0; k < tail_len; ++k) {
    int64_t from_rid = doc_->Rid(at + k);
    int64_t to_rid = phys_base + n_slots + k;
    doc_->MoveSlotRaw(from_rid, to_rid);
    ++stats_.slots_shifted;
  }
  if (tail_len > 0)
    doc_->ShiftAttrOwners(doc_->Rid(at), doc_->Rid(at) + tail_len,
                          phys_base + n_slots - doc_->Rid(at));
  // Vacate the tail of the old page.
  for (int64_t k = at; k < page_end; ++k)
    doc_->MarkUnused(doc_->Rid(k), page_end - 1 - k);
  // Pad the gap after the moved tail on the new pages.
  for (int64_t s = n_slots + tail_len; s < added; ++s)
    doc_->MarkUnused(phys_base + s, added - 1 - s);

  // Splice the new pages into the logical order.
  for (int64_t j = 0; j < new_pages; ++j)
    doc_->page_map()->InsertPage(page + 1 + j);

  // Size maintenance. Ancestors keep their pre (< at); their new end is the
  // mapped old end — except for the insert-last case (end == at-1), whose
  // range must stretch over the vacated tail up to the last new slot.
  for (int64_t a : chain) {
    int64_t e = a + doc_->SizeAt(a);
    int64_t new_end = (e == at - 1) ? page_end + n_slots - 1 : map_pos(e);
    int64_t delta = new_end - e;
    if (delta != 0) {
      pending_.Add(doc_->Rid(a), delta);
      doc_->SetSize(doc_->Rid(a), doc_->SizeAt(a) + delta);
      ++stats_.size_deltas;
    }
  }
  // Boundary-covering nodes inside the moved tail: their pre moved with the
  // tail but their later descendants only shifted by `added`.
  for (int64_t b : boundary) {
    int64_t old_size = doc_->SizeAtRid(doc_->Rid(map_pos(b)));
    int64_t delta = map_pos(b + old_size) - map_pos(b) - old_size;
    if (delta != 0) {
      int64_t rid = doc_->Rid(map_pos(b));
      pending_.Add(rid, delta);
      doc_->SetSize(rid, old_size + delta);
      ++stats_.size_deltas;
    }
  }
  doc_->InvalidateIndexes();
  return page_end;  // new content starts on the first spliced page
}

Result<int64_t> UpdateEngine::InsertSubtree(int64_t target, InsertPos pos,
                                            const DocumentContainer& src,
                                            int64_t src_pre) {
  if (doc_->IsUnused(target))
    return Status::InvalidArgument("insert target is not a node");
  int64_t parent = -1, at = 0;
  int32_t level = 0;
  switch (pos) {
    case InsertPos::kFirst:
      parent = target;
      at = target + 1;
      level = doc_->LevelAt(target) + 1;
      break;
    case InsertPos::kLast:
      parent = target;
      at = target + doc_->SizeAt(target) + 1;
      level = doc_->LevelAt(target) + 1;
      break;
    case InsertPos::kBefore:
      parent = doc_->ParentOf(target);
      at = target;
      level = doc_->LevelAt(target);
      break;
    case InsertPos::kAfter:
      parent = doc_->ParentOf(target);
      at = target + doc_->SizeAt(target) + 1;
      level = doc_->LevelAt(target);
      break;
  }
  if (parent < 0)
    return Status::InvalidArgument("cannot insert a sibling of the root");
  if ((pos == InsertPos::kBefore || pos == InsertPos::kAfter) &&
      doc_->KindAt(parent) == NodeKind::kDoc)
    return Status::InvalidArgument(
        "cannot insert a sibling of the document element");
  if (doc_->KindAt(parent) != NodeKind::kElem &&
      doc_->KindAt(parent) != NodeKind::kDoc)
    return Status::InvalidArgument("target cannot hold children");

  // Compact source rows (skip unused slots inside the source subtree).
  std::vector<int64_t> srcs;
  int64_t send = src_pre + src.SizeAt(src_pre);
  for (int64_t s = src_pre; s <= send;) {
    if (src.IsUnused(s)) {
      s += src.SizeAt(s) + 1;
      continue;
    }
    srcs.push_back(s);
    ++s;
  }
  int64_t n = static_cast<int64_t>(srcs.size());

  MXQ_ASSIGN_OR_RETURN(int64_t gap, MakeGap(at, parent, n));

  int32_t src_root_level = src.LevelAt(src_pre);
  int32_t frag = doc_->FragAt(parent >= 0 ? parent : 0);
  for (int64_t i = 0; i < n; ++i) {
    int64_t s = srcs[i];
    int64_t rid = doc_->Rid(gap + i);
    auto ub = std::upper_bound(srcs.begin(), srcs.end(), s + src.SizeAt(s));
    int64_t new_size = (ub - srcs.begin()) - i - 1;
    NodeKind kind = src.KindAt(s);
    int64_t ref = src.RefAt(s);
    if (kind == NodeKind::kPI)
      ref = doc_->AddPI(src.PITarget(ref), src.PIValue(ref));
    doc_->SetKind(rid, kind);
    doc_->SetSize(rid, new_size);
    doc_->SetLevel(rid, src.LevelAt(s) - src_root_level + level);
    doc_->SetRef(rid, ref);
    doc_->SetFrag(rid, frag);
    if (kind == NodeKind::kElem) {
      std::vector<int64_t> rows;
      src.AttrsOf(s, &rows);
      for (int64_t row : rows)
        doc_->AppendAttr(rid, src.AttrQn(row), src.AttrValue(row));
    }
  }
  doc_->InvalidateIndexes();
  return gap;
}

Result<int64_t> UpdateEngine::InsertXml(int64_t target, InsertPos pos,
                                        std::string_view xml) {
  DocumentContainer* scratch = doc_->manager()->CreateContainer("");
  MXQ_ASSIGN_OR_RETURN(int64_t root, ShredFragment(scratch, xml));
  return InsertSubtree(target, pos, *scratch, root);
}

Status UpdateEngine::DeleteSubtree(int64_t pre) {
  if (doc_->IsUnused(pre))
    return Status::InvalidArgument("delete target is not a node");
  if (doc_->LevelAt(pre) == 0)
    return Status::InvalidArgument("cannot delete a root node");
  int64_t end = pre + doc_->SizeAt(pre);
  // Deleted slots stay in place as unused tuples: no pre shifts, and the
  // slots remain inside their ancestors' ranges.
  for (int64_t k = pre; k <= end; ++k)
    doc_->MarkUnused(doc_->Rid(k), end - k);
  stats_.pages_touched += PageOf(end) - PageOf(pre) + 1;
  // Invariant maintenance: ranges always end at a *real* slot (the insert
  // arithmetic depends on it). Ancestors whose subtree ended exactly at the
  // deleted range are trimmed back to their last surviving descendant.
  int64_t last_real = pre - 1;
  while (last_real >= 0 && doc_->IsUnused(last_real)) --last_real;
  for (int64_t a = doc_->ParentOf(pre); a >= 0; a = doc_->ParentOf(a)) {
    int64_t e = a + doc_->SizeAt(a);
    if (e > end) break;  // ends at a surviving slot; so do all above
    int64_t ne = std::max(a, last_real);
    pending_.Add(doc_->Rid(a), ne - e);
    doc_->SetSize(doc_->Rid(a), ne - a);
    ++stats_.size_deltas;
  }
  doc_->InvalidateIndexes();
  return Status::OK();
}

void UpdateEngine::Commit() { pending_.deltas.clear(); }

}  // namespace updates
}  // namespace mxq
