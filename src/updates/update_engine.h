// XML updates over the pre|size|level encoding (paper §5.2).
//
// Value updates map directly onto relational column updates. Structural
// updates (subtree insert / delete) use the paper's page-wise scheme:
//
//  * the document is stored on logical pages with a configurable free-space
//    percentage left by the shredder (RepackPaged);
//  * deletes leave unused slots in place — no pre shifts at all;
//  * inserts that fit a page's free slots shift only within that page;
//  * larger inserts append fresh physical pages and splice them into the
//    logical page order (the pre|size|level view re-orders pages, so all
//    following nodes renumber implicitly — no tuple is rewritten);
//  * ancestor `size` maintenance is recorded as *deltas* per transaction
//    (SizeDeltaLog), the paper's trick to release size locks early: deltas
//    from concurrent transactions commute.
//
// UpdateStats counts pages touched per operation, substantiating the §5.2
// claim that an insert costs a constant number of page writes.

#ifndef MXQ_UPDATES_UPDATE_ENGINE_H_
#define MXQ_UPDATES_UPDATE_ENGINE_H_

#include <cstdint>
#include <set>
#include <vector>

#include "common/status.h"
#include "storage/document.h"

namespace mxq {
namespace updates {

/// Where to place an inserted subtree relative to a target node.
enum class InsertPos : uint8_t { kFirst, kLast, kBefore, kAfter };

/// Pages written by one structural operation (the paper's I/O argument).
struct UpdateStats {
  int64_t pages_touched = 0;
  int64_t pages_appended = 0;
  int64_t slots_shifted = 0;
  int64_t size_deltas = 0;

  void Reset() { *this = UpdateStats{}; }
};

/// The per-transaction size-delta list (§5.2): ancestors' size changes are
/// logged as (rid, delta) and can be applied in any order — even interleaved
/// with other transactions' deltas — because addition commutes.
struct SizeDeltaLog {
  std::vector<std::pair<int64_t, int64_t>> deltas;  // (rid, +delta)

  void Add(int64_t rid, int64_t delta) { deltas.emplace_back(rid, delta); }
  void Apply(DocumentContainer* doc) const {
    for (auto [rid, d] : deltas) doc->SetSize(rid, doc->SizeAtRid(rid) + d);
  }
};

/// \brief Structural/value update engine over one document container.
///
/// The container is converted to the paged representation on construction
/// (if not already paged).
class UpdateEngine {
 public:
  /// `page_bits`: log2 of slots per logical page. `fill_pct`: percentage of
  /// each page used at repack time (the rest stays free for inserts).
  UpdateEngine(DocumentContainer* doc, int page_bits = 8, int fill_pct = 80);

  // ---- value updates ---------------------------------------------------------

  /// Replaces the content of a text/comment node.
  Status ReplaceText(int64_t pre, std::string_view text);
  /// Replaces an attribute's value (attr row of the container).
  Status ReplaceAttrValue(int64_t attr_row, std::string_view value);
  /// Renames an element.
  Status RenameElement(int64_t pre, std::string_view tag);
  /// Sets (or adds) an attribute on an element.
  Status SetAttribute(int64_t pre, std::string_view name,
                      std::string_view value);

  // ---- structural updates ------------------------------------------------------

  /// Inserts a copy of `src_pre` from `src` at `pos` relative to `target`
  /// (kFirst/kLast: target is the parent; kBefore/kAfter: the sibling).
  /// Returns the new subtree root's pre.
  Result<int64_t> InsertSubtree(int64_t target, InsertPos pos,
                                const DocumentContainer& src, int64_t src_pre);

  /// Parses `xml` as a fragment and inserts it (convenience).
  Result<int64_t> InsertXml(int64_t target, InsertPos pos,
                            std::string_view xml);

  /// Deletes the subtree rooted at `pre` (slots become unused; no shifts).
  Status DeleteSubtree(int64_t pre);

  // ---- transaction-ish size handling -------------------------------------------

  /// Deltas of the current "transaction"; Commit applies and clears them.
  SizeDeltaLog& pending_deltas() { return pending_; }
  void Commit();

  const UpdateStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  DocumentContainer* doc() { return doc_; }

  /// Re-shreds the container into a paged layout with free space on every
  /// page (what the paper's shredder does up front). Static so tests can
  /// repack standalone documents.
  static void RepackPaged(DocumentContainer* doc, int page_bits,
                          int fill_pct);

 private:
  int64_t PageOf(int64_t pre) const { return pre >> page_bits_; }
  int64_t PageStart(int64_t page) const { return page << page_bits_; }
  int64_t PageSlots() const { return int64_t{1} << page_bits_; }

  /// First unused slot index (within the logical view) of page, or the page
  /// end if full.
  int64_t FirstFreeInPage(int64_t page) const;

  /// Core insert: place `n_slots` new slots before logical position `at`,
  /// where `parent_pre` is the node whose subtree receives them.
  /// Returns the logical position where the new slots begin.
  Result<int64_t> MakeGap(int64_t at, int64_t parent_pre, int64_t n_slots);

  DocumentContainer* doc_;
  int page_bits_;
  int fill_pct_;
  SizeDeltaLog pending_;
  UpdateStats stats_;
};

}  // namespace updates
}  // namespace mxq

#endif  // MXQ_UPDATES_UPDATE_ENGINE_H_
