#include "updates/xquery_updates.h"

#include <algorithm>

namespace mxq {
namespace updates {

Result<std::vector<Item>> XQueryUpdater::Targets(const std::string& q) {
  // Prepare through the engine's plan cache: repeated updates with the same
  // target query (the common looping pattern) compile once.
  MXQ_ASSIGN_OR_RETURN(xq::PreparedQuery plan, session_.Prepare(q));
  MXQ_ASSIGN_OR_RETURN(xq::QueryResult res, session_.Execute(plan));
  int32_t want = update_->doc()->id();
  for (const Item& it : res.items) {
    if (!it.is_any_node())
      return Status::InvalidArgument(
          "update target query selected a non-node item");
    int32_t cid =
        it.kind == ItemKind::kNode ? it.node().container : it.attr().container;
    if (cid != want)
      return Status::InvalidArgument(
          "update target is not in the updatable document");
  }
  // All targets live in the updatable document, so they stay valid after
  // res releases its transient container.
  return std::move(res.items);
}

Result<int64_t> XQueryUpdater::Insert(const std::string& target_query,
                                      InsertPos pos, std::string_view xml) {
  MXQ_ASSIGN_OR_RETURN(std::vector<Item> targets, Targets(target_query));
  // Reverse document order: an insert never shifts a target that precedes
  // it, so earlier-collected pres stay valid.
  std::reverse(targets.begin(), targets.end());
  int64_t n = 0;
  for (const Item& t : targets) {
    if (t.kind != ItemKind::kNode)
      return Status::InvalidArgument("insert target must be an element");
    MXQ_ASSIGN_OR_RETURN(int64_t root,
                         update_->InsertXml(t.node().pre, pos, xml));
    (void)root;
    ++n;
  }
  return n;
}

Result<int64_t> XQueryUpdater::Delete(const std::string& target_query) {
  MXQ_ASSIGN_OR_RETURN(std::vector<Item> targets, Targets(target_query));
  std::reverse(targets.begin(), targets.end());
  int64_t n = 0;
  for (const Item& t : targets) {
    if (t.kind != ItemKind::kNode)
      return Status::InvalidArgument("delete target must be a tree node");
    // Nested targets: a later (outer) delete may already cover this pre.
    if (update_->doc()->IsUnused(t.node().pre)) continue;
    MXQ_RETURN_IF_ERROR(update_->DeleteSubtree(t.node().pre));
    ++n;
  }
  return n;
}

Result<int64_t> XQueryUpdater::ReplaceValue(const std::string& target_query,
                                            std::string_view text) {
  MXQ_ASSIGN_OR_RETURN(std::vector<Item> targets, Targets(target_query));
  int64_t n = 0;
  for (const Item& t : targets) {
    if (t.kind == ItemKind::kAttr) {
      MXQ_RETURN_IF_ERROR(update_->ReplaceAttrValue(t.attr().row, text));
    } else {
      NodeKind k = update_->doc()->KindAt(t.node().pre);
      if (k == NodeKind::kElem) {
        // Replacing an element's value: replace its single text child (or
        // insert one if it has none).
        int64_t pre = t.node().pre;
        int64_t end = pre + update_->doc()->SizeAt(pre);
        int64_t text_child = -1;
        for (int64_t p = pre + 1; p <= end; ++p)
          if (!update_->doc()->IsUnused(p) &&
              update_->doc()->KindAt(p) == NodeKind::kText) {
            text_child = p;
            break;
          }
        if (text_child < 0)
          return Status::Unsupported(
              "replace-value on an element without a text child");
        MXQ_RETURN_IF_ERROR(update_->ReplaceText(text_child, text));
      } else {
        MXQ_RETURN_IF_ERROR(update_->ReplaceText(t.node().pre, text));
      }
    }
    ++n;
  }
  return n;
}

}  // namespace updates
}  // namespace mxq
