// Query-level update operators (paper §5.2: "we implemented the same update
// functionality by means of a series of new XQuery operators with side
// effects"): targets are addressed by XQuery expressions instead of raw
// pres, combining XQueryEngine (to find nodes) with UpdateEngine (to change
// them) — insert-first / insert-last / insert-before / insert-after /
// delete-nodes / replace-value.

#ifndef MXQ_UPDATES_XQUERY_UPDATES_H_
#define MXQ_UPDATES_XQUERY_UPDATES_H_

#include <string>

#include "updates/update_engine.h"
#include "xquery/engine.h"

namespace mxq {
namespace updates {

/// \brief Applies XQuery-addressed updates to one document.
///
/// Target queries run through the serving facade — an internal Session of
/// the shared engine, so repeated update calls hit the engine's plan cache —
/// and must select nodes of the updatable document (other nodes are
/// rejected). Structural targets are processed in reverse document order so
/// earlier updates never shift later targets.
///
/// Updates mutate document containers in place: callers must exclude
/// concurrent query execution against the same document (docs/api.md
/// "Thread safety").
class XQueryUpdater {
 public:
  XQueryUpdater(xq::XQueryEngine* engine, UpdateEngine* update)
      : session_(engine), update_(update) {}

  /// insert-first/last/before/after(target-query, xml-fragment): inserts the
  /// fragment relative to every node the query selects. Returns the number
  /// of insertions performed.
  Result<int64_t> Insert(const std::string& target_query, InsertPos pos,
                         std::string_view xml);

  /// delete-nodes(target-query): deletes every selected subtree. Returns
  /// the number of deletions.
  Result<int64_t> Delete(const std::string& target_query);

  /// replace-value(target-query, text): replaces the string content of the
  /// selected text/comment nodes, or the value of selected attributes.
  Result<int64_t> ReplaceValue(const std::string& target_query,
                               std::string_view text);

 private:
  /// Runs the target query and returns the selected nodes of the updatable
  /// document, in document order.
  Result<std::vector<Item>> Targets(const std::string& q);

  xq::Session session_;
  UpdateEngine* update_;
};

}  // namespace updates
}  // namespace mxq

#endif  // MXQ_UPDATES_XQUERY_UPDATES_H_
