#include "xmark/generator.h"

#include <algorithm>
#include <random>

namespace mxq {
namespace xmark {

namespace {

// A small Shakespeare-flavoured vocabulary (the original XMark fills text
// from Shakespeare's plays); "gold" must occur for Q14.
const char* kWords[] = {
    "gold",     "summer",  "shall",    "compare", "thee",     "lovely",
    "temperate","rough",   "winds",    "darling", "buds",     "may",
    "lease",    "date",    "sometime", "eye",     "heaven",   "shines",
    "dimmed",   "fair",    "declines", "chance",  "nature",   "changing",
    "course",   "untrimmed","eternal", "fade",    "possession","owest",
    "death",    "brag",    "wander",   "shade",   "lines",    "time",
    "growest",  "men",     "breathe",  "eyes",    "see",      "life",
    "mountain", "river",   "castle",   "merchant","voyage",   "fortune",
    "purse",    "ducats",  "argosy",   "venture", "silk",     "spice",
};
constexpr int kNumWords = sizeof(kWords) / sizeof(kWords[0]);

const char* kRegions[] = {"africa", "asia",     "australia",
                          "europe", "namerica", "samerica"};
const double kRegionShare[] = {0.025, 0.092, 0.101, 0.276, 0.460, 0.046};

const char* kFirstNames[] = {"Kasidit", "Amara",  "Bola",   "Chen",
                             "Dariusz", "Eni",    "Farida", "Goran",
                             "Hulda",   "Ivo",    "Jelena", "Kenji",
                             "Leila",   "Mandla", "Noor",   "Olga"};
const char* kLastNames[] = {"Treweek", "Okafor",   "Lindqvist", "Morreau",
                            "Suzuki",  "Petrov",   "Ngata",     "Valdez",
                            "Iyer",    "Haugen",   "Botha",     "Keller",
                            "Ahmadi",  "Castillo", "Deng",      "Eriksen"};
const char* kCities[] = {"Amsterdam", "Munich",   "Enschede", "Chicago",
                         "Tsukuba",   "Toronto",  "Lagos",    "Santiago"};
const char* kCountries[] = {"United States", "Germany",     "Netherlands",
                            "Japan",         "South Africa", "Brazil"};
const char* kEducation[] = {"High School", "College", "Graduate School",
                            "Other"};

class Generator {
 public:
  explicit Generator(const XMarkOptions& opts)
      : rng_(opts.seed), counts_(XMarkCounts::ForScale(opts.scale)) {
    out_.reserve(1 << 20);
  }

  std::string Run() {
    out_ += "<site>";
    Regions();
    Categories();
    CatGraph();
    People();
    OpenAuctions();
    ClosedAuctions();
    out_ += "</site>";
    return std::move(out_);
  }

 private:
  int Rand(int n) { return static_cast<int>(rng_() % n); }
  bool Pct(int p) { return Rand(100) < p; }

  void Words(int n) {
    for (int i = 0; i < n; ++i) {
      if (i) out_ += " ";
      out_ += kWords[Rand(kNumWords)];
    }
  }

  void Text(int min_words, int max_words) {
    Words(min_words + Rand(max_words - min_words + 1));
  }

  /// description = text | parlist. Parlists nest exactly the Q15/Q16 shape:
  /// parlist/listitem/(text | parlist/listitem/text), with text optionally
  /// wrapping emph/keyword/bold runs (keyword inside emph for Q15).
  void RichText() {
    out_ += "<text>";
    Text(4, 12);
    if (Pct(40)) {
      out_ += " <bold>";
      Text(1, 3);
      out_ += "</bold> ";
      Text(1, 4);
    }
    if (Pct(50)) {
      out_ += " <emph>";
      Text(1, 2);
      if (Pct(60)) {
        out_ += " <keyword>";
        Text(1, 2);
        out_ += "</keyword>";
      }
      out_ += "</emph> ";
      Text(1, 3);
    }
    out_ += "</text>";
  }

  void Parlist(int depth) {
    out_ += "<parlist>";
    int items = 1 + Rand(3);
    for (int i = 0; i < items; ++i) {
      out_ += "<listitem>";
      if (depth < 2 && Pct(45))
        Parlist(depth + 1);
      else
        RichText();
      out_ += "</listitem>";
    }
    out_ += "</parlist>";
  }

  void Description() {
    out_ += "<description>";
    if (Pct(55))
      RichText();
    else
      Parlist(1);
    out_ += "</description>";
  }

  void Regions() {
    out_ += "<regions>";
    int64_t next_item = 0;
    for (int r = 0; r < 6; ++r) {
      out_ += "<";
      out_ += kRegions[r];
      out_ += ">";
      int64_t n = std::max<int64_t>(
          1, static_cast<int64_t>(counts_.items * kRegionShare[r]));
      for (int64_t i = 0; i < n; ++i) Item(next_item++);
      out_ += "</";
      out_ += kRegions[r];
      out_ += ">";
    }
    total_items_ = next_item;
    out_ += "</regions>";
  }

  void Item(int64_t id) {
    out_ += "<item id=\"item" + std::to_string(id) + "\">";
    out_ += "<location>";
    out_ += kCountries[Rand(6)];
    out_ += "</location>";
    out_ += "<quantity>" + std::to_string(1 + Rand(5)) + "</quantity>";
    out_ += "<name>";
    Text(2, 4);
    out_ += "</name><payment>Creditcard</payment>";
    Description();
    out_ += "<shipping>Will ship internationally</shipping>";
    int cats = 1 + Rand(3);
    for (int c = 0; c < cats; ++c)
      out_ += "<incategory category=\"category" +
              std::to_string(Rand(static_cast<int>(counts_.categories))) +
              "\"/>";
    // Empty elements would not survive an exact serialization round trip
    // (<mailbox></mailbox> canonicalizes to <mailbox/>), so only emit the
    // mailbox when it has mail.
    int mails = Pct(70) ? Rand(3) : 0;
    if (mails > 0) {
      out_ += "<mailbox>";
      for (int m = 0; m < mails; ++m) {
        out_ += "<mail><from>";
        Name();
        out_ += "</from><to>";
        Name();
        out_ += "</to><date>" + Date() + "</date>";
        RichText();
        out_ += "</mail>";
      }
      out_ += "</mailbox>";
    }
    out_ += "</item>";
  }

  void Name() {
    out_ += kFirstNames[Rand(16)];
    out_ += " ";
    out_ += kLastNames[Rand(16)];
  }

  std::string Date() {
    return std::to_string(1 + Rand(12)) + "/" + std::to_string(1 + Rand(28)) +
           "/" + std::to_string(1998 + Rand(4));
  }

  void Categories() {
    out_ += "<categories>";
    for (int64_t c = 0; c < counts_.categories; ++c) {
      out_ += "<category id=\"category" + std::to_string(c) + "\"><name>";
      Text(1, 3);
      out_ += "</name>";
      Description();
      out_ += "</category>";
    }
    out_ += "</categories>";
  }

  void CatGraph() {
    out_ += "<catgraph>";
    int64_t edges = counts_.categories;
    for (int64_t e = 0; e < edges; ++e) {
      int from = Rand(static_cast<int>(counts_.categories));
      int to = Rand(static_cast<int>(counts_.categories));
      out_ += "<edge from=\"category" + std::to_string(from) +
              "\" to=\"category" + std::to_string(to) + "\"/>";
    }
    out_ += "</catgraph>";
  }

  void People() {
    out_ += "<people>";
    for (int64_t p = 0; p < counts_.persons; ++p) {
      out_ += "<person id=\"person" + std::to_string(p) + "\">";
      out_ += "<name>";
      Name();
      out_ += "</name><emailaddress>mailto:person" + std::to_string(p) +
              "@example.org</emailaddress>";
      if (Pct(50))
        out_ += "<phone>+31 " + std::to_string(100000 + Rand(900000)) +
                "</phone>";
      if (Pct(60)) {
        out_ += "<address><street>" + std::to_string(1 + Rand(99)) + " ";
        Words(1);
        out_ += " St</street><city>";
        out_ += kCities[Rand(8)];
        out_ += "</city><country>";
        out_ += kCountries[Rand(6)];
        out_ += "</country><zipcode>" + std::to_string(10000 + Rand(89999)) +
                "</zipcode></address>";
      }
      if (Pct(50))
        out_ += "<homepage>http://example.org/~person" + std::to_string(p) +
                "</homepage>";
      if (Pct(60))
        out_ += "<creditcard>" + std::to_string(1000 + Rand(9000)) + " " +
                std::to_string(1000 + Rand(9000)) + "</creditcard>";
      if (Pct(75)) {
        // profile; ~70% of profiles carry @income (Q20 needs all bands:
        // >=100k, 30k..100k, <30k, and missing).
        if (Pct(70)) {
          double income = 9000 + Rand(200000);
          out_ += "<profile income=\"" + std::to_string(income) + "\">";
        } else {
          out_ += "<profile>";
        }
        int interests = Rand(4);
        for (int i = 0; i < interests; ++i)
          out_ += "<interest category=\"category" +
                  std::to_string(Rand(static_cast<int>(counts_.categories))) +
                  "\"/>";
        if (Pct(40))
          out_ += "<education>" + std::string(kEducation[Rand(4)]) +
                  "</education>";
        if (Pct(60)) out_ += Pct(50) ? "<gender>male</gender>"
                                     : "<gender>female</gender>";
        out_ += "<business>";
        out_ += Pct(50) ? "Yes" : "No";
        out_ += "</business>";
        if (Pct(60))
          out_ += "<age>" + std::to_string(18 + Rand(50)) + "</age>";
        out_ += "</profile>";
      }
      if (Pct(30)) {
        out_ += "<watches>";
        int w = 1 + Rand(3);
        for (int i = 0; i < w; ++i)
          out_ += "<watch open_auction=\"open_auction" +
                  std::to_string(Rand(std::max<int>(
                      1, static_cast<int>(counts_.open_auctions)))) +
                  "\"/>";
        out_ += "</watches>";
      }
      out_ += "</person>";
    }
    out_ += "</people>";
  }

  std::string PersonRef() {
    return "person" + std::to_string(Rand(static_cast<int>(counts_.persons)));
  }
  std::string ItemRef() {
    return "item" + std::to_string(Rand(static_cast<int>(total_items_)));
  }

  void OpenAuctions() {
    out_ += "<open_auctions>";
    for (int64_t a = 0; a < counts_.open_auctions; ++a) {
      out_ += "<open_auction id=\"open_auction" + std::to_string(a) + "\">";
      double initial = 1 + Rand(300) + Rand(100) / 100.0;
      out_ += "<initial>" + Money(initial) + "</initial>";
      if (Pct(40)) out_ += "<reserve>" + Money(initial * 1.2) + "</reserve>";
      int bidders = Rand(6);
      double cur = initial;
      for (int b = 0; b < bidders; ++b) {
        double inc = (1 + Rand(12)) * 1.5;
        cur += inc;
        out_ += "<bidder><date>" + Date() + "</date><time>" +
                std::to_string(Rand(24)) + ":" + std::to_string(Rand(60)) +
                "</time><personref person=\"" + PersonRef() +
                "\"/><increase>" + Money(inc) + "</increase></bidder>";
      }
      out_ += "<current>" + Money(cur) + "</current>";
      if (Pct(30)) out_ += "<privacy>Yes</privacy>";
      out_ += "<itemref item=\"" + ItemRef() + "\"/>";
      out_ += "<seller person=\"" + PersonRef() + "\"/>";
      Annotation();
      out_ += "<quantity>1</quantity><type>Regular</type>";
      out_ += "<interval><start>" + Date() + "</start><end>" + Date() +
              "</end></interval>";
      out_ += "</open_auction>";
    }
    out_ += "</open_auctions>";
  }

  void Annotation() {
    out_ += "<annotation><author person=\"" + PersonRef() + "\"/>";
    Description();
    out_ += "<happiness>" + std::to_string(1 + Rand(10)) + "</happiness>";
    out_ += "</annotation>";
  }

  std::string Money(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", v);
    return buf;
  }

  void ClosedAuctions() {
    out_ += "<closed_auctions>";
    for (int64_t a = 0; a < counts_.closed_auctions; ++a) {
      out_ += "<closed_auction><seller person=\"" + PersonRef() + "\"/>";
      out_ += "<buyer person=\"" + PersonRef() + "\"/>";
      out_ += "<itemref item=\"" + ItemRef() + "\"/>";
      out_ += "<price>" + Money(1 + Rand(400)) + "</price>";
      out_ += "<date>" + Date() + "</date>";
      out_ += "<quantity>1</quantity><type>Regular</type>";
      Annotation();
      out_ += "</closed_auction>";
    }
    out_ += "</closed_auctions>";
  }

  std::mt19937 rng_;
  XMarkCounts counts_;
  int64_t total_items_ = 0;
  std::string out_;
};

}  // namespace

XMarkCounts XMarkCounts::ForScale(double scale) {
  auto at_least = [](int64_t lo, double v) {
    return std::max<int64_t>(lo, static_cast<int64_t>(v));
  };
  XMarkCounts c;
  c.persons = at_least(6, 25500 * scale);
  c.items = at_least(6, 21750 * scale);
  c.open_auctions = at_least(3, 12000 * scale);
  c.closed_auctions = at_least(3, 9750 * scale);
  c.categories = at_least(3, 1000 * scale);
  return c;
}

std::string GenerateXMark(const XMarkOptions& opts) {
  return Generator(opts).Run();
}

}  // namespace xmark
}  // namespace mxq
