// XMark auction-site document generator (Schmidt et al. [36]).
//
// Generates documents structurally equivalent to the XMark benchmark data:
// the full auction schema (regions/items, categories + catgraph, people with
// optional profile/income/homepage, open auctions with bidder chains, closed
// auctions with nested annotation parlists). Element/attribute names and the
// shape constraints match what the 20 XMark queries touch, including the
// deep Q15/Q16 path (annotation/description/parlist/listitem/parlist/
// listitem/text/emph/keyword) and Q14's "gold" description keyword.
//
// scale 1.0 corresponds to the original 100 MB document (25500 persons);
// the paper's 1.1 MB / 11 MB / 110 MB / 1.1 GB / 11 GB series is
// scale = 0.01 / 0.1 / 1 / 10 / 100.

#ifndef MXQ_XMARK_GENERATOR_H_
#define MXQ_XMARK_GENERATOR_H_

#include <cstdint>
#include <string>

namespace mxq {
namespace xmark {

struct XMarkOptions {
  double scale = 0.01;
  uint32_t seed = 20060627;  // SIGMOD 2006 :-)
};

/// Entity counts at a given scale (linear in scale, with small-doc floors).
struct XMarkCounts {
  int64_t persons;
  int64_t items;           // across all six regions
  int64_t open_auctions;
  int64_t closed_auctions;
  int64_t categories;

  static XMarkCounts ForScale(double scale);
};

/// Generates the XML text of one auction document.
std::string GenerateXMark(const XMarkOptions& opts);

}  // namespace xmark
}  // namespace mxq

#endif  // MXQ_XMARK_GENERATOR_H_
