#include "xmark/queries.h"

#include <cassert>

namespace mxq {
namespace xmark {

namespace {

const char* kQueries[kNumQueries] = {
    // Q1: exact match
    R"(for $b in doc("auction.xml")/site/people/person
       where $b/@id = "person0" return $b/name/text())",

    // Q2: ordered access (first bidder increase)
    R"(for $b in doc("auction.xml")/site/open_auctions/open_auction
       return <increase>{$b/bidder[1]/increase/text()}</increase>)",

    // Q3: ordered access (first and last)
    R"(for $b in doc("auction.xml")/site/open_auctions/open_auction
       where zero-or-one($b/bidder[1]/increase/text()) * 2
             <= $b/bidder[last()]/increase/text()
       return <increase first="{$b/bidder[1]/increase/text()}"
                        last="{$b/bidder[last()]/increase/text()}"/>)",

    // Q4: document-order comparison inside a quantifier
    R"(for $b in doc("auction.xml")/site/open_auctions/open_auction
       where some $pr1 in $b/bidder/personref[@person = "person3"],
                  $pr2 in $b/bidder/personref[@person = "person5"]
             satisfies $pr1 << $pr2
       return <history>{$b/initial/text()}</history>)",

    // Q5: exact match with aggregation
    R"(count(for $i in doc("auction.xml")/site/closed_auctions/closed_auction
             where $i/price/text() >= 40 return $i/price))",

    // Q6: regular path expressions
    R"(for $b in doc("auction.xml")/site/regions return count($b//item))",

    // Q7: regular path expressions, full document
    R"(for $p in doc("auction.xml")/site
       return count($p//description) + count($p//annotation)
            + count($p//emailaddress))",

    // Q8: value join (buyer -> person)
    R"(for $p in doc("auction.xml")/site/people/person
       let $a := for $t in doc("auction.xml")/site/closed_auctions/closed_auction
                 where $t/buyer/@person = $p/@id return $t
       return <item person="{$p/name/text()}">{count($a)}</item>)",

    // Q9: two value joins (buyer -> person, itemref -> europe item)
    R"(for $p in doc("auction.xml")/site/people/person
       let $a := for $t in doc("auction.xml")/site/closed_auctions/closed_auction
                 let $n := for $t2 in doc("auction.xml")/site/regions/europe/item
                           where $t/itemref/@item = $t2/@id return $t2
                 where $p/@id = $t/buyer/@person
                 return <item>{$n/name/text()}</item>
       return <person name="{$p/name/text()}">{$a}</person>)",

    // Q10: grouping by interest category (large reconstruction)
    R"(for $i in distinct-values(
             doc("auction.xml")/site/people/person/profile/interest/@category)
       let $p := for $t in doc("auction.xml")/site/people/person
                 where $t/profile/interest/@category = $i
                 return <personne>
                          <statistiques>
                            <sexe>{$t/profile/gender/text()}</sexe>
                            <age>{$t/profile/age/text()}</age>
                            <education>{$t/profile/education/text()}</education>
                            <revenu>{data($t/profile/@income)}</revenu>
                          </statistiques>
                          <coordonnees>
                            <nom>{$t/name/text()}</nom>
                            <rue>{$t/address/street/text()}</rue>
                            <ville>{$t/address/city/text()}</ville>
                            <pays>{$t/address/country/text()}</pays>
                            <reseau>
                              <courrier>{$t/emailaddress/text()}</courrier>
                              <pagePerso>{$t/homepage/text()}</pagePerso>
                            </reseau>
                          </coordonnees>
                          <cartePaiement>{$t/creditcard/text()}</cartePaiement>
                        </personne>
       return <categorie>{<id>{$i}</id>}{$p}</categorie>)",

    // Q11: theta join (> with arithmetic)
    R"(for $p in doc("auction.xml")/site/people/person
       let $l := for $i in doc("auction.xml")/site/open_auctions/open_auction/initial
                 where $p/profile/@income > 5000 * exactly-one($i/text())
                 return $i
       return <items name="{$p/name/text()}">{count($l)}</items>)",

    // Q12: theta join restricted to high incomes
    R"(for $p in doc("auction.xml")/site/people/person
       let $l := for $i in doc("auction.xml")/site/open_auctions/open_auction/initial
                 where $p/profile/@income > 5000 * exactly-one($i/text())
                 return $i
       where $p/profile/@income > 50000
       return <items person="{$p/profile/@income}">{count($l)}</items>)",

    // Q13: reconstruction of australia items
    R"(for $i in doc("auction.xml")/site/regions/australia/item
       return <item name="{$i/name/text()}">{$i/description}</item>)",

    // Q14: full-text-ish scan
    R"(for $i in doc("auction.xml")/site//item
       where contains(string(exactly-one($i/description)), "gold")
       return $i/name/text())",

    // Q15: very long path
    R"(for $a in doc("auction.xml")/site/closed_auctions/closed_auction
                 /annotation/description/parlist/listitem/parlist/listitem
                 /text/emph/keyword/text()
       return <text>{$a}</text>)",

    // Q16: long path existence test
    R"(for $a in doc("auction.xml")/site/closed_auctions/closed_auction
       where not(empty($a/annotation/description/parlist/listitem/parlist
                       /listitem/text/emph/keyword/text()))
       return <person id="{$a/seller/@person}"/>)",

    // Q17: missing elements
    R"(for $p in doc("auction.xml")/site/people/person
       where empty($p/homepage/text())
       return <person name="{$p/name/text()}"/>)",

    // Q18: user-defined function
    R"(declare function local:convert($v) { 2.20371 * $v };
       for $i in doc("auction.xml")/site/open_auctions/open_auction
       return local:convert(zero-or-one($i/reserve)))",

    // Q19: order by
    R"(for $b in doc("auction.xml")/site/regions//item
       let $k := $b/name/text()
       order by zero-or-one($b/location) ascending
       return <item name="{$k}">{$b/location/text()}</item>)",

    // Q20: aggregation with income bands
    R"(<result>
        <preferred>{count(doc("auction.xml")/site/people/person/profile[@income >= 100000])}</preferred>
        <standard>{count(doc("auction.xml")/site/people/person
                         /profile[@income < 100000 and @income >= 30000])}</standard>
        <challenge>{count(doc("auction.xml")/site/people/person/profile[@income < 30000])}</challenge>
        <na>{count(for $p in doc("auction.xml")/site/people/person
                   where empty($p/profile/@income) return $p)}</na>
       </result>)",
};

const char* kLabels[kNumQueries] = {
    "exact match",
    "ordered access (first bidder)",
    "ordered access (first vs last)",
    "document order in quantifier",
    "exact match + aggregation",
    "regular path (per region)",
    "regular path (whole document)",
    "value join (1-way)",
    "value join (2-way)",
    "grouping + reconstruction",
    "theta join (>)",
    "theta join (>) with filter",
    "reconstruction",
    "string containment",
    "13-step path",
    "long path existence",
    "missing elements",
    "user-defined function",
    "order by",
    "income-band aggregation",
};

}  // namespace

const char* XMarkQuery(int n) {
  assert(n >= 1 && n <= kNumQueries);
  return kQueries[n - 1];
}

const char* XMarkQueryLabel(int n) {
  assert(n >= 1 && n <= kNumQueries);
  return kLabels[n - 1];
}

}  // namespace xmark
}  // namespace mxq
