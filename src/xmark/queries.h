// The 20 XMark benchmark queries [36], in the engine's dialect.
//
// Texts follow the original benchmark formulations (document name
// "auction.xml"); Q8-Q12 use the for/let/where join pattern whose naive
// compilation produces the loop-lifted cross products of Figure 13.

#ifndef MXQ_XMARK_QUERIES_H_
#define MXQ_XMARK_QUERIES_H_

namespace mxq {
namespace xmark {

inline constexpr int kNumQueries = 20;

/// Query text of XMark query `n` (1-based, 1..20).
const char* XMarkQuery(int n);

/// Short description (the benchmark's query-class labels).
const char* XMarkQueryLabel(int n);

}  // namespace xmark
}  // namespace mxq

#endif  // MXQ_XMARK_QUERIES_H_
