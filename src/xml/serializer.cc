#include "xml/serializer.h"

#include <cmath>
#include <cstdio>
#include <vector>

namespace mxq {

void EscapeText(std::string_view in, std::string* out) {
  for (char ch : in) {
    switch (ch) {
      case '&': *out += "&amp;"; break;
      case '<': *out += "&lt;"; break;
      case '>': *out += "&gt;"; break;
      default: out->push_back(ch);
    }
  }
}

void EscapeAttr(std::string_view in, std::string* out) {
  for (char ch : in) {
    switch (ch) {
      case '&': *out += "&amp;"; break;
      case '<': *out += "&lt;"; break;
      case '>': *out += "&gt;"; break;
      case '"': *out += "&quot;"; break;
      default: out->push_back(ch);
    }
  }
}

namespace {

void Indent(std::string* out, int depth) {
  out->push_back('\n');
  out->append(static_cast<size_t>(depth) * 2, ' ');
}

}  // namespace

void SerializeNode(const DocumentContainer& c, int64_t pre, std::string* out,
                   const SerializeOptions& opts) {
  const StringPool& pool = c.manager()->strings();
  struct Open {
    int64_t end;   // last slot of the element's subtree range
    StrId tag;
    bool has_children;
    bool tag_open;  // ">" not yet written: still empty so far
  };
  std::vector<Open> stack;
  std::vector<int64_t> attr_rows;

  // An element whose subtree range contains only unused slots (a fully
  // deleted interior, paper S5.2) must serialize as <tag/>: the ">" is
  // written lazily on the first real child.
  auto close_top = [&](bool indent_it) {
    Open& top = stack.back();
    if (top.tag_open) {
      *out += "/>";
    } else {
      if (indent_it && top.has_children)
        Indent(out, static_cast<int>(stack.size()) - 1);
      *out += "</";
      *out += pool.Get(top.tag);
      *out += ">";
    }
    stack.pop_back();
  };
  auto flush_open = [&] {
    if (!stack.empty() && stack.back().tag_open) {
      *out += ">";
      stack.back().tag_open = false;
    }
  };

  int64_t end = pre + c.SizeAt(pre);
  for (int64_t p = pre; p <= end;) {
    if (c.IsUnused(p)) {
      p += c.SizeAt(p) + 1;
      continue;
    }
    // Close any elements whose subtree ended before p.
    while (!stack.empty() && stack.back().end < p) close_top(opts.indent);
    flush_open();
    if (!stack.empty() && opts.indent)
      Indent(out, static_cast<int>(stack.size()));
    if (!stack.empty()) stack.back().has_children = true;

    switch (c.KindAt(p)) {
      case NodeKind::kDoc:
        if (!opts.omit_doc_node) *out += "<?xml version=\"1.0\"?>";
        ++p;
        continue;  // children follow naturally in the scan
      case NodeKind::kElem: {
        StrId tag = static_cast<StrId>(c.RefAt(p));
        *out += "<";
        *out += pool.Get(tag);
        c.AttrsOf(p, &attr_rows);
        for (int64_t row : attr_rows) {
          *out += " ";
          *out += pool.Get(c.AttrQn(row));
          *out += "=\"";
          EscapeAttr(pool.View(c.AttrValue(row)), out);
          *out += "\"";
        }
        if (c.SizeAt(p) == 0) {
          *out += "/>";
        } else {
          stack.push_back({p + c.SizeAt(p), tag, false, /*tag_open=*/true});
        }
        break;
      }
      case NodeKind::kText:
        EscapeText(pool.View(static_cast<StrId>(c.RefAt(p))), out);
        break;
      case NodeKind::kComment:
        *out += "<!--";
        *out += pool.Get(static_cast<StrId>(c.RefAt(p)));
        *out += "-->";
        break;
      case NodeKind::kPI: {
        int64_t row = c.RefAt(p);
        *out += "<?";
        *out += pool.Get(c.PITarget(row));
        *out += " ";
        *out += pool.Get(c.PIValue(row));
        *out += "?>";
        break;
      }
      case NodeKind::kUnused:
        break;  // unreachable: handled above
    }
    ++p;
  }
  while (!stack.empty()) close_top(opts.indent);
}

std::string AtomicToString(const DocumentManager& mgr, const Item& item) {
  switch (item.kind) {
    case ItemKind::kInt:
      return std::to_string(item.i);
    case ItemKind::kDouble: {
      double v = item.d;
      if (v == std::floor(v) && std::abs(v) < 1e15) {
        // Integral doubles print without trailing zeros (XQuery decimals).
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.1f", v);
        std::string s(buf);
        if (s.size() > 2 && s.ends_with(".0")) s.resize(s.size() - 2);
        return s;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", v);
      return buf;
    }
    case ItemKind::kBool:
      return item.b ? "true" : "false";
    case ItemKind::kString:
    case ItemKind::kUntyped:
      return mgr.strings().Get(item.str_id());
    default:
      return "";
  }
}

std::string SerializeSequence(const DocumentManager& mgr,
                              std::span<const Item> items,
                              const SerializeOptions& opts) {
  std::string out;
  bool prev_atomic = false;
  for (const Item& it : items) {
    if (it.kind == ItemKind::kNode) {
      NodeRef n = it.node();
      SerializeNode(*mgr.container(n.container), n.pre, &out, opts);
      prev_atomic = false;
    } else if (it.kind == ItemKind::kAttr) {
      // Standalone attribute in a result sequence: name="value" notation.
      AttrRef a = it.attr();
      const DocumentContainer& c = *mgr.container(a.container);
      out += mgr.strings().Get(c.AttrQn(a.row));
      out += "=\"";
      EscapeAttr(mgr.strings().View(c.AttrValue(a.row)), &out);
      out += "\"";
      prev_atomic = false;
    } else {
      if (prev_atomic) out += " ";
      std::string text = AtomicToString(mgr, it);
      EscapeText(text, &out);
      prev_atomic = true;
    }
  }
  return out;
}

}  // namespace mxq
