// XML serializer: turns node surrogates / item sequences back into XML text.
//
// Serialization of a subtree is a single forward scan over the pre|size|level
// slots (the paper's observation that serialization is sequential read),
// with an explicit stack closing elements when their subtree range ends.

#ifndef MXQ_XML_SERIALIZER_H_
#define MXQ_XML_SERIALIZER_H_

#include <span>
#include <string>

#include "common/item.h"
#include "storage/document.h"

namespace mxq {

struct SerializeOptions {
  bool indent = false;        // pretty-print with 2-space indentation
  bool omit_doc_node = true;  // document node itself produces no markup
};

/// Serializes the subtree rooted at `pre` of `container`.
void SerializeNode(const DocumentContainer& container, int64_t pre,
                   std::string* out, const SerializeOptions& opts = {});

/// Serializes an XQuery result sequence: nodes as markup, atomic values as
/// their lexical form, adjacent atomics separated by a single space.
std::string SerializeSequence(const DocumentManager& mgr,
                              std::span<const Item> items,
                              const SerializeOptions& opts = {});

/// Lexical form of one atomic item (no markup).
std::string AtomicToString(const DocumentManager& mgr, const Item& item);

/// Escapes text content (& < >).
void EscapeText(std::string_view in, std::string* out);
/// Escapes attribute values (& < > ").
void EscapeAttr(std::string_view in, std::string* out);

}  // namespace mxq

#endif  // MXQ_XML_SERIALIZER_H_
