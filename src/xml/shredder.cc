#include "xml/shredder.h"

#include <cctype>
#include <vector>

namespace mxq {

namespace {

/// Single-pass recursive-descent XML reader that appends directly into a
/// DocumentContainer.
class Shredder {
 public:
  Shredder(DocumentContainer* c, std::string_view in, const ShredOptions& opts)
      : c_(c), pool_(c->manager()->strings()), opts_(opts), in_(in) {}

  /// Parses a full document (with synthetic document node at pre 0).
  Result<int64_t> ParseDocument(int32_t frag) {
    frag_ = frag;
    int64_t doc_rid =
        c_->AppendSlot(NodeKind::kDoc, /*ref=*/-1, /*level=*/0, frag_);
    level_ = 1;
    open_.push_back(doc_rid);
    SkipProlog();
    MXQ_RETURN_IF_ERROR(ParseContent());
    if (open_.size() != 1) return Err("unexpected end of input: open element");
    CloseTop();
    if (!AtEnd()) {
      SkipWhitespace();
      if (!AtEnd()) return Err("trailing content after document element");
    }
    return doc_rid;
  }

  /// Parses a fragment: top-level nodes become children of no one
  /// (level 0 roots of fragment `frag`).
  Result<int64_t> ParseFragment(int32_t frag) {
    frag_ = frag;
    level_ = 0;
    document_mode_ = false;
    int64_t first = c_->PhysicalSlots();
    MXQ_RETURN_IF_ERROR(ParseContent());
    if (!open_.empty()) return Err("unexpected end of input: open element");
    if (c_->PhysicalSlots() == first) return Err("empty fragment");
    return first;
  }

 private:
  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < in_.size() ? in_[pos_ + ahead] : '\0';
  }
  bool LookingAt(std::string_view s) const {
    return in_.substr(pos_, s.size()) == s;
  }
  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(in_[pos_])))
      ++pos_;
  }

  Status Err(const std::string& msg) const {
    return Status::ParseError("XML: " + msg + " at offset " +
                              std::to_string(pos_));
  }

  void SkipProlog() {
    for (;;) {
      SkipWhitespace();
      if (LookingAt("<?")) {
        // XML declaration or prolog PI: skip (declarations are not nodes;
        // prolog PIs are rare enough to drop before the document element).
        size_t end = in_.find("?>", pos_);
        pos_ = (end == std::string_view::npos) ? in_.size() : end + 2;
      } else if (LookingAt("<!DOCTYPE")) {
        // Skip to the matching '>' (internal subsets use nested brackets).
        int depth = 0;
        while (!AtEnd()) {
          char ch = in_[pos_++];
          if (ch == '[' || ch == '<') ++depth;
          if (ch == ']') --depth;
          if (ch == '>') {
            if (depth <= 1) break;
            --depth;
          }
        }
      } else if (LookingAt("<!--")) {
        size_t end = in_.find("-->", pos_);
        pos_ = (end == std::string_view::npos) ? in_.size() : end + 3;
      } else {
        return;
      }
    }
  }

  bool IsNameChar(char ch) const {
    return std::isalnum(static_cast<unsigned char>(ch)) || ch == '_' ||
           ch == '-' || ch == '.' || ch == ':';
  }

  Result<std::string_view> ParseName() {
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(in_[pos_])) ++pos_;
    if (pos_ == start) return Status(Err("expected name"));
    return in_.substr(start, pos_ - start);
  }

  /// Decodes entity and character references into `out`.
  Status DecodeText(std::string_view raw, std::string* out) {
    out->clear();
    out->reserve(raw.size());
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out->push_back(raw[i++]);
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos)
        return Err("unterminated entity reference");
      std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "lt")
        out->push_back('<');
      else if (ent == "gt")
        out->push_back('>');
      else if (ent == "amp")
        out->push_back('&');
      else if (ent == "quot")
        out->push_back('"');
      else if (ent == "apos")
        out->push_back('\'');
      else if (!ent.empty() && ent[0] == '#') {
        int base = 10;
        size_t k = 1;
        if (k < ent.size() && (ent[k] == 'x' || ent[k] == 'X')) {
          base = 16;
          ++k;
        }
        long code = std::strtol(std::string(ent.substr(k)).c_str(), nullptr,
                                base);
        // UTF-8 encode.
        if (code < 0x80) {
          out->push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out->push_back(static_cast<char>(0xC0 | (code >> 6)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out->push_back(static_cast<char>(0xE0 | (code >> 12)));
          out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
      } else {
        return Err("unknown entity &" + std::string(ent) + ";");
      }
      i = semi + 1;
    }
    return Status::OK();
  }

  void CloseTop() {
    int64_t rid = open_.back();
    open_.pop_back();
    c_->SetSize(rid, c_->PhysicalSlots() - rid - 1);
  }

  Status ParseContent() {
    std::string decoded;
    while (!AtEnd()) {
      if (Peek() == '<') {
        if (LookingAt("</")) {
          pos_ += 2;
          MXQ_ASSIGN_OR_RETURN(std::string_view name, ParseName());
          SkipWhitespace();
          if (Peek() != '>') return Err("malformed end tag");
          ++pos_;
          if (open_.empty() ||
              (level_ == 1 && c_->KindAtRid(open_.back()) == NodeKind::kDoc))
            return Err("unmatched end tag </" + std::string(name) + ">");
          StrId expect = static_cast<StrId>(c_->RefAt(c_->Pre(open_.back())));
          if (pool_.View(expect) != name)
            return Err("mismatched end tag </" + std::string(name) + ">");
          CloseTop();
          --level_;
          if (document_mode_ && open_.size() == 1)
            return Status::OK();  // document element closed
          // Fragment mode: keep scanning, more sibling roots may follow.
        } else if (LookingAt("<!--")) {
          size_t end = in_.find("-->", pos_ + 4);
          if (end == std::string_view::npos) return Err("unterminated comment");
          std::string_view body = in_.substr(pos_ + 4, end - pos_ - 4);
          c_->AppendSlot(NodeKind::kComment, pool_.Intern(body), level_,
                         frag_);
          pos_ = end + 3;
        } else if (LookingAt("<![CDATA[")) {
          size_t end = in_.find("]]>", pos_ + 9);
          if (end == std::string_view::npos) return Err("unterminated CDATA");
          std::string_view body = in_.substr(pos_ + 9, end - pos_ - 9);
          c_->AppendSlot(NodeKind::kText, pool_.Intern(body), level_, frag_);
          pos_ = end + 3;
        } else if (LookingAt("<?")) {
          pos_ += 2;
          MXQ_ASSIGN_OR_RETURN(std::string_view target, ParseName());
          SkipWhitespace();
          size_t end = in_.find("?>", pos_);
          if (end == std::string_view::npos) return Err("unterminated PI");
          std::string_view value = in_.substr(pos_, end - pos_);
          int64_t row = c_->AddPI(pool_.Intern(target), pool_.Intern(value));
          c_->AppendSlot(NodeKind::kPI, row, level_, frag_);
          pos_ = end + 2;
        } else {
          MXQ_RETURN_IF_ERROR(ParseStartTag());
        }
      } else {
        size_t end = in_.find('<', pos_);
        if (end == std::string_view::npos) end = in_.size();
        std::string_view raw = in_.substr(pos_, end - pos_);
        pos_ = end;
        bool all_ws = true;
        for (char ch : raw)
          if (!std::isspace(static_cast<unsigned char>(ch))) {
            all_ws = false;
            break;
          }
        if (all_ws && opts_.strip_whitespace_text) continue;
        if (document_mode_ && open_.size() <= 1)
          return Err("text content outside the document element");
        MXQ_RETURN_IF_ERROR(DecodeText(raw, &decoded));
        c_->AppendSlot(NodeKind::kText, pool_.Intern(decoded), level_, frag_);
      }
    }
    return Status::OK();
  }

  Status ParseStartTag() {
    ++pos_;  // '<'
    MXQ_ASSIGN_OR_RETURN(std::string_view name, ParseName());
    int64_t rid =
        c_->AppendSlot(NodeKind::kElem, pool_.Intern(name), level_, frag_);
    std::string decoded;
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) return Err("unterminated start tag");
      if (Peek() == '>') {
        ++pos_;
        open_.push_back(rid);
        ++level_;
        return Status::OK();
      }
      if (LookingAt("/>")) {
        pos_ += 2;
        return Status::OK();  // empty element, size stays 0
      }
      MXQ_ASSIGN_OR_RETURN(std::string_view attr_name, ParseName());
      SkipWhitespace();
      if (Peek() != '=') return Err("expected '=' in attribute");
      ++pos_;
      SkipWhitespace();
      char quote = Peek();
      if (quote != '"' && quote != '\'') return Err("expected quoted value");
      ++pos_;
      size_t end = in_.find(quote, pos_);
      if (end == std::string_view::npos) return Err("unterminated attribute");
      std::string_view raw = in_.substr(pos_, end - pos_);
      pos_ = end + 1;
      MXQ_RETURN_IF_ERROR(DecodeText(raw, &decoded));
      c_->AppendAttr(rid, pool_.Intern(attr_name), pool_.Intern(decoded));
    }
  }

  DocumentContainer* c_;
  StringPool& pool_;
  ShredOptions opts_;
  std::string_view in_;
  size_t pos_ = 0;
  int32_t frag_ = 0;
  int32_t level_ = 0;
  bool document_mode_ = true;
  std::vector<int64_t> open_;  // rids of open elements (plus doc node)
};

}  // namespace

Result<DocumentContainer*> ShredDocument(DocumentManager* mgr,
                                         const std::string& name,
                                         std::string_view xml,
                                         const ShredOptions& opts) {
  DocumentContainer* c = mgr->CreateContainer(name);
  Shredder sh(c, xml, opts);
  auto root = sh.ParseDocument(c->next_frag());
  if (!root.ok()) return root.status();
  if (opts.build_fulltext) (void)c->fulltext_index();
  return c;
}

Result<int64_t> ShredFragment(DocumentContainer* container,
                              std::string_view xml, const ShredOptions& opts) {
  Shredder sh(container, xml, opts);
  auto root = sh.ParseFragment(container->next_frag());
  // Appended nodes make any built name/fulltext index stale: drop them so
  // the next consumer rebuilds over the grown container.
  if (root.ok()) container->InvalidateIndexes();
  return root;
}

}  // namespace mxq
