#include "xml/shredder.h"

#include <cctype>
#include <vector>

#include "common/fault.h"

namespace mxq {

namespace {

// Estimated bytes appended to the container per row kind, the amounts the
// governed shredder charges against the execution's MemAccount. Node row:
// size(8) + level(4) + kind(1) + ref(8) + frag(4), rounded to the allocated
// stride. Attribute row: owner(8) + qname(4) + value(4). PI property row:
// target(4) + value(4).
constexpr int64_t kSlotBytes = 25;
constexpr int64_t kAttrBytes = 16;
constexpr int64_t kPIBytes = 8;

// Stop-poll / memory-charge batch: one StopRequested() + Charge() per this
// many appended rows. Small enough that cancellation latency and budget
// overshoot are bounded by ~a page of rows, large enough to stay inside the
// <=3% governed-shred overhead budget.
constexpr int64_t kPollRows = 64;

/// Single-pass recursive-descent XML reader that appends directly into a
/// DocumentContainer.
class Shredder {
 public:
  Shredder(DocumentContainer* c, std::string_view in, const ShredOptions& opts)
      : c_(c),
        pool_(c->manager()->strings()),
        opts_(opts),
        ctx_(opts.ctx != nullptr ? opts.ctx : CurrentExecContext()),
        in_(in) {}

  /// Parses a full document (with synthetic document node at pre 0).
  Result<int64_t> ParseDocument(int32_t frag) {
    MXQ_RETURN_IF_ERROR(CheckInputSize());
    frag_ = frag;
    int64_t doc_rid =
        c_->AppendSlot(NodeKind::kDoc, /*ref=*/-1, /*level=*/0, frag_);
    MXQ_RETURN_IF_ERROR(Tick(kSlotBytes));
    level_ = 1;
    open_.push_back(doc_rid);
    SkipProlog();
    MXQ_RETURN_IF_ERROR(ParseContent());
    if (open_.size() != 1) return Err("unexpected end of input: open element");
    CloseTop();
    if (!AtEnd()) {
      SkipWhitespace();
      if (!AtEnd()) return Err("trailing content after document element");
    }
    // Final checkpoint: a stop (or injected fault) that landed between two
    // batched polls must not be swallowed by a successful return.
    MXQ_RETURN_IF_ERROR(Poll());
    return doc_rid;
  }

  /// Parses a fragment: top-level nodes become children of no one
  /// (level 0 roots of fragment `frag`).
  Result<int64_t> ParseFragment(int32_t frag) {
    MXQ_RETURN_IF_ERROR(CheckInputSize());
    frag_ = frag;
    level_ = 0;
    document_mode_ = false;
    int64_t first = c_->PhysicalSlots();
    MXQ_RETURN_IF_ERROR(ParseContent());
    if (!open_.empty()) return Err("unexpected end of input: open element");
    if (c_->PhysicalSlots() == first) return Err("empty fragment");
    MXQ_RETURN_IF_ERROR(Poll());
    return first;
  }

  /// Pushes any not-yet-charged appended bytes to the MemAccount (success
  /// path: the rows survive, the account keeps carrying them).
  void FlushCharge() {
    if (ctx_ != nullptr && pending_bytes_ > 0) {
      ctx_->mem()->Charge(pending_bytes_);
      charged_bytes_ += pending_bytes_;
      pending_bytes_ = 0;
    }
  }

  /// Failure path: the rollback discards every appended row, so hand the
  /// already-charged bytes back to the account (uncharged pending is simply
  /// dropped).
  void ReleaseCharges() {
    pending_bytes_ = 0;
    if (ctx_ != nullptr && charged_bytes_ > 0) {
      ctx_->mem()->Release(charged_bytes_);
      charged_bytes_ = 0;
    }
  }

 private:
  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < in_.size() ? in_[pos_ + ahead] : '\0';
  }
  bool LookingAt(std::string_view s) const {
    return in_.substr(pos_, s.size()) == s;
  }
  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(in_[pos_])))
      ++pos_;
  }

  Status Err(const std::string& msg) const {
    return Status::ParseError("XML: " + msg + " at offset " +
                              std::to_string(pos_));
  }

  // ---- governance (docs/robustness.md "Ingestion") -------------------------

  Status CheckInputSize() const {
    if (opts_.max_input_bytes > 0 &&
        static_cast<int64_t>(in_.size()) > opts_.max_input_bytes) {
      return Status::ResourceExhausted(
          "shred: input is " + std::to_string(in_.size()) +
          " bytes, max_input_bytes is " +
          std::to_string(opts_.max_input_bytes));
    }
    return Status::OK();
  }

  /// Per-appended-row tick: fault point, max_nodes limit, and every
  /// kPollRows rows a batched stop poll + memory charge.
  Status Tick(int64_t bytes) {
    MXQ_FAULT_POINT("shred.slot");
    ++rows_;
    pending_bytes_ += bytes;
    if (opts_.max_nodes > 0 && rows_ > opts_.max_nodes) {
      return Status::ResourceExhausted(
          "shred: appended row count exceeds max_nodes " +
          std::to_string(opts_.max_nodes));
    }
    if ((rows_ & (kPollRows - 1)) == 0) return Poll();
    return Status::OK();
  }

  /// Unbatched checkpoint: charge what is pending, then surface the typed
  /// stop reason if the execution was cancelled / timed out / over budget.
  Status Poll() {
    FlushCharge();
    if (ctx_ != nullptr && ctx_->StopRequested()) {
      Status st = ctx_->Check();
      if (!st.ok()) return st;
      return Status::Cancelled("execution cancelled");
    }
    return Status::OK();
  }

  void SkipProlog() {
    for (;;) {
      SkipWhitespace();
      if (LookingAt("<?")) {
        // XML declaration or prolog PI: skip (declarations are not nodes;
        // prolog PIs are rare enough to drop before the document element).
        size_t end = in_.find("?>", pos_);
        pos_ = (end == std::string_view::npos) ? in_.size() : end + 2;
      } else if (LookingAt("<!DOCTYPE")) {
        // Skip to the matching '>' (internal subsets use nested brackets).
        int depth = 0;
        while (!AtEnd()) {
          char ch = in_[pos_++];
          if (ch == '[' || ch == '<') ++depth;
          if (ch == ']') --depth;
          if (ch == '>') {
            if (depth <= 1) break;
            --depth;
          }
        }
      } else if (LookingAt("<!--")) {
        size_t end = in_.find("-->", pos_);
        pos_ = (end == std::string_view::npos) ? in_.size() : end + 3;
      } else {
        return;
      }
    }
  }

  bool IsNameChar(char ch) const {
    return std::isalnum(static_cast<unsigned char>(ch)) || ch == '_' ||
           ch == '-' || ch == '.' || ch == ':';
  }

  Result<std::string_view> ParseName() {
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(in_[pos_])) ++pos_;
    if (pos_ == start) return Status(Err("expected name"));
    return in_.substr(start, pos_ - start);
  }

  /// Decodes entity and character references into `out`.
  Status DecodeText(std::string_view raw, std::string* out) {
    MXQ_FAULT_POINT("shred.text");
    out->clear();
    out->reserve(raw.size());
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out->push_back(raw[i++]);
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos)
        return Err("unterminated entity reference");
      std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "lt")
        out->push_back('<');
      else if (ent == "gt")
        out->push_back('>');
      else if (ent == "amp")
        out->push_back('&');
      else if (ent == "quot")
        out->push_back('"');
      else if (ent == "apos")
        out->push_back('\'');
      else if (!ent.empty() && ent[0] == '#') {
        int base = 10;
        size_t k = 1;
        if (k < ent.size() && (ent[k] == 'x' || ent[k] == 'X')) {
          base = 16;
          ++k;
        }
        long code = std::strtol(std::string(ent.substr(k)).c_str(), nullptr,
                                base);
        // UTF-8 encode.
        if (code < 0x80) {
          out->push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out->push_back(static_cast<char>(0xC0 | (code >> 6)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out->push_back(static_cast<char>(0xE0 | (code >> 12)));
          out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
      } else {
        return Err("unknown entity &" + std::string(ent) + ";");
      }
      i = semi + 1;
    }
    return Status::OK();
  }

  void CloseTop() {
    int64_t rid = open_.back();
    open_.pop_back();
    c_->SetSize(rid, c_->PhysicalSlots() - rid - 1);
  }

  Status ParseContent() {
    std::string decoded;
    while (!AtEnd()) {
      if (Peek() == '<') {
        if (LookingAt("</")) {
          pos_ += 2;
          MXQ_ASSIGN_OR_RETURN(std::string_view name, ParseName());
          SkipWhitespace();
          if (Peek() != '>') return Err("malformed end tag");
          ++pos_;
          if (open_.empty() ||
              (level_ == 1 && c_->KindAtRid(open_.back()) == NodeKind::kDoc))
            return Err("unmatched end tag </" + std::string(name) + ">");
          StrId expect = static_cast<StrId>(c_->RefAt(c_->Pre(open_.back())));
          if (pool_.View(expect) != name)
            return Err("mismatched end tag </" + std::string(name) + ">");
          CloseTop();
          --level_;
          if (document_mode_ && open_.size() == 1)
            return Status::OK();  // document element closed
          // Fragment mode: keep scanning, more sibling roots may follow.
        } else if (LookingAt("<!--")) {
          size_t end = in_.find("-->", pos_ + 4);
          if (end == std::string_view::npos) return Err("unterminated comment");
          std::string_view body = in_.substr(pos_ + 4, end - pos_ - 4);
          c_->AppendSlot(NodeKind::kComment, pool_.Intern(body), level_,
                         frag_);
          MXQ_RETURN_IF_ERROR(Tick(kSlotBytes));
          pos_ = end + 3;
        } else if (LookingAt("<![CDATA[")) {
          size_t end = in_.find("]]>", pos_ + 9);
          if (end == std::string_view::npos) return Err("unterminated CDATA");
          std::string_view body = in_.substr(pos_ + 9, end - pos_ - 9);
          c_->AppendSlot(NodeKind::kText, pool_.Intern(body), level_, frag_);
          MXQ_RETURN_IF_ERROR(Tick(kSlotBytes));
          pos_ = end + 3;
        } else if (LookingAt("<?")) {
          pos_ += 2;
          MXQ_ASSIGN_OR_RETURN(std::string_view target, ParseName());
          SkipWhitespace();
          size_t end = in_.find("?>", pos_);
          if (end == std::string_view::npos) return Err("unterminated PI");
          std::string_view value = in_.substr(pos_, end - pos_);
          int64_t row = c_->AddPI(pool_.Intern(target), pool_.Intern(value));
          c_->AppendSlot(NodeKind::kPI, row, level_, frag_);
          MXQ_RETURN_IF_ERROR(Tick(kSlotBytes + kPIBytes));
          pos_ = end + 2;
        } else {
          MXQ_RETURN_IF_ERROR(ParseStartTag());
        }
      } else {
        size_t end = in_.find('<', pos_);
        if (end == std::string_view::npos) end = in_.size();
        std::string_view raw = in_.substr(pos_, end - pos_);
        pos_ = end;
        bool all_ws = true;
        for (char ch : raw)
          if (!std::isspace(static_cast<unsigned char>(ch))) {
            all_ws = false;
            break;
          }
        if (all_ws && opts_.strip_whitespace_text) continue;
        if (document_mode_ && open_.size() <= 1)
          return Err("text content outside the document element");
        MXQ_RETURN_IF_ERROR(DecodeText(raw, &decoded));
        c_->AppendSlot(NodeKind::kText, pool_.Intern(decoded), level_, frag_);
        MXQ_RETURN_IF_ERROR(Tick(kSlotBytes));
      }
    }
    return Status::OK();
  }

  Status ParseStartTag() {
    ++pos_;  // '<'
    MXQ_ASSIGN_OR_RETURN(std::string_view name, ParseName());
    // Element depth: the document element (fragment root) is depth 1.
    // level_ counts the doc node in document mode, so the offsets differ.
    int32_t depth = level_ + (document_mode_ ? 0 : 1);
    if (opts_.max_depth > 0 && depth > opts_.max_depth) {
      return Status::ResourceExhausted(
          "shred: element nesting exceeds max_depth " +
          std::to_string(opts_.max_depth));
    }
    int64_t rid =
        c_->AppendSlot(NodeKind::kElem, pool_.Intern(name), level_, frag_);
    MXQ_RETURN_IF_ERROR(Tick(kSlotBytes));
    std::string decoded;
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) return Err("unterminated start tag");
      if (Peek() == '>') {
        ++pos_;
        open_.push_back(rid);
        ++level_;
        return Status::OK();
      }
      if (LookingAt("/>")) {
        pos_ += 2;
        return Status::OK();  // empty element, size stays 0
      }
      MXQ_ASSIGN_OR_RETURN(std::string_view attr_name, ParseName());
      SkipWhitespace();
      if (Peek() != '=') return Err("expected '=' in attribute");
      ++pos_;
      SkipWhitespace();
      char quote = Peek();
      if (quote != '"' && quote != '\'') return Err("expected quoted value");
      ++pos_;
      size_t end = in_.find(quote, pos_);
      if (end == std::string_view::npos) return Err("unterminated attribute");
      std::string_view raw = in_.substr(pos_, end - pos_);
      pos_ = end + 1;
      MXQ_RETURN_IF_ERROR(DecodeText(raw, &decoded));
      c_->AppendAttr(rid, pool_.Intern(attr_name), pool_.Intern(decoded));
      MXQ_RETURN_IF_ERROR(Tick(kAttrBytes));
    }
  }

  DocumentContainer* c_;
  StringPool& pool_;
  ShredOptions opts_;
  ExecContext* ctx_;  // effective context: opts.ctx, else ambient; may be null
  std::string_view in_;
  size_t pos_ = 0;
  int32_t frag_ = 0;
  int32_t level_ = 0;
  bool document_mode_ = true;
  int64_t rows_ = 0;            // appended rows (nodes + attrs + PI entries)
  int64_t pending_bytes_ = 0;   // appended but not yet charged
  int64_t charged_bytes_ = 0;   // charged to ctx_->mem() so far
  std::vector<int64_t> open_;  // rids of open elements (plus doc node)
};

}  // namespace

Result<DocumentContainer*> ShredDocument(DocumentManager* mgr,
                                         const std::string& name,
                                         std::string_view xml,
                                         const ShredOptions& opts) {
  // Parse into an unnamed pooled container and publish the name only after
  // the whole load (and any eager index build) succeeded: a failed load is
  // invisible — GetDocument(name) keeps returning NotFound, the scratch
  // container is recycled, and no half-populated document can ever be
  // reached by a query (docs/robustness.md "Ingestion").
  DocumentContainer* c = mgr->AcquireTransient();
  // Install the governing context for the span of the load so fault points
  // and column-growth charging (storage/column.h) see it.
  ScopedExecContext scoped(opts.ctx != nullptr ? opts.ctx
                                               : CurrentExecContext());
  Shredder sh(c, xml, opts);
  auto root = sh.ParseDocument(c->next_frag());
  Status st = root.ok() ? Status::OK() : root.status();
  if (st.ok() && opts.build_fulltext) {
    auto idx = c->fulltext_index();
    if (idx == nullptr) {
      // Build abandoned at a governance stop / injected fault: surface the
      // typed reason and treat the load as failed.
      ExecContext* ctx = CurrentExecContext();
      if (ctx != nullptr) st = ctx->Check();
      if (st.ok()) st = Status::Cancelled("fulltext index build abandoned");
    }
  }
  if (!st.ok()) {
    sh.ReleaseCharges();
    mgr->ReleaseTransient(c);  // Clear()s and recycles; the name never bound
    return st;
  }
  sh.FlushCharge();
  mgr->PublishDocument(c, name);
  return c;
}

Result<int64_t> ShredFragment(DocumentContainer* container,
                              std::string_view xml, const ShredOptions& opts) {
  const DocumentContainer::Watermark mark = container->Mark();
  ScopedExecContext scoped(opts.ctx != nullptr ? opts.ctx
                                               : CurrentExecContext());
  Shredder sh(container, xml, opts);
  auto root = sh.ParseFragment(container->next_frag());
  if (!root.ok()) {
    // Roll the container back byte-identically to its pre-call state; the
    // indexes were built against exactly that state, so they stay valid.
    sh.ReleaseCharges();
    container->TruncateTo(mark);
    return root.status();
  }
  sh.FlushCharge();
  // Appended nodes make any built name/fulltext index stale: drop them so
  // the next consumer rebuilds over the grown container.
  container->InvalidateIndexes();
  return root;
}

}  // namespace mxq
