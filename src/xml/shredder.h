// XML shredder: parses XML text into the pre|size|level relational encoding.
//
// A single left-to-right pass builds the node table in document order, which
// is exactly append order (the paper's observation that shredding is a
// sequential write). Element sizes are fixed up when the element closes,
// using a stack of open elements.
//
// Supported: elements, attributes, text, CDATA, comments, processing
// instructions, XML declaration, DOCTYPE (skipped), the five predefined
// entities and decimal/hex character references. Namespace prefixes are kept
// verbatim as part of the tag name (documented dialect restriction).

#ifndef MXQ_XML_SHREDDER_H_
#define MXQ_XML_SHREDDER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/exec_context.h"
#include "common/status.h"
#include "storage/document.h"

namespace mxq {

struct ShredOptions {
  /// Discard whitespace-only text nodes (on: typical DB behaviour, and what
  /// XMark-style data expects).
  bool strip_whitespace_text = true;
  /// Build the fulltext inverted index (docs/fulltext.md) eagerly as part
  /// of shredding. Off by default: the index is otherwise built lazily on
  /// the first ft:contains/ft:score probe against the container.
  bool build_fulltext = false;

  // ---- hard input limits (docs/robustness.md "Ingestion") -----------------
  // Each limit returns a typed kResourceExhausted Status when exceeded —
  // never an abort — and the container rolls back to its pre-shred state.
  // 0 = unlimited, except max_depth whose default guards the untrusted
  // front door out of the box.

  /// Maximum element nesting depth (the document element is depth 1).
  int32_t max_depth = 1024;
  /// Maximum input size in bytes, checked before parsing starts.
  int64_t max_input_bytes = 0;
  /// Maximum appended rows (nodes + attributes + PI entries).
  int64_t max_nodes = 0;

  // ---- governance (docs/robustness.md) ------------------------------------

  /// Optional execution context: the shredder polls its cancel flag /
  /// deadline every few rows and charges its MemAccount for the appended
  /// node-table bytes, so ingestion honors the same cancel / deadline /
  /// budget contract as query execution. Non-owning; may be null.
  ExecContext* ctx = nullptr;
};

/// \brief Parses `xml` and loads it as document `name` into `mgr`.
///
/// Returns the new document container. The container root (pre 0) is the
/// document node; the document element is its child.
///
/// Atomic: on any failure (parse error, input limit, governed cancel /
/// deadline / budget) no container is published — GetDocument(name) keeps
/// returning NotFound, the scratch container is recycled into the
/// manager's transient pool, and the registry is left as if the call never
/// happened. Interned strings remain in the shared pool (interning is
/// idempotent; leftovers are unreachable).
Result<DocumentContainer*> ShredDocument(DocumentManager* mgr,
                                         const std::string& name,
                                         std::string_view xml,
                                         const ShredOptions& opts = {});

/// \brief Parses `xml` as a fragment into an existing container, appending a
/// new fragment (no document node). Returns the fragment root pre.
///
/// Atomic: on any failure the container is rolled back byte-identically to
/// its pre-call state (watermark truncation over the append-only tables),
/// and previously built indexes stay valid. On success, built indexes are
/// invalidated (the appended nodes made them stale).
Result<int64_t> ShredFragment(DocumentContainer* container,
                              std::string_view xml,
                              const ShredOptions& opts = {});

}  // namespace mxq

#endif  // MXQ_XML_SHREDDER_H_
