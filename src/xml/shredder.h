// XML shredder: parses XML text into the pre|size|level relational encoding.
//
// A single left-to-right pass builds the node table in document order, which
// is exactly append order (the paper's observation that shredding is a
// sequential write). Element sizes are fixed up when the element closes,
// using a stack of open elements.
//
// Supported: elements, attributes, text, CDATA, comments, processing
// instructions, XML declaration, DOCTYPE (skipped), the five predefined
// entities and decimal/hex character references. Namespace prefixes are kept
// verbatim as part of the tag name (documented dialect restriction).

#ifndef MXQ_XML_SHREDDER_H_
#define MXQ_XML_SHREDDER_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "storage/document.h"

namespace mxq {

struct ShredOptions {
  /// Discard whitespace-only text nodes (on: typical DB behaviour, and what
  /// XMark-style data expects).
  bool strip_whitespace_text = true;
  /// Build the fulltext inverted index (docs/fulltext.md) eagerly as part
  /// of shredding. Off by default: the index is otherwise built lazily on
  /// the first ft:contains/ft:score probe against the container.
  bool build_fulltext = false;
};

/// \brief Parses `xml` and loads it as document `name` into `mgr`.
///
/// Returns the new document container. The container root (pre 0) is the
/// document node; the document element is its child.
Result<DocumentContainer*> ShredDocument(DocumentManager* mgr,
                                         const std::string& name,
                                         std::string_view xml,
                                         const ShredOptions& opts = {});

/// \brief Parses `xml` as a fragment into an existing container, appending a
/// new fragment (no document node). Returns the fragment root pre.
Result<int64_t> ShredFragment(DocumentContainer* container,
                              std::string_view xml,
                              const ShredOptions& opts = {});

}  // namespace mxq

#endif  // MXQ_XML_SHREDDER_H_
