// Abstract syntax of the supported XQuery dialect (see DESIGN.md §5).
//
// One Expr node type with a kind tag keeps the tree uniform for the
// compiler's free-variable analysis (the basis of the `indep` property and
// join recognition).

#ifndef MXQ_XQUERY_AST_H_
#define MXQ_XQUERY_AST_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "algebra/item_ops.h"
#include "staircase/axis.h"

namespace mxq {
namespace xq {

enum class ExprKind : uint8_t {
  kIntLit,
  kDoubleLit,
  kStringLit,
  kEmptySeq,     // ()
  kSequence,     // (e1, e2, ...) — children
  kVarRef,       // $name            (str = name)
  kFLWOR,        // clauses / where / order / return
  kQuantified,   // some/every binders satisfies cond
  kIf,           // children: cond, then, else
  kAnd,          // children
  kOr,
  kGeneralCmp,   // children: lhs, rhs; cmp
  kValueCmp,     // eq ne lt le gt ge (same cmp field)
  kNodeBefore,   // <<
  kNodeAfter,    // >>
  kNodeIs,       // is
  kArith,        // children: lhs, rhs; arith
  kUnaryMinus,   // child
  kPath,         // children[0] = input expr; steps applied in order
  kRoot,         // "/" — root of the context document (str = doc name, set
                 //       by the compiler options when empty)
  kDoc,          // doc("name") (str = name)
  kCall,         // function call (str = name, children = args)
  kElemCtor,     // direct element constructor
  kAttrCtor,     // attribute constructor inside an element constructor
  kTextCtor,     // text constructor / literal text inside element content
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// One step of a path expression: axis, node test, optional predicates.
struct Step {
  Axis axis = Axis::kChild;
  NodeTest::Sel sel = NodeTest::Sel::kAnyElem;
  std::string name;              // name test (empty: wildcard/kind test)
  std::vector<ExprPtr> preds;    // predicates, applied in order
};

/// for/let binder of FLWOR and quantified expressions.
struct Clause {
  enum class Type : uint8_t { kFor, kLet } type = Type::kFor;
  std::string var;
  std::string pos_var;  // "at $p" (for only; empty if absent)
  ExprPtr expr;
};

struct OrderSpec {
  ExprPtr key;
  bool descending = false;
};

/// Pieces of an attribute value template or element content.
struct CtorContent {
  // Either a literal text piece (expr == nullptr) or an embedded expression.
  std::string text;
  ExprPtr expr;
};

struct Expr {
  ExprKind kind;

  // literals
  int64_t ival = 0;
  double dval = 0;
  std::string str;  // string literal / var name / function name / tag name

  std::vector<ExprPtr> children;

  // FLWOR / quantified
  std::vector<Clause> clauses;
  ExprPtr where;
  std::vector<OrderSpec> order;
  ExprPtr ret;          // FLWOR return / quantifier satisfies
  bool every = false;   // quantifier flavour

  // comparisons / arithmetic
  CmpOp cmp = CmpOp::kEq;
  ArithOp arith = ArithOp::kAdd;

  // paths
  std::vector<Step> steps;

  // constructors
  std::vector<std::pair<std::string, std::vector<CtorContent>>> attrs;
  std::vector<CtorContent> content;

  explicit Expr(ExprKind k) : kind(k) {}

  static ExprPtr Make(ExprKind k) { return std::make_unique<Expr>(k); }
};

/// A user-defined function from the query prolog.
struct FunctionDecl {
  std::string name;  // includes prefix, e.g. "local:convert"
  std::vector<std::string> params;
  ExprPtr body;
};

/// A prolog variable declaration.
///
///   declare variable $x external;              (external == true)
///   declare variable $x as xs:integer external;
///   declare variable $x := <expr>;             (init != nullptr)
///
/// External variables become plan parameter slots (prepared-query binding);
/// initialized variables compile as top-level let-bindings. The `as` type
/// annotation is recorded verbatim (e.g. "xs:integer", optionally with an
/// occurrence indicator) and enforced against bound values at execute time.
struct VarDecl {
  std::string name;
  std::string type_name;  // empty = item()* (anything)
  ExprPtr init;           // null for external variables
  bool external = false;
};

/// A parsed query module: prolog declarations plus the body expression.
struct Query {
  std::vector<FunctionDecl> functions;
  std::vector<VarDecl> variables;  // in declaration order
  ExprPtr body;
};

/// Free variables of an expression (drives `indep` / join recognition).
void CollectFreeVars(const Expr& e, std::set<std::string>* out);

}  // namespace xq
}  // namespace mxq

#endif  // MXQ_XQUERY_AST_H_
