// The loop-lifting XQuery-to-algebra compiler (paper §2.1, §4).
//
// Every expression compiles against the loop relation of its enclosing
// for-nest into a relation (iter, pos, item). Variables are environment
// entries remembering the loop they were bound under; uses in deeper loops
// are lifted through map relations (scope maps). The `indep` property is
// computed from free-variable sets and drives join recognition (§4.1):
// a where-clause comparison whose sides depend on disjoint variable sets
// compiles into an existential theta-join (§4.2) instead of a loop-lifted
// cross product.

#include <map>

#include "xquery/engine.h"
#include "xquery/parser.h"
#include "xquery/plan.h"

namespace mxq {
namespace xq {

namespace {

// ---------------------------------------------------------------------------
// plan-building helpers
// ---------------------------------------------------------------------------

PlanPtr Lit(TablePtr t) {
  auto n = MakePlan(OpCode::kLiteral);
  n->literal = std::move(t);
  return n;
}

PlanPtr Proj(PlanPtr in, alg::KeepCols cols) {
  auto n = MakePlan(OpCode::kProject);
  n->inputs = {std::move(in)};
  n->keep = std::move(cols);
  return n;
}

PlanPtr SortBy(PlanPtr in, std::vector<std::string> cols,
               std::vector<bool> desc = {}) {
  auto n = MakePlan(OpCode::kSort);
  n->inputs = {std::move(in)};
  n->cols_list = std::move(cols);
  n->desc = std::move(desc);
  return n;
}

PlanPtr DistinctBy(PlanPtr in, std::vector<std::string> cols) {
  auto n = MakePlan(OpCode::kDistinct);
  n->inputs = {std::move(in)};
  n->cols_list = std::move(cols);
  return n;
}

PlanPtr RowNumOp(PlanPtr in, std::string out, std::vector<std::string> order,
                 std::string group) {
  auto n = MakePlan(OpCode::kRowNum);
  n->inputs = {std::move(in)};
  n->out = std::move(out);
  n->cols_list = std::move(order);
  n->group = std::move(group);
  return n;
}

PlanPtr JoinI64(PlanPtr l, std::string lcol, PlanPtr r, std::string rcol,
                alg::KeepCols keep) {
  auto n = MakePlan(OpCode::kEquiJoinI64);
  n->inputs = {std::move(l), std::move(r)};
  n->col = std::move(lcol);
  n->col2 = std::move(rcol);
  n->keep = std::move(keep);
  return n;
}

PlanPtr SemiJoin(PlanPtr l, std::string lcol, PlanPtr r, std::string rcol,
                 bool anti = false) {
  auto n = MakePlan(OpCode::kSemiJoin);
  n->inputs = {std::move(l), std::move(r)};
  n->col = std::move(lcol);
  n->col2 = std::move(rcol);
  n->flag = anti;
  return n;
}

PlanPtr CrossOp(PlanPtr l, PlanPtr r, alg::KeepCols keep) {
  auto n = MakePlan(OpCode::kCross);
  n->inputs = {std::move(l), std::move(r)};
  n->keep = std::move(keep);
  return n;
}

PlanPtr SelTrue(PlanPtr in, std::string col, bool negate = false) {
  auto n = MakePlan(OpCode::kSelectTrue);
  n->inputs = {std::move(in)};
  n->col = std::move(col);
  n->flag = negate;
  return n;
}

PlanPtr Map1(PlanPtr in, ScalarFn fn, std::string out, std::string col) {
  auto n = MakePlan(OpCode::kMap1);
  n->inputs = {std::move(in)};
  n->fn = fn;
  n->out = std::move(out);
  n->col = std::move(col);
  return n;
}

PlanPtr Map2(PlanPtr in, ScalarFn fn, std::string out, std::string a,
             std::string b) {
  auto n = MakePlan(OpCode::kMap2);
  n->inputs = {std::move(in)};
  n->fn = fn;
  n->out = std::move(out);
  n->col = std::move(a);
  n->col2 = std::move(b);
  return n;
}

PlanPtr ConstCol(PlanPtr in, std::string out, Item v) {
  auto n = MakePlan(OpCode::kAppendConst);
  n->inputs = {std::move(in)};
  n->out = std::move(out);
  n->item = v;
  return n;
}

PlanPtr AssertOrd(PlanPtr in, std::vector<std::string> ord) {
  auto n = MakePlan(OpCode::kAssertProps);
  n->inputs = {std::move(in)};
  n->assert_props.ord = std::move(ord);
  return n;
}

PlanPtr UnionOp(PlanPtr a, PlanPtr b) {
  auto n = MakePlan(OpCode::kUnion);
  n->inputs = {std::move(a), std::move(b)};
  return n;
}

// ---------------------------------------------------------------------------
// the compiler
// ---------------------------------------------------------------------------

class Compiler {
 public:
  Compiler(DocumentManager* mgr, const CompileOptions& opts)
      : mgr_(mgr), opts_(opts) {
    root_loop_.loop = Lit(alg::MakeLoop(1));
    root_loop_.link = LoopCtx::Link::kRoot;
  }

  Result<PlanPtr> CompileQuery(const Query& q) {
    for (const FunctionDecl& f : q.functions) funcs_[f.name] = &f;
    Env env;
    MXQ_RETURN_IF_ERROR(CompileProlog(q, &env));
    MXQ_ASSIGN_OR_RETURN(PlanPtr rel, Compile(*q.body, &root_loop_, env));
    return SortBy(rel, {"iter", "pos"});
  }

  /// External-variable slots declared by the compiled query, in slot order.
  std::vector<ParamInfo> TakeParams() { return std::move(params_); }

 private:
  struct LoopCtx {
    PlanPtr loop;  // (iter) table
    LoopCtx* parent = nullptr;
    enum class Link { kRoot, kMap, kFilter } link = Link::kRoot;
    PlanPtr map;  // kMap: (outer, inner) table, inner dense
  };

  struct VarBind {
    PlanPtr rel;    // (iter, pos, item) valid in `loop`
    LoopCtx* loop;
  };
  using Env = std::map<std::string, VarBind>;

  /// Prolog variables: externals become kParam plan slots bound at execute
  /// time; initialized variables compile as top-level let-bindings. Both are
  /// bound under the root loop, so uses in deeper loops lift through the
  /// regular scope-map machinery.
  Status CompileProlog(const Query& q, Env* env) {
    for (const VarDecl& vd : q.variables) {
      if (env->count(vd.name))
        return Err("duplicate declaration of variable $" + vd.name);
      if (vd.external) {
        MXQ_ASSIGN_OR_RETURN(ParamType pt, ParamTypeFromName(vd.type_name));
        auto p = MakePlan(OpCode::kParam);
        p->param = static_cast<int32_t>(params_.size());
        params_.push_back(ParamInfo{vd.name, pt});
        PlanPtr rel =
            CrossOp(root_loop_.loop, p, {{"pos", "pos"}, {"item", "item"}});
        (*env)[vd.name] = {rel, &root_loop_};
      } else {
        MXQ_ASSIGN_OR_RETURN(PlanPtr rel,
                             Compile(*vd.init, &root_loop_, *env));
        (*env)[vd.name] = {rel, &root_loop_};
      }
    }
    return Status::OK();
  }

  Result<ParamType> ParamTypeFromName(const std::string& declared) {
    std::string t = declared;
    if (t.rfind("xs:", 0) == 0) t = t.substr(3);
    if (t.empty() || t == "item()" || t == "anyAtomicType")
      return ParamType::kAny;
    if (t == "integer" || t == "int" || t == "long" || t == "short" ||
        t == "byte" || t == "nonNegativeInteger" || t == "positiveInteger" ||
        t == "unsignedInt" || t == "unsignedLong")
      return ParamType::kInteger;
    if (t == "double" || t == "decimal" || t == "float" || t == "numeric")
      return ParamType::kDouble;
    if (t == "string" || t == "untypedAtomic" || t == "anyURI" ||
        t == "NCName" || t == "token" || t == "normalizedString")
      return ParamType::kString;
    if (t == "boolean") return ParamType::kBoolean;
    if (t == "node()" || t == "element()" || t == "attribute()" ||
        t == "text()" || t == "document-node()" || t == "comment()")
      return ParamType::kNode;
    return Status(
        Err("unsupported type in variable declaration: " + declared));
  }

  Status Err(const std::string& msg) {
    return Status::TypeError("XQuery compile: " + msg);
  }

  // ---- loop lifting ---------------------------------------------------------

  /// Lifts `bind.rel` (valid in bind.loop) into `target` through the chain
  /// of map / filter links.
  PlanPtr LiftRel(const VarBind& bind, LoopCtx* target) {
    // Collect the path target -> ... -> bind.loop.
    std::vector<LoopCtx*> chain;
    LoopCtx* l = target;
    while (l != bind.loop) {
      chain.push_back(l);
      l = l->parent;
      assert(l != nullptr && "variable loop must be an ancestor");
    }
    PlanPtr rel = bind.rel;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      LoopCtx* step = *it;
      if (step->link == LoopCtx::Link::kFilter) {
        rel = SemiJoin(rel, "iter", step->loop, "iter");
      } else {  // kMap
        PlanPtr j = JoinI64(step->map, "outer", rel, "iter",
                            {{"pos", "pos"}, {"item", "item"}});
        // Probe order follows the map's dense inner numbering.
        rel = AssertOrd(Proj(j, {{"inner", "iter"},
                                 {"pos", "pos"},
                                 {"item", "item"}}),
                        {"iter"});
      }
    }
    return rel;
  }

  Result<PlanPtr> LookupVar(const std::string& name, LoopCtx* loop,
                            Env& env) {
    auto it = env.find(name);
    if (it == env.end()) return Status(Err("unbound variable $" + name));
    return LiftRel(it->second, loop);
  }

  /// Single-item relation: loop x <pos=1, item=v>.
  PlanPtr RelForItem(Item v, LoopCtx* loop) {
    auto t = Table::Make();
    t->AddColumn("pos", Column::MakeI64({1}));
    t->AddColumn("item", Column::MakeItem({v}));
    return CrossOp(loop->loop, Lit(t), {{"pos", "pos"}, {"item", "item"}});
  }

  PlanPtr EmptyRel() {
    auto t = Table::Make();
    t->AddColumn("iter", Column::MakeI64({}));
    t->AddColumn("pos", Column::MakeI64({}));
    t->AddColumn("item", Column::MakeItem({}));
    return Lit(t);
  }

  /// Effective boolean value per loop iteration -> (iter, item=bool).
  PlanPtr Ebv(PlanPtr rel, LoopCtx* loop) {
    auto n = MakePlan(OpCode::kEbv);
    n->inputs = {std::move(rel), loop->loop};
    return n;
  }

  /// Group non-emptiness per loop iteration -> (iter, item=bool).
  PlanPtr ExistsRel(PlanPtr rel, LoopCtx* loop) {
    auto n = MakePlan(OpCode::kExists);
    n->inputs = {std::move(rel), loop->loop};
    return n;
  }

  /// Concatenation of sequences, renumbering pos per iter.
  PlanPtr ConcatRels(std::vector<PlanPtr> rels, LoopCtx* loop) {
    if (rels.empty()) return EmptyRel();
    if (rels.size() == 1) return rels[0];
    PlanPtr u;
    for (size_t k = 0; k < rels.size(); ++k) {
      PlanPtr piece = ConstCol(
          Proj(rels[k], {{"iter", "iter"}, {"pos", "pos"}, {"item", "item"}}),
          "seg", Item::Int(static_cast<int64_t>(k)));
      u = u ? UnionOp(u, piece) : piece;
    }
    PlanPtr sorted = SortBy(u, {"iter", "seg", "pos"});
    PlanPtr rn = RowNumOp(sorted, "p2", {}, "iter");
    return Proj(rn, {{"iter", "iter"}, {"p2", "pos"}, {"item", "item"}});
  }

  /// One string per loop iteration (empty string for empty groups).
  PlanPtr StringPerIter(PlanPtr rel, LoopCtx* loop, std::string sep = " ") {
    auto n = MakePlan(OpCode::kStringJoinAggr);
    n->inputs = {std::move(rel), loop->loop};
    n->sep = std::move(sep);
    return n;
  }

  /// Renumbers pos per iter after filtering predicates.
  PlanPtr RenumberPos(PlanPtr rel) {
    PlanPtr s = SortBy(rel, {"iter", "pos"});
    PlanPtr rn = RowNumOp(s, "p2", {}, "iter");
    return Proj(rn, {{"iter", "iter"}, {"p2", "pos"}, {"item", "item"}});
  }

  // ---- expression dispatch --------------------------------------------------

  Result<PlanPtr> Compile(const Expr& e, LoopCtx* loop, Env& env) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        return RelForItem(Item::Int(e.ival), loop);
      case ExprKind::kDoubleLit:
        return RelForItem(Item::Double(e.dval), loop);
      case ExprKind::kStringLit:
        return RelForItem(Item::String(mgr_->strings().Intern(e.str)), loop);
      case ExprKind::kEmptySeq:
        return EmptyRel();
      case ExprKind::kSequence: {
        std::vector<PlanPtr> rels;
        for (const ExprPtr& c : e.children) {
          MXQ_ASSIGN_OR_RETURN(PlanPtr r, Compile(*c, loop, env));
          rels.push_back(std::move(r));
        }
        return ConcatRels(std::move(rels), loop);
      }
      case ExprKind::kVarRef:
        return LookupVar(e.str, loop, env);
      case ExprKind::kDoc:
        return CompileDocRoot(e.str, loop);
      case ExprKind::kRoot:
        if (opts_.context_doc.empty())
          return Status(Err("'/' requires a context document"));
        return CompileDocRoot(opts_.context_doc, loop);
      case ExprKind::kPath:
        return CompilePath(e, loop, env);
      case ExprKind::kFLWOR:
        return CompileFLWOR(e, loop, env);
      case ExprKind::kQuantified:
        return CompileQuantified(e, loop, env);
      case ExprKind::kIf:
        return CompileIf(e, loop, env);
      case ExprKind::kAnd:
      case ExprKind::kOr: {
        MXQ_ASSIGN_OR_RETURN(PlanPtr l, Compile(*e.children[0], loop, env));
        MXQ_ASSIGN_OR_RETURN(PlanPtr r, Compile(*e.children[1], loop, env));
        PlanPtr bl = Ebv(std::move(l), loop);
        PlanPtr br = Ebv(std::move(r), loop);
        PlanPtr j = JoinI64(bl, "iter", br, "iter", {{"item", "i2"}});
        PlanPtr m = Map2(j, e.kind == ExprKind::kAnd ? ScalarFn::kAndBool
                                                     : ScalarFn::kOrBool,
                         "b", "item", "i2");
        return ConstCol(Proj(m, {{"iter", "iter"}, {"b", "item"}}), "pos",
                        Item::Int(1));
      }
      case ExprKind::kGeneralCmp:
      case ExprKind::kValueCmp:
        return CompileComparison(e, loop, env);
      case ExprKind::kNodeBefore:
      case ExprKind::kNodeAfter:
      case ExprKind::kNodeIs: {
        ScalarFn fn = e.kind == ExprKind::kNodeBefore ? ScalarFn::kNodeBefore
                      : e.kind == ExprKind::kNodeAfter ? ScalarFn::kNodeAfter
                                                       : ScalarFn::kNodeIs;
        MXQ_ASSIGN_OR_RETURN(PlanPtr l, Compile(*e.children[0], loop, env));
        MXQ_ASSIGN_OR_RETURN(PlanPtr r, Compile(*e.children[1], loop, env));
        PlanPtr j = JoinI64(l, "iter", r, "iter", {{"item", "i2"}});
        PlanPtr m = Map2(j, fn, "b", "item", "i2");
        PlanPtr s = SelTrue(m, "b");
        return ConstCol(ExistsRel(s, loop), "pos", Item::Int(1));
      }
      case ExprKind::kArith: {
        MXQ_ASSIGN_OR_RETURN(PlanPtr l, Compile(*e.children[0], loop, env));
        MXQ_ASSIGN_OR_RETURN(PlanPtr r, Compile(*e.children[1], loop, env));
        PlanPtr j = JoinI64(l, "iter", r, "iter", {{"item", "i2"}});
        auto m = Map2(j, ScalarFn::kArith, "v", "item", "i2");
        m->arith = e.arith;
        return ConstCol(Proj(m, {{"iter", "iter"}, {"v", "item"}}), "pos",
                        Item::Int(1));
      }
      case ExprKind::kUnaryMinus: {
        MXQ_ASSIGN_OR_RETURN(PlanPtr c, Compile(*e.children[0], loop, env));
        PlanPtr m = Map1(c, ScalarFn::kNeg, "v", "item");
        return Proj(m, {{"iter", "iter"}, {"pos", "pos"}, {"v", "item"}});
      }
      case ExprKind::kCall:
        return CompileCall(e, loop, env);
      case ExprKind::kElemCtor:
        return CompileElemCtor(e, loop, env);
      case ExprKind::kAttrCtor:
      case ExprKind::kTextCtor:
        return Status(Err("constructor not allowed here"));
    }
    return Status(Err("unhandled expression kind"));
  }

  PlanPtr CompileDocRoot(const std::string& name, LoopCtx* loop) {
    auto d = MakePlan(OpCode::kDocRoot);
    d->doc_name = name;
    return CrossOp(loop->loop, d, {{"pos", "pos"}, {"item", "item"}});
  }

  // ---- paths & predicates ----------------------------------------------------

  Result<PlanPtr> CompilePath(const Expr& e, LoopCtx* loop, Env& env) {
    PlanPtr rel;
    if (e.children[0]) {
      MXQ_ASSIGN_OR_RETURN(rel, Compile(*e.children[0], loop, env));
    } else {
      MXQ_ASSIGN_OR_RETURN(rel, LookupVar(".", loop, env));
    }
    for (const Step& s : e.steps) {
      if (!(s.axis == Axis::kSelf && s.sel == NodeTest::Sel::kAnyNode &&
            s.name.empty())) {
        PlanPtr sorted = SortBy(rel, {"item", "iter"});
        PlanPtr dedup = DistinctBy(sorted, {"item", "iter"});
        auto st = MakePlan(OpCode::kStep);
        st->inputs = {dedup};
        st->axis = s.axis;
        st->sel = s.sel;
        st->name_test = s.name;
        // Step output is sorted (item, iter) with grpord([item], iter):
        // position numbering per iter streams (the §4.1 DENSE_RANK case).
        PlanPtr posd = RowNumOp(st, "pos", {"item"}, "iter");
        rel = Proj(posd, {{"iter", "iter"}, {"pos", "pos"}, {"item", "item"}});
      }
      for (const ExprPtr& pred : s.preds) {
        MXQ_ASSIGN_OR_RETURN(rel, CompilePredicate(rel, *pred, loop, env));
      }
    }
    return rel;
  }

  Result<PlanPtr> CompilePredicate(PlanPtr rel, const Expr& pred,
                                   LoopCtx* loop, Env& env) {
    // Fast paths: [<int>] and [last()].
    if (pred.kind == ExprKind::kIntLit) {
      PlanPtr c = ConstCol(rel, "k", Item::Int(pred.ival));
      PlanPtr m = Map2(c, ScalarFn::kCmp, "b", "pos", "k");
      m->cmp = CmpOp::kEq;
      PlanPtr s = SelTrue(m, "b");
      return RenumberPos(
          Proj(s, {{"iter", "iter"}, {"pos", "pos"}, {"item", "item"}}));
    }
    if (pred.kind == ExprKind::kCall && pred.str == "last" &&
        pred.children.empty()) {
      auto cnt = MakePlan(OpCode::kGroupAggr);
      cnt->inputs = {rel};
      cnt->group = "iter";
      cnt->agg = alg::AggKind::kCount;
      PlanPtr j = JoinI64(rel, "iter", cnt, "iter", {{"agg", "k"}});
      PlanPtr m = Map2(j, ScalarFn::kCmp, "b", "pos", "k");
      m->cmp = CmpOp::kEq;
      PlanPtr s = SelTrue(m, "b");
      return RenumberPos(
          Proj(s, {{"iter", "iter"}, {"pos", "pos"}, {"item", "item"}}));
    }

    // General predicate: every input row becomes one inner iteration.
    PlanPtr sorted = SortBy(rel, {"iter", "pos"});
    PlanPtr map = RowNumOp(sorted, "inner", {}, "");
    LoopCtx inner;
    inner.loop = Proj(map, {{"inner", "iter"}});
    inner.parent = loop;
    inner.link = LoopCtx::Link::kMap;
    inner.map = Proj(map, {{"iter", "outer"}, {"inner", "inner"}});

    Env env2 = env;
    PlanPtr ctx_rel = ConstCol(
        Proj(map, {{"inner", "iter"}, {"item", "item"}}), "pos", Item::Int(1));
    env2["."] = {ctx_rel, &inner};
    PlanPtr pos_rel = ConstCol(
        Proj(Map1(map, ScalarFn::kIdentity, "pv", "pos"),
             {{"inner", "iter"}, {"pv", "item"}}),
        "pos", Item::Int(1));
    env2["#pos"] = {pos_rel, &inner};
    {
      auto cnt = MakePlan(OpCode::kGroupAggr);
      cnt->inputs = {rel};
      cnt->group = "iter";
      cnt->agg = alg::AggKind::kCount;
      PlanPtr lastj =
          JoinI64(Proj(map, {{"iter", "o"}, {"inner", "inner"}}), "o", cnt,
                  "iter", {{"agg", "item"}});
      env2["#last"] = {ConstCol(Proj(lastj, {{"inner", "iter"},
                                             {"item", "item"}}),
                                "pos", Item::Int(1)),
                       &inner};
    }

    MXQ_ASSIGN_OR_RETURN(PlanPtr cond, Compile(pred, &inner, env2));
    // Verdict per inner iteration: numeric first item -> position test,
    // otherwise effective boolean value.
    auto verdict = MakePlan(OpCode::kEbv);
    verdict->inputs = {cond, inner.loop,
                       Proj(map, {{"inner", "inner"}, {"pos", "pos"}})};
    verdict->flag = true;  // positional-aware
    PlanPtr surviving = SelTrue(verdict, "item");
    PlanPtr kept = SemiJoin(map, "inner", surviving, "iter");
    return RenumberPos(
        Proj(kept, {{"iter", "iter"}, {"pos", "pos"}, {"item", "item"}}));
  }

  // ---- comparisons ------------------------------------------------------------

  Result<PlanPtr> CompileComparison(const Expr& e, LoopCtx* loop, Env& env) {
    MXQ_ASSIGN_OR_RETURN(PlanPtr l, Compile(*e.children[0], loop, env));
    MXQ_ASSIGN_OR_RETURN(PlanPtr r, Compile(*e.children[1], loop, env));
    PlanPtr la = Map1(l, ScalarFn::kAtomize, "a", "item");
    PlanPtr ra = Map1(r, ScalarFn::kAtomize, "a", "item");
    PlanPtr lp = Proj(la, {{"iter", "iter"}, {"a", "item"}});
    PlanPtr rp = Proj(ra, {{"iter", "iter"}, {"a", "i2"}});
    PlanPtr j = JoinI64(lp, "iter", rp, "iter", {{"i2", "i2"}});
    auto m = Map2(j, ScalarFn::kCmp, "b", "item", "i2");
    m->cmp = e.cmp;
    PlanPtr s = SelTrue(m, "b");
    return ConstCol(ExistsRel(s, loop), "pos", Item::Int(1));
  }

  // ---- conditionals, quantifiers ----------------------------------------------

  Result<PlanPtr> CompileIf(const Expr& e, LoopCtx* loop, Env& env) {
    MXQ_ASSIGN_OR_RETURN(PlanPtr c, Compile(*e.children[0], loop, env));
    PlanPtr b = Ebv(std::move(c), loop);
    LoopCtx then_loop, else_loop;
    then_loop.loop = Proj(SelTrue(b, "item"), {{"iter", "iter"}});
    then_loop.parent = loop;
    then_loop.link = LoopCtx::Link::kFilter;
    else_loop.loop = Proj(SelTrue(b, "item", /*negate=*/true),
                          {{"iter", "iter"}});
    else_loop.parent = loop;
    else_loop.link = LoopCtx::Link::kFilter;
    MXQ_ASSIGN_OR_RETURN(PlanPtr t, Compile(*e.children[1], &then_loop, env));
    MXQ_ASSIGN_OR_RETURN(PlanPtr f, Compile(*e.children[2], &else_loop, env));
    return UnionOp(std::move(t), std::move(f));
  }

  Result<PlanPtr> CompileQuantified(const Expr& e, LoopCtx* loop, Env& env) {
    // Nested for-loop chain; condition per innermost tuple; then exists /
    // forall per outermost iteration.
    Env env2 = env;
    LoopCtx* cur = loop;
    std::vector<std::unique_ptr<LoopCtx>> owned;
    std::vector<PlanPtr> maps;  // (outer, inner) per level
    for (const Clause& c : e.clauses) {
      MXQ_ASSIGN_OR_RETURN(PlanPtr seq, Compile(*c.expr, cur, env2));
      PlanPtr sorted = SortBy(seq, {"iter", "pos"});
      PlanPtr map = RowNumOp(sorted, "inner", {}, "");
      auto lvl = std::make_unique<LoopCtx>();
      lvl->loop = Proj(map, {{"inner", "iter"}});
      lvl->parent = cur;
      lvl->link = LoopCtx::Link::kMap;
      lvl->map = AssertOrd(Proj(map, {{"iter", "outer"}, {"inner", "inner"}}),
                           {"outer", "inner"});
      env2[c.var] = {ConstCol(Proj(map, {{"inner", "iter"}, {"item", "item"}}),
                              "pos", Item::Int(1)),
                     lvl.get()};
      maps.push_back(lvl->map);
      cur = lvl.get();
      owned.push_back(std::move(lvl));
    }
    MXQ_ASSIGN_OR_RETURN(PlanPtr cond, Compile(*e.ret, cur, env2));
    PlanPtr b = Ebv(std::move(cond), cur);
    // some: survivors exist; every: not (non-survivors exist).
    PlanPtr sel = SelTrue(b, "item", /*negate=*/e.every);
    PlanPtr ids = Proj(sel, {{"iter", "inner"}});
    for (auto it = maps.rbegin(); it != maps.rend(); ++it) {
      PlanPtr j = JoinI64(ids, "inner", *it, "inner", {{"outer", "o"}});
      // Join by probing ids into the map: flip so map is on the left for
      // the dense positional lookup.
      ids = Proj(DistinctBy(SortBy(Proj(j, {{"o", "inner"}}), {"inner"}),
                            {"inner"}),
                 {{"inner", "inner"}});
    }
    PlanPtr found = ExistsRel(
        ConstCol(ConstCol(Proj(ids, {{"inner", "iter"}}), "pos",
                          Item::Int(1)),
                 "item", Item::Bool(true)),
        loop);
    if (e.every) found = Map1(found, ScalarFn::kNot, "n", "item");
    PlanPtr out = e.every
                      ? Proj(found, {{"iter", "iter"}, {"n", "item"}})
                      : Proj(found, {{"iter", "iter"}, {"item", "item"}});
    return ConstCol(out, "pos", Item::Int(1));
  }

  // ---- FLWOR -------------------------------------------------------------------

  struct Unwind {
    PlanPtr map;    // (outer, inner)
    PlanPtr rank;   // optional (iter=inner, rank) for order by
  };

  Result<PlanPtr> CompileFLWOR(const Expr& e, LoopCtx* loop, Env& env) {
    Env env2 = env;
    LoopCtx* cur = loop;
    std::vector<std::unique_ptr<LoopCtx>> owned;
    std::vector<Unwind> unwinds;
    const Expr* where = e.where.get();

    // Join recognition (§4.1/§4.2): applies to the last for-clause when the
    // where clause contains a comparison with independent sides.
    int join_clause = -1;
    const Expr* join_cmp = nullptr;
    if (opts_.join_recognition && where) {
      int last_for = -1;
      for (size_t i = 0; i < e.clauses.size(); ++i)
        if (e.clauses[i].type == Clause::Type::kFor)
          last_for = static_cast<int>(i);
      if (last_for >= 0) {
        const Clause& fc = e.clauses[last_for];
        std::set<std::string> seq_fv;
        CollectFreeVars(*fc.expr, &seq_fv);
        if (seq_fv.empty() && fc.pos_var.empty()) {
          // Find a splittable comparison in the where clause (peeling ands).
          join_cmp = FindSplittableCmp(*where, fc.var, env2, e.clauses,
                                       last_for);
          if (join_cmp) join_clause = last_for;
        }
      }
    }

    for (size_t i = 0; i < e.clauses.size(); ++i) {
      const Clause& c = e.clauses[i];
      if (c.type == Clause::Type::kLet) {
        MXQ_ASSIGN_OR_RETURN(PlanPtr v, Compile(*c.expr, cur, env2));
        env2[c.var] = {v, cur};
        continue;
      }
      if (static_cast<int>(i) == join_clause) {
        MXQ_RETURN_IF_ERROR(CompileJoinClause(c, *join_cmp, &cur, &env2,
                                              &owned, &unwinds));
        continue;
      }
      MXQ_ASSIGN_OR_RETURN(PlanPtr seq, Compile(*c.expr, cur, env2));
      PlanPtr sorted = SortBy(seq, {"iter", "pos"});
      PlanPtr map = RowNumOp(sorted, "inner", {}, "");
      auto lvl = std::make_unique<LoopCtx>();
      lvl->loop = Proj(map, {{"inner", "iter"}});
      lvl->parent = cur;
      lvl->link = LoopCtx::Link::kMap;
      lvl->map = AssertOrd(Proj(map, {{"iter", "outer"}, {"inner", "inner"}}),
                           {"outer", "inner"});
      env2[c.var] = {ConstCol(Proj(map, {{"inner", "iter"}, {"item", "item"}}),
                              "pos", Item::Int(1)),
                     lvl.get()};
      if (!c.pos_var.empty()) {
        env2[c.pos_var] = {
            ConstCol(Proj(Map1(map, ScalarFn::kIdentity, "pv", "pos"),
                          {{"inner", "iter"}, {"pv", "item"}}),
                     "pos", Item::Int(1)),
            lvl.get()};
      }
      unwinds.push_back({lvl->map, nullptr});
      cur = lvl.get();
      owned.push_back(std::move(lvl));
    }

    if (where) {
      PlanPtr cond;
      if (join_cmp) {
        // Residual conjuncts (the consumed comparison became the join).
        MXQ_ASSIGN_OR_RETURN(cond,
                             CompileWhereResidual(*where, join_cmp, cur,
                                                  &env2));
      } else {
        MXQ_ASSIGN_OR_RETURN(PlanPtr w, Compile(*where, cur, env2));
        cond = Ebv(std::move(w), cur);
      }
      if (cond) {
        auto lvl = std::make_unique<LoopCtx>();
        lvl->loop = Proj(SelTrue(cond, "item"), {{"iter", "iter"}});
        lvl->parent = cur;
        lvl->link = LoopCtx::Link::kFilter;
        cur = lvl.get();
        owned.push_back(std::move(lvl));
      }
    }

    // order by: rank per innermost iteration.
    if (!e.order.empty() && !unwinds.empty()) {
      PlanPtr keytab = Proj(cur->loop, {{"iter", "iter"}});
      std::vector<std::string> key_cols;
      std::vector<bool> desc;
      for (size_t k = 0; k < e.order.size(); ++k) {
        MXQ_ASSIGN_OR_RETURN(PlanPtr krel,
                             Compile(*e.order[k].key, cur, env2));
        auto ag = MakePlan(OpCode::kGroupAggr);
        ag->inputs = {krel};
        ag->group = "iter";
        ag->col = "item";
        ag->agg = alg::AggKind::kMin;
        auto fill = MakePlan(OpCode::kFillGroups);
        fill->inputs = {ag, cur->loop};
        fill->group = "iter";
        fill->col = "agg";
        fill->col2 = "iter";
        fill->item = Item();  // empty sorts least
        std::string kc = "k" + std::to_string(k);
        keytab = JoinI64(keytab, "iter", fill, "iter", {{"agg", kc}});
        key_cols.push_back(kc);
        desc.push_back(e.order[k].descending);
      }
      PlanPtr sorted = SortBy(keytab, key_cols, desc);
      PlanPtr ranked = RowNumOp(sorted, "rank", {}, "");
      unwinds.back().rank = Proj(ranked, {{"iter", "iter"}, {"rank", "rank"}});
    }

    MXQ_ASSIGN_OR_RETURN(PlanPtr r, Compile(*e.ret, cur, env2));

    // Back-mapping: unwind the created for-loops innermost-first.
    for (auto it = unwinds.rbegin(); it != unwinds.rend(); ++it) {
      PlanPtr j = JoinI64(it->map, "inner", r, "iter",
                          {{"pos", "pos"}, {"item", "item"}});
      std::vector<std::string> sort_cols;
      if (it->rank) {
        j = JoinI64(j, "inner", it->rank, "iter", {{"rank", "rank"}});
        sort_cols = {"outer", "rank", "inner", "pos"};
      } else {
        sort_cols = {"outer", "inner", "pos"};
      }
      PlanPtr s = SortBy(j, sort_cols);
      PlanPtr rn = RowNumOp(s, "p2", {}, "outer");
      r = Proj(rn, {{"outer", "iter"}, {"p2", "pos"}, {"item", "item"}});
    }
    owned_loops_.insert(owned_loops_.end(),
                        std::make_move_iterator(owned.begin()),
                        std::make_move_iterator(owned.end()));
    return r;
  }

  /// Finds a comparison in `where` (peeling kAnd) whose sides split into
  /// {var-only} vs {outer-only}.
  const Expr* FindSplittableCmp(const Expr& w, const std::string& var,
                                const Env& env,
                                const std::vector<Clause>& clauses,
                                int var_idx) {
    if (w.kind == ExprKind::kAnd) {
      if (const Expr* c = FindSplittableCmp(*w.children[0], var, env, clauses,
                                            var_idx))
        return c;
      return FindSplittableCmp(*w.children[1], var, env, clauses, var_idx);
    }
    if (w.kind != ExprKind::kGeneralCmp && w.kind != ExprKind::kValueCmp)
      return nullptr;
    std::set<std::string> lf, rf;
    CollectFreeVars(*w.children[0], &lf);
    CollectFreeVars(*w.children[1], &rf);
    auto avail = [&](const std::set<std::string>& fv) {
      // All free vars bound in the environment or by earlier clauses.
      for (const std::string& v : fv) {
        if (v == var) return false;
        bool ok = env.count(v) > 0;
        for (int k = 0; k < var_idx && !ok; ++k)
          if (clauses[k].var == v || clauses[k].pos_var == v) ok = true;
        if (!ok) return false;
      }
      return true;
    };
    auto vonly = [&](const std::set<std::string>& fv) {
      for (const std::string& v : fv)
        if (v != var) return false;
      return !fv.empty();
    };
    if ((vonly(lf) && avail(rf)) || (vonly(rf) && avail(lf))) return &w;
    return nullptr;
  }

  /// Compiles the join-recognized for-clause: builds the reduced loop from
  /// the existential theta-join instead of the full cross product.
  Status CompileJoinClause(const Clause& c, const Expr& cmp, LoopCtx** cur,
                           Env* env, std::vector<std::unique_ptr<LoopCtx>>* owned,
                           std::vector<Unwind>* unwinds) {
    // e2 evaluated once against the root loop (it is loop-invariant).
    Env empty_env;
    MXQ_ASSIGN_OR_RETURN(PlanPtr b, Compile(*c.expr, &root_loop_, empty_env));
    PlanPtr bs = SortBy(b, {"iter", "pos"});
    PlanPtr bm = RowNumOp(bs, "sid", {}, "");

    // The $v side of the comparison, compiled against the side loop.
    auto side = std::make_unique<LoopCtx>();
    side->loop = Proj(bm, {{"sid", "iter"}});
    side->parent = &root_loop_;
    side->link = LoopCtx::Link::kMap;
    side->map = Proj(bm, {{"iter", "outer"}, {"sid", "inner"}});
    Env env_v;
    env_v[c.var] = {ConstCol(Proj(bm, {{"sid", "iter"}, {"item", "item"}}),
                             "pos", Item::Int(1)),
                    side.get()};

    std::set<std::string> lf;
    CollectFreeVars(*cmp.children[0], &lf);
    bool v_on_left = lf.count(c.var) > 0;
    const Expr& v_expr = v_on_left ? *cmp.children[0] : *cmp.children[1];
    const Expr& o_expr = v_on_left ? *cmp.children[1] : *cmp.children[0];
    CmpOp op = v_on_left ? FlipCmp(cmp.cmp) : cmp.cmp;  // outer op inner

    MXQ_ASSIGN_OR_RETURN(PlanPtr vrel, Compile(v_expr, side.get(), env_v));
    MXQ_ASSIGN_OR_RETURN(PlanPtr orel, Compile(o_expr, *cur, *env));
    PlanPtr va = Proj(Map1(vrel, ScalarFn::kAtomize, "a", "item"),
                      {{"iter", "sid"}, {"a", "item"}});
    PlanPtr oa = Proj(Map1(orel, ScalarFn::kAtomize, "a", "item"),
                      {{"iter", "iter"}, {"a", "item"}});

    auto ej = MakePlan(OpCode::kExistJoin);
    ej->inputs = {oa, va};
    ej->cmp = op;
    // -> (iter, sid) distinct, sorted (iter, sid).

    PlanPtr newmap = RowNumOp(ej, "inner", {}, "");
    auto lvl = std::make_unique<LoopCtx>();
    lvl->loop = Proj(newmap, {{"inner", "iter"}});
    lvl->parent = *cur;
    lvl->link = LoopCtx::Link::kMap;
    lvl->map = AssertOrd(Proj(newmap, {{"iter", "outer"}, {"inner", "inner"}}),
                         {"outer", "inner"});
    // Bind $v: positional lookup of sid in the materialized sequence.
    PlanPtr vbind = JoinI64(Proj(newmap, {{"inner", "inner"}, {"sid", "sid"}}),
                            "sid",
                            Proj(bm, {{"sid", "sid"}, {"item", "item"}}),
                            "sid", {{"item", "item"}});
    (*env)[c.var] = {ConstCol(Proj(vbind, {{"inner", "iter"},
                                           {"item", "item"}}),
                              "pos", Item::Int(1)),
                     lvl.get()};
    unwinds->push_back({lvl->map, nullptr});
    *cur = lvl.get();
    owned->push_back(std::move(lvl));
    owned_loops_.push_back(std::move(side));
    return Status::OK();
  }

  /// Compiles the where clause minus the consumed comparison; the result
  /// holds nullptr when the whole clause was consumed by the join.
  Result<PlanPtr> CompileWhereResidual(const Expr& w, const Expr* consumed,
                                       LoopCtx* cur, Env* env) {
    if (&w == consumed) return PlanPtr(nullptr);
    if (w.kind == ExprKind::kAnd) {
      MXQ_ASSIGN_OR_RETURN(
          PlanPtr l, CompileWhereResidual(*w.children[0], consumed, cur, env));
      MXQ_ASSIGN_OR_RETURN(
          PlanPtr r, CompileWhereResidual(*w.children[1], consumed, cur, env));
      if (!l) return r;
      if (!r) return l;
      PlanPtr j = JoinI64(l, "iter", r, "iter", {{"item", "i2"}});
      PlanPtr m = Map2(j, ScalarFn::kAndBool, "b", "item", "i2");
      return Proj(m, {{"iter", "iter"}, {"b", "item"}});
    }
    MXQ_ASSIGN_OR_RETURN(PlanPtr rel, Compile(w, cur, *env));
    return Ebv(std::move(rel), cur);
  }

  // ---- function calls -----------------------------------------------------------

  Result<PlanPtr> CompileCall(const Expr& e, LoopCtx* loop, Env& env);

  Result<PlanPtr> CompileAggregate(const Expr& e, LoopCtx* loop, Env& env,
                                   alg::AggKind kind, bool fill_zero) {
    MXQ_ASSIGN_OR_RETURN(PlanPtr rel, Compile(*e.children[0], loop, env));
    auto ag = MakePlan(OpCode::kGroupAggr);
    ag->inputs = {rel};
    ag->group = "iter";
    ag->col = kind == alg::AggKind::kCount ? "" : "item";
    ag->agg = kind;
    PlanPtr out = ag;
    if (fill_zero) {
      auto fill = MakePlan(OpCode::kFillGroups);
      fill->inputs = {ag, loop->loop};
      fill->group = "iter";
      fill->col = "agg";
      fill->col2 = "iter";
      fill->item = Item::Int(0);
      out = fill;
    }
    return ConstCol(Proj(out, {{"iter", "iter"}, {"agg", "item"}}), "pos",
                    Item::Int(1));
  }

  // ---- constructors ----------------------------------------------------------------

  Result<PlanPtr> CompileAVT(const std::vector<CtorContent>& pieces,
                             LoopCtx* loop, Env& env) {
    PlanPtr acc;
    for (const CtorContent& p : pieces) {
      PlanPtr piece;
      if (p.expr) {
        MXQ_ASSIGN_OR_RETURN(PlanPtr rel, Compile(*p.expr, loop, env));
        piece = StringPerIter(rel, loop);  // (iter, item=string)
      } else {
        piece = Proj(ConstCol(Proj(loop->loop, {{"iter", "iter"}}), "item",
                              Item::String(mgr_->strings().Intern(p.text))),
                     {{"iter", "iter"}, {"item", "item"}});
      }
      if (!acc) {
        acc = piece;
      } else {
        PlanPtr j = JoinI64(acc, "iter", piece, "iter", {{"item", "i2"}});
        PlanPtr m = Map2(j, ScalarFn::kConcat, "c", "item", "i2");
        acc = Proj(m, {{"iter", "iter"}, {"c", "item"}});
      }
    }
    if (!acc)
      acc = Proj(ConstCol(Proj(loop->loop, {{"iter", "iter"}}), "item",
                          Item::String(mgr_->strings().Intern(""))),
                 {{"iter", "iter"}, {"item", "item"}});
    return acc;
  }

  Result<PlanPtr> CompileElemCtor(const Expr& e, LoopCtx* loop, Env& env) {
    std::vector<PlanPtr> rels;
    for (const auto& [name, pieces] : e.attrs) {
      MXQ_ASSIGN_OR_RETURN(PlanPtr sv, CompileAVT(pieces, loop, env));
      auto at = MakePlan(OpCode::kConstructAttr);
      at->inputs = {sv};
      at->name_test = name;
      rels.push_back(ConstCol(at, "pos", Item::Int(1)));
    }
    for (const CtorContent& c : e.content) {
      if (c.expr) {
        MXQ_ASSIGN_OR_RETURN(PlanPtr rel, Compile(*c.expr, loop, env));
        rels.push_back(std::move(rel));
      } else {
        rels.push_back(
            RelForItem(Item::String(mgr_->strings().Intern(c.text)), loop));
      }
    }
    PlanPtr content = ConcatRels(std::move(rels), loop);
    auto ctor = MakePlan(OpCode::kConstructElem);
    ctor->inputs = {loop->loop, SortBy(content, {"iter", "pos"})};
    ctor->name_test = e.str;
    return ConstCol(ctor, "pos", Item::Int(1));
  }

  DocumentManager* mgr_;
  CompileOptions opts_;
  LoopCtx root_loop_;
  std::map<std::string, const FunctionDecl*> funcs_;
  std::vector<std::unique_ptr<LoopCtx>> owned_loops_;
  std::vector<ParamInfo> params_;
  int inline_depth_ = 0;

  friend class CompilerCallHelper;
};

// Builtins table kept in a separate method for readability.
Result<PlanPtr> Compiler::CompileCall(const Expr& e, LoopCtx* loop,
                                      Env& env) {
  const std::string& f = e.str;
  auto arity = [&](size_t n) -> Status {
    if (e.children.size() != n)
      return Err("function " + f + " expects " + std::to_string(n) +
                 " argument(s)");
    return Status::OK();
  };
  auto map1 = [&](ScalarFn fn) -> Result<PlanPtr> {
    MXQ_RETURN_IF_ERROR(arity(1));
    MXQ_ASSIGN_OR_RETURN(PlanPtr rel, Compile(*e.children[0], loop, env));
    PlanPtr m = Map1(rel, fn, "v", "item");
    return Proj(m, {{"iter", "iter"}, {"pos", "pos"}, {"v", "item"}});
  };
  auto map2 = [&](ScalarFn fn) -> Result<PlanPtr> {
    MXQ_RETURN_IF_ERROR(arity(2));
    MXQ_ASSIGN_OR_RETURN(PlanPtr a, Compile(*e.children[0], loop, env));
    MXQ_ASSIGN_OR_RETURN(PlanPtr b, Compile(*e.children[1], loop, env));
    PlanPtr j = JoinI64(a, "iter", b, "iter", {{"item", "i2"}});
    PlanPtr m = Map2(j, fn, "v", "item", "i2");
    return ConstCol(Proj(m, {{"iter", "iter"}, {"v", "item"}}), "pos",
                    Item::Int(1));
  };

  if (f == "count") {
    MXQ_RETURN_IF_ERROR(arity(1));
    return CompileAggregate(e, loop, env, alg::AggKind::kCount, true);
  }
  if (f == "sum") {
    MXQ_RETURN_IF_ERROR(arity(1));
    return CompileAggregate(e, loop, env, alg::AggKind::kSum, true);
  }
  if (f == "avg") return CompileAggregate(e, loop, env, alg::AggKind::kAvg,
                                          false);
  if (f == "min") return CompileAggregate(e, loop, env, alg::AggKind::kMin,
                                          false);
  if (f == "max") return CompileAggregate(e, loop, env, alg::AggKind::kMax,
                                          false);
  if (f == "not") {
    MXQ_RETURN_IF_ERROR(arity(1));
    MXQ_ASSIGN_OR_RETURN(PlanPtr rel, Compile(*e.children[0], loop, env));
    PlanPtr b = Ebv(std::move(rel), loop);
    PlanPtr m = Map1(b, ScalarFn::kNot, "v", "item");
    return ConstCol(Proj(m, {{"iter", "iter"}, {"v", "item"}}), "pos",
                    Item::Int(1));
  }
  if (f == "boolean") {
    MXQ_RETURN_IF_ERROR(arity(1));
    MXQ_ASSIGN_OR_RETURN(PlanPtr rel, Compile(*e.children[0], loop, env));
    return ConstCol(Ebv(std::move(rel), loop), "pos", Item::Int(1));
  }
  if (f == "empty" || f == "exists") {
    MXQ_RETURN_IF_ERROR(arity(1));
    MXQ_ASSIGN_OR_RETURN(PlanPtr rel, Compile(*e.children[0], loop, env));
    PlanPtr ex = ExistsRel(std::move(rel), loop);
    if (f == "empty") {
      PlanPtr m = Map1(ex, ScalarFn::kNot, "v", "item");
      return ConstCol(Proj(m, {{"iter", "iter"}, {"v", "item"}}), "pos",
                      Item::Int(1));
    }
    return ConstCol(ex, "pos", Item::Int(1));
  }
  if (f == "true" || f == "false") {
    MXQ_RETURN_IF_ERROR(arity(0));
    return RelForItem(Item::Bool(f == "true"), loop);
  }
  if (f == "contains") return map2(ScalarFn::kContains);
  if (f == "starts-with") return map2(ScalarFn::kStartsWith);
  if (f == "substring") return map2(ScalarFn::kSubstring2);
  if (f == "ft:contains" || f == "ft:score") {
    // Fulltext predicate (docs/fulltext.md): term arguments must be string
    // literals so the query terms are plan constants — the probe resolves
    // them against the per-container index at execution time.
    if (e.children.size() < 2)
      return Status(Err(f + " needs a sequence and at least one term"));
    for (size_t i = 1; i < e.children.size(); ++i)
      if (e.children[i]->kind != ExprKind::kStringLit)
        return Status(Err(f + " term arguments must be string literals"));
    MXQ_ASSIGN_OR_RETURN(PlanPtr rel, Compile(*e.children[0], loop, env));
    PlanPtr n = MakePlan(OpCode::kTextProbe);
    n->inputs = {std::move(rel), loop->loop};
    for (size_t i = 1; i < e.children.size(); ++i)
      n->cols_list.push_back(e.children[i]->str);
    n->flag = (f == "ft:score");
    return ConstCol(std::move(n), "pos", Item::Int(1));
  }
  if (f == "concat") {
    if (e.children.size() < 2) return Status(Err("concat needs >= 2 args"));
    PlanPtr acc;
    for (const ExprPtr& c : e.children) {
      MXQ_ASSIGN_OR_RETURN(PlanPtr rel, Compile(*c, loop, env));
      PlanPtr s = StringPerIter(rel, loop);
      if (!acc) {
        acc = s;
      } else {
        PlanPtr j = JoinI64(acc, "iter", s, "iter", {{"item", "i2"}});
        PlanPtr m = Map2(j, ScalarFn::kConcat, "c", "item", "i2");
        acc = Proj(m, {{"iter", "iter"}, {"c", "item"}});
      }
    }
    return ConstCol(acc, "pos", Item::Int(1));
  }
  if (f == "string") {
    MXQ_RETURN_IF_ERROR(arity(1));
    MXQ_ASSIGN_OR_RETURN(PlanPtr rel, Compile(*e.children[0], loop, env));
    return ConstCol(StringPerIter(rel, loop), "pos", Item::Int(1));
  }
  if (f == "string-join") {
    MXQ_RETURN_IF_ERROR(arity(2));
    if (e.children[1]->kind != ExprKind::kStringLit)
      return Status(Err("string-join separator must be a literal"));
    MXQ_ASSIGN_OR_RETURN(PlanPtr rel, Compile(*e.children[0], loop, env));
    return ConstCol(StringPerIter(rel, loop, e.children[1]->str), "pos",
                    Item::Int(1));
  }
  if (f == "data") return map1(ScalarFn::kAtomize);
  if (f == "number") return map1(ScalarFn::kCastNumber);
  if (f == "round") return map1(ScalarFn::kRound);
  if (f == "floor") return map1(ScalarFn::kFloor);
  if (f == "ceiling") return map1(ScalarFn::kCeiling);
  if (f == "abs") return map1(ScalarFn::kAbs);
  if (f == "string-length") return map1(ScalarFn::kStringLength);
  if (f == "name") return map1(ScalarFn::kNameOf);
  if (f == "local-name") return map1(ScalarFn::kLocalName);
  if (f == "zero-or-one" || f == "exactly-one" || f == "one-or-more" ||
      f == "unordered" || f == "exact") {
    MXQ_RETURN_IF_ERROR(arity(1));
    return Compile(*e.children[0], loop, env);
  }
  if (f == "distinct-values") {
    MXQ_RETURN_IF_ERROR(arity(1));
    MXQ_ASSIGN_OR_RETURN(PlanPtr rel, Compile(*e.children[0], loop, env));
    PlanPtr canon = Map1(Map1(rel, ScalarFn::kAtomize, "a", "item"),
                         ScalarFn::kCanonValue, "c", "a");
    PlanPtr p = Proj(canon, {{"iter", "iter"}, {"pos", "pos"}, {"c", "item"}});
    PlanPtr d = DistinctBy(p, {"iter", "item"});
    return RenumberPos(d);
  }
  if (f == "position") {
    MXQ_RETURN_IF_ERROR(arity(0));
    return LookupVar("#pos", loop, env);
  }
  if (f == "last") {
    MXQ_RETURN_IF_ERROR(arity(0));
    return LookupVar("#last", loop, env);
  }

  // User-defined function: inline the body with parameters let-bound.
  auto it = funcs_.find(f);
  if (it == funcs_.end())
    return Status(Err("unknown function " + f + "()"));
  const FunctionDecl* fd = it->second;
  if (e.children.size() != fd->params.size())
    return Status(Err("wrong arity for " + f + "()"));
  if (++inline_depth_ > opts_.max_inline_depth) {
    --inline_depth_;
    return Status(Err("function inlining depth exceeded (recursion?)"));
  }
  Env fenv;  // UDF bodies see only their parameters
  for (size_t i = 0; i < fd->params.size(); ++i) {
    auto arg = Compile(*e.children[i], loop, env);
    if (!arg.ok()) {
      --inline_depth_;
      return arg.status();
    }
    fenv[fd->params[i]] = {std::move(arg).value(), loop};
  }
  auto body = Compile(*fd->body, loop, fenv);
  --inline_depth_;
  return body;
}

}  // namespace

const char* ParamTypeName(ParamType t) {
  switch (t) {
    case ParamType::kAny: return "item()";
    case ParamType::kInteger: return "xs:integer";
    case ParamType::kDouble: return "xs:double";
    case ParamType::kString: return "xs:string";
    case ParamType::kBoolean: return "xs:boolean";
    case ParamType::kNode: return "node()";
  }
  return "item()";
}

Result<CompiledQuery> XQueryEngine::Compile(const std::string& query,
                                            const CompileOptions& opts) {
  MXQ_ASSIGN_OR_RETURN(Query q, ParseQuery(query));
  Compiler c(mgr_, opts);
  MXQ_ASSIGN_OR_RETURN(PlanPtr root, c.CompileQuery(q));
  CompiledQuery out;
  out.root = std::move(root);
  out.stats = ComputePlanStats(out.root);
  out.params = c.TakeParams();
  return out;
}

}  // namespace xq
}  // namespace mxq
