// Public serving API: a thread-safe XQueryEngine facade plus per-caller
// Session objects.
//
//   DocumentManager mgr;                         // documents + string pool
//   xq::XQueryEngine engine(&mgr);               // shared, thread-safe
//   xq::Session session = engine.CreateSession();// one per caller/thread
//   auto plan = session.Prepare(                 // LRU plan cache
//       "declare variable $y as xs:integer external;"
//       "doc('lib.xml')//book[@year >= $y]/title");
//   session.Bind("y", int64_t{2004});            // typed parameter binding
//   auto result = session.Execute(*plan);        // owns its node space
//
// Concurrency contract (see docs/api.md):
//   * XQueryEngine and DocumentManager are thread-safe; one engine serves
//     any number of threads.
//   * A CompiledQuery / PreparedQuery is immutable — N sessions may execute
//     the same plan concurrently with bit-identical results.
//   * A Session (and an EvalOptions passed to the engine directly) belongs
//     to one caller at a time; create one session per thread.
//   * Each execution owns its results: QueryResult / ResultCursor hold the
//     transient container their constructed nodes live in, so results stay
//     valid until *they* are destroyed, regardless of later executions.
//   * Structural document updates (updates/) still require external
//     exclusion against concurrent queries on the same document.

#ifndef MXQ_XQUERY_ENGINE_H_
#define MXQ_XQUERY_ENGINE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algebra/pipeline.h"
#include "common/exec_context.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/document.h"
#include "xquery/plan.h"

namespace mxq {
namespace xq {

/// Compile-time switches (Figure 13 toggles join recognition here).
struct CompileOptions {
  /// Detect value joins via variable independence (the `indep` property) and
  /// compile them as theta-joins instead of loop-lifted cross products.
  bool join_recognition = true;
  /// Document a bare "/" or "//" path refers to (empty: such paths error).
  std::string context_doc;
  /// Maximum UDF inlining depth (bounds recursion).
  int max_inline_depth = 24;
};

/// How XPath steps execute (Figure 12 varies these per axis family).
enum class StepMode : uint8_t { kLoopLifted, kIterative };

/// Run-time switches. An EvalOptions instance belongs to one execution at a
/// time (stats accumulate into it); sessions carry their own.
struct EvalOptions {
  // Kernel toggles + thread count + stats, seeded from the environment
  // (MXQ_THREADS and the MXQ_* kernel toggles) via the one centralized
  // parser, so the evaluator, benches, and tests agree on defaults.
  alg::ExecFlags alg = alg::ExecFlags::FromEnv();
  StepMode child_mode = StepMode::kLoopLifted;
  StepMode desc_mode = StepMode::kLoopLifted;  // descendant & other axes
  bool nametest_pushdown = false;  // §3.2 candidate lists from name indexes
  bool validate_props = false;     // re-verify all claimed props (tests)

  // ---- resource governance (docs/robustness.md) ---------------------------
  /// Per-execution deadline in milliseconds (0 = use the engine's
  /// GovernanceOptions default; both 0 = no deadline). Expiry surfaces as
  /// kDeadlineExceeded at the next cancellation checkpoint.
  int64_t deadline_ms = 0;
  /// Per-execution memory budget in bytes over the columns the execution
  /// materializes (0 = engine default; both 0 = unlimited). Exceeding it
  /// surfaces as kResourceExhausted at the next checkpoint — never an abort.
  int64_t memory_budget_bytes = 0;
  /// Cancellation scope this execution joins in addition to the engine-wide
  /// one. Session wires its own group here so Session::CancelAll() reaches
  /// every execution launched with the session's options.
  std::shared_ptr<CancelGroup> cancel_group;
  /// ExecuteCursor only: when the plan is a streamable scan shape
  /// (docs/execution.md §6), execute it through the vector pipeline so the
  /// first batch is available before the full result exists and the charged
  /// footprint stays O(ExecFlags::vector_size). `false` forces the
  /// materializing path (the differential tests sweep both). Streamed and
  /// materialized batches are byte-identical; only the ResultCursor's
  /// total_rows()/stats timing differs (docs/api.md).
  bool stream_results = true;
};

/// External-variable bindings by name (each value is an item sequence).
using ParamMap = std::map<std::string, std::vector<Item>>;

/// \brief Exclusive ownership of one execution's transient container:
/// releases it back to the DocumentManager's free pool on destruction.
/// Movable, not copyable — the RAII core shared by QueryResult and
/// ResultCursor.
class TransientLease {
 public:
  TransientLease() = default;
  TransientLease(DocumentManager* mgr, DocumentContainer* transient)
      : mgr_(mgr), transient_(transient) {}
  TransientLease(TransientLease&& o) noexcept
      : mgr_(std::exchange(o.mgr_, nullptr)),
        transient_(std::exchange(o.transient_, nullptr)) {}
  TransientLease& operator=(TransientLease&& o) noexcept {
    if (this != &o) {
      Release();
      mgr_ = std::exchange(o.mgr_, nullptr);
      transient_ = std::exchange(o.transient_, nullptr);
    }
    return *this;
  }
  TransientLease(const TransientLease&) = delete;
  TransientLease& operator=(const TransientLease&) = delete;
  ~TransientLease() { Release(); }

  DocumentManager* manager() const { return mgr_; }
  const DocumentContainer* get() const { return transient_; }
  DocumentContainer* get() { return transient_; }

 private:
  void Release() {
    if (mgr_ && transient_) mgr_->ReleaseTransient(transient_);
    mgr_ = nullptr;
    transient_ = nullptr;
  }

  DocumentManager* mgr_ = nullptr;
  DocumentContainer* transient_ = nullptr;
};

/// \brief The result sequence of one execution, with per-execution
/// statistics and ownership of the constructed-node space.
///
/// Move-only RAII: the transient container that constructed node items
/// reference is held until this result is destroyed, then recycled into the
/// DocumentManager's free pool. Node items of a destroyed result are
/// invalid; everything else (ints, strings, nodes of loaded documents)
/// remains usable.
class QueryResult {
 public:
  std::vector<Item> items;

  /// Staircase-join scan statistics of this execution.
  const ScanStats& scan_stats() const { return scan_; }
  /// Operator kernel statistics of this execution.
  const alg::ExecStats& exec_stats() const { return exec_; }

  /// Container holding nodes constructed by this execution (null when the
  /// result was default-constructed or moved from).
  const DocumentContainer* transient() const { return lease_.get(); }

  /// XML serialization of the sequence.
  std::string Serialize(const DocumentManager& mgr) const;
  std::string Serialize() const;  // uses the owning manager

  /// Drops the result sequence and returns the constructed-node space to
  /// the manager's free pool *now* instead of at destruction. Idempotent.
  /// Items previously copied out that reference constructed nodes become
  /// invalid.
  void Cancel() {
    items.clear();
    lease_ = TransientLease();
  }

 private:
  friend class XQueryEngine;

  TransientLease lease_;
  ScanStats scan_;
  alg::ExecStats exec_;
};

/// Heap-owned execution state of a *streaming* cursor (docs/execution.md
/// §6): the retained governance context, per-execution flags/stats, and the
/// pipeline tail the cursor pulls from. One allocation so the pipeline's
/// internal pointers into this state survive the cursor being moved.
/// Non-movable (ExecContext holds atomics); always behind a unique_ptr.
struct CursorStream {
  ExecContext ectx;        // deadline / cancel scopes / MemAccount, armed at
                           // open, polled by every pull until exhaustion
  alg::ExecFlags flags;    // kernel toggles + per-execution stats (gov ->
                           // &ectx); stats accumulate across pulls
  ScanStats scan;          // staircase scan stats, filled as vectors flow
  std::unique_ptr<alg::VectorSource> src;  // pipeline tail
  TablePtr buffered;       // partially consumed in-flight vector
  size_t buf_row = 0;
  int buf_item = -1;       // item column index of `buffered`
  bool exhausted = false;  // src returned end-of-stream
  Status status;           // sticky first error (cancel/deadline/budget too)

  CursorStream() = default;
  CursorStream(const CursorStream&) = delete;
  CursorStream& operator=(const CursorStream&) = delete;
};

/// \brief Streaming view over one execution's result sequence.
///
/// For streamable scan plans (docs/execution.md §6) the cursor *is* the
/// execution: each Next() pulls vectors from the pipeline under the
/// execution's retained governance context, so the first batch is available
/// before the full result exists and the charged intermediate footprint is
/// bounded by ExecFlags::vector_size. Pipeline-breaker plans (and
/// EvalOptions::stream_results == false) fall back to full materialization
/// at open, bit-identically, and the cursor hands the final relation out in
/// batches as before.
///
/// Contract differences between the two modes (see docs/api.md):
///   * total_rows(): known at open when materialized; for a streaming
///     cursor it reports rows yielded so far and reaches the final count
///     only once done().
///   * status(): a streaming pull that fails (cancellation, deadline,
///     memory budget, I/O) makes Next() return 0 and parks the typed error
///     here; materialized cursors surface such errors at open instead.
///   * stats: complete at open when materialized; accumulate across pulls
///     when streaming.
///
/// Move-only RAII like QueryResult; items yielded by Next() may reference
/// the cursor-owned transient container, so consume a batch before
/// destroying the cursor.
class ResultCursor {
 public:
  static constexpr size_t kDefaultBatch = 1024;

  /// Replaces `*out` with the next batch of up to `max` items; returns the
  /// batch size (0 = exhausted, cancelled, or failed — check status()).
  size_t Next(std::vector<Item>* out, size_t max = kDefaultBatch);

  bool done() const {
    if (stream_) return stream_->exhausted && stream_->buffered == nullptr;
    return row_ >= total_rows();
  }
  /// Materialized: the result relation's row count (known at open).
  /// Streaming: rows yielded so far (== position(); final once done()).
  size_t total_rows() const;
  size_t position() const { return row_; }
  /// True when this cursor executes through the vector pipeline.
  bool streaming() const { return stream_ != nullptr; }

  /// OK, or the typed error a streaming pull stopped on (kCancelled /
  /// kDeadlineExceeded / kResourceExhausted / kNotFound...). Sticky.
  Status status() const { return stream_ ? stream_->status : Status::OK(); }

  const ScanStats& scan_stats() const {
    return stream_ ? stream_->scan : scan_;
  }
  const alg::ExecStats& exec_stats() const {
    return stream_ ? stream_->flags.stats : exec_;
  }

  /// Abandons the remaining batches: stops the pipeline, drops the result
  /// relation and returns the constructed-node space immediately. done()
  /// becomes true. Idempotent.
  void Cancel() {
    stream_.reset();
    table_.reset();
    item_col_ = -1;
    row_ = 0;
    lease_ = TransientLease();
  }

 private:
  friend class XQueryEngine;

  TransientLease lease_;
  TablePtr table_;
  int item_col_ = -1;
  size_t row_ = 0;
  ScanStats scan_;
  alg::ExecStats exec_;
  // Declared after lease_: stream state (and its in-flight vectors) is
  // destroyed before the transient container is released.
  std::unique_ptr<CursorStream> stream_;
};

/// A cached compiled plan, shared between the plan cache and any number of
/// executing sessions.
using PreparedQuery = std::shared_ptr<const CompiledQuery>;

/// Plan-cache counters (monotonic over the engine's lifetime).
struct PlanCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t size = 0;      // entries currently cached
  int64_t capacity = 0;  // configured bound
};

/// \brief Admission-control and default resource budgets for the serving
/// path (docs/robustness.md). Installed via XQueryEngine::set_governance;
/// all limits are off by default so the zero-config engine behaves exactly
/// as before.
struct GovernanceOptions {
  /// Maximum concurrently executing queries (0 = unlimited, no queueing).
  int max_in_flight = 0;
  /// Maximum requests waiting for an execution slot; arrivals beyond this
  /// are shed immediately with kResourceExhausted.
  int max_queue = 16;
  /// Default per-execution deadline in ms (0 = none). EvalOptions::
  /// deadline_ms overrides it per call.
  int64_t default_deadline_ms = 0;
  /// Default per-execution memory budget in bytes (0 = unlimited).
  /// EvalOptions::memory_budget_bytes overrides it per call.
  int64_t default_memory_budget_bytes = 0;
};

/// \brief Bounded retry with exponential backoff + jitter for admission
/// sheds (docs/robustness.md "Retry policy"). Only a *shed* —
/// kResourceExhausted from the admission queue being full — is retried:
/// that failure is transient by construction (a slot frees when any
/// in-flight query finishes). Deterministic failures (memory budget,
/// limits, parse errors) and kCancelled/kDeadlineExceeded are returned
/// immediately, so a retry never masks a real error.
struct RetryPolicy {
  /// Total attempts including the first (1 = no retry).
  int max_attempts = 4;
  /// Backoff before retry k (1-based): initial_backoff_ms * multiplier^(k-1),
  /// capped at max_backoff_ms, then scaled by a uniform random factor in
  /// [1 - jitter, 1] to decorrelate competing retriers.
  int64_t initial_backoff_ms = 2;
  int64_t max_backoff_ms = 50;
  double multiplier = 2.0;
  double jitter = 0.5;
};

/// Admission/outcome counters (monotonic over the engine's lifetime).
/// Every Execute/ExecuteCursor call lands in exactly one of: shed_*,
/// or admitted and then one of the completion counters.
struct GovernanceStats {
  int64_t requests = 0;            // Execute/ExecuteCursor calls seen
  int64_t admitted = 0;            // granted an execution slot
  int64_t shed_queue_full = 0;     // rejected: queue at max_queue
  int64_t shed_deadline = 0;       // deadline expired while queued
  int64_t shed_cancelled = 0;      // cancelled while queued
  int64_t completed_ok = 0;
  int64_t cancelled = 0;           // kCancelled after admission
  int64_t deadline_exceeded = 0;   // kDeadlineExceeded after admission
  int64_t resource_exhausted = 0;  // kResourceExhausted after admission
  int64_t failed_other = 0;        // any other non-OK Status
  int64_t peak_in_flight = 0;
  int64_t peak_queued = 0;
};

class Session;

/// \brief Thread-safe compiler + evaluator facade.
class XQueryEngine {
 public:
  static constexpr size_t kDefaultPlanCacheCapacity = 64;

  explicit XQueryEngine(DocumentManager* mgr,
                        size_t plan_cache_capacity = kDefaultPlanCacheCapacity)
      : mgr_(mgr), cache_capacity_(plan_cache_capacity) {}

  /// Parses and compiles a query (uncached; thread-safe).
  Result<CompiledQuery> Compile(const std::string& query,
                                const CompileOptions& opts = {});

  /// Compiles through the bounded LRU plan cache, keyed by (query text,
  /// CompileOptions). Thread-safe; the returned plan is immutable and may be
  /// executed concurrently by any number of sessions.
  Result<PreparedQuery> Prepare(const std::string& query,
                                const CompileOptions& opts = {})
      MXQ_EXCLUDES(cache_mu_);

  /// Creates a per-caller session (cheap; create one per thread).
  Session CreateSession();

  /// Executes a compiled plan. Thread-safe: each call owns a fresh transient
  /// container and its own statistics, returned inside the QueryResult.
  /// `opts` may be null (defaults); a non-null `opts` must not be shared
  /// with a concurrent Execute. `params` binds external variables by name;
  /// every external variable must be bound with type-conforming items.
  Result<QueryResult> Execute(const CompiledQuery& q, EvalOptions* opts,
                              const ParamMap* params = nullptr);

  /// Like Execute, but returns a streaming cursor over the result relation
  /// instead of materializing the item vector.
  Result<ResultCursor> ExecuteCursor(const CompiledQuery& q, EvalOptions* opts,
                                     const ParamMap* params = nullptr);

  /// Convenience: prepare (cached) + execute + serialize.
  Result<std::string> Run(const std::string& query,
                          const CompileOptions& copts = {},
                          EvalOptions* eopts = nullptr);

  DocumentManager* manager() { return mgr_; }

  PlanCacheStats plan_cache_stats() const MXQ_EXCLUDES(cache_mu_);
  /// Rebounds the plan cache (0 disables caching); evicts LRU-first.
  void set_plan_cache_capacity(size_t capacity) MXQ_EXCLUDES(cache_mu_);

  // ---- resource governance (docs/robustness.md) ---------------------------

  /// Installs admission-control limits and default budgets. Thread-safe;
  /// applies to subsequent Execute/ExecuteCursor calls (and wakes queued
  /// requests so a raised limit admits them immediately).
  void set_governance(const GovernanceOptions& g) MXQ_EXCLUDES(gov_mu_);
  GovernanceOptions governance() const MXQ_EXCLUDES(gov_mu_);
  GovernanceStats governance_stats() const MXQ_EXCLUDES(gov_mu_);

  /// Cancels every in-flight and queued execution on this engine. Each
  /// observes the request at its next checkpoint (bounded by one morsel)
  /// and returns kCancelled; the engine keeps serving new queries.
  void CancelAll();

 private:
  friend class Session;  // WakeAdmissionWaiters after a group cancel

  /// Shared execution core: admission, governance context, parameter
  /// binding, plan evaluation into the given transient container, and the
  /// final relation + statistics.
  Status ExecuteCommon(const CompiledQuery& q, EvalOptions* opts,
                       const ParamMap* params, DocumentContainer* transient,
                       TablePtr* table, ScanStats* scan,
                       alg::ExecStats* exec);
  /// Admitted-phase body of ExecuteCommon (slot held by the caller).
  Status ExecuteAdmitted(const CompiledQuery& q, EvalOptions* opts,
                         const ParamMap* params, DocumentContainer* transient,
                         TablePtr* table, ScanStats* scan,
                         alg::ExecStats* exec, ExecContext* ectx);

  /// Blocks until an execution slot is free (or sheds per GovernanceOptions;
  /// `ectx` supplies the queue-wait deadline and cancellation).
  Status Admit(const ExecContext& ectx) MXQ_EXCLUDES(gov_mu_);
  void ReleaseAdmission() MXQ_EXCLUDES(gov_mu_);
  /// Books the completion Status of an admitted execution.
  void RecordOutcome(const Status& st) MXQ_EXCLUDES(gov_mu_);
  /// Wakes queued admissions so a CancelGroup bump takes effect immediately.
  void WakeAdmissionWaiters();

  DocumentManager* mgr_;

  // Bounded LRU plan cache: list front = most recent; map values point into
  // the list. Guarded by cache_mu_.
  struct CacheEntry {
    std::string key;
    PreparedQuery plan;
  };
  /// Pops LRU entries until the cache fits its bound (cache_mu_ held).
  void EvictOverCapacityLocked() MXQ_REQUIRES(cache_mu_);

  /// True when a queued request may take an execution slot (or should stop
  /// waiting because its context fired). gov_mu_ held.
  bool AdmissibleLocked(const ExecContext& ectx) const
      MXQ_REQUIRES(gov_mu_) {
    return gov_opts_.max_in_flight == 0 ||
           in_flight_ < gov_opts_.max_in_flight || ectx.StopRequested();
  }

  mutable Mutex cache_mu_;
  std::list<CacheEntry> cache_lru_ MXQ_GUARDED_BY(cache_mu_);
  std::unordered_map<std::string, std::list<CacheEntry>::iterator> cache_map_
      MXQ_GUARDED_BY(cache_mu_);
  size_t cache_capacity_ MXQ_GUARDED_BY(cache_mu_);
  int64_t cache_hits_ MXQ_GUARDED_BY(cache_mu_) = 0;
  int64_t cache_misses_ MXQ_GUARDED_BY(cache_mu_) = 0;
  int64_t cache_evictions_ MXQ_GUARDED_BY(cache_mu_) = 0;

  // Resource governance (guarded by gov_mu_). in_flight_/queued_ are the
  // live admission state.
  mutable Mutex gov_mu_;
  CondVar gov_cv_;
  GovernanceOptions gov_opts_ MXQ_GUARDED_BY(gov_mu_);
  GovernanceStats gov_stats_ MXQ_GUARDED_BY(gov_mu_);
  int in_flight_ MXQ_GUARDED_BY(gov_mu_) = 0;
  int queued_ MXQ_GUARDED_BY(gov_mu_) = 0;
  // publication: epoch-based cancellation scope — internally synchronized
  // (one atomic epoch with release bumps / acquire reads), never guarded.
  CancelGroup engine_cancel_group_;
};

/// \brief Per-caller execution context: parameter bindings + eval options.
///
/// Sessions are cheap handles over a shared engine. Each session belongs to
/// one caller at a time; any number of sessions use one engine concurrently.
class Session {
 public:
  explicit Session(XQueryEngine* engine) : engine_(engine) {
    // Every execution launched with this session's options joins the
    // session's cancellation scope (docs/robustness.md).
    opts_.cancel_group = std::make_shared<CancelGroup>();
  }

  XQueryEngine* engine() const { return engine_; }
  DocumentManager* manager() const { return engine_->manager(); }

  /// Compiles through the engine's shared plan cache.
  Result<PreparedQuery> Prepare(const std::string& query,
                                const CompileOptions& opts = {}) {
    return engine_->Prepare(query, opts);
  }

  // ---- external-variable bindings (persist across Execute calls) ----------

  void Bind(const std::string& name, Item value) {
    params_[name] = {value};
  }
  void Bind(const std::string& name, int64_t v) { Bind(name, Item::Int(v)); }
  void Bind(const std::string& name, int v) {
    Bind(name, static_cast<int64_t>(v));
  }
  void Bind(const std::string& name, double v) { Bind(name, Item::Double(v)); }
  void Bind(const std::string& name, bool v) { Bind(name, Item::Bool(v)); }
  void Bind(const std::string& name, const std::string& s) {
    Bind(name, Item::String(manager()->strings().Intern(s)));
  }
  void Bind(const std::string& name, const char* s) {
    Bind(name, std::string(s));
  }
  /// Binds a whole sequence (e.g. nodes selected by an earlier query).
  void BindSequence(const std::string& name, std::vector<Item> items) {
    params_[name] = std::move(items);
  }
  void Unbind(const std::string& name) { params_.erase(name); }
  void ClearBindings() { params_.clear(); }
  const ParamMap& bindings() const { return params_; }

  // ---- execution -----------------------------------------------------------

  Result<QueryResult> Execute(const CompiledQuery& q) {
    return engine_->Execute(q, &opts_, &params_);
  }
  Result<QueryResult> Execute(const PreparedQuery& q) {
    return engine_->Execute(*q, &opts_, &params_);
  }
  Result<ResultCursor> OpenCursor(const CompiledQuery& q) {
    return engine_->ExecuteCursor(q, &opts_, &params_);
  }
  Result<ResultCursor> OpenCursor(const PreparedQuery& q) {
    return engine_->ExecuteCursor(*q, &opts_, &params_);
  }

  /// Execute with bounded retries on admission shed (queue full): retries
  /// convert transient overload into bounded extra latency instead of an
  /// error the caller must handle. Any other failure — including memory-
  /// budget kResourceExhausted, which is deterministic — returns
  /// immediately. Defined in session.cc.
  Result<QueryResult> ExecuteWithRetry(const CompiledQuery& q,
                                       const RetryPolicy& policy = {});
  Result<QueryResult> ExecuteWithRetry(const PreparedQuery& q,
                                       const RetryPolicy& policy = {}) {
    return ExecuteWithRetry(*q, policy);
  }

  /// Convenience: prepare (cached) + execute + serialize.
  Result<std::string> Run(const std::string& query,
                          const CompileOptions& copts = {}) {
    MXQ_ASSIGN_OR_RETURN(PreparedQuery q, Prepare(query, copts));
    MXQ_ASSIGN_OR_RETURN(QueryResult r, Execute(q));
    return r.Serialize(*manager());
  }

  /// Cancels every execution launched from this session, in-flight or
  /// queued (callable from any thread — the one Session member that is).
  /// Each returns kCancelled at its next checkpoint; the session itself
  /// stays usable for subsequent queries.
  void CancelAll() {
    opts_.cancel_group->CancelAll();
    engine_->WakeAdmissionWaiters();
  }

  /// Per-session evaluation options (kernel toggles, thread width, modes).
  EvalOptions& options() { return opts_; }
  const EvalOptions& options() const { return opts_; }

 private:
  // Deliberately unguarded: a Session is a single-caller handle (create one
  // per thread). The sole cross-thread entry point, CancelAll(), touches
  // only the CancelGroup, which is internally synchronized.
  XQueryEngine* engine_;
  EvalOptions opts_;
  ParamMap params_;
};

inline Session XQueryEngine::CreateSession() { return Session(this); }

}  // namespace xq
}  // namespace mxq

#endif  // MXQ_XQUERY_ENGINE_H_
