// Public query API: compile XQuery text to a plan, execute plans, get
// result sequences (with optional serialization via xml/serializer.h).

#ifndef MXQ_XQUERY_ENGINE_H_
#define MXQ_XQUERY_ENGINE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/document.h"
#include "xquery/plan.h"

namespace mxq {
namespace xq {

/// Compile-time switches (Figure 13 toggles join recognition here).
struct CompileOptions {
  /// Detect value joins via variable independence (the `indep` property) and
  /// compile them as theta-joins instead of loop-lifted cross products.
  bool join_recognition = true;
  /// Document a bare "/" or "//" path refers to (empty: such paths error).
  std::string context_doc;
  /// Maximum UDF inlining depth (bounds recursion).
  int max_inline_depth = 24;
};

/// How XPath steps execute (Figure 12 varies these per axis family).
enum class StepMode : uint8_t { kLoopLifted, kIterative };

/// Run-time switches.
struct EvalOptions {
  // Kernel toggles + thread count + stats, seeded from the environment
  // (MXQ_THREADS and the MXQ_* kernel toggles) via the one centralized
  // parser, so the evaluator, benches, and tests agree on defaults.
  alg::ExecFlags alg = alg::ExecFlags::FromEnv();
  StepMode child_mode = StepMode::kLoopLifted;
  StepMode desc_mode = StepMode::kLoopLifted;  // descendant & other axes
  bool nametest_pushdown = false;  // §3.2 candidate lists from name indexes
  bool validate_props = false;     // re-verify all claimed props (tests)
};

/// The result sequence of one execution. Node items may reference the
/// transient container owned by the DocumentManager.
struct QueryResult {
  std::vector<Item> items;
  DocumentContainer* transient = nullptr;

  /// XML serialization of the sequence.
  std::string Serialize(const DocumentManager& mgr) const;
};

/// \brief Compiler + evaluator facade.
class XQueryEngine {
 public:
  explicit XQueryEngine(DocumentManager* mgr) : mgr_(mgr) {}

  /// Parses and compiles a query.
  Result<CompiledQuery> Compile(const std::string& query,
                                const CompileOptions& opts = {});

  /// Executes a compiled plan (re-executable; one transient container per
  /// call).
  Result<QueryResult> Execute(const CompiledQuery& q, EvalOptions* opts);

  /// Convenience: compile + execute + serialize.
  Result<std::string> Run(const std::string& query,
                          const CompileOptions& copts = {},
                          EvalOptions* eopts = nullptr);

  DocumentManager* manager() { return mgr_; }

  /// Scan statistics of the last Execute (staircase join counters).
  const ScanStats& last_scan_stats() const { return scan_; }

 private:
  DocumentManager* mgr_;
  DocumentContainer* transient_ = nullptr;  // cleared & reused per Execute
  ScanStats scan_;
  uint64_t epoch_ = 0;
};

}  // namespace xq
}  // namespace mxq

#endif  // MXQ_XQUERY_ENGINE_H_
