// Plan evaluator: operator-at-a-time, fully materializing (MonetDB model).
//
// Each plan node materializes one table per execution (DAG sharing == the
// paper's re-used intermediate results), memoized in an execution-local map
// so the shared plan stays immutable and N sessions can evaluate the same
// CompiledQuery concurrently. The XQuery-specific operators live here: the
// loop-lifted staircase step (with the Figure-12 iterative fallback and §3.2
// nametest pushdown), the existential theta-join with the §4.2 min/max
// rewrite and sampled choose-plan, effective boolean values, and node
// construction into the execution-owned transient container.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "algebra/radix.h"
#include "common/counting_sort.h"
#include "common/exec_context.h"
#include "common/fault.h"
#include "fulltext/text_probe.h"
#include "staircase/loop_lifted.h"
#include "xml/serializer.h"
#include "xquery/engine.h"
#include "xquery/plan.h"
#include "xquery/stream.h"

namespace mxq {
namespace xq {

namespace {

struct Ctx {
  DocumentManager* mgr;
  EvalOptions* opts;      // step modes / validation toggles (caller-owned)
  alg::ExecFlags* flags;  // per-execution kernel flags + local stats
  DocumentContainer* transient;
  ScanStats* scan;
  // External-variable bindings, one sequence per CompiledQuery::params slot.
  const std::vector<const std::vector<Item>*>* params;
  // Execution-local DAG memoization (one materialization per plan node).
  // This is also what keeps ExecStats::tuples_materialized honest on shared
  // DAG nodes: a node reached through N plan edges evaluates — and counts —
  // exactly once; later edges hit the memo before any counter is touched.
  std::unordered_map<const PlanNode*, TablePtr> memo;
};

Result<TablePtr> Eval(PlanNode* n, Ctx& ctx);
Status VerifyProps(const DocumentManager& mgr, const Table& t);

// Cancellation checkpoint for the evaluator's serial loops
// (docs/robustness.md): one relaxed-atomic poll every 4 Ki rows, same
// cadence as the kernel morsels in algebra/ops.cc.
constexpr size_t kStopMask = 4095;
inline bool StopAt(const alg::ExecFlags& fl, size_t i) {
  return (i & kStopMask) == 0 && fl.stop_requested();
}

Result<TablePtr> EvalIn(const PlanPtr& p, Ctx& ctx) { return Eval(p.get(), ctx); }

// ---------------------------------------------------------------------------
// scalar function dispatch
// ---------------------------------------------------------------------------

Item ApplyFn1(Ctx& ctx, const PlanNode& n, const Item& x) {
  DocumentManager& mgr = *ctx.mgr;
  switch (n.fn) {
    case ScalarFn::kAtomize: return Atomize(mgr, x);
    case ScalarFn::kCastString: return CastString(mgr, x);
    case ScalarFn::kCastNumber: return CastNumber(mgr, x);
    case ScalarFn::kNot: return Item::Bool(!ItemEbv(mgr, x));
    case ScalarFn::kNeg: {
      Item a = Atomize(mgr, x);
      if (a.kind == ItemKind::kInt) return Item::Int(-a.i);
      double d = ToDouble(mgr, a);
      return std::isnan(d) ? Item() : Item::Double(-d);
    }
    case ScalarFn::kStringLength: {
      Item s = CastString(mgr, x);
      return Item::Int(
          static_cast<int64_t>(mgr.strings().Get(s.str_id()).size()));
    }
    case ScalarFn::kRound: {
      double d = ToDouble(mgr, x);
      return std::isnan(d) ? Item() : Item::Double(std::round(d));
    }
    case ScalarFn::kFloor: {
      double d = ToDouble(mgr, x);
      return std::isnan(d) ? Item() : Item::Double(std::floor(d));
    }
    case ScalarFn::kCeiling: {
      double d = ToDouble(mgr, x);
      return std::isnan(d) ? Item() : Item::Double(std::ceil(d));
    }
    case ScalarFn::kAbs: {
      double d = ToDouble(mgr, x);
      return std::isnan(d) ? Item() : Item::Double(std::fabs(d));
    }
    case ScalarFn::kNameOf:
    case ScalarFn::kLocalName: {
      StrId qn = kInvalidStrId;
      if (x.kind == ItemKind::kNode) {
        NodeRef nr = x.node();
        const DocumentContainer& c = *mgr.container(nr.container);
        if (c.KindAt(nr.pre) == NodeKind::kElem)
          qn = static_cast<StrId>(c.RefAt(nr.pre));
      } else if (x.kind == ItemKind::kAttr) {
        AttrRef ar = x.attr();
        qn = mgr.container(ar.container)->AttrQn(ar.row);
      }
      if (qn == kInvalidStrId) return Item::String(mgr.strings().Intern(""));
      std::string name = mgr.strings().Get(qn);
      if (n.fn == ScalarFn::kLocalName) {
        size_t colon = name.rfind(':');
        if (colon != std::string::npos) name = name.substr(colon + 1);
      }
      return Item::String(mgr.strings().Intern(name));
    }
    case ScalarFn::kCanonValue: {
      // distinct-values canonicalization: numeric image if numeric-looking,
      // else the string value.
      Item a = Atomize(mgr, x);
      if (a.is_numeric()) return Item::Double(a.as_double());
      if (a.is_stringlike()) {
        double d = ToDouble(mgr, a);
        if (!std::isnan(d)) return Item::Double(d);
        return Item::String(a.str_id());
      }
      return a;
    }
    case ScalarFn::kIdentity: return x;
    default: return Item();
  }
}

Item ApplyFn2(Ctx& ctx, const PlanNode& n, const Item& x, const Item& y) {
  DocumentManager& mgr = *ctx.mgr;
  switch (n.fn) {
    case ScalarFn::kArith: return Arith(mgr, x, n.arith, y);
    case ScalarFn::kCmp: return Item::Bool(CompareItems(mgr, x, n.cmp, y));
    case ScalarFn::kContains: {
      Item a = CastString(mgr, x), b = CastString(mgr, y);
      return Item::Bool(mgr.strings().Get(a.str_id()).find(
                            mgr.strings().Get(b.str_id())) !=
                        std::string::npos);
    }
    case ScalarFn::kStartsWith: {
      Item a = CastString(mgr, x), b = CastString(mgr, y);
      return Item::Bool(mgr.strings().Get(a.str_id()).rfind(
                            mgr.strings().Get(b.str_id()), 0) == 0);
    }
    case ScalarFn::kConcat: {
      Item a = CastString(mgr, x), b = CastString(mgr, y);
      return Item::String(mgr.strings().Intern(
          mgr.strings().Get(a.str_id()) + mgr.strings().Get(b.str_id())));
    }
    case ScalarFn::kSubstring2: {
      Item a = CastString(mgr, x);
      double start = ToDouble(mgr, y);
      const std::string& s = mgr.strings().Get(a.str_id());
      if (std::isnan(start)) return Item::String(mgr.strings().Intern(""));
      size_t from = start <= 1 ? 0 : static_cast<size_t>(start) - 1;
      return Item::String(
          mgr.strings().Intern(from >= s.size() ? "" : s.substr(from)));
    }
    case ScalarFn::kNodeBefore:
      return Item::Bool(x.is_any_node() && y.is_any_node() && x.i < y.i);
    case ScalarFn::kNodeAfter:
      return Item::Bool(x.is_any_node() && y.is_any_node() && x.i > y.i);
    case ScalarFn::kNodeIs:
      return Item::Bool(x.is_any_node() && y.is_any_node() && x.i == y.i &&
                        x.kind == y.kind);
    case ScalarFn::kAndBool:
      return Item::Bool(ItemEbv(mgr, x) && ItemEbv(mgr, y));
    case ScalarFn::kOrBool:
      return Item::Bool(ItemEbv(mgr, x) || ItemEbv(mgr, y));
    default: return Item();
  }
}

// ---------------------------------------------------------------------------
// the loop-lifted step operator
// ---------------------------------------------------------------------------

Result<TablePtr> EvalStep(PlanNode* n, Ctx& ctx, const TablePtr& in) {
  // The per-container staircase loop lives in RunStepKernel (xquery/stream.h)
  // so the streaming path executes the byte-identical step code; this
  // materializing wrapper only feeds Columns in and builds the Column result.
  const ColumnPtr& iter_col = in->col("iter");
  const ColumnPtr& item_col = in->col("item");
  std::vector<int64_t> out_iter;
  std::vector<Item> out_item;
  RunStepKernel(
      *ctx.mgr, *ctx.opts, *ctx.flags, *n, in->rows(),
      [&](size_t i) { return item_col->GetItem(i); },
      [&](size_t i) { return iter_col->GetI64(i); }, ctx.scan, &out_iter,
      &out_item);
  auto t = Table::Make();
  t->AddColumn("iter", Column::MakeI64(std::move(out_iter)));
  t->AddColumn("item", Column::MakeItem(std::move(out_item)));
  // Document order major, iteration order within nodes (§3).
  t->props().ord = {"item", "iter"};
  t->props().grpord.push_back({{"item"}, "iter"});
  ctx.flags->stats.tuples_materialized += static_cast<int64_t>(t->rows());
  return t;
}

// ---------------------------------------------------------------------------
// effective boolean value / existence
// ---------------------------------------------------------------------------

// Both EBV operators read their inputs through the selection-vector-aware
// accessors (I64At/ItemAt) instead of col(): a lazily filtered rel/loop is
// never materialized here, and the output's iter column *shares* the loop's
// column (selection vector included) instead of copying it — only the bool
// item column is freshly allocated. The loop-sized work that remains is the
// unavoidable one bool per iteration.

Result<TablePtr> EvalEbv(PlanNode* n, Ctx& ctx, const TablePtr& rel,
                         const TablePtr& loop) {
  DocumentManager& mgr = *ctx.mgr;
  struct First {
    int64_t pos;
    Item item;
  };
  std::unordered_map<int64_t, First> first;
  first.reserve(loop->rows());
  const int rel_iter = rel->ColumnIndex("iter");
  const int pos_idx = rel->ColumnIndex("pos");
  const int rel_item = rel->ColumnIndex("item");
  for (size_t r = 0; r < rel->rows(); ++r) {
    int64_t it = rel->I64At(rel_iter, r);
    int64_t p = pos_idx >= 0 ? rel->I64At(pos_idx, r)
                             : static_cast<int64_t>(r);
    auto [f, inserted] =
        first.try_emplace(it, First{p, rel->ItemAt(rel_item, r)});
    if (!inserted && p < f->second.pos) f->second = {p, rel->ItemAt(rel_item, r)};
  }
  // Positional predicate mode: numeric first item tests against the
  // context position delivered by the map input.
  std::unordered_map<int64_t, int64_t> ctxpos;
  if (n->flag && n->inputs.size() > 2) {
    MXQ_ASSIGN_OR_RETURN(TablePtr pm, EvalIn(n->inputs[2], ctx));
    const int inner = pm->ColumnIndex("inner");
    const int pos = pm->ColumnIndex("pos");
    for (size_t r = 0; r < pm->rows(); ++r)
      ctxpos[pm->I64At(inner, r)] = pm->I64At(pos, r);
  }

  std::vector<Item> out_val(loop->rows());
  for (size_t r = 0; r < loop->rows(); ++r) {
    int64_t it = loop->I64At(0, r);
    auto f = first.find(it);
    bool b = false;
    if (f != first.end()) {
      const Item& v = f->second.item;
      if (n->flag && v.is_numeric()) {
        auto cp = ctxpos.find(it);
        b = cp != ctxpos.end() &&
            v.as_double() == static_cast<double>(cp->second);
      } else if (v.is_any_node()) {
        b = true;
      } else {
        b = ItemEbv(mgr, v);
      }
    }
    out_val[r] = Item::Bool(b);
  }
  auto t = Table::Make();
  t->AddColumn("iter", loop->raw_col(0), loop->col_sel(0));
  t->AddColumn("item", Column::MakeItem(std::move(out_val)));
  t->props().dense = loop->props().dense.count(loop->name(0))
                         ? std::set<std::string>{"iter"}
                         : std::set<std::string>{};
  if (loop->props().is_key(loop->name(0))) t->props().key.insert("iter");
  if (loop->props().OrderedBy({loop->name(0)})) t->props().ord = {"iter"};
  return t;
}

TablePtr EvalExists(Ctx& ctx, const TablePtr& rel, const TablePtr& loop) {
  const alg::ExecFlags& fl = *ctx.flags;
  const int rel_iter = rel->ColumnIndex("iter");
  std::vector<Item> out_val(loop->rows());
  if (fl.radix_join) {
    // Membership via the radix-partitioned table; the per-iteration probe
    // scan is pure (Contains + I64At) and fans out over morsels. A flat
    // i64 iter column builds straight from its storage; only lazily
    // selected (or item) columns are copied out first.
    std::vector<int64_t> storage;
    std::span<const int64_t> keys;
    const Column& ic = *rel->raw_col(rel_iter);
    if (!rel->col_sel(rel_iter) && ic.is_i64()) {
      keys = {ic.i64().data(), ic.i64().size()};
    } else {
      storage.reserve(rel->rows());
      for (size_t r = 0; r < rel->rows(); ++r)
        storage.push_back(rel->I64At(rel_iter, r));
      keys = {storage.data(), storage.size()};
    }
    alg::RadixHashTable ht(keys, fl.exec_threads(), fl.gov);
    alg::CountRadixBuild(fl, ht);
    const int chunks = PlanChunks(fl.exec_threads(), loop->rows());
    ParallelChunks(chunks, loop->rows(), [&](int, size_t b, size_t e) {
      for (size_t r = b; r < e; ++r)
        out_val[r] = Item::Bool(ht.Contains(loop->I64At(0, r)));
    });
    if (chunks > 1) fl.stats.par_tasks += chunks;
  } else {
    std::unordered_set<int64_t> present;
    present.reserve(rel->rows());
    for (size_t r = 0; r < rel->rows(); ++r)
      present.insert(rel->I64At(rel_iter, r));
    for (size_t r = 0; r < loop->rows(); ++r)
      out_val[r] = Item::Bool(present.count(loop->I64At(0, r)) > 0);
  }
  auto t = Table::Make();
  t->AddColumn("iter", loop->raw_col(0), loop->col_sel(0));
  t->AddColumn("item", Column::MakeItem(std::move(out_val)));
  if (loop->props().is_key(loop->name(0))) t->props().key.insert("iter");
  if (loop->props().is_dense(loop->name(0))) t->props().dense.insert("iter");
  if (loop->props().OrderedBy({loop->name(0)})) t->props().ord = {"iter"};
  return t;
}

// ---------------------------------------------------------------------------
// existential theta-join (§4.2)
// ---------------------------------------------------------------------------

Result<TablePtr> EvalExistJoin(PlanNode* n, Ctx& ctx, const TablePtr& lhs,
                               const TablePtr& rhs) {
  DocumentManager& mgr = *ctx.mgr;
  alg::ExecStats& stats = ctx.flags->stats;
  const ColumnPtr& li = lhs->col("iter");
  const ColumnPtr& lv = lhs->col("item");
  const ColumnPtr& ri = rhs->col("sid");
  const ColumnPtr& rv = rhs->col("item");

  std::vector<std::pair<int64_t, int64_t>> pairs;  // (iter, sid)

  if (n->cmp == CmpOp::kEq) {
    // Hash join + ordered duplicate elimination (Fig 8a): the δ runs as a
    // per-iter merge because probes arrive clustered by iter. The build
    // side uses the radix-partitioned flat table of algebra/radix.h when
    // the kernel is enabled.
    pairs.reserve(lhs->rows());
    // Dictionary-coded value probe: the compile layer atomizes both join
    // inputs, so with dict_items on their "item" columns are already
    // 8-byte code columns the join reuses in place. Hash and verify are
    // lock-free array reads, so the probe — the serial bottleneck of
    // the XMark join queries until now — fans out across the thread
    // pool. Pre-sort pair order is irrelevant: the (iter, sid) pairs
    // are sorted + deduped below either way, so chunked emission stays
    // bit-identical to the serial probe. Returns false (codes
    // unavailable, e.g. dictionary overflow) → generic probes below.
    bool dict_done = false;
    if (ctx.flags->dict_items) {
      const int lvi = lhs->ColumnIndex("item"), rvi = rhs->ColumnIndex("item");
      dict_done = alg::DictJoinEmitPairs(mgr, *ctx.flags, *lhs,
                                         static_cast<size_t>(lvi), *li, *rhs,
                                         static_cast<size_t>(rvi), *ri,
                                         &pairs);
    }
    if (dict_done) {
      // pairs emitted above
    } else if (ctx.flags->radix_join) {
      ++stats.radix_joins;
      stats.join_key_bytes += static_cast<int64_t>(
          sizeof(Item) * (lhs->rows() + rhs->rows()));
      const int threads = ctx.flags->exec_threads();
      std::vector<uint64_t> rhash(rhs->rows());
      const int hchunks = PlanChunks(threads, rhs->rows());
      ParallelChunks(hchunks, rhs->rows(), [&](int, size_t b, size_t e) {
        const DocumentManager& cmgr = mgr;  // HashItem is read-only
        for (size_t r = b; r < e; ++r)
          rhash[r] = HashItem(cmgr, rv->GetItem(r));
      });
      if (hchunks > 1) stats.par_tasks += hchunks;
      alg::RadixHashTable ht{std::span<const uint64_t>(rhash), threads,
                             ctx.flags->gov};
      alg::CountRadixBuild(*ctx.flags, ht);
      for (size_t l = 0; l < lhs->rows(); ++l) {
        if (StopAt(*ctx.flags, l)) break;
        Item v = lv->GetItem(l);
        ht.ForEach(HashItem(mgr, v), [&](uint32_t r) {
          if (CompareItems(mgr, v, CmpOp::kEq, rv->GetItem(r)))
            pairs.emplace_back(li->GetI64(l), ri->GetI64(r));
        });
      }
    } else {
      ++stats.hash_joins;
      stats.join_key_bytes += static_cast<int64_t>(
          sizeof(Item) * (lhs->rows() + rhs->rows()));
      std::unordered_map<uint64_t, std::vector<size_t>> ht;
      ht.reserve(rhs->rows());
      for (size_t r = 0; r < rhs->rows(); ++r)
        ht[HashItem(mgr, rv->GetItem(r))].push_back(r);
      for (size_t l = 0; l < lhs->rows(); ++l) {
        if (StopAt(*ctx.flags, l)) break;
        Item v = lv->GetItem(l);
        auto it = ht.find(HashItem(mgr, v));
        if (it == ht.end()) continue;
        for (size_t r : it->second)
          if (CompareItems(mgr, v, CmpOp::kEq, rv->GetItem(r)))
            pairs.emplace_back(li->GetI64(l), ri->GetI64(r));
      }
    }
    ++stats.merge_dedups;
    if (ctx.flags->dense_sort) {
      if (SortPairsDense(&pairs, ctx.flags->exec_threads()))
        ++stats.counting_sorts;
    } else {
      std::sort(pairs.begin(), pairs.end());
    }
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  } else if (n->cmp == CmpOp::kNe) {
    // exists l != r. Rare; group-level reasoning keeps it near-linear.
    std::unordered_map<int64_t, std::vector<Item>> L, R;
    for (size_t l = 0; l < lhs->rows(); ++l)
      L[li->GetI64(l)].push_back(lv->GetItem(l));
    for (size_t r = 0; r < rhs->rows(); ++r)
      R[ri->GetI64(r)].push_back(rv->GetItem(r));
    for (auto& [it, ls] : L)
      for (auto& [sid, rs] : R)
        for (const Item& a : ls) {
          bool hit = false;
          for (const Item& b : rs)
            if (CompareItems(mgr, a, CmpOp::kNe, b)) {
              hit = true;
              break;
            }
          if (hit) {
            pairs.emplace_back(it, sid);
            break;
          }
        }
    std::sort(pairs.begin(), pairs.end());
  } else {
    // Ordered comparison: aggregate each group first (Fig 8b) — for
    // exists(l < r) it suffices to compare min(l) with max(r).
    bool lhs_min = n->cmp == CmpOp::kLt || n->cmp == CmpOp::kLe;
    std::unordered_map<int64_t, double> lagg, ragg;
    for (size_t l = 0; l < lhs->rows(); ++l) {
      double v = ToDouble(mgr, lv->GetItem(l));
      if (std::isnan(v)) continue;
      auto [f, ins] = lagg.try_emplace(li->GetI64(l), v);
      if (!ins) f->second = lhs_min ? std::min(f->second, v)
                                    : std::max(f->second, v);
    }
    for (size_t r = 0; r < rhs->rows(); ++r) {
      double v = ToDouble(mgr, rv->GetItem(r));
      if (std::isnan(v)) continue;
      auto [f, ins] = ragg.try_emplace(ri->GetI64(r), v);
      if (!ins) f->second = lhs_min ? std::max(f->second, v)
                                    : std::min(f->second, v);
    }
    std::vector<std::pair<double, int64_t>> lv2(lagg.size()), rv2(ragg.size());
    size_t k = 0;
    for (auto& [it, v] : lagg) lv2[k++] = {v, it};
    k = 0;
    for (auto& [sid, v] : ragg) rv2[k++] = {v, sid};
    std::sort(rv2.begin(), rv2.end());

    auto match_range = [&](double v) -> std::pair<size_t, size_t> {
      // Range of rv2 indices whose aggregate satisfies v cmp r.
      switch (n->cmp) {
        case CmpOp::kLt: {
          auto lo = std::upper_bound(rv2.begin(), rv2.end(),
                                     std::make_pair(v, INT64_MAX));
          return {static_cast<size_t>(lo - rv2.begin()), rv2.size()};
        }
        case CmpOp::kLe: {
          auto lo = std::lower_bound(rv2.begin(), rv2.end(),
                                     std::make_pair(v, INT64_MIN));
          return {static_cast<size_t>(lo - rv2.begin()), rv2.size()};
        }
        case CmpOp::kGt: {
          auto hi = std::lower_bound(rv2.begin(), rv2.end(),
                                     std::make_pair(v, INT64_MIN));
          return {0, static_cast<size_t>(hi - rv2.begin())};
        }
        default: {  // kGe
          auto hi = std::upper_bound(rv2.begin(), rv2.end(),
                                     std::make_pair(v, INT64_MAX));
          return {0, static_cast<size_t>(hi - rv2.begin())};
        }
      }
    };

    // choose-plan (paper §4.2): sample the join hit-rate first.
    double est = 0;
    size_t sample = std::min<size_t>(lv2.size(), 64);
    for (size_t s = 0; s < sample; ++s) {
      auto [lo, hi] = match_range(lv2[s * lv2.size() / (sample ? sample : 1)]
                                      .first);
      est += static_cast<double>(hi - lo);
    }
    double hit_rate =
        sample && !rv2.empty() ? est / (sample * rv2.size()) : 0;

    if (hit_rate > 0.5) {
      // Result construction dominates: nested loop delivers (iter, sid)
      // order directly.
      ++stats.exist_nested_loop;
      std::sort(lv2.begin(), lv2.end(),
                [](const auto& a, const auto& b) { return a.second < b.second; });
      std::vector<std::pair<double, int64_t>> rv_by_sid = rv2;
      std::sort(rv_by_sid.begin(), rv_by_sid.end(),
                [](const auto& a, const auto& b) { return a.second < b.second; });
      for (auto& [v, it] : lv2)
        for (auto& [rvv, sid] : rv_by_sid) {
          bool hit;
          switch (n->cmp) {
            case CmpOp::kLt: hit = v < rvv; break;
            case CmpOp::kLe: hit = v <= rvv; break;
            case CmpOp::kGt: hit = v > rvv; break;
            default: hit = v >= rvv; break;
          }
          if (hit) pairs.emplace_back(it, sid);
        }
    } else {
      // Index-lookup join on the sorted aggregate, refine-sorting sids
      // within each iter.
      ++stats.exist_index_join;
      std::sort(lv2.begin(), lv2.end(),
                [](const auto& a, const auto& b) { return a.second < b.second; });
      std::vector<int64_t> sids;
      for (auto& [v, it] : lv2) {
        auto [lo, hi] = match_range(v);
        sids.clear();
        for (size_t r = lo; r < hi; ++r) sids.push_back(rv2[r].second);
        std::sort(sids.begin(), sids.end());
        ++stats.refine_sorts;
        for (int64_t sid : sids) pairs.emplace_back(it, sid);
      }
    }
  }

  std::vector<int64_t> out_iter(pairs.size()), out_sid(pairs.size());
  for (size_t r = 0; r < pairs.size(); ++r) {
    out_iter[r] = pairs[r].first;
    out_sid[r] = pairs[r].second;
  }
  auto t = Table::Make();
  t->AddColumn("iter", Column::MakeI64(std::move(out_iter)));
  t->AddColumn("sid", Column::MakeI64(std::move(out_sid)));
  t->props().ord = {"iter", "sid"};
  stats.tuples_materialized += static_cast<int64_t>(t->rows());
  return t;
}

// ---------------------------------------------------------------------------
// construction
// ---------------------------------------------------------------------------

Result<TablePtr> EvalConstructElem(PlanNode* n, Ctx& ctx,
                                   const TablePtr& loop,
                                   const TablePtr& content) {
  DocumentManager& mgr = *ctx.mgr;
  DocumentContainer* tr = ctx.transient;
  StrId tag = mgr.strings().Intern(n->name_test);

  const ColumnPtr& lc = loop->col(0);
  const ColumnPtr& ci = content->col("iter");
  const ColumnPtr& cv = content->col("item");

  std::vector<int64_t> out_iter(loop->rows());
  std::vector<Item> out_item(loop->rows());
  size_t c = 0;
  for (size_t r = 0; r < loop->rows(); ++r) {
    // Bail between constructed elements: the transient container stays
    // internally consistent (every appended subtree is complete), and the
    // lease returns the whole container regardless.
    if (StopAt(*ctx.flags, r)) {
      out_iter.resize(r);
      out_item.resize(r);
      break;
    }
    int64_t it = lc->GetI64(r);
    out_iter[r] = it;
    int32_t frag = tr->next_frag();
    int64_t root = tr->AppendSlot(NodeKind::kElem, tag, 0, frag);
    std::string text_run;
    bool have_text = false;
    auto flush_text = [&]() {
      if (!have_text) return;
      tr->AppendSlot(NodeKind::kText, mgr.strings().Intern(text_run), 1,
                     frag);
      text_run.clear();
      have_text = false;
    };
    // Content rows for earlier iters that are not in the loop: skip.
    while (c < content->rows() && ci->GetI64(c) < it) ++c;
    for (; c < content->rows() && ci->GetI64(c) == it; ++c) {
      Item v = cv->GetItem(c);
      switch (v.kind) {
        case ItemKind::kAttr: {
          AttrRef a = v.attr();
          const DocumentContainer& src = *mgr.container(a.container);
          tr->AppendAttr(root, src.AttrQn(a.row), src.AttrValue(a.row));
          break;
        }
        case ItemKind::kNode: {
          flush_text();
          NodeRef nr = v.node();
          const DocumentContainer& src = *mgr.container(nr.container);
          if (src.KindAt(nr.pre) == NodeKind::kDoc) {
            // Inserting a document node inserts its children.
            int64_t end = nr.pre + src.SizeAt(nr.pre);
            for (int64_t p = nr.pre + 1; p <= end;) {
              if (src.IsUnused(p)) {
                p += src.SizeAt(p) + 1;
                continue;
              }
              tr->CopySubtree(src, p, 1, frag);
              p += src.SizeAt(p) + 1;
            }
          } else {
            tr->CopySubtree(src, nr.pre, 1, frag);
          }
          break;
        }
        case ItemKind::kEmpty:
          break;
        default: {
          // Adjacent atomics merge into one text node, space-separated.
          std::string s = AtomicToString(mgr, v);
          if (have_text) text_run += " ";
          text_run += s;
          have_text = true;
          break;
        }
      }
    }
    flush_text();
    tr->SetSize(root, tr->PhysicalSlots() - root - 1);
    out_item[r] = Item::Node(tr->id(), root);
  }
  tr->InvalidateIndexes();
  auto t = Table::Make();
  t->AddColumn("iter", Column::MakeI64(std::move(out_iter)));
  t->AddColumn("item", Column::MakeItem(std::move(out_item)));
  if (loop->props().is_key(loop->name(0))) t->props().key.insert("iter");
  if (loop->props().is_dense(loop->name(0))) t->props().dense.insert("iter");
  if (loop->props().OrderedBy({loop->name(0)})) t->props().ord = {"iter"};
  return t;
}

Result<TablePtr> EvalConstructAttr(PlanNode* n, Ctx& ctx,
                                   const TablePtr& in) {
  DocumentManager& mgr = *ctx.mgr;
  DocumentContainer* tr = ctx.transient;
  StrId qn = mgr.strings().Intern(n->name_test);
  const ColumnPtr& ic = in->col("iter");
  const ColumnPtr& vc = in->col("item");
  std::vector<int64_t> out_iter(in->rows());
  std::vector<Item> out_item(in->rows());
  for (size_t r = 0; r < in->rows(); ++r) {
    out_iter[r] = ic->GetI64(r);
    Item s = CastString(mgr, vc->GetItem(r));
    int64_t row = tr->AppendAttr(/*owner_rid=*/-1, qn, s.str_id());
    out_item[r] = Item::Attr(tr->id(), row);
  }
  auto t = Table::Make();
  t->AddColumn("iter", Column::MakeI64(std::move(out_iter)));
  t->AddColumn("item", Column::MakeItem(std::move(out_item)));
  t->props() = in->props();
  t->props().RestrictTo({"iter"});
  return t;
}

Result<TablePtr> EvalStringJoin(PlanNode* n, Ctx& ctx, const TablePtr& rel,
                                const TablePtr& loop) {
  DocumentManager& mgr = *ctx.mgr;
  const ColumnPtr& ic = rel->col("iter");
  int pos_idx = rel->ColumnIndex("pos");
  const ColumnPtr& vc = rel->col("item");
  std::vector<std::tuple<int64_t, int64_t, size_t>> rows(rel->rows());
  for (size_t r = 0; r < rel->rows(); ++r)
    rows[r] = {ic->GetI64(r),
               pos_idx >= 0 ? rel->col(pos_idx)->GetI64(r)
                            : static_cast<int64_t>(r),
               r};
  std::sort(rows.begin(), rows.end());
  std::unordered_map<int64_t, std::string> joined;
  for (auto& [it, pos, r] : rows) {
    Item s = CastString(mgr, vc->GetItem(r));
    auto [f, inserted] = joined.try_emplace(it, mgr.strings().Get(s.str_id()));
    if (!inserted) {
      f->second += n->sep;
      f->second += mgr.strings().Get(s.str_id());
    }
  }
  const ColumnPtr& lc = loop->col(0);
  std::vector<int64_t> out_iter(loop->rows());
  std::vector<Item> out_val(loop->rows());
  for (size_t r = 0; r < loop->rows(); ++r) {
    out_iter[r] = lc->GetI64(r);
    auto f = joined.find(out_iter[r]);
    out_val[r] = Item::String(
        mgr.strings().Intern(f == joined.end() ? "" : f->second));
  }
  auto t = Table::Make();
  t->AddColumn("iter", Column::MakeI64(std::move(out_iter)));
  t->AddColumn("item", Column::MakeItem(std::move(out_val)));
  if (loop->props().is_key(loop->name(0))) t->props().key.insert("iter");
  if (loop->props().is_dense(loop->name(0))) t->props().dense.insert("iter");
  if (loop->props().OrderedBy({loop->name(0)})) t->props().ord = {"iter"};
  return t;
}

// ---------------------------------------------------------------------------
// dispatcher
// ---------------------------------------------------------------------------

Result<TablePtr> Eval(PlanNode* n, Ctx& ctx) {
  // Execution-local DAG memoization: the shared plan is never written.
  if (auto it = ctx.memo.find(n); it != ctx.memo.end()) return it->second;

  alg::ExecFlags& fl = *ctx.flags;
  DocumentManager& mgr = *ctx.mgr;
  TablePtr out;

  // Per-operator governance checkpoint (docs/robustness.md): cancellation,
  // deadline and budget trips surface here as typed Statuses and unwind
  // through the recursive descent — no operator starts once a stop is
  // requested. The fault point is the harness's coarsest injection site.
  MXQ_FAULT_POINT("eval.op");
  if (fl.gov != nullptr) MXQ_RETURN_IF_ERROR(fl.gov->Check());

  switch (n->op) {
    case OpCode::kLiteral:
      out = n->literal;
      break;
    case OpCode::kDocRoot: {
      auto doc = mgr.GetDocument(n->doc_name);
      if (!doc.ok()) return doc.status();
      auto t = Table::Make();
      t->AddColumn("pos", Column::MakeI64({1}));
      t->AddColumn("item",
                   Column::MakeItem({Item::Node((*doc)->id(), 0)}));
      out = t;
      break;
    }
    case OpCode::kProject: {
      MXQ_ASSIGN_OR_RETURN(TablePtr in, EvalIn(n->inputs[0], ctx));
      out = alg::Project(in, n->keep);
      break;
    }
    case OpCode::kSelectTrue: {
      MXQ_ASSIGN_OR_RETURN(TablePtr in, EvalIn(n->inputs[0], ctx));
      out = alg::SelectTrue(mgr, fl, in, n->col, n->flag);
      break;
    }
    case OpCode::kUnion: {
      MXQ_ASSIGN_OR_RETURN(TablePtr a, EvalIn(n->inputs[0], ctx));
      MXQ_ASSIGN_OR_RETURN(TablePtr b, EvalIn(n->inputs[1], ctx));
      out = alg::DisjointUnion(a, b, n->cols_list);
      break;
    }
    case OpCode::kDistinct: {
      MXQ_ASSIGN_OR_RETURN(TablePtr in, EvalIn(n->inputs[0], ctx));
      out = alg::Distinct(mgr, fl, in, n->cols_list);
      break;
    }
    case OpCode::kSort: {
      MXQ_ASSIGN_OR_RETURN(TablePtr in, EvalIn(n->inputs[0], ctx));
      out = alg::Sort(mgr, fl, in, n->cols_list, n->desc);
      break;
    }
    case OpCode::kRowNum: {
      MXQ_ASSIGN_OR_RETURN(TablePtr in, EvalIn(n->inputs[0], ctx));
      out = alg::RowNum(mgr, fl, in, n->out, n->cols_list, n->group);
      break;
    }
    case OpCode::kEquiJoinI64: {
      MXQ_ASSIGN_OR_RETURN(TablePtr a, EvalIn(n->inputs[0], ctx));
      MXQ_ASSIGN_OR_RETURN(TablePtr b, EvalIn(n->inputs[1], ctx));
      out = alg::EquiJoinI64(fl, a, n->col, b, n->col2, n->keep);
      break;
    }
    case OpCode::kEquiJoinItem: {
      MXQ_ASSIGN_OR_RETURN(TablePtr a, EvalIn(n->inputs[0], ctx));
      MXQ_ASSIGN_OR_RETURN(TablePtr b, EvalIn(n->inputs[1], ctx));
      out = alg::EquiJoinItem(mgr, fl, a, n->col, b, n->col2, n->keep);
      break;
    }
    case OpCode::kSemiJoin: {
      MXQ_ASSIGN_OR_RETURN(TablePtr a, EvalIn(n->inputs[0], ctx));
      MXQ_ASSIGN_OR_RETURN(TablePtr b, EvalIn(n->inputs[1], ctx));
      out = alg::SemiJoinI64(fl, a, n->col, b, n->col2, n->flag);
      break;
    }
    case OpCode::kCross: {
      MXQ_ASSIGN_OR_RETURN(TablePtr a, EvalIn(n->inputs[0], ctx));
      MXQ_ASSIGN_OR_RETURN(TablePtr b, EvalIn(n->inputs[1], ctx));
      out = alg::Cross(a, b, n->keep);
      break;
    }
    case OpCode::kGroupAggr: {
      MXQ_ASSIGN_OR_RETURN(TablePtr in, EvalIn(n->inputs[0], ctx));
      out = alg::GroupAggr(mgr, fl, in, n->group.empty() ? "iter" : n->group,
                           n->col, n->agg);
      break;
    }
    case OpCode::kFillGroups: {
      MXQ_ASSIGN_OR_RETURN(TablePtr a, EvalIn(n->inputs[0], ctx));
      MXQ_ASSIGN_OR_RETURN(TablePtr l, EvalIn(n->inputs[1], ctx));
      out = alg::FillGroups(fl, a, n->group, n->col, l,
                            n->col2.empty() ? "iter" : n->col2, n->item);
      break;
    }
    case OpCode::kMap1: {
      MXQ_ASSIGN_OR_RETURN(TablePtr in, EvalIn(n->inputs[0], ctx));
      if (n->fn == ScalarFn::kAtomize) {
        // Atomization is where dictionary-coded columns are born (8-byte
        // codes instead of 16-byte items when ExecFlags::dict_items is on).
        out = alg::AppendAtomize(mgr, fl, in, n->out, n->col);
        break;
      }
      out = alg::AppendMap(in, n->out, n->col, [&](const Item& x) {
        return ApplyFn1(ctx, *n, x);
      });
      break;
    }
    case OpCode::kMap2: {
      MXQ_ASSIGN_OR_RETURN(TablePtr in, EvalIn(n->inputs[0], ctx));
      out = alg::AppendMap2(in, n->out, n->col, n->col2,
                            [&](const Item& x, const Item& y) {
                              return ApplyFn2(ctx, *n, x, y);
                            });
      break;
    }
    case OpCode::kAppendConst: {
      MXQ_ASSIGN_OR_RETURN(TablePtr in, EvalIn(n->inputs[0], ctx));
      out = alg::AppendConst(in, n->out, n->item);
      break;
    }
    case OpCode::kStep: {
      MXQ_ASSIGN_OR_RETURN(TablePtr in, EvalIn(n->inputs[0], ctx));
      MXQ_ASSIGN_OR_RETURN(out, EvalStep(n, ctx, in));
      break;
    }
    case OpCode::kEbv: {
      MXQ_ASSIGN_OR_RETURN(TablePtr rel, EvalIn(n->inputs[0], ctx));
      MXQ_ASSIGN_OR_RETURN(TablePtr loop, EvalIn(n->inputs[1], ctx));
      MXQ_ASSIGN_OR_RETURN(out, EvalEbv(n, ctx, rel, loop));
      break;
    }
    case OpCode::kExists: {
      MXQ_ASSIGN_OR_RETURN(TablePtr rel, EvalIn(n->inputs[0], ctx));
      MXQ_ASSIGN_OR_RETURN(TablePtr loop, EvalIn(n->inputs[1], ctx));
      out = EvalExists(ctx, rel, loop);
      break;
    }
    case OpCode::kExistJoin: {
      MXQ_ASSIGN_OR_RETURN(TablePtr a, EvalIn(n->inputs[0], ctx));
      MXQ_ASSIGN_OR_RETURN(TablePtr b, EvalIn(n->inputs[1], ctx));
      MXQ_ASSIGN_OR_RETURN(out, EvalExistJoin(n, ctx, a, b));
      break;
    }
    case OpCode::kConstructElem: {
      MXQ_ASSIGN_OR_RETURN(TablePtr loop, EvalIn(n->inputs[0], ctx));
      MXQ_ASSIGN_OR_RETURN(TablePtr content, EvalIn(n->inputs[1], ctx));
      MXQ_ASSIGN_OR_RETURN(out, EvalConstructElem(n, ctx, loop, content));
      break;
    }
    case OpCode::kConstructAttr: {
      MXQ_ASSIGN_OR_RETURN(TablePtr in, EvalIn(n->inputs[0], ctx));
      MXQ_ASSIGN_OR_RETURN(out, EvalConstructAttr(n, ctx, in));
      break;
    }
    case OpCode::kStringJoinAggr: {
      MXQ_ASSIGN_OR_RETURN(TablePtr rel, EvalIn(n->inputs[0], ctx));
      MXQ_ASSIGN_OR_RETURN(TablePtr loop, EvalIn(n->inputs[1], ctx));
      MXQ_ASSIGN_OR_RETURN(out, EvalStringJoin(n, ctx, rel, loop));
      break;
    }
    case OpCode::kAssertProps: {
      MXQ_ASSIGN_OR_RETURN(TablePtr in, EvalIn(n->inputs[0], ctx));
      out = in->ShallowCopy();
      for (const auto& c : n->assert_props.dense) out->props().dense.insert(c);
      for (const auto& c : n->assert_props.key) out->props().key.insert(c);
      if (!n->assert_props.ord.empty()) out->props().ord = n->assert_props.ord;
      for (const auto& g : n->assert_props.grpord)
        out->props().grpord.push_back(g);
      break;
    }
    case OpCode::kTextProbe: {
      MXQ_ASSIGN_OR_RETURN(TablePtr rel, EvalIn(n->inputs[0], ctx));
      MXQ_ASSIGN_OR_RETURN(TablePtr loop, EvalIn(n->inputs[1], ctx));
      MXQ_ASSIGN_OR_RETURN(
          out, alg::TextProbe(mgr, fl, rel, loop, n->cols_list, n->flag));
      break;
    }
    case OpCode::kParam: {
      // External-variable slot: (pos, item) of the sequence bound for this
      // execution. Execute() has already validated presence and item types.
      const std::vector<Item>& vals = *(*ctx.params)[n->param];
      std::vector<int64_t> pos(vals.size());
      for (size_t r = 0; r < vals.size(); ++r)
        pos[r] = static_cast<int64_t>(r) + 1;
      auto t = Table::Make();
      t->AddColumn("pos", Column::MakeI64(std::move(pos)));
      t->AddColumn("item", Column::MakeItem(std::vector<Item>(vals)));
      t->props().dense.insert("pos");
      t->props().key.insert("pos");
      t->props().ord = {"pos"};
      out = t;
      break;
    }
  }
  // Post-operator checkpoint: a kernel that observed a stop request mid-
  // morsel returns a truncated (but well-formed) table; convert that into
  // the typed Status before it can be memoized or validated.
  if (fl.gov != nullptr) MXQ_RETURN_IF_ERROR(fl.gov->Check());
  if (ctx.opts->validate_props) {
    Status vs = VerifyProps(mgr, *out);
    if (!vs.ok())
      return Status::Internal(vs.message() + " (op " +
                              std::to_string(static_cast<int>(n->op)) + ")");
  }
  ctx.memo.emplace(n, out);
  return out;
}

/// Re-verifies every property claimed on a materialized table (the
/// validate_props testing mode): `ord`, `grpord`, `dense`, `key`, `const`
/// must actually hold, or property-driven shortcuts would be unsound.
Status VerifyProps(const DocumentManager& mgr, const Table& t) {
  const TableProps& p = t.props();
  auto cmp_rows = [&](const Column& c, size_t a, size_t b) -> int {
    if (c.is_i64()) {
      int64_t x = c.i64()[a], y = c.i64()[b];
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    return OrderCompare(mgr, c.items()[a], c.items()[b]);
  };
  if (!p.ord.empty()) {
    for (size_t i = 1; i < t.rows(); ++i) {
      for (const std::string& cn : p.ord) {
        int c = cmp_rows(*t.col(cn), i - 1, i);
        if (c < 0) break;
        if (c > 0)
          return Status::Internal("ord(" + cn + ") violated at row " +
                                  std::to_string(i));
      }
    }
  }
  for (const auto& go : p.grpord) {
    std::unordered_map<int64_t, size_t> last;
    const ColumnPtr& g = t.col(go.group);
    for (size_t i = 0; i < t.rows(); ++i) {
      auto [it, fresh] = last.try_emplace(g->GetI64(i), i);
      if (!fresh) {
        for (const std::string& cn : go.cols) {
          int c = cmp_rows(*t.col(cn), it->second, i);
          if (c < 0) break;
          if (c > 0)
            return Status::Internal("grpord violated in group of " +
                                    go.group);
        }
        it->second = i;
      }
    }
  }
  for (const std::string& cn : p.dense) {
    const ColumnPtr& c = t.col(cn);
    for (size_t i = 0; i < t.rows(); ++i)
      if (c->GetI64(i) != static_cast<int64_t>(i) + 1)
        return Status::Internal("dense(" + cn + ") violated");
  }
  for (const std::string& cn : p.key) {
    std::unordered_set<int64_t> seen;
    const ColumnPtr& c = t.col(cn);
    for (size_t i = 0; i < t.rows(); ++i)
      if (!seen.insert(c->GetI64(i)).second)
        return Status::Internal("key(" + cn + ") violated");
  }
  for (const auto& [cn, v] : p.constants) {
    const ColumnPtr& c = t.col(cn);
    for (size_t i = 0; i < t.rows(); ++i) {
      bool ok = c->is_i64() ? (v.kind == ItemKind::kInt && c->GetI64(i) == v.i)
                            : c->GetItem(i) == v;
      if (!ok) return Status::Internal("const(" + cn + ") violated");
    }
  }
  return Status::OK();
}

void CollectNodes(const PlanPtr& n, std::unordered_set<PlanNode*>* seen,
                  std::vector<PlanNode*>* out) {
  if (!n || seen->count(n.get())) return;
  seen->insert(n.get());
  for (const PlanPtr& c : n->inputs) CollectNodes(c, seen, out);
  out->push_back(n.get());
}

}  // namespace

PlanStats ComputePlanStats(const PlanPtr& root) {
  std::unordered_set<PlanNode*> seen;
  std::vector<PlanNode*> nodes;
  CollectNodes(root, &seen, &nodes);
  PlanStats s;
  s.num_ops = static_cast<int>(nodes.size());
  for (PlanNode* n : nodes) {
    switch (n->op) {
      case OpCode::kEquiJoinI64:
      case OpCode::kEquiJoinItem:
      case OpCode::kSemiJoin:
      case OpCode::kCross:
      case OpCode::kExistJoin:
        ++s.num_joins;
        break;
      case OpCode::kStep:
        ++s.num_steps;
        break;
      case OpCode::kSort:
        ++s.num_sorts;
        break;
      default:
        break;
    }
  }
  return s;
}

std::string QueryResult::Serialize(const DocumentManager& mgr) const {
  return SerializeSequence(mgr, items);
}

std::string QueryResult::Serialize() const {
  const DocumentManager* mgr = lease_.manager();
  return mgr ? SerializeSequence(*mgr, items) : std::string();
}

namespace {

/// Dynamic type check of one external-variable binding against its declared
/// item type (cardinality is unconstrained by design).
Status CheckParamType(const ParamInfo& p, const std::vector<Item>& vals) {
  for (const Item& v : vals) {
    bool ok = true;
    switch (p.type) {
      case ParamType::kAny: ok = v.kind != ItemKind::kEmpty; break;
      case ParamType::kInteger: ok = v.kind == ItemKind::kInt; break;
      case ParamType::kDouble: ok = v.is_numeric(); break;
      case ParamType::kString: ok = v.is_stringlike(); break;
      case ParamType::kBoolean: ok = v.kind == ItemKind::kBool; break;
      case ParamType::kNode: ok = v.is_any_node(); break;
    }
    if (!ok)
      return Status::TypeError("value bound for external variable $" +
                               p.name + " does not conform to declared type " +
                               ParamTypeName(p.type));
  }
  return Status::OK();
}

}  // namespace

Status XQueryEngine::ExecuteCommon(const CompiledQuery& q, EvalOptions* opts,
                                   const ParamMap* params,
                                   DocumentContainer* transient,
                                   TablePtr* table, ScanStats* scan,
                                   alg::ExecStats* exec) {
  EvalOptions local_opts;  // defaults when the caller passes none
  if (!opts) opts = &local_opts;

  // Resource governance (docs/robustness.md): build the execution context
  // from per-call overrides over engine defaults, join the engine-wide and
  // session cancel scopes, then pass admission control before any
  // evaluation work starts.
  const GovernanceOptions gov = governance();
  ExecContext ectx;
  const int64_t deadline_ms =
      opts->deadline_ms > 0 ? opts->deadline_ms : gov.default_deadline_ms;
  if (deadline_ms > 0)
    ectx.set_deadline(ExecContext::Clock::now() +
                      std::chrono::milliseconds(deadline_ms));
  const int64_t budget = opts->memory_budget_bytes > 0
                             ? opts->memory_budget_bytes
                             : gov.default_memory_budget_bytes;
  if (budget > 0) ectx.set_memory_budget(budget);
  ectx.Watch(&engine_cancel_group_);
  if (opts->cancel_group) ectx.Watch(opts->cancel_group.get());

  MXQ_RETURN_IF_ERROR(Admit(ectx));  // shed outcomes are booked in Admit
  Status st =
      ExecuteAdmitted(q, opts, params, transient, table, scan, exec, &ectx);
  ReleaseAdmission();
  RecordOutcome(st);
  return st;
}

Status XQueryEngine::ExecuteAdmitted(const CompiledQuery& q, EvalOptions* opts,
                                     const ParamMap* params,
                                     DocumentContainer* transient,
                                     TablePtr* table, ScanStats* scan,
                                     alg::ExecStats* exec, ExecContext* ectx) {
  // Resolve external-variable bindings into plan slots, with type checks.
  std::vector<const std::vector<Item>*> slots(q.params.size());
  for (size_t i = 0; i < q.params.size(); ++i) {
    const ParamInfo& p = q.params[i];
    const std::vector<Item>* vals = nullptr;
    if (params) {
      auto it = params->find(p.name);
      if (it != params->end()) vals = &it->second;
    }
    if (!vals)
      return Status::NotFound("no value bound for external variable $" +
                              p.name);
    MXQ_RETURN_IF_ERROR(CheckParamType(p, *vals));
    slots[i] = vals;
  }

  // Per-execution kernel flags: toggles copied from the caller, statistics
  // collected locally and merged back (so long-lived EvalOptions keep
  // accumulating as before) as well as reported per execution.
  alg::ExecFlags flags = opts->alg;
  flags.stats.Reset();
  flags.gov = ectx;
  scan->Reset();

  // Thread-local context: Column allocations on this thread charge the
  // execution's MemAccount and fault injections target this execution.
  // (Pool worker threads see no thread-local context; they observe stops
  // through flags.gov at morsel boundaries instead.)
  ScopedExecContext scoped(ectx);

  Ctx ctx{mgr_, opts, &flags, transient, scan, &slots, {}};
  MXQ_ASSIGN_OR_RETURN(TablePtr t, Eval(q.root.get(), ctx));
  // Final checkpoint: a stop requested during the last operator must not
  // escape as a truncated-but-OK result.
  MXQ_RETURN_IF_ERROR(ectx->Check());
  flags.stats.peak_mem_bytes = ectx->mem()->peak_bytes();
  *table = std::move(t);
  *exec = flags.stats;
  opts->alg.stats.Add(flags.stats);
  return Status::OK();
}

Result<QueryResult> XQueryEngine::Execute(const CompiledQuery& q,
                                          EvalOptions* opts,
                                          const ParamMap* params) {
  QueryResult res;
  res.lease_ = TransientLease(mgr_, mgr_->AcquireTransient());
  TablePtr t;
  Status st = ExecuteCommon(q, opts, params, res.lease_.get(), &t, &res.scan_,
                            &res.exec_);
  if (!st.ok()) return st;  // res releases the transient container
  const int item = t->ColumnIndex("item");
  res.items.reserve(t->rows());
  for (size_t r = 0; r < t->rows(); ++r)
    res.items.push_back(t->ItemAt(item, r));
  return res;
}

Result<ResultCursor> XQueryEngine::ExecuteCursor(const CompiledQuery& q,
                                                 EvalOptions* opts,
                                                 const ParamMap* params) {
  EvalOptions local_opts;  // defaults when the caller passes none
  if (!opts) opts = &local_opts;

  // Streaming open (docs/execution.md §6): when the plan is the streamable
  // scan shape, arm a retained governance context and hand the cursor the
  // pipeline tail instead of running the plan — the first batch then exists
  // before the full result does, and charged intermediates stay bounded by
  // ExecFlags::vector_size. Admission covers the *open* only, exactly like
  // the materializing path releases its slot before the cursor is returned;
  // pull-time statistics live in the cursor (CursorStream), not in
  // opts->alg.stats or governance_stats (the cursor may outlive both).
  if (opts->stream_results) {
    auto cs = std::make_unique<CursorStream>();
    const GovernanceOptions gov = governance();
    const int64_t deadline_ms =
        opts->deadline_ms > 0 ? opts->deadline_ms : gov.default_deadline_ms;
    if (deadline_ms > 0)
      cs->ectx.set_deadline(ExecContext::Clock::now() +
                            std::chrono::milliseconds(deadline_ms));
    const int64_t budget = opts->memory_budget_bytes > 0
                               ? opts->memory_budget_bytes
                               : gov.default_memory_budget_bytes;
    if (budget > 0) cs->ectx.set_memory_budget(budget);
    cs->ectx.Watch(&engine_cancel_group_);
    if (opts->cancel_group) cs->ectx.Watch(opts->cancel_group.get());
    cs->flags = opts->alg;
    cs->flags.stats.Reset();
    cs->flags.gov = &cs->ectx;
    // The matcher is pure plan-shape inspection — cheap enough to run
    // before admission, so non-streamable plans pay nothing extra.
    cs->src = TryBuildPathStream(mgr_, q, *opts, cs.get());
    if (cs->src != nullptr) {
      MXQ_RETURN_IF_ERROR(Admit(cs->ectx));
      ReleaseAdmission();
      RecordOutcome(Status::OK());
      ResultCursor cur;
      cur.lease_ = TransientLease(mgr_, mgr_->AcquireTransient());
      cur.stream_ = std::move(cs);
      return cur;
    }
  }

  // Pipeline breaker (or streaming disabled): unchanged materializing path.
  ResultCursor cur;
  cur.lease_ = TransientLease(mgr_, mgr_->AcquireTransient());
  TablePtr t;
  Status st = ExecuteCommon(q, opts, params, cur.lease_.get(), &t, &cur.scan_,
                            &cur.exec_);
  if (!st.ok()) return st;
  cur.item_col_ = t->ColumnIndex("item");
  cur.table_ = std::move(t);
  return cur;
}

Result<std::string> XQueryEngine::Run(const std::string& query,
                                      const CompileOptions& copts,
                                      EvalOptions* eopts) {
  MXQ_ASSIGN_OR_RETURN(PreparedQuery q, Prepare(query, copts));
  MXQ_ASSIGN_OR_RETURN(QueryResult r, Execute(*q, eopts));
  return r.Serialize(*mgr_);
}

}  // namespace xq
}  // namespace mxq
