#include "xquery/lexer.h"

#include <cctype>

namespace mxq {
namespace xq {

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.';
}

}  // namespace

void Lexer::SkipWsAndComments() {
  for (;;) {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_])))
      ++pos_;
    // Nested (: ... :) comments.
    if (pos_ + 1 < src_.size() && src_[pos_] == '(' && src_[pos_ + 1] == ':') {
      int depth = 0;
      while (pos_ < src_.size()) {
        if (pos_ + 1 < src_.size() && src_[pos_] == '(' &&
            src_[pos_ + 1] == ':') {
          ++depth;
          pos_ += 2;
        } else if (pos_ + 1 < src_.size() && src_[pos_] == ':' &&
                   src_[pos_ + 1] == ')') {
          --depth;
          pos_ += 2;
          if (depth == 0) break;
        } else {
          ++pos_;
        }
      }
      continue;
    }
    return;
  }
}

Token Lexer::Next() {
  SkipWsAndComments();
  Token t;
  t.begin = pos_;
  if (pos_ >= src_.size()) {
    t.type = TokType::kEnd;
    t.end = pos_;
    return t;
  }
  char c = src_[pos_];
  auto one = [&](TokType ty) {
    t.type = ty;
    t.text = src_.substr(pos_, 1);
    ++pos_;
  };
  auto two = [&](TokType ty) {
    t.type = ty;
    t.text = src_.substr(pos_, 2);
    pos_ += 2;
  };
  char c2 = pos_ + 1 < src_.size() ? src_[pos_ + 1] : '\0';

  if (IsNameStart(c)) {
    size_t start = pos_;
    while (pos_ < src_.size() && IsNameChar(src_[pos_])) ++pos_;
    // QName: one "prefix:local" (but not "a::b" — that's an axis).
    if (pos_ + 1 < src_.size() && src_[pos_] == ':' &&
        src_[pos_ + 1] != ':' && src_[pos_ + 1] != '=' &&
        IsNameStart(src_[pos_ + 1])) {
      ++pos_;
      while (pos_ < src_.size() && IsNameChar(src_[pos_])) ++pos_;
    }
    t.type = TokType::kName;
    t.text = src_.substr(start, pos_ - start);
  } else if (std::isdigit(static_cast<unsigned char>(c)) ||
             (c == '.' && std::isdigit(static_cast<unsigned char>(c2)))) {
    size_t start = pos_;
    bool is_double = false;
    while (pos_ < src_.size() &&
           std::isdigit(static_cast<unsigned char>(src_[pos_])))
      ++pos_;
    if (pos_ < src_.size() && src_[pos_] == '.' && pos_ + 1 < src_.size() &&
        std::isdigit(static_cast<unsigned char>(src_[pos_ + 1]))) {
      is_double = true;
      ++pos_;
      while (pos_ < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[pos_])))
        ++pos_;
    }
    if (pos_ < src_.size() && (src_[pos_] == 'e' || src_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < src_.size() && (src_[pos_] == '+' || src_[pos_] == '-'))
        ++pos_;
      while (pos_ < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[pos_])))
        ++pos_;
    }
    t.type = is_double ? TokType::kDouble : TokType::kInt;
    t.text = src_.substr(start, pos_ - start);
  } else if (c == '"' || c == '\'') {
    char quote = c;
    ++pos_;
    std::string out;
    while (pos_ < src_.size()) {
      if (src_[pos_] == quote) {
        // Doubled quote = escaped quote.
        if (pos_ + 1 < src_.size() && src_[pos_ + 1] == quote) {
          out.push_back(quote);
          pos_ += 2;
          continue;
        }
        ++pos_;
        break;
      }
      // Predefined entity references (XQuery 1.0 §3.1.1): &lt; &gt; &amp;
      // &quot; &apos;. Unknown references pass through verbatim.
      if (src_[pos_] == '&') {
        size_t semi = src_.find(';', pos_);
        if (semi != std::string_view::npos && semi - pos_ <= 5) {
          std::string_view ent = src_.substr(pos_ + 1, semi - pos_ - 1);
          char decoded = 0;
          if (ent == "lt") decoded = '<';
          else if (ent == "gt") decoded = '>';
          else if (ent == "amp") decoded = '&';
          else if (ent == "quot") decoded = '"';
          else if (ent == "apos") decoded = '\'';
          if (decoded) {
            out.push_back(decoded);
            pos_ = semi + 1;
            continue;
          }
        }
      }
      out.push_back(src_[pos_++]);
    }
    t.type = TokType::kString;
    t.text = std::move(out);
  } else {
    switch (c) {
      case '$': one(TokType::kDollar); break;
      case '(': one(TokType::kLParen); break;
      case ')': one(TokType::kRParen); break;
      case '[': one(TokType::kLBracket); break;
      case ']': one(TokType::kRBracket); break;
      case '{': one(TokType::kLBrace); break;
      case '}': one(TokType::kRBrace); break;
      case ',': one(TokType::kComma); break;
      case ';': one(TokType::kSemicolon); break;
      case '@': one(TokType::kAt); break;
      case '+': one(TokType::kPlus); break;
      case '-': one(TokType::kMinus); break;
      case '*': one(TokType::kStar); break;
      case '?': one(TokType::kQuestion); break;
      case '|': one(TokType::kPipe); break;
      case '=': one(TokType::kEq); break;
      case '/': c2 == '/' ? two(TokType::kSlashSlash) : one(TokType::kSlash);
        break;
      case '.': c2 == '.' ? two(TokType::kDotDot) : one(TokType::kDot);
        break;
      case ':':
        if (c2 == ':') two(TokType::kColonColon);
        else if (c2 == '=') two(TokType::kAssign);
        else one(TokType::kEnd);  // stray ':' — parser reports
        break;
      case '!':
        if (c2 == '=') two(TokType::kNe);
        else one(TokType::kEnd);
        break;
      case '<':
        if (c2 == '<') two(TokType::kLtLt);
        else if (c2 == '=') two(TokType::kLe);
        else one(TokType::kLt);
        break;
      case '>':
        if (c2 == '>') two(TokType::kGtGt);
        else if (c2 == '=') two(TokType::kGe);
        else one(TokType::kGt);
        break;
      default:
        one(TokType::kEnd);
    }
  }
  t.end = pos_;
  return t;
}

}  // namespace xq
}  // namespace mxq
