// Tokenizer for the XQuery dialect.
//
// XQuery keywords are contextual, so the lexer only distinguishes token
// shapes (names, numbers, strings, punctuation); the parser interprets name
// tokens by position. Direct element constructors are parsed at the
// character level by the parser, which re-positions the lexer afterwards.

#ifndef MXQ_XQUERY_LEXER_H_
#define MXQ_XQUERY_LEXER_H_

#include <string>
#include <string_view>

namespace mxq {
namespace xq {

enum class TokType : uint8_t {
  kEnd,
  kName,     // NCName or prefixed QName (a:b)
  kInt,
  kDouble,
  kString,   // quoted literal, text = decoded contents
  kDollar,   // $
  kLParen, kRParen, kLBracket, kRBracket, kLBrace, kRBrace,
  kComma, kSemicolon, kSlash, kSlashSlash, kDot, kDotDot, kAt,
  kColonColon, kAssign,              // :: and :=
  kEq, kNe, kLt, kLe, kGt, kGe,      // = != < <= > >=
  kLtLt, kGtGt,                      // << >>
  kPlus, kMinus, kStar, kQuestion, kPipe,
};

struct Token {
  TokType type = TokType::kEnd;
  std::string text;
  size_t begin = 0;  // source offset of the first character
  size_t end = 0;    // offset one past the last character
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  /// Scans the next token from the current position.
  Token Next();

  size_t pos() const { return pos_; }
  void SetPos(size_t p) { pos_ = p; }
  std::string_view source() const { return src_; }

 private:
  void SkipWsAndComments();

  std::string_view src_;
  size_t pos_ = 0;
};

}  // namespace xq
}  // namespace mxq

#endif  // MXQ_XQUERY_LEXER_H_
