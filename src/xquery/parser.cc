#include "xquery/parser.h"

#include <cctype>

#include "xquery/lexer.h"

namespace mxq {
namespace xq {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view src) : lex_(src) { Advance(); }

  Result<Query> ParseModule() {
    Query q;
    // Prolog: version decl, namespace decls, function declarations.
    for (;;) {
      if (IsName("xquery")) {
        // xquery version "1.0";
        while (cur_.type != TokType::kSemicolon &&
               cur_.type != TokType::kEnd)
          Advance();
        MXQ_RETURN_IF_ERROR(Expect(TokType::kSemicolon));
        continue;
      }
      if (IsName("declare")) {
        size_t save = lex_.pos();
        Token saved = cur_;
        Advance();
        if (IsName("function")) {
          Advance();
          FunctionDecl fd;
          if (cur_.type != TokType::kName)
            return Status(Err("expected function name"));
          fd.name = cur_.text;
          Advance();
          MXQ_RETURN_IF_ERROR(Expect(TokType::kLParen));
          while (cur_.type != TokType::kRParen) {
            MXQ_RETURN_IF_ERROR(Expect(TokType::kDollar));
            if (cur_.type != TokType::kName)
              return Status(Err("expected parameter name"));
            fd.params.push_back(cur_.text);
            Advance();
            // Optional "as type" annotations: skip tokens until , or ).
            while (cur_.type != TokType::kComma &&
                   cur_.type != TokType::kRParen &&
                   cur_.type != TokType::kEnd)
              Advance();
            if (cur_.type == TokType::kComma) Advance();
          }
          Advance();  // ')'
          // Optional return type: skip until '{'.
          while (cur_.type != TokType::kLBrace && cur_.type != TokType::kEnd)
            Advance();
          MXQ_RETURN_IF_ERROR(Expect(TokType::kLBrace));
          MXQ_ASSIGN_OR_RETURN(fd.body, ParseExpr());
          MXQ_RETURN_IF_ERROR(Expect(TokType::kRBrace));
          MXQ_RETURN_IF_ERROR(Expect(TokType::kSemicolon));
          q.functions.push_back(std::move(fd));
          continue;
        }
        if (IsName("variable")) {
          Advance();
          VarDecl vd;
          MXQ_RETURN_IF_ERROR(Expect(TokType::kDollar));
          if (cur_.type != TokType::kName)
            return Status(Err("expected variable name"));
          vd.name = cur_.text;
          Advance();
          if (AcceptName("as")) {
            // Sequence type: QName or kind test, optional occurrence
            // indicator. Cardinality indicators are accepted but only the
            // item type is enforced at bind time.
            if (cur_.type != TokType::kName)
              return Status(Err("expected type name after 'as'"));
            vd.type_name = cur_.text;
            Advance();
            if (Accept(TokType::kLParen)) {  // node() / element() / item()
              MXQ_RETURN_IF_ERROR(Expect(TokType::kRParen));
              vd.type_name += "()";
            }
            if (cur_.type == TokType::kQuestion ||
                cur_.type == TokType::kStar || cur_.type == TokType::kPlus)
              Advance();
          }
          if (AcceptName("external")) {
            vd.external = true;
          } else {
            MXQ_RETURN_IF_ERROR(Expect(TokType::kAssign));
            MXQ_ASSIGN_OR_RETURN(vd.init, ParseExprSingle());
          }
          MXQ_RETURN_IF_ERROR(Expect(TokType::kSemicolon));
          q.variables.push_back(std::move(vd));
          continue;
        }
        if (IsName("namespace") || IsName("default") ||
            IsName("boundary-space")) {
          // Skip the declaration up to ';'.
          while (cur_.type != TokType::kSemicolon &&
                 cur_.type != TokType::kEnd)
            Advance();
          MXQ_RETURN_IF_ERROR(Expect(TokType::kSemicolon));
          continue;
        }
        // Not a recognized declaration: rewind, treat as body.
        lex_.SetPos(save);
        cur_ = saved;
      }
      break;
    }
    MXQ_ASSIGN_OR_RETURN(q.body, ParseExpr());
    if (cur_.type != TokType::kEnd)
      return Status(Err("trailing content after query body"));
    return q;
  }

 private:
  // ---- token plumbing ------------------------------------------------------

  void Advance() { cur_ = lex_.Next(); }

  bool IsName(std::string_view s) const {
    return cur_.type == TokType::kName && cur_.text == s;
  }
  bool AcceptName(std::string_view s) {
    if (!IsName(s)) return false;
    Advance();
    return true;
  }
  bool Accept(TokType t) {
    if (cur_.type != t) return false;
    Advance();
    return true;
  }
  Status Expect(TokType t) {
    if (cur_.type != t)
      return Err("unexpected token '" + cur_.text + "'");
    Advance();
    return Status::OK();
  }
  Status Err(const std::string& msg) const {
    return Status::ParseError("XQuery: " + msg + " at offset " +
                              std::to_string(cur_.begin));
  }

  /// Peeks the token after the current one without consuming.
  Token PeekNext() {
    size_t save = lex_.pos();
    Token t = lex_.Next();
    lex_.SetPos(save);
    return t;
  }

  // ---- grammar -------------------------------------------------------------

  Result<ExprPtr> ParseExpr() {  // comma sequence
    MXQ_ASSIGN_OR_RETURN(ExprPtr first, ParseExprSingle());
    if (cur_.type != TokType::kComma) return first;
    auto seq = Expr::Make(ExprKind::kSequence);
    seq->children.push_back(std::move(first));
    while (Accept(TokType::kComma)) {
      MXQ_ASSIGN_OR_RETURN(ExprPtr next, ParseExprSingle());
      seq->children.push_back(std::move(next));
    }
    return seq;
  }

  Result<ExprPtr> ParseExprSingle() {
    if (IsName("for") || IsName("let")) {
      // Distinguish FLWOR from a path starting with element "for"/"let":
      // a binder is always followed by '$'.
      if (PeekNext().type == TokType::kDollar) return ParseFLWOR();
    }
    if ((IsName("some") || IsName("every")) &&
        PeekNext().type == TokType::kDollar)
      return ParseQuantified();
    if (IsName("if") && PeekNext().type == TokType::kLParen)
      return ParseIf();
    return ParseOr();
  }

  Result<ExprPtr> ParseFLWOR() {
    auto e = Expr::Make(ExprKind::kFLWOR);
    while (IsName("for") || IsName("let")) {
      bool is_for = IsName("for");
      if (PeekNext().type != TokType::kDollar) break;
      Advance();
      do {
        Clause c;
        c.type = is_for ? Clause::Type::kFor : Clause::Type::kLet;
        MXQ_RETURN_IF_ERROR(Expect(TokType::kDollar));
        if (cur_.type != TokType::kName)
          return Status(Err("expected variable name"));
        c.var = cur_.text;
        Advance();
        if (is_for && AcceptName("at")) {
          MXQ_RETURN_IF_ERROR(Expect(TokType::kDollar));
          if (cur_.type != TokType::kName)
            return Status(Err("expected positional variable"));
          c.pos_var = cur_.text;
          Advance();
        }
        if (is_for) {
          if (!AcceptName("in")) return Status(Err("expected 'in'"));
        } else {
          MXQ_RETURN_IF_ERROR(Expect(TokType::kAssign));
        }
        MXQ_ASSIGN_OR_RETURN(c.expr, ParseExprSingle());
        e->clauses.push_back(std::move(c));
      } while (Accept(TokType::kComma));
    }
    if (e->clauses.empty()) return Status(Err("expected for/let clause"));
    if (AcceptName("where")) {
      MXQ_ASSIGN_OR_RETURN(e->where, ParseExprSingle());
    }
    if (IsName("order") || IsName("stable")) {
      AcceptName("stable");
      if (!AcceptName("order")) return Status(Err("expected 'order'"));
      if (!AcceptName("by")) return Status(Err("expected 'by'"));
      do {
        OrderSpec spec;
        MXQ_ASSIGN_OR_RETURN(spec.key, ParseExprSingle());
        if (AcceptName("descending"))
          spec.descending = true;
        else
          AcceptName("ascending");
        // "empty least/greatest" collation modifiers: accept & ignore.
        if (AcceptName("empty")) {
          AcceptName("least");
          AcceptName("greatest");
        }
        e->order.push_back(std::move(spec));
      } while (Accept(TokType::kComma));
    }
    if (!AcceptName("return")) return Status(Err("expected 'return'"));
    MXQ_ASSIGN_OR_RETURN(e->ret, ParseExprSingle());
    return ExprPtr(std::move(e));
  }

  Result<ExprPtr> ParseQuantified() {
    auto e = Expr::Make(ExprKind::kQuantified);
    e->every = IsName("every");
    Advance();
    do {
      Clause c;
      c.type = Clause::Type::kFor;
      MXQ_RETURN_IF_ERROR(Expect(TokType::kDollar));
      if (cur_.type != TokType::kName)
        return Status(Err("expected variable name"));
      c.var = cur_.text;
      Advance();
      if (!AcceptName("in")) return Status(Err("expected 'in'"));
      MXQ_ASSIGN_OR_RETURN(c.expr, ParseExprSingle());
      e->clauses.push_back(std::move(c));
    } while (Accept(TokType::kComma));
    if (!AcceptName("satisfies")) return Status(Err("expected 'satisfies'"));
    MXQ_ASSIGN_OR_RETURN(e->ret, ParseExprSingle());
    return ExprPtr(std::move(e));
  }

  Result<ExprPtr> ParseIf() {
    Advance();  // if
    MXQ_RETURN_IF_ERROR(Expect(TokType::kLParen));
    auto e = Expr::Make(ExprKind::kIf);
    MXQ_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
    MXQ_RETURN_IF_ERROR(Expect(TokType::kRParen));
    if (!AcceptName("then")) return Status(Err("expected 'then'"));
    MXQ_ASSIGN_OR_RETURN(ExprPtr then_e, ParseExprSingle());
    if (!AcceptName("else")) return Status(Err("expected 'else'"));
    MXQ_ASSIGN_OR_RETURN(ExprPtr else_e, ParseExprSingle());
    e->children.push_back(std::move(cond));
    e->children.push_back(std::move(then_e));
    e->children.push_back(std::move(else_e));
    return ExprPtr(std::move(e));
  }

  Result<ExprPtr> ParseOr() {
    MXQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (IsName("or")) {
      Advance();
      auto e = Expr::Make(ExprKind::kOr);
      e->children.push_back(std::move(lhs));
      MXQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      e->children.push_back(std::move(rhs));
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    MXQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseComparison());
    while (IsName("and")) {
      Advance();
      auto e = Expr::Make(ExprKind::kAnd);
      e->children.push_back(std::move(lhs));
      MXQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseComparison());
      e->children.push_back(std::move(rhs));
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseComparison() {
    MXQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    ExprKind kind;
    CmpOp op = CmpOp::kEq;
    switch (cur_.type) {
      case TokType::kEq: kind = ExprKind::kGeneralCmp; op = CmpOp::kEq; break;
      case TokType::kNe: kind = ExprKind::kGeneralCmp; op = CmpOp::kNe; break;
      case TokType::kLt: kind = ExprKind::kGeneralCmp; op = CmpOp::kLt; break;
      case TokType::kLe: kind = ExprKind::kGeneralCmp; op = CmpOp::kLe; break;
      case TokType::kGt: kind = ExprKind::kGeneralCmp; op = CmpOp::kGt; break;
      case TokType::kGe: kind = ExprKind::kGeneralCmp; op = CmpOp::kGe; break;
      case TokType::kLtLt: kind = ExprKind::kNodeBefore; break;
      case TokType::kGtGt: kind = ExprKind::kNodeAfter; break;
      case TokType::kName:
        if (cur_.text == "eq") { kind = ExprKind::kValueCmp; op = CmpOp::kEq; }
        else if (cur_.text == "ne") { kind = ExprKind::kValueCmp; op = CmpOp::kNe; }
        else if (cur_.text == "lt") { kind = ExprKind::kValueCmp; op = CmpOp::kLt; }
        else if (cur_.text == "le") { kind = ExprKind::kValueCmp; op = CmpOp::kLe; }
        else if (cur_.text == "gt") { kind = ExprKind::kValueCmp; op = CmpOp::kGt; }
        else if (cur_.text == "ge") { kind = ExprKind::kValueCmp; op = CmpOp::kGe; }
        else if (cur_.text == "is") { kind = ExprKind::kNodeIs; }
        else return lhs;
        break;
      default:
        return lhs;
    }
    Advance();
    auto e = Expr::Make(kind);
    e->cmp = op;
    e->children.push_back(std::move(lhs));
    MXQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    e->children.push_back(std::move(rhs));
    return ExprPtr(std::move(e));
  }

  Result<ExprPtr> ParseAdditive() {
    MXQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    for (;;) {
      ArithOp op;
      if (cur_.type == TokType::kPlus) op = ArithOp::kAdd;
      else if (cur_.type == TokType::kMinus) op = ArithOp::kSub;
      else break;
      Advance();
      auto e = Expr::Make(ExprKind::kArith);
      e->arith = op;
      e->children.push_back(std::move(lhs));
      MXQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      e->children.push_back(std::move(rhs));
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    MXQ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    for (;;) {
      ArithOp op;
      if (cur_.type == TokType::kStar) op = ArithOp::kMul;
      else if (IsName("div")) op = ArithOp::kDiv;
      else if (IsName("idiv")) op = ArithOp::kIDiv;
      else if (IsName("mod")) op = ArithOp::kMod;
      else break;
      Advance();
      auto e = Expr::Make(ExprKind::kArith);
      e->arith = op;
      e->children.push_back(std::move(lhs));
      MXQ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      e->children.push_back(std::move(rhs));
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (Accept(TokType::kMinus)) {
      auto e = Expr::Make(ExprKind::kUnaryMinus);
      MXQ_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
      e->children.push_back(std::move(inner));
      return ExprPtr(std::move(e));
    }
    Accept(TokType::kPlus);
    return ParsePath();
  }

  // ---- paths ----------------------------------------------------------------

  static bool IsKindTestName(const std::string& n) {
    return n == "node" || n == "text" || n == "comment" ||
           n == "processing-instruction";
  }

  Result<ExprPtr> ParsePath() {
    ExprPtr source;
    std::vector<Step> steps;
    if (cur_.type == TokType::kSlash || cur_.type == TokType::kSlashSlash) {
      bool dslash = cur_.type == TokType::kSlashSlash;
      Advance();
      source = Expr::Make(ExprKind::kRoot);
      if (dslash) {
        Step s;
        s.axis = Axis::kDescendantOrSelf;
        s.sel = NodeTest::Sel::kAnyNode;
        steps.push_back(std::move(s));
      } else if (!StartsStep()) {
        // Bare "/": the root itself.
        auto p = Expr::Make(ExprKind::kPath);
        p->children.push_back(std::move(source));
        return ExprPtr(std::move(p));
      }
      MXQ_RETURN_IF_ERROR(ParseRelativeSteps(&steps));
    } else {
      if (!StartsStep()) return ParsePrimaryWithPreds(&steps, &source);
      // Leading axis step: a path from the context item (meaningful inside
      // predicates); source stays null and the compiler binds the context.
      MXQ_RETURN_IF_ERROR(ParseRelativeSteps(&steps));
    }
    auto p = Expr::Make(ExprKind::kPath);
    p->children.push_back(source ? std::move(source) : nullptr);
    p->steps = std::move(steps);
    return ExprPtr(std::move(p));
  }

  /// Does the current token start an axis step (vs a primary expression)?
  bool StartsStep() {
    switch (cur_.type) {
      case TokType::kAt:
      case TokType::kDotDot:
      case TokType::kStar:
        return true;
      case TokType::kName: {
        if (IsKindTestName(cur_.text) && PeekNext().type == TokType::kLParen)
          return true;
        Token next = PeekNext();
        if (next.type == TokType::kLParen) return false;  // function call
        return true;  // name test (possibly axis::)
      }
      default:
        return false;
    }
  }

  Result<ExprPtr> ParsePrimaryWithPreds(std::vector<Step>* steps,
                                        ExprPtr* source) {
    MXQ_ASSIGN_OR_RETURN(*source, ParsePrimary());
    // Predicates on the primary become a self step with predicates.
    if (cur_.type == TokType::kLBracket) {
      Step s;
      s.axis = Axis::kSelf;
      s.sel = NodeTest::Sel::kAnyNode;
      MXQ_RETURN_IF_ERROR(ParsePredicates(&s));
      steps->push_back(std::move(s));
    }
    if (cur_.type != TokType::kSlash && cur_.type != TokType::kSlashSlash) {
      if (steps->empty()) return std::move(*source);
      auto p = Expr::Make(ExprKind::kPath);
      p->children.push_back(std::move(*source));
      p->steps = std::move(*steps);
      return ExprPtr(std::move(p));
    }
    MXQ_RETURN_IF_ERROR(ParseTrailingSteps(steps));
    auto p = Expr::Make(ExprKind::kPath);
    p->children.push_back(std::move(*source));
    p->steps = std::move(*steps);
    return ExprPtr(std::move(p));
  }

  Status ParseTrailingSteps(std::vector<Step>* steps) {
    while (cur_.type == TokType::kSlash ||
           cur_.type == TokType::kSlashSlash) {
      bool dslash = cur_.type == TokType::kSlashSlash;
      Advance();
      if (dslash) {
        Step s;
        s.axis = Axis::kDescendantOrSelf;
        s.sel = NodeTest::Sel::kAnyNode;
        steps->push_back(std::move(s));
      }
      Step s;
      MXQ_RETURN_IF_ERROR(ParseAxisStep(&s));
      steps->push_back(std::move(s));
    }
    return Status::OK();
  }

  Status ParseRelativeSteps(std::vector<Step>* steps) {
    Step s;
    MXQ_RETURN_IF_ERROR(ParseAxisStep(&s));
    steps->push_back(std::move(s));
    return ParseTrailingSteps(steps);
  }

  Status ParseAxisStep(Step* s) {
    if (Accept(TokType::kAt)) {
      s->axis = Axis::kAttribute;
      if (Accept(TokType::kStar)) {
        s->sel = NodeTest::Sel::kAnyAttr;
      } else if (cur_.type == TokType::kName) {
        s->sel = NodeTest::Sel::kNamedAttr;
        s->name = cur_.text;
        Advance();
      } else {
        return Err("expected attribute name after '@'");
      }
      return ParsePredicates(s);
    }
    if (Accept(TokType::kDotDot)) {
      s->axis = Axis::kParent;
      s->sel = NodeTest::Sel::kAnyNode;
      return ParsePredicates(s);
    }
    // Explicit axis?
    s->axis = Axis::kChild;
    if (cur_.type == TokType::kName && PeekNext().type == TokType::kColonColon) {
      const std::string& a = cur_.text;
      if (a == "child") s->axis = Axis::kChild;
      else if (a == "descendant") s->axis = Axis::kDescendant;
      else if (a == "descendant-or-self") s->axis = Axis::kDescendantOrSelf;
      else if (a == "self") s->axis = Axis::kSelf;
      else if (a == "attribute") s->axis = Axis::kAttribute;
      else if (a == "parent") s->axis = Axis::kParent;
      else if (a == "ancestor") s->axis = Axis::kAncestor;
      else if (a == "ancestor-or-self") s->axis = Axis::kAncestorOrSelf;
      else if (a == "following") s->axis = Axis::kFollowing;
      else if (a == "preceding") s->axis = Axis::kPreceding;
      else if (a == "following-sibling") s->axis = Axis::kFollowingSibling;
      else if (a == "preceding-sibling") s->axis = Axis::kPrecedingSibling;
      else return Err("unknown axis '" + a + "'");
      Advance();
      Advance();  // '::'
    }
    // Node test.
    if (Accept(TokType::kStar)) {
      s->sel = s->axis == Axis::kAttribute ? NodeTest::Sel::kAnyAttr
                                           : NodeTest::Sel::kAnyElem;
    } else if (cur_.type == TokType::kName) {
      std::string name = cur_.text;
      if (IsKindTestName(name) && PeekNext().type == TokType::kLParen) {
        Advance();
        Advance();  // '('
        // processing-instruction("target") — target ignored if present.
        if (cur_.type == TokType::kString) Advance();
        MXQ_RETURN_IF_ERROR(Expect(TokType::kRParen));
        if (name == "node") s->sel = NodeTest::Sel::kAnyNode;
        else if (name == "text") s->sel = NodeTest::Sel::kText;
        else if (name == "comment") s->sel = NodeTest::Sel::kComment;
        else s->sel = NodeTest::Sel::kPI;
      } else {
        s->sel = s->axis == Axis::kAttribute ? NodeTest::Sel::kNamedAttr
                                             : NodeTest::Sel::kNamedElem;
        s->name = name;
        Advance();
      }
    } else {
      return Err("expected node test");
    }
    return ParsePredicates(s);
  }

  Status ParsePredicates(Step* s) {
    while (Accept(TokType::kLBracket)) {
      auto r = ParseExpr();
      if (!r.ok()) return r.status();
      s->preds.push_back(std::move(r).value());
      MXQ_RETURN_IF_ERROR(Expect(TokType::kRBracket));
    }
    return Status::OK();
  }

  // ---- primaries -------------------------------------------------------------

  Result<ExprPtr> ParsePrimary() {
    switch (cur_.type) {
      case TokType::kInt: {
        auto e = Expr::Make(ExprKind::kIntLit);
        e->ival = std::stoll(cur_.text);
        Advance();
        return ExprPtr(std::move(e));
      }
      case TokType::kDouble: {
        auto e = Expr::Make(ExprKind::kDoubleLit);
        e->dval = std::stod(cur_.text);
        Advance();
        return ExprPtr(std::move(e));
      }
      case TokType::kString: {
        auto e = Expr::Make(ExprKind::kStringLit);
        e->str = cur_.text;
        Advance();
        return ExprPtr(std::move(e));
      }
      case TokType::kDollar: {
        Advance();
        if (cur_.type != TokType::kName)
          return Status(Err("expected variable name"));
        auto e = Expr::Make(ExprKind::kVarRef);
        e->str = cur_.text;
        Advance();
        return ExprPtr(std::move(e));
      }
      case TokType::kDot: {
        Advance();
        auto e = Expr::Make(ExprKind::kVarRef);
        e->str = ".";
        return ExprPtr(std::move(e));
      }
      case TokType::kLParen: {
        Advance();
        if (Accept(TokType::kRParen)) return Expr::Make(ExprKind::kEmptySeq);
        MXQ_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        MXQ_RETURN_IF_ERROR(Expect(TokType::kRParen));
        return inner;
      }
      case TokType::kLt:
        return ParseDirectConstructor();
      case TokType::kName: {
        if (PeekNext().type == TokType::kLParen) return ParseFunctionCall();
        return Status(Err("unexpected name '" + cur_.text + "'"));
      }
      default:
        return Status(Err("unexpected token '" + cur_.text + "'"));
    }
  }

  Result<ExprPtr> ParseFunctionCall() {
    std::string name = cur_.text;
    Advance();
    MXQ_RETURN_IF_ERROR(Expect(TokType::kLParen));
    std::vector<ExprPtr> args;
    if (cur_.type != TokType::kRParen) {
      do {
        MXQ_ASSIGN_OR_RETURN(ExprPtr a, ParseExprSingle());
        args.push_back(std::move(a));
      } while (Accept(TokType::kComma));
    }
    MXQ_RETURN_IF_ERROR(Expect(TokType::kRParen));
    // Strip the fn: prefix; doc() and document() are special.
    if (name.rfind("fn:", 0) == 0) name = name.substr(3);
    if (name == "doc" || name == "document") {
      if (args.size() != 1 || args[0]->kind != ExprKind::kStringLit)
        return Status(Err("doc() needs one string literal argument"));
      auto e = Expr::Make(ExprKind::kDoc);
      e->str = args[0]->str;
      return ExprPtr(std::move(e));
    }
    auto e = Expr::Make(ExprKind::kCall);
    e->str = name;
    e->children = std::move(args);
    return ExprPtr(std::move(e));
  }

  // ---- direct constructors (character level) ---------------------------------

  Result<ExprPtr> ParseDirectConstructor() {
    // Reposition the raw cursor on the '<' of the current token.
    size_t p = cur_.begin;
    auto r = ParseCtorAt(&p);
    if (!r.ok()) return r.status();
    lex_.SetPos(p);
    Advance();
    return r;
  }

  Status CtorErr(size_t p, const std::string& msg) const {
    return Status::ParseError("XQuery constructor: " + msg + " at offset " +
                              std::to_string(p));
  }

  static void DecodeEntities(std::string_view raw, std::string* out) {
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] == '&') {
        size_t semi = raw.find(';', i);
        if (semi != std::string_view::npos) {
          std::string_view ent = raw.substr(i + 1, semi - i - 1);
          char c = 0;
          if (ent == "lt") c = '<';
          else if (ent == "gt") c = '>';
          else if (ent == "amp") c = '&';
          else if (ent == "quot") c = '"';
          else if (ent == "apos") c = '\'';
          if (c) {
            out->push_back(c);
            i = semi + 1;
            continue;
          }
        }
      }
      out->push_back(raw[i++]);
    }
  }

  /// Parses "{expr}" content starting after the '{' at token level.
  Result<ExprPtr> ParseEmbeddedExpr(size_t* p) {
    lex_.SetPos(*p);
    Advance();
    MXQ_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (cur_.type != TokType::kRBrace)
      return Status(CtorErr(cur_.begin, "expected '}'"));
    *p = cur_.end;
    return e;
  }

  Result<ExprPtr> ParseCtorAt(size_t* pp) {
    std::string_view src = lex_.source();
    size_t p = *pp;
    auto at_end = [&] { return p >= src.size(); };
    auto skip_ws = [&] {
      while (!at_end() && std::isspace(static_cast<unsigned char>(src[p])))
        ++p;
    };
    if (at_end() || src[p] != '<') return Status(CtorErr(p, "expected '<'"));
    ++p;
    size_t name_start = p;
    while (!at_end() && (std::isalnum(static_cast<unsigned char>(src[p])) ||
                         src[p] == '_' || src[p] == '-' || src[p] == ':' ||
                         src[p] == '.'))
      ++p;
    if (p == name_start) return Status(CtorErr(p, "expected tag name"));
    auto e = Expr::Make(ExprKind::kElemCtor);
    e->str = std::string(src.substr(name_start, p - name_start));

    // Attributes.
    for (;;) {
      skip_ws();
      if (at_end()) return Status(CtorErr(p, "unterminated start tag"));
      if (src[p] == '>' || (src[p] == '/' && p + 1 < src.size() &&
                            src[p + 1] == '>'))
        break;
      size_t an = p;
      while (!at_end() && (std::isalnum(static_cast<unsigned char>(src[p])) ||
                           src[p] == '_' || src[p] == '-' || src[p] == ':' ||
                           src[p] == '.'))
        ++p;
      if (p == an) return Status(CtorErr(p, "expected attribute name"));
      std::string aname(src.substr(an, p - an));
      skip_ws();
      if (at_end() || src[p] != '=')
        return Status(CtorErr(p, "expected '='"));
      ++p;
      skip_ws();
      if (at_end() || (src[p] != '"' && src[p] != '\''))
        return Status(CtorErr(p, "expected quoted attribute value"));
      char quote = src[p++];
      // Attribute value template: literal pieces + {expr} pieces.
      std::vector<CtorContent> pieces;
      std::string lit;
      while (!at_end() && src[p] != quote) {
        if (src[p] == '{') {
          if (p + 1 < src.size() && src[p + 1] == '{') {
            lit.push_back('{');
            p += 2;
            continue;
          }
          if (!lit.empty()) {
            CtorContent c;
            DecodeEntities(lit, &c.text);
            pieces.push_back(std::move(c));
            lit.clear();
          }
          ++p;
          MXQ_ASSIGN_OR_RETURN(ExprPtr emb, ParseEmbeddedExpr(&p));
          CtorContent c;
          c.expr = std::move(emb);
          pieces.push_back(std::move(c));
          continue;
        }
        if (src[p] == '}' && p + 1 < src.size() && src[p + 1] == '}') {
          lit.push_back('}');
          p += 2;
          continue;
        }
        lit.push_back(src[p++]);
      }
      if (at_end()) return Status(CtorErr(p, "unterminated attribute value"));
      ++p;  // closing quote
      if (!lit.empty() || pieces.empty()) {
        CtorContent c;
        DecodeEntities(lit, &c.text);
        pieces.push_back(std::move(c));
      }
      e->attrs.emplace_back(std::move(aname), std::move(pieces));
    }

    if (src[p] == '/') {
      p += 2;  // "/>"
      *pp = p;
      return ExprPtr(std::move(e));
    }
    ++p;  // '>'

    // Content: text, {expr}, nested elements, comments.
    std::string lit;
    auto flush_text = [&](bool strip_if_ws) {
      if (lit.empty()) return;
      bool all_ws = true;
      for (char ch : lit)
        if (!std::isspace(static_cast<unsigned char>(ch))) {
          all_ws = false;
          break;
        }
      if (!(all_ws && strip_if_ws)) {
        CtorContent c;
        DecodeEntities(lit, &c.text);
        e->content.push_back(std::move(c));
      }
      lit.clear();
    };
    for (;;) {
      if (at_end()) return Status(CtorErr(p, "unterminated element content"));
      char ch = src[p];
      if (ch == '<') {
        flush_text(true);
        if (p + 1 < src.size() && src[p + 1] == '/') {
          p += 2;
          size_t cn = p;
          while (!at_end() && src[p] != '>') ++p;
          std::string_view close = src.substr(cn, p - cn);
          // Trim trailing spaces in the close tag.
          while (!close.empty() && std::isspace(static_cast<unsigned char>(
                                       close.back())))
            close.remove_suffix(1);
          if (close != e->str)
            return Status(
                CtorErr(p, "mismatched </" + std::string(close) + ">"));
          ++p;
          *pp = p;
          return ExprPtr(std::move(e));
        }
        if (src.substr(p, 4) == "<!--") {
          size_t end = src.find("-->", p);
          if (end == std::string_view::npos)
            return Status(CtorErr(p, "unterminated comment"));
          p = end + 3;
          continue;
        }
        MXQ_ASSIGN_OR_RETURN(ExprPtr kid, ParseCtorAt(&p));
        CtorContent c;
        c.expr = std::move(kid);
        e->content.push_back(std::move(c));
        continue;
      }
      if (ch == '{') {
        if (p + 1 < src.size() && src[p + 1] == '{') {
          lit.push_back('{');
          p += 2;
          continue;
        }
        flush_text(true);
        ++p;
        MXQ_ASSIGN_OR_RETURN(ExprPtr emb, ParseEmbeddedExpr(&p));
        CtorContent c;
        c.expr = std::move(emb);
        e->content.push_back(std::move(c));
        continue;
      }
      if (ch == '}' && p + 1 < src.size() && src[p + 1] == '}') {
        lit.push_back('}');
        p += 2;
        continue;
      }
      lit.push_back(src[p++]);
    }
  }

  Lexer lex_;
  Token cur_;
};

}  // namespace

Result<Query> ParseQuery(std::string_view src) {
  Parser p(src);
  return p.ParseModule();
}

void CollectFreeVarsImpl(const Expr& e, std::set<std::string>& bound,
                         std::set<std::string>* out) {
  switch (e.kind) {
    case ExprKind::kVarRef:
      if (!bound.count(e.str)) out->insert(e.str);
      return;
    case ExprKind::kFLWOR:
    case ExprKind::kQuantified: {
      std::set<std::string> inner = bound;
      for (const Clause& c : e.clauses) {
        CollectFreeVarsImpl(*c.expr, inner, out);
        inner.insert(c.var);
        if (!c.pos_var.empty()) inner.insert(c.pos_var);
      }
      if (e.where) CollectFreeVarsImpl(*e.where, inner, out);
      for (const OrderSpec& o : e.order)
        CollectFreeVarsImpl(*o.key, inner, out);
      if (e.ret) CollectFreeVarsImpl(*e.ret, inner, out);
      return;
    }
    default:
      break;
  }
  for (const ExprPtr& c : e.children)
    if (c) CollectFreeVarsImpl(*c, bound, out);
  for (const Step& s : e.steps)
    for (const ExprPtr& pr : s.preds) {
      // Predicates bind the context item.
      std::set<std::string> inner = bound;
      inner.insert(".");
      CollectFreeVarsImpl(*pr, inner, out);
    }
  for (const auto& [name, pieces] : e.attrs)
    for (const CtorContent& c : pieces)
      if (c.expr) CollectFreeVarsImpl(*c.expr, bound, out);
  for (const CtorContent& c : e.content)
    if (c.expr) CollectFreeVarsImpl(*c.expr, bound, out);
  if (e.where) CollectFreeVarsImpl(*e.where, bound, out);
  if (e.ret) CollectFreeVarsImpl(*e.ret, bound, out);
}

void CollectFreeVars(const Expr& e, std::set<std::string>* out) {
  std::set<std::string> bound;
  CollectFreeVarsImpl(e, bound, out);
}

}  // namespace xq
}  // namespace mxq
