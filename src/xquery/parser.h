// Recursive-descent parser for the XQuery dialect of DESIGN.md §5.

#ifndef MXQ_XQUERY_PARSER_H_
#define MXQ_XQUERY_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xquery/ast.h"

namespace mxq {
namespace xq {

/// Parses a query module (prolog function declarations + body).
Result<Query> ParseQuery(std::string_view src);

}  // namespace xq
}  // namespace mxq

#endif  // MXQ_XQUERY_PARSER_H_
