// Physical plan DAG emitted by the loop-lifting compiler.
//
// Plan nodes wrap the algebra operators of algebra/ops.h plus the
// XQuery-specific runtime operators (loop-lifted staircase step, existential
// theta-join, node construction, effective boolean value). Nodes are shared
// (DAG, not tree): the compiler memoizes variable lifts and loop relations,
// which is where the paper's "intermediate results are materialized always,
// as they tend to be re-used multiple times in the query plan" comes from —
// the evaluator memoizes each node's table in an execution-local map.
//
// Plans are immutable after compilation: no evaluator state lives on the
// nodes, so one CompiledQuery can be executed by any number of sessions
// concurrently (the serving API's prepared-query contract).

#ifndef MXQ_XQUERY_PLAN_H_
#define MXQ_XQUERY_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "algebra/ops.h"
#include "staircase/axis.h"

namespace mxq {
namespace xq {

enum class OpCode : uint8_t {
  kLiteral,        // fixed table (loop seeds, literals)
  kDocRoot,        // document node of a named document -> pos|item
  kProject,
  kSelectTrue,     // flag = negate
  kUnion,          // cols_list = disjoint key hint
  kDistinct,       // cols_list
  kSort,           // cols_list (+desc)
  kRowNum,         // out = new col, cols_list = order, group
  kEquiJoinI64,    // col (left), col2 (right), keep
  kEquiJoinItem,
  kSemiJoin,       // flag = anti
  kCross,          // keep
  kGroupAggr,      // group, col = value col, agg
  kFillGroups,     // inputs: aggr, loop; group, col = agg col, col2 = loop col
  kMap1,           // fn over col -> out
  kMap2,           // fn over col, col2 -> out
  kAppendConst,    // out, item
  kStep,           // loop-lifted staircase step over (iter, item) input
  kEbv,            // inputs: rel, loop -> (iter, item=bool) one row per loop
  kExists,         // inputs: rel, loop -> (iter, item=bool): group non-empty
  kExistJoin,      // inputs: lhs (iter,item), rhs (sid,item); cmp -> pairs
  kConstructElem,  // inputs: loop, content; str = tag
  kConstructAttr,  // input: (iter, item=string) one per loop iter; str = name
  kStringJoinAggr, // group concat: inputs rel, loop; sep
  kAssertProps,    // adds compiler-known properties to the input
  kParam,          // external-variable slot: (pos, item) of the bound value
  kTextProbe,      // inputs: rel, loop; cols_list = query terms; flag = scored
};

enum class ScalarFn : uint8_t {
  kArith,        // arith field
  kCmp,          // cmp field (XQuery coercion)
  kAtomize,
  kCastString,
  kCastNumber,
  kNot,
  kNeg,
  kContains,
  kStartsWith,
  kStringLength,
  kConcat,
  kSubstring2,   // substring(s, start)
  kNameOf,
  kLocalName,
  kRound,
  kFloor,
  kCeiling,
  kAbs,
  kNodeBefore,   // <<
  kNodeAfter,    // >>
  kNodeIs,       // is
  kAndBool,
  kOrBool,
  kCanonValue,   // distinct-values canonicalization
  kIdentity,     // pass-through (I64 -> item promotion)
};

struct PlanNode;
using PlanPtr = std::shared_ptr<PlanNode>;

struct PlanNode {
  explicit PlanNode(OpCode code) : op(code) {}

  OpCode op;
  std::vector<PlanPtr> inputs;

  // Parameters (only the fields relevant to `op` are meaningful).
  TablePtr literal;
  std::string doc_name;
  alg::KeepCols keep;                     // project / join keeps
  std::string col, col2, out, group, sep;
  std::vector<std::string> cols_list;
  std::vector<bool> desc;
  Item item;
  alg::AggKind agg = alg::AggKind::kCount;
  ScalarFn fn = ScalarFn::kAtomize;
  ArithOp arith = ArithOp::kAdd;
  CmpOp cmp = CmpOp::kEq;
  Axis axis = Axis::kChild;
  NodeTest::Sel sel = NodeTest::Sel::kAnyNode;
  std::string name_test;
  TableProps assert_props;
  bool flag = false;
  int32_t param = -1;  // kParam: index into CompiledQuery::params
};

inline PlanPtr MakePlan(OpCode op) { return std::make_shared<PlanNode>(op); }

/// Plan statistics (the paper reports 86 ops / 9 joins on average for
/// XMark).
struct PlanStats {
  int num_ops = 0;
  int num_joins = 0;
  int num_steps = 0;
  int num_sorts = 0;
};

/// Item-type contract of one external variable (from the prolog's `as`
/// annotation). Cardinality is not constrained — any binding is a sequence.
enum class ParamType : uint8_t {
  kAny,      // item()* / no annotation
  kInteger,  // xs:integer family
  kDouble,   // xs:double / xs:decimal / xs:float (accepts integers too)
  kString,   // xs:string / xs:untypedAtomic / xs:anyURI
  kBoolean,  // xs:boolean
  kNode,     // node() / element() / attribute() / text() / document-node()
};

const char* ParamTypeName(ParamType t);

/// One external-variable slot of a compiled plan.
struct ParamInfo {
  std::string name;      // variable name without the '$'
  ParamType type = ParamType::kAny;
};

/// A compiled query: result plan + prolog metadata. Immutable after
/// compilation — safe to share across threads and sessions.
struct CompiledQuery {
  PlanPtr root;  // relation (iter, pos, item) with a single outer iteration
  PlanStats stats;
  std::vector<ParamInfo> params;  // external variables, in slot order
};

PlanStats ComputePlanStats(const PlanPtr& root);

}  // namespace xq
}  // namespace mxq

#endif  // MXQ_XQUERY_PLAN_H_
