// Serving-API plumbing that is not plan evaluation: the engine's bounded
// LRU plan cache (compile once, serve many) and the streaming result
// cursor. Session itself is header-only (xquery/engine.h) — it is a thin
// per-caller handle over these thread-safe engine facilities.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <functional>
#include <thread>

#include "xquery/engine.h"

namespace mxq {
namespace xq {

namespace {

/// Cache key: CompileOptions fields + the query text, separated by a byte
/// that cannot appear in any of them. Two option sets that compile
/// differently never share a plan.
std::string PlanCacheKey(const std::string& query, const CompileOptions& o) {
  std::string k;
  k.reserve(query.size() + o.context_doc.size() + 16);
  k += o.join_recognition ? '1' : '0';
  k += '\x1f';
  k += std::to_string(o.max_inline_depth);
  k += '\x1f';
  k += o.context_doc;
  k += '\x1f';
  k += query;
  return k;
}

}  // namespace

Result<PreparedQuery> XQueryEngine::Prepare(const std::string& query,
                                            const CompileOptions& opts) {
  const std::string key = PlanCacheKey(query, opts);
  {
    MutexLock lk(&cache_mu_);
    auto it = cache_map_.find(key);
    if (it != cache_map_.end()) {
      ++cache_hits_;
      cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
      return it->second->plan;
    }
    ++cache_misses_;
  }

  // Compile outside the cache lock: compilation can be slow, and concurrent
  // Prepare calls for different queries should not serialize on it.
  MXQ_ASSIGN_OR_RETURN(CompiledQuery compiled, Compile(query, opts));
  auto plan = std::make_shared<const CompiledQuery>(std::move(compiled));

  MutexLock lk(&cache_mu_);
  auto it = cache_map_.find(key);
  if (it != cache_map_.end()) {
    // Another session compiled the same query concurrently; keep one plan.
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
    return it->second->plan;
  }
  if (cache_capacity_ == 0) return PreparedQuery(plan);  // caching disabled
  cache_lru_.push_front(CacheEntry{key, plan});
  cache_map_[key] = cache_lru_.begin();
  EvictOverCapacityLocked();
  return PreparedQuery(plan);
}

void XQueryEngine::EvictOverCapacityLocked() {
  while (cache_lru_.size() > cache_capacity_) {
    cache_map_.erase(cache_lru_.back().key);
    cache_lru_.pop_back();
    ++cache_evictions_;
  }
}

PlanCacheStats XQueryEngine::plan_cache_stats() const {
  MutexLock lk(&cache_mu_);
  PlanCacheStats s;
  s.hits = cache_hits_;
  s.misses = cache_misses_;
  s.evictions = cache_evictions_;
  s.size = static_cast<int64_t>(cache_lru_.size());
  s.capacity = static_cast<int64_t>(cache_capacity_);
  return s;
}

void XQueryEngine::set_plan_cache_capacity(size_t capacity) {
  MutexLock lk(&cache_mu_);
  cache_capacity_ = capacity;
  EvictOverCapacityLocked();
}

// ---------------------------------------------------------------------------
// Resource governance: admission control (docs/robustness.md)
// ---------------------------------------------------------------------------
//
// One brief mutex acquisition per execution (not per row): with limits off
// this is the entire overhead of governance on the admission side. With
// max_in_flight set, arrivals beyond the bound wait on gov_cv_ up to
// max_queue deep; anything beyond that is shed immediately so overload
// degrades into fast, typed rejections instead of unbounded queueing.

void XQueryEngine::set_governance(const GovernanceOptions& g) {
  {
    MutexLock lk(&gov_mu_);
    gov_opts_ = g;
  }
  // A raised (or removed) limit admits queued requests right away.
  gov_cv_.notify_all();
}

GovernanceOptions XQueryEngine::governance() const {
  MutexLock lk(&gov_mu_);
  return gov_opts_;
}

GovernanceStats XQueryEngine::governance_stats() const {
  MutexLock lk(&gov_mu_);
  return gov_stats_;
}

void XQueryEngine::CancelAll() {
  engine_cancel_group_.CancelAll();
  WakeAdmissionWaiters();
}

void XQueryEngine::WakeAdmissionWaiters() { gov_cv_.notify_all(); }

Status XQueryEngine::Admit(const ExecContext& ectx) {
  MutexLock lk(&gov_mu_);
  ++gov_stats_.requests;
  if (gov_opts_.max_in_flight > 0 && in_flight_ >= gov_opts_.max_in_flight) {
    if (queued_ >= gov_opts_.max_queue) {
      ++gov_stats_.shed_queue_full;
      return Status::ResourceExhausted(
          "admission queue full (" + std::to_string(queued_) + " queued, " +
          std::to_string(in_flight_) + " in flight)");
    }
    ++queued_;
    if (queued_ > gov_stats_.peak_queued) gov_stats_.peak_queued = queued_;
    // Explicit wait loops rather than predicate lambdas: the thread-safety
    // analysis checks guarded reads in the loop body against gov_mu_, which
    // the CondVar re-acquires before wait() returns. The lambda form would
    // hide those reads in an unannotated closure. `woke` is false exactly
    // when the deadline passed while still inadmissible (the same contract
    // as wait_until's predicate overload).
    bool woke = true;
    if (ectx.has_deadline()) {
      while (!AdmissibleLocked(ectx)) {
        if (gov_cv_.wait_until(gov_mu_, ectx.deadline()) ==
            std::cv_status::timeout) {
          woke = AdmissibleLocked(ectx);
          break;
        }
      }
    } else {
      while (!AdmissibleLocked(ectx)) gov_cv_.wait(gov_mu_);
    }
    --queued_;
    if (!woke) {
      ++gov_stats_.shed_deadline;
      return Status::DeadlineExceeded("deadline expired while queued");
    }
    if (ectx.StopRequested()) {
      Status st = ectx.Check();
      if (st.code() == StatusCode::kDeadlineExceeded) {
        ++gov_stats_.shed_deadline;
      } else {
        ++gov_stats_.shed_cancelled;
      }
      return st.ok() ? Status::Cancelled("cancelled while queued") : st;
    }
  }
  ++in_flight_;
  ++gov_stats_.admitted;
  if (in_flight_ > gov_stats_.peak_in_flight)
    gov_stats_.peak_in_flight = in_flight_;
  return Status::OK();
}

void XQueryEngine::ReleaseAdmission() {
  {
    MutexLock lk(&gov_mu_);
    --in_flight_;
  }
  gov_cv_.notify_one();
}

void XQueryEngine::RecordOutcome(const Status& st) {
  MutexLock lk(&gov_mu_);
  if (st.ok()) {
    ++gov_stats_.completed_ok;
    return;
  }
  switch (st.code()) {
    case StatusCode::kCancelled: ++gov_stats_.cancelled; break;
    case StatusCode::kDeadlineExceeded: ++gov_stats_.deadline_exceeded; break;
    case StatusCode::kResourceExhausted:
      ++gov_stats_.resource_exhausted;
      break;
    default: ++gov_stats_.failed_other; break;
  }
}

// ---------------------------------------------------------------------------
// Session: bounded retry on admission shed (docs/robustness.md)
// ---------------------------------------------------------------------------

namespace {

/// Retry predicate: only an admission *shed* is transient by construction
/// (a slot frees whenever any in-flight execution finishes). The message
/// prefix is part of Admit()'s contract above; every other
/// kResourceExhausted (memory budget, shred limits) is deterministic and
/// must not be retried.
bool IsAdmissionShed(const Status& st) {
  return st.code() == StatusCode::kResourceExhausted &&
         st.message().rfind("admission queue full", 0) == 0;
}

}  // namespace

Result<QueryResult> Session::ExecuteWithRetry(const CompiledQuery& q,
                                              const RetryPolicy& policy) {
  // Decorrelating jitter from a per-thread xorshift state: competing
  // retriers spread out instead of thundering back in lockstep, with no
  // shared PRNG to contend on.
  thread_local uint64_t rng_state =
      0x9e3779b97f4a7c15ull ^
      static_cast<uint64_t>(
          std::hash<std::thread::id>{}(std::this_thread::get_id()));
  auto next_unit = [&]() {  // uniform in [0, 1)
    rng_state ^= rng_state << 13;
    rng_state ^= rng_state >> 7;
    rng_state ^= rng_state << 17;
    return static_cast<double>(rng_state >> 11) /
           static_cast<double>(uint64_t{1} << 53);
  };

  // The backoff context mirrors what Execute() will arm for the next
  // attempt: a blind sleep_for here would serve out the full backoff even
  // after CancelAll() or a deadline expiry, turning a sub-millisecond
  // cancellation contract into seconds of latency. The deadline spans the
  // whole retry loop (queueing *and* backing off both consume it).
  ExecContext bctx;
  const int64_t deadline_ms = opts_.deadline_ms > 0
                                  ? opts_.deadline_ms
                                  : engine_->governance().default_deadline_ms;
  if (deadline_ms > 0)
    bctx.set_deadline(ExecContext::Clock::now() +
                      std::chrono::milliseconds(deadline_ms));
  bctx.Watch(&engine_->engine_cancel_group_);
  if (opts_.cancel_group) bctx.Watch(opts_.cancel_group.get());

  const int attempts = std::max(1, policy.max_attempts);
  double backoff = static_cast<double>(policy.initial_backoff_ms);
  for (int attempt = 1;; ++attempt) {
    auto r = Execute(q);
    if (r.ok() || !IsAdmissionShed(r.status()) || attempt >= attempts)
      return r;
    const double capped =
        std::min(backoff, static_cast<double>(policy.max_backoff_ms));
    const double scale = 1.0 - policy.jitter * next_unit();
    const auto sleep_ms =
        std::max<int64_t>(0, std::llround(capped * scale));
    // Sleep in bounded slices, polling the context between them, so a
    // cancel/deadline during backoff is observed within ~2 ms instead of
    // after the remaining backoff.
    const auto until = ExecContext::Clock::now() +
                       std::chrono::milliseconds(sleep_ms);
    while (ExecContext::Clock::now() < until) {
      if (bctx.StopRequested()) {
        Status st = bctx.Check();
        return st.ok() ? Status::Cancelled("cancelled during retry backoff")
                       : st;
      }
      const auto remain = until - ExecContext::Clock::now();
      std::this_thread::sleep_for(
          std::min<ExecContext::Clock::duration>(
              remain, std::chrono::milliseconds(2)));
    }
    backoff *= policy.multiplier;
  }
}

// ---------------------------------------------------------------------------
// ResultCursor
// ---------------------------------------------------------------------------

size_t ResultCursor::total_rows() const {
  if (stream_) return row_;  // rows yielded so far; final once done()
  return table_ ? table_->rows() : 0;
}

size_t ResultCursor::Next(std::vector<Item>* out, size_t max) {
  out->clear();
  if (max == 0) return 0;

  if (stream_) {
    CursorStream& cs = *stream_;
    if (!cs.status.ok()) return 0;  // sticky failure
    // Pulls run under the execution's retained context: vectors built by
    // the pipeline charge its MemAccount, and every stage polls it.
    ScopedExecContext scoped(&cs.ectx);
    size_t yielded = 0;
    while (yielded < max) {
      if (cs.buffered == nullptr) {
        if (cs.exhausted) break;
        auto batch = cs.src->Next();
        if (!batch.ok()) {
          cs.status = batch.status();
          cs.exhausted = true;
          break;
        }
        if (*batch == nullptr) {  // end of stream
          cs.exhausted = true;
          break;
        }
        cs.buffered = std::move(*batch);
        cs.buf_row = 0;
        cs.buf_item = cs.buffered->ColumnIndex("item");
        cs.flags.stats.peak_mem_bytes = std::max(
            cs.flags.stats.peak_mem_bytes, cs.ectx.mem()->peak_bytes());
      }
      const size_t n = cs.buffered->rows();
      const size_t take = std::min(max - yielded, n - cs.buf_row);
      out->reserve(out->size() + take);
      for (size_t k = 0; k < take; ++k)
        out->push_back(cs.buffered->ItemAt(
            static_cast<size_t>(cs.buf_item), cs.buf_row + k));
      cs.buf_row += take;
      yielded += take;
      if (cs.buf_row >= n) cs.buffered.reset();  // releases its charge
    }
    row_ += yielded;
    return yielded;
  }

  if (!table_ || item_col_ < 0) return 0;
  const size_t n = table_->rows();
  if (row_ >= n) return 0;
  const size_t take = std::min(max, n - row_);
  out->reserve(take);
  // ItemAt reads through any selection vector without materializing the
  // full column — a cursor consumer never forces the whole gather.
  for (size_t k = 0; k < take; ++k)
    out->push_back(table_->ItemAt(static_cast<size_t>(item_col_), row_ + k));
  row_ += take;
  return take;
}

}  // namespace xq
}  // namespace mxq
