// Serving-API plumbing that is not plan evaluation: the engine's bounded
// LRU plan cache (compile once, serve many) and the streaming result
// cursor. Session itself is header-only (xquery/engine.h) — it is a thin
// per-caller handle over these thread-safe engine facilities.

#include <algorithm>

#include "xquery/engine.h"

namespace mxq {
namespace xq {

namespace {

/// Cache key: CompileOptions fields + the query text, separated by a byte
/// that cannot appear in any of them. Two option sets that compile
/// differently never share a plan.
std::string PlanCacheKey(const std::string& query, const CompileOptions& o) {
  std::string k;
  k.reserve(query.size() + o.context_doc.size() + 16);
  k += o.join_recognition ? '1' : '0';
  k += '\x1f';
  k += std::to_string(o.max_inline_depth);
  k += '\x1f';
  k += o.context_doc;
  k += '\x1f';
  k += query;
  return k;
}

}  // namespace

Result<PreparedQuery> XQueryEngine::Prepare(const std::string& query,
                                            const CompileOptions& opts) {
  const std::string key = PlanCacheKey(query, opts);
  {
    std::lock_guard<std::mutex> lk(cache_mu_);
    auto it = cache_map_.find(key);
    if (it != cache_map_.end()) {
      ++cache_hits_;
      cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
      return it->second->plan;
    }
    ++cache_misses_;
  }

  // Compile outside the cache lock: compilation can be slow, and concurrent
  // Prepare calls for different queries should not serialize on it.
  MXQ_ASSIGN_OR_RETURN(CompiledQuery compiled, Compile(query, opts));
  auto plan = std::make_shared<const CompiledQuery>(std::move(compiled));

  std::lock_guard<std::mutex> lk(cache_mu_);
  auto it = cache_map_.find(key);
  if (it != cache_map_.end()) {
    // Another session compiled the same query concurrently; keep one plan.
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
    return it->second->plan;
  }
  if (cache_capacity_ == 0) return PreparedQuery(plan);  // caching disabled
  cache_lru_.push_front(CacheEntry{key, plan});
  cache_map_[key] = cache_lru_.begin();
  EvictOverCapacityLocked();
  return PreparedQuery(plan);
}

void XQueryEngine::EvictOverCapacityLocked() {
  while (cache_lru_.size() > cache_capacity_) {
    cache_map_.erase(cache_lru_.back().key);
    cache_lru_.pop_back();
    ++cache_evictions_;
  }
}

PlanCacheStats XQueryEngine::plan_cache_stats() const {
  std::lock_guard<std::mutex> lk(cache_mu_);
  PlanCacheStats s;
  s.hits = cache_hits_;
  s.misses = cache_misses_;
  s.evictions = cache_evictions_;
  s.size = static_cast<int64_t>(cache_lru_.size());
  s.capacity = static_cast<int64_t>(cache_capacity_);
  return s;
}

void XQueryEngine::set_plan_cache_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lk(cache_mu_);
  cache_capacity_ = capacity;
  EvictOverCapacityLocked();
}

// ---------------------------------------------------------------------------
// ResultCursor
// ---------------------------------------------------------------------------

size_t ResultCursor::total_rows() const {
  return table_ ? table_->rows() : 0;
}

size_t ResultCursor::Next(std::vector<Item>* out, size_t max) {
  out->clear();
  if (!table_ || item_col_ < 0 || max == 0) return 0;
  const size_t n = table_->rows();
  if (row_ >= n) return 0;
  const size_t take = std::min(max, n - row_);
  out->reserve(take);
  // ItemAt reads through any selection vector without materializing the
  // full column — a cursor consumer never forces the whole gather.
  for (size_t k = 0; k < take; ++k)
    out->push_back(table_->ItemAt(static_cast<size_t>(item_col_), row_ + k));
  row_ += take;
  return take;
}

}  // namespace xq
}  // namespace mxq
