#include "xquery/stream.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/exec_context.h"
#include "staircase/loop_lifted.h"

namespace mxq {
namespace xq {

// ---------------------------------------------------------------------------
// shared axis-step kernel
// ---------------------------------------------------------------------------

void RunStepKernel(DocumentManager& mgr, const EvalOptions& opts,
                   const alg::ExecFlags& fl, const PlanNode& n, size_t nrows,
                   const std::function<Item(size_t)>& item_at,
                   const std::function<int64_t(size_t)>& iter_at,
                   ScanStats* scan, std::vector<int64_t>* out_iter,
                   std::vector<Item>* out_item) {
  // Resolve the node test.
  NodeTest test;
  test.sel = n.sel;
  if (!n.name_test.empty()) {
    test.qn = mgr.strings().Find(n.name_test);
    // Name never interned: no node anywhere matches.
    if (test.qn == kInvalidStrId) return;
  }

  out_iter->reserve(nrows);
  out_item->reserve(nrows);

  // The input is sorted on (item, iter) == (container, pre, iter): rows of
  // one container are contiguous.
  size_t i = 0;
  while (i < nrows) {
    if (fl.stop_requested()) break;  // per-container checkpoint
    Item first = item_at(i);
    if (!first.is_node()) {  // attribute/atomic context rows have no axes
      ++i;
      continue;
    }
    int32_t cid = first.node().container;
    std::vector<int64_t> ctx_iter, ctx_pre;
    while (i < nrows) {
      Item it = item_at(i);
      if (!it.is_node() || it.node().container != cid) break;
      ctx_pre.push_back(it.node().pre);
      ctx_iter.push_back(iter_at(i));
      ++i;
    }
    const DocumentContainer& doc = *mgr.container(cid);

    LLStepResult res;
    StepMode mode =
        n.axis == Axis::kChild ? opts.child_mode : opts.desc_mode;
    bool pushdown =
        opts.nametest_pushdown && test.is_named_elem() &&
        (n.axis == Axis::kChild || n.axis == Axis::kDescendant ||
         n.axis == Axis::kDescendantOrSelf);
    if (pushdown) {
      res = LoopLiftedStaircaseCandidates(doc, n.axis, ctx_iter, ctx_pre,
                                          doc.ElementsNamed(test.qn), scan,
                                          fl.gov);
    } else if (mode == StepMode::kIterative) {
      res = IterativeStaircase(doc, n.axis, ctx_iter, ctx_pre, test, scan,
                               fl.gov);
    } else {
      res = LoopLiftedStaircase(doc, n.axis, ctx_iter, ctx_pre, test, scan,
                                fl.gov);
    }
    for (size_t k = 0; k < res.node.size(); ++k) {
      out_iter->push_back(res.iter[k]);
      out_item->push_back(n.axis == Axis::kAttribute
                              ? Item::Attr(cid, res.node[k])
                              : Item::Node(cid, res.node[k]));
    }
  }
}

// ---------------------------------------------------------------------------
// streaming source for the scan shape
// ---------------------------------------------------------------------------

namespace {

/// Typed stop status off the cursor's retained context.
Status StopStatus(const CursorStream& cs) {
  Status st = cs.ectx.Check();
  if (!st.ok()) return st;
  return Status::Cancelled("streaming pull stopped");
}

bool ColsEq(const std::vector<std::string>& a,
            std::initializer_list<const char*> b) {
  return std::equal(a.begin(), a.end(), b.begin(), b.end(),
                    [](const std::string& x, const char* y) { return x == y; });
}

bool KeepEq(const alg::KeepCols& a,
            std::initializer_list<std::pair<const char*, const char*>> b) {
  return std::equal(a.begin(), a.end(), b.begin(), b.end(),
                    [](const auto& x, const auto& y) {
                      return x.first == y.first && x.second == y.second;
                    });
}

bool NoDesc(const std::vector<bool>& d) {
  return std::none_of(d.begin(), d.end(), [](bool b) { return b; });
}

/// Runs the step cascade of a streamable path plan: contexts for steps live
/// in plain scratch buffers (uncharged, like every kernel's working set);
/// only the emitted vectors become charged Columns, via the wrapped
/// ItemBufferSource — so the accounted footprint of the execution is one
/// in-flight vector, never the relation.
class PathStreamSource final : public alg::VectorSource {
 public:
  PathStreamSource(DocumentManager* mgr, CursorStream* cs,
                   const EvalOptions& opts,
                   std::vector<const PlanNode*> steps, std::string doc_name)
      : mgr_(mgr),
        cs_(cs),
        eval_(opts),
        steps_(std::move(steps)),
        doc_name_(std::move(doc_name)) {}

  Result<TablePtr> Next() override {
    if (!emitter_) {
      MXQ_RETURN_IF_ERROR(Run());
    }
    return emitter_->Next();
  }

 private:
  Status Run() {
    auto doc = mgr_->GetDocument(doc_name_);
    if (!doc.ok()) return doc.status();
    // CompileDocRoot's base context: the document node, one iteration.
    std::vector<int64_t> iter{1};
    std::vector<Item> item{Item::Node((*doc)->id(), 0)};
    for (const PlanNode* stp : steps_) {
      if (cs_->flags.stop_requested()) return StopStatus(*cs_);
      // The compiled Sort{item,iter} + Distinct{item,iter} pair over a
      // relation already in (item, iter) order: adjacent-duplicate drop.
      size_t w = 0;
      for (size_t r = 0; r < item.size(); ++r) {
        if (w > 0 && item[r] == item[w - 1] && iter[r] == iter[w - 1])
          continue;
        item[w] = item[r];
        iter[w] = iter[r];
        ++w;
      }
      item.resize(w);
      iter.resize(w);
      std::vector<int64_t> out_iter;
      std::vector<Item> out_item;
      RunStepKernel(*mgr_, eval_, cs_->flags, *stp, item.size(),
                    [&](size_t r) { return item[r]; },
                    [&](size_t r) { return iter[r]; }, &cs_->scan, &out_iter,
                    &out_item);
      if (cs_->flags.stop_requested()) return StopStatus(*cs_);
      iter = std::move(out_iter);
      item = std::move(out_item);
    }
    // RowNum{pos} and the root Sort{iter,pos} are identity over a single
    // iteration (stream.h): emit the items as-is, vector by vector.
    emitter_ = std::make_unique<alg::ItemBufferSource>(std::move(item), "item",
                                                       &cs_->flags);
    return Status::OK();
  }

  DocumentManager* mgr_;
  CursorStream* cs_;
  EvalOptions eval_;  // step modes / pushdown captured at open
  std::vector<const PlanNode*> steps_;
  std::string doc_name_;
  std::unique_ptr<alg::ItemBufferSource> emitter_;
};

}  // namespace

std::unique_ptr<alg::VectorSource> TryBuildPathStream(DocumentManager* mgr,
                                                      const CompiledQuery& q,
                                                      const EvalOptions& opts,
                                                      CursorStream* cs) {
  // Declared external variables force the materializing path even when
  // unused by the plan: binding presence/type checks happen there.
  if (!q.params.empty()) return nullptr;

  // Root: CompileQuery's Sort{iter,pos}.
  const PlanNode* n = q.root.get();
  if (n == nullptr || n->op != OpCode::kSort ||
      !ColsEq(n->cols_list, {"iter", "pos"}) || !NoDesc(n->desc))
    return nullptr;
  const PlanNode* cur = n->inputs[0].get();

  // Step chains, top-down: Proj . RowNum . Step . Distinct . Sort.
  std::vector<const PlanNode*> steps;
  while (cur->op == OpCode::kProject) {
    if (!KeepEq(cur->keep,
                {{"iter", "iter"}, {"pos", "pos"}, {"item", "item"}}))
      return nullptr;
    const PlanNode* rn = cur->inputs[0].get();
    if (rn->op != OpCode::kRowNum || rn->out != "pos" ||
        !ColsEq(rn->cols_list, {"item"}) || rn->group != "iter")
      return nullptr;
    const PlanNode* st = rn->inputs[0].get();
    if (st->op != OpCode::kStep) return nullptr;
    const PlanNode* d = st->inputs[0].get();
    if (d->op != OpCode::kDistinct || !ColsEq(d->cols_list, {"item", "iter"}))
      return nullptr;
    const PlanNode* s2 = d->inputs[0].get();
    if (s2->op != OpCode::kSort || !ColsEq(s2->cols_list, {"item", "iter"}) ||
        !NoDesc(s2->desc))
      return nullptr;
    steps.push_back(st);
    cur = s2->inputs[0].get();
  }

  // Base: CompileDocRoot's Cross(Literal[1-row loop], DocRoot). The 1-row
  // loop is what makes every enforcer above order-neutral (single
  // iteration); a multi-row loop (FLWOR) must not stream.
  if (cur->op != OpCode::kCross ||
      !KeepEq(cur->keep, {{"pos", "pos"}, {"item", "item"}}))
    return nullptr;
  const PlanNode* lit = cur->inputs[0].get();
  const PlanNode* droot = cur->inputs[1].get();
  if (lit->op != OpCode::kLiteral || lit->literal == nullptr ||
      lit->literal->rows() != 1)
    return nullptr;
  if (droot->op != OpCode::kDocRoot) return nullptr;

  std::reverse(steps.begin(), steps.end());  // execute base-first
  return std::make_unique<PathStreamSource>(mgr, cs, opts, std::move(steps),
                                            droot->doc_name);
}

}  // namespace xq
}  // namespace mxq
