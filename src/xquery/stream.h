// Streaming execution of scan-shaped plans through the vector pipeline
// (docs/execution.md §6).
//
// The compiler emits one fixed shape for a bare single-document path
// expression (compile.cc):
//
//   Sort{iter,pos}                                  <- CompileQuery root
//     (Proj{iter,pos,item} . RowNum[pos/{item};iter]
//        . Step . Distinct{item,iter} . Sort{item,iter})*   <- per axis step
//       Cross(Literal[loop(1)], DocRoot)            <- CompileDocRoot base
//
// With a single-row outer loop the whole relation carries one iteration, so
// every enforcer in that chain is order-neutral by construction: the
// inter-step Sort{item,iter} is elided (step output is created in that
// order), Distinct{item,iter} over sorted input is an adjacent-duplicate
// drop, RowNum numbers 1..n in row order, and the root Sort{iter,pos} is
// the identity permutation. TryBuildPathStream recognizes exactly this
// shape — nothing else — and returns a VectorSource producing the result's
// item sequence byte-identically to the materializing evaluator. Any other
// plan (predicates, FLWOR, joins, constructors, parameters: the pipeline
// breakers) returns null and executes on the materializing path, also
// bit-identically, because it *is* the unmodified legacy path.

#ifndef MXQ_XQUERY_STREAM_H_
#define MXQ_XQUERY_STREAM_H_

#include <functional>
#include <memory>
#include <vector>

#include "algebra/pipeline.h"
#include "xquery/engine.h"
#include "xquery/plan.h"

namespace mxq {
namespace xq {

/// Shared axis-step kernel: the per-container loop-lifted staircase of
/// docs/execution.md §3, factored out of the materializing EvalStep so the
/// streaming path executes the byte-identical step code. The context
/// relation — sorted on (item, iter), rows of one container contiguous —
/// is read through row accessors (the evaluator feeds Columns, the stream
/// feeds scratch buffers); results append to `out_iter`/`out_item` in
/// (item, iter) order. A name test over a string never interned matches
/// nothing and returns empty outputs. Polls `fl.stop_requested()` per
/// container and leaves truncated outputs on a stop (callers surface the
/// typed Status).
void RunStepKernel(DocumentManager& mgr, const EvalOptions& opts,
                   const alg::ExecFlags& fl, const PlanNode& step,
                   size_t nrows, const std::function<Item(size_t)>& item_at,
                   const std::function<int64_t(size_t)>& iter_at,
                   ScanStats* scan, std::vector<int64_t>* out_iter,
                   std::vector<Item>* out_item);

/// Builds the streaming source for `q` when its plan is the streamable scan
/// shape above, else returns null (caller falls back to materializing).
/// The source holds pointers into `*cs` (flags, scan stats, ectx via
/// flags.gov) — `cs` must be the heap-owned stream state of the cursor that
/// will pull from it, with `cs->flags` already configured. Pulls charge
/// their vectors to the installed ExecContext and poll it for cancellation.
std::unique_ptr<alg::VectorSource> TryBuildPathStream(DocumentManager* mgr,
                                                      const CompiledQuery& q,
                                                      const EvalOptions& opts,
                                                      CursorStream* cs);

}  // namespace xq
}  // namespace mxq

#endif  // MXQ_XQUERY_STREAM_H_
