// Unit + property tests for the physical algebra and its column properties.

#include <gtest/gtest.h>

#include <random>

#include <unordered_set>

#include "algebra/ops.h"

namespace mxq {
namespace alg {
namespace {

ColumnPtr I64Col(std::vector<int64_t> v) { return Column::MakeI64(std::move(v)); }
ColumnPtr ItemCol(std::vector<Item> v) { return Column::MakeItem(std::move(v)); }

Item S(DocumentManager& mgr, const std::string& s) {
  return Item::String(mgr.strings().Intern(s));
}

// ---------------------------------------------------------------------------
// item semantics
// ---------------------------------------------------------------------------

TEST(ItemOpsTest, NumericCoercion) {
  DocumentManager mgr;
  // untyped "20" compares numerically against int 20 (XQuery general
  // comparison casts untypedAtomic to the numeric operand's type).
  Item u20 = Item::Untyped(mgr.strings().Intern("20"));
  EXPECT_TRUE(CompareItems(mgr, u20, CmpOp::kEq, Item::Int(20)));
  EXPECT_TRUE(CompareItems(mgr, Item::Int(19), CmpOp::kLt, u20));
  EXPECT_TRUE(CompareItems(mgr, Item::Double(20.0), CmpOp::kEq, u20));
  // Non-numeric untyped against numeric: false, never an error.
  Item abc = Item::Untyped(mgr.strings().Intern("abc"));
  EXPECT_FALSE(CompareItems(mgr, abc, CmpOp::kEq, Item::Int(20)));
  EXPECT_FALSE(CompareItems(mgr, abc, CmpOp::kLt, Item::Int(20)));
}

TEST(ItemOpsTest, StringComparison) {
  DocumentManager mgr;
  EXPECT_TRUE(CompareItems(mgr, S(mgr, "alpha"), CmpOp::kLt, S(mgr, "beta")));
  EXPECT_TRUE(CompareItems(mgr, S(mgr, "x"), CmpOp::kEq,
                           Item::Untyped(mgr.strings().Intern("x"))));
  EXPECT_FALSE(CompareItems(mgr, S(mgr, "x"), CmpOp::kEq, S(mgr, "y")));
}

TEST(ItemOpsTest, HashConsistentWithEquality) {
  DocumentManager mgr;
  // Items that compare equal must hash equal (join correctness).
  Item variants[] = {Item::Int(42), Item::Double(42.0),
                     Item::Untyped(mgr.strings().Intern("42"))};
  for (const Item& a : variants)
    for (const Item& b : variants) {
      ASSERT_TRUE(CompareItems(mgr, a, CmpOp::kEq, b));
      EXPECT_EQ(HashItem(mgr, a), HashItem(mgr, b));
    }
  // untyped vs untyped compares as string (XQuery): " 42 " != "42" even
  // though both hash through their numeric image — a benign collision.
  Item padded = Item::Untyped(mgr.strings().Intern(" 42 "));
  EXPECT_FALSE(CompareItems(mgr, padded, CmpOp::kEq, variants[2]));
  EXPECT_TRUE(CompareItems(mgr, padded, CmpOp::kEq, Item::Int(42)));
}

TEST(ItemOpsTest, Arithmetic) {
  DocumentManager mgr;
  EXPECT_EQ(Arith(mgr, Item::Int(7), ArithOp::kAdd, Item::Int(5)).i, 12);
  EXPECT_EQ(Arith(mgr, Item::Int(7), ArithOp::kMod, Item::Int(2)).i, 1);
  EXPECT_DOUBLE_EQ(
      Arith(mgr, Item::Int(7), ArithOp::kDiv, Item::Int(2)).as_double(), 3.5);
  // Untyped operands coerce to numbers (Q18's conversion function).
  Item u = Item::Untyped(mgr.strings().Intern("100.5"));
  EXPECT_DOUBLE_EQ(
      Arith(mgr, u, ArithOp::kMul, Item::Double(2.0)).as_double(), 201.0);
  // Empty propagates.
  EXPECT_EQ(Arith(mgr, Item(), ArithOp::kAdd, Item::Int(1)).kind,
            ItemKind::kEmpty);
}

TEST(ItemOpsTest, Ebv) {
  DocumentManager mgr;
  EXPECT_FALSE(ItemEbv(mgr, Item()));
  EXPECT_TRUE(ItemEbv(mgr, Item::Int(3)));
  EXPECT_FALSE(ItemEbv(mgr, Item::Int(0)));
  EXPECT_FALSE(ItemEbv(mgr, S(mgr, "")));
  EXPECT_TRUE(ItemEbv(mgr, S(mgr, "x")));
  EXPECT_TRUE(ItemEbv(mgr, Item::Node(0, 3)));
}

// ---------------------------------------------------------------------------
// operators
// ---------------------------------------------------------------------------

TEST(OpsTest, MakeLoopProps) {
  auto loop = MakeLoop(4);
  EXPECT_EQ(loop->rows(), 4u);
  EXPECT_TRUE(loop->props().is_dense("iter"));
  EXPECT_TRUE(loop->props().is_key("iter"));
  EXPECT_TRUE(loop->props().OrderedBy({"iter"}));
}

TEST(OpsTest, SelectEqPositionalVsScan) {
  ExecFlags fl;
  auto loop = MakeLoop(100);
  auto hit = SelectEqI64(fl, loop, "iter", 42);
  ASSERT_EQ(hit->rows(), 1u);
  EXPECT_EQ(hit->col("iter")->GetI64(0), 42);
  EXPECT_EQ(fl.stats.positional_selects, 1);
  // Out of range: empty, still positional.
  EXPECT_EQ(SelectEqI64(fl, loop, "iter", 1000)->rows(), 0u);

  // Without the dense property the operator scans.
  auto t = MakeTable({{"x", I64Col({5, 42, 42, 7})}});
  auto hits = SelectEqI64(fl, t, "x", 42);
  EXPECT_EQ(hits->rows(), 2u);
  EXPECT_EQ(fl.stats.positional_selects, 2);  // unchanged by the scan path
}

TEST(OpsTest, EquiJoinPositionalWhenDense) {
  ExecFlags fl;
  DocumentManager mgr;
  auto loop = MakeLoop(5);
  auto probe = MakeTable({{"iter", I64Col({3, 1, 3, 9})}});
  auto joined = EquiJoinI64(fl, probe, "iter", loop, "iter", {{"iter", "m"}});
  // 9 misses (out of dense range).
  ASSERT_EQ(joined->rows(), 3u);
  EXPECT_EQ(joined->col("m")->GetI64(0), 3);
  EXPECT_EQ(joined->col("m")->GetI64(1), 1);
  EXPECT_EQ(fl.stats.positional_joins, 1);
  EXPECT_EQ(fl.stats.hash_joins, 0);

  // Same join without positional flag: hash, same result.
  ExecFlags no_pos;
  no_pos.positional = false;
  auto joined2 =
      EquiJoinI64(no_pos, probe, "iter", loop, "iter", {{"iter", "m"}});
  // The generic algorithm ran (the radix kernel by default, the legacy
  // hash join when ablated), not the positional lookup.
  EXPECT_EQ(no_pos.stats.radix_joins + no_pos.stats.hash_joins, 1);
  EXPECT_EQ(no_pos.stats.positional_joins, 0);
  ASSERT_EQ(joined2->rows(), 3u);
  for (size_t i = 0; i < 3; ++i)
    EXPECT_EQ(joined->col("m")->GetI64(i), joined2->col("m")->GetI64(i));
}

TEST(OpsTest, HashJoinPreservesProbeOrder) {
  ExecFlags fl;
  auto left = MakeTable({{"k", I64Col({1, 1, 2, 3})}});
  left->props().ord = {"k"};
  auto right = MakeTable({{"k", I64Col({2, 1})}, {"v", I64Col({20, 10})}});
  auto j = EquiJoinI64(fl, left, "k", right, "k", {{"v", "v"}});
  ASSERT_EQ(j->rows(), 3u);
  EXPECT_EQ(j->col("v")->GetI64(0), 10);
  EXPECT_EQ(j->col("v")->GetI64(2), 20);
  EXPECT_TRUE(j->props().OrderedBy({"k"}));  // probe order preserved
}

TEST(OpsTest, SortElisionAndRefinement) {
  DocumentManager mgr;
  ExecFlags fl;
  auto t = MakeTable({{"iter", I64Col({1, 1, 2, 2})},
                      {"pos", I64Col({1, 2, 1, 2})}});
  t->props().ord = {"iter", "pos"};
  // Fully ordered: elided.
  auto s1 = Sort(mgr, fl, t, {"iter", "pos"});
  EXPECT_EQ(fl.stats.sorts_elided, 1);
  EXPECT_EQ(s1.get(), t.get());
  // Prefix ordered: refine sort.
  auto t2 = MakeTable({{"iter", I64Col({1, 1, 2, 2})},
                       {"x", I64Col({9, 3, 8, 2})}});
  t2->props().ord = {"iter"};
  auto s2 = Sort(mgr, fl, t2, {"iter", "x"});
  EXPECT_EQ(fl.stats.refine_sorts, 1);
  EXPECT_EQ(s2->col("x")->GetI64(0), 3);
  EXPECT_EQ(s2->col("x")->GetI64(1), 9);
  EXPECT_EQ(s2->col("x")->GetI64(2), 2);
  // order_opt off: full sorts, same output.
  ExecFlags off;
  off.order_opt = false;
  auto s3 = Sort(mgr, off, t2, {"iter", "x"});
  EXPECT_EQ(off.stats.sorts_performed, 1);
  for (size_t i = 0; i < 4; ++i)
    EXPECT_EQ(s2->col("x")->GetI64(i), s3->col("x")->GetI64(i));
}

TEST(OpsTest, RowNumStreamingWhenGrpOrdered) {
  DocumentManager mgr;
  ExecFlags fl;
  // Groups interleaved, but within each group the pos order is the physical
  // order — exactly the grpord situation §4.1 exploits.
  auto t = MakeTable({{"g", I64Col({1, 2, 1, 2, 1})},
                      {"pos", I64Col({10, 5, 20, 6, 30})}});
  t->props().grpord.push_back({{"pos"}, "g"});
  auto r = RowNum(mgr, fl, t, "n", {"pos"}, "g");
  EXPECT_EQ(fl.stats.rownum_streaming, 1);
  std::vector<int64_t> want = {1, 1, 2, 2, 3};
  for (size_t i = 0; i < want.size(); ++i)
    EXPECT_EQ(r->col("n")->GetI64(i), want[i]);

  // Same input without the property: sorting variant, same numbers after
  // aligning rows by (g, pos).
  ExecFlags fl2;
  auto t2 = MakeTable({{"g", I64Col({1, 2, 1, 2, 1})},
                       {"pos", I64Col({10, 5, 20, 6, 30})}});
  auto r2 = RowNum(mgr, fl2, t2, "n", {"pos"}, "g");
  EXPECT_EQ(fl2.stats.rownum_sorting, 1);
  // Sorted output: g=1 rows first (pos 10,20,30 -> n 1,2,3).
  EXPECT_EQ(r2->col("n")->GetI64(0), 1);
  EXPECT_EQ(r2->col("n")->GetI64(2), 3);
  EXPECT_EQ(r2->col("n")->GetI64(4), 2);
}

TEST(OpsTest, DistinctMergeVsHash) {
  DocumentManager mgr;
  ExecFlags fl;
  auto t = MakeTable({{"x", I64Col({1, 1, 2, 3, 3})}});
  t->props().ord = {"x"};
  auto d = Distinct(mgr, fl, t, {"x"});
  EXPECT_EQ(d->rows(), 3u);
  EXPECT_EQ(fl.stats.merge_dedups, 1);
  EXPECT_TRUE(d->props().is_key("x"));

  auto t2 = MakeTable({{"x", I64Col({3, 1, 3, 2, 1})}});
  auto d2 = Distinct(mgr, fl, t2, {"x"});
  EXPECT_EQ(d2->rows(), 3u);
  EXPECT_EQ(fl.stats.hash_dedups, 1);
  EXPECT_EQ(d2->col("x")->GetI64(0), 3);  // first-occurrence order
}

TEST(OpsTest, DisjointUnionKeyHint) {
  auto a = MakeTable({{"iter", I64Col({1, 3})}});
  a->props().key.insert("iter");
  auto b = MakeTable({{"iter", I64Col({2, 4})}});
  b->props().key.insert("iter");
  auto u = DisjointUnion(a, b, {"iter"});
  EXPECT_EQ(u->rows(), 4u);
  EXPECT_TRUE(u->props().is_key("iter"));
}

TEST(OpsTest, GroupAggrKinds) {
  DocumentManager mgr;
  ExecFlags fl;
  auto t = MakeTable(
      {{"g", I64Col({1, 1, 2, 2, 2})},
       {"v", ItemCol({Item::Int(5), Item::Int(3), Item::Int(10),
                      Item::Int(20), Item::Int(30)})}});
  t->props().ord = {"g"};
  auto cnt = GroupAggr(mgr, fl, t, "g", "", AggKind::kCount);
  EXPECT_EQ(cnt->col("agg")->GetItem(0).i, 2);
  EXPECT_EQ(cnt->col("agg")->GetItem(1).i, 3);
  auto sum = GroupAggr(mgr, fl, t, "g", "v", AggKind::kSum);
  EXPECT_EQ(sum->col("agg")->GetItem(1).i, 60);
  auto mn = GroupAggr(mgr, fl, t, "g", "v", AggKind::kMin);
  EXPECT_EQ(mn->col("agg")->GetItem(0).i, 3);
  auto mx = GroupAggr(mgr, fl, t, "g", "v", AggKind::kMax);
  EXPECT_EQ(mx->col("agg")->GetItem(1).i, 30);
  auto avg = GroupAggr(mgr, fl, t, "g", "v", AggKind::kAvg);
  EXPECT_DOUBLE_EQ(avg->col("agg")->GetItem(1).as_double(), 20.0);
}

TEST(OpsTest, FillGroupsCompletesLoop) {
  DocumentManager mgr;
  ExecFlags fl;
  auto t = MakeTable({{"g", I64Col({2, 2})},
                      {"v", ItemCol({Item::Int(1), Item::Int(1)})}});
  auto cnt = GroupAggr(mgr, fl, t, "g", "", AggKind::kCount);
  auto loop = MakeLoop(3);
  auto full = FillGroups(fl, cnt, "g", "agg", loop, "iter", Item::Int(0));
  ASSERT_EQ(full->rows(), 3u);
  EXPECT_EQ(full->col("agg")->GetItem(0).i, 0);
  EXPECT_EQ(full->col("agg")->GetItem(1).i, 2);
  EXPECT_EQ(full->col("agg")->GetItem(2).i, 0);
  EXPECT_TRUE(full->props().is_dense("g"));
}

// ---------------------------------------------------------------------------
// property soundness: randomized — claimed ord/key/dense must actually hold
// ---------------------------------------------------------------------------

class PropSoundness : public ::testing::TestWithParam<int> {};

void CheckPropsSound(const DocumentManager& mgr, const TablePtr& t) {
  const TableProps& p = t->props();
  // ord
  if (!p.ord.empty()) {
    for (size_t i = 1; i < t->rows(); ++i) {
      for (const std::string& c : p.ord) {
        const ColumnPtr& col = t->col(c);
        int64_t cmp;
        if (col->is_i64())
          cmp = col->GetI64(i - 1) - col->GetI64(i);
        else
          cmp = OrderCompare(mgr, col->GetItem(i - 1), col->GetItem(i));
        if (cmp < 0) break;
        ASSERT_LE(cmp, 0) << "ord violated on " << c;
      }
    }
  }
  // dense
  for (const std::string& c : p.dense) {
    const ColumnPtr& col = t->col(c);
    for (size_t i = 0; i < t->rows(); ++i)
      ASSERT_EQ(col->GetI64(i), static_cast<int64_t>(i) + 1)
          << "dense violated on " << c;
  }
  // key
  for (const std::string& c : p.key) {
    std::unordered_set<int64_t> seen;
    const ColumnPtr& col = t->col(c);
    for (size_t i = 0; i < t->rows(); ++i) {
      int64_t v = col->is_i64() ? col->GetI64(i) : col->GetItem(i).i;
      ASSERT_TRUE(seen.insert(v).second) << "key violated on " << c;
    }
  }
  // const
  for (const auto& [c, v] : p.constants) {
    const ColumnPtr& col = t->col(c);
    for (size_t i = 0; i < t->rows(); ++i)
      ASSERT_TRUE(col->GetItem(i) == v ||
                  (col->is_i64() && v.kind == ItemKind::kInt &&
                   col->GetI64(i) == v.i))
          << "const violated on " << c;
  }
}

TEST_P(PropSoundness, OperatorChainsKeepPropertiesSound) {
  std::mt19937 rng(GetParam());
  DocumentManager mgr;
  ExecFlags fl;
  fl.positional = rng() % 2;
  fl.order_opt = rng() % 2;

  // Random base tables.
  int n = 5 + rng() % 40;
  std::vector<int64_t> iters, pos;
  std::vector<Item> items;
  for (int i = 0; i < n; ++i) {
    iters.push_back(1 + rng() % 6);
    pos.push_back(1 + rng() % 4);
    items.push_back(Item::Int(rng() % 10));
  }
  std::sort(iters.begin(), iters.end());
  auto t = MakeTable({{"iter", I64Col(iters)},
                      {"pos", I64Col(pos)},
                      {"item", ItemCol(items)}});
  t->props().ord = {"iter"};
  CheckPropsSound(mgr, t);

  auto loop = MakeLoop(6);
  for (int step = 0; step < 8; ++step) {
    switch (rng() % 8) {
      case 0: t = Sort(mgr, fl, t, {"iter", "pos"}); break;
      case 1: t = RowNum(mgr, fl, t, "rn" + std::to_string(step), {"pos"},
                         "iter");
        break;
      case 2: t = SelectEqI64(fl, t, "iter", 1 + rng() % 6); break;
      case 3: t = Distinct(mgr, fl, t, {"iter", "pos"}); break;
      case 4:
        t = EquiJoinI64(fl, t, "iter", loop, "iter", {{"iter", "l" +
                        std::to_string(step)}});
        break;
      case 5: t = AppendConst(t, "c" + std::to_string(step), Item::Int(7));
        break;
      case 6: t = Project(t, {{"iter", "iter"}, {"pos", "pos"},
                              {"item", "item"}});
        break;
      case 7: {
        auto agg = GroupAggr(mgr, fl, t, "iter", "item", AggKind::kMax);
        CheckPropsSound(mgr, agg);
        break;
      }
    }
    CheckPropsSound(mgr, t);
    if (t->rows() == 0) break;
  }
}

INSTANTIATE_TEST_SUITE_P(Random, PropSoundness, ::testing::Range(1, 25));

}  // namespace
}  // namespace alg
}  // namespace mxq
