// Chaos harness for the governed serving + ingestion surface
// (docs/robustness.md "Ingestion"): concurrent sessions run queries,
// governed fragment appends, and CancelAll storms while every fault point
// in the system is swept with forced cancellations and simulated
// allocation failures. The contract under test:
//
//   * every failure surfaces as a typed Status (kCancelled /
//     kDeadlineExceeded / kResourceExhausted) — never a crash, abort, or
//     silent wrong answer;
//   * every container still passes DocumentContainer::CheckInvariants()
//     after the storm — a faulted shred rolls back, it never leaves a
//     half-encoded tree;
//   * after disarming, query results are byte-identical to a never-faulted
//     run, and a previously faulted fragment append succeeds cleanly.
//
// Run under MXQ_SANITIZE=thread and MXQ_SANITIZE=address,undefined as the
// chaos leg of tests/run_matrix.sh (MXQ_THREADS=4).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "algebra/ops.h"
#include "common/exec_context.h"
#include "common/fault.h"
#include "test_util.h"
#include "xml/serializer.h"
#include "xml/shredder.h"
#include "xquery/engine.h"

namespace mxq {
namespace xq {
namespace {

// Every fault point in the system: execution kernels (PR 6) + the
// ingestion / index-build points added with the atomic-shred work.
constexpr const char* kAllPoints[] = {
    "eval.op",    "atomize",    "filter",     "sort",
    "join.build", "join.probe", "aggr",       "ft.probe",
    "shred.slot", "shred.text", "index.build", "ft.build"};

// Join + aggregation + construction query over the fixture document —
// touches most execution kernels; the nametest-pushdown and ft variants
// below pull in the index.build / ft.build / ft.probe paths.
constexpr const char* kJoinQuery =
    R"(for $p in doc("auction.xml")//person
       let $a := for $t in doc("auction.xml")//auction
                 where $t/buyer/@person = $p/@id return $t
       return <item person="{$p/name/text()}">{count($a)}</item>)";

constexpr const char* kFtQuery =
    R"(for $p in doc("auction.xml")//person
       where ft:contains($p, "kasidit") return $p/name)";

// A query whose plan is a long chain of cheap operators: with a delay
// fault armed on "eval.op" its runtime is (ops x delay), which the retry
// tests use as a controllable slot-holding query.
std::string SlowChainQuery(int terms) {
  std::string q = "0";
  for (int i = 0; i < terms; ++i) q += " + 1";
  return q;
}

// A well-formed fragment for governed appends: enough rows (elements,
// attributes, text) that batched shred polls actually fire.
std::string AppendFragment(int reps) {
  std::string f;
  for (int i = 0; i < reps; ++i)
    f += "<entry id=\"e" + std::to_string(i) + "\"><v>val " +
         std::to_string(i) + "</v><w x=\"y\"/></entry>";
  return f;
}

// Full byte-level snapshot of a container's logical state through the
// public accessors; the rollback tests assert snapshots compare equal.
struct ContainerSnapshot {
  std::vector<int64_t> size, ref, attr_owner;
  std::vector<int32_t> level, frag;
  std::vector<NodeKind> kind;
  std::vector<StrId> attr_qn, attr_val, pi_target, pi_value;
  int64_t node_count = 0;
  DocumentContainer::Watermark mark;

  bool operator==(const ContainerSnapshot& o) const {
    return size == o.size && ref == o.ref && attr_owner == o.attr_owner &&
           level == o.level && frag == o.frag && kind == o.kind &&
           attr_qn == o.attr_qn && attr_val == o.attr_val &&
           pi_target == o.pi_target && pi_value == o.pi_value &&
           node_count == o.node_count && mark.slots == o.mark.slots &&
           mark.attrs == o.mark.attrs && mark.pis == o.mark.pis &&
           mark.next_frag == o.mark.next_frag &&
           mark.attr_appended_in_order == o.mark.attr_appended_in_order;
  }
};

ContainerSnapshot Snapshot(const DocumentContainer& c) {
  ContainerSnapshot s;
  const int64_t n = c.PhysicalSlots();
  for (int64_t rid = 0; rid < n; ++rid) {
    s.size.push_back(c.SizeAtRid(rid));
    s.level.push_back(c.LevelAtRid(rid));
    s.kind.push_back(c.KindAtRid(rid));
    s.ref.push_back(c.RefAt(c.Pre(rid)));
    s.frag.push_back(c.FragAt(c.Pre(rid)));
  }
  for (int64_t row = 0; row < c.AttrCount(); ++row) {
    s.attr_owner.push_back(c.AttrOwnerRid(row));
    s.attr_qn.push_back(c.AttrQn(row));
    s.attr_val.push_back(c.AttrValue(row));
  }
  for (int64_t row = 0; row < c.PICount(); ++row) {
    s.pi_target.push_back(c.PITarget(row));
    s.pi_value.push_back(c.PIValue(row));
  }
  s.node_count = c.NodeCount();
  s.mark = c.Mark();
  return s;
}

// Statuses a governed/chaos failure may legally carry. Everything else
// (Internal, ParseError on well-formed input, aborts) is a bug.
bool IsTypedGovernanceFailure(const Status& st) {
  return st.code() == StatusCode::kCancelled ||
         st.code() == StatusCode::kDeadlineExceeded ||
         st.code() == StatusCode::kResourceExhausted;
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        ShredDocument(
            &mgr_, "auction.xml",
            "<site><people>"
            "<person id=\"person0\"><name>Kasidit</name><age>25</age></person>"
            "<person id=\"person1\"><name>Amara</name><age>30</age></person>"
            "<person id=\"person2\"><name>Bola</name><age>19</age></person>"
            "</people><auctions>"
            "<auction><buyer person=\"person0\"/><price>10</price></auction>"
            "<auction><buyer person=\"person0\"/><price>25</price></auction>"
            "<auction><buyer person=\"person2\"/><price>90</price></auction>"
            "</auctions></site>")
            .ok());
  }
  void TearDown() override { fault::Disarm(); }

  void CheckAllContainers() {
    for (int32_t id = 0; id < mgr_.num_containers(); ++id) {
      Status st = mgr_.container(id)->CheckInvariants();
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
  }

  DocumentManager mgr_;
};

// ---------------------------------------------------------------------------
// The chaos sweep: every fault point x {cancel, mem-exhaust} x workers {1,4}
// ---------------------------------------------------------------------------

class ChaosSweepTest : public ChaosTest,
                       public ::testing::WithParamInterface<int> {};

TEST_P(ChaosSweepTest, FaultStormLeavesTypedStatusesAndIntactContainers) {
  const int kWorkers = GetParam();
  XQueryEngine eng(&mgr_);

  // Unfaulted baselines (also pre-builds nothing: each worker session
  // below races index builds on purpose).
  std::string expected_join, expected_ft;
  {
    Session s = eng.CreateSession();
    s.options().nametest_pushdown = true;
    auto j = s.Run(kJoinQuery);
    ASSERT_TRUE(j.ok()) << j.status().ToString();
    expected_join = *j;
    auto f = s.Run(kFtQuery);
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    expected_ft = *f;
  }

  const std::string fragment = AppendFragment(40);
  const fault::Kind kinds[] = {fault::Kind::kCancel, fault::Kind::kMemExhaust};

  std::atomic<int64_t> wrong{0};

  for (const char* point : kAllPoints) {
    for (fault::Kind kind : kinds) {
      // every=true: concurrent workers all see injections, not just the
      // first execution to reach the point.
      fault::Arm(point, kind, {.every = true});

      std::vector<std::thread> workers;
      workers.reserve(kWorkers);
      for (int w = 0; w < kWorkers; ++w) {
        workers.emplace_back([&, w] {
          Session s = eng.CreateSession();
          s.options().nametest_pushdown = true;  // index.build on the path
          // Each worker owns one transient container for fragment appends
          // (single-writer discipline; queries never touch it).
          DocumentContainer* scratch = mgr_.AcquireTransient();
          for (int iter = 0; iter < 10; ++iter) {
            const int op = (iter + w) % 4;
            if (op == 0 || op == 1) {
              auto r = s.Run(op == 0 ? kJoinQuery : kFtQuery);
              if (!r.ok() && !IsTypedGovernanceFailure(r.status())) ++wrong;
            } else if (op == 2) {
              ShredOptions so;
              ExecContext ctx;  // fresh: stop reasons are sticky per-context
              ctx.Watch(s.options().cancel_group.get());
              so.ctx = &ctx;
              auto r = ShredFragment(scratch, fragment, so);
              if (!r.ok() && !IsTypedGovernanceFailure(r.status())) ++wrong;
              if (!scratch->CheckInvariants().ok()) ++wrong;
            } else {
              s.CancelAll();
            }
          }
          mgr_.ReleaseTransient(scratch);
        });
      }
      for (auto& t : workers) t.join();
      fault::Disarm();

      ASSERT_EQ(wrong.load(), 0)
          << "untyped failure or invariant break at point " << point;
      CheckAllContainers();

      // Recovery: with the fault disarmed the engine serves baseline
      // results byte-identically (fresh session - no stale sticky state).
      Session s = eng.CreateSession();
      s.options().nametest_pushdown = true;
      auto j = s.Run(kJoinQuery);
      ASSERT_TRUE(j.ok()) << point << ": " << j.status().ToString();
      EXPECT_EQ(*j, expected_join) << point;
      auto f = s.Run(kFtQuery);
      ASSERT_TRUE(f.ok()) << point << ": " << f.status().ToString();
      EXPECT_EQ(*f, expected_ft) << point;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Workers, ChaosSweepTest, ::testing::Values(1, 4));

// ---------------------------------------------------------------------------
// Mid-shred fault: byte-identical rollback
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, MidShredFaultRollsContainerBackByteIdentically) {
  DocumentContainer* c = mgr_.AcquireTransient();
  ShredOptions plain;
  ASSERT_TRUE(ShredFragment(c, AppendFragment(5), plain).ok());
  const ContainerSnapshot before = Snapshot(*c);
  ASSERT_TRUE(c->CheckInvariants().ok());

  const std::string big = AppendFragment(60);
  for (const char* point : {"shred.slot", "shred.text"}) {
    // nth=100 (slot) / nth=30 (text): the fault fires mid-document, after
    // real rows landed — the interesting rollback case.
    fault::Arm(point, fault::Kind::kCancel,
               {.nth = std::string(point) == "shred.slot" ? 100 : 30});
    ExecContext ctx;
    ShredOptions so;
    so.ctx = &ctx;
    auto r = ShredFragment(c, big, so);
    EXPECT_GT(fault::InjectionCount(), 0) << point << " never fired";
    ASSERT_FALSE(r.ok()) << point << ": mid-shred fault swallowed";
    EXPECT_EQ(r.status().code(), StatusCode::kCancelled)
        << point << ": " << r.status().ToString();
    fault::Disarm();

    // Byte-identical: every column, counter, and the append frontier.
    EXPECT_TRUE(Snapshot(*c) == before) << point << ": rollback not clean";
    ASSERT_TRUE(c->CheckInvariants().ok());
  }

  // The same append, unfaulted, now succeeds on the rolled-back container.
  ASSERT_TRUE(ShredFragment(c, big, plain).ok());
  ASSERT_TRUE(c->CheckInvariants().ok());
  mgr_.ReleaseTransient(c);
}

TEST_F(ChaosTest, MemExhaustMidShredRollsBackAndReleasesCharges) {
  DocumentContainer* c = mgr_.AcquireTransient();
  const ContainerSnapshot before = Snapshot(*c);

  fault::Arm("shred.slot", fault::Kind::kMemExhaust, {.nth = 80});
  ExecContext ctx;
  ShredOptions so;
  so.ctx = &ctx;
  auto r = ShredFragment(c, AppendFragment(60), so);
  fault::Disarm();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
      << r.status().ToString();
  EXPECT_TRUE(Snapshot(*c) == before);
  // The rollback handed every charged byte back to the account.
  EXPECT_EQ(ctx.mem()->live_bytes(), 0);
  mgr_.ReleaseTransient(c);
}

TEST_F(ChaosTest, GovernedShredChargesMemAccount) {
  DocumentContainer* c = mgr_.AcquireTransient();
  ExecContext ctx;
  ShredOptions so;
  so.ctx = &ctx;
  auto r = ShredFragment(c, AppendFragment(50), so);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // ~25 bytes per node row: 50 entries x 4 nodes + text + attrs each.
  EXPECT_GT(ctx.mem()->live_bytes(), 1000);
  EXPECT_EQ(ctx.mem()->live_bytes(), ctx.mem()->peak_bytes());
  mgr_.ReleaseTransient(c);
}

TEST_F(ChaosTest, ShredHonorsMemoryBudget) {
  DocumentContainer* c = mgr_.AcquireTransient();
  const ContainerSnapshot before = Snapshot(*c);
  ExecContext ctx;
  ctx.set_memory_budget(512);  // far below the fragment's footprint
  ShredOptions so;
  so.ctx = &ctx;
  auto r = ShredFragment(c, AppendFragment(200), so);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
      << r.status().ToString();
  EXPECT_TRUE(Snapshot(*c) == before);
  mgr_.ReleaseTransient(c);
}

TEST_F(ChaosTest, ShredHonorsCancelAndDeadline) {
  DocumentContainer* c = mgr_.AcquireTransient();
  {
    ExecContext ctx;
    ctx.Cancel();  // pre-cancelled: the first poll must observe it
    ShredOptions so;
    so.ctx = &ctx;
    auto r = ShredFragment(c, AppendFragment(200), so);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  }
  {
    ExecContext ctx;
    ctx.set_deadline(std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1));  // already expired
    ShredOptions so;
    so.ctx = &ctx;
    auto r = ShredFragment(c, AppendFragment(200), so);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
        << r.status().ToString();
  }
  EXPECT_EQ(c->PhysicalSlots(), 0);
  mgr_.ReleaseTransient(c);
}

// ---------------------------------------------------------------------------
// Faulted index builds leave "absent, rebuild next call"
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, FaultedIndexBuildRecoversOnNextCall) {
  XQueryEngine eng(&mgr_);
  Session s = eng.CreateSession();
  s.options().nametest_pushdown = true;
  auto q = s.Prepare(R"(count(doc("auction.xml")//person))");
  ASSERT_TRUE(q.ok());

  // Baseline on a *different* engine-session would cache the index; build
  // it here once, then invalidate so each armed run rebuilds.
  auto base = s.Execute(*q);
  ASSERT_TRUE(base.ok());
  const std::string expected = base->Serialize(mgr_);

  DocumentContainer* doc = *mgr_.GetDocument("auction.xml");
  for (fault::Kind kind : {fault::Kind::kCancel, fault::Kind::kMemExhaust}) {
    doc->InvalidateIndexes();
    fault::Arm("index.build", kind, {.every = true});
    auto r = s.Execute(*q);
    if (fault::InjectionCount() > 0) {
      ASSERT_FALSE(r.ok()) << "index.build fault swallowed";
      EXPECT_TRUE(IsTypedGovernanceFailure(r.status()))
          << r.status().ToString();
    }
    fault::Disarm();
    auto after = s.Execute(*q);
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    EXPECT_EQ(after->Serialize(mgr_), expected);
  }
}

TEST_F(ChaosTest, FaultedFulltextBuildRecoversOnNextCall) {
  // Under MXQ_FT=0 the scan fallback answers without ever building the
  // index, so only the byte-identical recovery (not the rebuild) applies.
  const bool ft_index_on = alg::ExecFlags::FromEnv().fulltext;
  XQueryEngine eng(&mgr_);
  Session s = eng.CreateSession();
  auto q = s.Prepare(kFtQuery);
  ASSERT_TRUE(q.ok());
  auto base = s.Execute(*q);
  ASSERT_TRUE(base.ok());
  const std::string expected = base->Serialize(mgr_);

  DocumentContainer* doc = *mgr_.GetDocument("auction.xml");
  for (fault::Kind kind : {fault::Kind::kCancel, fault::Kind::kMemExhaust}) {
    doc->InvalidateIndexes();
    fault::Arm("ft.build", kind, {.every = true});
    auto r = s.Execute(*q);
    fault::Disarm();
    // The build was abandoned — cache stays empty — and the sticky stop
    // reason surfaced as a typed Status (the probe itself checkpoints).
    if (!r.ok()) EXPECT_TRUE(IsTypedGovernanceFailure(r.status()));
    EXPECT_EQ(doc->fulltext_index_if_built(), nullptr)
        << "abandoned ft build left a poisoned cache entry";
    auto after = s.Execute(*q);
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    EXPECT_EQ(after->Serialize(mgr_), expected);
    if (ft_index_on) EXPECT_NE(doc->fulltext_index_if_built(), nullptr);
  }
}

// ---------------------------------------------------------------------------
// ExecuteWithRetry: admission sheds become bounded extra latency
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, ExecuteWithRetrySucceedsAfterTransientShed) {
  XQueryEngine eng(&mgr_);
  GovernanceOptions gov;
  gov.max_in_flight = 1;
  gov.max_queue = 0;  // no queueing: a busy slot sheds immediately
  eng.set_governance(gov);
  auto slow = eng.Prepare(SlowChainQuery(50));
  ASSERT_TRUE(slow.ok());
  auto quick = eng.Prepare("1 + 1");
  ASSERT_TRUE(quick.ok());

  // Occupy the only slot with one delayed run (>= 50 ms), then retry
  // against it: the retrier sheds, backs off, and succeeds once the slot
  // frees. The retry budget (500 x <= 10 ms) dwarfs any plausible hold
  // time, so the outcome is deterministic even on a loaded single core.
  fault::Arm("eval.op", fault::Kind::kDelay, {.every = true, .delay_us = 1000});
  std::thread holder([&] {
    Session s = eng.CreateSession();
    ASSERT_TRUE(s.Execute(*slow).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  Session s = eng.CreateSession();
  RetryPolicy policy;
  policy.max_attempts = 500;
  policy.initial_backoff_ms = 2;
  policy.max_backoff_ms = 10;
  auto r = s.ExecuteWithRetry(*quick, policy);
  holder.join();
  fault::Disarm();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->Serialize(mgr_), "2");
}

TEST_F(ChaosTest, ExecuteWithRetryGivesUpAfterMaxAttempts) {
  XQueryEngine eng(&mgr_);
  GovernanceOptions gov;
  gov.max_in_flight = 1;
  gov.max_queue = 0;
  eng.set_governance(gov);
  auto slow = eng.Prepare(SlowChainQuery(100));
  ASSERT_TRUE(slow.ok());
  auto quick = eng.Prepare("1 + 1");
  ASSERT_TRUE(quick.ok());

  std::atomic<bool> stop{false};
  fault::Arm("eval.op", fault::Kind::kDelay, {.every = true, .delay_us = 1000});
  std::thread holder([&] {
    Session s = eng.CreateSession();
    while (!stop.load()) ASSERT_TRUE(s.Execute(*slow).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  Session s = eng.CreateSession();
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 2;
  const int64_t requests_before = eng.governance_stats().requests;
  auto r = s.ExecuteWithRetry(*quick, policy);
  const int64_t attempts = eng.governance_stats().requests - requests_before;
  stop.store(true);
  holder.join();
  fault::Disarm();

  if (!r.ok()) {
    // Gave up: the typed shed Status, after exactly max_attempts tries.
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(attempts, 3);
  } else {
    // A slot freed during a backoff window — legal; bounded attempts.
    EXPECT_LE(attempts, 3);
  }
}

TEST_F(ChaosTest, ExecuteWithRetryDoesNotRetryDeterministicFailures) {
  XQueryEngine eng(&mgr_);
  Session s = eng.CreateSession();
  // Memory-budget kResourceExhausted is deterministic: one attempt only.
  testutil::RandomDoc(&mgr_, 30000, /*seed=*/7);
  auto q = eng.Prepare(R"(count(doc("rand7")//a))");
  ASSERT_TRUE(q.ok());
  s.options().memory_budget_bytes = 4096;
  const int64_t requests_before = eng.governance_stats().requests;
  RetryPolicy policy;
  policy.max_attempts = 10;
  auto r = s.ExecuteWithRetry(*q, policy);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(eng.governance_stats().requests - requests_before, 1)
      << "deterministic failure was retried";

  // NotFound and parse-level failures: also a single attempt.
  auto bad = eng.Prepare(R"(doc("nope.xml"))");
  ASSERT_TRUE(bad.ok());
  const int64_t before2 = eng.governance_stats().requests;
  auto r2 = s.ExecuteWithRetry(*bad, policy);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(eng.governance_stats().requests - before2, 1);
}

}  // namespace
}  // namespace xq
}  // namespace mxq
