// Differential harness for the kernel-toggle matrix.
//
// The engine now carries four independent execution-kernel toggles
// (radix_join, sel_vectors, dense_sort, dict_items) on top of the thread
// width, and every one of them promises bit-identical results to the
// legacy serial paths. Per-PR spot checks do not scale to that matrix, so
// this suite proves it systematically: a seeded random query generator
// (XMark-schema templates with randomized literals/paths, plus generic
// queries over random XML) runs every query under all 16 toggle
// combinations x {threads 1, 4} and asserts the serialized result of each
// configuration is byte-identical to the legacy serial baseline (all
// kernels off, threads=1) — which is itself checked against the naive
// tree-walking interpreter in src/baseline/ (the same dialect, evaluated
// the first-generation way), where the query is expressible, i.e. for
// every template here.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "baseline/interpreter.h"
#include "test_util.h"
#include "xmark/generator.h"
#include "xmark/queries.h"
#include "xml/shredder.h"
#include "xquery/engine.h"

namespace mxq {
namespace {

struct Config {
  bool radix, selvec, dense, dict;
  int threads;

  std::string Label() const {
    return std::string("radix=") + (radix ? "1" : "0") +
           " selvec=" + (selvec ? "1" : "0") + " dense=" + (dense ? "1" : "0") +
           " dict=" + (dict ? "1" : "0") + " threads=" + std::to_string(threads);
  }
};

/// All 16 toggle combinations, each at serial and parallel width.
std::vector<Config> AllConfigs() {
  std::vector<Config> v;
  for (int mask = 0; mask < 16; ++mask)
    for (int threads : {1, 4})
      v.push_back({(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0,
                   (mask & 8) != 0, threads});
  return v;
}

xq::EvalOptions OptionsFor(const Config& c) {
  xq::EvalOptions eo;
  eo.alg.radix_join = c.radix;
  eo.alg.sel_vectors = c.selvec;
  eo.alg.dense_sort = c.dense;
  eo.alg.dict_items = c.dict;
  eo.alg.threads = c.threads;
  return eo;
}

/// Runs `query` under every configuration and asserts bit-identical
/// serialized output; returns the baseline serialization. When `naive` is
/// non-null the baseline is additionally checked against the interpreter.
void RunMatrix(DocumentManager* mgr, const std::string& query,
               baseline::NaiveInterpreter* naive) {
  xq::XQueryEngine eng(mgr);
  auto compiled = eng.Compile(query);
  ASSERT_TRUE(compiled.ok()) << query << "\n" << compiled.status().ToString();

  // Legacy serial baseline: every kernel off, threads=1.
  Config base{false, false, false, false, 1};
  xq::EvalOptions beo = OptionsFor(base);
  auto bres = eng.Execute(*compiled, &beo);
  ASSERT_TRUE(bres.ok()) << query << "\n" << bres.status().ToString();
  const std::string expect = bres->Serialize(*mgr);

  if (naive != nullptr) {
    auto oracle = naive->Run(query);
    ASSERT_TRUE(oracle.ok()) << query << "\n" << oracle.status().ToString();
    EXPECT_EQ(expect, *oracle) << "legacy baseline vs naive oracle\n" << query;
  }

  for (const Config& c : AllConfigs()) {
    xq::EvalOptions eo = OptionsFor(c);
    auto res = eng.Execute(*compiled, &eo);
    ASSERT_TRUE(res.ok()) << query << " [" << c.Label() << "]\n"
                          << res.status().ToString();
    EXPECT_EQ(res->Serialize(*mgr), expect)
        << query << "\n[" << c.Label() << "]";
    // The dict toggle must actually engage on value-join queries (spot
    // sanity that the matrix exercises what it claims to): checked loosely
    // — only that dict stats never appear with the toggle off.
    if (!c.dict) EXPECT_EQ(res->exec_stats().dict_joins, 0) << c.Label();
  }
}

// ---------------------------------------------------------------------------
// seeded random query generation over the XMark schema
// ---------------------------------------------------------------------------

class XMarkQueryGen {
 public:
  explicit XMarkQueryGen(uint32_t seed) : rng_(seed) {}

  std::string Next() {
    switch (rng_() % 10) {
      case 0:  // structural aggregate over a random region/section
        return "count(doc(\"auction.xml\")/site" + Section() + ")";
      case 1:  // exact-match value filter with a randomized literal
        return "for $p in doc(\"auction.xml\")/site/people/person where "
               "$p/@id = \"person" + Num(30) + "\" return $p/name/text()";
      case 2:  // numeric selection (Q5 shape, random threshold)
        return "count(for $i in doc(\"auction.xml\")/site/closed_auctions/"
               "closed_auction where $i/price/text() >= " + Num(80) +
               " return $i/price)";
      case 3: {  // value join (Q8 core, random person attribute)
        const char* role = rng_() % 2 ? "buyer" : "seller";
        return std::string("for $p in doc(\"auction.xml\")/site/people/person "
               "let $a := for $t in doc(\"auction.xml\")/site/closed_auctions/"
               "closed_auction where $t/") + role +
               "/@person = $p/@id return $t "
               "return <item person=\"{$p/name/text()}\">{count($a)}</item>";
      }
      case 4:  // theta join with randomized factor (Q11 shape)
        return "for $p in doc(\"auction.xml\")/site/people/person "
               "let $l := for $i in doc(\"auction.xml\")/site/open_auctions/"
               "open_auction/initial where $p/profile/@income > " +
               Num(9) + "000 * exactly-one($i/text()) return $i "
               "return <items>{count($l)}</items>";
      case 5:  // distinct-values over a value-rich attribute
        return std::string("distinct-values(doc(\"auction.xml\")/site/people/"
               "person/profile/interest/@category)");
      case 6:  // existential quantifier (semijoin shape)
        return "for $p in doc(\"auction.xml\")/site/people/person where "
               "some $t in doc(\"auction.xml\")/site/closed_auctions/"
               "closed_auction satisfies $t/buyer/@person = $p/@id "
               "return $p/@id";
      case 7:  // string scan with randomized needle (Q14 shape)
        return "for $i in doc(\"auction.xml\")/site//item where "
               "contains(string(exactly-one($i/description)), \"" +
               std::string(rng_() % 2 ? "gold" : "a") +
               "\") return $i/name/text()";
      case 8:  // order by over a value column (Q19 shape)
        return "for $b in doc(\"auction.xml\")/site/regions//item "
               "let $k := $b/location/text() "
               "order by zero-or-one($b/location) ascending "
               "return <item name=\"{$b/name/text()}\">{$k}</item>";
      default:  // construction + nested aggregation over a random section
        return "for $r in doc(\"auction.xml\")/site/regions return "
               "<region>{count($r//item)}</region>";
    }
  }

 private:
  std::string Section() {
    switch (rng_() % 5) {
      case 0: return "/people/person";
      case 1: return "/open_auctions/open_auction/bidder";
      case 2: return "/regions//item";
      case 3: return "//keyword";
      default: return "/closed_auctions/closed_auction";
    }
  }
  std::string Num(int limit) { return std::to_string(rng_() % limit); }

  std::mt19937 rng_;
};

class DifferentialTest : public ::testing::Test {};

/// One randomized XMark-fragment document per seed (cached; shredding is
/// the expensive part of the suite).
DocumentManager* XMarkManagerFor(uint32_t seed) {
  static std::vector<std::pair<uint32_t, DocumentManager*>> cache;
  for (auto& [s, m] : cache)
    if (s == seed) return m;
  auto* mgr = new DocumentManager();
  xmark::XMarkOptions opts;
  opts.scale = 0.002;
  opts.seed = seed;
  auto r = ShredDocument(mgr, "auction.xml", xmark::GenerateXMark(opts));
  assert(r.ok());
  (void)r;
  cache.emplace_back(seed, mgr);
  return mgr;
}

TEST_F(DifferentialTest, RandomXMarkQueriesAcrossFullToggleMatrix) {
  for (uint32_t doc_seed : {20260101u, 20260102u}) {
    DocumentManager* mgr = XMarkManagerFor(doc_seed);
    baseline::NaiveInterpreter naive(mgr);
    XMarkQueryGen gen(doc_seed * 31 + 7);
    for (int q = 0; q < 8; ++q) {
      std::string query = gen.Next();
      SCOPED_TRACE("doc seed " + std::to_string(doc_seed) + " query #" +
                   std::to_string(q));
      RunMatrix(mgr, query, &naive);
    }
  }
}

TEST_F(DifferentialTest, FixedJoinHeavyXMarkQueriesAcrossFullToggleMatrix) {
  // The join-recognition queries (Q8-Q12) drive the existential theta-join
  // — the operator whose probe the dictionary parallelized — plus Q1/Q10
  // for value filters and heavy construction over coded columns.
  DocumentManager* mgr = XMarkManagerFor(20260101u);
  baseline::NaiveInterpreter naive(mgr);
  for (int qn : {1, 8, 9, 10, 11, 12}) {
    SCOPED_TRACE("XMark Q" + std::to_string(qn));
    RunMatrix(mgr, xmark::XMarkQuery(qn), &naive);
  }
}

TEST_F(DifferentialTest, GenericRandomDocumentsAcrossFullToggleMatrix) {
  // Random non-XMark documents: small tag alphabet, heavy duplication —
  // different value distributions than the auction schema.
  for (uint32_t seed : {5u, 6u}) {
    auto* mgr = new DocumentManager();
    testutil::RandomDoc(mgr, 600, seed);
    const std::string d = "doc(\"rand" + std::to_string(seed) + "\")";
    baseline::NaiveInterpreter naive(mgr);
    std::vector<std::string> queries = {
        "count(" + d + "//a)",
        "for $x in " + d + "//b where $x/@id = \"n17\" return $x",
        "distinct-values(" + d + "//@id)",
        "for $x in " + d + "//a where some $y in " + d +
            "//c satisfies $y/text() = $x/text() return <hit>{$x/@id}</hit>",
        "for $x in " + d + "//b order by zero-or-one($x/@id) return "
            "<r>{count($x//e)}</r>",
        "sum(for $x in " + d + "//d return count($x//a))",
    };
    for (size_t q = 0; q < queries.size(); ++q) {
      SCOPED_TRACE("rand doc " + std::to_string(seed) + " query #" +
                   std::to_string(q));
      RunMatrix(mgr, queries[q], &naive);
    }
    delete mgr;
  }
}

TEST_F(DifferentialTest, MatrixCoversAllSixteenToggleConfigurations) {
  // Self-check of the harness: the matrix enumerates every toggle
  // combination at both widths, no duplicates.
  auto configs = AllConfigs();
  EXPECT_EQ(configs.size(), 32u);
  std::vector<int> seen;
  for (const Config& c : configs)
    seen.push_back((c.radix ? 1 : 0) | (c.selvec ? 2 : 0) | (c.dense ? 4 : 0) |
                   (c.dict ? 8 : 0) | (c.threads == 4 ? 16 : 0));
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < 32; ++i) EXPECT_EQ(seen[i], i);
}

}  // namespace
}  // namespace mxq
