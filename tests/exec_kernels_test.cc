// Equivalence + stats tests for the cache-conscious execution kernels:
// radix-partitioned joins vs. the legacy hash join, counting sorts vs.
// std::stable_sort, and selection-vector filters vs. eager materialization.
// Every kernel must produce bit-identical tables (same rows, same order,
// same columns) as its pre-kernel fallback on randomized inputs, and the
// ExecStats counters must show the fast paths actually being taken.
//
// The parallel-determinism suite at the bottom holds the partition-parallel
// execution core (common/thread_pool.h + the threaded kernels) to the same
// bar: at threads=4 every kernel must be bit-identical to its threads=1
// run, and par_tasks must show the parallel paths actually fanning out.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <random>

#include "algebra/ops.h"
#include "algebra/radix.h"
#include "common/counting_sort.h"
#include "common/item_dict.h"
#include "common/thread_pool.h"
#include "test_util.h"

namespace mxq {
namespace alg {
namespace {

ColumnPtr I64Col(std::vector<int64_t> v) {
  return Column::MakeI64(std::move(v));
}

Item S(DocumentManager& mgr, const std::string& s) {
  return Item::String(mgr.strings().Intern(s));
}

Item U(DocumentManager& mgr, const std::string& s) {
  return Item::Untyped(mgr.strings().Intern(s));
}

/// Full logical-content comparison (names, row order, values).
void ExpectSameTable(const TablePtr& a, const TablePtr& b) {
  ASSERT_EQ(a->rows(), b->rows());
  ASSERT_EQ(a->num_cols(), b->num_cols());
  for (size_t c = 0; c < a->num_cols(); ++c) {
    EXPECT_EQ(a->name(c), b->name(c));
    for (size_t r = 0; r < a->rows(); ++r) {
      Item x = a->col(c)->GetItem(r), y = b->col(c)->GetItem(r);
      ASSERT_EQ(x.kind, y.kind) << "col " << a->name(c) << " row " << r;
      ASSERT_EQ(x.i, y.i) << "col " << a->name(c) << " row " << r;
    }
  }
}

std::vector<int64_t> RandomKeys(size_t n, int64_t lo, int64_t hi,
                                uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int64_t> d(lo, hi);
  std::vector<int64_t> v(n);
  for (auto& x : v) x = d(rng);
  return v;
}

ExecFlags LegacyFlags() {
  ExecFlags fl;
  fl.radix_join = false;
  fl.sel_vectors = false;
  fl.dense_sort = false;
  fl.dict_items = false;
  return fl;
}

// ---------------------------------------------------------------------------
// radix hash table unit behaviour
// ---------------------------------------------------------------------------

TEST(RadixHashTableTest, FindsAllDuplicatesInBuildOrder) {
  std::vector<int64_t> keys = {7, -3, 7, 0, 7, -3};
  RadixHashTable ht{std::span<const int64_t>(keys)};
  std::vector<uint32_t> rows;
  ht.ForEach(int64_t{7}, [&](uint32_t r) { rows.push_back(r); });
  EXPECT_EQ(rows, (std::vector<uint32_t>{0, 2, 4}));
  rows.clear();
  ht.ForEach(int64_t{-3}, [&](uint32_t r) { rows.push_back(r); });
  EXPECT_EQ(rows, (std::vector<uint32_t>{1, 5}));
  EXPECT_TRUE(ht.Contains(int64_t{0}));
  EXPECT_FALSE(ht.Contains(int64_t{42}));
}

TEST(RadixHashTableTest, MultiplePartitionsOnLargeBuild) {
  const size_t n = 3 * RadixHashTable::kPartitionTarget;
  auto keys = RandomKeys(n, -1000000, 1000000, 99);
  RadixHashTable ht{std::span<const int64_t>(keys)};
  EXPECT_GT(ht.partitions(), 1u);
  // Every build row is reachable under its own key.
  for (size_t i = 0; i < n; i += 97) {
    bool found = false;
    ht.ForEach(keys[i], [&](uint32_t r) { found |= (r == i); });
    EXPECT_TRUE(found) << i;
  }
}

TEST(RadixHashTableTest, EmptyBuild) {
  RadixHashTable ht{std::span<const int64_t>()};
  EXPECT_EQ(ht.partitions(), 0u);
  EXPECT_FALSE(ht.Contains(int64_t{1}));
}

// ---------------------------------------------------------------------------
// join equivalence: radix vs legacy hash join
// ---------------------------------------------------------------------------

struct JoinCase {
  size_t nl, nr;
  int64_t lo, hi;  // key range (controls duplicate rate / density)
};

class JoinEquivalence : public ::testing::TestWithParam<JoinCase> {};

TEST_P(JoinEquivalence, EquiJoinI64MatchesLegacy) {
  auto [nl, nr, lo, hi] = GetParam();
  auto left = MakeTable({{"k", I64Col(RandomKeys(nl, lo, hi, 1))},
                         {"payload", I64Col(RandomKeys(nl, 0, 1 << 20, 2))}});
  auto right = MakeTable({{"k", I64Col(RandomKeys(nr, lo, hi, 3))},
                          {"v", I64Col(RandomKeys(nr, 0, 1 << 20, 4))}});
  ExecFlags radix;  // defaults: all kernels on
  ExecFlags legacy = LegacyFlags();
  auto jr = EquiJoinI64(radix, left, "k", right, "k", {{"v", "v"}});
  auto jl = EquiJoinI64(legacy, left, "k", right, "k", {{"v", "v"}});
  ExpectSameTable(jr, jl);
  if (nr > 0) {
    EXPECT_EQ(radix.stats.radix_joins, 1);
    EXPECT_GE(radix.stats.radix_partitions, 1);
    EXPECT_EQ(radix.stats.hash_joins, 0);
    EXPECT_EQ(legacy.stats.hash_joins, 1);
    EXPECT_EQ(legacy.stats.radix_joins, 0);
  }
}

TEST_P(JoinEquivalence, SemiAndAntiJoinMatchLegacy) {
  auto [nl, nr, lo, hi] = GetParam();
  auto left = MakeTable({{"k", I64Col(RandomKeys(nl, lo, hi, 5))},
                         {"p", I64Col(RandomKeys(nl, 0, 99, 6))}});
  auto right = MakeTable({{"k", I64Col(RandomKeys(nr, lo, hi, 7))}});
  for (bool anti : {false, true}) {
    ExecFlags radix;
    ExecFlags legacy = LegacyFlags();
    auto sr = SemiJoinI64(radix, left, "k", right, "k", anti);
    auto sl = SemiJoinI64(legacy, left, "k", right, "k", anti);
    ExpectSameTable(sr, sl);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, JoinEquivalence,
    ::testing::Values(JoinCase{0, 0, 1, 1},            // both empty
                      JoinCase{100, 0, 1, 50},         // empty build
                      JoinCase{0, 100, 1, 50},         // empty probe
                      JoinCase{500, 300, 1, 40},       // heavy duplicates
                      JoinCase{400, 400, 1, 400},      // dense-ish keys
                      JoinCase{300, 300, -1000000000, 1000000000},  // sparse
                      JoinCase{9000, 7000, 1, 5000}));  // multi-partition

TEST(JoinEquivalenceTest, EquiJoinItemMatchesLegacy) {
  DocumentManager mgr;
  std::mt19937 rng(11);
  std::vector<Item> lv, rv;
  for (int i = 0; i < 400; ++i) {
    int r = static_cast<int>(rng() % 3);
    int64_t k = static_cast<int64_t>(rng() % 60);
    if (r == 0)
      lv.push_back(Item::Int(k));
    else if (r == 1)
      lv.push_back(Item::Double(static_cast<double>(k)));
    else
      lv.push_back(S(mgr, "s" + std::to_string(k)));
  }
  for (int i = 0; i < 300; ++i) {
    int r = static_cast<int>(rng() % 3);
    int64_t k = static_cast<int64_t>(rng() % 60);
    if (r == 0)
      rv.push_back(Item::Int(k));
    else if (r == 1)
      rv.push_back(Item::Double(static_cast<double>(k)));
    else
      rv.push_back(S(mgr, "s" + std::to_string(k)));
  }
  auto left = MakeTable({{"v", Column::MakeItem(lv)}});
  auto right = MakeTable({{"v", Column::MakeItem(rv)},
                          {"sid", I64Col(RandomKeys(rv.size(), 1, 1000, 12))}});
  ExecFlags radix;
  ExecFlags legacy = LegacyFlags();
  auto jr = EquiJoinItem(mgr, radix, left, "v", right, "v", {{"sid", "sid"}});
  auto jl = EquiJoinItem(mgr, legacy, left, "v", right, "v", {{"sid", "sid"}});
  ExpectSameTable(jr, jl);
  EXPECT_EQ(radix.stats.radix_joins, 1);
  EXPECT_EQ(legacy.stats.hash_joins, 1);
}

// ---------------------------------------------------------------------------
// dictionary-compacted item columns (common/item_dict.h, ColType::kDict)
// ---------------------------------------------------------------------------

ExecFlags DictOffFlags() {
  ExecFlags fl;
  fl.dict_items = false;
  return fl;
}

/// Random atomized values across every coercion edge the dictionary must
/// reproduce: ints, doubles (incl. NaN), numeric-looking strings, untyped
/// atomics, bools, empty strings and empty sequences.
std::vector<Item> RandomAtoms(DocumentManager& mgr, size_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<Item> v(n);
  for (auto& it : v) {
    int64_t k = static_cast<int64_t>(rng() % 40);
    switch (rng() % 8) {
      case 0: it = Item::Int(k); break;
      case 1: it = Item::Double(static_cast<double>(k)); break;
      case 2: it = Item::Double(static_cast<double>(k) + 0.5); break;
      case 3: it = S(mgr, std::to_string(k)); break;  // numeric-looking
      case 4: it = S(mgr, "s" + std::to_string(k)); break;
      case 5: it = U(mgr, std::to_string(k)); break;
      case 6:
        it = rng() % 8 == 0 ? Item::Double(std::nan(""))
                            : Item::Bool(k % 2 == 0);
        break;
      default: it = rng() % 6 == 0 ? S(mgr, "") : Item(); break;
    }
  }
  return v;
}

TEST(ItemDictTest, CodesMirrorHashItemAndCompareItems) {
  // The two identities the dict-coded join relies on for bit-identical
  // match sets: HashCode == HashItem (same buckets ever get verified) and
  // EqualCodes == CompareItems (same verification outcome). Checked over
  // every kind-coercion edge, pairwise.
  DocumentManager mgr;
  ItemDict& dict = mgr.item_dict();
  std::vector<Item> atoms = {
      Item(),
      Item::Bool(true),
      Item::Bool(false),
      Item::Int(0),
      Item::Int(1),
      Item::Int(20),
      Item::Int(-20),
      Item::Int(int64_t{1} << 60),  // outside the inline-int range
      Item::Int((int64_t{1} << 53) + 1),
      Item::Double(20.0),
      Item::Double(0.0),
      Item::Double(-0.0),
      Item::Double(2.5),
      Item::Double(std::nan("")),
      Item::Double(static_cast<double>(int64_t{1} << 53)),
      S(mgr, "20"),
      S(mgr, " 20 "),
      S(mgr, "20.0"),
      S(mgr, "abc"),
      S(mgr, ""),
      U(mgr, "20"),
      U(mgr, "abc"),
      U(mgr, ""),
      S(mgr, "0"),
      S(mgr, "1"),
  };
  auto extra = RandomAtoms(mgr, 60, 911);
  atoms.insert(atoms.end(), extra.begin(), extra.end());

  std::vector<ItemDict::Code> codes(atoms.size());
  for (size_t i = 0; i < atoms.size(); ++i) {
    codes[i] = dict.Encode(mgr.strings(), atoms[i]);
    Item back = dict.Decode(codes[i]);
    EXPECT_EQ(back.kind, atoms[i].kind) << i;
    EXPECT_EQ(back.i, atoms[i].i) << i;  // bit-faithful decode
    EXPECT_EQ(dict.HashCode(codes[i]), HashItem(mgr, atoms[i])) << i;
  }
  for (size_t i = 0; i < atoms.size(); ++i)
    for (size_t j = 0; j < atoms.size(); ++j)
      EXPECT_EQ(dict.EqualCodes(codes[i], codes[j]),
                CompareItems(mgr, atoms[i], CmpOp::kEq, atoms[j]))
          << i << " vs " << j;
}

TEST(ItemDictTest, InlineIntCodesAreOrderPreserving) {
  DocumentManager mgr;
  ItemDict& dict = mgr.item_dict();
  int64_t prev_code = 0;
  bool first = true;
  for (int64_t v : {int64_t{-100000}, int64_t{-7}, int64_t{0}, int64_t{3},
                    int64_t{1} << 40}) {
    int64_t code = dict.Encode(mgr.strings(), Item::Int(v));
    if (!first) EXPECT_GT(code, prev_code) << v;
    prev_code = code;
    first = false;
  }
  EXPECT_EQ(dict.entries(), 0u);  // inline classes never allocate entries
}

TEST(DictJoinTest, EquiJoinItemDictMatchesLegacyOnCoercionEdges) {
  DocumentManager mgr;
  auto lv = RandomAtoms(mgr, 1500, 21);
  auto rv = RandomAtoms(mgr, 1100, 22);
  auto left = MakeTable({{"v", Column::MakeItem(lv)}});
  auto right =
      MakeTable({{"v", Column::MakeItem(rv)},
                 {"sid", I64Col(RandomKeys(rv.size(), 1, 1000, 23))}});
  ExecFlags dict;  // defaults: dict_items on
  ExecFlags nodict = DictOffFlags();
  ExecFlags legacy = LegacyFlags();
  auto jd = EquiJoinItem(mgr, dict, left, "v", right, "v", {{"sid", "sid"}});
  auto jn = EquiJoinItem(mgr, nodict, left, "v", right, "v", {{"sid", "sid"}});
  auto jl = EquiJoinItem(mgr, legacy, left, "v", right, "v", {{"sid", "sid"}});
  ExpectSameTable(jd, jn);
  ExpectSameTable(jd, jl);
  EXPECT_EQ(dict.stats.dict_joins, 1);
  EXPECT_EQ(nodict.stats.dict_joins, 0);
  // The dict-coded join moves exactly half the key-column bytes.
  EXPECT_EQ(2 * dict.stats.join_key_bytes, nodict.stats.join_key_bytes);
}

TEST(DictJoinTest, SemiJoinItemDictMatchesLegacy) {
  DocumentManager mgr;
  auto lv = RandomAtoms(mgr, 1200, 31);
  auto rv = RandomAtoms(mgr, 700, 32);
  auto left = MakeTable({{"v", Column::MakeItem(lv)},
                         {"p", I64Col(RandomKeys(lv.size(), 0, 99, 33))}});
  auto right = MakeTable({{"v", Column::MakeItem(rv)}});
  for (bool anti : {false, true}) {
    ExecFlags dict;
    ExecFlags nodict = DictOffFlags();
    ExecFlags legacy = LegacyFlags();
    auto sd = SemiJoinItem(mgr, dict, left, "v", right, "v", anti);
    auto sn = SemiJoinItem(mgr, nodict, left, "v", right, "v", anti);
    auto sl = SemiJoinItem(mgr, legacy, left, "v", right, "v", anti);
    ExpectSameTable(sd, sn);
    ExpectSameTable(sd, sl);
    EXPECT_EQ(dict.stats.dict_joins, 1);
  }
}

TEST(DictColumnTest, AtomizeGatherAndUnionMoveCodesAndDecodeFaithfully) {
  DocumentManager mgr;
  auto* doc = testutil::RandomDoc(&mgr, 400, 41);
  std::vector<Item> nodes;
  for (int64_t p = 0; p < doc->LogicalSlots(); ++p)
    if (!doc->IsUnused(p)) nodes.push_back(Item::Node(doc->id(), p));
  auto t = MakeTable({{"v", Column::MakeItem(nodes)},
                      {"iter", I64Col(RandomKeys(nodes.size(), 1, 50, 42))}});
  ExecFlags dict;
  ExecFlags nodict = DictOffFlags();
  // Atomization produces a dictionary-coded column...
  auto ad = AppendAtomize(mgr, dict, t, "a", "v");
  auto an = AppendAtomize(mgr, nodict, t, "a", "v");
  ASSERT_TRUE(ad->col("a")->is_dict());
  ASSERT_TRUE(an->col("a")->is_item());
  ExpectSameTable(ad, an);  // decode is kind- and payload-faithful
  // ...which selection vectors + gathers carry as 8-byte codes...
  auto fd = SelectEqI64(dict, ad, "iter", ad->col("iter")->GetI64(0));
  auto fn = SelectEqI64(nodict, an, "iter", an->col("iter")->GetI64(0));
  ASSERT_TRUE(fd->lazy());
  ExpectSameTable(fd, fn);
  EXPECT_TRUE(fd->col("a")->is_dict());  // materialized gather kept codes
  // ...and unions concatenate codes without decoding.
  auto ud = DisjointUnion(ad, ad);
  auto un = DisjointUnion(an, an);
  ExpectSameTable(ud, un);
  EXPECT_TRUE(ud->raw_col(ud->ColumnIndex("a"))->is_dict());
  // Re-atomizing an already-coded column is an O(1) share, not a re-encode.
  auto again = AppendAtomize(mgr, dict, ad, "a2", "a");
  EXPECT_EQ(again->col("a2").get(), ad->col("a").get());
}

TEST(DictJoinTest, DictProbePerformsZeroInterning) {
  // The fix for the per-row StringPool / container-registry costs in item
  // comparators: once columns are dictionary-coded, the whole join —
  // build, probe, verify — performs zero interning (and no per-row
  // atomization), so the dictionary path cannot silently regress into the
  // locked path without this test failing.
  DocumentManager mgr;
  auto* doc = testutil::RandomDoc(&mgr, 600, 51);
  std::vector<Item> nodes;
  for (int64_t p = 0; p < doc->LogicalSlots(); ++p)
    if (!doc->IsUnused(p) && doc->KindAt(p) == NodeKind::kElem)
      nodes.push_back(Item::Node(doc->id(), p));
  auto lt = MakeTable({{"v", Column::MakeItem(nodes)}});
  auto rt = MakeTable({{"v", Column::MakeItem(nodes)}});
  ExecFlags dict;
  // Atomize+encode up front (this is where interning legitimately happens).
  auto la = AppendAtomize(mgr, dict, lt, "a", "v");
  auto ra = AppendAtomize(mgr, dict, rt, "a", "v");
  ASSERT_TRUE(la->col("a")->is_dict());
  const int64_t before = mgr.strings().intern_calls();
  auto jd = EquiJoinItem(mgr, dict, la, "a", ra, "a", {});
  EXPECT_EQ(mgr.strings().intern_calls(), before)
      << "dict-coded join must not intern";
  EXPECT_EQ(dict.stats.dict_joins, 1);
  auto sd = SemiJoinItem(mgr, dict, la, "a", ra, "a");
  EXPECT_EQ(mgr.strings().intern_calls(), before)
      << "dict-coded semijoin must not intern";
  // The legacy probe over raw node columns atomizes defensively per
  // comparison — the per-row interning the dictionary removes.
  ExecFlags legacy = LegacyFlags();
  auto jl = EquiJoinItem(mgr, legacy, lt, "v", rt, "v", {});
  EXPECT_GT(mgr.strings().intern_calls(), before);
  // Same matches either way: the legacy path compares atomized values too.
  ExecFlags nodict = DictOffFlags();
  auto lan = AppendAtomize(mgr, nodict, lt, "a", "v");
  auto ran = AppendAtomize(mgr, nodict, rt, "a", "v");
  auto jn = EquiJoinItem(mgr, nodict, lan, "a", ran, "a", {});
  ExpectSameTable(jd, jn);
}

// ---------------------------------------------------------------------------
// sort equivalence: counting sort vs stable_sort
// ---------------------------------------------------------------------------

TEST(SortEquivalenceTest, CountingSortMatchesStableSortWithDuplicates) {
  DocumentManager mgr;
  // Dense leading key with duplicates + item tiebreaker column: the counting
  // scatter must be stable and the run refinement must match stable_sort.
  const size_t n = 4000;
  auto keys = RandomKeys(n, 1, 200, 21);
  auto tie = RandomKeys(n, 1, 10, 22);
  auto payload = RandomKeys(n, 0, 1 << 30, 23);
  auto make = [&] {
    return MakeTable({{"iter", I64Col(keys)},
                      {"pos", I64Col(tie)},
                      {"payload", I64Col(payload)}});
  };
  ExecFlags counting;
  ExecFlags legacy = LegacyFlags();
  auto sc = Sort(mgr, counting, make(), {"iter", "pos"});
  auto sl = Sort(mgr, legacy, make(), {"iter", "pos"});
  ExpectSameTable(sc, sl);
  EXPECT_EQ(counting.stats.counting_sorts, 1);
  EXPECT_EQ(legacy.stats.counting_sorts, 0);
}

TEST(SortEquivalenceTest, SparseKeysFallBackToComparisonSort) {
  DocumentManager mgr;
  const size_t n = 1000;
  auto keys = RandomKeys(n, -1000000000, 1000000000, 31);
  auto t = MakeTable({{"k", I64Col(keys)}});
  ExecFlags fl;
  auto s = Sort(mgr, fl, t, {"k"});
  EXPECT_EQ(fl.stats.counting_sorts, 0);  // range too wide: fell back
  for (size_t i = 1; i < s->rows(); ++i)
    EXPECT_LE(s->col("k")->GetI64(i - 1), s->col("k")->GetI64(i));
}

TEST(SortEquivalenceTest, FullInt64SpanRejectsCountingWithoutOverflow) {
  // Keys spanning more than INT64_MAX: the profitability scan must reject
  // via unsigned arithmetic, not overflow (UB) in hi - lo.
  DocumentManager mgr;
  std::vector<int64_t> keys(300, 0);
  keys[0] = std::numeric_limits<int64_t>::min();
  keys[1] = std::numeric_limits<int64_t>::max();
  auto t = MakeTable({{"k", I64Col(keys)}});
  ExecFlags fl;
  auto s = Sort(mgr, fl, t, {"k"});
  EXPECT_EQ(fl.stats.counting_sorts, 0);
  EXPECT_EQ(s->col("k")->GetI64(0), std::numeric_limits<int64_t>::min());
  EXPECT_EQ(s->col("k")->GetI64(s->rows() - 1),
            std::numeric_limits<int64_t>::max());
}

TEST(SortEquivalenceTest, RowNumSortingVariantMatchesLegacy) {
  DocumentManager mgr;
  const size_t n = 2000;
  auto g = RandomKeys(n, 1, 50, 41);
  auto ordc = RandomKeys(n, 1, 500, 42);
  auto make = [&] {
    return MakeTable({{"g", I64Col(g)}, {"o", I64Col(ordc)}});
  };
  ExecFlags counting;
  counting.order_opt = false;  // force the sorting variant
  ExecFlags legacy = LegacyFlags();
  legacy.order_opt = false;
  auto rc = RowNum(mgr, counting, make(), "n", {"o"}, "g");
  auto rl = RowNum(mgr, legacy, make(), "n", {"o"}, "g");
  ExpectSameTable(rc, rl);
  EXPECT_GT(counting.stats.counting_sorts, 0);
}

TEST(SortPairsDenseTest, MatchesStdSort) {
  std::mt19937 rng(51);
  for (int round = 0; round < 6; ++round) {
    std::vector<std::pair<int64_t, int64_t>> a;
    const size_t n = 1 + rng() % 3000;
    // Alternate dense and sparse domains; sparse must fall back.
    const int64_t range = (round % 2 == 0) ? 300 : int64_t{1} << 40;
    for (size_t i = 0; i < n; ++i)
      a.emplace_back(static_cast<int64_t>(rng() % range) - range / 2,
                     static_cast<int64_t>(rng() % range));
    auto b = a;
    bool counted = SortPairsDense(&a);
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
    if (round % 2 == 0 && n >= kCountingMinRows) EXPECT_TRUE(counted);
  }
}

// ---------------------------------------------------------------------------
// selection vectors
// ---------------------------------------------------------------------------

TablePtr BoolTable(size_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<Item> flags(n);
  for (auto& f : flags) f = Item::Bool(rng() % 2 == 0);
  return MakeTable({{"iter", I64Col(RandomKeys(n, 1, 1000, seed + 1))},
                    {"b", Column::MakeItem(std::move(flags))},
                    {"payload", I64Col(RandomKeys(n, 0, 1 << 20, seed + 2))}});
}

TEST(SelVectorTest, ChainedSelectsMatchEagerAndStayLazy) {
  DocumentManager mgr;
  auto t = BoolTable(3000, 61);
  ExecFlags lazy;
  ExecFlags eager = LegacyFlags();
  auto a1 = SelectTrue(mgr, lazy, t, "b");
  EXPECT_TRUE(a1->lazy());  // no column was copied
  auto a2 = SelectEqI64(lazy, a1, "iter", 7);
  auto b1 = SelectTrue(mgr, eager, t, "b");
  EXPECT_FALSE(b1->lazy());
  auto b2 = SelectEqI64(eager, b1, "iter", 7);
  ExpectSameTable(a2, b2);  // col() materializes through the composed sel
  EXPECT_EQ(lazy.stats.sel_selects, 2);
  EXPECT_EQ(eager.stats.sel_selects, 0);
}

TEST(SelVectorTest, OperatorsOverLazyInputsMatchEager) {
  DocumentManager mgr;
  auto t = BoolTable(2000, 71);
  auto loop = MakeLoop(1000);
  ExecFlags lazy;
  ExecFlags eager = LegacyFlags();
  auto fl_lazy = SelectTrue(mgr, lazy, t, "b");
  auto fl_eager = SelectTrue(mgr, eager, t, "b");
  ASSERT_TRUE(fl_lazy->lazy());

  // Join over a lazy probe side: gathers fuse the selection vector.
  auto jl = EquiJoinI64(lazy, fl_lazy, "iter", loop, "iter", {{"iter", "m"}});
  auto je = EquiJoinI64(eager, fl_eager, "iter", loop, "iter", {{"iter", "m"}});
  ExpectSameTable(jl, je);

  // Sort over a lazy input.
  auto sl = Sort(mgr, lazy, fl_lazy, {"iter", "payload"});
  auto se = Sort(mgr, eager, fl_eager, {"iter", "payload"});
  ExpectSameTable(sl, se);

  // Union of two lazy inputs.
  auto ul = DisjointUnion(fl_lazy, fl_lazy);
  auto ue = DisjointUnion(fl_eager, fl_eager);
  ExpectSameTable(ul, ue);

  // Projection (with rename) keeps the selection lazy — checked on a fresh
  // filter, since Sort above already memoized fl_lazy's columns flat.
  auto fresh = SelectTrue(mgr, lazy, t, "b");
  ASSERT_TRUE(fresh->lazy());
  auto pl = Project(fresh, {{"payload", "p2"}, {"iter", "iter"}});
  EXPECT_TRUE(pl->lazy());
  auto pe = Project(fl_eager, {{"payload", "p2"}, {"iter", "iter"}});
  ExpectSameTable(pl, pe);

  // Distinct + aggregation over lazy inputs.
  auto dl = Distinct(mgr, lazy, fl_lazy, {"iter"});
  auto de = Distinct(mgr, eager, fl_eager, {"iter"});
  ExpectSameTable(dl, de);
  auto gl = GroupAggr(mgr, lazy, fl_lazy, "iter", "payload", AggKind::kSum);
  auto ge = GroupAggr(mgr, eager, fl_eager, "iter", "payload", AggKind::kSum);
  ExpectSameTable(gl, ge);
}

TEST(SelVectorTest, WithColumnOnLazyTableMixesFlatAndSelected) {
  DocumentManager mgr;
  auto t = BoolTable(500, 81);
  ExecFlags lazy;
  auto f = SelectTrue(mgr, lazy, t, "b");
  ASSERT_TRUE(f->lazy());
  // Appended columns are flat (logical-sized) while the carried columns are
  // still lazily selected; both must read consistently.
  auto w = AppendMap(f, "doubled", "payload",
                     [](const Item& x) { return Item::Int(x.i * 2); });
  for (size_t r = 0; r < w->rows(); ++r)
    EXPECT_EQ(w->col("doubled")->GetI64(r), 2 * w->col("payload")->GetI64(r));
  // A further subset composes the mixed selections correctly.
  auto w2 = SelectEqI64(lazy, w, "iter", w->col("iter")->GetI64(0));
  ASSERT_GE(w2->rows(), 1u);
  for (size_t r = 0; r < w2->rows(); ++r)
    EXPECT_EQ(w2->col("doubled")->GetI64(r),
              2 * w2->col("payload")->GetI64(r));
}

TEST(SelVectorTest, SelectRowsBothModes) {
  DocumentManager mgr;
  auto t = MakeTable({{"k", I64Col({10, 20, 30, 40})},
                      {"v", I64Col({1, 2, 3, 4})}});
  ExecFlags fl;
  auto lazy = SelectRows(t, {1, 0, 1, 0}, &fl);
  EXPECT_TRUE(lazy->lazy());
  EXPECT_EQ(fl.stats.sel_selects, 1);
  auto eager = SelectRows(t, {1, 0, 1, 0});  // no flags: pre-kernel gather
  EXPECT_FALSE(eager->lazy());
  ExpectSameTable(lazy, eager);
  ASSERT_EQ(eager->rows(), 2u);
  EXPECT_EQ(eager->col("k")->GetI64(1), 30);
}

TEST(SelVectorTest, EmptySelection) {
  DocumentManager mgr;
  ExecFlags fl;
  auto t = BoolTable(100, 91);
  auto none = SelectEqI64(fl, t, "iter", -1);  // matches nothing
  EXPECT_EQ(none->rows(), 0u);
  auto j = EquiJoinI64(fl, none, "iter", MakeLoop(10), "iter", {{"iter", "m"}});
  EXPECT_EQ(j->rows(), 0u);
}

// ---------------------------------------------------------------------------
// thread pool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  const int tasks = 37;
  std::vector<std::atomic<int>> hits(tasks);
  ThreadPool::Global().Run(tasks, [&](int t) { ++hits[t]; });
  for (int t = 0; t < tasks; ++t) EXPECT_EQ(hits[t].load(), 1) << t;
  // Back-to-back jobs on the same (now-warm) pool.
  std::atomic<int64_t> sum{0};
  ThreadPool::Global().Run(8, [&](int t) { sum += t; });
  EXPECT_EQ(sum.load(), 28);
}

TEST(ThreadPoolTest, ParallelChunksCoverTheRangeInOrder) {
  const size_t n = 100001;
  std::vector<uint8_t> seen(n, 0);
  ParallelChunks(7, n, [&](int, size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) seen[i] = 1;
  });
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(seen[i], 1) << i;
  // Chunk counts are a pure function of (threads, n): grain-bound on
  // small inputs, thread-bound once every chunk carries kParGrainRows.
  EXPECT_EQ(PlanChunks(4, 2 * kParGrainRows), 2);
  EXPECT_EQ(PlanChunks(4, 4 * kParGrainRows), 4);
  EXPECT_EQ(PlanChunks(4, kParGrainRows), 1);
  EXPECT_EQ(PlanChunks(1, 1 << 20), 1);
}

// ---------------------------------------------------------------------------
// parallel determinism: threads=4 must be bit-identical to threads=1
// ---------------------------------------------------------------------------

ExecFlags SerialFlags() {
  ExecFlags fl;
  fl.threads = 1;
  return fl;
}

ExecFlags ParallelFlags() {
  ExecFlags fl;
  fl.threads = 4;
  return fl;
}

TEST(ParallelDeterminismTest, EquiJoinI64MatchesSerial) {
  const size_t n = 60000;
  auto left = MakeTable({{"k", I64Col(RandomKeys(n, 1, 20000, 101))},
                         {"payload", I64Col(RandomKeys(n, 0, 1 << 20, 102))}});
  auto right = MakeTable({{"k", I64Col(RandomKeys(n, 1, 20000, 103))},
                          {"v", I64Col(RandomKeys(n, 0, 1 << 20, 104))}});
  ExecFlags par = ParallelFlags();
  ExecFlags ser = SerialFlags();
  par.positional = ser.positional = false;  // force the radix kernel
  auto jp = EquiJoinI64(par, left, "k", right, "k", {{"v", "v"}});
  auto js = EquiJoinI64(ser, left, "k", right, "k", {{"v", "v"}});
  ExpectSameTable(jp, js);
  EXPECT_GT(par.stats.par_tasks, 0);       // build and/or probe fanned out
  EXPECT_GT(par.stats.par_partitions, 0);  // the build did
  EXPECT_EQ(ser.stats.par_tasks, 0);
  EXPECT_GT(par.stats.join_ms, 0.0);
}

TEST(ParallelDeterminismTest, SemiAndAntiJoinMatchSerial) {
  const size_t n = 50000;
  auto left = MakeTable({{"k", I64Col(RandomKeys(n, 1, 9000, 111))},
                         {"p", I64Col(RandomKeys(n, 0, 99, 112))}});
  auto right = MakeTable({{"k", I64Col(RandomKeys(n / 2, 1, 9000, 113))}});
  for (bool anti : {false, true}) {
    ExecFlags par = ParallelFlags();
    ExecFlags ser = SerialFlags();
    auto sp = SemiJoinI64(par, left, "k", right, "k", anti);
    auto ss = SemiJoinI64(ser, left, "k", right, "k", anti);
    ExpectSameTable(sp, ss);
    EXPECT_GT(par.stats.par_tasks, 0);
  }
}

TEST(ParallelDeterminismTest, EquiJoinItemMatchesSerial) {
  DocumentManager mgr;
  const size_t n = 40000;
  std::mt19937 rng(121);
  std::vector<Item> lv(n), rv(n);
  for (size_t i = 0; i < n; ++i) {
    lv[i] = Item::Int(static_cast<int64_t>(rng() % 5000));
    rv[i] = Item::Int(static_cast<int64_t>(rng() % 5000));
  }
  auto left = MakeTable({{"v", Column::MakeItem(lv)}});
  auto right = MakeTable({{"v", Column::MakeItem(rv)},
                          {"sid", I64Col(RandomKeys(n, 1, 1000, 122))}});
  ExecFlags par = ParallelFlags();
  ExecFlags ser = SerialFlags();
  auto jp = EquiJoinItem(mgr, par, left, "v", right, "v", {{"sid", "sid"}});
  auto js = EquiJoinItem(mgr, ser, left, "v", right, "v", {{"sid", "sid"}});
  ExpectSameTable(jp, js);
  EXPECT_GT(par.stats.par_tasks, 0);  // build-side hashing + radix build
}

// The dictionary unlocked the item-valued *probe* (docs/execution.md §5):
// with dict_items on, the whole join fans out. These cases hold the
// parallel probe to the serial bar across key types and coercion edges.

TEST(ParallelDeterminismTest, ItemJoinStringKeysMatchSerial) {
  DocumentManager mgr;
  const size_t n = 40000;
  std::mt19937 rng(211);
  std::vector<Item> lv(n), rv(n);
  for (size_t i = 0; i < n; ++i) {
    lv[i] = S(mgr, "k" + std::to_string(rng() % 3000));
    rv[i] = S(mgr, "k" + std::to_string(rng() % 3000));
  }
  auto left = MakeTable({{"v", Column::MakeItem(lv)}});
  auto right = MakeTable({{"v", Column::MakeItem(rv)},
                          {"sid", I64Col(RandomKeys(n, 1, 1000, 212))}});
  ExecFlags par = ParallelFlags();
  ExecFlags ser = SerialFlags();
  auto jp = EquiJoinItem(mgr, par, left, "v", right, "v", {{"sid", "sid"}});
  auto js = EquiJoinItem(mgr, ser, left, "v", right, "v", {{"sid", "sid"}});
  ExpectSameTable(jp, js);
  EXPECT_EQ(par.stats.dict_joins, 1);
  EXPECT_GT(par.stats.par_tasks, 0);  // the probe itself fanned out
  EXPECT_EQ(ser.stats.par_tasks, 0);
}

TEST(ParallelDeterminismTest, ItemJoinDoubleKeysMatchSerial) {
  DocumentManager mgr;
  const size_t n = 40000;
  std::mt19937 rng(221);
  std::vector<Item> lv(n), rv(n);
  for (size_t i = 0; i < n; ++i) {
    lv[i] = Item::Double(static_cast<double>(rng() % 4000) / 4.0);
    rv[i] = Item::Double(static_cast<double>(rng() % 4000) / 4.0);
  }
  auto left = MakeTable({{"v", Column::MakeItem(lv)}});
  auto right = MakeTable({{"v", Column::MakeItem(rv)},
                          {"sid", I64Col(RandomKeys(n, 1, 1000, 222))}});
  ExecFlags par = ParallelFlags();
  ExecFlags ser = SerialFlags();
  auto jp = EquiJoinItem(mgr, par, left, "v", right, "v", {{"sid", "sid"}});
  auto js = EquiJoinItem(mgr, ser, left, "v", right, "v", {{"sid", "sid"}});
  ExpectSameTable(jp, js);
  EXPECT_GT(par.stats.par_tasks, 0);
}

TEST(ParallelDeterminismTest, ItemJoinMixedKeysWithEdgesMatchSerial) {
  // Mixed-type keys with the nasty edges: NaN doubles (never equal), empty
  // strings, numeric-looking strings coercing across kinds. The parallel
  // dict probe must equal both its serial run and the serial legacy path.
  DocumentManager mgr;
  const size_t n = 40000;
  auto lv = RandomAtoms(mgr, n, 231);
  auto rv = RandomAtoms(mgr, n, 232);
  auto left = MakeTable({{"v", Column::MakeItem(lv)}});
  auto right = MakeTable({{"v", Column::MakeItem(rv)},
                          {"sid", I64Col(RandomKeys(n, 1, 1000, 233))}});
  ExecFlags par = ParallelFlags();
  ExecFlags ser = SerialFlags();
  ExecFlags legacy = LegacyFlags();
  legacy.threads = 1;
  auto jp = EquiJoinItem(mgr, par, left, "v", right, "v", {{"sid", "sid"}});
  auto js = EquiJoinItem(mgr, ser, left, "v", right, "v", {{"sid", "sid"}});
  auto jl = EquiJoinItem(mgr, legacy, left, "v", right, "v", {{"sid", "sid"}});
  ExpectSameTable(jp, js);
  ExpectSameTable(jp, jl);
  EXPECT_GT(par.stats.par_tasks, 0);
}

TEST(ParallelDeterminismTest, SemiJoinItemMatchesSerial) {
  DocumentManager mgr;
  const size_t n = 40000;
  auto lv = RandomAtoms(mgr, n, 241);
  auto rv = RandomAtoms(mgr, n / 2, 242);
  auto left = MakeTable({{"v", Column::MakeItem(lv)},
                         {"p", I64Col(RandomKeys(n, 0, 99, 243))}});
  auto right = MakeTable({{"v", Column::MakeItem(rv)}});
  for (bool anti : {false, true}) {
    ExecFlags par = ParallelFlags();
    ExecFlags ser = SerialFlags();
    auto sp = SemiJoinItem(mgr, par, left, "v", right, "v", anti);
    auto ss = SemiJoinItem(mgr, ser, left, "v", right, "v", anti);
    ExpectSameTable(sp, ss);
    EXPECT_EQ(par.stats.dict_joins, 1);
    EXPECT_GT(par.stats.par_tasks, 0);  // morsel-parallel membership scan
  }
}

TEST(ParallelDeterminismTest, FilterMatchesSerial) {
  DocumentManager mgr;
  auto t = BoolTable(70000, 131);
  ExecFlags par = ParallelFlags();
  ExecFlags ser = SerialFlags();
  auto fp = SelectTrue(mgr, par, t, "b");
  auto fs = SelectTrue(mgr, ser, t, "b");
  EXPECT_TRUE(fp->lazy());  // before ExpectSameTable materializes it
  ExpectSameTable(fp, fs);
  EXPECT_GT(par.stats.par_tasks, 0);
  EXPECT_EQ(par.stats.sel_selects, 1);  // still a lazy selection vector
  EXPECT_GT(par.stats.filter_ms, 0.0);

  ExecFlags par2 = ParallelFlags();
  ExecFlags ser2 = SerialFlags();
  auto ep = SelectEqI64(par2, t, "iter", 500);
  auto es = SelectEqI64(ser2, t, "iter", 500);
  ExpectSameTable(ep, es);
  EXPECT_GT(par2.stats.par_tasks, 0);
}

TEST(ParallelDeterminismTest, CountingSortMatchesSerial) {
  DocumentManager mgr;
  const size_t n = 80000;
  auto keys = RandomKeys(n, 1, 4000, 141);
  auto tie = RandomKeys(n, 1, 300, 142);
  auto payload = RandomKeys(n, 0, 1 << 30, 143);
  auto make = [&] {
    return MakeTable({{"iter", I64Col(keys)},
                      {"pos", I64Col(tie)},
                      {"payload", I64Col(payload)}});
  };
  ExecFlags par = ParallelFlags();
  ExecFlags ser = SerialFlags();
  auto sp = Sort(mgr, par, make(), {"iter", "pos"});
  auto ss = Sort(mgr, ser, make(), {"iter", "pos"});
  ExpectSameTable(sp, ss);
  EXPECT_EQ(par.stats.counting_sorts, 1);
  EXPECT_GT(par.stats.par_tasks, 0);
  EXPECT_GT(par.stats.sort_ms, 0.0);
}

TEST(ParallelDeterminismTest, ComparisonSortGatherMatchesSerial) {
  // Sparse keys: the comparison sort runs, but the output gather still
  // fans out — the permuted table must be identical either way.
  DocumentManager mgr;
  const size_t n = 40000;
  auto keys = RandomKeys(n, -1000000000, 1000000000, 151);
  auto payload = RandomKeys(n, 0, 1 << 20, 152);
  auto make = [&] {
    return MakeTable({{"k", I64Col(keys)}, {"p", I64Col(payload)}});
  };
  ExecFlags par = ParallelFlags();
  ExecFlags ser = SerialFlags();
  auto sp = Sort(mgr, par, make(), {"k"});
  auto ss = Sort(mgr, ser, make(), {"k"});
  ExpectSameTable(sp, ss);
  EXPECT_EQ(par.stats.counting_sorts, 0);
}

TEST(ParallelDeterminismTest, SortPairsDenseMatchesSerial) {
  std::mt19937 rng(161);
  std::vector<std::pair<int64_t, int64_t>> a;
  const size_t n = 90000;
  a.reserve(n);
  for (size_t i = 0; i < n; ++i)
    a.emplace_back(static_cast<int64_t>(rng() % 10000),
                   static_cast<int64_t>(rng() % 10000));
  auto b = a;
  EXPECT_TRUE(SortPairsDense(&a, /*threads=*/4));
  EXPECT_TRUE(SortPairsDense(&b, /*threads=*/1));
  EXPECT_EQ(a, b);
}

TEST(ParallelDeterminismTest, RadixBuildLayoutMatchesSerial) {
  // The parallel build must reproduce the serial build's probe results
  // exactly: same matches, same (ascending build-row) order per key.
  const size_t n = 100000;
  auto keys = RandomKeys(n, -50000, 50000, 171);
  RadixHashTable par{std::span<const int64_t>(keys), 4};
  RadixHashTable ser{std::span<const int64_t>(keys), 1};
  EXPECT_GT(par.build_chunks(), 1);
  EXPECT_EQ(ser.build_chunks(), 1);
  EXPECT_EQ(par.partitions(), ser.partitions());
  for (size_t i = 0; i < n; i += 61) {
    std::vector<uint32_t> rp, rs;
    par.ForEach(keys[i], [&](uint32_t r) { rp.push_back(r); });
    ser.ForEach(keys[i], [&](uint32_t r) { rs.push_back(r); });
    ASSERT_EQ(rp, rs) << "key " << keys[i];
  }
}

TEST(ParallelDeterminismTest, RowNumSortingVariantMatchesSerial) {
  DocumentManager mgr;
  const size_t n = 50000;
  auto g = RandomKeys(n, 1, 200, 181);
  auto o = RandomKeys(n, 1, 5000, 182);
  auto make = [&] {
    return MakeTable({{"g", I64Col(g)}, {"o", I64Col(o)}});
  };
  ExecFlags par = ParallelFlags();
  ExecFlags ser = SerialFlags();
  par.order_opt = ser.order_opt = false;  // force the sorting variant
  auto rp = RowNum(mgr, par, make(), "n", {"o"}, "g");
  auto rs = RowNum(mgr, ser, make(), "n", {"o"}, "g");
  ExpectSameTable(rp, rs);
  EXPECT_GT(par.stats.par_tasks, 0);
}

// ---------------------------------------------------------------------------
// centralized ExecFlags environment parsing
// ---------------------------------------------------------------------------

TEST(ExecFlagsTest, FromEnvReadsThreadsAndToggles) {
  ::setenv("MXQ_THREADS", "5", 1);
  ::setenv("MXQ_RADIX_JOIN", "0", 1);
  ::setenv("MXQ_DENSE_SORT", "false", 1);
  ::setenv("MXQ_DICT", "0", 1);
  ExecFlags fl = ExecFlags::FromEnv();
  EXPECT_EQ(fl.threads, 5);
  EXPECT_EQ(fl.exec_threads(), 5);
  EXPECT_FALSE(fl.radix_join);
  EXPECT_FALSE(fl.dense_sort);
  EXPECT_FALSE(fl.dict_items);
  EXPECT_TRUE(fl.sel_vectors);  // untouched toggle keeps its default
  EXPECT_TRUE(fl.order_opt);
  ::unsetenv("MXQ_THREADS");
  ::unsetenv("MXQ_RADIX_JOIN");
  ::unsetenv("MXQ_DENSE_SORT");
  ::unsetenv("MXQ_DICT");
  ExecFlags dflt = ExecFlags::FromEnv();
  EXPECT_EQ(dflt.threads, 0);  // resolves via DefaultExecThreads()
  EXPECT_GE(dflt.exec_threads(), 1);
  EXPECT_TRUE(dflt.radix_join);
  EXPECT_TRUE(dflt.dict_items);
}

}  // namespace
}  // namespace alg
}  // namespace mxq
