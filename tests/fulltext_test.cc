// Fulltext subsystem tests (docs/fulltext.md).
//
// The core is a differential suite: every ft:contains / ft:score query runs
// on both physical paths — posting-list probes (MXQ_FT=1) and the naive
// subtree scan (MXQ_FT=0) — across the kernel-toggle matrix and thread
// widths {1, 4}, and every serialized result must be byte-identical to the
// serial scan baseline. BM25 scores are doubles, so byte-identity is the
// strictest possible check that both paths compute the same arithmetic in
// the same order.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fulltext/index.h"
#include "fulltext/tokenizer.h"
#include "xml/shredder.h"
#include "xquery/engine.h"

namespace mxq {
namespace {

using xq::CompileOptions;
using xq::EvalOptions;
using xq::XQueryEngine;

// ---------------------------------------------------------------------------
// tokenizer
// ---------------------------------------------------------------------------

std::vector<std::string> Toks(const std::string& text) {
  std::vector<std::string> out;
  std::string folded;
  ft::Tokenize(text, [&](std::string_view raw, int32_t pos) {
    EXPECT_EQ(pos, static_cast<int32_t>(out.size()));
    ft::FoldInto(raw, &folded);
    out.push_back(folded);
  });
  return out;
}

TEST(Tokenizer, SplitsOnNonAlnumAndFoldsAscii) {
  EXPECT_EQ(Toks("Hello, World!"), (std::vector<std::string>{"hello", "world"}));
  EXPECT_EQ(Toks("  a--b_c  "), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Toks("x86-64 CPUs"), (std::vector<std::string>{"x86", "64", "cpus"}));
  EXPECT_EQ(Toks(""), std::vector<std::string>{});
  EXPECT_EQ(Toks("...!?"), std::vector<std::string>{});
  EXPECT_EQ(ft::CountTokens("one two  three"), 3);
}

TEST(Tokenizer, NonAsciiBytesAreTokenBytesAndNotFolded) {
  // UTF-8 high bytes stay verbatim (byte-level tokenizer; no Unicode
  // case folding), so multi-byte words round-trip unchanged.
  EXPECT_EQ(Toks("caf\xc3\xa9 Bar"),
            (std::vector<std::string>{"caf\xc3\xa9", "bar"}));
}

// ---------------------------------------------------------------------------
// fixtures
// ---------------------------------------------------------------------------

// Deterministic synthetic corpus: paragraphs of vocabulary words, plus a
// rare needle in a known paragraph. An LCG (not std::rand) keeps the
// corpus identical across platforms.
std::string MakeCorpus(int docs, int paras_per_doc, int words_per_para) {
  static const char* kVocab[] = {
      "alpha", "beta",  "gamma", "delta", "epsilon", "zeta",  "eta",
      "theta", "iota",  "kappa", "lambda", "mu",     "nu",    "xi",
      "omicron", "pi",  "rho",   "sigma", "tau",     "upsilon"};
  constexpr int kV = sizeof(kVocab) / sizeof(kVocab[0]);
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<int>((state >> 33) % kV);
  };
  std::string xml = "<corpus>";
  for (int d = 0; d < docs; ++d) {
    xml += "<doc id=\"" + std::to_string(d) + "\">";
    for (int p = 0; p < paras_per_doc; ++p) {
      xml += "<p>";
      for (int w = 0; w < words_per_para; ++w) {
        if (w) xml += ' ';
        xml += kVocab[next()];
      }
      if (d == 3 && p == 1) xml += " cobalt";  // the rare needle
      xml += "</p>";
    }
    xml += "</doc>";
  }
  xml += "</corpus>";
  return xml;
}

class FulltextTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(ShredDocument(&mgr_, "tiny.xml",
                              "<d><a>Hello brave new World</a>"
                              "<b>world peace now</b>"
                              "<c>unrelated text</c></d>")
                    .ok());
    ASSERT_TRUE(
        ShredDocument(&mgr_, "corpus.xml", MakeCorpus(16, 4, 24)).ok());
  }

  /// Executes `q` under explicit toggles; returns the serialized result and
  /// accumulates the execution's stats into `*stats` when non-null.
  std::string RunWith(const std::string& q, bool ft, int threads,
                      bool kernels_on, alg::ExecStats* stats = nullptr) {
    XQueryEngine eng(&mgr_);
    auto comp = eng.Compile(q);
    EXPECT_TRUE(comp.ok()) << q << " -> " << comp.status().ToString();
    if (!comp.ok()) return "<compile error>";
    EvalOptions eo;
    eo.alg.fulltext = ft;
    eo.alg.threads = threads;
    eo.alg.order_opt = eo.alg.positional = kernels_on;
    eo.alg.radix_join = eo.alg.sel_vectors = kernels_on;
    eo.alg.dense_sort = eo.alg.dict_items = kernels_on;
    auto res = eng.Execute(*comp, &eo);
    EXPECT_TRUE(res.ok()) << q << " -> " << res.status().ToString();
    if (!res.ok()) return "<exec error>";
    if (stats) stats->Add(eo.alg.stats);
    return res->Serialize(mgr_);
  }

  /// Differential sweep: scan-serial baseline, then every combination of
  /// {index, scan} x {kernels on, off} x threads {1, 4} must serialize
  /// byte-identically.
  std::string Differential(const std::string& q) {
    const std::string base = RunWith(q, /*ft=*/false, 1, /*kernels_on=*/true);
    for (bool ft : {false, true}) {
      for (bool kernels : {true, false}) {
        for (int threads : {1, 4}) {
          EXPECT_EQ(RunWith(q, ft, threads, kernels), base)
              << q << " [ft=" << ft << " kernels=" << kernels
              << " threads=" << threads << "]";
        }
      }
    }
    return base;
  }

  DocumentManager mgr_;
};

// ---------------------------------------------------------------------------
// hand-checked semantics (tiny.xml)
// ---------------------------------------------------------------------------

TEST_F(FulltextTest, ContainsBasics) {
  // Matching is per node-subtree, case-folded, word- (not substring-) based.
  EXPECT_EQ(Differential(R"(for $a in doc("tiny.xml")//a
                            return ft:contains($a, "hello"))"),
            "true");
  EXPECT_EQ(Differential(R"(for $a in doc("tiny.xml")//a
                            return ft:contains($a, "HELLO"))"),
            "true");
  EXPECT_EQ(Differential(R"(for $a in doc("tiny.xml")//a
                            return ft:contains($a, "hell"))"),
            "false");  // words, not substrings
  EXPECT_EQ(Differential(R"(for $a in doc("tiny.xml")//a
                            return ft:contains($a, "peace"))"),
            "false");
  EXPECT_EQ(Differential(R"(for $x in doc("tiny.xml")/d
                            return ft:contains($x, "peace"))"),
            "true");  // subtree includes <b>
  EXPECT_EQ(Differential(R"(for $x in doc("tiny.xml")//b
                            return ft:contains($x, "world", "peace"))"),
            "true");
}

TEST_F(FulltextTest, PhraseNeedsConsecutivePositionsInOneTextNode) {
  EXPECT_EQ(Differential(R"(for $a in doc("tiny.xml")//a
                            return ft:contains($a, "brave new world"))"),
            "true");
  EXPECT_EQ(Differential(R"(for $a in doc("tiny.xml")//a
                            return ft:contains($a, "new brave"))"),
            "false");  // order matters
  // "world" ends <a>'s text and "peace" starts <b>'s: a phrase must not
  // match across text-node boundaries even though both words are under /d.
  EXPECT_EQ(Differential(R"(for $x in doc("tiny.xml")/d
                            return ft:contains($x, "world peace"))"),
            "true");  // ...but it does match inside <b> itself
  EXPECT_EQ(Differential(R"(for $x in doc("tiny.xml")/d
                            return ft:contains($x, "hello brave new world peace"))"),
            "false");
}

TEST_F(FulltextTest, ConjunctionGroupsAreIndependent) {
  // "hello" is in <a>, "peace" in <b>: the conjunction holds for /d (both
  // groups occur somewhere in the subtree) but for neither <a> nor <b>.
  EXPECT_EQ(Differential(R"(for $x in doc("tiny.xml")/d
                            return ft:contains($x, "hello", "peace"))"),
            "true");
  EXPECT_EQ(Differential(R"(for $a in doc("tiny.xml")//a
                            return ft:contains($a, "hello", "peace"))"),
            "false");
}

TEST_F(FulltextTest, NonNodeItemsNeverMatch) {
  EXPECT_EQ(Differential(R"(ft:contains("hello hello", "hello"))"), "false");
  EXPECT_EQ(Differential(R"(ft:score("hello hello", "hello"))"), "0");
}

TEST_F(FulltextTest, DegenerateTermsMatchNothing) {
  EXPECT_EQ(Differential(R"(for $a in doc("tiny.xml")//a
                            return ft:contains($a, "..."))"),
            "false");  // punctuation-only argument tokenizes to nothing
  EXPECT_EQ(Differential(R"(for $a in doc("tiny.xml")//a
                            return ft:contains($a, "xyzzy"))"),
            "false");  // term absent from the corpus (and the StringPool)
}

TEST_F(FulltextTest, ScoreIsPositiveForMatchesZeroOtherwise) {
  const std::string s = Differential(
      R"(for $x in doc("tiny.xml")//a return ft:score($x, "hello"))");
  EXPECT_NE(s, "0");
  EXPECT_EQ(s.find('-'), std::string::npos) << s;  // BM25 here is >= 0
  EXPECT_EQ(Differential(
                R"(for $x in doc("tiny.xml")//c return ft:score($x, "hello"))"),
            "0");
}

TEST_F(FulltextTest, TermArgumentsMustBeStringLiterals) {
  XQueryEngine eng(&mgr_);
  EXPECT_FALSE(eng.Compile(R"(for $a in doc("tiny.xml")//a
                              return ft:contains($a, string($a)))")
                   .ok());
  EXPECT_FALSE(eng.Compile(R"(ft:contains())").ok());
  EXPECT_FALSE(eng.Compile(R"(for $a in doc("tiny.xml")//a
                              return ft:contains($a))")
                   .ok());
}

// ---------------------------------------------------------------------------
// differential sweep on the synthetic corpus
// ---------------------------------------------------------------------------

TEST_F(FulltextTest, CorpusDifferentialContains) {
  Differential(R"(for $d in doc("corpus.xml")//doc
                  where ft:contains($d, "alpha") return $d/@id)");
  Differential(R"(for $d in doc("corpus.xml")//doc
                  where ft:contains($d, "cobalt") return $d/@id)");
  Differential(R"(for $p in doc("corpus.xml")//p
                  where ft:contains($p, "alpha", "gamma") return $p)");
  Differential(R"(for $p in doc("corpus.xml")//p
                  where ft:contains($p, "alpha beta") return $p)");
  Differential(R"(count(for $p in doc("corpus.xml")//p
                  where ft:contains($p, "sigma") return $p))");
}

TEST_F(FulltextTest, CorpusDifferentialScore) {
  // Full BM25 over every paragraph and over whole docs: doubles must be
  // byte-identical between index probes and the scan across all toggles.
  Differential(R"(for $p in doc("corpus.xml")//p
                  return ft:score($p, "alpha"))");
  Differential(R"(for $d in doc("corpus.xml")//doc
                  return ft:score($d, "alpha", "kappa"))");
  Differential(R"(for $d in doc("corpus.xml")//doc
                  return ft:score($d, "alpha beta"))");
  Differential(R"(for $d in doc("corpus.xml")//doc
                  where ft:score($d, "cobalt") > 0 return $d/@id)");
}

TEST_F(FulltextTest, NeedleFindsExactlyItsDocument) {
  EXPECT_EQ(Differential(R"(for $d in doc("corpus.xml")//doc
                            where ft:contains($d, "cobalt") return $d/@id)"),
            "id=\"3\"");
}

// ---------------------------------------------------------------------------
// stats, build lifecycle, fallback
// ---------------------------------------------------------------------------

TEST_F(FulltextTest, StatsRecordWhichPathAnswered) {
  const std::string q = R"(for $p in doc("corpus.xml")//p
                           return ft:contains($p, "alpha"))";
  alg::ExecStats on, off;
  RunWith(q, /*ft=*/true, 1, true, &on);
  RunWith(q, /*ft=*/false, 1, true, &off);
  EXPECT_GT(on.ft_index_probes, 0);
  EXPECT_EQ(on.ft_scan_probes, 0);
  EXPECT_EQ(off.ft_index_probes, 0);
  EXPECT_GT(off.ft_scan_probes, 0);
}

TEST_F(FulltextTest, IndexBuildsLazilyOncePerContainer) {
  auto doc = mgr_.GetDocument("corpus.xml");
  ASSERT_TRUE(doc.ok());
  const DocumentContainer* c = *doc;
  EXPECT_EQ(c->fulltext_index_if_built(), nullptr);
  auto idx = c->fulltext_index();
  ASSERT_NE(idx, nullptr);
  EXPECT_TRUE(idx->ok());
  EXPECT_GT(idx->text_nodes(), 0);
  EXPECT_GT(idx->total_tokens(), 0);
  EXPECT_EQ(c->fulltext_index(), idx);  // memoized, not rebuilt
  EXPECT_EQ(c->fulltext_index_if_built(), idx);
}

TEST_F(FulltextTest, ShredTimeBuildViaOptions) {
  ShredOptions opts;
  opts.build_fulltext = true;
  auto doc = ShredDocument(&mgr_, "eager.xml", "<r><t>hello index</t></r>",
                           opts);
  ASSERT_TRUE(doc.ok());
  EXPECT_NE((*doc)->fulltext_index_if_built(), nullptr);
}

TEST_F(FulltextTest, MutationInvalidatesAndRebuildFindsNewText) {
  auto doc = mgr_.GetDocument("tiny.xml");
  ASSERT_TRUE(doc.ok());
  DocumentContainer* c = *doc;
  auto before = c->fulltext_index();
  ASSERT_TRUE(before->ok());

  // Appending a fragment runs the mutation path, which must drop the
  // cached index; the next probe rebuilds and sees the new token.
  ASSERT_TRUE(ShredFragment(c, "<z>freshly added quicksilver</z>").ok());
  EXPECT_EQ(c->fulltext_index_if_built(), nullptr);
  auto after = c->fulltext_index();
  EXPECT_NE(after, before);
  EXPECT_GT(after->total_tokens(), before->total_tokens());

  // The rebuilt index names the new token; the old one never did.
  const StringPool& pool = mgr_.strings();
  const StrId sid = pool.Find("quicksilver");
  ASSERT_NE(sid, kInvalidStrId);
  const ItemDict::Code code =
      mgr_.item_dict().Encode(pool, Item::String(sid));
  EXPECT_NE(after->Lookup(code), nullptr);
  EXPECT_EQ(before->Lookup(code), nullptr);
}

TEST_F(FulltextTest, DictionaryExhaustionFallsBackToScan) {
  // Cap the shared ItemDict so the index build cannot name all terms: the
  // index marks itself unusable and every probe takes the scan path —
  // same answers, no error.
  DocumentManager mgr;
  ASSERT_TRUE(
      ShredDocument(&mgr, "t.xml", "<d><a>one two three four</a></d>").ok());
  mgr.item_dict().set_max_entries_for_test(2);
  auto doc = mgr.GetDocument("t.xml");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE((*doc)->fulltext_index()->ok());

  XQueryEngine eng(&mgr);
  const std::string q =
      R"(for $a in doc("t.xml")//a return ft:contains($a, "three"))";
  EvalOptions eo;
  eo.alg.fulltext = true;
  auto r = eng.Run(q, {}, &eo);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, "true");
  EXPECT_GT(eo.alg.stats.ft_scan_probes, 0);
  EXPECT_EQ(eo.alg.stats.ft_index_probes, 0);
}

}  // namespace
}  // namespace mxq
