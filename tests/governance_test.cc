// Resource-governance tests (docs/robustness.md): admission control,
// deadlines, cooperative cancellation, per-execution memory budgets, the
// dictionary-overflow fallback, and the fault-injection harness. The core
// contract under test: every governed failure surfaces as a typed Status —
// never a crash, leak, or stuck worker — and the engine then serves
// subsequent queries bit-identically to an ungoverned run. Run under both
// MXQ_SANITIZE=thread and MXQ_SANITIZE=address,undefined (tests/run_matrix.sh).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/exec_context.h"
#include "common/fault.h"
#include "common/item_dict.h"
#include "common/thread_pool.h"
#include "storage/column.h"
#include "test_util.h"
#include "xml/shredder.h"
#include "xquery/engine.h"

namespace mxq {
namespace xq {
namespace {

using Clock = std::chrono::steady_clock;

int64_t ElapsedMs(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(b - a).count();
}

// A query whose plan is a long chain of cheap operators: with a delay fault
// armed on "eval.op" its runtime is (ops x delay), which the cancellation
// and admission tests use as a controllable slow query.
std::string SlowChainQuery(int terms) {
  std::string q = "0";
  for (int i = 0; i < terms; ++i) q += " + 1";
  return q;
}

// Value join + aggregation + construction over the fixture document:
// touches the atomize, filter, sort, join.build, join.probe, and aggr
// fault points (whichever the chosen plan reaches — the sweep below does
// not assume any particular one is on the path).
constexpr const char* kJoinQuery =
    R"(for $p in doc("auction.xml")//person
       let $a := for $t in doc("auction.xml")//auction
                 where $t/buyer/@person = $p/@id return $t
       return <item person="{$p/name/text()}">{count($a)}</item>)";

class GovernanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        ShredDocument(
            &mgr_, "auction.xml",
            "<site><people>"
            "<person id=\"person0\"><name>Kasidit</name><age>25</age></person>"
            "<person id=\"person1\"><name>Amara</name><age>30</age></person>"
            "<person id=\"person2\"><name>Bola</name><age>19</age></person>"
            "</people><auctions>"
            "<auction><buyer person=\"person0\"/><price>10</price></auction>"
            "<auction><buyer person=\"person0\"/><price>25</price></auction>"
            "<auction><buyer person=\"person2\"/><price>90</price></auction>"
            "</auctions></site>")
            .ok());
  }
  void TearDown() override { fault::Disarm(); }

  DocumentManager mgr_;
};

// ---------------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------------

TEST_F(GovernanceTest, DeadlineSurfacesAsTypedStatus) {
  XQueryEngine eng(&mgr_);
  Session s = eng.CreateSession();
  auto q = s.Prepare(SlowChainQuery(50));
  ASSERT_TRUE(q.ok());

  // 5 ms per operator makes the 1 ms deadline un-missable by the second
  // checkpoint.
  fault::Arm("eval.op", fault::Kind::kDelay, {.every = true, .delay_us = 5000});
  s.options().deadline_ms = 1;
  auto r = s.Execute(*q);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
      << r.status().ToString();
  fault::Disarm();

  // The same session, deadline lifted: served bit-identically.
  s.options().deadline_ms = 0;
  auto ok = s.Execute(*q);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->Serialize(mgr_), "50");
  EXPECT_EQ(eng.governance_stats().deadline_exceeded, 1);
}

TEST_F(GovernanceTest, EngineDefaultDeadlineAppliesAndPerCallOverrides) {
  XQueryEngine eng(&mgr_);
  GovernanceOptions gov;
  gov.default_deadline_ms = 1;
  eng.set_governance(gov);
  Session s = eng.CreateSession();
  auto q = s.Prepare(SlowChainQuery(50));
  ASSERT_TRUE(q.ok());

  fault::Arm("eval.op", fault::Kind::kDelay, {.every = true, .delay_us = 5000});
  auto r = s.Execute(*q);  // inherits the engine default
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  fault::Disarm();

  s.options().deadline_ms = 60'000;  // per-call override beats the default
  auto ok = s.Execute(*q);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->Serialize(mgr_), "50");
}

// ---------------------------------------------------------------------------
// Memory budgets
// ---------------------------------------------------------------------------

TEST_F(GovernanceTest, MemoryBudgetSurfacesAsTypedStatus) {
  DocumentManager mgr;
  testutil::RandomDoc(&mgr, 30000, /*seed=*/7);
  XQueryEngine eng(&mgr);
  Session s = eng.CreateSession();
  auto q = s.Prepare(R"(count(doc("rand7")//a))");
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  // Unbudgeted baseline; its peak proves the accounting seam is live.
  auto base = s.Execute(*q);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  const std::string expected = base->Serialize(mgr);
  EXPECT_GT(base->exec_stats().peak_mem_bytes, 0);

  // A budget far below the baseline peak must trip — as a clean Status.
  s.options().memory_budget_bytes = 4096;
  auto r = s.Execute(*q);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
      << r.status().ToString();
  EXPECT_NE(r.status().ToString().find("memory budget"), std::string::npos);

  // Budget lifted: the engine serves the same result again.
  s.options().memory_budget_bytes = 0;
  auto again = s.Execute(*q);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->Serialize(mgr), expected);
  EXPECT_EQ(eng.governance_stats().resource_exhausted, 1);
}

TEST_F(GovernanceTest, EngineDefaultBudgetAppliesAndPerCallOverrides) {
  DocumentManager mgr;
  testutil::RandomDoc(&mgr, 30000, /*seed=*/7);
  XQueryEngine eng(&mgr);
  GovernanceOptions gov;
  gov.default_memory_budget_bytes = 4096;
  eng.set_governance(gov);
  Session s = eng.CreateSession();
  auto q = s.Prepare(R"(count(doc("rand7")//a))");
  ASSERT_TRUE(q.ok());

  auto r = s.Execute(*q);  // inherits the tiny engine default
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);

  s.options().memory_budget_bytes = int64_t{1} << 30;  // per-call override
  auto ok = s.Execute(*q);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
}

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

TEST_F(GovernanceTest, SessionCancelAllStopsInFlightExecution) {
  XQueryEngine eng(&mgr_);
  Session s = eng.CreateSession();
  const std::string slow = SlowChainQuery(100);
  auto q = s.Prepare(slow);
  ASSERT_TRUE(q.ok());

  // Baseline: how long the full delayed run takes uncancelled.
  fault::Arm("eval.op", fault::Kind::kDelay, {.every = true, .delay_us = 5000});
  auto t0 = Clock::now();
  auto base = s.Execute(*q);
  const int64_t full_ms = ElapsedMs(t0, Clock::now());
  ASSERT_TRUE(base.ok());
  ASSERT_GE(full_ms, 100);  // ~100 ops x 5 ms

  // Cancelled run: fire CancelAll from another thread mid-execution.
  Status st;
  auto t1 = Clock::now();
  std::thread worker([&] { st = s.Execute(*q).status(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  s.CancelAll();
  worker.join();
  const int64_t cancelled_ms = ElapsedMs(t1, Clock::now());
  fault::Disarm();

  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCancelled) << st.ToString();
  // Morsel-bounded latency: the cancelled run must end well before a full
  // run would (it executes only the operators reached before the cancel).
  EXPECT_LT(cancelled_ms, full_ms);

  // A group cancel never leaks into executions started afterwards.
  auto after = s.Execute(*q);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->Serialize(mgr_), base->Serialize(mgr_));
  EXPECT_EQ(eng.governance_stats().cancelled, 1);
}

TEST_F(GovernanceTest, EngineCancelAllSweepsEveryExecution) {
  XQueryEngine eng(&mgr_);
  const std::string slow = SlowChainQuery(100);
  auto plan = eng.Prepare(slow);
  ASSERT_TRUE(plan.ok());

  fault::Arm("eval.op", fault::Kind::kDelay, {.every = true, .delay_us = 5000});
  std::vector<Status> st(2);
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      Session s = eng.CreateSession();
      st[t] = s.Execute(*plan).status();
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  eng.CancelAll();
  for (auto& th : threads) th.join();
  fault::Disarm();

  for (const Status& s : st) {
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kCancelled) << s.ToString();
  }
  // The engine itself keeps serving.
  Session s = eng.CreateSession();
  auto r = s.Execute(*plan);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Serialize(mgr_), "100");
}

TEST_F(GovernanceTest, ResultAndCursorCancelReleaseResourcesEarly) {
  XQueryEngine eng(&mgr_);
  Session s = eng.CreateSession();
  auto q = s.Prepare("<x>{1 + 1}</x>");
  ASSERT_TRUE(q.ok());

  auto r = s.Execute(*q);
  ASSERT_TRUE(r.ok());
  ASSERT_NE(r->transient(), nullptr);
  const int32_t free_before = mgr_.free_transients();
  r->Cancel();
  EXPECT_EQ(r->transient(), nullptr);
  EXPECT_TRUE(r->items.empty());
  EXPECT_EQ(mgr_.free_transients(), free_before + 1);
  r->Cancel();  // idempotent
  EXPECT_EQ(mgr_.free_transients(), free_before + 1);

  auto cur = s.OpenCursor(*q);
  ASSERT_TRUE(cur.ok());
  EXPECT_FALSE(cur->done());
  cur->Cancel();
  EXPECT_TRUE(cur->done());
  std::vector<Item> batch;
  EXPECT_EQ(cur->Next(&batch), 0u);
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST_F(GovernanceTest, AdmissionFloodShedsBeyondQueueBound) {
  constexpr int kThreads = 8;
  XQueryEngine eng(&mgr_);
  GovernanceOptions gov;
  gov.max_in_flight = 1;
  gov.max_queue = 2;
  eng.set_governance(gov);
  const std::string slow = SlowChainQuery(100);
  auto plan = eng.Prepare(slow);
  ASSERT_TRUE(plan.ok());

  // ~500 ms per execution: all 8 arrivals overlap the first one.
  fault::Arm("eval.op", fault::Kind::kDelay, {.every = true, .delay_us = 5000});
  std::atomic<int> ok{0}, shed{0}, wrong{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      Session s = eng.CreateSession();
      auto r = s.Execute(*plan);
      if (r.ok()) {
        if (r->Serialize(mgr_) == "100")
          ++ok;
        else
          ++wrong;
      } else if (r.status().code() == StatusCode::kResourceExhausted) {
        ++shed;
      } else {
        ++wrong;
      }
    });
  }
  for (auto& th : threads) th.join();
  fault::Disarm();

  // Every request either completed correctly or was shed with the typed
  // Status — nothing crashed, hung, or returned garbage.
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(ok.load() + shed.load(), kThreads);
  EXPECT_GE(ok.load(), 1);
  EXPECT_GE(shed.load(), 1) << "flood never exceeded the queue bound";

  auto st = eng.governance_stats();
  EXPECT_EQ(st.requests, kThreads);
  EXPECT_EQ(st.admitted, ok.load());
  EXPECT_EQ(st.shed_queue_full, shed.load());
  EXPECT_EQ(st.completed_ok, ok.load());
  EXPECT_EQ(st.peak_in_flight, 1);
  EXPECT_LE(st.peak_queued, 2);

  // Limits off again: the engine serves immediately.
  eng.set_governance(GovernanceOptions{});
  Session s = eng.CreateSession();
  auto r = s.Execute(*plan);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Serialize(mgr_), "100");
}

TEST_F(GovernanceTest, QueuedRequestHonorsDeadline) {
  XQueryEngine eng(&mgr_);
  GovernanceOptions gov;
  gov.max_in_flight = 1;
  gov.max_queue = 4;
  eng.set_governance(gov);
  const std::string slow = SlowChainQuery(100);
  auto plan = eng.Prepare(slow);
  ASSERT_TRUE(plan.ok());

  fault::Arm("eval.op", fault::Kind::kDelay, {.every = true, .delay_us = 5000});
  std::thread holder([&] {
    Session s = eng.CreateSession();
    (void)s.Execute(*plan);  // occupies the single slot for ~500 ms
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  Session s = eng.CreateSession();
  s.options().deadline_ms = 30;  // expires while queued
  auto r = s.Execute(*plan);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
      << r.status().ToString();
  EXPECT_EQ(eng.governance_stats().shed_deadline, 1);

  eng.CancelAll();  // release the holder quickly
  holder.join();
  fault::Disarm();
}

TEST_F(GovernanceTest, CancelDuringRetryBackoffObservedPromptly) {
  XQueryEngine eng(&mgr_);
  GovernanceOptions gov;
  gov.max_in_flight = 1;
  gov.max_queue = 0;  // every overlapping arrival sheds immediately
  eng.set_governance(gov);
  const std::string slow = SlowChainQuery(100);
  auto plan = eng.Prepare(slow);
  ASSERT_TRUE(plan.ok());

  fault::Arm("eval.op", fault::Kind::kDelay, {.every = true, .delay_us = 5000});
  std::thread holder([&] {
    Session s = eng.CreateSession();
    (void)s.Execute(*plan);  // occupies the single slot for ~500 ms
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // The retrier sheds on arrival and enters a multi-second backoff; the
  // session cancel must cut the sleep short within the ~2 ms poll slice,
  // not after the remaining seconds.
  Session s = eng.CreateSession();
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 5000;
  policy.max_backoff_ms = 5000;
  policy.jitter = 0.0;
  Status st;
  auto t0 = Clock::now();
  std::thread retrier([&] { st = s.ExecuteWithRetry(*plan, policy).status(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  s.CancelAll();
  retrier.join();
  const int64_t elapsed_ms = ElapsedMs(t0, Clock::now());

  eng.CancelAll();  // release the holder
  holder.join();
  fault::Disarm();

  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCancelled) << st.ToString();
  EXPECT_LT(elapsed_ms, 1500) << "backoff ignored the cancellation";
}

// ---------------------------------------------------------------------------
// Dictionary overflow (the former std::abort path)
// ---------------------------------------------------------------------------

TEST_F(GovernanceTest, ItemDictOverflowReturnsInvalidCode) {
  StringPool pool;
  ItemDict dict;
  dict.set_max_entries_for_test(2);
  // Two distinct entry-class values fit...
  ItemDict::Code a = dict.Encode(pool, Item::String(pool.Intern("alpha")));
  ItemDict::Code b = dict.Encode(pool, Item::String(pool.Intern("beta")));
  ASSERT_NE(a, ItemDict::kInvalidCode);
  ASSERT_NE(b, ItemDict::kInvalidCode);
  EXPECT_FALSE(dict.exhausted());
  // ...the third overflows: an invalid code and a sticky flag, no abort.
  ItemDict::Code c = dict.Encode(pool, Item::String(pool.Intern("gamma")));
  EXPECT_EQ(c, ItemDict::kInvalidCode);
  EXPECT_TRUE(dict.exhausted());
  // Existing codes keep decoding, and re-encoding an interned value works.
  EXPECT_EQ(dict.Decode(a).str_id(), pool.Intern("alpha"));
  EXPECT_EQ(dict.Encode(pool, Item::String(pool.Intern("beta"))), b);
}

TEST_F(GovernanceTest, QueryFallsBackWhenDictionaryOverflows) {
  // Reference run: dictionary compaction disabled.
  auto run = [](bool dict_on, size_t cap) {
    DocumentManager mgr;
    EXPECT_TRUE(
        ShredDocument(
            &mgr, "auction.xml",
            "<site><people>"
            "<person id=\"person0\"><name>Kasidit</name></person>"
            "<person id=\"person1\"><name>Amara</name></person>"
            "<person id=\"person2\"><name>Bola</name></person>"
            "</people><auctions>"
            "<auction><buyer person=\"person0\"/></auction>"
            "<auction><buyer person=\"person2\"/></auction>"
            "</auctions></site>")
            .ok());
    if (cap > 0) mgr.item_dict().set_max_entries_for_test(cap);
    XQueryEngine eng(&mgr);
    Session s = eng.CreateSession();
    s.options().alg.dict_items = dict_on;
    auto r = s.Run(
        R"(for $p in doc("auction.xml")//person
           let $a := for $t in doc("auction.xml")//auction
                     where $t/buyer/@person = $p/@id return $t
           return <n>{count($a)}</n>)");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? *r : std::string();
  };
  const std::string expected = run(false, 0);
  ASSERT_FALSE(expected.empty());
  // Dict on with a capacity too small for the join keys: the encode
  // overflows mid-query and every kernel falls back to uncoded items —
  // same answer, no abort.
  EXPECT_EQ(run(true, 2), expected);
  EXPECT_EQ(run(true, 0), expected);  // and plenty of room: also identical
}

// ---------------------------------------------------------------------------
// Fault-injection sweep
// ---------------------------------------------------------------------------

TEST_F(GovernanceTest, InjectedFaultsSurfaceAsStatusAndEngineRecovers) {
  XQueryEngine eng(&mgr_);
  Session s = eng.CreateSession();
  s.options().alg.dict_items = true;  // route the join through the dict path
  auto q = s.Prepare(kJoinQuery);
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  auto base = s.Execute(*q);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  const std::string expected = base->Serialize(mgr_);

  const char* points[] = {"eval.op",    "atomize",    "filter", "sort",
                          "join.build", "join.probe", "aggr"};
  struct {
    fault::Kind kind;
    StatusCode code;
  } kinds[] = {{fault::Kind::kCancel, StatusCode::kCancelled},
               {fault::Kind::kMemExhaust, StatusCode::kResourceExhausted}};
  int64_t total_injected = 0;
  for (const char* point : points) {
    for (const auto& k : kinds) {
      fault::Arm(point, k.kind);
      auto r = s.Execute(*q);
      const int64_t injected = fault::InjectionCount();
      total_injected += injected;
      if (injected > 0) {
        // The fault fired on this plan's path: it must surface as exactly
        // the typed Status, never a crash or a silent wrong answer.
        ASSERT_FALSE(r.ok()) << point << ": injected fault swallowed";
        EXPECT_EQ(r.status().code(), k.code)
            << point << ": " << r.status().ToString();
      } else {
        // Point not on this plan's path: the run must be untouched.
        ASSERT_TRUE(r.ok()) << point << ": " << r.status().ToString();
        EXPECT_EQ(r->Serialize(mgr_), expected) << point;
      }
      fault::Disarm();
      // Recovery: the very next execution is bit-identical to baseline.
      auto after = s.Execute(*q);
      ASSERT_TRUE(after.ok()) << point << ": " << after.status().ToString();
      EXPECT_EQ(after->Serialize(mgr_), expected) << point;
    }
  }
  // The sweep is not vacuous: at least the per-operator point must fire.
  EXPECT_GT(total_injected, 0);

  // Transient containers all returned to the pool (no leaks on the error
  // unwinds): serial executions keep recycling, never accreting.
  const int32_t containers = mgr_.num_containers();
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(s.Execute(*q).ok());
  EXPECT_EQ(mgr_.num_containers(), containers);
}

// ---------------------------------------------------------------------------
// Stats bookkeeping
// ---------------------------------------------------------------------------

TEST_F(GovernanceTest, GovernanceStatsPartitionOutcomes) {
  XQueryEngine eng(&mgr_);
  Session s = eng.CreateSession();
  auto q = s.Prepare("1 + 1");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(s.Execute(*q).ok());
  ASSERT_TRUE(s.Execute(*q).ok());
  ASSERT_FALSE(s.Run(R"(doc("nope.xml"))").ok());  // NotFound -> failed_other

  auto st = eng.governance_stats();
  EXPECT_EQ(st.requests, 3);
  EXPECT_EQ(st.admitted, 3);
  EXPECT_EQ(st.completed_ok, 2);
  EXPECT_EQ(st.failed_other, 1);
  EXPECT_EQ(st.requests, st.admitted + st.shed_queue_full + st.shed_deadline +
                             st.shed_cancelled);
  EXPECT_EQ(st.admitted, st.completed_ok + st.cancelled +
                             st.deadline_exceeded + st.resource_exhausted +
                             st.failed_other);
}

// ---------------------------------------------------------------------------
// Fulltext probe boundary
// ---------------------------------------------------------------------------

TEST_F(GovernanceTest, FulltextProbeFaultSurfacesAndEngineRecovers) {
  XQueryEngine eng(&mgr_);
  Session s = eng.CreateSession();
  auto q = s.Prepare(R"(for $p in doc("auction.xml")//person
                        where ft:contains($p, "kasidit") return $p/name)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  auto base = s.Execute(*q);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  const std::string expected = base->Serialize(mgr_);
  ASSERT_FALSE(expected.empty());

  struct {
    fault::Kind kind;
    StatusCode code;
  } kinds[] = {{fault::Kind::kCancel, StatusCode::kCancelled},
               {fault::Kind::kMemExhaust, StatusCode::kResourceExhausted}};
  for (const auto& k : kinds) {
    fault::Arm("ft.probe", k.kind);
    auto r = s.Execute(*q);
    // Unlike the generic sweep, ft.probe is known to be on this plan's
    // path: the injection must fire and surface as the typed Status.
    EXPECT_GT(fault::InjectionCount(), 0);
    ASSERT_FALSE(r.ok()) << "ft.probe fault swallowed";
    EXPECT_EQ(r.status().code(), k.code) << r.status().ToString();
    fault::Disarm();
    auto after = s.Execute(*q);
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    EXPECT_EQ(after->Serialize(mgr_), expected);
  }
}

// ---------------------------------------------------------------------------
// Worker-thread memory billing
// ---------------------------------------------------------------------------

TEST(WorkerBilling, PoolWorkersChargeSubmittersMemAccount) {
  // Columns built on pool workers during a parallel region must charge the
  // submitting execution's MemAccount — a kernel cannot evade its memory
  // budget by fanning out (thread_pool.h job_ctx_ propagation).
  ExecContext ec;
  ScopedExecContext scoped(&ec);
  constexpr int kTasks = 8;
  constexpr size_t kRows = 4096;
  std::vector<ColumnPtr> cols(kTasks);
  ThreadPool::Global().Run(kTasks, [&](int t) {
    cols[t] = Column::MakeI64(std::vector<int64_t>(kRows, t));
  });
  const int64_t expect =
      int64_t{kTasks} * static_cast<int64_t>(kRows * sizeof(int64_t));
  EXPECT_GE(ec.mem()->peak_bytes(), expect);
  EXPECT_GE(ec.mem()->live_bytes(), expect);
  cols.clear();  // releases flow back to the same account
  EXPECT_EQ(ec.mem()->live_bytes(), 0);
}

}  // namespace
}  // namespace xq
}  // namespace mxq
