// Malformed-input corpus for the atomic shredder (docs/robustness.md
// "Ingestion"): every broken document in the corpus must fail with a
// *typed* Status (kParseError for syntax, kResourceExhausted for limit
// breaches) and must leave no trace behind:
//
//   * a failed ShredDocument never publishes a name — GetDocument keeps
//     returning NotFound, and the scratch container is recycled into the
//     transient pool, so repeated failed loads do not grow the registry;
//   * a failed ShredFragment rolls the target container back
//     byte-identically to its pre-call state and CheckInvariants() still
//     passes.
//
// The corpus covers truncations at every construct boundary, mismatched
// and unmatched tags, bad entity references, pathological DOCTYPE internal
// subsets, and documents nested beyond ShredOptions::max_depth. Runs clean
// under MXQ_SANITIZE=address,undefined (run_matrix.sh).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "storage/document.h"
#include "xml/shredder.h"

namespace mxq {
namespace {

// Byte-level snapshot of a container's logical state via public accessors;
// rollback tests assert snapshots compare equal.
struct Snap {
  std::vector<int64_t> size, ref, attr_owner;
  std::vector<int32_t> level, frag;
  std::vector<NodeKind> kind;
  std::vector<StrId> attr_qn, attr_val, pi_target, pi_value;
  int64_t node_count = 0;

  bool operator==(const Snap& o) const {
    return size == o.size && ref == o.ref && attr_owner == o.attr_owner &&
           level == o.level && frag == o.frag && kind == o.kind &&
           attr_qn == o.attr_qn && attr_val == o.attr_val &&
           pi_target == o.pi_target && pi_value == o.pi_value &&
           node_count == o.node_count;
  }
};

Snap TakeSnap(const DocumentContainer& c) {
  Snap s;
  for (int64_t rid = 0; rid < c.PhysicalSlots(); ++rid) {
    s.size.push_back(c.SizeAtRid(rid));
    s.level.push_back(c.LevelAtRid(rid));
    s.kind.push_back(c.KindAtRid(rid));
    s.ref.push_back(c.RefAt(c.Pre(rid)));
    s.frag.push_back(c.FragAt(c.Pre(rid)));
  }
  for (int64_t row = 0; row < c.AttrCount(); ++row) {
    s.attr_owner.push_back(c.AttrOwnerRid(row));
    s.attr_qn.push_back(c.AttrQn(row));
    s.attr_val.push_back(c.AttrValue(row));
  }
  for (int64_t row = 0; row < c.PICount(); ++row) {
    s.pi_target.push_back(c.PITarget(row));
    s.pi_value.push_back(c.PIValue(row));
  }
  s.node_count = c.NodeCount();
  return s;
}

struct BadDoc {
  const char* label;
  std::string xml;
  StatusCode want;
};

// Truncations, tag mismatches, entity errors: all kParseError.
std::vector<BadDoc> SyntaxCorpus() {
  return {
      {"truncated after start tag", "<a><b>text", StatusCode::kParseError},
      {"truncated inside start tag", "<a", StatusCode::kParseError},
      {"truncated inside attribute", "<a href=\"x", StatusCode::kParseError},
      {"attribute missing value", "<a href></a>", StatusCode::kParseError},
      {"attribute unquoted value", "<a href=x></a>",
       StatusCode::kParseError},
      {"unterminated comment", "<a><!-- never closed </a>",
       StatusCode::kParseError},
      {"unterminated CDATA", "<a><![CDATA[ stuck </a>",
       StatusCode::kParseError},
      {"unterminated PI", "<a><?pi no end </a>", StatusCode::kParseError},
      {"mismatched end tag", "<a><b></a></b>", StatusCode::kParseError},
      {"unmatched end tag", "<a></a></a>", StatusCode::kParseError},
      {"malformed end tag", "<a></a b>", StatusCode::kParseError},
      {"end tag only", "</a>", StatusCode::kParseError},
      {"trailing sibling after document element", "<a></a><b/>",
       StatusCode::kParseError},
      {"text outside document element", "hello<a/>",
       StatusCode::kParseError},
      {"unknown entity", "<a>&nope;</a>", StatusCode::kParseError},
      {"unterminated entity", "<a>&amp</a>", StatusCode::kParseError},
      {"unknown entity in attribute", "<a v=\"&bad;\"/>",
       StatusCode::kParseError},
      {"empty tag name", "<><a/></>", StatusCode::kParseError},
      {"DOCTYPE then truncated element", "<!DOCTYPE d [<!ELEMENT a EMPTY>]><a>",
       StatusCode::kParseError},
  };
}

// Pathological DOCTYPE internal subsets: deeply nested brackets must be
// skipped in one bounded scan — the parse terminates and the (element-less
// or truncated) document still gets a typed verdict.
std::string NestedDoctype(int depth, bool close, const std::string& body) {
  std::string d = "<!DOCTYPE d [";
  for (int i = 0; i < depth; ++i) d += "[<!x[";
  for (int i = 0; i < depth && close; ++i) d += "]]";
  d += close ? "]>" : "";
  return d + body;
}

// Documents nested beyond ShredOptions::max_depth: kResourceExhausted.
std::string DeepDoc(int depth) {
  std::string d;
  for (int i = 0; i < depth; ++i) d += "<e>";
  for (int i = 0; i < depth; ++i) d += "</e>";
  return d;
}

TEST(MalformedInputTest, SyntaxCorpusFailsTypedAndStaysInvisible) {
  DocumentManager mgr;
  const int32_t warm = [&] {
    // Warm the transient pool once so the steady-state assertion below is
    // exact: every later failed load recycles instead of allocating.
    auto r = ShredDocument(&mgr, "probe.xml", "<a");
    EXPECT_FALSE(r.ok());
    return mgr.num_containers();
  }();

  for (const BadDoc& bad : SyntaxCorpus()) {
    auto r = ShredDocument(&mgr, "bad.xml", bad.xml);
    ASSERT_FALSE(r.ok()) << bad.label;
    EXPECT_EQ(r.status().code(), bad.want)
        << bad.label << ": " << r.status().ToString();
    // Failed loads are invisible: no name registered, no registry growth.
    EXPECT_EQ(mgr.GetDocument("bad.xml").status().code(),
              StatusCode::kNotFound)
        << bad.label;
    EXPECT_EQ(mgr.num_containers(), warm)
        << bad.label << ": failed load leaked a container";
    EXPECT_EQ(mgr.free_transients(), 1)
        << bad.label << ": scratch container not recycled";
  }

  // The same name loads fine afterwards — nothing was poisoned.
  auto ok = ShredDocument(&mgr, "bad.xml", "<a><b>fine</b></a>");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(mgr.GetDocument("bad.xml").ok());
  EXPECT_TRUE((*ok)->CheckInvariants().ok());
}

TEST(MalformedInputTest, FragmentCorpusRollsBackByteIdentically) {
  DocumentManager mgr;
  auto doc = ShredDocument(&mgr, "base.xml", "<r><keep>me</keep></r>");
  ASSERT_TRUE(doc.ok());
  DocumentContainer* c = *doc;

  // Grow the container once so rollback has a non-trivial pre-state.
  ASSERT_TRUE(ShredFragment(c, "<extra a=\"1\">x<?p q?></extra>").ok());
  const Snap before = TakeSnap(*c);
  const auto mark = c->Mark();

  std::vector<BadDoc> corpus = SyntaxCorpus();
  // Fragment-only shapes: multiple roots are legal, but each must close.
  corpus.push_back({"fragment unclosed second root", "<a/><b><c>",
                    StatusCode::kParseError});
  corpus.push_back({"empty fragment", "   ", StatusCode::kParseError});
  for (const BadDoc& bad : corpus) {
    if (std::string(bad.label) == "trailing sibling after document element" ||
        std::string(bad.label) == "text outside document element")
      continue;  // legal in fragment mode (multiple roots, bare text)
    auto r = ShredFragment(c, bad.xml);
    ASSERT_FALSE(r.ok()) << bad.label;
    EXPECT_EQ(r.status().code(), bad.want)
        << bad.label << ": " << r.status().ToString();
    const auto after = c->Mark();
    EXPECT_EQ(after.slots, mark.slots) << bad.label;
    EXPECT_EQ(after.attrs, mark.attrs) << bad.label;
    EXPECT_EQ(after.pis, mark.pis) << bad.label;
    EXPECT_EQ(after.next_frag, mark.next_frag) << bad.label;
    EXPECT_TRUE(c->CheckInvariants().ok()) << bad.label;
    EXPECT_TRUE(TakeSnap(*c) == before)
        << bad.label << ": rollback was not byte-identical";
  }
}

TEST(MalformedInputTest, PathologicalDoctypeTerminates) {
  DocumentManager mgr;
  // Deep but well-formed internal subset followed by a real element: OK.
  auto ok = ShredDocument(&mgr, "dt.xml", NestedDoctype(2000, true, "<a/>"));
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE((*ok)->CheckInvariants().ok());

  // Unclosed subset swallows the rest of the input; the element-less
  // document is accepted (the dialect allows it) but nothing leaks.
  auto empty =
      ShredDocument(&mgr, "dt2.xml", NestedDoctype(2000, false, "<a/>"));
  if (empty.ok()) {
    EXPECT_TRUE((*empty)->CheckInvariants().ok());
  } else {
    EXPECT_EQ(empty.status().code(), StatusCode::kParseError);
    EXPECT_EQ(mgr.GetDocument("dt2.xml").status().code(),
              StatusCode::kNotFound);
  }
}

TEST(MalformedInputTest, DepthBeyondMaxDepthIsResourceExhausted) {
  DocumentManager mgr;
  ShredOptions opts;
  opts.max_depth = 64;
  auto r = ShredDocument(&mgr, "deep.xml", DeepDoc(65), opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(mgr.GetDocument("deep.xml").status().code(),
            StatusCode::kNotFound);

  // Exactly at the limit: fine.
  auto ok = ShredDocument(&mgr, "deep.xml", DeepDoc(64), opts);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE((*ok)->CheckInvariants().ok());

  // The default limit still terminates a 100k-deep bomb with a typed
  // Status instead of exhausting the stack.
  auto bomb = ShredDocument(&mgr, "bomb.xml", DeepDoc(100000));
  ASSERT_FALSE(bomb.ok());
  EXPECT_EQ(bomb.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(mgr.GetDocument("bomb.xml").status().code(),
            StatusCode::kNotFound);
}

TEST(MalformedInputTest, InputAndNodeLimitsAreResourceExhausted) {
  DocumentManager mgr;
  ShredOptions opts;
  opts.max_input_bytes = 32;
  auto r = ShredDocument(&mgr, "big.xml",
                         "<a><b>0123456789012345678901234567890123</b></a>",
                         opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);

  ShredOptions nodes;
  nodes.max_nodes = 8;
  std::string many = "<r>";
  for (int i = 0; i < 32; ++i) many += "<e/>";
  many += "</r>";
  auto r2 = ShredDocument(&mgr, "many.xml", many, nodes);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(mgr.GetDocument("many.xml").status().code(),
            StatusCode::kNotFound);
}

TEST(MalformedInputTest, RepeatedFailedLoadsDoNotGrowTheRegistry) {
  DocumentManager mgr;
  ASSERT_TRUE(ShredDocument(&mgr, "ok.xml", "<a/>").ok());
  auto warmup = ShredDocument(&mgr, "x.xml", "<broken");
  ASSERT_FALSE(warmup.ok());
  const int32_t containers = mgr.num_containers();
  for (int i = 0; i < 100; ++i) {
    auto r = ShredDocument(&mgr, "x.xml", "<broken attempt=\"" +
                                              std::to_string(i) + "\"");
    ASSERT_FALSE(r.ok());
  }
  EXPECT_EQ(mgr.num_containers(), containers)
      << "failed loads allocated fresh containers instead of recycling";
  EXPECT_EQ(mgr.free_transients(), 1);
  EXPECT_EQ(mgr.GetDocument("x.xml").status().code(), StatusCode::kNotFound);

  // The recycled scratch serves a successful load with no stale state.
  auto ok = ShredDocument(&mgr, "x.xml", "<fresh><child/></fresh>");
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE((*ok)->CheckInvariants().ok());
  EXPECT_EQ(mgr.free_transients(), 0);
}

}  // namespace
}  // namespace mxq
