// Parser and lexer unit tests: token shapes, grammar corners, constructor
// parsing at the character level, free-variable analysis.

#include <gtest/gtest.h>

#include "xquery/lexer.h"
#include "xquery/parser.h"

namespace mxq {
namespace xq {
namespace {

Result<Query> P(const std::string& s) { return ParseQuery(s); }

const Expr& Body(const Result<Query>& q) { return *q->body; }

TEST(LexerTest, TokenShapes) {
  Lexer lex("for $x in (1, 2.5) où := :: << >= 'str' \"dq\" (: c :) name");
  std::vector<TokType> types;
  for (;;) {
    Token t = lex.Next();
    if (t.type == TokType::kEnd && t.text.empty() && lex.pos() >= 58) break;
    types.push_back(t.type);
    if (types.size() > 30) break;
  }
  EXPECT_GE(types.size(), 10u);
  EXPECT_EQ(types[0], TokType::kName);    // for
  EXPECT_EQ(types[1], TokType::kDollar);
  EXPECT_EQ(types[2], TokType::kName);    // x
  EXPECT_EQ(types[3], TokType::kName);    // in
  EXPECT_EQ(types[4], TokType::kLParen);
  EXPECT_EQ(types[5], TokType::kInt);
  EXPECT_EQ(types[6], TokType::kComma);
  EXPECT_EQ(types[7], TokType::kDouble);
}

TEST(LexerTest, QNamesAndAxes) {
  Lexer lex("local:convert child::a");
  Token t = lex.Next();
  EXPECT_EQ(t.type, TokType::kName);
  EXPECT_EQ(t.text, "local:convert");  // prefix:local is one token
  t = lex.Next();
  EXPECT_EQ(t.text, "child");          // but "child::" splits at '::'
  t = lex.Next();
  EXPECT_EQ(t.type, TokType::kColonColon);
}

TEST(LexerTest, StringsEscapesAndComments) {
  Lexer lex(R"("a""b" (: outer (: nested :) still :) 'x')");
  Token t = lex.Next();
  EXPECT_EQ(t.type, TokType::kString);
  EXPECT_EQ(t.text, "a\"b");  // doubled quote
  t = lex.Next();
  EXPECT_EQ(t.text, "x");     // nested comment skipped
}

TEST(ParserTest, PrecedenceArithVsComparison) {
  auto q = P("1 + 2 * 3 < 10 - 1");
  ASSERT_TRUE(q.ok());
  const Expr& e = Body(q);
  EXPECT_EQ(e.kind, ExprKind::kGeneralCmp);
  EXPECT_EQ(e.cmp, CmpOp::kLt);
  EXPECT_EQ(e.children[0]->kind, ExprKind::kArith);   // 1 + (2*3)
  EXPECT_EQ(e.children[0]->arith, ArithOp::kAdd);
  EXPECT_EQ(e.children[0]->children[1]->arith, ArithOp::kMul);
}

TEST(ParserTest, AndOrNesting) {
  auto q = P("1 eq 1 or 2 eq 2 and 3 eq 3");
  ASSERT_TRUE(q.ok());
  // and binds tighter than or.
  EXPECT_EQ(Body(q).kind, ExprKind::kOr);
  EXPECT_EQ(Body(q).children[1]->kind, ExprKind::kAnd);
}

TEST(ParserTest, PathSteps) {
  auto q = P(R"(doc("x.xml")/a//b/@id[1]/ancestor-or-self::c/text())");
  ASSERT_TRUE(q.ok());
  const Expr& e = Body(q);
  ASSERT_EQ(e.kind, ExprKind::kPath);
  EXPECT_EQ(e.children[0]->kind, ExprKind::kDoc);
  ASSERT_EQ(e.steps.size(), 6u);  // a, desc-or-self, b, @id, anc-or-self::c, text()
  EXPECT_EQ(e.steps[0].axis, Axis::kChild);
  EXPECT_EQ(e.steps[0].name, "a");
  EXPECT_EQ(e.steps[1].axis, Axis::kDescendantOrSelf);
  EXPECT_EQ(e.steps[3].axis, Axis::kAttribute);
  EXPECT_EQ(e.steps[3].name, "id");
  EXPECT_EQ(e.steps[3].preds.size(), 1u);
  EXPECT_EQ(e.steps[4].axis, Axis::kAncestorOrSelf);
  EXPECT_EQ(e.steps[5].sel, NodeTest::Sel::kText);
}

TEST(ParserTest, FLWORClauses) {
  auto q = P("for $a at $i in (1,2), $b in (3) let $c := $a + $b "
             "where $c > 2 order by $c descending return ($a, $b)");
  ASSERT_TRUE(q.ok());
  const Expr& e = Body(q);
  ASSERT_EQ(e.kind, ExprKind::kFLWOR);
  ASSERT_EQ(e.clauses.size(), 3u);
  EXPECT_EQ(e.clauses[0].pos_var, "i");
  EXPECT_EQ(e.clauses[2].type, Clause::Type::kLet);
  ASSERT_TRUE(e.where != nullptr);
  ASSERT_EQ(e.order.size(), 1u);
  EXPECT_TRUE(e.order[0].descending);
}

TEST(ParserTest, QuantifiersAndConditionals) {
  auto q = P("if (some $x in (1) satisfies $x eq 1) then 1 else 2");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(Body(q).kind, ExprKind::kIf);
  EXPECT_EQ(Body(q).children[0]->kind, ExprKind::kQuantified);
}

TEST(ParserTest, ElementConstructorContent) {
  auto q = P(R"(<a x="l{1}r" y="plain"><b/>text{2}<c>{3}</c></a>)");
  ASSERT_TRUE(q.ok());
  const Expr& e = Body(q);
  ASSERT_EQ(e.kind, ExprKind::kElemCtor);
  EXPECT_EQ(e.str, "a");
  ASSERT_EQ(e.attrs.size(), 2u);
  EXPECT_EQ(e.attrs[0].second.size(), 3u);  // "l", {1}, "r"
  EXPECT_EQ(e.attrs[0].second[0].text, "l");
  EXPECT_TRUE(e.attrs[0].second[1].expr != nullptr);
  ASSERT_EQ(e.content.size(), 4u);  // <b/>, "text", {2}, <c>...
  EXPECT_EQ(e.content[1].text, "text");
}

TEST(ParserTest, CurlyBraceEscapes) {
  auto q = P(R"(<a v="{{x}}">a{{b}}c</a>)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(Body(q).attrs[0].second[0].text, "{x}");
  EXPECT_EQ(Body(q).content[0].text, "a{b}c");
}

TEST(ParserTest, FunctionDeclarations) {
  auto q = P("declare function local:f($a, $b) { $a + $b }; local:f(1, 2)");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->functions.size(), 1u);
  EXPECT_EQ(q->functions[0].name, "local:f");
  EXPECT_EQ(q->functions[0].params.size(), 2u);
  EXPECT_EQ(Body(q).kind, ExprKind::kCall);
}

TEST(ParserTest, PrologDeclsSkipped) {
  auto q = P("xquery version \"1.0\"; declare namespace x = \"urn:y\"; 42");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(Body(q).kind, ExprKind::kIntLit);
}

TEST(ParserTest, KeywordsAreContextual) {
  // "for", "if", "order" are valid element names in paths.
  auto q = P(R"(doc("d.xml")/for/if/order)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(Body(q).steps.size(), 3u);
  EXPECT_EQ(Body(q).steps[0].name, "for");
}

TEST(ParserTest, PrologVariables) {
  auto q = P("declare variable $x := 1 + 2; $x");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->variables.size(), 1u);
  EXPECT_EQ(q->variables[0].name, "x");
  EXPECT_FALSE(q->variables[0].external);
  ASSERT_NE(q->variables[0].init, nullptr);
  EXPECT_EQ(q->variables[0].init->kind, ExprKind::kArith);

  q = P("declare variable $y as xs:integer external; $y + 1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->variables.size(), 1u);
  EXPECT_EQ(q->variables[0].name, "y");
  EXPECT_TRUE(q->variables[0].external);
  EXPECT_EQ(q->variables[0].type_name, "xs:integer");
  EXPECT_EQ(q->variables[0].init, nullptr);

  // Kind tests and occurrence indicators in the annotation.
  q = P("declare variable $n as node()* external; count($n)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->variables[0].type_name, "node()");

  // Malformed declarations still error.
  EXPECT_FALSE(P("declare variable x := 1; 2").ok());      // missing '$'
  EXPECT_FALSE(P("declare variable $x external 1").ok());  // missing ';'
  EXPECT_FALSE(P("declare variable $x; 1").ok());  // neither init nor ext
}

TEST(LexerTest, StringLiteralEntities) {
  // Predefined entity references decode inside string literals.
  Lexer lex(R"("a &lt; b &amp;&amp; c &gt; d" '&quot;&apos;' "&unknown;")");
  Token t = lex.Next();
  EXPECT_EQ(t.type, TokType::kString);
  EXPECT_EQ(t.text, "a < b && c > d");
  t = lex.Next();
  EXPECT_EQ(t.text, "\"'");
  t = lex.Next();
  EXPECT_EQ(t.text, "&unknown;");  // unknown references pass through
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(P("for $x in").ok());
  EXPECT_FALSE(P("for x in (1) return x").ok());
  EXPECT_FALSE(P("if (1) then 2").ok());           // missing else
  EXPECT_FALSE(P("(1, 2").ok());
  EXPECT_FALSE(P("<a><b></a>").ok());               // mismatched ctor
  EXPECT_FALSE(P("1 +").ok());
  EXPECT_FALSE(P("42 43").ok());                    // trailing content
}

TEST(FreeVarsTest, BindersHideVariables) {
  auto q = P("for $x in $outer return $x + $y");
  ASSERT_TRUE(q.ok());
  std::set<std::string> fv;
  CollectFreeVars(Body(q), &fv);
  EXPECT_TRUE(fv.count("outer"));
  EXPECT_TRUE(fv.count("y"));
  EXPECT_FALSE(fv.count("x"));
}

TEST(FreeVarsTest, PredicatesBindContext) {
  auto q = P("$a/b[. eq $c]");
  ASSERT_TRUE(q.ok());
  std::set<std::string> fv;
  CollectFreeVars(Body(q), &fv);
  EXPECT_TRUE(fv.count("a"));
  EXPECT_TRUE(fv.count("c"));
  EXPECT_FALSE(fv.count("."));
}

TEST(FreeVarsTest, QuantifierBinders) {
  auto q = P("some $p in $seq satisfies $p eq $x");
  ASSERT_TRUE(q.ok());
  std::set<std::string> fv;
  CollectFreeVars(Body(q), &fv);
  EXPECT_EQ(fv, (std::set<std::string>{"seq", "x"}));
}

}  // namespace
}  // namespace xq
}  // namespace mxq
