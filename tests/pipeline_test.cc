// Vectorized-pipeline tests (docs/execution.md §6): stage unit contracts,
// streaming-vs-materializing byte identity across the kernel-toggle matrix,
// first-batch latency (the cursor yields before the full result exists),
// the O(vector_size) charged-memory bound, and bit-identical parallel
// GroupAggr. The streaming path promises *identical bytes* to the
// materializing path at every vector size, toggle combination, and thread
// width — these tests are the proof the promise rests on.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "algebra/ops.h"
#include "algebra/pipeline.h"
#include "common/exec_context.h"
#include "test_util.h"
#include "xml/serializer.h"
#include "xml/shredder.h"
#include "xquery/engine.h"

namespace mxq {
namespace {

using alg::AggKind;
using alg::ExecFlags;
using alg::GroupAggr;
using alg::ItemBufferSource;
using alg::MakeTable;
using alg::SliceSource;
using alg::TransformStage;

// ---------------------------------------------------------------------------
// stage units
// ---------------------------------------------------------------------------

TEST(PipelineStageTest, SliceSourceWindowsPreserveOrderAndProps) {
  auto t = MakeTable({{"x", Column::MakeI64({0, 1, 2, 3, 4, 5, 6, 7, 8, 9})}});
  t->props().ord = {"x"};
  t->props().dense.insert("x");
  ExecFlags fl;
  fl.vector_size = 4;
  SliceSource src(t, &fl);

  std::vector<int64_t> got;
  std::vector<size_t> batch_rows;
  for (;;) {
    auto b = src.Next();
    ASSERT_TRUE(b.ok());
    if (*b == nullptr) break;
    batch_rows.push_back((*b)->rows());
    // Window vectors inherit order (the slice is a contiguous ascending
    // range) but not density (the window does not start at the origin).
    EXPECT_EQ((*b)->props().ord, t->props().ord);
    EXPECT_TRUE((*b)->props().dense.empty());
    for (size_t r = 0; r < (*b)->rows(); ++r)
      got.push_back((*b)->I64At((*b)->ColumnIndex("x"), r));
  }
  EXPECT_EQ(batch_rows, (std::vector<size_t>{4, 4, 2}));
  EXPECT_EQ(got, (std::vector<int64_t>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  EXPECT_EQ(fl.stats.vectors_flowed, 3);
  // End of stream is sticky.
  auto again = src.Next();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, nullptr);
}

TEST(PipelineStageTest, TransformStageSkipsFullyFilteredVectors) {
  auto t = MakeTable({{"x", Column::MakeI64({0, 1, 2, 3, 4, 5, 6, 7})}});
  ExecFlags fl;
  fl.vector_size = 4;
  alg::Pipeline pipe;
  auto* src = pipe.Push(std::make_unique<SliceSource>(t, &fl));
  // Keep only values < 4: the second input vector filters to nothing and
  // must be skipped, not emitted as an empty batch.
  pipe.Push(std::make_unique<TransformStage>(
      src,
      [](const TablePtr& in) -> Result<TablePtr> {
        std::vector<int64_t> keep;
        const int x = in->ColumnIndex("x");
        for (size_t r = 0; r < in->rows(); ++r)
          if (in->I64At(x, r) < 4) keep.push_back(in->I64At(x, r));
        return MakeTable({{"x", Column::MakeI64(std::move(keep))}});
      },
      &fl));

  auto b1 = pipe.tail()->Next();
  ASSERT_TRUE(b1.ok());
  ASSERT_NE(*b1, nullptr);
  EXPECT_EQ((*b1)->rows(), 4u);
  auto b2 = pipe.tail()->Next();
  ASSERT_TRUE(b2.ok());
  EXPECT_EQ(*b2, nullptr);  // second vector filtered away -> end of stream
}

TEST(PipelineStageTest, ItemBufferSourceChargesOneVectorAtATime) {
  constexpr int kItems = 1000;
  constexpr int kVector = 100;
  std::vector<Item> items;
  items.reserve(kItems);
  for (int i = 0; i < kItems; ++i) items.push_back(Item::Int(i));

  ExecContext ectx;
  ScopedExecContext scoped(&ectx);
  ExecFlags fl;
  fl.vector_size = kVector;
  ItemBufferSource src(std::move(items), "item", &fl);

  int batches = 0;
  int64_t seen = 0;
  for (;;) {
    auto b = src.Next();  // the previous batch is dropped before this pull
    ASSERT_TRUE(b.ok());
    if (*b == nullptr) break;
    ++batches;
    seen += static_cast<int64_t>((*b)->rows());
  }
  EXPECT_EQ(batches, kItems / kVector);
  EXPECT_EQ(seen, kItems);
  EXPECT_EQ(fl.stats.vectors_flowed, kItems / kVector);
  // The scratch buffer is uncharged; only the in-flight vector's Column
  // hits the MemAccount, so the peak is one vector, not the relation.
  EXPECT_GT(ectx.mem()->peak_bytes(), 0);
  EXPECT_LE(ectx.mem()->peak_bytes(),
            static_cast<int64_t>(kVector * 2 * sizeof(Item)));
}

// ---------------------------------------------------------------------------
// streaming cursor vs materializing cursor
// ---------------------------------------------------------------------------

class StreamingCursorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    doc_ = testutil::RandomDoc(&mgr_, 4000, 42);
    ASSERT_NE(doc_, nullptr);
  }

  DocumentManager mgr_;
  DocumentContainer* doc_ = nullptr;
};

std::string DrainCursor(const DocumentManager& mgr, xq::ResultCursor* cur,
                        size_t batch_size) {
  std::string out;
  std::vector<Item> batch;
  while (cur->Next(&batch, batch_size))
    out += SerializeSequence(mgr, batch);
  EXPECT_TRUE(cur->status().ok()) << cur->status().ToString();
  EXPECT_TRUE(cur->done());
  return out;
}

// Scan-shaped paths must stream; pipeline breakers must fall back — and
// both modes must produce the legacy bytes under every kernel-toggle
// combination and thread width.
TEST_F(StreamingCursorTest, MatrixByteIdenticalAndShapeDetection) {
  struct Case {
    const char* query;
    bool streamable;
  };
  const Case kCases[] = {
      {R"(doc("rand42")//a)", true},
      {R"(doc("rand42")/root/a)", true},
      {R"(doc("rand42")//b//c)", true},
      {R"(doc("rand42")//a/text())", true},
      {R"(doc("rand42")//a/@id)", true},
      {R"(doc("rand42")//a[@id])", false},   // predicate: breaker
      {R"(count(doc("rand42")//a))", false},  // aggregate: breaker
      {R"(<r>{doc("rand42")//c}</r>)", false},  // constructor: breaker
  };

  xq::XQueryEngine eng(&mgr_);
  for (const Case& c : kCases) {
    auto plan = eng.Prepare(c.query);
    ASSERT_TRUE(plan.ok()) << c.query;

    // Legacy serial baseline: every kernel off, threads=1, materialized.
    xq::EvalOptions base;
    base.alg.radix_join = base.alg.sel_vectors = false;
    base.alg.dense_sort = base.alg.dict_items = false;
    base.alg.threads = 1;
    auto bres = eng.Execute(**plan, &base);
    ASSERT_TRUE(bres.ok()) << c.query;
    const std::string expect = bres->Serialize(mgr_);

    for (int mask = 0; mask < 16; ++mask) {
      for (int threads : {1, 4}) {
        for (bool stream : {true, false}) {
          xq::EvalOptions eo;
          eo.alg.radix_join = (mask & 1) != 0;
          eo.alg.sel_vectors = (mask & 2) != 0;
          eo.alg.dense_sort = (mask & 4) != 0;
          eo.alg.dict_items = (mask & 8) != 0;
          eo.alg.threads = threads;
          eo.stream_results = stream;
          auto cur = eng.ExecuteCursor(**plan, &eo);
          ASSERT_TRUE(cur.ok()) << c.query;
          EXPECT_EQ(cur->streaming(), stream && c.streamable)
              << c.query << " mask=" << mask;
          EXPECT_EQ(DrainCursor(mgr_, &*cur, 5), expect)
              << c.query << " mask=" << mask << " threads=" << threads
              << " stream=" << stream;
        }
      }
    }
  }
}

// The vector size is a pure batching knob: any size yields the same bytes.
TEST_F(StreamingCursorTest, VectorSizeSweepIsByteIdentical) {
  xq::XQueryEngine eng(&mgr_);
  auto plan = eng.Prepare(R"(doc("rand42")//b/text())");
  ASSERT_TRUE(plan.ok());

  xq::EvalOptions base;
  base.stream_results = false;
  auto bres = eng.ExecuteCursor(**plan, &base);
  ASSERT_TRUE(bres.ok());
  const std::string expect = DrainCursor(mgr_, &*bres, 3);

  for (int vec : {1, 3, 7, 1024, 100000}) {
    xq::EvalOptions eo;
    eo.alg.vector_size = vec;
    auto cur = eng.ExecuteCursor(**plan, &eo);
    ASSERT_TRUE(cur.ok());
    EXPECT_TRUE(cur->streaming());
    EXPECT_EQ(DrainCursor(mgr_, &*cur, 3), expect) << "vector_size=" << vec;
  }
}

TEST(StreamingLargeScanTest, FirstBatchArrivesBeforeFullResult) {
  DocumentManager mgr;
  ASSERT_NE(testutil::RandomDoc(&mgr, 60000, 7), nullptr);
  xq::XQueryEngine eng(&mgr);
  auto plan = eng.Prepare(R"(doc("rand7")//a)");
  ASSERT_TRUE(plan.ok());

  xq::EvalOptions eo;
  eo.alg.vector_size = 64;
  auto cur = eng.ExecuteCursor(**plan, &eo);
  ASSERT_TRUE(cur.ok());
  ASSERT_TRUE(cur->streaming());

  std::vector<Item> batch;
  ASSERT_EQ(cur->Next(&batch, 10), 10u);
  // One pull, one vector: the rest of the result does not exist yet.
  EXPECT_EQ(cur->exec_stats().vectors_flowed, 1);
  EXPECT_FALSE(cur->done());
  EXPECT_EQ(cur->position(), 10u);
  EXPECT_EQ(cur->total_rows(), 10u);  // rows yielded so far (streaming)

  size_t total = 10;
  while (size_t got = cur->Next(&batch, 1000)) total += got;
  EXPECT_TRUE(cur->done());
  EXPECT_TRUE(cur->status().ok());
  EXPECT_EQ(cur->total_rows(), total);

  // Sanity: the same count the materializing cursor reports up front.
  xq::EvalOptions mat;
  mat.stream_results = false;
  auto mcur = eng.ExecuteCursor(**plan, &mat);
  ASSERT_TRUE(mcur.ok());
  EXPECT_EQ(mcur->total_rows(), total);
}

// The regression the pipeline exists for: a full-document scan's *charged*
// peak must be O(vector_size), not O(result) — at most 10% of what the
// materializing path charges for the same query (ISSUE acceptance bound).
TEST(StreamingLargeScanTest, PeakChargedMemoryBoundedByVectorSize) {
  DocumentManager mgr;
  ASSERT_NE(testutil::RandomDoc(&mgr, 60000, 7), nullptr);
  xq::XQueryEngine eng(&mgr);
  auto plan = eng.Prepare(R"(doc("rand7")//a)");
  ASSERT_TRUE(plan.ok());

  xq::EvalOptions mat;
  mat.stream_results = false;
  auto mcur = eng.ExecuteCursor(**plan, &mat);
  ASSERT_TRUE(mcur.ok());
  const std::string mbytes = DrainCursor(mgr, &*mcur, 512);
  const int64_t mat_peak = mcur->exec_stats().peak_mem_bytes;
  ASSERT_GT(mat_peak, 0);

  xq::EvalOptions eo;
  eo.alg.vector_size = 128;
  auto scur = eng.ExecuteCursor(**plan, &eo);
  ASSERT_TRUE(scur.ok());
  ASSERT_TRUE(scur->streaming());
  EXPECT_EQ(DrainCursor(mgr, &*scur, 512), mbytes);
  const int64_t stream_peak = scur->exec_stats().peak_mem_bytes;
  EXPECT_GT(stream_peak, 0);
  EXPECT_LE(stream_peak * 10, mat_peak)
      << "stream=" << stream_peak << " mat=" << mat_peak;
}

TEST(StreamingLargeScanTest, CancelBetweenPullsSurfacesTypedStatus) {
  DocumentManager mgr;
  ASSERT_NE(testutil::RandomDoc(&mgr, 60000, 7), nullptr);
  xq::XQueryEngine eng(&mgr);
  xq::Session s = eng.CreateSession();
  s.options().alg.vector_size = 64;
  auto plan = s.Prepare(R"(doc("rand7")//a)");
  ASSERT_TRUE(plan.ok());

  auto cur = s.OpenCursor(*plan);
  ASSERT_TRUE(cur.ok());
  ASSERT_TRUE(cur->streaming());
  std::vector<Item> batch;
  ASSERT_EQ(cur->Next(&batch, 64), 64u);

  s.CancelAll();
  EXPECT_EQ(cur->Next(&batch, 64), 0u);
  EXPECT_EQ(cur->status().code(), StatusCode::kCancelled)
      << cur->status().ToString();
  EXPECT_TRUE(cur->done());
  // Sticky: later pulls stay failed, they do not resume.
  EXPECT_EQ(cur->Next(&batch, 64), 0u);
}

// ---------------------------------------------------------------------------
// parallel GroupAggr
// ---------------------------------------------------------------------------

// Group-partitioned parallel accumulation must be bit-identical to the
// serial fold: FP sums associate in original row order within each group,
// and min/max first-seen ties resolve identically.
TEST(ParallelGroupAggrTest, FourThreadsBitIdenticalToSerial) {
  DocumentManager mgr;
  constexpr size_t kRows = 40000;  // >= 2 * kParGrainRows: chunks > 1
  std::mt19937 rng(99);
  std::vector<int64_t> g;
  std::vector<Item> v;
  g.reserve(kRows);
  v.reserve(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    g.push_back(static_cast<int64_t>(rng() % 97));  // unsorted: hash path
    switch (i % 3) {
      case 0: v.push_back(Item::Int(static_cast<int64_t>(rng() % 1000))); break;
      case 1:
        v.push_back(Item::Double(static_cast<double>(rng() % 1000) / 7.0));
        break;
      default:
        v.push_back(Item::String(
            mgr.strings().Intern("s" + std::to_string(rng() % 50))));
    }
  }

  for (AggKind kind : {AggKind::kCount, AggKind::kSum, AggKind::kMin,
                       AggKind::kMax, AggKind::kAvg}) {
    for (bool ordered : {false, true}) {
      auto gs = g;
      auto vs = v;
      if (ordered) {
        // Stable co-sort by group so the run-detecting ordered path (and
        // its input-order emission) is exercised too.
        std::vector<size_t> perm(kRows);
        for (size_t i = 0; i < kRows; ++i) perm[i] = i;
        std::stable_sort(perm.begin(), perm.end(),
                         [&](size_t a, size_t b) { return g[a] < g[b]; });
        for (size_t i = 0; i < kRows; ++i) {
          gs[i] = g[perm[i]];
          vs[i] = v[perm[i]];
        }
      }
      auto t = MakeTable({{"g", Column::MakeI64(std::move(gs))},
                          {"v", Column::MakeItem(std::move(vs))}});
      if (ordered) t->props().ord = {"g"};

      ExecFlags fl1;
      fl1.threads = 1;
      auto serial = GroupAggr(mgr, fl1, t, "g",
                              kind == AggKind::kCount ? "" : "v", kind);
      ExecFlags fl4;
      fl4.threads = 4;
      auto par = GroupAggr(mgr, fl4, t, "g",
                           kind == AggKind::kCount ? "" : "v", kind);

      ASSERT_EQ(serial->rows(), par->rows());
      const int sg = serial->ColumnIndex("g"), pg = par->ColumnIndex("g");
      const int sa = serial->ColumnIndex("agg"), pa = par->ColumnIndex("agg");
      for (size_t r = 0; r < serial->rows(); ++r) {
        EXPECT_EQ(serial->I64At(sg, r), par->I64At(pg, r));
        // Item equality is kind + raw payload bits: a bitwise check, which
        // is exactly the promise for doubles.
        EXPECT_TRUE(serial->ItemAt(sa, r) == par->ItemAt(pa, r))
            << "kind=" << static_cast<int>(kind) << " ordered=" << ordered
            << " row=" << r;
      }
      if (kind != AggKind::kCount)  // count never fans out (no value column)
        EXPECT_GT(fl4.stats.par_tasks, 0);
    }
  }
}

}  // namespace
}  // namespace mxq
