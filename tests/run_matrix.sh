#!/usr/bin/env bash
# Tier-1 suite across the physical-encoding matrix: the dictionary legs
# (MXQ_DICT=0/1, both item-column encodings) plus a fulltext leg
# (MXQ_FT=0, the subtree-scan fallback; the dict legs run with the default
# MXQ_FT=1 index path) so every physical plan alternative stays green in
# every PR. Registered as the `run_matrix` ctest target (CMakeLists.txt),
# which runs it against the current build — including a sanitizer build
# when that is what was configured:
#
#   # plain matrix (both encodings, current build):
#   ctest --test-dir build -R '^run_matrix$' --output-on-failure
#
#   # TSan matrix (races in the parallel kernels, admission control,
#   # cancellation delivery, and the lock-free StringPool / fulltext
#   # posting-table publication). TSan is the dynamic complement of the
#   # compile-time lock discipline in docs/static_analysis.md — the
#   # annotations prove lock usage, TSan checks the lock-free protocols
#   # the annotations deliberately leave to `// publication:` comments:
#   cmake -B build-tsan -S . -DMXQ_SANITIZE=thread
#   cmake --build build-tsan -j
#   ctest --test-dir build-tsan -R '^run_matrix$' --output-on-failure
#
#   # ASan+UBSan matrix (leaks and UB on the governance error paths: every
#   # deadline/cancel/budget unwind and fault injection runs under it):
#   cmake -B build-asan -S . -DMXQ_SANITIZE=address,undefined
#   cmake --build build-asan -j
#   ctest --test-dir build-asan -R '^run_matrix$' --output-on-failure
#
# Besides the encoding legs, the matrix runs a dedicated chaos leg: the
# fault-point storm (chaos_test) and the malformed-input corpus
# (malformed_input_test) under MXQ_THREADS=4, so atomic-ingestion rollback
# and the lock-free registry are exercised concurrently in every
# configuration — including the TSan / ASan+UBSan builds above — and a
# vector leg (MXQ_VECTOR=7) that re-runs the cursor-exercising suites with
# a tiny odd pipeline vector size (docs/execution.md §6).
#
# Standalone usage: tests/run_matrix.sh [build-dir]   (default: ./build)
#   MXQ_MATRIX_THREADS    thread width exported to the inner runs (default 4,
#                         so the parallel kernels engage even where the
#                         process default would be 1)
#   MXQ_MATRIX_SANITIZE   opt-in: space-separated -fsanitize values (e.g.
#                         "thread address,undefined"). For each value the
#                         script configures + builds build-san-<value> next
#                         to [build-dir] and runs the full matrix inside it.
#                         Default empty: only [build-dir] runs, as before.
#   MXQ_MATRIX_LINT       set 0 to skip the lint leg (repo-invariant
#                         checkers, negative-compilation harness, clang-tidy
#                         when installed, and a MXQ_WERROR_THREAD_SAFETY=ON
#                         side build — docs/static_analysis.md). The
#                         sanitizer matrix above is the *dynamic* half of
#                         the concurrency story; the lint leg is the static
#                         half, catching lock-discipline violations at
#                         compile time on Clang hosts.
set -euo pipefail

BUILD=${1:-build}
[ -f "$BUILD/CTestTestfile.cmake" ] || {
  echo "run_matrix.sh: '$BUILD' is not a ctest build directory" >&2
  exit 1
}

THREADS=${MXQ_MATRIX_THREADS:-4}

run_matrix_in() {
  local dir=$1
  # Explicit legs, not the full MXQ_DICT x MXQ_FT product: the fulltext
  # scan fallback is orthogonal to the item-column encoding, so one
  # MXQ_FT=0 leg (at the default dict encoding) bounds the runtime while
  # still covering every physical path.
  local legs=("1 1" "0 1" "1 0")
  for leg in "${legs[@]}"; do
    set -- $leg
    local dict=$1 ft=$2
    echo "== tier-1 suite in $dir with MXQ_DICT=$dict MXQ_FT=$ft MXQ_THREADS=$THREADS" >&2
    MXQ_DICT=$dict MXQ_FT=$ft MXQ_THREADS=$THREADS \
      ctest --test-dir "$dir" -E '^run_matrix$' -LE lint --output-on-failure
  done
  # Chaos leg: the fault-storm and malformed-input suites again, pinned to
  # the concurrent width regardless of MXQ_MATRIX_THREADS overrides, so the
  # ingestion rollback / lock-free registry paths always race for real.
  echo "== chaos leg in $dir with MXQ_THREADS=4" >&2
  MXQ_THREADS=4 \
    ctest --test-dir "$dir" -R '^(chaos_test|malformed_input_test)$' \
      --output-on-failure
  # Vector leg: MXQ_VECTOR reaches every streamed cursor through
  # ExecFlags::FromEnv (docs/execution.md §6). A deliberately tiny, odd
  # vector size maximizes window-boundary traffic in the pipeline stages;
  # the streaming suites must stay byte-identical to the materializing
  # path at any size. Scoped to the cursor-exercising suites — the other
  # suites never open streamed cursors, so the knob cannot reach them.
  echo "== vector leg in $dir with MXQ_VECTOR=7" >&2
  MXQ_VECTOR=7 MXQ_THREADS=$THREADS \
    ctest --test-dir "$dir" -R '^(pipeline_test|serving_api_test|xquery_test)$' \
      --output-on-failure
}

run_matrix_in "$BUILD"

# Lint leg (docs/static_analysis.md): the repo-invariant checkers and the
# negative-compilation harness (ctest label `lint`), clang-tidy against the
# checked-in baseline when the host has it, and a one-shot side build with
# MXQ_WERROR_THREAD_SAFETY=ON so the discipline diagnostics
# (-Werror=thread-safety under Clang, -Werror=unused-result everywhere)
# fail the matrix even though the default build keeps them off.
if [ "${MXQ_MATRIX_LINT:-1}" = 1 ]; then
  echo "== lint leg: checkers + negative-compilation harness" >&2
  ctest --test-dir "$BUILD" -L lint --output-on-failure
  echo "== lint leg: clang-tidy baseline (skips if not installed)" >&2
  "$(dirname "$0")/../tools/lint/run_tidy.sh" "$BUILD"
  WBUILD="$(dirname "$BUILD")/build-werror-tsa"
  echo "== lint leg: MXQ_WERROR_THREAD_SAFETY=ON build -> $WBUILD" >&2
  cmake -B "$WBUILD" -S "$(dirname "$0")/.." \
        -DMXQ_WERROR_THREAD_SAFETY=ON >/dev/null
  cmake --build "$WBUILD" -j >/dev/null
fi

for san in ${MXQ_MATRIX_SANITIZE:-}; do
  SBUILD="$(dirname "$BUILD")/build-san-${san//,/+}"
  echo "== configuring sanitizer leg: -fsanitize=$san -> $SBUILD" >&2
  cmake -B "$SBUILD" -S "$(dirname "$0")/.." -DMXQ_SANITIZE="$san" >/dev/null
  cmake --build "$SBUILD" -j >/dev/null
  run_matrix_in "$SBUILD"
done

echo "== run_matrix: all legs green" >&2
