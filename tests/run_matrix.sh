#!/usr/bin/env bash
# Tier-1 suite across the dictionary-encoding matrix: runs ctest once with
# MXQ_DICT=0 and once with MXQ_DICT=1 so both physical item-column
# encodings stay green in every PR. Registered as the `run_matrix` ctest
# target (CMakeLists.txt), which runs it against the current build —
# including a ThreadSanitizer build when that is what was configured:
#
#   # plain matrix (both encodings, current build):
#   ctest --test-dir build -R '^run_matrix$' --output-on-failure
#
#   # TSan matrix (what CI should run once per PR): configure a TSan build
#   # and its run_matrix target validates both encodings under the
#   # sanitizer, parallel probes included:
#   cmake -B build-tsan -S . -DMXQ_SANITIZE=thread
#   cmake --build build-tsan -j
#   ctest --test-dir build-tsan -R '^run_matrix$' --output-on-failure
#
# Standalone usage: tests/run_matrix.sh [build-dir]   (default: ./build)
#   MXQ_MATRIX_THREADS   thread width exported to the inner runs (default 4,
#                        so the parallel kernels engage even where the
#                        process default would be 1)
set -euo pipefail

BUILD=${1:-build}
[ -f "$BUILD/CTestTestfile.cmake" ] || {
  echo "run_matrix.sh: '$BUILD' is not a ctest build directory" >&2
  exit 1
}

THREADS=${MXQ_MATRIX_THREADS:-4}
for dict in 0 1; do
  echo "== tier-1 suite with MXQ_DICT=$dict MXQ_THREADS=$THREADS" >&2
  MXQ_DICT=$dict MXQ_THREADS=$THREADS \
    ctest --test-dir "$BUILD" -E '^run_matrix$' --output-on-failure
done
echo "== run_matrix: both encodings green" >&2
