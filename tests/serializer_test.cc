// Serializer unit tests: escaping, sequence serialization rules, indent
// mode, empty-element normalization after deletes.

#include <gtest/gtest.h>

#include "updates/update_engine.h"
#include "xml/serializer.h"
#include "xml/shredder.h"

namespace mxq {
namespace {

TEST(EscapeTest, TextAndAttrEscaping) {
  std::string out;
  EscapeText("a < b & c > d", &out);
  EXPECT_EQ(out, "a &lt; b &amp; c &gt; d");
  out.clear();
  EscapeAttr("say \"hi\" & go", &out);
  EXPECT_EQ(out, "say &quot;hi&quot; &amp; go");
}

TEST(SerializeSequenceTest, AtomicSpacingRules) {
  DocumentManager mgr;
  std::vector<Item> items = {Item::Int(1), Item::Int(2),
                             Item::String(mgr.strings().Intern("x"))};
  // Adjacent atomics: single space separators.
  EXPECT_EQ(SerializeSequence(mgr, items), "1 2 x");
  // A node breaks the atomic run: no space around markup.
  auto doc = ShredDocument(&mgr, "d.xml", "<n/>");
  ASSERT_TRUE(doc.ok());
  std::vector<Item> mixed = {Item::Int(1), Item::Node((*doc)->id(), 1),
                             Item::Int(2)};
  EXPECT_EQ(SerializeSequence(mgr, mixed), "1<n/>2");
}

TEST(SerializeSequenceTest, NumberLexicalForms) {
  DocumentManager mgr;
  EXPECT_EQ(SerializeSequence(mgr, std::vector<Item>{Item::Double(2.0)}),
            "2");
  EXPECT_EQ(SerializeSequence(mgr, std::vector<Item>{Item::Double(2.5)}),
            "2.5");
  EXPECT_EQ(SerializeSequence(mgr, std::vector<Item>{Item::Double(-0.5)}),
            "-0.5");
  EXPECT_EQ(SerializeSequence(mgr, std::vector<Item>{Item::Bool(true),
                                                     Item::Bool(false)}),
            "true false");
}

TEST(SerializeSequenceTest, StandaloneAttribute) {
  DocumentManager mgr;
  auto doc = ShredDocument(&mgr, "d.xml", "<n id=\"a&quot;b\"/>");
  ASSERT_TRUE(doc.ok());
  std::vector<Item> items = {Item::Attr((*doc)->id(), 0)};
  EXPECT_EQ(SerializeSequence(mgr, items), "id=\"a&quot;b\"");
}

TEST(SerializeNodeTest, IndentMode) {
  DocumentManager mgr;
  auto doc = ShredDocument(&mgr, "d.xml", "<a><b><c/></b><d/></a>");
  ASSERT_TRUE(doc.ok());
  std::string out;
  SerializeOptions opts;
  opts.indent = true;
  SerializeNode(**doc, 0, &out, opts);
  EXPECT_EQ(out, "<a>\n  <b>\n    <c/>\n  </b>\n  <d/>\n</a>");
}

TEST(SerializeNodeTest, EmptiedElementCollapses) {
  // After deleting all children of <b>, it must serialize as <b/> even
  // though its slot range still spans the unused slots.
  DocumentManager mgr;
  auto doc = ShredDocument(&mgr, "d.xml", "<a><b><x/><y/></b><c/></a>");
  ASSERT_TRUE(doc.ok());
  updates::UpdateEngine eng(*doc, 4, 75);
  StrId x = mgr.strings().Find("x");
  StrId y = mgr.strings().Find("y");
  ASSERT_TRUE(eng.DeleteSubtree((*doc)->ElementsNamed(x)[0]).ok());
  ASSERT_TRUE(eng.DeleteSubtree((*doc)->ElementsNamed(y)[0]).ok());
  std::string out;
  SerializeNode(**doc, 0, &out);
  EXPECT_EQ(out, "<a><b/><c/></a>");
}

TEST(SerializeNodeTest, SubtreeSerialization) {
  DocumentManager mgr;
  auto doc = ShredDocument(&mgr, "d.xml",
                           "<a><b k=\"1\">t1</b><c>t2</c></a>");
  ASSERT_TRUE(doc.ok());
  std::string out;
  SerializeNode(**doc, 2, &out);  // just <b>
  EXPECT_EQ(out, "<b k=\"1\">t1</b>");
}

}  // namespace
}  // namespace mxq
