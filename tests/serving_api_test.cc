// Serving-API tests: prepared queries with external variables, typed
// parameter binding, the bounded LRU plan cache, per-execution result
// ownership and statistics, the streaming cursor, and concurrent execution
// of one shared plan from many sessions (run under MXQ_SANITIZE=thread to
// validate the synchronization end to end).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "xml/serializer.h"
#include "xml/shredder.h"
#include "xquery/engine.h"

namespace mxq {
namespace xq {
namespace {

// Parameterized value-join over the auction document: exercises staircase
// steps, a predicate on the bound variable, and node construction (so each
// execution writes its own transient container).
constexpr const char* kSalesQuery =
    R"(declare variable $min as xs:integer external;
       for $a in doc("auction.xml")//auction
       where $a/price >= $min
       return <sale buyer="{$a/buyer/@person}">{$a/price/text()}</sale>)";

class ServingApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        ShredDocument(
            &mgr_, "auction.xml",
            "<site><people>"
            "<person id=\"person0\"><name>Kasidit</name><age>25</age></person>"
            "<person id=\"person1\"><name>Amara</name><age>30</age></person>"
            "<person id=\"person2\"><name>Bola</name><age>19</age></person>"
            "</people><auctions>"
            "<auction><buyer person=\"person0\"/><price>10</price></auction>"
            "<auction><buyer person=\"person0\"/><price>25</price></auction>"
            "<auction><buyer person=\"person2\"/><price>90</price></auction>"
            "</auctions></site>")
            .ok());
  }

  DocumentManager mgr_;
};

// ---------------------------------------------------------------------------
// External-variable binding
// ---------------------------------------------------------------------------

TEST_F(ServingApiTest, BindInteger) {
  XQueryEngine eng(&mgr_);
  Session s = eng.CreateSession();
  auto q = s.Prepare("declare variable $x as xs:integer external; $x * 2 + 1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ((*q)->params.size(), 1u);
  s.Bind("x", int64_t{20});
  auto r = s.Execute(*q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->Serialize(mgr_), "41");
  // Re-bind and re-execute the same compiled plan.
  s.Bind("x", int64_t{-1});
  r = s.Execute(*q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Serialize(mgr_), "-1");
  // Plain int literals bind without a cast.
  s.Bind("x", 3);
  r = s.Execute(*q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Serialize(mgr_), "7");
}

TEST_F(ServingApiTest, BindIntegerInPredicate) {
  XQueryEngine eng(&mgr_);
  Session s = eng.CreateSession();
  auto q = s.Prepare(
      R"(declare variable $min as xs:integer external;
         for $p in doc("auction.xml")//person
         where $p/age >= $min
         return $p/name/text())");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  s.Bind("min", int64_t{20});
  auto r = s.Execute(*q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->Serialize(mgr_), "KasiditAmara");
  s.Bind("min", int64_t{30});
  r = s.Execute(*q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Serialize(mgr_), "Amara");
}

TEST_F(ServingApiTest, BindString) {
  XQueryEngine eng(&mgr_);
  Session s = eng.CreateSession();
  auto q = s.Prepare(
      R"(declare variable $who as xs:string external;
         doc("auction.xml")//person[name = $who]/age/text())");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  s.Bind("who", "Bola");
  auto r = s.Execute(*q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->Serialize(mgr_), "19");
}

TEST_F(ServingApiTest, BindDoubleAndBoolean) {
  XQueryEngine eng(&mgr_);
  Session s = eng.CreateSession();
  auto q = s.Prepare(
      "declare variable $f as xs:double external;"
      "declare variable $b as xs:boolean external;"
      "if ($b) then $f * 2 else $f");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  s.Bind("f", 1.5);
  s.Bind("b", true);
  auto r = s.Execute(*q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->Serialize(mgr_), "3");
}

TEST_F(ServingApiTest, BindNodeSequence) {
  XQueryEngine eng(&mgr_);
  Session s = eng.CreateSession();
  // Select nodes with one query, feed them to another as a bound sequence.
  auto sel = s.Prepare(R"(doc("auction.xml")//person[age >= 20])");
  ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  auto people = s.Execute(*sel);
  ASSERT_TRUE(people.ok());
  ASSERT_EQ(people->items.size(), 2u);

  auto q = s.Prepare(
      R"(declare variable $ppl as node()* external;
         for $p in $ppl return $p/name/text())");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  s.BindSequence("ppl", people->items);
  auto r = s.Execute(*q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->Serialize(mgr_), "KasiditAmara");
}

TEST_F(ServingApiTest, BindTypeMismatchErrors) {
  XQueryEngine eng(&mgr_);
  Session s = eng.CreateSession();
  auto q = s.Prepare("declare variable $x as xs:integer external; $x");
  ASSERT_TRUE(q.ok());
  s.Bind("x", "not a number");
  auto r = s.Execute(*q);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("does not conform"), std::string::npos)
      << r.status().ToString();

  auto qn = s.Prepare("declare variable $n as node() external; count($n)");
  ASSERT_TRUE(qn.ok());
  s.Bind("n", int64_t{7});
  r = s.Execute(*qn);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("does not conform"), std::string::npos);
}

TEST_F(ServingApiTest, UnboundVariableErrors) {
  XQueryEngine eng(&mgr_);
  Session s = eng.CreateSession();
  auto q = s.Prepare("declare variable $x as xs:integer external; $x");
  ASSERT_TRUE(q.ok());
  auto r = s.Execute(*q);  // nothing bound
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("no value bound"), std::string::npos);
  s.Bind("x", int64_t{1});
  s.Unbind("x");
  EXPECT_FALSE(s.Execute(*q).ok());
}

TEST_F(ServingApiTest, PrologDeclarations) {
  XQueryEngine eng(&mgr_);
  Session s = eng.CreateSession();
  // Initialized prolog variables evaluate without binding.
  auto r = s.Run("declare variable $two := 2; $two * 21");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, "42");
  // Unsupported annotation types and duplicate names are compile errors.
  EXPECT_FALSE(s.Prepare("declare variable $d as xs:date external; $d").ok());
  EXPECT_FALSE(
      s.Prepare("declare variable $x := 1; declare variable $x := 2; $x")
          .ok());
}

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

TEST_F(ServingApiTest, PlanCacheHitAndMiss) {
  XQueryEngine eng(&mgr_);
  auto a = eng.Prepare("1 + 1");
  auto b = eng.Prepare("1 + 1");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->get(), b->get());  // one shared plan
  auto st = eng.plan_cache_stats();
  EXPECT_EQ(st.misses, 1);
  EXPECT_EQ(st.hits, 1);
  EXPECT_EQ(st.size, 1);

  // Different CompileOptions never share a plan.
  CompileOptions co;
  co.join_recognition = false;
  auto c = eng.Prepare("1 + 1", co);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->get(), c->get());
  EXPECT_EQ(eng.plan_cache_stats().misses, 2);
}

TEST_F(ServingApiTest, PlanCacheLruEviction) {
  XQueryEngine eng(&mgr_, /*plan_cache_capacity=*/2);
  ASSERT_TRUE(eng.Prepare("1").ok());  // miss: {1}
  ASSERT_TRUE(eng.Prepare("2").ok());  // miss: {2,1}
  ASSERT_TRUE(eng.Prepare("1").ok());  // hit : {1,2}
  ASSERT_TRUE(eng.Prepare("3").ok());  // miss: {3,1}, evicts "2"
  auto st = eng.plan_cache_stats();
  EXPECT_EQ(st.evictions, 1);
  EXPECT_EQ(st.size, 2);
  ASSERT_TRUE(eng.Prepare("1").ok());  // still cached (was touched)
  EXPECT_EQ(eng.plan_cache_stats().hits, 2);
  ASSERT_TRUE(eng.Prepare("2").ok());  // evicted above: a fresh miss
  EXPECT_EQ(eng.plan_cache_stats().misses, 4);
}

TEST_F(ServingApiTest, PlanCacheCapacityZeroDisables) {
  XQueryEngine eng(&mgr_, /*plan_cache_capacity=*/0);
  ASSERT_TRUE(eng.Prepare("1 + 1").ok());
  ASSERT_TRUE(eng.Prepare("1 + 1").ok());
  auto st = eng.plan_cache_stats();
  EXPECT_EQ(st.hits, 0);
  EXPECT_EQ(st.misses, 2);
  EXPECT_EQ(st.size, 0);
}

TEST_F(ServingApiTest, PlanCacheRebound) {
  XQueryEngine eng(&mgr_);
  for (const char* q : {"1", "2", "3", "4"}) ASSERT_TRUE(eng.Prepare(q).ok());
  EXPECT_EQ(eng.plan_cache_stats().size, 4);
  eng.set_plan_cache_capacity(1);
  auto st = eng.plan_cache_stats();
  EXPECT_EQ(st.size, 1);
  EXPECT_EQ(st.evictions, 3);
  // Plans held by callers survive eviction (shared ownership).
  auto p = eng.Prepare("5");
  ASSERT_TRUE(p.ok());
  eng.set_plan_cache_capacity(0);
  Session s = eng.CreateSession();
  auto r = s.Execute(*p);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Serialize(mgr_), "5");
}

// ---------------------------------------------------------------------------
// Per-execution result ownership and statistics
// ---------------------------------------------------------------------------

TEST_F(ServingApiTest, ResultsOutliveLaterExecutions) {
  XQueryEngine eng(&mgr_);
  Session s = eng.CreateSession();
  auto q = s.Prepare(kSalesQuery);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  s.Bind("min", int64_t{0});
  auto r1 = s.Execute(*q);
  ASSERT_TRUE(r1.ok());
  const std::string first = r1->Serialize(mgr_);
  // Subsequent executions construct nodes in *their own* containers; the
  // earlier result's constructed nodes must stay valid.
  s.Bind("min", int64_t{50});
  auto r2 = s.Execute(*q);
  ASSERT_TRUE(r2.ok());
  EXPECT_NE(r1->transient(), r2->transient());
  EXPECT_EQ(r1->Serialize(mgr_), first);
  EXPECT_EQ(r2->Serialize(mgr_),
            "<sale buyer=\"person2\">90</sale>");
}

TEST_F(ServingApiTest, TransientContainersAreRecycled) {
  XQueryEngine eng(&mgr_);
  Session s = eng.CreateSession();
  const int32_t before = mgr_.num_containers();
  for (int i = 0; i < 8; ++i) {
    auto r = s.Run("<x>{1 + 1}</x>");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, "<x>2</x>");
  }
  // Serial executions reuse one recycled container instead of registering a
  // new one per execution.
  EXPECT_LE(mgr_.num_containers(), before + 1);
  EXPECT_GE(mgr_.free_transients(), 1);
}

TEST_F(ServingApiTest, MoveSemanticsTransferOwnership) {
  XQueryEngine eng(&mgr_);
  Session s = eng.CreateSession();
  auto r = s.Run("1");  // warm the cache path
  ASSERT_TRUE(r.ok());
  auto q = s.Prepare("<y/>");
  ASSERT_TRUE(q.ok());
  auto res = s.Execute(*q);
  ASSERT_TRUE(res.ok());
  QueryResult moved = std::move(*res);
  EXPECT_EQ(res->transient(), nullptr);  // moved-from released nothing
  EXPECT_EQ(moved.Serialize(mgr_), "<y/>");
}

TEST_F(ServingApiTest, StatsArePerExecution) {
  XQueryEngine eng(&mgr_);
  Session s = eng.CreateSession();
  auto big = s.Prepare(R"(doc("auction.xml")//person/name/text())");
  auto small = s.Prepare("1 + 1");
  ASSERT_TRUE(big.ok() && small.ok());
  auto r1 = s.Execute(*big);
  auto r2 = s.Execute(*small);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_GT(r1->scan_stats().slots_touched, 0);
  EXPECT_EQ(r2->scan_stats().slots_touched, 0);  // no steps at all
  EXPECT_GT(r1->exec_stats().tuples_materialized, 0);
  // The session's long-lived EvalOptions still accumulates across runs.
  EXPECT_GE(s.options().alg.stats.tuples_materialized,
            r1->exec_stats().tuples_materialized);
}

// ---------------------------------------------------------------------------
// Streaming cursor
// ---------------------------------------------------------------------------

TEST_F(ServingApiTest, CursorMatchesMaterializedResult) {
  XQueryEngine eng(&mgr_);
  Session s = eng.CreateSession();
  auto q = s.Prepare(kSalesQuery);
  ASSERT_TRUE(q.ok());
  s.Bind("min", int64_t{0});
  auto all = s.Execute(*q);
  ASSERT_TRUE(all.ok());

  auto cur = s.OpenCursor(*q);
  ASSERT_TRUE(cur.ok()) << cur.status().ToString();
  EXPECT_EQ(cur->total_rows(), all->items.size());
  std::vector<Item> streamed, batch;
  while (cur->Next(&batch, 2)) {
    EXPECT_LE(batch.size(), 2u);
    streamed.insert(streamed.end(), batch.begin(), batch.end());
  }
  EXPECT_TRUE(cur->done());
  EXPECT_EQ(cur->Next(&batch), 0u);  // exhausted stays exhausted
  ASSERT_EQ(streamed.size(), all->items.size());
  EXPECT_EQ(SerializeSequence(mgr_, streamed), all->Serialize(mgr_));
  EXPECT_GT(cur->exec_stats().tuples_materialized, 0);
}

TEST_F(ServingApiTest, CursorOnEmptyResult) {
  XQueryEngine eng(&mgr_);
  Session s = eng.CreateSession();
  auto q = s.Prepare(R"(doc("auction.xml")//person[age > 1000])");
  ASSERT_TRUE(q.ok());
  auto cur = s.OpenCursor(*q);
  ASSERT_TRUE(cur.ok());
  EXPECT_EQ(cur->total_rows(), 0u);
  EXPECT_TRUE(cur->done());
  std::vector<Item> batch;
  EXPECT_EQ(cur->Next(&batch), 0u);
}

// ---------------------------------------------------------------------------
// Concurrency: one shared prepared plan, many sessions
// ---------------------------------------------------------------------------

TEST_F(ServingApiTest, ConcurrentSharedPlanBitIdenticalToSerial) {
  constexpr int kThreads = 4;
  constexpr int kIters = 8;

  XQueryEngine eng(&mgr_);
  auto plan = eng.Prepare(kSalesQuery);  // the single compile
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  // Serial baseline per binding value.
  std::vector<std::string> expected(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    Session s = eng.CreateSession();
    s.Bind("min", int64_t{t * 20});
    auto r = s.Execute(*plan);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    expected[t] = r->Serialize(mgr_);
  }
  ASSERT_NE(expected.front(), expected.back());  // bindings actually differ

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Session s = eng.CreateSession();
      s.Bind("min", int64_t{t * 20});
      QueryResult held;  // results must survive other threads' executions
      for (int i = 0; i < kIters; ++i) {
        auto p = s.Prepare(kSalesQuery);  // cache hit, same shared plan
        if (!p.ok() || p->get() != plan->get()) {
          ++failures;
          continue;
        }
        auto r = s.Execute(*p);
        if (!r.ok()) {
          ++failures;
          continue;
        }
        if (r->Serialize(mgr_) != expected[t]) ++mismatches;
        if (held.transient() && held.Serialize(mgr_) != expected[t])
          ++mismatches;
        held = std::move(*r);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  // Zero re-compiles after the first: one miss, everything else hits.
  auto st = eng.plan_cache_stats();
  EXPECT_EQ(st.misses, 1);
  EXPECT_EQ(st.hits, kThreads * kIters);
}

TEST_F(ServingApiTest, ConcurrentColdPrepareSharesOnePlan) {
  // Many threads race to prepare the same (uncached) query: all must get a
  // working plan, and the cache must end with exactly one entry.
  constexpr int kThreads = 4;
  XQueryEngine eng(&mgr_);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      Session s = eng.CreateSession();
      for (int i = 0; i < 8; ++i) {
        auto r = s.Run(R"(count(doc("auction.xml")//person))");
        if (!r.ok() || *r != "3") ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(eng.plan_cache_stats().size, 1);
}

TEST_F(ServingApiTest, FailingQueriesDoNotLeakTransients) {
  // Every Execute error path must release its transient container back to
  // the manager's free pool: a serving loop that keeps hitting failing
  // queries (here: a doc() that resolves mid-evaluation and fails) must not
  // accrete containers or lose free-pool entries.
  XQueryEngine eng(&mgr_);
  Session s = eng.CreateSession();
  ASSERT_TRUE(s.Run("<x/>").ok());  // warm one transient through the pool
  const int32_t containers = mgr_.num_containers();
  const int32_t free_before = mgr_.free_transients();
  for (int i = 0; i < 100; ++i) {
    auto r = s.Run(R"(<wrap>{doc("missing.xml")//person}</wrap>)");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kNotFound) << r.status().ToString();
  }
  EXPECT_EQ(mgr_.num_containers(), containers);
  EXPECT_EQ(mgr_.free_transients(), free_before);
  // And the pool still serves successful executions afterwards.
  auto ok = s.Run(R"(count(doc("auction.xml")//person))");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, "3");
}

}  // namespace
}  // namespace xq
}  // namespace mxq
